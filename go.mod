module tlbmap

go 1.22
