// Domaindecomp: why domain-decomposed applications benefit from
// communication-aware mapping while homogeneous ones do not (the central
// observation of the paper's evaluation).
//
// The example runs two contrasting workloads — the domain-decomposed SP
// kernel and the homogeneous FT kernel — under three placements (the
// Edmonds mapping, the identity, and the worst case where every
// neighbouring thread pair is split across chips) and prints the resulting
// coherence traffic side by side.
//
// Run with: go run ./examples/domaindecomp
package main

import (
	"fmt"
	"log"

	"tlbmap/internal/core"
	"tlbmap/internal/metrics"
	"tlbmap/internal/npb"
	"tlbmap/internal/topology"
)

func main() {
	log.SetFlags(0)
	machine := topology.Harpertown()

	for _, name := range []string{"SP", "FT"} {
		bench, err := npb.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		w := core.FromNPB(bench, npb.Params{Class: npb.ClassW})

		det, err := core.Detect(w, core.SM, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		mapped, err := core.BuildMapping(det.Matrix, machine)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s (expected: %s) ===\n", bench.Name, bench.Expected)
		fmt.Println(det.Matrix.Heatmap())
		fmt.Printf("neighbour fraction of detected communication: %.2f\n\n", det.Matrix.NeighborFraction())

		placements := []struct {
			label string
			p     []int
		}{
			{"edmonds mapping", mapped},
			{"identity", []int{0, 1, 2, 3, 4, 5, 6, 7}},
			// Interleave threads across chips: every neighbouring pair is
			// split by the front-side bus.
			{"cross-chip worst", []int{0, 4, 1, 5, 2, 6, 3, 7}},
		}
		fmt.Printf("%-18s %12s %14s %14s %12s\n", "placement", "cycles", "invalidations", "snoops", "inter-chip")
		for _, pl := range placements {
			res, err := core.Evaluate(w, pl.p, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %12d %14d %14d %12d\n", pl.label, res.Cycles,
				res.Counters.Get(metrics.Invalidations),
				res.Counters.Get(metrics.SnoopTransactions),
				res.Counters.Get(metrics.InterChipTraffic))
		}
		fmt.Println()
	}
	fmt.Println("SP's traffic varies strongly with placement; FT's barely moves —")
	fmt.Println("exactly the heterogeneous/homogeneous split of the paper's Figures 6-9.")
}
