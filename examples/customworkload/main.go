// Customworkload: writing your own traced application against the public
// API and mapping it.
//
// The workload is a producer/consumer ring: thread t repeatedly writes a
// buffer that thread (t+2) mod N consumes. Communication therefore links
// threads at distance two — a pattern neither purely neighbour nor
// homogeneous — and the mapper has to discover the {t, t+2} pairs and
// co-locate them on shared L2 caches.
//
// Run with: go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

const (
	threads    = 8
	bufferLen  = 8192 // 64 KiB per ring buffer: 16 pages
	iterations = 30
)

// buildRing is a core.Workload: it allocates one buffer per thread in the
// shared address space and returns the per-thread programs.
func buildRing(as *vm.AddressSpace) []trace.Program {
	buffers := make([]*trace.F64, threads)
	for i := range buffers {
		buffers[i] = trace.NewF64(as, bufferLen)
	}
	programs := make([]trace.Program, threads)
	for i := range programs {
		programs[i] = func(t *trace.Thread) {
			id := t.ID()
			mine := buffers[id]
			// Consume from the thread two places back in the ring.
			src := buffers[(id+threads-2)%threads]
			for it := 0; it < iterations; it++ {
				// Produce: fill the own buffer.
				for k := 0; k < bufferLen; k++ {
					mine.Set(t, k, float64(it+k))
					t.Compute(2)
				}
				t.Barrier()
				// Consume: read the partner's buffer.
				var sum float64
				for k := 0; k < bufferLen; k++ {
					sum += src.Get(t, k)
					t.Compute(2)
				}
				_ = sum
				t.Barrier()
			}
		}
	}
	return programs
}

func main() {
	log.SetFlags(0)
	machine := topology.Harpertown()

	detection, err := core.Detect(buildRing, core.SM, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected pattern (producer/consumer at distance 2):")
	fmt.Println(detection.Matrix.Heatmap())

	placement, err := core.BuildMapping(detection.Matrix, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapping: %v\n", placement)

	// The mapper should pair each producer with its consumer on one L2.
	pairedOnL2 := 0
	for t := 0; t < threads; t++ {
		partner := (t + 2) % threads
		if machine.SameL2(placement[t], placement[partner]) {
			pairedOnL2++
		}
	}
	fmt.Printf("producer/consumer pairs sharing an L2 cache: %d of %d\n", pairedOnL2, threads)

	cost := mapping.Cost(detection.Matrix, machine, placement)
	id := make([]int, threads)
	for i := range id {
		id[i] = i
	}
	fmt.Printf("mapping cost %d vs identity %d\n", cost, mapping.Cost(detection.Matrix, machine, id))
}
