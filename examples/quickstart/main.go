// Quickstart: the full TLB-based thread-mapping pipeline in ~40 lines.
//
// It runs one NPB-like benchmark (SP) through the three steps of the paper:
// detect the communication pattern via the software-managed TLB mechanism,
// derive a thread -> core mapping with hierarchical Edmonds matching, and
// measure the improvement over an unaware placement.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/metrics"
	"tlbmap/internal/npb"
	"tlbmap/internal/topology"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a workload: the SP benchmark at evaluation scale.
	bench, err := npb.Get("SP")
	if err != nil {
		log.Fatal(err)
	}
	workload := core.FromNPB(bench, npb.Params{Class: npb.ClassW})

	// 2. Detect the communication pattern with the software-managed TLB
	// mechanism (no options needed: defaults reproduce the paper's setup).
	detection, err := core.Detect(workload, core.SM, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected communication pattern:")
	fmt.Println(detection.Matrix.Heatmap())

	// 3. Build the thread -> core mapping for the 2-socket Harpertown
	// machine of the paper (2 chips x 2 L2 caches x 2 cores).
	machine := topology.Harpertown()
	placement, err := core.BuildMapping(detection.Matrix, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread -> core mapping: %v\n\n", placement)

	// 4. Evaluate: run once under the mapping and once under a random
	// (OS-scheduler-like) placement, and compare.
	mapped, err := core.Evaluate(workload, placement, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	random, err := mapping.NewOSScheduler(99).Map(detection.Matrix, machine)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := core.Evaluate(workload, random, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("execution time:   %d vs %d cycles (%.1f%% faster)\n",
		mapped.Cycles, baseline.Cycles,
		100*(1-float64(mapped.Cycles)/float64(baseline.Cycles)))
	fmt.Printf("invalidations:    %d vs %d\n",
		mapped.Counters.Get(metrics.Invalidations), baseline.Counters.Get(metrics.Invalidations))
	fmt.Printf("snoop transfers:  %d vs %d\n",
		mapped.Counters.Get(metrics.SnoopTransactions), baseline.Counters.Get(metrics.SnoopTransactions))
	fmt.Printf("L2 cache misses:  %d vs %d\n",
		mapped.Counters.Get(metrics.L2Misses), baseline.Counters.Get(metrics.L2Misses))
}
