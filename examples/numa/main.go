// Numa: the paper's future-work direction — combined thread and data
// mapping on a NUMA machine.
//
// On NUMA hardware the memory pages themselves live on nodes, so after
// mapping the *threads* the OS should also map the *data*: a page should
// sit on the node whose threads access it. This example runs the SP kernel
// on a two-node NUMA machine and compares three data-mapping policies under
// the communication-aware thread mapping:
//
//   - first-touch (the OS default),
//   - most-accessed (profile-guided, kMAF-style),
//   - interleave (numactl-style striping).
//
// Run with: go run ./examples/numa
package main

import (
	"fmt"
	"log"

	"tlbmap/internal/core"
	"tlbmap/internal/datamap"
	"tlbmap/internal/metrics"
	"tlbmap/internal/npb"
	"tlbmap/internal/topology"
)

func main() {
	log.SetFlags(0)
	machine := topology.NUMA(2) // 2 nodes x 4 cores, paper-style sharing below
	opt := core.Options{Machine: machine}

	bench, err := npb.Get("SP")
	if err != nil {
		log.Fatal(err)
	}
	w := core.FromNPB(bench, npb.Params{Class: npb.ClassW})

	// Phase 1: thread mapping, exactly as on the UMA machine.
	det, err := core.Detect(w, core.SM, opt)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := core.BuildMapping(det.Matrix, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread -> core mapping on %s: %v\n\n", machine.Name, placement)

	// Phase 2: page profiling for the data-mapping policies.
	prof, err := core.ProfileData(w, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d pages, %d of them shared between threads\n\n",
		len(prof.Profile.Pages()), len(prof.Profile.SharedPages()))

	// Phase 3: evaluate the three data-mapping policies under the thread
	// mapping.
	threadNode := datamap.ThreadNodeFunc(machine, placement)
	fmt.Printf("%-15s %14s %12s %12s %16s\n",
		"policy", "cycles", "local mem", "remote mem", "predicted remote")
	for _, policy := range []datamap.Policy{
		datamap.FirstTouch{},
		datamap.MostAccessed{},
		datamap.Interleave{},
	} {
		assign, err := datamap.Build(policy, prof.Profile, machine, placement)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.EvaluateNUMA(w, placement, assign, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %14d %12d %12d %15.1f%%\n",
			policy.Name(), res.Cycles,
			res.Counters.Get(metrics.LocalMemAccesses),
			res.Counters.Get(metrics.RemoteMemAccesses),
			100*assign.RemoteFraction(prof.Profile, threadNode))
	}

	fmt.Println("\nmost-accessed keeps nearly every fill on the owning node;")
	fmt.Println("interleave guarantees ~50% remote fills on two nodes.")
}
