// Dynamicphases: the dynamic-migration extension sketched in the paper's
// future work (Section VII) — "develop dynamic migration strategies which
// use the mechanisms described here" — implemented end to end.
//
// The workload changes its communication pattern midway: in phase A each
// thread exchanges buffers with its XOR-1 partner (pairs 0-1, 2-3, ...);
// in phase B with the thread four positions away (pairs 0-4, 1-5, ...). A
// static mapping can only serve one phase. The run below uses the full
// online pipeline: the oracle detector accumulates the communication
// matrix, the controller inspects per-epoch deltas, and when the pattern
// changes — and the predicted saving beats the hysteresis — the engine
// migrates the threads MID-RUN, cold caches, cold TLBs and all.
//
// Run with: go run ./examples/dynamicphases
package main

import (
	"fmt"
	"log"

	"tlbmap/internal/core"
	"tlbmap/internal/metrics"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

const (
	threads   = 8
	bufferLen = 4096
	rounds    = 60
)

// twoPhase builds the phase-changing workload.
func twoPhase(as *vm.AddressSpace) []trace.Program {
	buffers := make([]*trace.F64, threads)
	for i := range buffers {
		buffers[i] = trace.NewF64(as, bufferLen)
	}
	programs := make([]trace.Program, threads)
	for i := range programs {
		programs[i] = func(t *trace.Thread) {
			id := t.ID()
			for r := 0; r < rounds; r++ {
				partner := id ^ 1 // phase A: pairs (0,1)(2,3)...
				if r >= rounds/2 {
					partner = (id + 4) % threads // phase B: pairs (0,4)(1,5)...
				}
				mine, theirs := buffers[id], buffers[partner]
				for k := 0; k < 256; k++ {
					mine.Set(t, k, float64(r+k))
				}
				t.Barrier()
				var sum float64
				for k := 0; k < 256; k++ {
					sum += theirs.Get(t, k)
				}
				_ = sum
				t.Barrier()
			}
		}
	}
	return programs
}

func main() {
	log.SetFlags(0)
	opt := core.Options{MigrationInterval: 200_000}

	fmt.Println("== static identity placement (what an untuned run gets) ==")
	static, err := core.Evaluate(twoPhase, nil, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycles: %d, inter-chip transactions: %d\n\n",
		static.Cycles, static.Counters.Get(metrics.InterChipTraffic))

	fmt.Println("== dynamic migration (detect -> epoch deltas -> remap mid-run) ==")
	report, err := core.EvaluateWithDynamicMigration(twoPhase, core.Oracle, opt)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range report.Decisions {
		status := "keep"
		if d.Remap {
			status = fmt.Sprintf("REMAP -> %v (%d threads move, predicted gain %d)",
				d.Placement, d.Migrations, d.PredictedGain)
		}
		fmt.Printf("epoch %d: %s (%s)\n", i+1, status, d.Reason)
	}
	fmt.Printf("\ncycles: %d, inter-chip transactions: %d, threads migrated: %d\n",
		report.Result.Cycles,
		report.Result.Counters.Get(metrics.InterChipTraffic),
		report.Result.Migrations)
	fmt.Printf("speedup over the static run: %.2fx\n",
		float64(static.Cycles)/float64(report.Result.Cycles))
}
