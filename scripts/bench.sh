#!/bin/sh
# Benchmark harness: runs the engine/detector micro-benchmarks and the
# end-to-end parallel suite, then renders the results as BENCH_engine.json
# (repo root). Commit the refreshed file alongside any change that claims a
# performance delta, so regressions show up in review as a diff.
#
# Usage:
#
#	scripts/bench.sh [count]
#
# count is the -count passed to the end-to-end suite (default 3; the
# committed number is the minimum across repetitions, which is the standard
# way to suppress scheduler noise on a shared machine).
set -eu

cd "$(dirname "$0")/.."
COUNT="${1:-3}"
OUT="BENCH_engine.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== micro: engine + detectors ==" >&2
go test -run '^$' -bench 'BenchmarkEngine|BenchmarkDetectors' -benchtime 2s \
	./internal/sim ./internal/comm | tee -a "$RAW" >&2

echo "== end-to-end: parallel suite (count=$COUNT) ==" >&2
go test . -run '^$' -bench BenchmarkParallelSuite -benchtime 1x -count "$COUNT" \
	| tee -a "$RAW" >&2

# Render one JSON object per benchmark line. Repeated names (from -count)
# keep the minimum ns/op and the maximum events/sec.
awk -v host="$(go env GOOS)/$(go env GOARCH)" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = ""; evs = ""
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "ns/op") ns = $i
			if ($(i + 1) == "events/sec") evs = $i
		}
		if (ns == "") next
		if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) best_ns[name] = ns
		if (evs != "" && (!(name in best_evs) || evs + 0 > best_evs[name] + 0)) best_evs[name] = evs
		if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
	}
	END {
		printf "{\n  \"host\": \"%s\",\n", host
		# Pre-overhaul engine (commit f16175d), same container: the "before"
		# of the hot-path overhaul. Kept verbatim so the end-to-end speedup
		# stays reviewable next to the current numbers.
		printf "  \"baseline\": {\n"
		printf "    \"engine\": \"pre-overhaul (linear pick, map-backed hot state), commit f16175d\",\n"
		printf "    \"benchmarks\": [\n"
		printf "      {\"name\": \"BenchmarkParallelSuite/workers1\", \"ns_per_op\": 801345119},\n"
		printf "      {\"name\": \"BenchmarkParallelSuite/workers2\", \"ns_per_op\": 710678623},\n"
		printf "      {\"name\": \"BenchmarkParallelSuite/workers4\", \"ns_per_op\": 774978408},\n"
		printf "      {\"name\": \"BenchmarkParallelSuite/workers8\", \"ns_per_op\": 800366018}\n"
		printf "    ]\n  },\n"
		printf "  \"benchmarks\": [\n"
		for (i = 1; i <= n; i++) {
			name = order[i]
			printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, best_ns[name]
			if (name in best_evs) printf ", \"events_per_sec\": %s", best_evs[name]
			printf "}%s\n", (i < n ? "," : "")
		}
		printf "  ]\n}\n"
	}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
