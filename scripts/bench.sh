#!/bin/sh
# Benchmark harness: runs the engine/detector micro-benchmarks, the
# end-to-end parallel suite, and the mapperd serving selftest, then renders
# the results as BENCH_engine.json and BENCH_serve.json (repo root). Commit
# the refreshed files alongside any change that claims a performance delta,
# so regressions show up in review as a diff.
#
# Usage:
#
#	scripts/bench.sh [count]
#	scripts/bench.sh check
#
# count is the -count passed to the end-to-end suite (default 3; the
# committed number is the minimum across repetitions, which is the standard
# way to suppress scheduler noise on a shared machine).
#
# "check" re-runs BenchmarkEngine, BenchmarkMultilevel, BenchmarkSparseMatrix,
# the serve-plane micros (BenchmarkIngestParse, BenchmarkRecovery) and the
# mapperd selftest and compares events/sec (and for the daemon,
# queries/sec) against the committed BENCH_engine.json / BENCH_serve.json:
# any case dropping below 75% of its committed throughput fails, so an
# accidental hot-path regression is caught by CI instead of by the next
# manual bench run.
#
# Every rendered file is stamped with the measuring host (CPU model + core
# count) and commit. Absolute throughput is only comparable on the same
# host: check compares ratios only when the committed host_id matches the
# current machine, and prints the comparisons it skipped otherwise, so a
# clone benched on different hardware reports "skipped" instead of a bogus
# regression (or a silent pass). Frozen baseline blocks carry their own
# host_id for the same reason — a baseline measured on an unrecorded host
# is documentation, not a gate.
set -eu

cd "$(dirname "$0")/.."
OUT="BENCH_engine.json"
SERVE_OUT="BENCH_serve.json"

host_id() {
	_model="$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
	echo "${_model:-unknown-cpu} x$(nproc 2>/dev/null || echo 1)"
}

commit_id() {
	_c="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	git diff --quiet HEAD 2>/dev/null || _c="$_c-dirty"
	echo "$_c"
}

# The fixed fleet shape both modes run, so committed and current numbers
# are comparable: 256 connections over 16 tenants, 1000 events each.
serve_selftest() {
	go run ./cmd/mapperd -selftest -conns 256 -tenants 16 -threads 8 \
		-events 1000 -batch 50 -query-every 4 -seed 1
}

# serve_best runs the selftest N times and keeps the BENCH line with the
# best events/sec (best-of-N suppresses scheduler noise, as elsewhere).
serve_best() {
	_n="$1"
	_best=""
	_best_evs=0
	_i=0
	while [ "$_i" -lt "$_n" ]; do
		_line="$(serve_selftest | tee /dev/stderr | grep '^BENCH ')"
		_evs="$(echo "$_line" | sed -n 's/.*events_per_sec=\([0-9]*\).*/\1/p')"
		if [ "${_evs:-0}" -gt "$_best_evs" ]; then
			_best_evs="$_evs"
			_best="$_line"
		fi
		_i=$((_i + 1))
	done
	echo "$_best"
}

# committed_host_id FILE prints the top-level host_id of a committed
# result file ("" when the file predates host stamping).
committed_host_id() {
	sed -n 's/.*"host_id": "\(.*\)",*$/\1/p' "$1" | head -1
}

if [ "${1:-}" = "check" ]; then
	[ -f "$OUT" ] || { echo "bench check: no committed $OUT" >&2; exit 1; }
	HOST="$(host_id)"
	GATE=1
	COMMITTED_HOST="$(committed_host_id "$OUT")"
	if [ "$COMMITTED_HOST" != "$HOST" ]; then
		GATE=0
		echo "bench check: committed numbers measured on '${COMMITTED_HOST:-unrecorded host}'," >&2
		echo "bench check: current host is '$HOST' — comparisons are informational, gate skipped" >&2
	fi
	RAW="$(mktemp)"
	trap 'rm -f "$RAW"' EXIT
	echo "== bench check: engine/mapper/matrix/serve vs committed $OUT ==" >&2
	go test -run '^$' -bench BenchmarkEngine -benchtime 1x -count 3 \
		./internal/sim | tee "$RAW" >&2
	go test -run '^$' -bench BenchmarkMultilevel -benchtime 1x -count 3 \
		./internal/mapping | tee -a "$RAW" >&2
	go test -run '^$' -bench BenchmarkSparseMatrix -benchtime 0.5s -count 3 \
		./internal/comm | tee -a "$RAW" >&2
	# BenchmarkWALGroupCommit is deliberately absent: it is fsync-bound,
	# and fsync latency on shared infrastructure swings far more than the
	# 25% regression budget — it stays a full-mode (documentation) number.
	go test -run '^$' -bench 'BenchmarkIngestParse|BenchmarkRecovery' \
		-benchtime 1x -count 3 ./internal/serve | tee -a "$RAW" >&2
	# Pass 1 reads the committed live "benchmarks" section (the frozen
	# baselines nest under "frozen", so this key is unique); pass 2 keeps
	# each current case's best events/sec across -count repetitions.
	awk -v gate="$GATE" '
		FNR == NR {
			if ($0 ~ /"benchmarks": \[/) { live = 1; next }
			if (live && $0 ~ /^[[:space:]]*\]/) live = 0
			if (live && match($0, /"name": "Benchmark(Engine|Multilevel|SparseMatrix|IngestParse|Recovery)(\/[^"]*)?"/)) {
				name = substr($0, RSTART + 9, RLENGTH - 10)
				if (match($0, /"events_per_sec": [0-9.e+]+/))
					base[name] = substr($0, RSTART + 18, RLENGTH - 18) + 0
			}
			next
		}
		/^Benchmark(Engine|Multilevel|SparseMatrix|IngestParse|Recovery)[-\/ \t]/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			for (i = 2; i < NF; i++)
				if ($(i + 1) == "events/sec" && $i + 0 > cur[name] + 0)
					cur[name] = $i + 0
		}
		END {
			fail = 0
			for (name in base) {
				if (!(name in cur)) {
					printf "bench check: case %s missing from current run\n", name
					fail = 1
					continue
				}
				ratio = cur[name] / base[name]
				printf "%-40s %12.0f ev/s  committed %12.0f  (%.2fx)%s\n", \
					name, cur[name], base[name], ratio, (gate ? "" : "  [skipped: different host]")
				if (gate && ratio < 0.75) {
					printf "bench check FAILED: %s regressed to %.0f%% of committed throughput\n", \
						name, ratio * 100
					fail = 1
				}
			}
			if (fail) exit 1
			print (gate ? "bench check passed" : "bench check skipped (host mismatch); no gate applied")
		}' "$OUT" "$RAW" >&2

	[ -f "$SERVE_OUT" ] || { echo "bench check: no committed $SERVE_OUT" >&2; exit 1; }
	SERVE_GATE=1
	SERVE_HOST="$(committed_host_id "$SERVE_OUT")"
	if [ "$SERVE_HOST" != "$HOST" ]; then
		SERVE_GATE=0
		echo "bench check: committed $SERVE_OUT from '${SERVE_HOST:-unrecorded host}' — gate skipped" >&2
	fi
	echo "== bench check: mapperd serving vs committed $SERVE_OUT ==" >&2
	SERVE_LINE="$(serve_best 3)"
	echo "$SERVE_LINE" | awk -v committed="$(cat "$SERVE_OUT")" -v gate="$SERVE_GATE" '
		{
			for (i = 1; i <= NF; i++)
				if (split($i, kv, "=") == 2) cur[kv[1]] = kv[2] + 0
		}
		END {
			n = split(committed, lines, "\n")
			for (i = 1; i <= n; i++)
				for (k in cur)
					if (match(lines[i], "\"" k "\": [0-9.]+"))
						base[k] = substr(lines[i], RSTART + length(k) + 4, RLENGTH - length(k) - 4) + 0
			fail = 0
			for (k in base) {
				if (k == "conns" || k ~ /_us$/) continue # shape + latency: informational
				ratio = cur[k] / base[k]
				printf "%-18s %12.0f  committed %12.0f  (%.2fx)%s\n", k, cur[k], base[k], ratio, \
					(gate ? "" : "  [skipped: different host]")
				if (gate && ratio < 0.75) {
					printf "bench check FAILED: mapperd %s regressed to %.0f%% of committed throughput\n", \
						k, ratio * 100
					fail = 1
				}
			}
			if (fail) exit 1
			print (gate ? "serve bench check passed" : "serve bench check skipped (host mismatch)")
		}' >&2
	exit 0
fi

COUNT="${1:-3}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== micro: engine + detectors + matrix ==" >&2
go test -run '^$' -bench 'BenchmarkEngine|BenchmarkDetectors|BenchmarkSparseMatrix' -benchtime 2s \
	-benchmem ./internal/sim ./internal/comm | tee -a "$RAW" >&2

echo "== micro: multilevel mapper ==" >&2
go test -run '^$' -bench BenchmarkMultilevel -benchtime 2x \
	-benchmem ./internal/mapping | tee -a "$RAW" >&2

echo "== micro: serve fast path (wire parse, WAL group commit, recovery) ==" >&2
go test -run '^$' -bench 'BenchmarkIngestParse|BenchmarkWALGroupCommit|BenchmarkRecovery' \
	-benchtime 2x -benchmem ./internal/serve | tee -a "$RAW" >&2

echo "== end-to-end: parallel suite (count=$COUNT) ==" >&2
go test . -run '^$' -bench BenchmarkParallelSuite -benchtime 1x -count "$COUNT" \
	| tee -a "$RAW" >&2

# Render one JSON object per benchmark line. Repeated names (from -count)
# keep the minimum ns/op, the maximum events/sec, and the minimum
# bytes/allocs per op. The frozen baselines are the "before" of each
# optimization PR, kept verbatim with the host they were measured on, so
# the speedups stay reviewable next to the current numbers (and so "check"
# mode can rely on the top-level "benchmarks" key being unique). Baselines
# from before host stamping carry "unrecorded"; comparisons against them
# are qualitative only.
awk -v host="$(go env GOOS)/$(go env GOARCH)" -v hostid="$(host_id)" -v commit="$(commit_id)" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = ""; evs = ""; bpo = ""; apo = ""
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "ns/op") ns = $i
			if ($(i + 1) == "events/sec") evs = $i
			if ($(i + 1) == "B/op") bpo = $i
			if ($(i + 1) == "allocs/op") apo = $i
		}
		if (ns == "") next
		if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) best_ns[name] = ns
		if (evs != "" && (!(name in best_evs) || evs + 0 > best_evs[name] + 0)) best_evs[name] = evs
		if (bpo != "" && (!(name in best_bpo) || bpo + 0 < best_bpo[name] + 0)) best_bpo[name] = bpo
		if (apo != "" && (!(name in best_apo) || apo + 0 < best_apo[name] + 0)) best_apo[name] = apo
		if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
	}
	END {
		printf "{\n  \"host\": \"%s\",\n", host
		printf "  \"host_id\": \"%s\",\n", hostid
		printf "  \"commit\": \"%s\",\n", commit
		printf "  \"baselines\": [\n"
		printf "    {\n"
		printf "      \"engine\": \"pre-overhaul (linear pick, map-backed hot state), commit f16175d\",\n"
		printf "      \"host_id\": \"unrecorded\",\n"
		printf "      \"frozen\": [\n"
		printf "        {\"name\": \"BenchmarkParallelSuite/workers1\", \"ns_per_op\": 801345119},\n"
		printf "        {\"name\": \"BenchmarkParallelSuite/workers2\", \"ns_per_op\": 710678623},\n"
		printf "        {\"name\": \"BenchmarkParallelSuite/workers4\", \"ns_per_op\": 774978408},\n"
		printf "        {\"name\": \"BenchmarkParallelSuite/workers8\", \"ns_per_op\": 800366018}\n"
		printf "      ]\n    },\n"
		printf "    {\n"
		printf "      \"engine\": \"pre-presence-index (pairwise HM scan on the host), commit 089ac8f\",\n"
		printf "      \"host_id\": \"unrecorded\",\n"
		printf "      \"frozen\": [\n"
		printf "        {\"name\": \"BenchmarkEngine/null\", \"ns_per_op\": 35141989, \"events_per_sec\": 6993351},\n"
		printf "        {\"name\": \"BenchmarkEngine/SM\", \"ns_per_op\": 37496853, \"events_per_sec\": 6554157},\n"
		printf "        {\"name\": \"BenchmarkEngine/HM\", \"ns_per_op\": 1051462224, \"events_per_sec\": 233732},\n"
		printf "        {\"name\": \"BenchmarkEngine/oracle\", \"ns_per_op\": 40159467, \"events_per_sec\": 6119609},\n"
		printf "        {\"name\": \"BenchmarkDetectors/HM/scan-full\", \"ns_per_op\": 8945, \"events_per_sec\": 111793},\n"
		printf "        {\"name\": \"BenchmarkDetectors/HM/scan-sparse\", \"ns_per_op\": 776.8, \"events_per_sec\": 1287321}\n"
		printf "      ]\n    },\n"
		printf "    {\n"
		printf "      \"engine\": \"pre-compile-and-replay (goroutine token passing, per-event apply), commit b792496\",\n"
		printf "      \"host_id\": \"Intel(R) Xeon(R) Processor @ 2.10GHz x1\",\n"
		printf "      \"note\": \"best of 3, interleaved with the current numbers on the same machine\",\n"
		printf "      \"frozen\": [\n"
		printf "        {\"name\": \"BenchmarkEngine/null\", \"ns_per_op\": 37849446, \"events_per_sec\": 6493109, \"bytes_per_op\": 4022553, \"allocs_per_op\": 385},\n"
		printf "        {\"name\": \"BenchmarkEngine/SM\", \"ns_per_op\": 39061100, \"events_per_sec\": 6291693, \"bytes_per_op\": 4030328, \"allocs_per_op\": 421},\n"
		printf "        {\"name\": \"BenchmarkEngine/HM\", \"ns_per_op\": 67223222, \"events_per_sec\": 3655887, \"bytes_per_op\": 4030296, \"allocs_per_op\": 421},\n"
		printf "        {\"name\": \"BenchmarkEngine/oracle\", \"ns_per_op\": 41759291, \"events_per_sec\": 5885168, \"bytes_per_op\": 4060088, \"allocs_per_op\": 391}\n"
		printf "      ]\n    }\n"
		printf "  ],\n"
		printf "  \"benchmarks\": [\n"
		for (i = 1; i <= n; i++) {
			name = order[i]
			printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, best_ns[name]
			if (name in best_evs) printf ", \"events_per_sec\": %s", best_evs[name]
			if (name in best_bpo) printf ", \"bytes_per_op\": %s", best_bpo[name]
			if (name in best_apo) printf ", \"allocs_per_op\": %s", best_apo[name]
			printf "}%s\n", (i < n ? "," : "")
		}
		printf "  ]\n}\n"
	}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

echo "== serving: mapperd selftest (best of $COUNT) ==" >&2
serve_best "$COUNT" | awk -v host="$(go env GOOS)/$(go env GOARCH)" -v hostid="$(host_id)" -v commit="$(commit_id)" '
	{
		printf "{\n  \"host\": \"%s\",\n", host
		printf "  \"host_id\": \"%s\",\n", hostid
		printf "  \"commit\": \"%s\",\n", commit
		printf "  \"fleet\": {\"tenants\": 16, \"threads\": 8, \"events_per_conn\": 1000, \"batch\": 50, \"query_every\": 4},\n"
		printf "  \"baselines\": [\n"
		printf "    {\n"
		printf "      \"serve\": \"pre-fast-path (allocating scanner parse, outbox writer goroutine, strict request/response client), commit b792496\",\n"
		printf "      \"host_id\": \"Intel(R) Xeon(R) Processor @ 2.10GHz x1\",\n"
		printf "      \"note\": \"best of 3, interleaved with the current numbers on the same machine\",\n"
		printf "      \"frozen\": {\"conns\": 256, \"events_per_sec\": 1323328, \"queries_per_sec\": 6617, \"p50_us\": 5382, \"p99_us\": 9559}\n"
		printf "    }\n"
		printf "  ],\n"
		printf "  \"serving\": {"
		out = ""
		for (i = 2; i <= NF; i++)
			if (split($i, kv, "=") == 2)
				out = out sprintf("%s\"%s\": %s", (out == "" ? "" : ", "), kv[1], kv[2])
		printf "%s}\n}\n", out
	}' > "$SERVE_OUT"

echo "wrote $SERVE_OUT" >&2
