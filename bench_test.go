// Repository-level benchmarks: one per table and figure of the paper's
// evaluation section, plus the ablation benches called out in DESIGN.md.
//
// The figure benches time the regeneration of that figure's data and attach
// the figure's values as custom benchmark metrics (ReportMetric), so
//
//	go test -bench=Fig6 -benchmem
//
// both exercises the code path and prints the normalized results. Pattern
// and performance benches run at class W (the paper's evaluation scale) and
// simulate millions of memory accesses per iteration; expect seconds per
// bench.
package tlbmap_test

import (
	"fmt"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/core"
	"tlbmap/internal/datamap"
	"tlbmap/internal/harness"
	"tlbmap/internal/mapping"
	"tlbmap/internal/metrics"
	"tlbmap/internal/npb"
	"tlbmap/internal/splash"
	"tlbmap/internal/tlb"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// benchApps is the subset used by the per-figure benches; the full nine run
// in cmd/experiments. SP/LU/MG cover the structured patterns, CG the
// homogeneous one.
var benchApps = []string{"SP", "LU", "MG", "CG"}

func workloadW(b *testing.B, name string) core.Workload {
	b.Helper()
	w, err := core.NPBWorkload(name, npb.Params{Class: npb.ClassW})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// ---------------------------------------------------------------------------
// Table I: mechanism comparison — empirical Θ(P) vs Θ(P²·S) scaling of the
// two detection routines.

func benchDetectorScaling(b *testing.B, cores int, scan bool) {
	cfg := tlb.DefaultConfig
	tlbs := make(comm.TLBView, cores)
	for i := range tlbs {
		tlbs[i] = tlb.New(cfg)
		for p := 0; p < cfg.Entries; p++ {
			tlbs[i].Insert(vm.Translation{Page: vm.Page(p * cores), Frame: vm.Frame(p)})
		}
	}
	if scan {
		d := comm.NewHMDetector(cores, 1)
		d.MaybeScan(1, tlbs) // arming call: the first MaybeScan never scans
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.MaybeScan(uint64(2*i+4), tlbs)
		}
	} else {
		b.ResetTimer()
		d := comm.NewSMDetector(cores, 1)
		for i := 0; i < b.N; i++ {
			d.OnTLBMiss(0, vm.Page(i), tlbs)
		}
	}
}

// BenchmarkTable1SMSearch measures the software-managed search (Θ(P): one
// set probe per remote TLB). Compare the per-op times across core counts.
func BenchmarkTable1SMSearch(b *testing.B) {
	for _, cores := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("cores%d", cores), func(b *testing.B) {
			benchDetectorScaling(b, cores, false)
		})
	}
}

// BenchmarkTable1HMScan measures the hardware-managed scan (Θ(P²·S): all
// pairs of TLBs, set by set).
func BenchmarkTable1HMScan(b *testing.B) {
	for _, cores := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("cores%d", cores), func(b *testing.B) {
			benchDetectorScaling(b, cores, true)
		})
	}
}

// ---------------------------------------------------------------------------
// Table II: the cache hierarchy in its paper configuration — cost of the
// simulated access paths (L1 hit, L2 hit, memory fill, cache-to-cache).

func BenchmarkTable2MemoryHierarchy(b *testing.B) {
	w := workloadW(b, "SP")
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(w, nil, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: communication-pattern detection.

func benchDetection(b *testing.B, mech core.Mechanism) {
	for _, name := range benchApps {
		name := name
		b.Run(name, func(b *testing.B) {
			w := workloadW(b, name)
			var sim float64
			for i := 0; i < b.N; i++ {
				det, err := core.Detect(w, mech, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				oracle, err := core.Detect(w, core.Oracle, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sim = det.Matrix.Similarity(oracle.Matrix)
			}
			b.ReportMetric(sim, "similarity")
		})
	}
}

// BenchmarkFig4SMDetection regenerates the SM communication matrices and
// reports their similarity to the full-trace oracle.
func BenchmarkFig4SMDetection(b *testing.B) { benchDetection(b, core.SM) }

// BenchmarkFig5HMDetection regenerates the HM communication matrices and
// reports their similarity to the full-trace oracle.
func BenchmarkFig5HMDetection(b *testing.B) { benchDetection(b, core.HM) }

// ---------------------------------------------------------------------------
// Figures 6-9: performance under the SM mapping, normalized to the OS
// scheduler.

func benchFigure(b *testing.B, metric string, event metrics.Event) {
	machine := topology.Harpertown()
	for _, name := range benchApps {
		name := name
		b.Run(name, func(b *testing.B) {
			w := workloadW(b, name)
			var ratio float64
			for i := 0; i < b.N; i++ {
				sm, err := core.Detect(w, core.SM, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				place, err := core.BuildMapping(sm.Matrix, machine)
				if err != nil {
					b.Fatal(err)
				}
				mapped, err := core.Evaluate(w, place, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				osSched := mapping.NewOSScheduler(11)
				var base float64
				const reps = 3
				for r := 0; r < reps; r++ {
					p, err := osSched.Map(sm.Matrix, machine)
					if err != nil {
						b.Fatal(err)
					}
					res, err := core.Evaluate(w, p, core.Options{JitterSeed: int64(r + 1)})
					if err != nil {
						b.Fatal(err)
					}
					if metric == "time" {
						base += float64(res.Cycles) / reps
					} else {
						base += float64(res.Counters.Get(event)) / reps
					}
				}
				if metric == "time" {
					ratio = float64(mapped.Cycles) / base
				} else {
					ratio = float64(mapped.Counters.Get(event)) / base
				}
			}
			b.ReportMetric(ratio, "normalized_"+metric)
		})
	}
}

// BenchmarkFig6ExecutionTime regenerates the normalized execution times.
func BenchmarkFig6ExecutionTime(b *testing.B) { benchFigure(b, "time", 0) }

// BenchmarkFig7Invalidations regenerates the normalized invalidation counts.
func BenchmarkFig7Invalidations(b *testing.B) { benchFigure(b, "inv", metrics.Invalidations) }

// BenchmarkFig8Snoops regenerates the normalized snoop-transaction counts.
func BenchmarkFig8Snoops(b *testing.B) { benchFigure(b, "snoop", metrics.SnoopTransactions) }

// BenchmarkFig9L2Misses regenerates the normalized L2 miss counts.
func BenchmarkFig9L2Misses(b *testing.B) { benchFigure(b, "l2miss", metrics.L2Misses) }

// ---------------------------------------------------------------------------
// Table III: SM statistics (miss rate, sampled fraction, overhead).

func BenchmarkTable3Overhead(b *testing.B) {
	for _, name := range []string{"SP", "IS", "EP"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w := workloadW(b, name)
			var missRate, overhead float64
			for i := 0; i < b.N; i++ {
				det, err := core.Detect(w, core.SM, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				missRate = det.Result.TLBMissRate
				overhead = det.Result.DetectionOverhead
			}
			b.ReportMetric(missRate*100, "missrate_%")
			b.ReportMetric(overhead*100, "overhead_%")
		})
	}
}

// ---------------------------------------------------------------------------
// Tables IV and V: absolute rates and run-to-run variance via the harness.

func BenchmarkTable4Rates(b *testing.B) {
	cfg := harness.Config{Class: npb.ClassW, Benchmarks: []string{"SP"}, Repetitions: 2}
	var rate float64
	for i := 0; i < b.N; i++ {
		results, err := harness.RunPerformance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rate = results[0].Stats[harness.SMLabel].InvPerSec.Mean()
	}
	b.ReportMetric(rate, "inv_per_sec")
}

func BenchmarkTable5Variance(b *testing.B) {
	cfg := harness.Config{Class: npb.ClassW, Benchmarks: []string{"SP"}, Repetitions: 4}
	var osSD, smSD float64
	for i := 0; i < b.N; i++ {
		results, err := harness.RunPerformance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		osSD = results[0].Stats[harness.OSLabel].Time.RelStdDev()
		smSD = results[0].Stats[harness.SMLabel].Time.RelStdDev()
	}
	b.ReportMetric(osSD, "os_time_sd_%")
	b.ReportMetric(smSD, "sm_time_sd_%")
}

// BenchmarkParallelSuite measures the parallel experiment engine: the same
// Table IV/V workload fanned out over 1, 2, 4 and 8 workers. The per-job
// seeding makes the output identical at every width, so the sub-benchmarks
// differ only in wall-clock time; compare their ns/op to read the scaling
// curve (flat on a single-core host, near-linear up to GOMAXPROCS
// otherwise).
func BenchmarkParallelSuite(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := harness.Config{
				Class:       npb.ClassS,
				Benchmarks:  benchApps,
				Repetitions: 4,
				Parallel:    workers,
			}
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunPerformance(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 5).

// BenchmarkAblationMappingAlgorithms compares the mapping cost achieved by
// Edmonds matching, greedy matching and recursive bipartitioning on the SP
// pattern.
func BenchmarkAblationMappingAlgorithms(b *testing.B) {
	machine := topology.Harpertown()
	w := workloadW(b, "SP")
	det, err := core.Detect(w, core.Oracle, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []mapping.Algorithm{
		mapping.NewEdmonds(),
		mapping.NewGreedyMatch(),
		mapping.RecursiveBipartition{},
	} {
		algo := algo
		b.Run(algo.Name(), func(b *testing.B) {
			var cost uint64
			for i := 0; i < b.N; i++ {
				place, err := algo.Map(det.Matrix, machine)
				if err != nil {
					b.Fatal(err)
				}
				cost = mapping.Cost(det.Matrix, machine, place)
			}
			b.ReportMetric(float64(cost), "mapping_cost")
		})
	}
}

// BenchmarkAblationSamplingRate sweeps the SM sampling period n: accuracy
// versus overhead (Section VI-C discusses the trade-off).
func BenchmarkAblationSamplingRate(b *testing.B) {
	w := workloadW(b, "SP")
	oracle, err := core.Detect(w, core.Oracle, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []uint64{1, 10, 100} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var sim, overhead float64
			for i := 0; i < b.N; i++ {
				det, err := core.Detect(w, core.SM, core.Options{SampleEvery: n})
				if err != nil {
					b.Fatal(err)
				}
				sim = det.Matrix.Similarity(oracle.Matrix)
				overhead = det.Result.DetectionOverhead
			}
			b.ReportMetric(sim, "similarity")
			b.ReportMetric(overhead*100, "overhead_%")
		})
	}
}

// BenchmarkAblationScanInterval sweeps the HM scan interval.
func BenchmarkAblationScanInterval(b *testing.B) {
	w := workloadW(b, "SP")
	oracle, err := core.Detect(w, core.Oracle, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, interval := range []uint64{20_000, 100_000, 1_000_000} {
		interval := interval
		b.Run(fmt.Sprintf("every%d", interval), func(b *testing.B) {
			var sim, overhead float64
			for i := 0; i < b.N; i++ {
				det, err := core.Detect(w, core.HM, core.Options{ScanInterval: interval})
				if err != nil {
					b.Fatal(err)
				}
				sim = det.Matrix.Similarity(oracle.Matrix)
				overhead = det.Result.DetectionOverhead
			}
			b.ReportMetric(sim, "similarity")
			b.ReportMetric(overhead*100, "overhead_%")
		})
	}
}

// BenchmarkAblationTLBGeometry sweeps the TLB size: detection accuracy as a
// function of TLB reach (Section VI-A fixes 64 entries / 4 ways).
func BenchmarkAblationTLBGeometry(b *testing.B) {
	w := workloadW(b, "SP")
	oracle, err := core.Detect(w, core.Oracle, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []tlb.Config{
		{Entries: 16, Ways: 4},
		{Entries: 64, Ways: 4},
		{Entries: 256, Ways: 4},
	} {
		cfg := cfg
		b.Run(fmt.Sprintf("entries%d", cfg.Entries), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				det, err := core.Detect(w, core.SM, core.Options{TLB: cfg})
				if err != nil {
					b.Fatal(err)
				}
				sim = det.Matrix.Similarity(oracle.Matrix)
			}
			b.ReportMetric(sim, "similarity")
		})
	}
}

// BenchmarkAblationOracleGranularity compares page- and line-granularity
// ground truth, quantifying page-level false sharing (Section III-B5).
func BenchmarkAblationOracleGranularity(b *testing.B) {
	for _, name := range []string{"SP", "IS"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w := workloadW(b, name)
			var ratio float64
			for i := 0; i < b.N; i++ {
				page, err := core.Detect(w, core.Oracle, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				line, err := core.Detect(w, core.OracleLine, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if lt := line.Matrix.Total(); lt > 0 {
					ratio = float64(page.Matrix.Total()) / float64(lt)
				}
			}
			b.ReportMetric(ratio, "page_over_line")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot simulator paths.

func BenchmarkSimulatorThroughput(b *testing.B) {
	w := workloadW(b, "MG")
	b.ResetTimer()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Evaluate(w, nil, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		accesses = res.Accesses
	}
	b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// ---------------------------------------------------------------------------
// Extension benches: the SPLASH-2-style suite, NUMA data mapping, online
// remapping, and the Section II storage experiment.

// BenchmarkSplashDetection detects the SPLASH-suite patterns and reports
// similarity to the oracle (extension suite; see internal/splash).
func BenchmarkSplashDetection(b *testing.B) {
	for _, name := range []string{"OCEAN", "LUC", "WATER"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := core.SplashWorkload(name, splash.Params{Class: splash.ClassW})
			if err != nil {
				b.Fatal(err)
			}
			var sim float64
			for i := 0; i < b.N; i++ {
				sm, _, oracle, err := core.DetectAll(w, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sim = sm.Matrix.Similarity(oracle.Matrix)
			}
			b.ReportMetric(sim, "similarity")
		})
	}
}

// BenchmarkAblationDataMapping compares the NUMA data-mapping policies on
// SP over a two-node machine, reporting remote-fill counts.
func BenchmarkAblationDataMapping(b *testing.B) {
	machine := topology.NUMA(2)
	opt := core.Options{Machine: machine}
	w := workloadW(b, "SP")
	prof, err := core.ProfileData(w, opt)
	if err != nil {
		b.Fatal(err)
	}
	placement := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, policy := range []datamap.Policy{
		datamap.FirstTouch{}, datamap.MostAccessed{}, datamap.Interleave{},
	} {
		policy := policy
		b.Run(policy.Name(), func(b *testing.B) {
			var remote float64
			for i := 0; i < b.N; i++ {
				assign, err := datamap.Build(policy, prof.Profile, machine, placement)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.EvaluateNUMA(w, placement, assign, opt)
				if err != nil {
					b.Fatal(err)
				}
				remote = float64(res.Counters.Get(metrics.RemoteMemAccesses))
			}
			b.ReportMetric(remote, "remote_fills")
		})
	}
}

// BenchmarkOnlineRemapping drives the online controller over the rotating
// LUC hub epochs, reporting how many remaps it issues.
func BenchmarkOnlineRemapping(b *testing.B) {
	w, err := core.SplashWorkload("LUC", splash.Params{Class: splash.ClassW})
	if err != nil {
		b.Fatal(err)
	}
	var remaps float64
	for i := 0; i < b.N; i++ {
		det, err := core.Detect(w, core.Oracle, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Feed the whole-run matrix plus perturbed variants as epochs.
		o := mapping.NewOnlineMapper(topology.Harpertown(), 0.8)
		if _, err := o.Observe(det.Matrix); err != nil {
			b.Fatal(err)
		}
		remaps = float64(o.Remaps())
	}
	b.ReportMetric(remaps, "remaps")
}

// BenchmarkStorageCost measures the trace-recording path (Section II's
// storage argument) and reports bytes per access.
func BenchmarkStorageCost(b *testing.B) {
	w := workloadW(b, "MG")
	var perAccess float64
	for i := 0; i < b.N; i++ {
		records, bytes, err := core.MeasureTraceSize(w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		perAccess = float64(bytes) / float64(records)
	}
	b.ReportMetric(perAccess, "bytes/access")
}

// BenchmarkDynamicMigration runs the full online pipeline (detect -> epoch
// deltas -> mid-run thread migration) on a phase-changing workload and
// reports the speedup over the static identity placement.
func BenchmarkDynamicMigration(b *testing.B) {
	twoPhase := func(as *vm.AddressSpace) []trace.Program {
		buffers := make([]*trace.F64, 8)
		for i := range buffers {
			buffers[i] = trace.NewF64(as, 4096)
		}
		programs := make([]trace.Program, 8)
		for i := range programs {
			programs[i] = func(t *trace.Thread) {
				id := t.ID()
				for r := 0; r < 60; r++ {
					partner := id ^ 1
					if r >= 30 {
						partner = (id + 4) % 8
					}
					for k := 0; k < 256; k++ {
						buffers[id].Set(t, k, float64(r+k))
					}
					t.Barrier()
					var sum float64
					for k := 0; k < 256; k++ {
						sum += buffers[partner].Get(t, k)
					}
					_ = sum
					t.Barrier()
				}
			}
		}
		return programs
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		static, err := core.Evaluate(twoPhase, nil, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := core.EvaluateWithDynamicMigration(twoPhase, core.Oracle,
			core.Options{MigrationInterval: 200_000})
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(static.Cycles) / float64(dyn.Result.Cycles)
	}
	b.ReportMetric(speedup, "speedup_x")
}
