#!/bin/sh
# Tier-1 verification gate: vet, build, tests (shuffled), the race
# detector, a coverage floor on the engine + memory hierarchy, and a short
# fuzz smoke of the engine-vs-oracle differential tester.
# Run before every commit; CI runs exactly this script.
set -eux

go vet ./...
go build ./...
go test -shuffle=on ./...
go test -race ./...

# Coverage floor: the simulator core (engine + memory hierarchy) is what
# every reported number rests on; its statement coverage must not drop
# below the seed baseline (95.6% at the time the gate was added).
go test -coverprofile=/tmp/tlbmap-cover.out -coverpkg=./internal/sim,./internal/mem ./internal/sim ./internal/mem ./internal/check
go tool cover -func=/tmp/tlbmap-cover.out | awk '
	/^total:/ {
		sub(/%/, "", $NF)
		printf "sim+mem coverage: %s%%\n", $NF
		if ($NF + 0 < 95.0) {
			printf "coverage gate FAILED: %s%% < 95.0%%\n", $NF
			exit 1
		}
	}'

# Fuzz smoke: run the differential fuzz target briefly on top of its
# committed corpus. Full fuzzing is manual (go test -fuzz ...).
go test ./internal/check -run=NONE -fuzz=FuzzEngineVsOracle -fuzztime=10s
