#!/bin/sh
# Tier-1 verification gate: vet, build, tests (shuffled), the race
# detector, a coverage floor on the engine + memory hierarchy, and a short
# fuzz smoke of the engine-vs-oracle differential tester.
# Run before every commit; CI runs exactly this script.
set -eux

go vet ./...
go build ./...
# -timeout turns a wedged test (deadlocked worker, unbounded retry) into
# a failure instead of a hung CI run.
go test -timeout 10m -shuffle=on ./...
go test -timeout 15m -race ./...

# Coverage floor: the simulator core (engine + memory hierarchy) is what
# every reported number rests on; its statement coverage must not drop
# below the seed baseline (95.6% at the time the gate was added).
go test -coverprofile=/tmp/tlbmap-cover.out -coverpkg=./internal/sim,./internal/mem ./internal/sim ./internal/mem ./internal/check
go tool cover -func=/tmp/tlbmap-cover.out | awk '
	/^total:/ {
		sub(/%/, "", $NF)
		printf "sim+mem coverage: %s%%\n", $NF
		if ($NF + 0 < 95.0) {
			printf "coverage gate FAILED: %s%% < 95.0%%\n", $NF
			exit 1
		}
	}'

# Fault smoke: every injection scenario end-to-end through the CLI with
# the runtime invariant checkers armed. Faults may perturb timing and
# detection only — an invariant violation here means one leaked into
# architectural state.
for sc in shootdown migflush scandrop sampleloss preempt decay all; do
	go run ./cmd/tlbmap -bench CG -class S -mech SM -check -faults "$sc:1" >/dev/null
	go run ./cmd/tlbmap -bench CG -class S -mech HM -check -faults "$sc:1" >/dev/null
done

# Bench smoke: one iteration of every benchmark, so a change that breaks a
# benchmark (or the zero-allocation steady-state invariant, which is a
# plain test and already ran above, but is cheap enough to re-check in
# isolation with a clear name) fails here rather than on the next manual
# scripts/bench.sh run. BenchmarkEngine additionally goes through
# scripts/bench.sh check, which compares events/sec against the committed
# BENCH_engine.json and fails on a >25% throughput regression in any case —
# full timing is still a manual scripts/bench.sh run.
scripts/bench.sh check
go test -run '^$' -bench BenchmarkDetectors -benchtime 1x ./internal/comm >/dev/null
go test . -run '^$' -bench BenchmarkParallelSuite -benchtime 1x >/dev/null
go test -run 'TestSteadyStateZeroAllocs|TestReplaySteadyStateZeroAllocs' ./internal/sim
# The serve-plane analogue: the wire hot path (parse, batch copy, enqueue,
# response build) must stay allocation-free per event at steady state.
go test -run 'TestIngestSteadyStateZeroAllocs' ./internal/serve

# Shard-determinism smoke: the sharded engine must produce byte-identical
# Results to the serial goroutine engine at every worker count. The small
# cell crosses the detector/jitter/migration config matrix at 8 cores with
# hundreds of barrier windows; the manycore cell runs 256 cores (heap
# scheduler, hierarchical topology) at workers {2,7,16}, compiled and not,
# against one serial reference.
go test -timeout 10m -run 'TestShardWorkerInvariance' ./internal/sim

# Serve smoke: the mapping daemon end-to-end over real TCP — a short
# synthetic-fleet burst through cmd/mapperd's selftest, which exits
# non-zero on any hangup, ERR response, quarantine, unclean drain, or p99
# query latency above the deadline. The grep re-asserts the drain banner so
# a silently-truncated run cannot pass.
SERVE_SMOKE="$(go run ./cmd/mapperd -selftest -conns 64 -tenants 8 -threads 8 \
	-events 200 -batch 25 -query-every 4 -seed 1)"
echo "$SERVE_SMOKE" | grep -q 'drained cleanly'

# Reconnect smoke: the same fleet sequenced, with every connection
# deliberately dropping and resuming mid-stream over real TCP. The selftest
# exits non-zero if resume double-applies or loses a single event.
RECONNECT_SMOKE="$(go run ./cmd/mapperd -selftest -conns 64 -tenants 8 -threads 8 \
	-events 200 -batch 25 -query-every 4 -seed 2 -reconnect)"
echo "$RECONNECT_SMOKE" | grep -q 'drained cleanly'

# Crash smoke: durability end-to-end at the process level. A durable
# daemon is SIGKILLed mid-ingest — no drain, no final snapshot, possibly a
# torn record at the WAL tail — and a restart must recover every tenant
# (snapshot restore + WAL-tail replay) under a timeout. go build, not
# go run: SIGKILL must land on mapperd itself, not a wrapper.
CRASH_DIR="$(mktemp -d)"
CRASH_BIN="$(mktemp -u)"
go build -o "$CRASH_BIN" ./cmd/mapperd
"$CRASH_BIN" -selftest -conns 64 -tenants 8 -threads 8 -events 200000 \
	-batch 50 -query-every 0 -seed 3 -dir "$CRASH_DIR" -sync interval &
CRASH_PID=$!
sleep 2
kill -9 "$CRASH_PID" || true
wait "$CRASH_PID" || true
timeout 60 "$CRASH_BIN" -verify-recovery -dir "$CRASH_DIR" | grep -q 'recovery OK'
rm -rf "$CRASH_DIR" "$CRASH_BIN"

# Scale smoke: one 256-core cell of the manycore scale study end-to-end
# through the CLI — hierarchical topology generation, SM detection with
# 256 threads, the sparse matrix representation and the multilevel mapper
# all on the real path. timeout turns a scalability regression (a
# quadratic path sneaking back in) into a failure instead of a hang.
timeout 300 go run ./cmd/experiments -exp scale -class S -bench CG -cores 256 -mappers multilevel,auto >/dev/null

# Fuzz smoke: run the differential fuzz targets briefly on top of their
# committed corpora. Full fuzzing is manual (go test -fuzz ...).
go test ./internal/check -run=NONE -fuzz='FuzzEngineVsOracle$' -fuzztime=10s
go test ./internal/check -run=NONE -fuzz=FuzzEngineVsOracleFaults -fuzztime=10s
# Compiled-vs-goroutine equivalence, seeded from the differential corpus:
# every input runs serial, compiled-replay and sharded, and cross-compares.
go test ./internal/check -run=NONE -fuzz='FuzzReplayVsSerial$' -fuzztime=10s
go test ./internal/mapping -run=NONE -fuzz=FuzzMultilevelVsBlossom -fuzztime=10s
go test ./internal/wal -run=NONE -fuzz=FuzzWALRecovery -fuzztime=10s
