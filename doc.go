// Package tlbmap reproduces "Using the Translation Lookaside Buffer to Map
// Threads in Parallel Applications Based on Shared Memory" (Cruz, Diener,
// Navaux — IPDPS 2012) as a Go library.
//
// The root package only anchors the repository-level benchmarks
// (bench_test.go), which regenerate every table and figure of the paper's
// evaluation; the implementation lives under internal/:
//
//   - internal/core — the public pipeline façade (detect, map, evaluate)
//   - internal/comm — communication matrices and the SM/HM/oracle detectors
//   - internal/sim, internal/mem, internal/tlb, internal/vm — the simulator
//   - internal/matching, internal/mapping — Edmonds matching and the
//     hierarchical mapper
//   - internal/npb — the NAS-Parallel-Benchmarks-like workload suite
//   - internal/harness — experiment drivers and table/figure renderers
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured comparison.
package tlbmap
