// Command tlbmap runs the full pipeline of the paper for one benchmark:
// detect the communication pattern with a TLB-based mechanism, build the
// hierarchical Edmonds mapping, and evaluate the mapping against the OS
// scheduler baseline.
//
// Usage:
//
//	tlbmap -bench SP [-suite npb|splash] [-mech SM|HM|oracle] [-class S|W]
//	       [-topology harpertown|numa2|numa4] [-sample N] [-interval N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/metrics"
	"tlbmap/internal/npb"
	"tlbmap/internal/splash"
	"tlbmap/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tlbmap: ")
	var (
		bench    = flag.String("bench", "SP", "benchmark to run (npb: BT CG EP FT IS LU MG SP UA; splash: BARNES LUC OCEAN RADIX WATER)")
		suite    = flag.String("suite", "npb", "benchmark suite: npb or splash")
		mech     = flag.String("mech", "SM", "detection mechanism: SM, HM, oracle, oracle-line")
		class    = flag.String("class", "W", "problem class: S or W")
		topo     = flag.String("topology", "harpertown", "machine: harpertown, numa2, numa4")
		sample   = flag.Uint64("sample", 0, "SM sampling period n (0 = default)")
		interval = flag.Uint64("interval", 0, "HM scan interval in cycles (0 = default)")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var machine *topology.Machine
	switch strings.ToLower(*topo) {
	case "harpertown":
		machine = topology.Harpertown()
	case "numa2":
		machine = topology.NUMA(2)
	case "numa4":
		machine = topology.NUMA(4)
	default:
		log.Fatalf("unknown topology %q", *topo)
	}

	var (
		w     core.Workload
		name  string
		descr string
		err   error
	)
	switch strings.ToLower(*suite) {
	case "npb":
		b, e := npb.Get(strings.ToUpper(*bench))
		if e != nil {
			log.Fatal(e)
		}
		name, descr = b.Name, b.Description
		w = core.FromNPB(b, npb.Params{
			Threads: machine.NumCores(),
			Class:   npb.Class(strings.ToUpper(*class)),
			Seed:    *seed,
		})
	case "splash":
		b, e := splash.Get(strings.ToUpper(*bench))
		if e != nil {
			log.Fatal(e)
		}
		name, descr = b.Name, b.Description
		w = core.FromSplash(b, splash.Params{
			Threads: machine.NumCores(),
			Class:   splash.Class(strings.ToUpper(*class)),
			Seed:    *seed,
		})
	default:
		log.Fatalf("unknown suite %q", *suite)
	}
	_ = err
	opt := core.Options{Machine: machine, SampleEvery: *sample, ScanInterval: *interval}

	fmt.Printf("== %s (%s): detecting communication pattern with %s ==\n", name, descr, *mech)
	det, err := core.Detect(w, core.Mechanism(*mech), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accesses: %d, cycles: %d, TLB miss rate: %.4f%%, detection overhead: %.4f%%\n",
		det.Result.Accesses, det.Result.Cycles, det.Result.TLBMissRate*100, det.Result.DetectionOverhead*100)
	fmt.Println("communication matrix:")
	fmt.Println(det.Matrix.Heatmap())

	place, err := core.BuildMapping(det.Matrix, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread -> core mapping: %v\n", place)
	fmt.Printf("mapping cost: %d (vs identity %d)\n\n",
		mapping.Cost(det.Matrix, machine, place),
		mapping.Cost(det.Matrix, machine, identity(det.Matrix.N())))

	fmt.Println("== evaluating mapping vs OS scheduler baseline ==")
	mapped, err := core.Evaluate(w, place, opt)
	if err != nil {
		log.Fatal(err)
	}
	osSched := mapping.NewOSScheduler(*seed + 42)
	osPlace, err := osSched.Map(det.Matrix, machine)
	if err != nil {
		log.Fatal(err)
	}
	osRes, err := core.Evaluate(w, osPlace, opt)
	if err != nil {
		log.Fatal(err)
	}
	rel := func(a, b uint64) float64 {
		if b == 0 {
			return 1
		}
		return float64(a) / float64(b)
	}
	fmt.Printf("%-22s %14s %14s %10s\n", "metric", "mapped", "OS", "ratio")
	rows := []struct {
		name string
		m, o uint64
	}{
		{"execution cycles", mapped.Cycles, osRes.Cycles},
		{"invalidations", mapped.Counters.Get(metrics.Invalidations), osRes.Counters.Get(metrics.Invalidations)},
		{"snoop transactions", mapped.Counters.Get(metrics.SnoopTransactions), osRes.Counters.Get(metrics.SnoopTransactions)},
		{"L2 misses", mapped.Counters.Get(metrics.L2Misses), osRes.Counters.Get(metrics.L2Misses)},
		{"inter-chip traffic", mapped.Counters.Get(metrics.InterChipTraffic), osRes.Counters.Get(metrics.InterChipTraffic)},
	}
	for _, r := range rows {
		fmt.Printf("%-22s %14d %14d %10.3f\n", r.name, r.m, r.o, rel(r.m, r.o))
	}
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
