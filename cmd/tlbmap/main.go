// Command tlbmap runs the full pipeline of the paper for one benchmark:
// detect the communication pattern with a TLB-based mechanism, build the
// hierarchical Edmonds mapping, and evaluate the mapping against the OS
// scheduler baseline.
//
// Usage:
//
//	tlbmap -bench SP [-suite npb|splash] [-mech SM|HM|oracle] [-class S|W]
//	       [-topology harpertown|numa2|numa4] [-sample N] [-interval N]
//	       [-seed N] [-reps N] [-parallel N] [-check] [-v]
//	       [-faults SPEC] [-fault-seed N]
//	       [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// -check arms the internal/check invariant suite (sequential memory
// oracle, MESI legality, TLB consistency, counter conservation) on every
// simulated run; an invariant violation aborts with a diagnostic.
//
// -faults arms the fault-injection layer on every simulated run: SPEC is
// a comma-separated scenario[:rate] list (shootdown, migflush, scandrop,
// sampleloss, preempt, decay; "all" arms everything), e.g.
// "sampleloss:0.5,shootdown" or "all:0.3". The detection phase reports
// how many faults fired. Ctrl-C cancels an in-flight simulation promptly.
//
// The OS baseline draws a fresh random placement per repetition (-reps);
// the mapped run and the baseline repetitions are independent simulation
// jobs fanned out over -parallel workers (0 = one per CPU). Per-repetition
// seeds derive from (seed, benchmark, repetition), so the numbers are
// identical at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"tlbmap/internal/core"
	"tlbmap/internal/fault"
	"tlbmap/internal/mapping"
	"tlbmap/internal/npb"
	"tlbmap/internal/prof"
	"tlbmap/internal/runner"
	"tlbmap/internal/splash"
	"tlbmap/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tlbmap: ")
	var (
		bench    = flag.String("bench", "SP", "benchmark to run (npb: BT CG EP FT IS LU MG SP UA; splash: BARNES LUC OCEAN RADIX WATER)")
		suite    = flag.String("suite", "npb", "benchmark suite: npb or splash")
		mech     = flag.String("mech", "SM", "detection mechanism: SM, HM, oracle, oracle-line")
		class    = flag.String("class", "W", "problem class: S or W")
		topo     = flag.String("topology", "harpertown", "machine: harpertown, numa2, numa4")
		sample   = flag.Uint64("sample", 0, "SM sampling period n (0 = default)")
		interval = flag.Uint64("interval", 0, "HM scan interval in cycles (0 = default)")
		seed     = flag.Int64("seed", 1, "workload seed")
		reps     = flag.Int("reps", 1, "OS-baseline repetitions (fresh random placement each)")
		parallel = flag.Int("parallel", 0, "worker goroutines for evaluation jobs (0 = one per CPU)")
		chk      = flag.Bool("check", false, "arm the runtime invariant checkers (oracle, MESI, TLB, conservation); slower")
		verbose  = flag.Bool("v", false, "print job progress")

		faults    = flag.String("faults", "", "fault scenarios to arm: scenario[:rate],... or all[:rate]")
		faultSeed = flag.Int64("fault-seed", 1, "seed of the fault-injection RNG streams")

		profiling = prof.Register(flag.CommandLine)
	)
	flag.Parse()
	stopProf, profErr := profiling.Start()
	if profErr != nil {
		log.Fatal(profErr)
	}
	defer stopProf()
	if *reps < 1 {
		*reps = 1
	}

	var machine *topology.Machine
	switch strings.ToLower(*topo) {
	case "harpertown":
		machine = topology.Harpertown()
	case "numa2":
		machine = topology.NUMA(2)
	case "numa4":
		machine = topology.NUMA(4)
	default:
		log.Fatalf("unknown topology %q", *topo)
	}

	var (
		w     core.Workload
		name  string
		descr string
		err   error
	)
	switch strings.ToLower(*suite) {
	case "npb":
		b, e := npb.Get(strings.ToUpper(*bench))
		if e != nil {
			log.Fatal(e)
		}
		name, descr = b.Name, b.Description
		w = core.FromNPB(b, npb.Params{
			Threads: machine.NumCores(),
			Class:   npb.Class(strings.ToUpper(*class)),
			Seed:    *seed,
		})
	case "splash":
		b, e := splash.Get(strings.ToUpper(*bench))
		if e != nil {
			log.Fatal(e)
		}
		name, descr = b.Name, b.Description
		w = core.FromSplash(b, splash.Params{
			Threads: machine.NumCores(),
			Class:   splash.Class(strings.ToUpper(*class)),
			Seed:    *seed,
		})
	default:
		log.Fatalf("unknown suite %q", *suite)
	}
	_ = err
	plan, err := fault.ParsePlan(*faults, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}
	// Ctrl-C cancels in-flight simulations through the engine's interrupt
	// hook.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	opt := core.Options{
		Machine: machine, SampleEvery: *sample, ScanInterval: *interval,
		Check: *chk, Faults: plan, Interrupt: ctx.Done(),
	}
	if *chk {
		fmt.Println("runtime invariant checkers armed: any violation aborts the run")
	}
	if !plan.Empty() {
		fmt.Printf("fault injection armed: %s (seed %d)\n", plan, plan.Seed)
	}

	fmt.Printf("== %s (%s): detecting communication pattern with %s ==\n", name, descr, *mech)
	det, err := core.Detect(w, core.Mechanism(*mech), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accesses: %d, cycles: %d, TLB miss rate: %.4f%%, detection overhead: %.4f%%\n",
		det.Result.Accesses, det.Result.Cycles, det.Result.TLBMissRate*100, det.Result.DetectionOverhead*100)
	if !plan.Empty() {
		fmt.Printf("faults injected during detection: %s\n", det.FaultStats)
	}
	fmt.Println("communication matrix:")
	fmt.Println(det.Matrix.Heatmap())

	place, err := core.BuildMapping(det.Matrix, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread -> core mapping: %v\n", place)
	fmt.Printf("mapping cost: %d (vs identity %d)\n\n",
		mapping.Cost(det.Matrix, machine, place),
		mapping.Cost(det.Matrix, machine, identity(det.Matrix.N())))

	fmt.Printf("== evaluating mapping vs OS scheduler baseline (%d repetition(s)) ==\n", *reps)
	// Job 0 is the mapped run; jobs 1..reps are OS-baseline repetitions,
	// each with a placement drawn from its own (seed, benchmark, rep)
	// stream so the numbers don't depend on worker count or run order.
	pool := runner.Pool{Workers: *parallel}
	if *verbose {
		pool.Progress = func(done, total int) { log.Printf("jobs %d/%d done", done, total) }
	}
	results, err := runner.Map(pool, *reps+1, func(i int) (core.RunMetrics, error) {
		if i == 0 {
			return core.EvaluateMetrics(w, place, opt)
		}
		s := runner.Seed(*seed, name, "os", strconv.Itoa(i-1))
		osPlace, err := mapping.NewOSScheduler(s).Map(det.Matrix, machine)
		if err != nil {
			return core.RunMetrics{}, err
		}
		return core.EvaluateMetrics(w, osPlace, opt)
	})
	if err != nil {
		log.Fatal(err)
	}
	mapped, osRuns := results[0], results[1:]
	osMean := func(get func(core.RunMetrics) uint64) float64 {
		var sum float64
		for _, r := range osRuns {
			sum += float64(get(r))
		}
		return sum / float64(len(osRuns))
	}
	rel := func(a, b float64) float64 {
		if b == 0 {
			return 1
		}
		return a / b
	}
	fmt.Printf("%-22s %14s %14s %10s\n", "metric", "mapped", "OS (mean)", "ratio")
	rows := []struct {
		name string
		get  func(core.RunMetrics) uint64
	}{
		{"execution cycles", func(r core.RunMetrics) uint64 { return r.Cycles }},
		{"invalidations", func(r core.RunMetrics) uint64 { return r.Invalidations }},
		{"snoop transactions", func(r core.RunMetrics) uint64 { return r.Snoops }},
		{"L2 misses", func(r core.RunMetrics) uint64 { return r.L2Misses }},
		{"inter-chip traffic", func(r core.RunMetrics) uint64 { return r.InterChip }},
	}
	for _, r := range rows {
		m, o := float64(r.get(mapped)), osMean(r.get)
		fmt.Printf("%-22s %14.0f %14.0f %10.3f\n", r.name, m, o, rel(m, o))
	}
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
