// Command experiments regenerates every table and figure of the paper's
// evaluation section. Without flags it runs the full suite; -exp selects a
// single experiment.
//
// Usage:
//
//	experiments [-exp all|table1..table5|fig4..fig9|hm-overhead|storage|compare|faults|scale]
//	            [-suite npb|splash] [-class S|W] [-reps N] [-bench BT,CG,...]
//	            [-seed N] [-parallel N] [-csv DIR] [-check] [-v]
//	            [-faults SPEC] [-fault-seed N] [-fault-rates R1,R2,...] [-job-timeout D]
//	            [-cores N1,N2,...] [-mappers M1,M2,...] [-row-budget K]
//	            [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// -check arms the internal/check invariant suite (sequential memory
// oracle, MESI legality, TLB consistency, counter conservation) on every
// simulation job; an invariant violation aborts the experiment.
//
// -faults arms the fault-injection layer on every simulation job. SPEC is
// a comma-separated scenario[:rate] list, e.g. "shootdown,scandrop:0.8"
// or "all:0.3"; scenarios are shootdown, migflush, scandrop, sampleloss,
// preempt, decay. "-exp faults" runs the graceful-degradation study
// instead: it sweeps -fault-rates over the armed plan (default all:1)
// across SM/HM detection on a UMA and a NUMA machine and prints the
// fault-rate -> mapping-quality/slowdown curve.
//
// "-exp scale" runs the manycore scale-up study: SM detection with one
// thread per core on the canonical manycore topology across the -cores
// sweep, reporting detection throughput (events/sec), the detected
// matrix's shape, and per -mappers entry the mapping wall time and the
// mapped-vs-identity communication-cost ratio. -row-budget caps sparse
// matrix rows to the K heaviest partners before mapping.
//
// Ctrl-C cancels in-flight simulations promptly; -job-timeout (e.g. 90s)
// additionally bounds each fault-study or scale-study cell, turning a
// wedged cell into a reported failure instead of a hung run.
//
// Independent simulation jobs fan out over -parallel workers (0 = one per
// CPU). Output is bit-identical at every worker count: each job's seed is
// derived from (base seed, benchmark, repetition), never from execution
// order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tlbmap/internal/core"
	"tlbmap/internal/fault"
	"tlbmap/internal/harness"
	"tlbmap/internal/npb"
	"tlbmap/internal/prof"
	"tlbmap/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		exp      = flag.String("exp", "all", "experiment to run (all, table1..table5, fig4..fig9, hm-overhead, storage, compare, faults, scale)")
		suite    = flag.String("suite", "npb", "workload suite: npb (the paper) or splash (extension)")
		class    = flag.String("class", "W", "problem class: S (tiny) or W (evaluation scale)")
		reps     = flag.Int("reps", 10, "repetitions per mapping for tables IV/V (paper: 100)")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
		seed     = flag.Int64("seed", 1, "base random seed")
		parallel = flag.Int("parallel", 0, "worker goroutines for simulation jobs (0 = one per CPU, 1 = sequential; output is identical at any value)")
		csvDir   = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		chk      = flag.Bool("check", false, "arm the runtime invariant checkers on every simulation job; slower")
		verbose  = flag.Bool("v", false, "print progress (jobs done/total and per-job simulated cycles)")

		faults     = flag.String("faults", "", "fault scenarios to arm on every job: scenario[:rate],... or all[:rate]")
		faultSeed  = flag.Int64("fault-seed", 1, "seed of the fault-injection RNG streams")
		faultRates = flag.String("fault-rates", "0,0.25,0.5,1", "rate sweep of the -exp faults degradation study")
		jobTimeout = flag.Duration("job-timeout", 0, "per-cell timeout of the -exp faults and -exp scale studies (0 = none), e.g. 90s")

		cores     = flag.String("cores", "64,256", "core-count sweep of the -exp scale study (power-of-two multiples of 32)")
		mappers   = flag.String("mappers", "", "mapper sweep of the -exp scale study: greedy,multilevel,auto,edmonds (default greedy,multilevel,auto)")
		rowBudget = flag.Int("row-budget", 0, "-exp scale: cap each sparse matrix row to its N heaviest partners before mapping (0 = exact)")

		profiling = prof.Register(flag.CommandLine)
	)
	flag.Parse()
	stopProf, profErr := profiling.Start()
	if profErr != nil {
		log.Fatal(profErr)
	}
	defer stopProf()

	// Ctrl-C cancels in-flight simulation jobs through the engine's
	// interrupt hook and the hardened runner's context.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	plan, err := fault.ParsePlan(*faults, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}

	workers := *parallel
	if workers <= 0 {
		workers = runner.DefaultWorkers()
	}
	cfg := harness.Config{
		Suite:       strings.ToLower(*suite),
		Class:       npb.Class(strings.ToUpper(*class)),
		Repetitions: *reps,
		Seed:        *seed,
		Parallel:    workers,
		Options:     core.Options{Check: *chk, Faults: plan, Interrupt: ctx.Done()},
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			// Skip empty entries so "-bench SP,," or "-bench ''" doesn't
			// turn into a lookup of the empty benchmark name.
			if b = strings.ToUpper(strings.TrimSpace(b)); b != "" {
				cfg.Benchmarks = append(cfg.Benchmarks, b)
			}
		}
	}
	if *verbose {
		cfg.Progress = func(format string, args ...any) { log.Printf(format, args...) }
	}
	if !plan.Empty() {
		fmt.Printf("fault injection armed on every job: %s (seed %d)\n", plan, plan.Seed)
	}

	if strings.ToLower(*exp) == "faults" {
		if err := runFaultStudy(ctx, cfg, plan, *faultRates, *jobTimeout, *csvDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if strings.ToLower(*exp) == "scale" {
		if err := runScaleStudy(ctx, cfg, *cores, *mappers, *rowBudget, *jobTimeout, *csvDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(cfg, strings.ToLower(*exp), *csvDir); err != nil {
		log.Fatal(err)
	}
}

// runFaultStudy drives the -exp faults degradation sweep.
func runFaultStudy(ctx context.Context, cfg harness.Config, plan fault.Plan, rateSpec string, jobTimeout time.Duration, csvDir string) error {
	var rates []float64
	for _, s := range strings.Split(rateSpec, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		r, err := strconv.ParseFloat(s, 64)
		if err != nil || r < 0 || r > 1 {
			return fmt.Errorf("bad fault rate %q (want numbers in [0,1])", s)
		}
		rates = append(rates, r)
	}
	scfg := harness.FaultStudyConfig{
		Config:     cfg,
		Plan:       plan,
		Rates:      rates,
		JobTimeout: jobTimeout,
	}
	// The study arms its own per-cell plans; don't double-inject.
	scfg.Options.Faults = fault.Plan{}
	rows, failed, err := harness.RunFaultStudy(ctx, scfg)
	if err != nil {
		return err
	}
	for _, f := range failed {
		log.Printf("warning: study cell failed: %v", f)
	}
	fmt.Print(harness.RenderFaultStudy(rows))
	if csvDir != "" {
		if err := writeCSV(csvDir, "fault_study.csv", func(f *os.File) error {
			return harness.WriteFaultStudyCSV(f, rows)
		}); err != nil {
			return err
		}
	}
	return nil
}

// runScaleStudy drives the -exp scale manycore sweep.
func runScaleStudy(ctx context.Context, cfg harness.Config, coreSpec, mapperSpec string, rowBudget int, jobTimeout time.Duration, csvDir string) error {
	scfg := harness.ScaleStudyConfig{
		Config:     cfg,
		RowBudget:  rowBudget,
		JobTimeout: jobTimeout,
	}
	// Progress and gate warnings to stderr: a sweep cell can run for
	// minutes, and a silently dropped mapper row (the edmonds gate) would
	// otherwise be indistinguishable from a typo.
	scfg.Progress = log.Printf
	for _, s := range strings.Split(coreSpec, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad core count %q", s)
		}
		scfg.Cores = append(scfg.Cores, n)
	}
	for _, s := range strings.Split(mapperSpec, ",") {
		if s = strings.TrimSpace(strings.ToLower(s)); s != "" {
			scfg.Mappers = append(scfg.Mappers, s)
		}
	}
	rows, failed, err := harness.RunScaleStudy(ctx, scfg)
	if err != nil {
		return err
	}
	for _, f := range failed {
		log.Printf("warning: study cell failed: %v", f)
	}
	fmt.Print(harness.RenderScaleStudy(rows))
	if csvDir != "" {
		if err := writeCSV(csvDir, "scale_study.csv", func(f *os.File) error {
			return harness.WriteScaleStudyCSV(f, rows)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeCSV writes one CSV artifact into dir.
func writeCSV(dir, name string, write func(w *os.File) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func run(cfg harness.Config, exp string, csvDir string) error {
	needPatterns := exp == "all" || exp == "fig4" || exp == "fig5"
	needPerf := exp == "all" || exp == "table4" || exp == "table5" ||
		strings.HasPrefix(exp, "fig6") || strings.HasPrefix(exp, "fig7") ||
		strings.HasPrefix(exp, "fig8") || strings.HasPrefix(exp, "fig9")

	switch exp {
	case "table1":
		fmt.Print(harness.Table1(cfg))
		return nil
	case "table2":
		fmt.Print(harness.Table2(cfg))
		return nil
	case "table3":
		rows, err := harness.RunTable3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(harness.RenderTable3(rows))
		return nil
	case "hm-overhead":
		rows, err := harness.RunHMOverhead(cfg)
		if err != nil {
			return err
		}
		fmt.Print(harness.RenderHMOverhead(rows))
		return nil
	case "storage":
		rows, err := harness.RunStorageCost(cfg)
		if err != nil {
			return err
		}
		fmt.Print(harness.RenderStorageCost(rows))
		return nil
	case "compare":
		rows, err := harness.Compare(cfg)
		if err != nil {
			return err
		}
		fmt.Print(harness.RenderCompare(rows))
		return nil
	}

	var patterns []harness.PatternResult
	var perf []harness.PerfResult
	var err error
	if needPatterns {
		patterns, err = harness.DetectPatterns(cfg)
		if err != nil {
			return err
		}
	}
	if needPerf {
		perf, err = harness.RunPerformance(cfg)
		if err != nil {
			return err
		}
	}

	emit := func(title, body string) {
		fmt.Println("==== " + title + " ====")
		fmt.Println(body)
	}

	// Machine-readable artifacts for whatever was computed.
	if csvDir != "" && len(perf) > 0 {
		if err := writeCSV(csvDir, "performance.csv", func(f *os.File) error {
			return harness.WritePerformanceCSV(f, perf)
		}); err != nil {
			return err
		}
	}
	if csvDir != "" && len(patterns) > 0 {
		if err := writeCSV(csvDir, "patterns.csv", func(f *os.File) error {
			return harness.WritePatternsCSV(f, patterns)
		}); err != nil {
			return err
		}
	}

	switch exp {
	case "fig4":
		emit("Figure 4: communication patterns detected by SM", harness.RenderPatterns(patterns, "SM"))
	case "fig5":
		emit("Figure 5: communication patterns detected by HM", harness.RenderPatterns(patterns, "HM"))
	case "fig6", "fig7", "fig8", "fig9":
		metric := map[string]string{"fig6": "time", "fig7": "inv", "fig8": "snoop", "fig9": "l2miss"}[exp]
		fmt.Print(harness.RenderFigure(perf, metric))
	case "table4":
		fmt.Print(harness.RenderTable4(perf))
	case "table5":
		fmt.Print(harness.RenderTable5(perf))
	case "all":
		emit("Table I", harness.Table1(cfg))
		emit("Table II", harness.Table2(cfg))
		emit("Figure 4: communication patterns detected by SM", harness.RenderPatterns(patterns, "SM"))
		emit("Figure 5: communication patterns detected by HM", harness.RenderPatterns(patterns, "HM"))
		emit("Oracle (full-trace) reference patterns", harness.RenderPatterns(patterns, "oracle"))
		for _, metric := range []string{"time", "inv", "snoop", "l2miss"} {
			fmt.Println(harness.RenderFigure(perf, metric))
		}
		rows3, err := harness.RunTable3(cfg)
		if err != nil {
			return err
		}
		emit("Table III", harness.RenderTable3(rows3))
		rowsHM, err := harness.RunHMOverhead(cfg)
		if err != nil {
			return err
		}
		emit("HM overhead", harness.RenderHMOverhead(rowsHM))
		storage, err := harness.RunStorageCost(cfg)
		if err != nil {
			return err
		}
		emit("Storage cost (Section II motivation)", harness.RenderStorageCost(storage))
		emit("Table IV", harness.RenderTable4(perf))
		emit("Table V", harness.RenderTable5(perf))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		os.Exit(2)
	}
	return nil
}
