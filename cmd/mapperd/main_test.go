package main

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildMapperd compiles the daemon once into a temp dir; the graceful-
// shutdown regression has to signal a real process, not an in-process
// server — SIGTERM handling, the drain path, and the exit banner are all
// main()'s code.
func buildMapperd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mapperd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSIGTERMDrainFinalizes is the graceful-shutdown regression: a durable
// daemon that is SIGTERMed mid-service must stop accepting, drain, write
// final snapshots, sync its WALs, and exit 0 with the drain banner — and a
// subsequent -verify-recovery must see every acknowledged event without
// replaying anything the snapshot should have covered.
func TestSIGTERMDrainFinalizes(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level regression skipped in -short mode")
	}
	bin := buildMapperd(t)
	dir := t.TempDir()

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", dir, "-sync", "always")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "listening on HOST:PORT (...)" once the ephemeral
	// port is bound; everything after that line is the shutdown banner.
	logs := bufio.NewScanner(stderr)
	var addr string
	for logs.Scan() {
		if f := strings.Fields(logs.Text()); len(f) >= 3 && f[1] == "listening" {
			addr = f[3]
			break
		}
	}
	if addr == "" {
		t.Fatal("daemon never logged its listen address")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	roundTrip := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatalf("write %q: %v", line, err)
		}
		resp, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("read response to %q: %v", line, err)
		}
		return strings.TrimSuffix(resp, "\n")
	}
	if resp := roundTrip("HELLO app 4 conn-test"); resp != "OK seq=0" {
		t.Fatalf("HELLO = %q, want \"OK seq=0\"", resp)
	}
	const batches = 8
	for i := 1; i <= batches; i++ {
		line := fmt.Sprintf("E %d 0:%d 1:%d 2:%d", i, i, i, i+100)
		if resp := roundTrip(line); !strings.HasPrefix(resp, "OK") {
			t.Fatalf("batch %d: %q", i, resp)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var banner strings.Builder
	done := make(chan error, 1)
	go func() {
		for logs.Scan() {
			banner.WriteString(logs.Text())
			banner.WriteByte('\n')
		}
		done <- cmd.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\n%s", err, banner.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM\n%s", banner.String())
	}
	if !strings.Contains(banner.String(), "drained cleanly") {
		t.Errorf("shutdown banner missing \"drained cleanly\":\n%s", banner.String())
	}
	if !strings.Contains(banner.String(), "applied=24") {
		t.Errorf("shutdown banner should report applied=24:\n%s", banner.String())
	}

	// The drain finalized: recovery sees all 24 events and the source's
	// acknowledged sequence, from the final snapshot alone.
	out, err := exec.Command(bin, "-verify-recovery", "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("verify-recovery: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "recovery OK: tenants=1 applied=24") {
		t.Errorf("verify-recovery = %q, want tenants=1 applied=24", out)
	}
}
