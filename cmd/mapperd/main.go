// Command mapperd is the mapping-as-a-service daemon: it listens on TCP,
// ingests TLB-sample streams from many concurrent clients over the serve
// wire protocol, maintains sharded per-tenant detector state, and answers
// placement queries through the confidence-gated online mapper within a
// per-request deadline. SIGTERM/SIGINT stops accepting, drains every
// tenant queue, and prints what was served.
//
// Usage:
//
//	mapperd [-addr HOST:PORT] [-shards N] [-queue-cap N] [-deadline D]
//	        [-faults SPEC] [-fault-seed N]
//	        [-dir PATH] [-sync always|interval|never] [-snapshot-every N]
//	        [-recovery-workers N]
//	mapperd -selftest [-conns N] [-tenants N] [-threads N] [-events N]
//	        [-batch N] [-query-every N] [-seed N] [-reconnect] [-dir PATH]
//	mapperd -verify-recovery -dir PATH
//
// With -dir the daemon is durable: every acknowledged batch is appended to
// a per-tenant write-ahead log under PATH (fsynced per -sync), snapshots
// compact the log every -snapshot-every applied events, and a restart —
// clean or after SIGKILL — recovers every tenant from snapshot plus WAL
// tail before accepting connections. SIGTERM/SIGINT additionally writes a
// final snapshot and syncs the logs before exiting, so a drained daemon
// restarts with nothing to replay.
//
// -verify-recovery opens -dir, runs the full recovery path, prints one
// "recovery OK ..." banner with what was recovered, and exits — non-zero
// if any tenant fails to come back. The CI crash-smoke stage SIGKILLs a
// live ingesting daemon and then runs this under a timeout.
//
// -selftest starts the daemon on an ephemeral port, drives it with the
// synthetic client fleet (internal/serve/loadgen), drains, and prints the
// sustained events/sec, queries/sec and p50/p99 query latency, ending
// with one machine-readable "BENCH ..." line that scripts/bench.sh renders
// into BENCH_serve.json and gates in check mode. It exits non-zero on any
// hangup, ERR response, or unclean drain — which is what makes it the CI
// serve-smoke stage. -reconnect makes the fleet sequenced: every
// connection deliberately drops and resumes mid-stream through the
// idempotent-reconnect protocol, and the selftest asserts nothing was
// double-applied.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tlbmap/internal/fault"
	"tlbmap/internal/serve"
	"tlbmap/internal/serve/loadgen"
	"tlbmap/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mapperd: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "listen address")
		shards    = flag.Int("shards", 16, "tenant map stripes")
		queueCap  = flag.Int("queue-cap", 256, "per-tenant ingest queue capacity (batches)")
		deadline  = flag.Duration("deadline", 100*time.Millisecond, "per-query mapping budget")
		faults    = flag.String("faults", "", "fault spec armed on the ingest path (sampleloss[:rate],shootdown[:rate])")
		faultSeed = flag.Int64("fault-seed", 1, "fault injection seed")

		dir        = flag.String("dir", "", "durable state directory (empty = in-memory only)")
		syncSpec   = flag.String("sync", "always", "WAL sync policy: always|interval|never")
		snapEvery  = flag.Int("snapshot-every", 0, "snapshot+compact every N applied events (0 = default 4096)")
		recWorkers = flag.Int("recovery-workers", 0, "tenants recovered in parallel on startup (0 = GOMAXPROCS)")
		verify     = flag.Bool("verify-recovery", false, "recover every tenant from -dir, print a summary, and exit")

		selftest   = flag.Bool("selftest", false, "run the synthetic client fleet against an in-process daemon and exit")
		conns      = flag.Int("conns", 256, "selftest: fleet size")
		tenants    = flag.Int("tenants", 16, "selftest: tenant count")
		threads    = flag.Int("threads", 8, "selftest: threads per tenant (power of two)")
		events     = flag.Int("events", 1000, "selftest: events per connection")
		batch      = flag.Int("batch", 50, "selftest: events per batch")
		queryEvery = flag.Int("query-every", 4, "selftest: query every N batches (0 = never)")
		seed       = flag.Int64("seed", 1, "selftest: fleet seed")
		reconnect  = flag.Bool("reconnect", false, "selftest: sequenced fleet with injected mid-stream disconnects")
	)
	flag.Parse()

	plan, err := fault.ParsePlan(*faults, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := wal.ParseSyncPolicy(*syncSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := serve.Config{
		Shards:        *shards,
		QueueCap:      *queueCap,
		QueryDeadline: *deadline,
		Faults:        plan,
		Dir:             *dir,
		Sync:            policy,
		SnapshotEvery:   *snapEvery,
		RecoveryWorkers: *recWorkers,
	}

	if *verify {
		if *dir == "" {
			log.Fatal("-verify-recovery requires -dir")
		}
		if err := runVerifyRecovery(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	srv, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *selftest {
		if err := runSelftest(srv, *addr, loadgen.Options{
			Conns: *conns, Tenants: *tenants, Threads: *threads,
			EventsPerConn: *events, Batch: *batch, QueryEvery: *queryEvery,
			Seed: *seed, Reconnect: *reconnect,
		}, *deadline); err != nil {
			log.Fatal(err)
		}
		return
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (shards=%d queue-cap=%d deadline=%v faults=%s dir=%q sync=%s)",
		l.Addr(), *shards, *queueCap, *deadline, plan, *dir, policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		log.Printf("%v: draining", s)
		l.Close()
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	st := srv.Stats()
	log.Printf("drained cleanly: tenants=%d applied=%d dropped=%d queries=%d degraded=%d quarantined=%d",
		st.Tenants, st.Applied, st.Dropped, st.Queries, st.Degraded, st.Quarantines)
}

// newServer builds the configured server: durable (recovering whatever
// already lives under cfg.Dir) when a state directory is set, in-memory
// otherwise.
func newServer(cfg serve.Config) (*serve.Server, error) {
	if cfg.Dir == "" {
		return serve.New(cfg), nil
	}
	return serve.Open(cfg)
}

// runVerifyRecovery runs the full recovery path over cfg.Dir — snapshot
// restore plus WAL-tail replay for every tenant on disk — then drains
// (writing fresh snapshots) and prints one machine-checkable banner. Any
// tenant that cannot come back makes the whole run fail.
func runVerifyRecovery(cfg serve.Config) error {
	srv, err := serve.Open(cfg)
	if err != nil {
		return fmt.Errorf("recovery FAILED: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("recovery FAILED: drain: %w", err)
	}
	st := srv.Stats()
	if st.Quarantines > 0 {
		return fmt.Errorf("recovery FAILED: %d tenants quarantined", st.Quarantines)
	}
	fmt.Printf("recovery OK: tenants=%d applied=%d lost=%d storms=%d\n",
		st.Tenants, st.Applied, st.LostSamples, st.Storms)
	return nil
}

// runSelftest is the in-process fleet run: ephemeral listener, loadgen
// burst, drain, consistency checks, report.
func runSelftest(srv *serve.Server, addr string, opts loadgen.Options, deadline time.Duration) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		host = "127.0.0.1"
	}
	l, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	target := l.Addr().String()
	opts.Dial = func() (net.Conn, error) { return net.Dial("tcp", target) }
	report, err := loadgen.Run(opts)
	if err != nil {
		return err
	}

	l.Close()
	if err := <-serveDone; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := srv.Stats()

	fmt.Printf("mapperd selftest: %s\n", report)
	fmt.Printf("  drained cleanly: tenants=%d ingested=%d applied=%d dropped=%d lost=%d storms=%d degraded=%d quarantined=%d\n",
		st.Tenants, st.Ingested, st.Applied, st.Dropped, st.LostSamples, st.Storms, st.Degraded, st.Quarantines)
	fmt.Printf("BENCH conns=%d events_per_sec=%.0f queries_per_sec=%.0f p50_us=%d p99_us=%d\n",
		report.Conns, report.EventsPerSec, report.QueriesPerSec,
		report.QueryP50.Microseconds(), report.QueryP99.Microseconds())

	switch {
	case report.HangUps > 0:
		return fmt.Errorf("selftest: %d connections hung up", report.HangUps)
	case report.Errors > 0:
		return fmt.Errorf("selftest: %d ERR responses", report.Errors)
	case report.Events == 0 || report.EventsPerSec <= 0:
		return fmt.Errorf("selftest: no events served")
	case st.Applied+st.Dropped != st.Ingested:
		return fmt.Errorf("selftest: unclean drain: ingested=%d applied=%d dropped=%d",
			st.Ingested, st.Applied, st.Dropped)
	case st.Quarantines > 0:
		return fmt.Errorf("selftest: %d tenants quarantined", st.Quarantines)
	case report.QueryP99 > deadline && report.Queries > 0:
		return fmt.Errorf("selftest: p99 query latency %v exceeds deadline %v", report.QueryP99, deadline)
	}
	return nil
}
