// Command commpattern renders the communication matrices of Figures 4
// and 5: for each benchmark it prints the patterns detected by the
// software-managed mechanism (SM), the hardware-managed mechanism (HM) and
// the full-trace oracle side by side, together with their similarity
// scores.
//
// Usage:
//
//	commpattern [-bench BT,CG,...] [-class S|W] [-seed N]
//	            [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tlbmap/internal/harness"
	"tlbmap/internal/npb"
	"tlbmap/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("commpattern: ")
	var (
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: whole suite)")
		suite   = flag.String("suite", "npb", "workload suite: npb or splash")
		class   = flag.String("class", "W", "problem class: S or W")
		seed    = flag.Int64("seed", 1, "workload seed")

		profiling = prof.Register(flag.CommandLine)
	)
	flag.Parse()
	stopProf, err := profiling.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	cfg := harness.Config{
		Suite: strings.ToLower(*suite),
		Class: npb.Class(strings.ToUpper(*class)),
		Seed:  *seed,
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			cfg.Benchmarks = append(cfg.Benchmarks, strings.ToUpper(strings.TrimSpace(b)))
		}
	}
	results, err := harness.DetectPatterns(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("=== %s — expected pattern: %s ===\n", r.Name, r.Expected)
		fmt.Printf("similarity to oracle: SM %.3f, HM %.3f\n", r.SMSimilarity(), r.HMSimilarity())
		fmt.Println("-- SM (Figure 4) --")
		fmt.Println(r.SM.Matrix.Heatmap())
		fmt.Println("-- HM (Figure 5) --")
		fmt.Println(r.HM.Matrix.Heatmap())
		fmt.Println("-- oracle (full memory trace) --")
		fmt.Println(r.Oracle.Matrix.Heatmap())
	}
}
