package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"tlbmap/internal/vm"
)

// TestLifecycleNeverLeaks cycles create -> load -> evict -> re-create many
// times and asserts the server ends where it started: empty shard maps and
// the goroutine count back to baseline (every applier exited).
func TestLifecycleNeverLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Shards: 4})
	const rounds = 20
	for r := 0; r < rounds; r++ {
		id := fmt.Sprintf("cycle-%d", r%5) // re-create the same IDs repeatedly
		if err := s.CreateTenant(id, 8); err != nil {
			t.Fatal(err)
		}
		events := make([]Event, 50)
		for i := range events {
			events[i] = Event{Thread: int32(i % 8), Page: vm.Page(i)}
		}
		if err := s.Ingest(id, events); err != nil {
			t.Fatal(err)
		}
		if err := s.EvictTenant(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Tenants()); got != 0 {
		t.Fatalf("after %d create/evict cycles, %d tenants remain: %v", rounds, got, s.Tenants())
	}
	for i, sh := range s.shards {
		sh.mu.RLock()
		n := len(sh.tenants)
		sh.mu.RUnlock()
		if n != 0 {
			t.Errorf("shard %d still holds %d tenants", i, n)
		}
	}
	// Goroutine count settles back to baseline (allow scheduler slack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEvictMidStream evicts a tenant while concurrent streams are feeding
// it: every in-flight Ingest resolves to a clean ErrTenantNotFound (never a
// panic or a hang), and a re-created tenant starts from a blank matrix.
func TestEvictMidStream(t *testing.T) {
	s := New(Config{QueueCap: 4})
	if err := s.CreateTenant("victim", 8); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for st := 0; st < 4; st++ {
		wg.Add(1)
		go func(st int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(st + 1)))
			batch := make([]Event, 20)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					th := rng.Intn(8)
					batch[i] = Event{Thread: int32(th), Page: vm.Page(th*64 + rng.Intn(96))}
				}
				err := s.Ingest("victim", batch)
				switch {
				case err == nil, errors.Is(err, ErrOverloaded):
				case errors.Is(err, ErrTenantNotFound):
					return // clean eviction signal
				default:
					t.Errorf("Ingest during evict: unexpected error %v", err)
					return
				}
			}
		}(st)
	}
	time.Sleep(10 * time.Millisecond) // let the streams get going
	if err := s.EvictTenant("victim"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if err := s.Ingest("victim", []Event{{Thread: 0, Page: 1}}); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("Ingest after evict: err = %v, want ErrTenantNotFound", err)
	}
	if _, err := s.Query(context.Background(), "victim"); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("Query after evict: err = %v, want ErrTenantNotFound", err)
	}

	// Re-creation yields a fresh tenant, not the evicted one's state.
	if err := s.CreateTenant("victim", 8); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot("victim")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ingested != 0 || snap.Matrix.Total() != 0 {
		t.Errorf("re-created tenant inherited state: ingested=%d total=%d", snap.Ingested, snap.Matrix.Total())
	}
}

// TestEvictConcurrentWithDrain races eviction against drain — both paths
// shut the applier down and must not double-close or deadlock.
func TestEvictConcurrentWithDrain(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 8; i++ {
		if err := s.CreateTenant(fmt.Sprintf("t%d", i), 4); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i += 2 {
			s.EvictTenant(fmt.Sprintf("t%d", i))
		}
	}()
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("Drain: %v", err)
		}
	}()
	wg.Wait()
}
