package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"tlbmap/internal/vm"
	"tlbmap/internal/wal"
)

// The serve benchmarks use chunky operations — one op is a fixed block of
// work, not one request — so `-benchtime 1x -count 3` (the bench.sh check
// harness) still measures thousands of events per sample.

// BenchmarkIngestParse is the wire hot path: one op pushes 256 pipelined
// E lines of 50 events each through session.handle (exactly what ServeConn
// executes per line) on an in-memory tenant, then waits for the applier to
// drain. Parse, batch copy, enqueue, apply, response build — no sockets.
func BenchmarkIngestParse(b *testing.B) {
	const linesPerOp, per = 256, 50
	s := New(Config{QueueCap: 512})
	defer s.Drain(context.Background())
	sess := &session{srv: s}
	resp := make([]byte, 0, 256)
	resp, _ = sess.handle([]byte("HELLO bench 8"), resp[:0])
	if string(resp) != "OK" {
		b.Fatalf("HELLO: %s", resp)
	}
	tn, err := s.lookup("bench")
	if err != nil {
		b.Fatal(err)
	}
	lines := ingestLines(1, 8, linesPerOp, per)
	var sent uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, line := range lines {
			resp, _ = sess.handle(line, resp[:0])
			if len(resp) < 2 || resp[0] != 'O' {
				b.Fatalf("ingest: %s", resp)
			}
		}
		sent += linesPerOp * per
		for tn.applied.Load() < sent {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkWALGroupCommit measures the durable ack path under SyncAlways:
// one op pushes 256 sequenced 32-event batches through IngestFrom, spread
// over N concurrent writers (each its own source). Every ack waits for a
// covering group fsync; more writers should coalesce into fewer fsyncs.
func BenchmarkWALGroupCommit(b *testing.B) {
	const batchesPerOp, per = 256, 32
	for _, writers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("writers%d", writers), func(b *testing.B) {
			s, err := Open(Config{Dir: b.TempDir(), Sync: wal.SyncAlways, SnapshotEvery: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Drain(context.Background())
			if err := s.CreateTenant("gc", 8); err != nil {
				b.Fatal(err)
			}
			events := ingestEvents(per)
			seqs := make([]uint64, writers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					share := batchesPerOp / writers
					if w < batchesPerOp%writers {
						share++
					}
					wg.Add(1)
					go func(w, share int) {
						defer wg.Done()
						source := fmt.Sprintf("w%02d", w)
						for k := 0; k < share; k++ {
							seqs[w]++
							if err := s.IngestFrom("gc", source, seqs[w], events); err != nil {
								b.Errorf("writer %d: %v", w, err)
								return
							}
						}
					}(w, share)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batchesPerOp*per)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// ingestEvents builds one fixed valid batch for the WAL benchmarks.
func ingestEvents(per int) []Event {
	events := make([]Event, per)
	for i := range events {
		th := i % 8
		events[i] = Event{Thread: int32(th), Page: vm.Page(th*64 + i%96)}
	}
	return events
}

// BenchmarkRecovery measures serve.Open on a crashed durable state: 16
// tenants with full WAL tails (~4096 events each), recovered with 1 or 4
// workers. One op is one complete Open; the disk state is read-only during
// recovery, so every op replays the identical bytes.
func BenchmarkRecovery(b *testing.B) {
	const (
		tenants  = 16
		nbatches = 32
		per      = 128
	)
	dir := b.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 1 << 20}
	s, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for ti := 0; ti < tenants; ti++ {
		id := fmt.Sprintf("app-%02d", ti)
		if err := s.CreateTenant(id, 8); err != nil {
			b.Fatal(err)
		}
		for bi, evs := range chaosBatches(int64(ti+1), 8, nbatches, per) {
			if err := s.IngestFrom(id, "src", uint64(bi+1), evs); err != nil {
				b.Fatal(err)
			}
		}
	}
	crashServer(s)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := cfg
			cfg.RecoveryWorkers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				crashServer(r)
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*tenants*nbatches*per)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
