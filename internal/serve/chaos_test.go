package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"tlbmap/internal/fault"
	"tlbmap/internal/vm"
	"tlbmap/internal/wal"
)

// chaosBatches synthesizes a deterministic batch stream with the
// loadgen's neighbor-sharing pattern: thread t touches pages in
// [t*64, t*64+96), overlapping the next thread's window so the detector
// has real communication to find.
func chaosBatches(seed int64, threads, nbatches, per int) [][]Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Event, nbatches)
	for b := range out {
		evs := make([]Event, per)
		for i := range evs {
			th := rng.Intn(threads)
			evs[i] = Event{Thread: int32(th), Page: vm.Page(th*64 + rng.Intn(96))}
		}
		out[b] = evs
	}
	return out
}

// crashServer simulates SIGKILL in-process: every applier is stopped
// WITHOUT drain (whatever is still queued vanishes, as it would with the
// process), and each WAL is aborted — buffered but unsynced bytes are
// lost, modeling a page-cache tail the kernel never wrote back. The
// *Server is dead afterwards; recover through Open on the same dir.
func crashServer(s *Server) {
	s.draining.Store(true)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, t := range sh.tenants {
			t.shutdown()
			<-t.done
			if t.wlog != nil {
				t.wlog.Abort()
			}
		}
		sh.mu.Unlock()
	}
	if s.gc != nil {
		// Aborted logs fail every remaining commit round (sticky
		// commitErr), releasing any waiter; then retire the scheduler.
		s.gc.stop()
	}
}

// walSegments lists a durable tenant's WAL segment paths, sorted.
func walSegments(t *testing.T, root, id string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(tenantDir(root, id), "wal", "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	return segs
}

// queryEqual compares everything deterministic about two query results.
func queryEqual(a, b QueryResult) bool {
	if len(a.Placement) != len(b.Placement) {
		return false
	}
	for i := range a.Placement {
		if a.Placement[i] != b.Placement[i] {
			return false
		}
	}
	return a.Remapped == b.Remapped && a.Migrations == b.Migrations &&
		a.Reason == b.Reason && a.Confidence == b.Confidence && a.Degraded == b.Degraded
}

// TestCrashRecoveryDifferential is the tentpole chaos test: a durable
// server (WAL synced on every append) ingests a two-phase stream with
// queries and an explicit checkpoint between the phases, then crashes at
// a seeded random point of phase two. The recovered server's tenant state
// must be byte-identical — matrix cells AND rendering, mapper counters,
// the next query's full decision — to a never-crashed in-memory server
// that applied exactly the same acknowledged prefix. Fault injection is
// armed in half the rounds: the snapshot carries the injector PRNG
// states, so even the loss/storm sequence must replay exactly.
func TestCrashRecoveryDifferential(t *testing.T) {
	const (
		threads   = 16
		perBatch  = 128
		phase1    = 6
		phase2max = 10
	)
	for round, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{
				Dir:  dir,
				Sync: wal.SyncAlways,
			}
			if round%2 == 1 {
				cfg.Faults = fault.Plan{Seed: seed}
				cfg.Faults.Intensity[fault.SampleLoss] = 0.05
				cfg.Faults.Intensity[fault.ShootdownStorm] = 0.3
			}
			rng := rand.New(rand.NewSource(seed))
			batches := chaosBatches(seed, threads, phase1+phase2max, perBatch)
			crashAt := phase1 + rng.Intn(phase2max+1) // in [phase1, phase1+phase2max]

			// drive replays the identical acknowledged prefix on any server.
			drive := func(s *Server, upTo int) {
				t.Helper()
				if err := s.CreateTenant("app", threads); err != nil {
					t.Fatal(err)
				}
				applied := uint64(0)
				for i := 0; i < phase1 && i < upTo; i++ {
					if err := s.Ingest("app", batches[i]); err != nil {
						t.Fatal(err)
					}
					applied += uint64(perBatch)
					// Interleave queries deterministically: wait until the
					// batch is applied so every query sees the same epoch.
					waitApplied(t, s, "app", applied)
					if _, err := s.Query(context.Background(), "app"); err != nil {
						t.Fatal(err)
					}
				}
				for i := phase1; i < upTo; i++ {
					if err := s.Ingest("app", batches[i]); err != nil {
						t.Fatal(err)
					}
				}
			}

			live, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			drive(live, phase1)
			// Pin the query-side state: mapper decisions after this point
			// would be lost in a crash (queries are not WAL-logged), so the
			// test issues none.
			if err := live.Checkpoint("app"); err != nil {
				t.Fatal(err)
			}
			for i := phase1; i < crashAt; i++ {
				if err := live.Ingest("app", batches[i]); err != nil {
					t.Fatal(err)
				}
			}
			crashServer(live)

			recovered, err := Open(cfg)
			if err != nil {
				t.Fatalf("recovery after crash at batch %d: %v", crashAt, err)
			}
			refCfg := cfg
			refCfg.Dir = ""
			ref := New(refCfg)
			drive(ref, crashAt)
			if err := ref.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}

			rs, err := recovered.Snapshot("app")
			if err != nil {
				t.Fatal(err)
			}
			ws, err := ref.Snapshot("app")
			if err != nil {
				t.Fatal(err)
			}
			if rs.Applied != ws.Applied {
				t.Fatalf("recovered applied %d events, reference %d", rs.Applied, ws.Applied)
			}
			if rs.Applied+rs.Dropped != rs.Ingested {
				t.Fatalf("counter invariant broken: applied %d + dropped %d != ingested %d",
					rs.Applied, rs.Dropped, rs.Ingested)
			}
			if rs.LostSamples != ws.LostSamples || rs.Storms != ws.Storms {
				t.Fatalf("fault injection diverged: lost %d/%d storms %d/%d",
					rs.LostSamples, ws.LostSamples, rs.Storms, ws.Storms)
			}
			if !rs.Matrix.Equal(ws.Matrix) {
				t.Fatal("recovered matrix differs from never-crashed reference")
			}
			if rs.Matrix.String() != ws.Matrix.String() {
				t.Fatal("recovered matrix renders differently")
			}
			if rs.Remaps != ws.Remaps || rs.Decisions != ws.Decisions || rs.Confidence != ws.Confidence {
				t.Fatalf("mapper state diverged: remaps %d/%d decisions %d/%d confidence %v/%v",
					rs.Remaps, ws.Remaps, rs.Decisions, ws.Decisions, rs.Confidence, ws.Confidence)
			}
			// The next decision must be identical too: epoch deltas, phase
			// tracker and confidence all recovered.
			rq, err := recovered.Query(context.Background(), "app")
			if err != nil {
				t.Fatal(err)
			}
			wq, err := ref.Query(context.Background(), "app")
			if err != nil {
				t.Fatal(err)
			}
			if !queryEqual(rq, wq) {
				t.Fatalf("post-recovery query diverged:\n recovered: %+v\n reference: %+v", rq, wq)
			}
		})
	}
}

// TestApplierCheckpointCadence crashes a server whose snapshots are
// written by the applier itself (small SnapshotEvery, no explicit
// Checkpoint): whatever mix of snapshot and WAL tail exists at the crash,
// recovery must still reconstruct the full acknowledged stream.
func TestApplierCheckpointCadence(t *testing.T) {
	const threads, perBatch, nbatches = 8, 64, 40
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 256}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := chaosBatches(3, threads, nbatches, perBatch)
	if err := s.CreateTenant("app", threads); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := s.Ingest("app", b); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, s, "app", uint64(nbatches*perBatch))
	crashServer(s)

	recovered, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newTenant("app", threads, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		for _, e := range b {
			ref.applyOne(e)
		}
	}
	rs, err := recovered.Snapshot("app")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Applied != uint64(nbatches*perBatch) {
		t.Fatalf("recovered %d events, want %d", rs.Applied, nbatches*perBatch)
	}
	if !rs.Matrix.Equal(ref.matrix) {
		t.Fatal("recovered matrix differs from single-threaded replay")
	}
}

// TestRecoveryLosesOnlyUnsyncedTail: under wal.SyncNever only rotation
// flushes reach disk, so a crash loses the buffered tail — but never a
// flushed prefix, and recovery must land exactly on a batch boundary of
// that prefix.
func TestRecoveryLosesOnlyUnsyncedTail(t *testing.T) {
	const threads, perBatch, nbatches = 8, 64, 60
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncNever, WALSegmentBytes: 4096}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := chaosBatches(9, threads, nbatches, perBatch)
	if err := s.CreateTenant("app", threads); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := s.Ingest("app", b); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, s, "app", uint64(nbatches*perBatch))
	crashServer(s)

	recovered, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := recovered.Snapshot("app")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Applied%perBatch != 0 {
		t.Fatalf("recovered %d events — not a batch boundary (batch %d)", rs.Applied, perBatch)
	}
	if rs.Applied == 0 {
		t.Fatal("rotation flushes should have persisted at least one segment")
	}
	if rs.Applied > uint64(nbatches*perBatch) {
		t.Fatalf("recovered %d events, more than the %d ingested", rs.Applied, nbatches*perBatch)
	}
	// The surviving prefix must match a clean replay of exactly that many
	// batches.
	ref, err := newTenant("app", threads, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:rs.Applied/perBatch] {
		for _, e := range b {
			ref.applyOne(e)
		}
	}
	if !rs.Matrix.Equal(ref.matrix) {
		t.Fatal("recovered prefix differs from clean replay")
	}
}

// TestTornAndFlippedWALTail damages the on-disk log of a crashed server —
// truncating at record boundaries, mid-record, and flipping bytes — and
// requires recovery to (a) never fail, (b) recover a batch-aligned prefix,
// (c) match a clean replay of that prefix, (d) keep the counter invariant.
func TestTornAndFlippedWALTail(t *testing.T) {
	const threads, perBatch, nbatches = 8, 32, 12
	// One WAL record per batch: header + source framing + events.
	const recBytes = 16 + 2 + 8 + 4 + 12*perBatch
	batches := chaosBatches(13, threads, nbatches, perBatch)

	damage := []struct {
		name string
		mut  func(t *testing.T, seg string)
	}{
		{"truncate-one-record", func(t *testing.T, seg string) { chop(t, seg, recBytes) }},
		{"truncate-mid-record", func(t *testing.T, seg string) { chop(t, seg, recBytes/2) }},
		{"truncate-mid-header", func(t *testing.T, seg string) { chop(t, seg, recBytes+recBytes-7) }},
		{"flip-byte-in-tail", func(t *testing.T, seg string) { flip(t, seg, 3*recBytes+20) }},
		{"flip-byte-in-header", func(t *testing.T, seg string) { flip(t, seg, 5*recBytes+4) }},
	}
	for _, d := range damage {
		d := d
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Dir: dir, Sync: wal.SyncAlways}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CreateTenant("app", threads); err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if err := s.Ingest("app", b); err != nil {
					t.Fatal(err)
				}
			}
			waitApplied(t, s, "app", uint64(nbatches*perBatch))
			crashServer(s)

			segs := walSegments(t, dir, "app")
			if len(segs) == 0 {
				t.Fatal("no WAL segments on disk")
			}
			d.mut(t, segs[len(segs)-1])

			recovered, err := Open(cfg)
			if err != nil {
				t.Fatalf("recovery over damaged WAL must repair, not fail: %v", err)
			}
			rs, err := recovered.Snapshot("app")
			if err != nil {
				t.Fatal(err)
			}
			if rs.Applied%perBatch != 0 {
				t.Fatalf("recovered %d events — not a batch boundary", rs.Applied)
			}
			if rs.Applied >= uint64(nbatches*perBatch) {
				t.Fatalf("damage destroyed a record yet all %d events recovered", rs.Applied)
			}
			if rs.Applied+rs.Dropped != rs.Ingested {
				t.Fatalf("counter invariant broken after repair: %d+%d != %d",
					rs.Applied, rs.Dropped, rs.Ingested)
			}
			ref, err := newTenant("app", threads, Config{}.withDefaults())
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches[:rs.Applied/perBatch] {
				for _, e := range b {
					ref.applyOne(e)
				}
			}
			if !rs.Matrix.Equal(ref.matrix) {
				t.Fatal("recovered prefix differs from clean replay")
			}
			// The repaired log must accept new writes.
			if err := recovered.Ingest("app", batches[0]); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func chop(t *testing.T, path string, tail int) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tail) >= fi.Size() {
		t.Fatalf("segment only %d bytes, cannot chop %d", fi.Size(), tail)
	}
	if err := os.Truncate(path, fi.Size()-int64(tail)); err != nil {
		t.Fatal(err)
	}
}

func flip(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xA5
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDrainFinalizes is the SIGTERM regression: Drain must leave
// a finalized on-disk state — snapshot covering everything applied,
// compacted and cleanly closed WAL — such that reopening replays nothing
// and serves identical state.
func TestGracefulDrainFinalizes(t *testing.T) {
	const threads, perBatch, nbatches = 8, 64, 30
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncNever, WALSegmentBytes: 4096}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant("app", threads); err != nil {
		t.Fatal(err)
	}
	for _, b := range chaosBatches(21, threads, nbatches, perBatch) {
		if err := s.Ingest("app", b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query(context.Background(), "app"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	before, err := s.Snapshot("app")
	if err != nil {
		t.Fatal(err)
	}
	if before.Applied+before.Dropped != before.Ingested {
		t.Fatalf("drain broke the counter invariant: %d+%d != %d",
			before.Applied, before.Dropped, before.Ingested)
	}
	// Everything applied is in the final snapshot, so the WAL is fully
	// compacted: at most the one empty active segment remains.
	if segs := walSegments(t, dir, "app"); len(segs) > 1 {
		t.Fatalf("drain left %d WAL segments, want ≤1 after final compaction", len(segs))
	}

	reopened, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := reopened.Snapshot("app")
	if err != nil {
		t.Fatal(err)
	}
	if after.Applied != before.Applied {
		t.Fatalf("reopen applied %d, want %d (nothing to replay after drain)", after.Applied, before.Applied)
	}
	if !after.Matrix.Equal(before.Matrix) {
		t.Fatal("reopened matrix differs from drained state")
	}
	if after.Remaps != before.Remaps || after.Decisions != before.Decisions ||
		after.Confidence != before.Confidence {
		t.Fatal("reopened mapper state differs from drained state")
	}
}

// TestSequenceResume exercises the idempotent-resume contract end to end:
// duplicates are rejected without re-applying, gaps are refused, and both
// the crash path (WAL replay) and the checkpoint path (snapshot dedup
// map) restore the per-source sequence state a reconnecting client
// queries via SourceSeq.
func TestSequenceResume(t *testing.T) {
	const threads = 8
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncAlways}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant("app", threads); err != nil {
		t.Fatal(err)
	}
	batches := chaosBatches(31, threads, 6, 32)
	for i := 0; i < 3; i++ {
		if err := s.IngestFrom("app", "conn1", uint64(i+1), batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.IngestFrom("app", "conn1", 2, batches[1]); !errors.Is(err, ErrDuplicateBatch) {
		t.Fatalf("retransmit of seq 2: got %v, want ErrDuplicateBatch", err)
	}
	if err := s.IngestFrom("app", "conn1", 5, batches[4]); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("skip to seq 5: got %v, want ErrSequenceGap", err)
	}
	if seq, _ := s.SourceSeq("app", "conn1"); seq != 3 {
		t.Fatalf("SourceSeq = %d, want 3", seq)
	}
	waitApplied(t, s, "app", 3*32)

	// Crash: the dedup state must come back from the WAL replay.
	crashServer(s)
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq, _ := s2.SourceSeq("app", "conn1"); seq != 3 {
		t.Fatalf("after crash: SourceSeq = %d, want 3", seq)
	}
	if err := s2.IngestFrom("app", "conn1", 3, batches[2]); !errors.Is(err, ErrDuplicateBatch) {
		t.Fatalf("post-crash retransmit of seq 3: got %v, want ErrDuplicateBatch", err)
	}
	if err := s2.IngestFrom("app", "conn1", 4, batches[3]); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s2, "app", 4*32)
	// A duplicate must not have been double-applied: exactly 4 batches.
	snap, err := s2.Snapshot("app")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Applied != 4*32 {
		t.Fatalf("applied %d events, want %d (duplicates must not re-apply)", snap.Applied, 4*32)
	}

	// Checkpoint, then crash with the WAL tail wiped: the dedup state must
	// now come back from the snapshot alone.
	if err := s2.Checkpoint("app"); err != nil {
		t.Fatal(err)
	}
	crashServer(s2)
	for _, seg := range walSegments(t, dir, "app") {
		if err := os.Truncate(seg, 0); err != nil {
			t.Fatal(err)
		}
	}
	s3, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq, _ := s3.SourceSeq("app", "conn1"); seq != 4 {
		t.Fatalf("after snapshot-only recovery: SourceSeq = %d, want 4", seq)
	}
	snap3, err := s3.Snapshot("app")
	if err != nil {
		t.Fatal(err)
	}
	if snap3.Applied != 4*32 {
		t.Fatalf("snapshot-only recovery applied %d events, want %d", snap3.Applied, 4*32)
	}
}

// TestDurableEvictionIsTotal: evicting a durable tenant removes its
// directory, and a subsequent Open does not resurrect it.
func TestDurableEvictionIsTotal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncAlways}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant("doomed", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("doomed", sharingEvents(4, 16)); err != nil {
		t.Fatal(err)
	}
	if err := s.EvictTenant("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tenantDir(dir, "doomed")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tenant dir survives eviction: %v", err)
	}
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Tenants(); len(got) != 0 {
		t.Fatalf("evicted tenant resurrected: %v", got)
	}
}

// TestCheckpointCompactsWAL: snapshots license compaction — after a
// checkpoint the log retains at most the active segment.
func TestCheckpointCompactsWAL(t *testing.T) {
	const threads, perBatch, nbatches = 8, 64, 50
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncNever, WALSegmentBytes: 2048}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant("app", threads); err != nil {
		t.Fatal(err)
	}
	for _, b := range chaosBatches(17, threads, nbatches, perBatch) {
		if err := s.Ingest("app", b); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, s, "app", uint64(nbatches*perBatch))
	grown := len(walSegments(t, dir, "app"))
	if grown < 3 {
		t.Fatalf("expected the log to grow past 3 segments, have %d", grown)
	}
	if err := s.Checkpoint("app"); err != nil {
		t.Fatal(err)
	}
	if after := len(walSegments(t, dir, "app")); after > 1 {
		t.Fatalf("checkpoint left %d segments, want ≤1", after)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
