package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tlbmap/internal/wal"
)

// ingestLines builds deterministic E-line wire bytes with the loadgen
// neighbor pattern: per events each, threads in [0, threads).
func ingestLines(seed int64, threads, nlines, per int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	lines := make([][]byte, nlines)
	for i := range lines {
		line := []byte("E")
		for k := 0; k < per; k++ {
			th := rng.Intn(threads)
			line = append(line, ' ')
			line = strconv.AppendInt(line, int64(th), 10)
			line = append(line, ':')
			line = strconv.AppendUint(line, uint64(th*64+rng.Intn(96)), 10)
		}
		lines[i] = line
	}
	return lines
}

// TestIngestSteadyStateZeroAllocs is the serving-plane mirror of the
// engine's TestSteadyStateZeroAllocs: once a connection is warmed up, the
// whole ingest path — wire parse, batch copy, enqueue, response build —
// must not allocate per event. It drives session.handle directly (exactly
// what ServeConn calls per line) and waits for the applier after every
// line so the slab recycling loop is exercised, then asserts the short/
// long differential: fixed warmup costs cancel, per-event costs don't.
func TestIngestSteadyStateZeroAllocs(t *testing.T) {
	const threads, per = 8, 50
	s := New(Config{QueueCap: 64})
	sess := &session{srv: s}
	resp := make([]byte, 0, 256)
	resp, _ = sess.handle([]byte("HELLO zeroalloc 8"), resp[:0])
	if string(resp) != "OK" {
		t.Fatalf("HELLO: %s", resp)
	}
	tn, err := s.lookup("zeroalloc")
	if err != nil {
		t.Fatal(err)
	}
	lines := ingestLines(1, threads, 64, per)

	var sent uint64
	run := func(n int) func() {
		return func() {
			for i := 0; i < n; i++ {
				resp, _ = sess.handle(lines[i%len(lines)], resp[:0])
				if len(resp) < 2 || resp[0] != 'O' {
					panic("ingest: " + string(resp))
				}
				sent += per
				for tn.applied.Load() < sent {
					runtime.Gosched()
				}
			}
		}
	}
	run(64)() // warm: grow scratch buffers, seed the slab pool

	const shortN, longN = 25, 225
	shortAllocs := testing.AllocsPerRun(5, run(shortN))
	longAllocs := testing.AllocsPerRun(5, run(longN))
	perEvent := (longAllocs - shortAllocs) / float64((longN-shortN)*per)
	if perEvent > 0.01 {
		t.Errorf("steady-state ingest allocates: %.4f allocs/event (short run %.0f, long run %.0f)",
			perEvent, shortAllocs, longAllocs)
	}
}

// TestOversizedLineCleanErr pins the line-cap contract: a request line
// longer than any legal request draws a clean one-line ERR — not a
// scanner error that kills the connection — and the connection keeps
// serving afterwards.
func TestOversizedLineCleanErr(t *testing.T) {
	s := New(Config{})
	cl, sv := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(sv)
	}()
	defer func() {
		cl.Close()
		<-done
	}()
	rd := bufio.NewReaderSize(cl, 1<<12)
	send := func(line string) string {
		t.Helper()
		if _, err := cl.Write([]byte(line + "\n")); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimSuffix(resp, "\n")
	}
	if got := send("HELLO big 8"); got != "OK" {
		t.Fatalf("HELLO: %q", got)
	}
	// One monster line, well past maxLineBytes, written in chunks so the
	// synchronous pipe never deadlocks against the server's consume loop.
	var huge bytes.Buffer
	huge.WriteString("E")
	for huge.Len() <= maxLineBytes+1024 {
		huge.WriteString(" 0:1")
	}
	huge.WriteString("\n")
	go cl.Write(huge.Bytes())
	resp, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("oversized response: %v", err)
	}
	if !strings.HasPrefix(resp, "ERR") || !strings.Contains(resp, "exceeds") {
		t.Fatalf("oversized line: want clean ERR, got %q", resp)
	}
	// The connection must still work.
	if got := send("E 0:1 1:2"); got != "OK 2" {
		t.Fatalf("post-oversize ingest: %q", got)
	}
	if got := send("BYE"); got != "OK bye" {
		t.Fatalf("BYE: %q", got)
	}
}

// TestGroupCommitCrashTable extends the chaos battery to the group-commit
// boundaries: the process is SIGKILLed (via wal.Abort) at each point of
// the append → group fsync → ack release sequence, and at every crash
// point no acked batch may be lost, recovery invariants must hold, and a
// resumed client must land on exactly-once application.
func TestGroupCommitCrashTable(t *testing.T) {
	const (
		threads = 8
		per     = 32
		K       = 5 // batches; the crash is arranged around batch K's commit
	)
	for _, point := range []string{"afterAppend", "afterFsync", "afterAck"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(Config{Dir: dir, Sync: wal.SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CreateTenant("app", threads); err != nil {
				t.Fatal(err)
			}
			tn, err := s.lookup("app")
			if err != nil {
				t.Fatal(err)
			}
			if !tn.groupCommit {
				t.Fatal("SyncAlways durable tenant should be in group-commit mode")
			}
			var armed atomic.Bool
			crash := func(x *tenant) {
				if armed.Load() {
					x.wlog.Abort()
				}
			}
			switch point {
			case "afterAppend":
				// Crash between the buffered append and its group fsync:
				// batch K is in the userspace buffer only and must be lost
				// — AND its ingest must not have been acknowledged.
				s.gc.preSync = crash
			case "afterFsync":
				// Crash between the group fsync and the ack release: batch
				// K is durable, the client never hears so; the retransmit
				// must dedup.
				s.gc.postSync = crash
			case "afterAck":
				// Crash after the ack: the classic acked-survives-crash
				// case, now with the ack released by the committer.
			}

			batches := chaosBatches(9, threads, K, per)
			ackedBatches := 0
			for bi, evs := range batches {
				if bi == K-1 {
					armed.Store(true)
				}
				err := s.IngestFrom("app", "src", uint64(bi+1), evs)
				if bi < K-1 || point != "afterAppend" {
					if err != nil {
						t.Fatalf("batch %d: %v", bi+1, err)
					}
					ackedBatches++
					continue
				}
				// afterAppend, batch K: the covering fsync failed, so the
				// ack MUST NOT have been released.
				if err == nil {
					t.Fatalf("batch %d acked although its group fsync never completed", bi+1)
				}
			}
			crashServer(s)

			expect := K // batches on disk after the crash
			if point == "afterAppend" {
				expect = K - 1
			}
			if expect < ackedBatches {
				t.Fatalf("crash table broken: %d acked but only %d survive", ackedBatches, expect)
			}

			r, err := Open(Config{Dir: dir, Sync: wal.SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := r.SourceSeq("app", "src")
			if err != nil {
				t.Fatal(err)
			}
			if seq != uint64(expect) {
				t.Fatalf("recovered source seq = %d, want %d", seq, expect)
			}
			snap, err := r.Snapshot("app")
			if err != nil {
				t.Fatal(err)
			}
			if snap.Applied != uint64(expect*per) {
				t.Fatalf("recovered applied = %d events, want %d", snap.Applied, expect*per)
			}
			if snap.Applied+snap.Dropped != snap.Ingested {
				t.Fatalf("recovery invariant: applied %d + dropped %d != ingested %d",
					snap.Applied, snap.Dropped, snap.Ingested)
			}

			// Resume: the client retransmits batch K. Lost → accepted;
			// durable-but-unacked or acked → deduplicated. Either way the
			// tenant ends with every batch applied exactly once.
			err = r.IngestFrom("app", "src", K, batches[K-1])
			if point == "afterAppend" {
				if err != nil {
					t.Fatalf("resend of lost batch: %v", err)
				}
			} else if !errors.Is(err, ErrDuplicateBatch) {
				t.Fatalf("resend of surviving batch: want ErrDuplicateBatch, got %v", err)
			}
			if err := r.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}

			// Differential: byte-identical matrix to a clean server that
			// applied the same K batches exactly once.
			ref := New(Config{})
			if err := ref.CreateTenant("app", threads); err != nil {
				t.Fatal(err)
			}
			for _, evs := range batches {
				if err := ref.Ingest("app", evs); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}
			got, err := r.Snapshot("app")
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Snapshot("app")
			if err != nil {
				t.Fatal(err)
			}
			if got.Applied != uint64(K*per) {
				t.Fatalf("after resume: applied %d events, want %d", got.Applied, K*per)
			}
			if !bytes.Equal(got.Matrix.AppendBinary(nil), want.Matrix.AppendBinary(nil)) {
				t.Fatal("recovered+resumed matrix differs from clean exactly-once run")
			}
		})
	}
}

// TestParallelRecoveryDifferential asserts serve.Open's recovery pool is
// invisible in the result: for every worker count the recovered tenants'
// full serialized state (snapshot codec: matrix, TLBs, mapper, PRNGs,
// dedup map) and the next query answer are identical to 1-worker (serial)
// recovery.
func TestParallelRecoveryDifferential(t *testing.T) {
	const (
		tenants  = 9
		threads  = 8
		nbatches = 12
		per      = 64
	)
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 300}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < tenants; ti++ {
		id := fmt.Sprintf("app-%02d", ti)
		if err := s.CreateTenant(id, threads); err != nil {
			t.Fatal(err)
		}
		for bi, evs := range chaosBatches(int64(ti+1), threads, nbatches, per) {
			if err := s.IngestFrom(id, "src", uint64(bi+1), evs); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash rather than drain: recovery has both snapshots and WAL tails
	// to chew through. Every batch was acked under SyncAlways, so nothing
	// is lost.
	crashServer(s)

	capture := func(workers int) (map[string][]byte, map[string]QueryResult) {
		t.Helper()
		cfg := cfg
		cfg.RecoveryWorkers = workers
		r, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		states := make(map[string][]byte, tenants)
		for _, id := range r.Tenants() {
			tn, err := r.lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tn.mu.Lock()
			states[id] = tn.encodeStateLocked(nil)
			tn.mu.Unlock()
		}
		if len(states) != tenants {
			t.Fatalf("recovered %d tenants, want %d", len(states), tenants)
		}
		queries := make(map[string]QueryResult, tenants)
		for id := range states {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			res, err := r.Query(ctx, id)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			queries[id] = res
		}
		// Queries mutate only in-memory state and the crash discards it,
		// so every capture starts from the identical on-disk bytes.
		crashServer(r)
		return states, queries
	}

	baseStates, baseQueries := capture(1)
	for _, workers := range []int{2, 4, 8} {
		states, queries := capture(workers)
		for id, want := range baseStates {
			if !bytes.Equal(states[id], want) {
				t.Errorf("workers=%d: tenant %s recovered state differs from serial recovery", workers, id)
			}
			if !queryEqual(queries[id], baseQueries[id]) {
				t.Errorf("workers=%d: tenant %s query answer differs from serial recovery", workers, id)
			}
		}
	}
}
