package serve

import (
	"context"
	"errors"
	"testing"

	"tlbmap/internal/vm"
)

// waitApplied spins until the tenant's applied counter reaches want (the
// queue is asynchronous) or the test deadline kills it.
func waitApplied(t *testing.T, s *Server, id string, want uint64) {
	t.Helper()
	for {
		snap, err := s.Snapshot(id)
		if err != nil {
			t.Fatalf("Snapshot(%s): %v", id, err)
		}
		if snap.Applied+snap.Dropped >= want {
			return
		}
	}
}

func TestIngestDetectsSharing(t *testing.T) {
	s := New(Config{})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	// Thread 0 then thread 1 touch page 7: the second toucher's sampled
	// miss sees the first as a holder — one unit of communication.
	// Thread 2 touches a private page: no communication.
	err := s.Ingest("a", []Event{
		{Thread: 0, Page: 7},
		{Thread: 1, Page: 7},
		{Thread: 2, Page: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, "a", 3)
	snap, err := s.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Matrix.At(0, 1); got != 1 {
		t.Errorf("matrix[0][1] = %d, want 1", got)
	}
	if got := snap.Matrix.Total(); got != 1 {
		t.Errorf("matrix total = %d, want 1", got)
	}
	// A re-touch of a resident page is a TLB hit: no re-count.
	if err := s.Ingest("a", []Event{{Thread: 1, Page: 7}}); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, "a", 4)
	snap, _ = s.Snapshot("a")
	if got := snap.Matrix.Total(); got != 1 {
		t.Errorf("matrix total after resident re-touch = %d, want 1", got)
	}
}

func TestQueryReturnsValidPlacement(t *testing.T) {
	s := New(Config{})
	const threads = 8
	if err := s.CreateTenant("a", threads); err != nil {
		t.Fatal(err)
	}
	var events []Event
	for i := 0; i < threads; i++ {
		for p := 0; p < 32; p++ {
			events = append(events, Event{Thread: int32(i), Page: vm.Page(i*16 + p)})
		}
	}
	if err := s.Ingest("a", events); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, "a", uint64(len(events)))
	res, err := s.Query(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placement) != threads {
		t.Fatalf("placement has %d entries, want %d", len(res.Placement), threads)
	}
	seen := make([]bool, threads)
	for _, c := range res.Placement {
		if c < 0 || c >= threads || seen[c] {
			t.Fatalf("placement %v is not a permutation of 0..%d", res.Placement, threads-1)
		}
		seen[c] = true
	}
	if res.Degraded {
		t.Errorf("unexpected degraded query: %s", res.Reason)
	}
}

func TestCreateTenantValidation(t *testing.T) {
	s := New(Config{MaxThreads: 64})
	for _, bad := range []int{0, -1, 3, 12, 128} {
		if err := s.CreateTenant("x", bad); err == nil {
			t.Errorf("CreateTenant with %d threads succeeded, want error", bad)
		}
	}
	if err := s.CreateTenant("", 4); err == nil {
		t.Error("CreateTenant with empty id succeeded, want error")
	}
	if err := s.CreateTenant("a", 8); err != nil {
		t.Fatal(err)
	}
	// Idempotent with an equal thread count, an error with a different one.
	if err := s.CreateTenant("a", 8); err != nil {
		t.Errorf("idempotent re-create failed: %v", err)
	}
	if err := s.CreateTenant("a", 16); !errors.Is(err, ErrTenantExists) {
		t.Errorf("re-create with different threads: err = %v, want ErrTenantExists", err)
	}
}

func TestUnknownTenantErrors(t *testing.T) {
	s := New(Config{})
	if err := s.Ingest("ghost", []Event{{Thread: 0, Page: 1}}); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("Ingest: err = %v, want ErrTenantNotFound", err)
	}
	if _, err := s.Query(context.Background(), "ghost"); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("Query: err = %v, want ErrTenantNotFound", err)
	}
	if _, err := s.Snapshot("ghost"); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("Snapshot: err = %v, want ErrTenantNotFound", err)
	}
	if err := s.EvictTenant("ghost"); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("Evict: err = %v, want ErrTenantNotFound", err)
	}
}

func TestBadEventRejected(t *testing.T) {
	s := New(Config{})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	for _, e := range []Event{{Thread: 4, Page: 1}, {Thread: -1, Page: 1}} {
		if err := s.Ingest("a", []Event{e}); !errors.Is(err, ErrBadEvent) {
			t.Errorf("Ingest(thread %d): err = %v, want ErrBadEvent", e.Thread, err)
		}
	}
}

func TestDrainStopsIngestKeepsQueries(t *testing.T) {
	s := New(Config{})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("a", []Event{{Thread: 0, Page: 1}, {Thread: 1, Page: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if err := s.Ingest("a", []Event{{Thread: 0, Page: 2}}); !errors.Is(err, ErrDraining) {
		t.Errorf("Ingest after drain: err = %v, want ErrDraining", err)
	}
	if err := s.CreateTenant("b", 4); !errors.Is(err, ErrDraining) {
		t.Errorf("CreateTenant after drain: err = %v, want ErrDraining", err)
	}
	snap, err := s.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Applied != snap.Ingested || snap.Applied != 2 {
		t.Errorf("after drain: applied=%d ingested=%d, want both 2", snap.Applied, snap.Ingested)
	}
	if snap.Matrix.Total() != 1 {
		t.Errorf("queued events were not applied before drain: total=%d", snap.Matrix.Total())
	}
	if _, err := s.Query(context.Background(), "a"); err != nil {
		t.Errorf("Query after drain failed: %v", err)
	}
	// Double drain is a no-op.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}
