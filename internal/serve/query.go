package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tlbmap/internal/runner"
)

// QueryResult is one placement answer.
type QueryResult struct {
	// Placement maps thread -> core, the placement in force after this
	// query's epoch was evaluated (or the last one in force, when
	// Degraded).
	Placement []int
	// Remapped is true when this query's epoch triggered a migration.
	Remapped bool
	// Migrations is the number of threads that moved (0 unless Remapped).
	Migrations int
	// Reason is the online mapper's decision rationale, or the
	// degradation reason when Degraded.
	Reason string
	// Confidence is the mapper's pattern-stability score in [0, 1]
	// (0 when Degraded — the score was not computable within budget).
	Confidence float64
	// Degraded is true when the deadline expired mid-mapping and the
	// response is the last confident placement instead of a fresh one.
	Degraded bool
	// Elapsed is the server-side time spent answering.
	Elapsed time.Duration
}

// Query evaluates the tenant's communication delta since its previous
// query (one epoch) through the confidence-gated online mapper and
// returns the placement in force. The hardened runner is the execution
// layer: the mapping runs inside runner.Attempt under Config.QueryDeadline
// (or the earlier ctx deadline), so
//
//   - a query that exceeds its budget returns within it, carrying the last
//     placement a completed query put in force (identity until then),
//     flagged Degraded — bounded latency beats freshness;
//   - a panic inside mapping quarantines the tenant (stack retained) and
//     surfaces as ErrTenantQuarantined instead of killing the daemon.
//
// A mapping that missed its deadline keeps running detached and still
// updates the tenant's state when it completes; only its response is
// discarded.
func (s *Server) Query(ctx context.Context, tenantID string) (QueryResult, error) {
	start := time.Now()
	t, err := s.lookup(tenantID)
	if err != nil {
		return QueryResult{}, err
	}
	if pe := t.quarantine.Load(); pe != nil {
		return QueryResult{}, fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, pe.Value)
	}
	s.queries.Add(1)
	res, err := runner.Attempt(ctx, s.cfg.QueryDeadline, func(ctx context.Context) (QueryResult, error) {
		t.mu.Lock()
		defer t.mu.Unlock()
		epoch := t.matrix.Sub(t.lastSnap)
		dec, err := t.online.Observe(epoch)
		if err != nil {
			return QueryResult{}, err
		}
		t.lastSnap = t.matrix.Clone()
		t.lastPlacement.Store(dec.Placement)
		return QueryResult{
			Placement:  dec.Placement,
			Remapped:   dec.Remap,
			Migrations: dec.Migrations,
			Reason:     dec.Reason,
			Confidence: dec.Confidence,
		}, nil
	})
	var pe *runner.PanicError
	switch {
	case err == nil:
		res.Elapsed = time.Since(start)
		return res, nil
	case errors.As(err, &pe):
		t.quarantine.Store(pe)
		return QueryResult{}, fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, pe.Value)
	case errors.Is(err, context.DeadlineExceeded):
		// ctx itself may still be live — only the per-request budget
		// expired. Serve the last placement in force, degraded.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return QueryResult{}, ctxErr
		}
		s.degraded.Add(1)
		last, _ := t.lastPlacement.Load().([]int)
		return QueryResult{
			Placement: append([]int(nil), last...),
			Reason:    fmt.Sprintf("deadline %v exceeded; serving last placement", s.cfg.QueryDeadline),
			Degraded:  true,
			Elapsed:   time.Since(start),
		}, nil
	default:
		return QueryResult{}, err
	}
}
