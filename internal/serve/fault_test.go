package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"tlbmap/internal/comm"
	"tlbmap/internal/fault"
	"tlbmap/internal/topology"
	"tlbmap/internal/vm"
)

// waitQuarantined polls until the tenant's quarantine flag is set.
func waitQuarantined(t *testing.T, s *Server, id string) *TenantSnapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := s.Snapshot(id)
		if err != nil {
			t.Fatalf("Snapshot(%s): %v", id, err)
		}
		if snap.Quarantined {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s never quarantined", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestApplierPanicQuarantinesTenant detonates a panic inside one tenant's
// applier: that tenant is quarantined with its stack retained and refuses
// further traffic, while a sibling tenant on the same shard keeps working.
func TestApplierPanicQuarantinesTenant(t *testing.T) {
	s := New(Config{Shards: 1}) // one shard: the sibling shares it by construction
	for _, id := range []string{"bad", "good"} {
		if err := s.CreateTenant(id, 4); err != nil {
			t.Fatal(err)
		}
	}
	tn, err := s.lookup("bad")
	if err != nil {
		t.Fatal(err)
	}
	tn.mu.Lock()
	tn.applyHook = func(e Event) {
		if e.Page == 666 {
			panic("poisoned sample")
		}
	}
	tn.mu.Unlock()

	if err := s.Ingest("bad", []Event{{Thread: 0, Page: 1}, {Thread: 0, Page: 666}, {Thread: 1, Page: 2}}); err != nil {
		t.Fatal(err)
	}
	snap := waitQuarantined(t, s, "bad")
	if snap.PanicValue != "poisoned sample" {
		t.Errorf("PanicValue = %v, want the panic payload", snap.PanicValue)
	}
	if len(snap.PanicStack) == 0 {
		t.Error("PanicStack is empty, want the retained stack")
	}
	// One event applied before the poison pill, the rest of the batch dropped.
	if snap.Applied != 1 || snap.Dropped != 2 {
		t.Errorf("applied=%d dropped=%d, want 1 and 2", snap.Applied, snap.Dropped)
	}

	if err := s.Ingest("bad", []Event{{Thread: 0, Page: 3}}); !errors.Is(err, ErrTenantQuarantined) {
		t.Errorf("Ingest into quarantined tenant: err = %v, want ErrTenantQuarantined", err)
	}
	if _, err := s.Query(context.Background(), "bad"); !errors.Is(err, ErrTenantQuarantined) {
		t.Errorf("Query of quarantined tenant: err = %v, want ErrTenantQuarantined", err)
	}
	if got := s.Stats().Quarantines; got != 1 {
		t.Errorf("Stats.Quarantines = %d, want 1", got)
	}

	// The sibling on the same shard is untouched.
	if err := s.Ingest("good", []Event{{Thread: 0, Page: 7}, {Thread: 1, Page: 7}}); err != nil {
		t.Fatalf("sibling Ingest after quarantine: %v", err)
	}
	waitApplied(t, s, "good", 2)
	gs, err := s.Snapshot("good")
	if err != nil {
		t.Fatal(err)
	}
	if gs.Quarantined {
		t.Error("sibling tenant was poisoned by the quarantine")
	}
	if gs.Matrix.Total() != 1 {
		t.Errorf("sibling matrix total = %d, want 1", gs.Matrix.Total())
	}
	if _, err := s.Query(context.Background(), "good"); err != nil {
		t.Errorf("sibling Query after quarantine: %v", err)
	}

	// Eviction clears the quarantine; re-creation starts healthy.
	if err := s.EvictTenant("bad"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant("bad", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("bad", []Event{{Thread: 0, Page: 666}}); err != nil {
		t.Fatalf("re-created tenant rejects ingest: %v", err)
	}
	waitApplied(t, s, "bad", 1)
	if snap, _ := s.Snapshot("bad"); snap.Quarantined {
		t.Error("re-created tenant inherited the quarantine")
	}
}

// panicMapper detonates inside the query path's mapping step.
type panicMapper struct{}

func (panicMapper) Name() string { return "panic" }
func (panicMapper) Map(*comm.Matrix, *topology.Machine) ([]int, error) {
	panic("mapper detonated")
}

// TestQueryPanicQuarantinesTenant routes the panic through the hardened
// runner on the query path: the caller gets ErrTenantQuarantined (not a
// crash) and the tenant is poisoned exactly as an applier panic would.
func TestQueryPanicQuarantinesTenant(t *testing.T) {
	s := New(Config{Mapper: panicMapper{}})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	ev := sharingEvents(4, 16)
	if err := s.Ingest("a", ev); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, "a", uint64(len(ev)))
	if _, err := s.Query(context.Background(), "a"); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("Query with panicking mapper: err = %v, want ErrTenantQuarantined", err)
	}
	snap, err := s.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Quarantined || len(snap.PanicStack) == 0 {
		t.Errorf("quarantined=%t stack=%d bytes, want quarantined with stack", snap.Quarantined, len(snap.PanicStack))
	}
}

// TestSampleLossOnIngest arms the SampleLoss injector at full intensity:
// every trap is lost, so the matrix never accumulates — but the refills
// still happen, so the TLBs (and the presence index) fill as usual.
func TestSampleLossOnIngest(t *testing.T) {
	plan, err := fault.ParsePlan("sampleloss:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Faults: plan})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	ev := sharingEvents(4, 16)
	if err := s.Ingest("a", ev); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, "a", uint64(len(ev)))
	snap, err := s.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Matrix.Total() != 0 {
		t.Errorf("matrix total = %d with all samples lost, want 0", snap.Matrix.Total())
	}
	if snap.LostSamples == 0 {
		t.Error("LostSamples = 0 with sampleloss at full intensity")
	}
	tn, err := s.lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	tn.mu.Lock()
	pages := tn.presence.PageCount()
	tn.mu.Unlock()
	if pages == 0 {
		t.Error("presence index is empty: lost traps must still refill the TLB")
	}
}

// TestShootdownStormOnIngest arms the ShootdownStorm injector: storms fire
// on the ingest path, flushing random TLBs — and the presence index stays
// consistent through every flush.
func TestShootdownStormOnIngest(t *testing.T) {
	plan, err := fault.ParsePlan("shootdown:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Faults: plan})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	// Enough events that storms fire at ~1 per 100 samples.
	var total uint64
	for round := 0; round < 20; round++ {
		ev := sharingEvents(4, 64)
		for i := range ev {
			ev[i].Page += vm.Page(round * 1000)
		}
		if err := s.Ingest("a", ev); err != nil {
			t.Fatal(err)
		}
		total += uint64(len(ev))
	}
	waitApplied(t, s, "a", total)
	snap, err := s.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Storms == 0 {
		t.Errorf("no storms fired over %d events at full intensity", total)
	}
	tn, err := s.lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	tn.mu.Lock()
	verr := tn.presence.Validate()
	tn.mu.Unlock()
	if verr != nil {
		t.Errorf("presence index inconsistent after storms: %v", verr)
	}
}

// TestFaultInjectionDeterministic feeds the same stream through two servers
// armed with the same plan: the injected faults land on the same events, so
// the matrices are identical — reproducibility survives the serving path.
func TestFaultInjectionDeterministic(t *testing.T) {
	plan, err := fault.ParsePlan("sampleloss:0.3,shootdown:0.5", 99)
	if err != nil {
		t.Fatal(err)
	}
	ev := sharingEvents(8, 64)
	snaps := make([]*TenantSnapshot, 2)
	for i := range snaps {
		s := New(Config{Faults: plan})
		if err := s.CreateTenant("twin", 8); err != nil {
			t.Fatal(err)
		}
		if err := s.Ingest("twin", ev); err != nil {
			t.Fatal(err)
		}
		waitApplied(t, s, "twin", uint64(len(ev)))
		snaps[i], err = s.Snapshot("twin")
		if err != nil {
			t.Fatal(err)
		}
	}
	if !snaps[0].Matrix.Equal(snaps[1].Matrix) {
		t.Error("same plan + same stream produced different matrices")
	}
	if snaps[0].LostSamples != snaps[1].LostSamples || snaps[0].Storms != snaps[1].Storms {
		t.Errorf("fault counts diverged: lost %d vs %d, storms %d vs %d",
			snaps[0].LostSamples, snaps[1].LostSamples, snaps[0].Storms, snaps[1].Storms)
	}
}
