package serve

import "sync"

// Group commit.
//
// Under Config.Dir with wal.SyncAlways every accepted batch must be
// fsynced before its ack is released — that is the acked-survives-crash
// contract. Fsyncing inside every IngestFrom serializes the whole tenant
// on disk latency, so instead the ingest path buffers the WAL append
// (wal.AppendBuffered, no fsync), schedules the tenant on the shared
// committer below, and blocks in waitDurable until a completed fsync
// covers its sequence number. One fsync then retires every append that
// landed before it — concurrent writers to one tenant coalesce naturally
// (their appends pile up while the previous commit round runs), and a
// thousand small tenants issue fsyncs at the rate one scheduler can
// retire them instead of one per batch.
//
// Ordering guarantee: an ack (including "OK dup" retransmit acks and the
// "OK seq=<n>" HELLO resume point, which implicitly acknowledge earlier
// batches) is released only after wal.Log.Sync has returned and the
// covered sequence number has been observed. A crash between append and
// fsync loses only batches whose ingest call had not yet returned.

// committer is the shared cross-tenant sync scheduler. Tenants with
// freshly buffered appends queue here (deduplicated via commitQueued) and
// one background goroutine drains the queue, giving each queued tenant
// one flush+fsync per round.
type committer struct {
	mu      sync.Mutex
	queue   []*tenant
	stopped bool
	wake    chan struct{}
	done    chan struct{}

	// preSync and postSync are test-only crash points around each
	// tenant's fsync, used by the group-commit chaos table.
	preSync, postSync func(*tenant)
}

func newCommitter() *committer {
	c := &committer{
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go c.run()
	return c
}

// schedule queues t for the next commit round. After the committer has
// stopped (server drain), the caller's goroutine syncs inline so no
// waiter is ever stranded.
func (c *committer) schedule(t *tenant) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		t.groupSync(c.preSync, c.postSync)
		return
	}
	if t.commitQueued {
		c.mu.Unlock()
		return
	}
	t.commitQueued = true
	c.queue = append(c.queue, t)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *committer) run() {
	defer close(c.done)
	var round []*tenant
	for {
		c.mu.Lock()
		round = append(round[:0], c.queue...)
		c.queue = c.queue[:0]
		// Clear the queued flags before syncing: an append that lands
		// while this round's fsync is in flight must be able to requeue
		// the tenant, because that fsync may not cover it.
		for _, t := range round {
			t.commitQueued = false
		}
		stopped := c.stopped
		c.mu.Unlock()
		for _, t := range round {
			t.groupSync(c.preSync, c.postSync)
		}
		if len(round) > 0 {
			continue
		}
		if stopped {
			return
		}
		<-c.wake
	}
}

// stop drains the queue and retires the scheduler goroutine. Later
// schedule calls sync inline on the caller's goroutine.
func (c *committer) stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.stopped = true
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	<-c.done
}

// groupSync runs one commit round for this tenant: one flush+fsync, then
// release every ingest waiting on a covered sequence number. A failed
// fsync is sticky — a WAL that cannot make acks durable can no longer
// honor the contract, so every current and future waiter fails (and
// quarantines the tenant fail-stop).
func (t *tenant) groupSync(pre, post func(*tenant)) {
	if pre != nil {
		pre(t)
	}
	err := t.wlog.Sync()
	var covered uint64
	if err == nil {
		covered = t.wlog.Synced()
	}
	if post != nil {
		post(t)
	}
	t.commitMu.Lock()
	if err != nil {
		if t.commitErr == nil {
			t.commitErr = err
		}
	} else if covered > t.ackedDurable {
		t.ackedDurable = covered
	}
	t.commitCond.Broadcast()
	t.commitMu.Unlock()
}

// waitDurable blocks until a completed fsync covers seq, or the tenant's
// commit path has failed.
func (t *tenant) waitDurable(seq uint64) error {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	for t.ackedDurable < seq && t.commitErr == nil {
		t.commitCond.Wait()
	}
	return t.commitErr
}
