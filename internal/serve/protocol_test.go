package serve

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
)

// protoClient is a line-oriented test client over an in-memory pipe served
// by the same ServeConn path TCP connections use.
type protoClient struct {
	t    *testing.T
	conn net.Conn
	rd   *bufio.Reader
}

func dialProto(t *testing.T, s *Server) *protoClient {
	t.Helper()
	client, server := net.Pipe()
	go s.ServeConn(server)
	t.Cleanup(func() { client.Close() })
	return &protoClient{t: t, conn: client, rd: bufio.NewReader(client)}
}

func (c *protoClient) roundTrip(line string) string {
	c.t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		c.t.Fatalf("write %q: %v", line, err)
	}
	resp, err := c.rd.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read response to %q: %v", line, err)
	}
	return strings.TrimSuffix(resp, "\n")
}

func (c *protoClient) expectOK(line string) string {
	c.t.Helper()
	resp := c.roundTrip(line)
	if !strings.HasPrefix(resp, "OK") {
		c.t.Fatalf("%q: got %q, want OK", line, resp)
	}
	return resp
}

func (c *protoClient) expectERR(line string) string {
	c.t.Helper()
	resp := c.roundTrip(line)
	if !strings.HasPrefix(resp, "ERR") {
		c.t.Fatalf("%q: got %q, want ERR", line, resp)
	}
	return resp
}

func TestProtocolRoundTrips(t *testing.T) {
	s := New(Config{})
	c := dialProto(t, s)

	c.expectOK("HELLO app 4")
	if resp := c.expectOK("E 0:7 1:7 2:100"); resp != "OK 3" {
		t.Errorf("E acknowledged %q, want \"OK 3\"", resp)
	}
	waitApplied(t, s, "app", 3)

	snap := c.expectOK("SNAP")
	if !strings.Contains(snap, "events=3") || !strings.Contains(snap, "applied=3") ||
		!strings.Contains(snap, "total=1") {
		t.Errorf("SNAP = %q, want events=3 applied=3 total=1", snap)
	}

	q := c.expectOK("Q")
	fields := strings.Fields(q)
	if len(fields) < 2 {
		t.Fatalf("Q = %q, want placement + metadata", q)
	}
	if got := len(strings.Split(fields[1], ",")); got != 4 {
		t.Errorf("Q placement %q has %d entries, want 4", fields[1], got)
	}
	if !strings.Contains(q, "conf=") || !strings.Contains(q, "degraded=false") {
		t.Errorf("Q = %q, want conf= and degraded=false", q)
	}

	// Hex pages parse per strconv.
	c.expectOK("E 3:0x2a")

	if resp := c.expectOK("BYE"); resp != "OK bye" {
		t.Errorf("BYE = %q", resp)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := New(Config{})
	c := dialProto(t, s)

	// Everything except HELLO requires a bound tenant.
	for _, line := range []string{"E 0:1", "Q", "SNAP"} {
		if resp := c.expectERR(line); !strings.Contains(resp, "HELLO first") {
			t.Errorf("%q before HELLO: %q", line, resp)
		}
	}
	c.expectERR("HELLO")          // wrong arity
	c.expectERR("HELLO app x")    // bad thread count
	c.expectERR("HELLO app 3")    // not a power of two
	c.expectERR("HELLO app 4096") // above MaxThreads
	c.expectOK("HELLO app 4")
	c.expectERR("HELLO app 8") // same tenant, different threads

	c.expectERR("E 0")    // missing colon
	c.expectERR("E x:1")  // bad thread
	c.expectERR("E 0:zz") // bad page
	c.expectERR("E 9:1")  // thread out of the tenant's range
	c.expectERR("NOPE")   // unknown command
	c.expectERR("")       // empty request

	// A batch above the cap is refused outright.
	var b strings.Builder
	b.WriteString("E")
	for i := 0; i <= MaxBatch; i++ {
		fmt.Fprintf(&b, " %d:%d", i%4, i)
	}
	if resp := c.expectERR(b.String()); !strings.Contains(resp, "cap") {
		t.Errorf("oversized batch: %q", resp)
	}

	// Errors are not fatal: the connection still works.
	c.expectOK("E 0:1")
}

// TestProtocolSequencedSession exercises the sourced wire protocol: HELLO
// with a source name answers the acknowledged sequence, E lines carry batch
// numbers, retransmits get "OK dup", gaps get ERR, and a reconnecting
// client resumes exactly where the server says it left off.
func TestProtocolSequencedSession(t *testing.T) {
	s := New(Config{})
	c := dialProto(t, s)

	if resp := c.expectOK("HELLO app 4 src-a"); resp != "OK seq=0" {
		t.Errorf("fresh sourced HELLO = %q, want \"OK seq=0\"", resp)
	}
	// Sourced sessions must number their batches.
	if resp := c.expectERR("E 0:1"); !strings.Contains(resp, "sourced") {
		t.Errorf("unnumbered E on sourced session: %q", resp)
	}
	c.expectOK("E 1 0:7 1:7")
	c.expectOK("E 2 2:7")
	waitApplied(t, s, "app", 3)

	// Retransmits acknowledge without re-applying; skips are refused.
	if resp := c.expectOK("E 2 2:7"); resp != "OK dup" {
		t.Errorf("replayed batch = %q, want \"OK dup\"", resp)
	}
	if resp := c.expectOK("E 1 0:7 1:7"); resp != "OK dup" {
		t.Errorf("older replayed batch = %q, want \"OK dup\"", resp)
	}
	if resp := c.expectERR("E 4 3:7"); !strings.Contains(resp, "gap") {
		t.Errorf("skipped seq = %q, want sequence-gap ERR", resp)
	}
	snap, err := s.Snapshot("app")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ingested != 3 || snap.Applied != 3 {
		t.Errorf("after dup+gap: ingested=%d applied=%d, want 3/3", snap.Ingested, snap.Applied)
	}

	// A reconnecting client resumes from the acknowledged number.
	c2 := dialProto(t, s)
	if resp := c2.expectOK("HELLO app 4 src-a"); resp != "OK seq=2" {
		t.Errorf("reconnect HELLO = %q, want \"OK seq=2\"", resp)
	}
	c2.expectOK("E 3 3:7")
	waitApplied(t, s, "app", 4)

	// An independent source numbers its own stream from scratch.
	c3 := dialProto(t, s)
	if resp := c3.expectOK("HELLO app 4 src-b"); resp != "OK seq=0" {
		t.Errorf("second source HELLO = %q, want \"OK seq=0\"", resp)
	}
	c3.expectOK("E 1 0:9")
	waitApplied(t, s, "app", 5)
}

func TestProtocolIdempotentHello(t *testing.T) {
	s := New(Config{})
	c1 := dialProto(t, s)
	c2 := dialProto(t, s)
	c1.expectOK("HELLO shared 4")
	c2.expectOK("HELLO shared 4") // reconnecting client, same shape
	c1.expectOK("E 0:7")
	c2.expectOK("E 1:7")
	waitApplied(t, s, "shared", 2)
	snap, err := s.Snapshot("shared")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Matrix.Total() != 1 {
		t.Errorf("two connections into one tenant: total = %d, want 1", snap.Matrix.Total())
	}
}
