// Package loadgen is the synthetic client fleet for mapperd: it drives
// many concurrent protocol connections against a serve.Server (over real
// TCP or in-memory pipes), shipping deterministic neighbor-pattern TLB
// samples and interleaved placement queries, and reports sustained
// events/sec plus query-latency percentiles — the numbers BENCH_serve.json
// commits and scripts/bench.sh check gates.
package loadgen

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlbmap/internal/runner"
	"tlbmap/internal/stats"
)

// Options configures one fleet run. Zero values select the defaults noted.
type Options struct {
	// Dial opens one connection to the daemon (required). Real fleets
	// dial TCP; the soak tests hand out net.Pipe ends.
	Dial func() (net.Conn, error)
	// Conns is the fleet size (default 64).
	Conns int
	// Tenants is how many tenants the fleet spreads over (default 8;
	// connection i belongs to tenant i mod Tenants).
	Tenants int
	// Threads is the per-tenant thread count (default 8, a power of two).
	Threads int
	// EventsPerConn is how many samples each connection ships
	// (default 1000).
	EventsPerConn int
	// Batch is the events per E line (default 50).
	Batch int
	// QueryEvery issues a placement query every that many batches
	// (default 4; 0 disables queries).
	QueryEvery int
	// Seed derives every connection's deterministic sample stream.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 64
	}
	if o.Tenants <= 0 {
		o.Tenants = 8
	}
	if o.Threads <= 0 {
		o.Threads = 8
	}
	if o.EventsPerConn <= 0 {
		o.EventsPerConn = 1000
	}
	if o.Batch <= 0 {
		o.Batch = 50
	}
	if o.QueryEvery < 0 {
		o.QueryEvery = 0
	} else if o.QueryEvery == 0 {
		o.QueryEvery = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Report summarizes one fleet run.
type Report struct {
	Conns, Tenants, Threads int
	// Events and Queries count acknowledged requests; Errors counts ERR
	// responses (overload responses land here), HangUps counts
	// connections the server closed early or that failed IO.
	Events, Queries, Errors, HangUps uint64
	Elapsed                          time.Duration
	EventsPerSec, QueriesPerSec      float64
	// QueryP50/QueryP99 summarize round-trip query latency.
	QueryP50, QueryP99 time.Duration
}

// String renders the report the way mapperd prints it.
func (r Report) String() string {
	return fmt.Sprintf(
		"conns=%d tenants=%d threads=%d events=%d queries=%d errors=%d hangups=%d\n"+
			"  sustained %.0f events/sec, %.0f queries/sec over %v\n"+
			"  query latency p50=%v p99=%v",
		r.Conns, r.Tenants, r.Threads, r.Events, r.Queries, r.Errors, r.HangUps,
		r.EventsPerSec, r.QueriesPerSec, r.Elapsed.Round(time.Millisecond),
		r.QueryP50.Round(time.Microsecond), r.QueryP99.Round(time.Microsecond))
}

// Run drives the fleet to completion: every connection HELLOs its tenant,
// ships EventsPerConn samples in batches with interleaved queries, and
// BYEs. Sample streams are deterministic per (Seed, connection): thread
// picked uniformly, page drawn from the thread's 96-page region, which
// overlaps its successor's region by 32 pages — adjacent threads share
// pages, so the detected pattern is the neighbor-heavy shape the mappers
// reward and remaps actually fire under load.
func Run(o Options) (Report, error) {
	o = o.withDefaults()
	if o.Dial == nil {
		return Report{}, fmt.Errorf("loadgen: Options.Dial is required")
	}
	var (
		events, queries, errs, hangups atomic.Uint64
		mu                             sync.Mutex
		latencies                      []time.Duration
		wg                             sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < o.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lat, ev, q, er, err := drive(o, i)
			events.Add(ev)
			queries.Add(q)
			errs.Add(er)
			if err != nil {
				hangups.Add(1)
			}
			mu.Lock()
			latencies = append(latencies, lat...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := Report{
		Conns: o.Conns, Tenants: o.Tenants, Threads: o.Threads,
		Events: events.Load(), Queries: queries.Load(),
		Errors: errs.Load(), HangUps: hangups.Load(),
		Elapsed: elapsed,
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		r.EventsPerSec = float64(r.Events) / secs
		r.QueriesPerSec = float64(r.Queries) / secs
	}
	var sample stats.Sample
	for _, d := range latencies {
		sample.Add(float64(d))
	}
	r.QueryP50 = time.Duration(sample.Percentile(50))
	r.QueryP99 = time.Duration(sample.Percentile(99))
	return r, nil
}

// drive runs one connection's whole conversation and returns its query
// latencies and counts. A non-nil error means the conversation ended
// early (server hangup, IO failure).
func drive(o Options, i int) (lat []time.Duration, events, queries, errs uint64, err error) {
	conn, err := o.Dial()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	tenant := fmt.Sprintf("tenant-%03d", i%o.Tenants)
	rng := rand.New(rand.NewSource(runner.SeedN(o.Seed, i, "loadgen")))

	roundTrip := func(line string) (string, error) {
		if _, err := w.WriteString(line); err != nil {
			return "", err
		}
		if err := w.WriteByte('\n'); err != nil {
			return "", err
		}
		if err := w.Flush(); err != nil {
			return "", err
		}
		resp, err := rd.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimSuffix(resp, "\n"), nil
	}

	resp, err := roundTrip(fmt.Sprintf("HELLO %s %d", tenant, o.Threads))
	if err != nil {
		return lat, events, queries, errs, err
	}
	if !strings.HasPrefix(resp, "OK") {
		return lat, events, queries, errs, fmt.Errorf("loadgen: HELLO: %s", resp)
	}

	var b strings.Builder
	batches := (o.EventsPerConn + o.Batch - 1) / o.Batch
	sent := 0
	for bi := 0; bi < batches; bi++ {
		n := o.Batch
		if rest := o.EventsPerConn - sent; n > rest {
			n = rest
		}
		b.Reset()
		b.WriteString("E")
		for k := 0; k < n; k++ {
			// Neighbor pattern: thread t's 96-page region starts at
			// t*64, so it shares 32 pages with thread t+1's region.
			thread := rng.Intn(o.Threads)
			page := uint64(thread)*64 + uint64(rng.Intn(96))
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(thread))
			b.WriteByte(':')
			b.WriteString(strconv.FormatUint(page, 10))
		}
		sent += n
		resp, err := roundTrip(b.String())
		if err != nil {
			return lat, events, queries, errs, err
		}
		if strings.HasPrefix(resp, "OK") {
			events += uint64(n)
		} else {
			errs++
		}
		if o.QueryEvery > 0 && (bi+1)%o.QueryEvery == 0 {
			qStart := time.Now()
			resp, err := roundTrip("Q")
			if err != nil {
				return lat, events, queries, errs, err
			}
			if strings.HasPrefix(resp, "OK") {
				lat = append(lat, time.Since(qStart))
				queries++
			} else {
				errs++
			}
		}
	}
	if _, err := roundTrip("BYE"); err != nil {
		return lat, events, queries, errs, err
	}
	return lat, events, queries, errs, nil
}
