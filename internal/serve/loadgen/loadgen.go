// Package loadgen is the synthetic client fleet for mapperd: it drives
// many concurrent protocol connections against a serve.Server (over real
// TCP or in-memory pipes), shipping deterministic neighbor-pattern TLB
// samples and interleaved placement queries, and reports sustained
// events/sec plus query-latency percentiles — the numbers BENCH_serve.json
// commits and scripts/bench.sh check gates.
package loadgen

import (
	"bufio"
	"bytes"
	"fmt"
	randv2 "math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlbmap/internal/runner"
	"tlbmap/internal/stats"
)

// Wire fragments the hot loop compares against without allocating.
var (
	okPrefix    = []byte("OK")
	queryLine   = []byte("Q\n")
	byeLine     = []byte("BYE\n")
	helloPrefix = "OK seq="
)

// Options configures one fleet run. Zero values select the defaults noted.
type Options struct {
	// Dial opens one connection to the daemon (required). Real fleets
	// dial TCP; the soak tests hand out net.Pipe ends.
	Dial func() (net.Conn, error)
	// Conns is the fleet size (default 64).
	Conns int
	// Tenants is how many tenants the fleet spreads over (default 8;
	// connection i belongs to tenant i mod Tenants).
	Tenants int
	// Threads is the per-tenant thread count (default 8, a power of two).
	Threads int
	// EventsPerConn is how many samples each connection ships
	// (default 1000).
	EventsPerConn int
	// Batch is the events per E line (default 50).
	Batch int
	// QueryEvery issues a placement query every that many batches
	// (default 4; 0 disables queries).
	QueryEvery int
	// Seed derives every connection's deterministic sample stream.
	Seed int64
	// Retries is how many additional connect attempts each connection
	// makes after a failed dial (default 3 with Reconnect set, else 0),
	// with exponential backoff jittered from the connection's seeded rng —
	// a reconnecting herd spreads out deterministically.
	Retries int
	// Backoff is the base delay before the first retry (default 5ms);
	// attempt k waits Backoff·2^k scaled by a jitter factor in [0.5, 1.5).
	Backoff time.Duration
	// Reconnect makes every connection sequenced — HELLO carries a source
	// name, E lines carry batch numbers — and injects one deliberate
	// mid-conversation disconnect at a seeded random batch (sometimes
	// after the batch was written but before its ack was read: the
	// lost-ack case). The connection re-dials with backoff, re-HELLOs,
	// reads the server's acknowledged sequence and resumes, so the run
	// finishes with every event applied exactly once.
	Reconnect bool
	// Pipeline is how many requests each connection keeps in flight
	// before reading their responses (default 8; 1 = strict
	// request/response). The protocol is strictly ordered, so responses
	// are matched FIFO; a pipelined fleet amortizes one write+read
	// syscall pair over the whole window on both sides of the socket.
	// Sequenced (Reconnect) sessions always run strict, because resuming
	// a half-acknowledged window would blur what the drop injection is
	// there to test.
	Pipeline int
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 64
	}
	if o.Tenants <= 0 {
		o.Tenants = 8
	}
	if o.Threads <= 0 {
		o.Threads = 8
	}
	if o.EventsPerConn <= 0 {
		o.EventsPerConn = 1000
	}
	if o.Batch <= 0 {
		o.Batch = 50
	}
	if o.QueryEvery < 0 {
		o.QueryEvery = 0
	} else if o.QueryEvery == 0 {
		o.QueryEvery = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Backoff <= 0 {
		o.Backoff = 5 * time.Millisecond
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Reconnect && o.Retries == 0 {
		o.Retries = 3
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 8
	}
	if o.Reconnect {
		o.Pipeline = 1
	}
	return o
}

// Report summarizes one fleet run.
type Report struct {
	Conns, Tenants, Threads int
	// Events and Queries count acknowledged requests; Errors counts ERR
	// responses (overload responses land here), HangUps counts
	// connections the server closed early or that failed IO.
	Events, Queries, Errors, HangUps uint64
	Elapsed                          time.Duration
	EventsPerSec, QueriesPerSec      float64
	// QueryP50/QueryP99 summarize round-trip query latency.
	QueryP50, QueryP99 time.Duration
}

// String renders the report the way mapperd prints it.
func (r Report) String() string {
	return fmt.Sprintf(
		"conns=%d tenants=%d threads=%d events=%d queries=%d errors=%d hangups=%d\n"+
			"  sustained %.0f events/sec, %.0f queries/sec over %v\n"+
			"  query latency p50=%v p99=%v",
		r.Conns, r.Tenants, r.Threads, r.Events, r.Queries, r.Errors, r.HangUps,
		r.EventsPerSec, r.QueriesPerSec, r.Elapsed.Round(time.Millisecond),
		r.QueryP50.Round(time.Microsecond), r.QueryP99.Round(time.Microsecond))
}

// Run drives the fleet to completion: every connection HELLOs its tenant,
// ships EventsPerConn samples in batches with interleaved queries, and
// BYEs. Sample streams are deterministic per (Seed, connection): thread
// picked uniformly, page drawn from the thread's 96-page region, which
// overlaps its successor's region by 32 pages — adjacent threads share
// pages, so the detected pattern is the neighbor-heavy shape the mappers
// reward and remaps actually fire under load.
func Run(o Options) (Report, error) {
	o = o.withDefaults()
	if o.Dial == nil {
		return Report{}, fmt.Errorf("loadgen: Options.Dial is required")
	}
	var (
		events, queries, errs, hangups atomic.Uint64
		mu                             sync.Mutex
		latencies                      []time.Duration
		wg                             sync.WaitGroup
	)
	// Synthesize every connection's conversation before starting the
	// clock: the reported window measures shipping and serving, not
	// request generation.
	plans := make([]*plan, o.Conns)
	for i := range plans {
		plans[i] = prepare(o, i)
	}
	start := time.Now()
	for i := 0; i < o.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lat, ev, q, er, err := drive(o, plans[i])
			events.Add(ev)
			queries.Add(q)
			errs.Add(er)
			if err != nil {
				hangups.Add(1)
			}
			mu.Lock()
			latencies = append(latencies, lat...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := Report{
		Conns: o.Conns, Tenants: o.Tenants, Threads: o.Threads,
		Events: events.Load(), Queries: queries.Load(),
		Errors: errs.Load(), HangUps: hangups.Load(),
		Elapsed: elapsed,
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		r.EventsPerSec = float64(r.Events) / secs
		r.QueriesPerSec = float64(r.Queries) / secs
	}
	var sample stats.Sample
	for _, d := range latencies {
		sample.Add(float64(d))
	}
	r.QueryP50 = time.Duration(sample.Percentile(50))
	r.QueryP99 = time.Duration(sample.Percentile(99))
	return r, nil
}

// dialBackoff dials with up to Retries additional attempts, sleeping an
// exponentially growing, rng-jittered delay between them. The jitter comes
// from the connection's own seeded stream, so a herd of clients hitting a
// restarting daemon spreads out — and the same seed reproduces the spread.
func dialBackoff(o Options, rng *randv2.Rand) (net.Conn, error) {
	delay := o.Backoff
	for attempt := 0; ; attempt++ {
		conn, err := o.Dial()
		if err == nil {
			return conn, nil
		}
		if attempt >= o.Retries {
			return nil, fmt.Errorf("loadgen: dial (attempt %d): %w", attempt+1, err)
		}
		time.Sleep(time.Duration(float64(delay) * (0.5 + rng.Float64())))
		delay *= 2
	}
}

// plan is one connection's pre-synthesized conversation: identity, seeded
// rng, and every request line as ready-to-ship wire bytes.
type plan struct {
	tenant, source string
	hello          []byte
	rng            *randv2.Rand
	lines          [][]byte
	sizes          []int
	dropAt         int
	dropAfterWrite bool
}

// prepare builds connection i's plan. Every batch line is generated up
// front — full wire bytes including the "E" prefix, the batch number on
// sequenced sessions, and the trailing newline — before any retry/drop
// draws, so the sample stream a connection ships is a function of
// (Seed, i) alone and a resumed batch is byte-identical to its first
// transmission. Shipping a batch is then a single buffer write, no
// per-event formatting.
func prepare(o Options, i int) *plan {
	p := &plan{tenant: fmt.Sprintf("tenant-%03d", i%o.Tenants), dropAt: -1}
	if o.Reconnect {
		p.source = fmt.Sprintf("conn-%04d", i)
	}
	seed := uint64(runner.SeedN(o.Seed, i, "loadgen"))
	p.rng = randv2.New(randv2.NewPCG(seed, seed^0x9e3779b97f4a7c15))

	p.hello = fmt.Appendf(nil, "HELLO %s %d", p.tenant, o.Threads)
	if p.source != "" {
		p.hello = append(append(p.hello, ' '), p.source...)
	}
	p.hello = append(p.hello, '\n')

	nbatches := (o.EventsPerConn + o.Batch - 1) / o.Batch
	p.lines = make([][]byte, nbatches)
	p.sizes = make([]int, nbatches)
	sent := 0
	for bi := range p.lines {
		n := o.Batch
		if rest := o.EventsPerConn - sent; n > rest {
			n = rest
		}
		line := append([]byte(nil), 'E')
		if p.source != "" {
			line = append(line, ' ')
			line = strconv.AppendUint(line, uint64(bi+1), 10)
		}
		for k := 0; k < n; k++ {
			// Neighbor pattern: thread t's 96-page region starts at
			// t*64, so it shares 32 pages with thread t+1's region.
			thread := p.rng.IntN(o.Threads)
			page := uint64(thread)*64 + uint64(p.rng.IntN(96))
			line = append(line, ' ')
			line = strconv.AppendInt(line, int64(thread), 10)
			line = append(line, ':')
			line = strconv.AppendUint(line, page, 10)
		}
		p.lines[bi] = append(line, '\n')
		p.sizes[bi] = n
		sent += n
	}
	// The injected failure point: drop the connection just as batch dropAt
	// would be shipped. Half the time the batch is written first and the
	// ack abandoned (the lost-ack case — the server may have applied it),
	// so resume exercises both the HELLO seq= skip and a clean resend.
	if o.Reconnect && nbatches > 1 {
		p.dropAt = p.rng.IntN(nbatches)
		p.dropAfterWrite = p.rng.IntN(2) == 0
	}
	return p
}

// drive runs one connection's whole conversation and returns its query
// latencies and counts. A non-nil error means the conversation ended
// early (server hangup, IO failure). With Reconnect set the conversation
// is sequenced and survives — in fact deliberately injects — a dropped
// connection mid-stream.
func drive(o Options, p *plan) (lat []time.Duration, events, queries, errs uint64, err error) {
	source, rng := p.source, p.rng
	lines, sizes := p.lines, p.sizes
	nbatches := len(lines)
	dropAt, dropAfterWrite := p.dropAt, p.dropAfterWrite

	var (
		conn net.Conn
		rd   *bufio.Reader
		w    *bufio.Writer
	)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	// roundTrip ships one prebuilt request line (newline included) and
	// returns the response without its newline. The returned slice aliases
	// the read buffer: it is only valid until the next roundTrip.
	roundTrip := func(line []byte) ([]byte, error) {
		if _, err := w.Write(line); err != nil {
			return nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		resp, err := rd.ReadSlice('\n')
		if err != nil {
			return nil, err
		}
		return bytes.TrimSuffix(resp, []byte("\n")), nil
	}
	// connect (re)dials, re-HELLOs, and returns the server's acknowledged
	// batch number for this source (always 0 on unsourced sessions).
	connect := func() (uint64, error) {
		c, err := dialBackoff(o, rng)
		if err != nil {
			return 0, err
		}
		if conn != nil {
			conn.Close()
		}
		// The largest response is a query's placement list (~a dozen bytes
		// per thread); size the read buffer for it instead of paying a
		// fixed 64KB per connection.
		rsz := 4096
		if n := 256 + 12*o.Threads; n > rsz {
			rsz = n
		}
		conn, rd, w = c, bufio.NewReaderSize(c, rsz), bufio.NewWriter(c)
		resp, err := roundTrip(p.hello)
		if err != nil {
			return 0, err
		}
		if source != "" {
			acked, ok := strings.CutPrefix(string(resp), helloPrefix)
			if !ok {
				return 0, fmt.Errorf("loadgen: HELLO: %s", resp)
			}
			return strconv.ParseUint(acked, 10, 64)
		}
		if !bytes.HasPrefix(resp, okPrefix) {
			return 0, fmt.Errorf("loadgen: HELLO: %s", resp)
		}
		return 0, nil
	}

	acked, err := connect()
	if err != nil {
		return lat, events, queries, errs, err
	}
	// skipAcked credits batches the server already accepted (a lost ack
	// followed by a reconnect) and advances past them.
	bi := 0
	skipAcked := func(acked uint64) {
		for uint64(bi) < acked && bi < nbatches {
			events += uint64(sizes[bi])
			bi++
		}
	}
	skipAcked(acked)

	// Pipelined mode (unsourced sessions): write up to Pipeline request
	// lines — E batches plus their cadenced queries — flush once, then
	// read the window's responses in order (the protocol is strictly
	// ordered, so matching is FIFO). One write+read syscall pair on each
	// side of the socket covers the whole window. Query latency is
	// measured from the window flush — the moment the request actually
	// hits the socket — to its response arriving.
	if o.Pipeline > 1 {
		type pending struct {
			size  int // events credited if acked (0 for a query)
			query bool
		}
		window := make([]pending, 0, o.Pipeline+1)
		drain := func() error {
			if len(window) == 0 {
				return nil
			}
			flushedAt := time.Now()
			if err := w.Flush(); err != nil {
				return err
			}
			for _, p := range window {
				resp, err := rd.ReadSlice('\n')
				if err != nil {
					return err
				}
				resp = bytes.TrimSuffix(resp, []byte("\n"))
				switch {
				case !bytes.HasPrefix(resp, okPrefix):
					errs++
				case p.query:
					lat = append(lat, time.Since(flushedAt))
					queries++
				default:
					events += uint64(p.size)
				}
			}
			window = window[:0]
			return nil
		}
		for bi < nbatches {
			if _, werr := w.Write(lines[bi]); werr != nil {
				return lat, events, queries, errs, werr
			}
			window = append(window, pending{size: sizes[bi]})
			bi++
			if o.QueryEvery > 0 && bi%o.QueryEvery == 0 {
				if _, werr := w.Write(queryLine); werr != nil {
					return lat, events, queries, errs, werr
				}
				window = append(window, pending{query: true})
			}
			if len(window) >= o.Pipeline {
				if derr := drain(); derr != nil {
					return lat, events, queries, errs, derr
				}
			}
		}
		if derr := drain(); derr != nil {
			return lat, events, queries, errs, derr
		}
		if _, err := roundTrip(byeLine); err != nil {
			return lat, events, queries, errs, err
		}
		return lat, events, queries, errs, nil
	}

	retries := 0
	for bi < nbatches {
		line := lines[bi]
		if bi == dropAt {
			dropAt = -1
			if dropAfterWrite {
				w.Write(line)
				w.Flush()
			}
			acked, err := connect()
			if err != nil {
				return lat, events, queries, errs, err
			}
			skipAcked(acked)
			continue
		}
		resp, rerr := roundTrip(line)
		if rerr != nil {
			if !o.Reconnect {
				return lat, events, queries, errs, rerr
			}
			// The server went away underneath us: reconnect and resume
			// from whatever it acknowledged.
			acked, err := connect()
			if err != nil {
				return lat, events, queries, errs, err
			}
			skipAcked(acked)
			continue
		}
		if bytes.HasPrefix(resp, okPrefix) {
			events += uint64(sizes[bi])
			retries = 0
		} else {
			errs++
			if source != "" {
				// A rejected sequenced batch (overload) must be resent —
				// skipping it would leave a permanent sequence gap.
				retries++
				if retries > 64 {
					return lat, events, queries, errs,
						fmt.Errorf("loadgen: batch %d rejected %d times: %s", bi+1, retries, resp)
				}
				time.Sleep(time.Duration(float64(o.Backoff) * (0.5 + rng.Float64())))
				continue
			}
		}
		bi++
		if o.QueryEvery > 0 && bi%o.QueryEvery == 0 {
			qStart := time.Now()
			resp, err := roundTrip(queryLine)
			if err != nil {
				return lat, events, queries, errs, err
			}
			if bytes.HasPrefix(resp, okPrefix) {
				lat = append(lat, time.Since(qStart))
				queries++
			} else {
				errs++
			}
		}
	}
	if _, err := roundTrip(byeLine); err != nil {
		return lat, events, queries, errs, err
	}
	return lat, events, queries, errs, nil
}
