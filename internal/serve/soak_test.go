package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tlbmap/internal/runner"
	"tlbmap/internal/serve/loadgen"
	"tlbmap/internal/vm"
)

// TestConcurrentIngestMatchesReplay is the determinism differential: N
// tenants are each fed by M concurrent streams while queries and snapshots
// interleave, then every tenant's applied-order log is replayed through a
// fresh single-threaded detector. The concurrent matrix must match the
// replayed one byte for byte — the applier serializes all mutation, so
// concurrency may reorder the stream but never corrupt the accumulation.
func TestConcurrentIngestMatchesReplay(t *testing.T) {
	const (
		tenants    = 4
		streams    = 6
		batches    = 40
		batchSize  = 25
		threadsPer = 8
	)
	cfg := Config{Shards: 4, RecordApplied: true}
	s := New(cfg)
	for ti := 0; ti < tenants; ti++ {
		if err := s.CreateTenant(fmt.Sprintf("t%d", ti), threadsPer); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		id := fmt.Sprintf("t%d", ti)
		for st := 0; st < streams; st++ {
			wg.Add(1)
			go func(id string, st int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(runner.SeedN(7, st, id)))
				batch := make([]Event, 0, batchSize)
				for b := 0; b < batches; b++ {
					batch = batch[:0]
					for k := 0; k < batchSize; k++ {
						th := rng.Intn(threadsPer)
						batch = append(batch, Event{
							Thread: int32(th),
							Page:   vm.Page(uint64(th)*64 + uint64(rng.Intn(96))),
						})
					}
					if err := s.Ingest(id, batch); err != nil {
						t.Errorf("Ingest(%s): %v", id, err)
						return
					}
				}
			}(id, st)
		}
		// Interleave queries and snapshots with the ingest streams.
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := s.Query(context.Background(), id); err != nil {
					t.Errorf("Query(%s): %v", id, err)
				}
				if _, err := s.Snapshot(id); err != nil {
					t.Errorf("Snapshot(%s): %v", id, err)
				}
			}
		}(id)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	want := uint64(streams * batches * batchSize)
	rcfg := cfg.withDefaults()
	for ti := 0; ti < tenants; ti++ {
		id := fmt.Sprintf("t%d", ti)
		live, err := s.lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		snap := live.snapshot()
		if snap.Applied != want || snap.Ingested != want {
			t.Errorf("%s: applied=%d ingested=%d, want %d", id, snap.Applied, snap.Ingested, want)
		}
		log := live.appliedLog()
		if uint64(len(log)) != want {
			t.Fatalf("%s: applied log has %d events, want %d", id, len(log), want)
		}
		// Single-threaded replay of the applied order.
		replay, err := newTenant(id, threadsPer, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range log {
			replay.applyOne(e)
		}
		if !snap.Matrix.Equal(replay.matrix) {
			t.Errorf("%s: concurrent matrix differs from single-threaded replay", id)
		}
		if got, wantS := snap.Matrix.String(), replay.matrix.String(); got != wantS {
			t.Errorf("%s: matrix rendering differs from replay:\n got %s\nwant %s", id, got, wantS)
		}
		if err := live.presence.Validate(); err != nil {
			t.Errorf("%s: presence index invalid after soak: %v", id, err)
		}
	}
}

// TestLoadgenReconnectResume drives a sequenced fleet where every
// connection deliberately drops mid-conversation (half of them after
// writing a batch whose ack is then lost) and every third dial attempt
// fails, forcing the seeded backoff path. The run must still finish with
// every event applied exactly once: resume-from-acknowledged-sequence plus
// "OK dup" retransmit handling make the disconnects invisible to the
// counters.
func TestLoadgenReconnectResume(t *testing.T) {
	const (
		conns         = 64
		eventsPerConn = 400
	)
	s := New(Config{Shards: 8, QueueCap: 512})
	var wg sync.WaitGroup
	var dials atomic.Uint64
	dial := func() (net.Conn, error) {
		if dials.Add(1)%3 == 0 {
			return nil, fmt.Errorf("synthetic dial failure")
		}
		client, server := net.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.ServeConn(server)
		}()
		return client, nil
	}

	report, err := loadgen.Run(loadgen.Options{
		Dial:          dial,
		Conns:         conns,
		Tenants:       8,
		Threads:       8,
		EventsPerConn: eventsPerConn,
		Batch:         25,
		QueryEvery:    4,
		Seed:          99,
		Reconnect:     true,
		Retries:       6,
		Backoff:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reconnect fleet: %s", report)
	if report.HangUps != 0 {
		t.Errorf("%d connections failed to finish", report.HangUps)
	}
	if report.Errors != 0 {
		t.Errorf("%d ERR responses", report.Errors)
	}
	if want := uint64(conns * eventsPerConn); report.Events != want {
		t.Errorf("acknowledged %d events, want %d", report.Events, want)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := s.Stats()
	if want := uint64(conns * eventsPerConn); st.Applied != want {
		t.Errorf("server applied %d events, want exactly %d (no double-apply)", st.Applied, want)
	}
	if st.Dropped != 0 {
		t.Errorf("server dropped %d events", st.Dropped)
	}
	if st.Applied+st.Dropped != st.Ingested {
		t.Errorf("unclean books: ingested=%d applied=%d dropped=%d", st.Ingested, st.Applied, st.Dropped)
	}
}

// TestSoak1000Connections is the acceptance soak: the synthetic fleet
// drives ≥1000 concurrent connections (in-memory pipes through the same
// ServeConn path TCP uses) against one server, and the run must finish
// with zero hangups, zero ERR responses, and p99 query latency under the
// configured deadline.
func TestSoak1000Connections(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	const deadline = 5 * time.Second
	s := New(Config{Shards: 32, QueueCap: 512, QueryDeadline: deadline})
	var wg sync.WaitGroup
	dial := func() (net.Conn, error) {
		client, server := net.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.ServeConn(server)
		}()
		return client, nil
	}

	report, err := loadgen.Run(loadgen.Options{
		Dial:          dial,
		Conns:         1000,
		Tenants:       25,
		Threads:       8,
		EventsPerConn: 80,
		Batch:         20,
		QueryEvery:    2,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	t.Logf("soak: %s", report)

	if report.HangUps != 0 {
		t.Errorf("%d connections hung up", report.HangUps)
	}
	if report.Errors != 0 {
		t.Errorf("%d ERR responses", report.Errors)
	}
	if want := uint64(1000 * 80); report.Events != want {
		t.Errorf("acknowledged %d events, want %d", report.Events, want)
	}
	if report.Queries == 0 {
		t.Error("no queries completed")
	}
	if report.QueryP99 > deadline {
		t.Errorf("p99 query latency %v exceeds deadline %v", report.QueryP99, deadline)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Tenants != 25 {
		t.Errorf("server has %d tenants, want 25", st.Tenants)
	}
	if st.Applied+st.Dropped != st.Ingested {
		t.Errorf("unclean drain: ingested=%d applied=%d dropped=%d", st.Ingested, st.Applied, st.Dropped)
	}
	if st.Quarantines != 0 {
		t.Errorf("%d tenants quarantined during soak", st.Quarantines)
	}
	for _, id := range s.Tenants() {
		tn, err := s.lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tn.mu.Lock()
		err = tn.presence.Validate()
		tn.mu.Unlock()
		if err != nil {
			t.Errorf("%s: presence index invalid after soak: %v", id, err)
		}
	}
}
