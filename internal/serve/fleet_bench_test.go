package serve

import (
	"context"
	"net"
	"testing"

	"tlbmap/internal/serve/loadgen"
)

// BenchmarkSelftestFleet is the in-process twin of `mapperd -selftest`:
// the same fleet shape (256 conns, 16 tenants, pipelined loadgen) driven
// over real TCP against an in-memory server. One op is one complete fleet
// run. Its value is profiling — `-cpuprofile` on this benchmark shows
// where serving time goes without crossing a process boundary; the
// committed serving number still comes from the selftest binary.
func BenchmarkSelftestFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Config{Shards: 16, QueueCap: 256})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- s.Serve(l) }()
		target := l.Addr().String()
		b.StartTimer()
		report, err := loadgen.Run(loadgen.Options{
			Conns: 256, Tenants: 16, Threads: 8,
			EventsPerConn: 1000, Batch: 50, QueryEvery: 4, Seed: 1,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", target) },
		})
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		_ = report
		l.Close()
		<-done
		s.Drain(context.Background())
		b.StartTimer()
	}
}
