package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
	"tlbmap/internal/vm"
)

// slowMapper stalls every Map call — the pathological algorithm the
// deadline machinery must contain.
type slowMapper struct{ delay time.Duration }

func (s slowMapper) Name() string { return "slow" }

func (s slowMapper) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	time.Sleep(s.delay)
	identity := make([]int, machine.NumCores())
	for i := range identity {
		identity[i] = i
	}
	return identity, nil
}

// sharingEvents produces a batch where adjacent threads share pages, so the
// epoch matrix is non-idle and the mapper actually runs.
func sharingEvents(threads, perThread int) []Event {
	var out []Event
	for t := 0; t < threads; t++ {
		for p := 0; p < perThread; p++ {
			out = append(out, Event{Thread: int32(t), Page: vm.Page(t*perThread/2 + p)})
		}
	}
	return out
}

// TestQueryDeadlineDegrades installs a mapper slower than the query budget:
// the query must come back within roughly the budget (not the mapper's
// runtime), flagged Degraded, carrying the identity placement that was last
// in force.
func TestQueryDeadlineDegrades(t *testing.T) {
	const budget = 30 * time.Millisecond
	s := New(Config{QueryDeadline: budget, Mapper: slowMapper{delay: 400 * time.Millisecond}})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	ev := sharingEvents(4, 16)
	if err := s.Ingest("a", ev); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, "a", uint64(len(ev)))

	start := time.Now()
	res, err := s.Query(context.Background(), "a")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("query with %v mapper under %v budget was not degraded: %+v", 400*time.Millisecond, budget, res)
	}
	// The response must beat the mapper, with generous scheduler slack.
	if elapsed >= 400*time.Millisecond {
		t.Errorf("degraded query took %v, should return near the %v budget", elapsed, budget)
	}
	for i, c := range res.Placement {
		if c != i {
			t.Errorf("degraded placement[%d] = %d, want identity fallback", i, c)
		}
	}
	if res.Reason == "" {
		t.Error("degraded response carries no reason")
	}
	if got := s.Stats().Degraded; got != 1 {
		t.Errorf("Stats.Degraded = %d, want 1", got)
	}
}

// TestQueryCallerCancellation cancels the caller's context mid-mapping:
// the query returns the context error, not a degraded payload — the caller
// is gone, there is nobody to degrade for.
func TestQueryCallerCancellation(t *testing.T) {
	s := New(Config{QueryDeadline: time.Second, Mapper: slowMapper{delay: 400 * time.Millisecond}})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	ev := sharingEvents(4, 16)
	if err := s.Ingest("a", ev); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, "a", uint64(len(ev)))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Query(ctx, "a")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Query with expired caller ctx: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBackpressureBoundedQueue wedges a tenant's applier and keeps
// ingesting: once the bounded queue fills, Ingest must reject with
// ErrOverloaded within about EnqueueWait — and the queue must never grow
// past its cap, no matter how much the client pushes.
func TestBackpressureBoundedQueue(t *testing.T) {
	const (
		queueCap = 2
		wait     = 20 * time.Millisecond
	)
	s := New(Config{QueueCap: queueCap, EnqueueWait: wait})
	if err := s.CreateTenant("a", 4); err != nil {
		t.Fatal(err)
	}
	tn, err := s.lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	unblock := make(chan struct{})
	tn.mu.Lock()
	tn.applyHook = func(Event) { <-unblock }
	tn.mu.Unlock()

	// One batch wedges in the applier. Wait until it has been dequeued (the
	// hook blocks on the first event), then fill the queue to its cap so
	// every further batch must bounce.
	batch := []Event{{Thread: 0, Page: 1}, {Thread: 1, Page: 2}}
	if err := s.Ingest("a", batch); err != nil {
		t.Fatal(err)
	}
	for len(tn.queue) != 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < queueCap; i++ {
		if err := s.Ingest("a", batch); err != nil {
			t.Fatalf("Ingest %d into non-full queue: %v", i, err)
		}
	}
	sent := 1 + queueCap
	// Keep pushing: every further batch must bounce quickly.
	for i := 0; i < 3; i++ {
		start := time.Now()
		err := s.Ingest("a", batch)
		elapsed := time.Since(start)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("Ingest into full queue: err = %v, want ErrOverloaded", err)
		}
		if elapsed > 20*wait {
			t.Errorf("overload rejection took %v, want about %v", elapsed, wait)
		}
		if qlen := len(tn.queue); qlen > queueCap {
			t.Fatalf("queue grew to %d batches, cap is %d", qlen, queueCap)
		}
	}
	// The applier is wedged holding the tenant lock, so read the counter
	// atomically rather than through Snapshot (which takes the lock).
	if got := tn.rejected.Load(); got < uint64(len(batch)) {
		t.Errorf("rejected counter = %d, want at least one batch (%d events)", got, len(batch))
	}
	if s.Stats().Overloads < 1 {
		t.Error("Stats.Overloads = 0 after rejections")
	}

	// Release the applier: everything accepted must still be applied.
	close(unblock)
	waitApplied(t, s, "a", uint64(sent*len(batch)))
	snap, _ := s.Snapshot("a")
	if snap.Applied != uint64(sent*len(batch)) {
		t.Errorf("applied = %d after release, want %d", snap.Applied, sent*len(batch))
	}
}

// TestBlockedReaderHangsUp connects a client that pipelines requests but
// never reads a single response: the bounded outbox fills, the server
// hangs the connection up, and other connections keep being served.
func TestBlockedReaderHangsUp(t *testing.T) {
	s := New(Config{OutboxCap: 4, WriteTimeout: 50 * time.Millisecond})
	client, server := net.Pipe()
	defer client.Close()
	connDone := make(chan struct{})
	go func() {
		defer close(connDone)
		s.ServeConn(server)
	}()

	// Pipeline requests without ever reading. Writes error out once the
	// server hangs up — that is the success signal, not a failure.
	go func() {
		w := bufio.NewWriter(client)
		if _, err := w.WriteString("HELLO hog 4\n"); err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := fmt.Fprintf(w, "E %d:%d\n", i%4, i); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}()

	select {
	case <-connDone:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not hang up on a blocked reader")
	}

	// A well-behaved connection still gets served.
	c2, srv2 := net.Pipe()
	defer c2.Close()
	go s.ServeConn(srv2)
	rd := bufio.NewReader(c2)
	if _, err := fmt.Fprintf(c2, "HELLO polite 4\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "OK") {
		t.Fatalf("HELLO after hangup: %q", resp)
	}
}
