package serve

// prng is the fault injectors' random stream: splitmix64, chosen over
// math/rand because its entire state is one uint64 — the durability
// snapshot serializes it, so a recovered tenant replays the exact same
// loss/storm injection sequence a never-crashed tenant would have
// produced (the chaos differential asserts byte-identical matrices, and
// fault injection is part of the applied-order semantics).
type prng struct {
	state uint64
}

func newPrng(seed int64) *prng { return &prng{state: uint64(seed)} }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) from the top 53 bits.
func (p *prng) Float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// Intn returns a uniform-enough value in [0, n). The modulo bias is
// negligible for the tiny n the injectors use (thread counts, 1-3
// storm victims) and determinism, not uniformity, is the requirement.
func (p *prng) Intn(n int) int {
	return int(p.next() % uint64(n))
}
