// Durable tenants: every accepted batch is written to a per-tenant
// write-ahead log before it is acknowledged, and the full detector state
// — matrix, TLBs with their LRU clocks, online-mapper confidence, fault
// PRNG states, dedup map — is periodically serialized into a checksummed
// snapshot blob that lets the log be compacted. Recovery is snapshot +
// WAL tail replay, and because every piece of state that influences
// future behaviour is captured, a recovered tenant is byte-identical to
// one that applied the same prefix without crashing (the chaos battery
// asserts exactly this).
//
// On-disk layout under Config.Dir:
//
//	tenants/<hex(id)>/meta       blob: thread count + tenant id
//	tenants/<hex(id)>/snapshot   blob: serialized tenant state
//	tenants/<hex(id)>/wal/       segmented write-ahead log
package serve

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"

	"tlbmap/internal/comm"
	"tlbmap/internal/mapping"
	"tlbmap/internal/runner"
	"tlbmap/internal/tlb"
	"tlbmap/internal/vm"
	"tlbmap/internal/wal"
)

// tenantDir maps a tenant id to its directory: hex keeps arbitrary ids
// filesystem-safe and reversible (Open decodes the name to re-create the
// tenant without trusting anything but the directory listing).
func tenantDir(root, id string) string {
	return filepath.Join(root, "tenants", hex.EncodeToString([]byte(id)))
}

// --- meta blob ---

func encodeMeta(id string, threads int) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(threads))
	return append(buf, id...)
}

func decodeMeta(data []byte) (id string, threads int, err error) {
	if len(data) < 4 {
		return "", 0, fmt.Errorf("serve: meta blob too short (%d bytes)", len(data))
	}
	return string(data[4:]), int(binary.LittleEndian.Uint32(data[0:4])), nil
}

// --- WAL record codec ---

// appendWALRecord frames one accepted batch: the client idempotence key
// (source + client seq) plus the events. Recovery replays the events and
// rebuilds the dedup map from the key.
func appendWALRecord(buf []byte, source string, srcSeq uint64, events []Event) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(source)))
	buf = append(buf, source...)
	buf = binary.LittleEndian.AppendUint64(buf, srcSeq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(events)))
	for _, e := range events {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Thread))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Page))
	}
	return buf
}

func decodeWALRecord(data []byte, threads int) (source string, srcSeq uint64, events []Event, err error) {
	if len(data) < 2 {
		return "", 0, nil, fmt.Errorf("serve: wal record too short")
	}
	slen := int(binary.LittleEndian.Uint16(data[0:2]))
	data = data[2:]
	if len(data) < slen+8+4 {
		return "", 0, nil, fmt.Errorf("serve: wal record truncated")
	}
	source = string(data[:slen])
	data = data[slen:]
	srcSeq = binary.LittleEndian.Uint64(data[0:8])
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	data = data[12:]
	if n < 0 || len(data) != n*12 {
		return "", 0, nil, fmt.Errorf("serve: wal record: %d bytes for %d events", len(data), n)
	}
	events = make([]Event, n)
	for i := range events {
		th := int32(binary.LittleEndian.Uint32(data[0:4]))
		if th < 0 || int(th) >= threads {
			return "", 0, nil, fmt.Errorf("serve: wal record: thread %d out of range [0, %d)", th, threads)
		}
		events[i] = Event{Thread: th, Page: vm.Page(binary.LittleEndian.Uint64(data[4:12]))}
		data = data[12:]
	}
	return source, srcSeq, events, nil
}

// --- tenant state snapshot codec ---

// encodeStateLocked serializes the full detector state, appending to buf
// (callers on the checkpoint cadence pass a reused scratch buffer). Caller
// holds t.mu, so the encoding is a consistent cut: appliedSeq names the
// last batch whose effects are included, and everything that shapes future
// behaviour (matrix cells, TLB slots with their LRU timestamps and
// clocks, online-mapper confidence, PRNG states, the applied-side dedup
// map) is in the payload.
func (t *tenant) encodeStateLocked(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, t.appliedSeq)
	buf = binary.LittleEndian.AppendUint64(buf, t.applied.Load())
	buf = binary.LittleEndian.AppendUint64(buf, t.lost.Load())
	buf = binary.LittleEndian.AppendUint64(buf, t.storms.Load())
	var lossState, stormState uint64
	if t.lossRng != nil {
		lossState = t.lossRng.state
	}
	if t.stormRng != nil {
		stormState = t.stormRng.state
	}
	buf = binary.LittleEndian.AppendUint64(buf, lossState)
	buf = binary.LittleEndian.AppendUint64(buf, stormState)
	buf = t.matrix.AppendBinary(buf)
	buf = comm.AppendOptionalMatrix(buf, t.lastSnap)
	buf = t.online.State().AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.tlbs)))
	for _, tl := range t.tlbs {
		buf = tl.AppendState(buf)
	}
	srcs := make([]string, 0, len(t.appliedSources))
	for s := range t.appliedSources {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(srcs)))
	for _, s := range srcs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
		buf = binary.LittleEndian.AppendUint64(buf, t.appliedSources[s])
	}
	return buf
}

// restoreState is encodeStateLocked's inverse: it overwrites the fresh
// tenant's state with the snapshot. Only called during newTenant, before
// the applier starts, so no locking is needed.
func (t *tenant) restoreState(data []byte) error {
	if len(data) < 8*6 {
		return fmt.Errorf("snapshot too short (%d bytes)", len(data))
	}
	t.appliedSeq = binary.LittleEndian.Uint64(data[0:8])
	t.applied.Store(binary.LittleEndian.Uint64(data[8:16]))
	t.lost.Store(binary.LittleEndian.Uint64(data[16:24]))
	t.storms.Store(binary.LittleEndian.Uint64(data[24:32]))
	if t.lossRng != nil {
		t.lossRng.state = binary.LittleEndian.Uint64(data[32:40])
	}
	if t.stormRng != nil {
		t.stormRng.state = binary.LittleEndian.Uint64(data[40:48])
	}
	data = data[48:]
	var err error
	if t.matrix, data, err = comm.DecodeMatrix(data); err != nil {
		return fmt.Errorf("snapshot matrix: %w", err)
	}
	if t.matrix.N() != t.threads {
		return fmt.Errorf("snapshot matrix for %d threads, tenant has %d", t.matrix.N(), t.threads)
	}
	if t.lastSnap, data, err = comm.DecodeOptionalMatrix(data); err != nil {
		return fmt.Errorf("snapshot epoch matrix: %w", err)
	}
	var ost mapping.OnlineState
	if ost, data, err = mapping.DecodeOnlineState(data); err != nil {
		return fmt.Errorf("snapshot mapper state: %w", err)
	}
	if err := t.online.Restore(ost); err != nil {
		return fmt.Errorf("snapshot mapper state: %w", err)
	}
	t.lastPlacement.Store(t.online.Placement())
	if len(data) < 4 {
		return fmt.Errorf("snapshot truncated before TLB states")
	}
	ntlbs := int(binary.LittleEndian.Uint32(data[0:4]))
	data = data[4:]
	if ntlbs != t.threads {
		return fmt.Errorf("snapshot has %d TLBs, tenant has %d threads", ntlbs, t.threads)
	}
	// Restore the TLB slots first, then attach to a fresh presence index:
	// Attach absorbs the already-resident translations, rebuilding the
	// index without a separate serialized form.
	t.presence = tlb.NewPresenceIndex(t.threads)
	for i := 0; i < ntlbs; i++ {
		if t.tlbs[i], data, err = tlb.DecodeState(data); err != nil {
			return fmt.Errorf("snapshot TLB %d: %w", i, err)
		}
		t.presence.Attach(t.tlbs[i])
	}
	if len(data) < 4 {
		return fmt.Errorf("snapshot truncated before dedup map")
	}
	nsrc := int(binary.LittleEndian.Uint32(data[0:4]))
	data = data[4:]
	t.appliedSources = make(map[string]uint64, nsrc)
	for i := 0; i < nsrc; i++ {
		if len(data) < 2 {
			return fmt.Errorf("snapshot dedup map truncated")
		}
		slen := int(binary.LittleEndian.Uint16(data[0:2]))
		data = data[2:]
		if len(data) < slen+8 {
			return fmt.Errorf("snapshot dedup map truncated")
		}
		t.appliedSources[string(data[:slen])] = binary.LittleEndian.Uint64(data[slen : slen+8])
		data = data[slen+8:]
	}
	if len(data) != 0 {
		return fmt.Errorf("snapshot has %d trailing bytes", len(data))
	}
	return nil
}

// --- open / recover ---

// openDurable binds the tenant to its on-disk state: create or validate
// the directory, load the snapshot if one exists, open the WAL (repairing
// any torn tail), replay the records past the snapshot, and seed the
// ingest-side dedup map from the recovered applied-side one. After it
// returns, the tenant's in-memory state equals a never-crashed tenant
// that applied exactly the surviving prefix.
func (t *tenant) openDurable(cfg Config) error {
	t.dir = tenantDir(cfg.Dir, t.id)
	if err := os.MkdirAll(t.dir, 0o755); err != nil {
		return err
	}
	metaPath := filepath.Join(t.dir, "meta")
	if raw, err := wal.ReadBlob(metaPath); err == nil {
		id, threads, derr := decodeMeta(raw)
		if derr != nil {
			return derr
		}
		if id != t.id || threads != t.threads {
			return fmt.Errorf("%w: %q has %d threads on disk, requested %d",
				ErrTenantExists, t.id, threads, t.threads)
		}
	} else if errors.Is(err, wal.ErrNoBlob) {
		if werr := wal.WriteBlobAtomic(metaPath, encodeMeta(t.id, t.threads)); werr != nil {
			return werr
		}
	} else {
		return err
	}

	if raw, err := wal.ReadBlob(filepath.Join(t.dir, "snapshot")); err == nil {
		if rerr := t.restoreState(raw); rerr != nil {
			return fmt.Errorf("restore snapshot: %w", rerr)
		}
	} else if !errors.Is(err, wal.ErrNoBlob) {
		// The snapshot write is atomic (temp + rename), so a damaged
		// snapshot is not a crash artifact — and the log it licensed
		// compacting is gone. Fail stop instead of silently serving a
		// truncated past.
		return err
	}

	l, err := wal.Open(filepath.Join(t.dir, "wal"), wal.Options{
		SegmentBytes: cfg.WALSegmentBytes,
		Policy:       cfg.Sync,
	})
	if err != nil {
		return err
	}
	t.wlog = l
	if err := t.replayWAL(); err != nil {
		l.Close()
		return err
	}
	// A tail truncated below the snapshot must not recycle sequence
	// numbers the snapshot already covers.
	l.Reserve(t.appliedSeq + 1)
	if cfg.Sync == wal.SyncAlways {
		// Group commit (see commit.go): appends are buffered and acks wait
		// for a covering fsync. Everything that survived recovery is on
		// disk by definition, so the ack horizon starts at the log tail.
		t.groupCommit = true
	}
	t.lastAppend = l.LastSeq()
	t.ackedDurable = t.lastAppend
	t.sources = make(map[string]uint64, len(t.appliedSources))
	for s, seq := range t.appliedSources {
		t.sources[s] = seq
	}
	// Recovery folds every surviving event straight into detector state:
	// it was both ingested and applied, and nothing recovered was dropped
	// or rejected, so applied + dropped == ingested holds by construction.
	t.ingested.Store(t.applied.Load())
	t.dropped.Store(0)
	t.rejected.Store(0)
	t.sinceSnap.Store(0)
	return nil
}

// replayWAL applies every record past the snapshot through the normal
// apply path (same locking, same fault injection — the PRNG states were
// restored, so injections replay identically). A record that decodes but
// detonates the detector quarantines the tenant exactly as it would have
// live; replay stops there.
func (t *tenant) replayWAL() error {
	snapSeq := t.appliedSeq
	return t.wlog.Replay(func(seq uint64, payload []byte) error {
		if seq <= snapSeq {
			return nil
		}
		source, srcSeq, events, err := decodeWALRecord(payload, t.threads)
		if err != nil {
			return fmt.Errorf("wal seq %d: %w", seq, err)
		}
		t.applyBatch(batch{events: events, seq: seq, source: source, srcSeq: srcSeq})
		return nil
	})
}

// --- checkpoint / finalize ---

// maybeCheckpoint is the applier-driven snapshot cadence: once enough
// events have been applied since the last snapshot, write one and compact
// the log. Failures are not fatal — the WAL still has everything, and the
// unchanged counter makes the next batch retry.
func (t *tenant) maybeCheckpoint() {
	if t.wlog == nil || t.snapEvery == 0 || t.sinceSnap.Load() < t.snapEvery {
		return
	}
	t.checkpoint()
}

// checkpoint serializes the tenant state (a consistent cut under mu),
// writes it atomically, and compacts WAL segments wholly covered by it.
// snapMu serializes concurrent checkpoints (applier cadence vs an
// explicit Server.Checkpoint) so an older encoding can never overwrite a
// newer snapshot.
func (t *tenant) checkpoint() error {
	if t.wlog == nil {
		return nil
	}
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	t.mu.Lock()
	seq := t.appliedSeq
	t.snapBuf = t.encodeStateLocked(t.snapBuf[:0])
	buf := t.snapBuf
	t.mu.Unlock()
	if err := wal.WriteBlobAtomic(filepath.Join(t.dir, "snapshot"), buf); err != nil {
		return fmt.Errorf("serve: tenant %q: snapshot: %w", t.id, err)
	}
	t.sinceSnap.Store(0)
	if _, err := t.wlog.Compact(seq); err != nil {
		return fmt.Errorf("serve: tenant %q: compact: %w", t.id, err)
	}
	return nil
}

// finalize is the graceful-shutdown epilogue (Drain, after the applier
// has exited): one last snapshot covering everything applied, a sync so
// the WAL tail is durable regardless of policy, then close. The next
// Open resumes from here with an empty replay.
func (t *tenant) finalize() error {
	if t.wlog == nil {
		return nil
	}
	err := t.checkpoint()
	if serr := t.wlog.Sync(); err == nil {
		err = serr
	}
	if cerr := t.wlog.Close(); err == nil {
		err = cerr
	}
	return err
}

// quarantineErr poisons the tenant with a non-panic fatal error (WAL
// append failure: the ack contract would be broken by continuing).
func (t *tenant) quarantineErr(err error) {
	t.quarantine.Store(&runner.PanicError{Value: err, Stack: debug.Stack()})
}
