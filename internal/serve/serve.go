// Package serve is the mapping-as-a-service layer: a long-running daemon
// core that ingests TLB-sample streams from many concurrent clients,
// maintains sharded per-tenant detector state (per-thread TLBs behind a
// tlb.PresenceIndex feeding a comm.Matrix), and answers placement queries
// through the confidence-gated online mapper within a per-request
// deadline.
//
// It promotes the simulator's core packages behind a small stable serving
// API — Server.Ingest, Server.Query, Server.Snapshot — instead of the
// CLI-only entry points, and reuses the hardened runner semantics as the
// service execution layer: queries run inside runner.Attempt (deadline +
// panic isolation), ingestion flows through bounded per-tenant queues
// (backpressure), and a panicking tenant is quarantined with its stack
// without poisoning sibling shards. Drain stops ingestion, applies what is
// queued, and leaves query/snapshot state readable.
//
// Concurrency model: tenants are spread over striped-lock shards; each
// tenant owns one applier goroutine that drains its bounded queue, so all
// detector-state mutation is serialized per tenant and the resulting
// matrix is byte-identical to a single-threaded replay of the applied
// event order (the soak tests assert exactly this).
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"tlbmap/internal/fault"
	"tlbmap/internal/mapping"
	"tlbmap/internal/tlb"
	"tlbmap/internal/vm"
)

// Service errors. The wire protocol maps each to a one-line ERR response;
// API callers match them with errors.Is.
var (
	// ErrTenantNotFound is returned for a tenant that was never created
	// or has been evicted (eviction mid-stream is this error, not a
	// panic).
	ErrTenantNotFound = errors.New("serve: tenant not found")
	// ErrTenantExists is returned by CreateTenant when the tenant already
	// exists with a different thread count.
	ErrTenantExists = errors.New("serve: tenant exists with different thread count")
	// ErrTenantQuarantined is returned for a tenant whose applier or
	// query path panicked; the panic stack is retained in the tenant's
	// stats and the tenant no longer serves until evicted.
	ErrTenantQuarantined = errors.New("serve: tenant quarantined after panic")
	// ErrOverloaded is returned when a tenant's bounded ingest queue
	// stays full past the enqueue wait — the backpressure signal.
	ErrOverloaded = errors.New("serve: tenant ingest queue full")
	// ErrDraining is returned once Drain has begun: ingestion and tenant
	// creation stop; queries and snapshots keep working.
	ErrDraining = errors.New("serve: server draining")
	// ErrBadEvent is returned for an event naming a thread outside the
	// tenant's range.
	ErrBadEvent = errors.New("serve: event thread out of range")
)

// Event is one TLB-sample: the tenant's thread touched (and, if it was not
// already resident in that thread's TLB, faulted on) a virtual page. It is
// the unit the daemon ingests — the trap stream of the paper's SM
// mechanism (Figure 1a), sampled and shipped to the detector machine.
type Event struct {
	Thread int32
	Page   vm.Page
}

// Config tunes a Server. The zero value selects every default.
type Config struct {
	// Shards is the number of striped tenant-map locks (default 16).
	Shards int
	// QueueCap is the per-tenant bounded ingest queue capacity, in
	// batches (default 256). A slow applier fills it and ingestion
	// degrades to ErrOverloaded instead of growing memory.
	QueueCap int
	// EnqueueWait bounds how long Ingest blocks on a full queue before
	// returning ErrOverloaded (default 10ms).
	EnqueueWait time.Duration
	// QueryDeadline is the per-request mapping budget: a query that
	// exceeds it returns the last placement in force, flagged Degraded
	// (default 100ms).
	QueryDeadline time.Duration
	// MaxThreads caps a tenant's thread count (default 1024). Thread
	// counts must be powers of two, matching the mappers' contract.
	MaxThreads int
	// TLB is the per-thread TLB geometry (default tlb.DefaultConfig, the
	// paper's 64-entry 4-way unit).
	TLB tlb.Config
	// MinConfidence overrides the online mapper's confidence gate
	// (default mapping.DefaultMinConfidence; negative disables).
	MinConfidence float64
	// Faults arms the detector-relevant fault scenarios on the ingest
	// path: SampleLoss drops events before they charge the matrix (the
	// refill still happens) and ShootdownStorm flushes random threads'
	// TLBs. Engine-side scenarios do not apply to the serving path and
	// are ignored. The zero plan injects nothing.
	Faults fault.Plan
	// RecordApplied keeps a per-tenant log of events in applied order,
	// the replay input of the differential soak tests. Serving
	// deployments leave it off.
	RecordApplied bool
	// Mapper, when non-nil, replaces the size-dispatching Auto algorithm
	// inside every tenant's online mapper (tests install slow or exact
	// mappers here).
	Mapper mapping.Algorithm
	// OutboxCap is the per-connection bounded response queue capacity
	// (default 64): a client that stops reading its responses is hung up
	// on once the outbox fills, so one blocked reader cannot grow server
	// memory.
	OutboxCap int
	// WriteTimeout bounds one response write on a connection
	// (default 5s).
	WriteTimeout time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.EnqueueWait <= 0 {
		c.EnqueueWait = 10 * time.Millisecond
	}
	if c.QueryDeadline <= 0 {
		c.QueryDeadline = 100 * time.Millisecond
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1024
	}
	if c.TLB == (tlb.Config{}) {
		c.TLB = tlb.DefaultConfig
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = mapping.DefaultMinConfidence
	}
	if c.OutboxCap <= 0 {
		c.OutboxCap = 64
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	return c
}

// shard is one stripe of the tenant map.
type shard struct {
	mu      sync.RWMutex
	tenants map[string]*tenant
}

// Stats is a point-in-time server-wide summary.
type Stats struct {
	Tenants     int
	Ingested    uint64 // events accepted into a queue
	Applied     uint64 // events folded into detector state
	Dropped     uint64 // accepted events discarded (evict/quarantine)
	Rejected    uint64 // events refused at Ingest (overload backpressure)
	LostSamples uint64 // events dropped by the SampleLoss injector
	Storms      uint64 // ShootdownStorm flushes performed
	Queries     uint64
	Degraded    uint64 // queries answered past the deadline with the last placement
	Overloads   uint64 // Ingest calls rejected with ErrOverloaded
	Quarantines uint64 // live tenants currently quarantined after a panic
}

// Server is the mapping service: sharded tenant state plus the counters
// the daemon reports. Create one with New, feed it through Ingest/Query/
// Snapshot (or the wire protocol via Serve/ServeConn), stop it with Drain.
type Server struct {
	cfg      Config
	shards   []*shard
	draining atomic.Bool
	wg       sync.WaitGroup // live tenant appliers

	queries   atomic.Uint64
	degraded  atomic.Uint64
	overloads atomic.Uint64
}

// New builds a Server from the config (zero value = all defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard{tenants: make(map[string]*tenant)}
	}
	return s
}

// shardFor stripes a tenant ID over the shard array by FNV-32a.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// lookup returns the live tenant or ErrTenantNotFound.
func (s *Server) lookup(id string) (*tenant, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	t := sh.tenants[id]
	sh.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	return t, nil
}

// CreateTenant registers a tenant with the given thread count (a power of
// two up to Config.MaxThreads) and starts its applier. Creating an
// existing tenant with the same thread count is a no-op, so reconnecting
// clients can HELLO idempotently.
func (s *Server) CreateTenant(id string, threads int) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if id == "" {
		return errors.New("serve: empty tenant id")
	}
	if threads <= 0 || threads > s.cfg.MaxThreads || threads&(threads-1) != 0 {
		return fmt.Errorf("serve: tenant %q: thread count %d must be a power of two in [1, %d]",
			id, threads, s.cfg.MaxThreads)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if existing := sh.tenants[id]; existing != nil {
		if existing.threads == threads {
			return nil
		}
		return fmt.Errorf("%w: %q has %d threads, requested %d",
			ErrTenantExists, id, existing.threads, threads)
	}
	t := newTenant(id, threads, s.cfg)
	sh.tenants[id] = t
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t.run()
	}()
	return nil
}

// EvictTenant removes a tenant and releases its resources: the applier
// exits (discarding whatever is still queued) before EvictTenant returns,
// so shard map size and goroutine count go back to baseline. In-flight
// Ingest calls on the evicted tenant fail with ErrTenantNotFound.
func (s *Server) EvictTenant(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	t := sh.tenants[id]
	delete(sh.tenants, id)
	sh.mu.Unlock()
	if t == nil {
		return fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	t.shutdown()
	<-t.done
	return nil
}

// Ingest enqueues a batch of events for a tenant. The batch is copied, so
// the caller may reuse the slice. Backpressure is bounded and explicit:
// when the tenant's queue stays full past Config.EnqueueWait the batch is
// rejected with ErrOverloaded and counted as dropped — a slow tenant can
// never grow its queue past its cap.
func (s *Server) Ingest(tenantID string, events []Event) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if len(events) == 0 {
		return nil
	}
	t, err := s.lookup(tenantID)
	if err != nil {
		return err
	}
	if pe := t.quarantine.Load(); pe != nil {
		return fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, pe.Value)
	}
	for _, e := range events {
		if e.Thread < 0 || int(e.Thread) >= t.threads {
			return fmt.Errorf("%w: thread %d of tenant %q (threads 0..%d)",
				ErrBadEvent, e.Thread, tenantID, t.threads-1)
		}
	}
	batch := append([]Event(nil), events...)
	select {
	case t.queue <- batch:
		t.ingested.Add(uint64(len(batch)))
		return nil
	default:
	}
	timer := time.NewTimer(s.cfg.EnqueueWait)
	defer timer.Stop()
	select {
	case t.queue <- batch:
		t.ingested.Add(uint64(len(batch)))
		return nil
	case <-t.done:
		return fmt.Errorf("%w: %q evicted mid-stream", ErrTenantNotFound, tenantID)
	case <-timer.C:
		t.rejected.Add(uint64(len(batch)))
		s.overloads.Add(1)
		return fmt.Errorf("%w: tenant %q (cap %d batches)", ErrOverloaded, tenantID, s.cfg.QueueCap)
	}
}

// Snapshot returns a deep copy of a tenant's communication matrix plus its
// stats. The copy is taken under the tenant lock, so it is a consistent
// point-in-time view even while ingestion continues.
func (s *Server) Snapshot(tenantID string) (*TenantSnapshot, error) {
	t, err := s.lookup(tenantID)
	if err != nil {
		return nil, err
	}
	return t.snapshot(), nil
}

// Tenants returns the live tenant IDs in shard order (unsorted).
func (s *Server) Tenants() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.tenants {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats aggregates the server-wide counters over every live tenant.
func (s *Server) Stats() Stats {
	st := Stats{
		Queries:   s.queries.Load(),
		Degraded:  s.degraded.Load(),
		Overloads: s.overloads.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tenants {
			st.Tenants++
			if t.quarantine.Load() != nil {
				st.Quarantines++
			}
			st.Ingested += t.ingested.Load()
			st.Applied += t.applied.Load()
			st.Dropped += t.dropped.Load()
			st.Rejected += t.rejected.Load()
			st.LostSamples += t.lost.Load()
			st.Storms += t.storms.Load()
		}
		sh.mu.RUnlock()
	}
	return st
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain is the graceful-shutdown path (SIGTERM): it stops ingestion and
// tenant creation, lets every applier finish what is already queued, and
// waits for them to exit. Tenant state stays resident — queries and
// snapshots still work after a drain, which is what lets the daemon answer
// "what did you learn" before the process exits. Returns ctx.Err() if the
// context expires first (appliers keep draining in the background).
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tenants {
			t.drain.Store(true)
			t.shutdown()
		}
		sh.mu.RUnlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
