// Package serve is the mapping-as-a-service layer: a long-running daemon
// core that ingests TLB-sample streams from many concurrent clients,
// maintains sharded per-tenant detector state (per-thread TLBs behind a
// tlb.PresenceIndex feeding a comm.Matrix), and answers placement queries
// through the confidence-gated online mapper within a per-request
// deadline.
//
// It promotes the simulator's core packages behind a small stable serving
// API — Server.Ingest, Server.Query, Server.Snapshot — instead of the
// CLI-only entry points, and reuses the hardened runner semantics as the
// service execution layer: queries run inside runner.Attempt (deadline +
// panic isolation), ingestion flows through bounded per-tenant queues
// (backpressure), and a panicking tenant is quarantined with its stack
// without poisoning sibling shards. Drain stops ingestion, applies what is
// queued, and leaves query/snapshot state readable.
//
// Concurrency model: tenants are spread over striped-lock shards; each
// tenant owns one applier goroutine that drains its bounded queue, so all
// detector-state mutation is serialized per tenant and the resulting
// matrix is byte-identical to a single-threaded replay of the applied
// event order (the soak tests assert exactly this).
package serve

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tlbmap/internal/fault"
	"tlbmap/internal/mapping"
	"tlbmap/internal/runner"
	"tlbmap/internal/tlb"
	"tlbmap/internal/vm"
	"tlbmap/internal/wal"
)

// Service errors. The wire protocol maps each to a one-line ERR response;
// API callers match them with errors.Is.
var (
	// ErrTenantNotFound is returned for a tenant that was never created
	// or has been evicted (eviction mid-stream is this error, not a
	// panic).
	ErrTenantNotFound = errors.New("serve: tenant not found")
	// ErrTenantExists is returned by CreateTenant when the tenant already
	// exists with a different thread count.
	ErrTenantExists = errors.New("serve: tenant exists with different thread count")
	// ErrTenantQuarantined is returned for a tenant whose applier or
	// query path panicked; the panic stack is retained in the tenant's
	// stats and the tenant no longer serves until evicted.
	ErrTenantQuarantined = errors.New("serve: tenant quarantined after panic")
	// ErrOverloaded is returned when a tenant's bounded ingest queue
	// stays full past the enqueue wait — the backpressure signal.
	ErrOverloaded = errors.New("serve: tenant ingest queue full")
	// ErrDraining is returned once Drain has begun: ingestion and tenant
	// creation stop; queries and snapshots keep working.
	ErrDraining = errors.New("serve: server draining")
	// ErrBadEvent is returned for an event naming a thread outside the
	// tenant's range.
	ErrBadEvent = errors.New("serve: event thread out of range")
	// ErrDuplicateBatch is returned by IngestFrom for a client sequence
	// number at or below the source's last accepted one — the idempotent
	// outcome of a reconnecting client resending an already-acknowledged
	// (or already-applied-but-unacknowledged) batch. The batch was NOT
	// applied again; callers treat this as success.
	ErrDuplicateBatch = errors.New("serve: duplicate batch")
	// ErrSequenceGap is returned by IngestFrom when a source skips ahead:
	// accepting the batch would silently lose the gap, so the client must
	// resync (re-HELLO and resume from the acknowledged sequence).
	ErrSequenceGap = errors.New("serve: batch sequence gap")
)

// Event is one TLB-sample: the tenant's thread touched (and, if it was not
// already resident in that thread's TLB, faulted on) a virtual page. It is
// the unit the daemon ingests — the trap stream of the paper's SM
// mechanism (Figure 1a), sampled and shipped to the detector machine.
type Event struct {
	Thread int32
	Page   vm.Page
}

// Config tunes a Server. The zero value selects every default.
type Config struct {
	// Shards is the number of striped tenant-map locks (default 16).
	Shards int
	// QueueCap is the per-tenant bounded ingest queue capacity, in
	// batches (default 256). A slow applier fills it and ingestion
	// degrades to ErrOverloaded instead of growing memory.
	QueueCap int
	// EnqueueWait bounds how long Ingest blocks on a full queue before
	// returning ErrOverloaded (default 10ms).
	EnqueueWait time.Duration
	// QueryDeadline is the per-request mapping budget: a query that
	// exceeds it returns the last placement in force, flagged Degraded
	// (default 100ms).
	QueryDeadline time.Duration
	// MaxThreads caps a tenant's thread count (default 1024). Thread
	// counts must be powers of two, matching the mappers' contract.
	MaxThreads int
	// TLB is the per-thread TLB geometry (default tlb.DefaultConfig, the
	// paper's 64-entry 4-way unit).
	TLB tlb.Config
	// MinConfidence overrides the online mapper's confidence gate
	// (default mapping.DefaultMinConfidence; negative disables).
	MinConfidence float64
	// Faults arms the detector-relevant fault scenarios on the ingest
	// path: SampleLoss drops events before they charge the matrix (the
	// refill still happens) and ShootdownStorm flushes random threads'
	// TLBs. Engine-side scenarios do not apply to the serving path and
	// are ignored. The zero plan injects nothing.
	Faults fault.Plan
	// RecordApplied keeps a per-tenant log of events in applied order,
	// the replay input of the differential soak tests. Serving
	// deployments leave it off.
	RecordApplied bool
	// Mapper, when non-nil, replaces the size-dispatching Auto algorithm
	// inside every tenant's online mapper (tests install slow or exact
	// mappers here).
	Mapper mapping.Algorithm
	// OutboxCap is retained for configuration compatibility but no longer
	// used: responses are written inline by the reader goroutine into a
	// pooled write buffer, and a client that stops reading trips
	// WriteTimeout on the first full flush instead of filling an outbox.
	OutboxCap int
	// WriteTimeout bounds one response write on a connection
	// (default 5s).
	WriteTimeout time.Duration

	// Dir, when non-empty, makes every tenant durable: accepted batches
	// are written to a per-tenant write-ahead log before they are
	// acknowledged, periodic snapshots allow log compaction, and Open
	// recovers all tenant state from this directory on startup. Empty
	// (the default) keeps the server purely in-memory.
	Dir string
	// Sync is the WAL sync policy (default wal.SyncAlways: an
	// acknowledged batch is durable). Only meaningful with Dir set.
	Sync wal.SyncPolicy
	// WALSegmentBytes is the per-tenant WAL segment rotation threshold
	// (default 1 MiB; see wal.Options.SegmentBytes).
	WALSegmentBytes int
	// SnapshotEvery is the snapshot cadence in applied events per tenant
	// (default 4096): after that many events a snapshot is written and
	// the WAL compacted. Only meaningful with Dir set.
	SnapshotEvery int
	// RecoveryWorkers bounds the parallel tenant-recovery pool Open runs
	// at startup (default: one worker per CPU). Recovery output is
	// identical at any worker count; the knob exists for tests and for
	// capping recovery I/O on shared disks.
	RecoveryWorkers int
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.EnqueueWait <= 0 {
		c.EnqueueWait = 10 * time.Millisecond
	}
	if c.QueryDeadline <= 0 {
		c.QueryDeadline = 100 * time.Millisecond
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1024
	}
	if c.TLB == (tlb.Config{}) {
		c.TLB = tlb.DefaultConfig
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = mapping.DefaultMinConfidence
	}
	if c.OutboxCap <= 0 {
		c.OutboxCap = 64
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	return c
}

// shard is one stripe of the tenant map.
type shard struct {
	mu      sync.RWMutex
	tenants map[string]*tenant
}

// Stats is a point-in-time server-wide summary.
type Stats struct {
	Tenants     int
	Ingested    uint64 // events accepted into a queue
	Applied     uint64 // events folded into detector state
	Dropped     uint64 // accepted events discarded (evict/quarantine)
	Rejected    uint64 // events refused at Ingest (overload backpressure)
	LostSamples uint64 // events dropped by the SampleLoss injector
	Storms      uint64 // ShootdownStorm flushes performed
	Queries     uint64
	Degraded    uint64 // queries answered past the deadline with the last placement
	Overloads   uint64 // Ingest calls rejected with ErrOverloaded
	Quarantines uint64 // live tenants currently quarantined after a panic
}

// Server is the mapping service: sharded tenant state plus the counters
// the daemon reports. Create one with New, feed it through Ingest/Query/
// Snapshot (or the wire protocol via Serve/ServeConn), stop it with Drain.
type Server struct {
	cfg      Config
	shards   []*shard
	draining atomic.Bool
	wg       sync.WaitGroup // live tenant appliers

	// gc is the shared group-commit scheduler (nil unless the server is
	// durable under wal.SyncAlways — see commit.go).
	gc *committer

	queries   atomic.Uint64
	degraded  atomic.Uint64
	overloads atomic.Uint64
}

// New builds a Server from the config (zero value = all defaults). With
// Config.Dir set, tenants created on this server are durable, but
// pre-existing on-disk tenants are NOT loaded — use Open for that.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard{tenants: make(map[string]*tenant)}
	}
	if cfg.Dir != "" && cfg.Sync == wal.SyncAlways {
		s.gc = newCommitter()
	}
	return s
}

// Open builds a Server and, when Config.Dir is set, recovers every tenant
// found there: snapshot plus WAL tail, with torn or corrupted tails
// truncated at the first bad record rather than failing startup. This is
// the daemon's entry point; New is the in-memory one.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if s.cfg.Dir == "" {
		return s, nil
	}
	entries, err := os.ReadDir(filepath.Join(s.cfg.Dir, "tenants"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return s, nil
		}
		return nil, fmt.Errorf("serve: open %s: %w", s.cfg.Dir, err)
	}
	type tenantDir struct{ name, id string }
	var dirs []tenantDir
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(ent.Name())
		if err != nil {
			continue // not a tenant directory
		}
		dirs = append(dirs, tenantDir{name: ent.Name(), id: string(raw)})
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].name < dirs[j].name })
	// Tenants recover independently (disjoint directories, disjoint shard
	// entries), so replay them on a bounded worker pool: O(tenants)
	// startup becomes O(tenants/cores). Results are identical at any
	// worker count — within a tenant, replay order is WAL order regardless
	// — and runner.Run reports the lowest-indexed error, matching what a
	// serial loop over the sorted listing would have hit first.
	err = runner.Run(runner.Pool{Workers: s.cfg.RecoveryWorkers}, len(dirs), func(i int) error {
		name, id := dirs[i].name, dirs[i].id
		meta, err := wal.ReadBlob(filepath.Join(s.cfg.Dir, "tenants", name, "meta"))
		if err != nil {
			return fmt.Errorf("serve: recover tenant %q: %w", id, err)
		}
		metaID, threads, err := decodeMeta(meta)
		if err != nil || metaID != id {
			return fmt.Errorf("serve: recover tenant %q: bad meta (id %q, err %v)", id, metaID, err)
		}
		if err := s.CreateTenant(id, threads); err != nil {
			return fmt.Errorf("serve: recover tenant %q: %w", id, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// shardFor stripes a tenant ID over the shard array by FNV-32a. The hash
// is inlined (same constants as hash/fnv.New32a) so the per-request
// lookup neither heap-allocates a hasher nor copies the id to []byte.
func (s *Server) shardFor(id string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// lookup returns the live tenant or ErrTenantNotFound.
func (s *Server) lookup(id string) (*tenant, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	t := sh.tenants[id]
	sh.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	return t, nil
}

// CreateTenant registers a tenant with the given thread count (a power of
// two up to Config.MaxThreads) and starts its applier. Creating an
// existing tenant with the same thread count is a no-op, so reconnecting
// clients can HELLO idempotently.
func (s *Server) CreateTenant(id string, threads int) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if id == "" {
		return errors.New("serve: empty tenant id")
	}
	if threads <= 0 || threads > s.cfg.MaxThreads || threads&(threads-1) != 0 {
		return fmt.Errorf("serve: tenant %q: thread count %d must be a power of two in [1, %d]",
			id, threads, s.cfg.MaxThreads)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if existing := sh.tenants[id]; existing != nil {
		if existing.threads == threads {
			return nil
		}
		return fmt.Errorf("%w: %q has %d threads, requested %d",
			ErrTenantExists, id, existing.threads, threads)
	}
	t, err := newTenant(id, threads, s.cfg)
	if err != nil {
		return err
	}
	sh.tenants[id] = t
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t.run()
	}()
	return nil
}

// EvictTenant removes a tenant and releases its resources: the applier
// exits (discarding whatever is still queued) before EvictTenant returns,
// so shard map size and goroutine count go back to baseline. In-flight
// Ingest calls on the evicted tenant fail with ErrTenantNotFound. On a
// durable server eviction is total: the tenant's directory — WAL,
// snapshot, meta — is deleted, so a later Open will not resurrect it.
func (s *Server) EvictTenant(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	t := sh.tenants[id]
	delete(sh.tenants, id)
	sh.mu.Unlock()
	if t == nil {
		return fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	t.shutdown()
	<-t.done
	if t.wlog != nil {
		t.wlog.Close()
		if err := os.RemoveAll(t.dir); err != nil {
			return fmt.Errorf("serve: evict %q: %w", id, err)
		}
	}
	return nil
}

// Ingest enqueues a batch of events for a tenant. The batch is copied, so
// the caller may reuse the slice. Backpressure is bounded and explicit:
// when the tenant's queue stays full past Config.EnqueueWait the batch is
// rejected with ErrOverloaded and counted as dropped — a slow tenant can
// never grow its queue past its cap.
func (s *Server) Ingest(tenantID string, events []Event) error {
	return s.IngestFrom(tenantID, "", 0, events)
}

// IngestFrom is Ingest with an idempotence key: source names the client
// stream and seq is its batch sequence number, starting at 1 and
// incremented per accepted batch. A seq at or below the source's last
// accepted one returns ErrDuplicateBatch WITHOUT re-applying — the safe
// outcome when a client retries a batch whose ack was lost — and a seq
// that skips ahead returns ErrSequenceGap. On a durable server the batch
// is appended to the tenant's WAL before the call returns, so (under
// wal.SyncAlways) an acknowledged batch survives a crash.
func (s *Server) IngestFrom(tenantID, source string, seq uint64, events []Event) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if len(events) == 0 {
		return nil
	}
	t, err := s.lookup(tenantID)
	if err != nil {
		return err
	}
	if pe := t.quarantine.Load(); pe != nil {
		return fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, pe.Value)
	}
	for _, e := range events {
		if e.Thread < 0 || int(e.Thread) >= t.threads {
			return fmt.Errorf("%w: thread %d of tenant %q (threads 0..%d)",
				ErrBadEvent, e.Thread, tenantID, t.threads-1)
		}
	}
	b := batch{events: copyEvents(events), source: source, srcSeq: seq}
	if t.wlog == nil && source == "" {
		// In-memory anonymous path: no ordering obligations beyond the
		// queue itself, so skip the ingest lock entirely.
		if err := s.enqueue(t, b); err != nil {
			recycleEvents(b.events)
			return err
		}
		return nil
	}

	// Durable/sourced path. ingestMu makes dedup-check → enqueue → WAL
	// append one atomic step, so WAL order == enqueue order == applied
	// order and the recovery replay reconstructs exactly what the applier
	// saw. The WAL append happens after the enqueue: a batch rejected for
	// overload must leave no trace in the log (recovery must not replay
	// what the client was told to resend), and the window where a batch
	// is applied before its record lands is closed by the snapshot codec
	// serializing the applied-side dedup map. The record bytes are
	// encoded BEFORE the enqueue, though: once queued, the applier may
	// finish with (and recycle) the event slab at any moment.
	t.ingestMu.Lock()
	if source != "" {
		last := t.sources[source]
		if seq <= last {
			waitSeq := t.lastAppend
			t.ingestMu.Unlock()
			recycleEvents(b.events)
			// An idempotent retransmit ack is still an ack: under group
			// commit it must not outrun the fsync covering the batch it
			// acknowledges.
			if t.groupCommit {
				if derr := t.waitDurable(waitSeq); derr != nil {
					t.quarantineErr(derr)
					return fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, derr)
				}
			}
			return fmt.Errorf("%w: %q seq %d already accepted (at %d)", ErrDuplicateBatch, source, seq, last)
		}
		if seq != last+1 {
			t.ingestMu.Unlock()
			recycleEvents(b.events)
			return fmt.Errorf("%w: %q seq %d after %d", ErrSequenceGap, source, seq, last)
		}
	}
	if t.wlog != nil {
		b.seq = t.wlog.NextSeq()
		t.walBuf = appendWALRecord(t.walBuf[:0], source, seq, b.events)
	}
	if err := s.enqueue(t, b); err != nil {
		t.ingestMu.Unlock()
		return err
	}
	if t.wlog != nil {
		var got uint64
		var werr error
		if t.groupCommit {
			got, werr = t.wlog.AppendBuffered(t.walBuf)
		} else {
			got, werr = t.wlog.Append(t.walBuf)
		}
		if werr != nil || got != b.seq {
			if werr == nil {
				werr = fmt.Errorf("serve: wal seq skew: appended %d, reserved %d", got, b.seq)
			}
			// The batch is already queued but cannot be made durable:
			// continuing would acknowledge writes a restart forgets.
			// Fail stop for this tenant.
			t.quarantineErr(werr)
			t.ingestMu.Unlock()
			return fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, werr)
		}
		t.lastAppend = got
	}
	if source != "" {
		t.sources[source] = seq
	}
	t.ingestMu.Unlock()
	if t.groupCommit && b.seq != 0 {
		// Release the ingest lock before blocking on durability: the whole
		// point of group commit is that concurrent appends pile up while
		// this fsync is in flight and ride the next one.
		s.gc.schedule(t)
		if derr := t.waitDurable(b.seq); derr != nil {
			t.quarantineErr(derr)
			return fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, derr)
		}
	}
	return nil
}

// eventSlabs recycles batch buffers between the ingest path (which must
// copy the caller's slice) and the appliers (which are done with a batch
// once it is folded in). A buffered channel rather than a sync.Pool:
// Get/Put move only a slice header and never box it into an interface, so
// the steady-state ingest path stays allocation-free.
var eventSlabs = make(chan []Event, 4096)

// copyEvents copies the caller's batch into a recycled slab (or a fresh
// one when the pool is momentarily empty).
func copyEvents(events []Event) []Event {
	var s []Event
	select {
	case s = <-eventSlabs:
	default:
	}
	return append(s[:0], events...)
}

// recycleEvents returns a batch slab to the pool. Callers must be done
// reading it: the next copyEvents overwrites the backing array.
func recycleEvents(s []Event) {
	if cap(s) == 0 {
		return
	}
	select {
	case eventSlabs <- s[:0]:
	default:
	}
}

// enqueue is the bounded-queue admission step shared by both ingest
// paths: immediate send, then one EnqueueWait-bounded retry, then
// ErrOverloaded.
func (s *Server) enqueue(t *tenant, b batch) error {
	n := uint64(len(b.events))
	select {
	case t.queue <- b:
		t.ingested.Add(n)
		return nil
	default:
	}
	timer := time.NewTimer(s.cfg.EnqueueWait)
	defer timer.Stop()
	select {
	case t.queue <- b:
		t.ingested.Add(n)
		return nil
	case <-t.done:
		return fmt.Errorf("%w: %q evicted mid-stream", ErrTenantNotFound, t.id)
	case <-timer.C:
		t.rejected.Add(n)
		s.overloads.Add(1)
		return fmt.Errorf("%w: tenant %q (cap %d batches)", ErrOverloaded, t.id, s.cfg.QueueCap)
	}
}

// SourceSeq returns the last accepted batch sequence number for a source
// of a tenant (0 when the source is unknown). Reconnecting clients read
// it from the HELLO response and resume from the next one.
func (s *Server) SourceSeq(tenantID, source string) (uint64, error) {
	t, err := s.lookup(tenantID)
	if err != nil {
		return 0, err
	}
	t.ingestMu.Lock()
	seq := t.sources[source]
	waitSeq := t.lastAppend
	t.ingestMu.Unlock()
	if t.groupCommit {
		// The HELLO resume point implicitly acknowledges every batch at or
		// below it: do not let it outrun the fsync covering the newest
		// accepted batch, or a reconnecting client would skip past a batch
		// a crash can still lose.
		if err := t.waitDurable(waitSeq); err != nil {
			t.quarantineErr(err)
			return 0, fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, err)
		}
	}
	return seq, nil
}

// Checkpoint forces a durability snapshot of one tenant right now,
// compacting its WAL. A no-op (nil) on a non-durable server.
func (s *Server) Checkpoint(tenantID string) error {
	t, err := s.lookup(tenantID)
	if err != nil {
		return err
	}
	if pe := t.quarantine.Load(); pe != nil {
		return fmt.Errorf("%w: %q: %v", ErrTenantQuarantined, tenantID, pe.Value)
	}
	return t.checkpoint()
}

// Snapshot returns a deep copy of a tenant's communication matrix plus its
// stats. The copy is taken under the tenant lock, so it is a consistent
// point-in-time view even while ingestion continues.
func (s *Server) Snapshot(tenantID string) (*TenantSnapshot, error) {
	t, err := s.lookup(tenantID)
	if err != nil {
		return nil, err
	}
	return t.snapshot(), nil
}

// Tenants returns the live tenant IDs in shard order (unsorted).
func (s *Server) Tenants() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.tenants {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats aggregates the server-wide counters over every live tenant.
func (s *Server) Stats() Stats {
	st := Stats{
		Queries:   s.queries.Load(),
		Degraded:  s.degraded.Load(),
		Overloads: s.overloads.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tenants {
			st.Tenants++
			if t.quarantine.Load() != nil {
				st.Quarantines++
			}
			st.Ingested += t.ingested.Load()
			st.Applied += t.applied.Load()
			st.Dropped += t.dropped.Load()
			st.Rejected += t.rejected.Load()
			st.LostSamples += t.lost.Load()
			st.Storms += t.storms.Load()
		}
		sh.mu.RUnlock()
	}
	return st
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain is the graceful-shutdown path (SIGTERM): it stops ingestion and
// tenant creation, lets every applier finish what is already queued, and
// waits for them to exit. Tenant state stays resident — queries and
// snapshots still work after a drain, which is what lets the daemon answer
// "what did you learn" before the process exits. On a durable server each
// drained tenant is finalized: a last snapshot covering everything
// applied, a WAL sync, and a clean close, so the next Open resumes with
// an empty replay. Returns ctx.Err() if the context expires first
// (appliers keep draining in the background, but tenants are then NOT
// finalized — the WAL still covers them).
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tenants {
			t.drain.Store(true)
			t.shutdown()
		}
		sh.mu.RUnlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.gc != nil {
		// Retire the group-commit scheduler after the appliers: any
		// still-blocked ingest waiter is released by the queue drain, and
		// later schedule calls sync inline.
		s.gc.stop()
	}
	var errs []error
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, t := range sh.tenants {
			if err := t.finalize(); err != nil {
				errs = append(errs, err)
			}
		}
		sh.mu.RUnlock()
	}
	return errors.Join(errs...)
}
