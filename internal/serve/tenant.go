package serve

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"tlbmap/internal/comm"
	"tlbmap/internal/fault"
	"tlbmap/internal/mapping"
	"tlbmap/internal/runner"
	"tlbmap/internal/tlb"
	"tlbmap/internal/topology"
	"tlbmap/internal/vm"
	"tlbmap/internal/wal"
)

// stormPerEvent is the per-event storm probability at ShootdownStorm
// intensity 1 on the ingest path. Serving streams are already sampled, so
// the rate is denser than the engine's per-trace-event rate: at full
// intensity roughly one storm per 100 ingested samples.
const stormPerEvent = 1e-2

// batch is the unit the applier consumes: the events plus the identity
// the durability layer needs to make recovery exact. seq is the WAL
// sequence number reserved for the batch (0 on a non-durable server);
// source/srcSeq carry the client's idempotence key so the applier can
// maintain the applied-side dedup map that snapshots serialize.
type batch struct {
	events []Event
	seq    uint64
	source string
	srcSeq uint64
}

// tenant is one client application's detector state: per-thread TLBs
// behind a presence index accumulating into a communication matrix, plus
// the confidence-gated online mapper answering placement queries. All
// mutation is serialized by the applier goroutine (ingest) and mu
// (queries/snapshots interleaving with batches).
type tenant struct {
	id      string
	threads int
	record  bool

	queue chan batch
	stop  chan struct{} // closed once by shutdown(); applier exits
	done  chan struct{} // closed by the applier on exit
	drain atomic.Bool   // true: on stop, apply what is queued before exiting
	once  sync.Once     // guards close(stop): evict and drain may race

	// quarantine holds the panic that poisoned this tenant, nil while
	// healthy. Set by the applier or the query path; never cleared — a
	// quarantined tenant serves nothing until evicted.
	quarantine atomic.Pointer[runner.PanicError]

	// Durability (all nil/zero on a non-durable server). ingestMu
	// serializes the durable ingest path so WAL order == enqueue order ==
	// applied order; sources is the ingest-side dedup map (last accepted
	// client seq per source), consulted and updated under ingestMu.
	dir       string
	wlog      *wal.Log
	snapEvery uint64
	ingestMu  sync.Mutex
	sources   map[string]uint64
	snapMu    sync.Mutex    // serializes checkpoint encode+write+compact
	sinceSnap atomic.Uint64 // events applied since the last snapshot
	walBuf    []byte        // WAL record encode scratch (under ingestMu)
	snapBuf   []byte        // snapshot encode scratch (under snapMu)

	// Group commit (Config.Dir with wal.SyncAlways — see commit.go).
	// lastAppend is the WAL seq of the newest accepted batch (under
	// ingestMu); ackedDurable the newest seq covered by a completed fsync
	// and commitErr the sticky fsync failure (both under commitMu);
	// commitQueued is guarded by the committer's own mutex.
	groupCommit  bool
	lastAppend   uint64
	commitMu     sync.Mutex
	commitCond   *sync.Cond
	ackedDurable uint64
	commitErr    error
	commitQueued bool

	mu       sync.Mutex // guards everything below
	tlbs     []*tlb.TLB
	presence *tlb.PresenceIndex
	matrix   *comm.Matrix
	machine  *topology.Machine
	online   *mapping.OnlineMapper
	lastSnap *comm.Matrix // matrix snapshot at the previous query epoch
	log      []Event      // applied-order event log (Config.RecordApplied)
	// appliedSeq is the WAL seq of the last fully applied batch and
	// appliedSources the applied-side view of the dedup map. They are
	// updated together with the state they describe (same mu critical
	// section), so a snapshot is always consistent: if it contains a
	// batch's effects it also records that batch as applied — a client
	// retrying an unacked batch after recovery is correctly deduplicated
	// instead of double-applied.
	appliedSeq     uint64
	appliedSources map[string]uint64

	// lastPlacement is the placement most recently put in force by a
	// completed query — the deadline fallback. Readable without mu so a
	// degraded query never waits behind the mapping that blew the budget.
	lastPlacement atomic.Value // []int

	ingested atomic.Uint64 // events accepted into the queue
	applied  atomic.Uint64 // events folded into detector state
	dropped  atomic.Uint64 // accepted events discarded (evict, quarantine)
	rejected atomic.Uint64 // events refused at Ingest (overload)
	lost     atomic.Uint64
	storms   atomic.Uint64

	// fault injection (nil rng = scenario disarmed). The prng state is
	// serialized in snapshots so recovered injection replays exactly.
	plan     fault.Plan
	lossRng  *prng
	stormRng *prng

	// applyHook, when non-nil, observes every event just before it is
	// applied. Test-only: fault tests use it to detonate panics inside
	// the applier.
	applyHook func(Event)
}

// TenantSnapshot is the consistent point-in-time view Snapshot returns.
type TenantSnapshot struct {
	ID      string
	Threads int
	// Matrix is a deep copy of the communication matrix.
	Matrix *comm.Matrix
	// Ingested counts events accepted into the queue, Applied the ones
	// folded into detector state, Dropped the accepted ones discarded
	// (evict/quarantine), Rejected the ones refused at Ingest
	// (overload). After a drain, Applied + Dropped == Ingested.
	Ingested, Applied, Dropped, Rejected uint64
	LostSamples, Storms                  uint64
	QueueLen                             int
	Quarantined                          bool
	// PanicValue and PanicStack describe the quarantining panic.
	PanicValue any
	PanicStack []byte
	// Remaps/Fallbacks/Decisions/Confidence mirror the online mapper.
	Remaps, Fallbacks, Decisions int
	Confidence                   float64
}

// newTenant builds the tenant's detector and mapper state and derives its
// fault RNG streams (per-tenant, per-scenario, from the plan seed — one
// tenant's injections never perturb another's). With Config.Dir set it
// also opens the tenant's durable state — snapshot, WAL tail replay —
// so a freshly created tenant resumes exactly where a crashed or drained
// predecessor of the same id left off.
func newTenant(id string, threads int, cfg Config) (*tenant, error) {
	machine := machineFor(threads)
	t := &tenant{
		id:             id,
		threads:        threads,
		record:         cfg.RecordApplied,
		queue:          make(chan batch, cfg.QueueCap),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		tlbs:           make([]*tlb.TLB, threads),
		presence:       tlb.NewPresenceIndex(threads),
		matrix:         comm.NewMatrix(threads),
		machine:        machine,
		online:         mapping.NewOnlineMapper(machine, 0),
		plan:           cfg.Faults,
		sources:        make(map[string]uint64),
		appliedSources: make(map[string]uint64),
		snapEvery:      uint64(cfg.SnapshotEvery),
	}
	t.commitCond = sync.NewCond(&t.commitMu)
	for i := range t.tlbs {
		t.tlbs[i] = tlb.New(cfg.TLB)
		t.presence.Attach(t.tlbs[i])
	}
	if cfg.MinConfidence < 0 {
		t.online.MinConfidence = 0
	} else {
		t.online.MinConfidence = cfg.MinConfidence
	}
	t.online.SetAlgorithm(cfg.Mapper)
	t.lastPlacement.Store(t.online.Placement())
	if r := cfg.Faults.Intensity[fault.SampleLoss]; r > 0 {
		t.lossRng = newPrng(runner.Seed(seedOf(cfg.Faults), "serve", id, fault.SampleLoss.String()))
	}
	if r := cfg.Faults.Intensity[fault.ShootdownStorm]; r > 0 {
		t.stormRng = newPrng(runner.Seed(seedOf(cfg.Faults), "serve", id, fault.ShootdownStorm.String()))
	}
	if cfg.Dir != "" {
		if err := t.openDurable(cfg); err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", id, err)
		}
	}
	return t, nil
}

// seedOf mirrors fault.New's convention: a zero plan seed means 1, so an
// armed plan is always reproducible.
func seedOf(p fault.Plan) int64 {
	if p.Seed == 0 {
		return 1
	}
	return p.Seed
}

// machineFor picks a topology for a tenant's thread count (a power of
// two): small counts get a single-socket shape, 32 and up the canonical
// manycore machine — so the serving hot path exercises the multilevel
// mapper for large tenants exactly as the scale studies do.
func machineFor(threads int) *topology.Machine {
	if threads >= 32 {
		return topology.Manycore(threads)
	}
	coresPerL2 := threads
	if coresPerL2 > 4 {
		coresPerL2 = 4
	}
	return topology.MultiSocket(1, threads/coresPerL2, coresPerL2)
}

// shutdown signals the applier to exit. Safe to call from both Evict and
// Drain (whichever wins closes the channel once).
func (t *tenant) shutdown() { t.once.Do(func() { close(t.stop) }) }

// run is the applier: it drains the bounded queue, serializing all
// detector-state mutation for this tenant. On stop it either discards
// (evict) or finishes (drain) whatever is queued, then exits. The WAL is
// not closed here — eviction, drain finalization and the chaos tests'
// crash simulation each end its life differently.
func (t *tenant) run() {
	defer close(t.done)
	for {
		select {
		case b := <-t.queue:
			t.applyBatch(b)
			recycleEvents(b.events)
			t.maybeCheckpoint()
		case <-t.stop:
			for {
				select {
				case b := <-t.queue:
					if t.drain.Load() {
						t.applyBatch(b)
					} else {
						t.dropped.Add(uint64(len(b.events)))
					}
					recycleEvents(b.events)
				default:
					return
				}
			}
		}
	}
}

// applyBatch folds one batch into the detector state under the tenant
// lock. A panic anywhere inside quarantines the tenant — the stack is
// retained, the remaining events of the batch are dropped, and sibling
// tenants (including ones on the same shard) are untouched because all
// state here is tenant-local.
func (t *tenant) applyBatch(b batch) {
	if t.quarantine.Load() != nil {
		t.dropped.Add(uint64(len(b.events)))
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	applied := 0
	defer func() {
		if r := recover(); r != nil {
			t.quarantine.Store(&runner.PanicError{Value: r, Stack: debug.Stack()})
			t.dropped.Add(uint64(len(b.events) - applied))
		}
	}()
	for _, e := range b.events {
		if t.applyHook != nil {
			t.applyHook(e)
		}
		t.applyOne(e)
		applied++
		t.applied.Add(1)
		if t.record {
			t.log = append(t.log, e)
		}
	}
	// Only a fully applied batch advances the durable bookkeeping; a
	// panic above leaves it at the previous batch, and the tenant is
	// quarantined anyway.
	if b.seq != 0 {
		t.appliedSeq = b.seq
	}
	if b.source != "" {
		t.appliedSources[b.source] = b.srcSeq
	}
	t.sinceSnap.Add(uint64(applied))
}

// applyOne is the SM detection step of Figure 1a, one sample at a time:
// look the page up in the thread's TLB; on a miss, charge one unit of
// communication with every thread currently holding a translation for the
// page (one presence-index lookup instead of probing every remote TLB),
// then refill. A hit only refreshes LRU state — resident pages are not
// re-counted, mirroring the trap-driven mechanism.
func (t *tenant) applyOne(e Event) {
	if t.stormRng != nil && t.stormRng.Float64() < t.plan.Intensity[fault.ShootdownStorm]*stormPerEvent {
		t.shootdown()
	}
	tl := t.tlbs[e.Thread]
	if _, hit := tl.Lookup(e.Page); hit {
		return
	}
	if t.lossRng != nil && t.lossRng.Float64() < t.plan.Intensity[fault.SampleLoss] {
		// The trap is lost: the refill happens, the detector never sees it.
		t.lost.Add(1)
	} else {
		t.presence.HoldersEach(e.Page, func(slot int) {
			if slot != int(e.Thread) {
				t.matrix.Add(int(e.Thread), slot, 1)
			}
		})
	}
	tl.Insert(vm.Translation{Page: e.Page, Frame: vm.Frame(e.Page)})
}

// shootdown is the ShootdownStorm injector on the ingest path: flush the
// full TLBs of 1-3 random threads, exactly the storm the engine-side
// injector performs. The presence index follows automatically (Flush
// maintains it), which the fault tests re-validate.
func (t *tenant) shootdown() {
	t.storms.Add(1)
	n := 1 + t.stormRng.Intn(3)
	for i := 0; i < n; i++ {
		t.tlbs[t.stormRng.Intn(t.threads)].Flush()
	}
}

// snapshot builds the consistent point-in-time view.
func (t *tenant) snapshot() *TenantSnapshot {
	snap := &TenantSnapshot{
		ID:          t.id,
		Threads:     t.threads,
		Ingested:    t.ingested.Load(),
		Applied:     t.applied.Load(),
		Dropped:     t.dropped.Load(),
		Rejected:    t.rejected.Load(),
		LostSamples: t.lost.Load(),
		Storms:      t.storms.Load(),
		QueueLen:    len(t.queue),
	}
	if pe := t.quarantine.Load(); pe != nil {
		snap.Quarantined = true
		snap.PanicValue = pe.Value
		snap.PanicStack = append([]byte(nil), pe.Stack...)
		return snap
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap.Matrix = t.matrix.Clone()
	snap.Remaps = t.online.Remaps()
	snap.Fallbacks = t.online.Fallbacks()
	snap.Decisions = t.online.Decisions()
	snap.Confidence = t.online.Confidence()
	return snap
}

// appliedLog returns a copy of the applied-order event log (empty unless
// Config.RecordApplied). The soak tests replay it single-threaded and
// assert the matrices match byte for byte.
func (t *tenant) appliedLog() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.log...)
}

// String identifies the tenant in errors and logs.
func (t *tenant) String() string {
	return fmt.Sprintf("tenant %q (%d threads)", t.id, t.threads)
}
