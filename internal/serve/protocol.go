package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"tlbmap/internal/vm"
)

// Wire protocol: newline-delimited text, one request line -> one response
// line, pipelining allowed. Responses start with "OK" or "ERR".
//
//	HELLO <tenant> <threads> [source]
//	                           bind the connection to a tenant (created if
//	                           absent; idempotent for an equal thread count).
//	                           With a source name the session is sequenced:
//	                           the response is "OK seq=<n>", the source's
//	                           last accepted batch number, so a
//	                           reconnecting client resumes from n+1.
//	E <thread>:<page> ...      ingest a batch of TLB samples (page is
//	                           decimal or 0x-hex)
//	E <seq> <thread>:<page> ...
//	                           sequenced form (required on a sourced
//	                           session): seq is the client's batch number,
//	                           starting at 1. A replayed batch answers
//	                           "OK dup" without re-applying; a skipped
//	                           number is an ERR and the client must
//	                           re-HELLO to resync.
//	Q                          placement query -> "OK <p0,p1,...> conf=<c>
//	                           remap=<bool> degraded=<bool> reason=<...>"
//	SNAP                       tenant snapshot -> "OK events=... applied=...
//	                           dropped=... total=... nnz=... conf=..."
//	BYE                        close the connection ("OK bye")
//
// Limits: lines up to maxLineBytes (sized from MaxBatch so every legal
// request fits), at most MaxBatch events per E line.
const (
	// MaxBatch bounds the events one E line may carry; larger batches are
	// rejected so one client cannot stuff an unbounded allocation into a
	// single request.
	MaxBatch = 1024
	// maxLineBytes bounds one request line. The widest legal request is a
	// sequenced E line: "E ", a 20-digit batch seq, and MaxBatch events of
	// at most " <thread>:<page>" — 33 bytes each for a 10-digit thread and
	// 20-digit decimal page. Longer lines cannot be well-formed, so they
	// are consumed through their newline and refused with a clean ERR
	// instead of dropping the connection.
	maxLineBytes = 32 + 33*MaxBatch
)

// readerPool and writerPool recycle per-connection buffered IO between
// accepts, so a churning fleet stops paying a line-buffer and write-buffer
// allocation per connection.
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, maxLineBytes) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 4096) }}
)

// Serve accepts connections until the listener closes (which the daemon
// does on SIGTERM before draining). Each connection is served on its own
// goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(c)
	}
}

// ServeConn speaks the wire protocol on one connection until EOF, BYE, or
// a slow-consumer hangup. The reader goroutine writes each response
// directly into a pooled write buffer and flushes only when no further
// request is already buffered, so pipelined responses coalesce into one
// write. Every flush runs under Config.WriteTimeout: a client that
// pipelines requests but never reads responses blocks the first full
// flush, trips the deadline, and is disconnected — per-connection memory
// stays bounded no matter how the peer behaves.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	rd := readerPool.Get().(*bufio.Reader)
	rd.Reset(conn)
	w := writerPool.Get().(*bufio.Writer)
	w.Reset(conn)
	defer func() {
		w.Flush()
		rd.Reset(nil)
		w.Reset(nil)
		readerPool.Put(rd)
		writerPool.Put(w)
	}()

	sess := session{srv: s}
	resp := make([]byte, 0, 256)
	for {
		line, err := rd.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// No legal request is this long (see maxLineBytes): consume
			// through the newline and answer a clean ERR so the connection
			// keeps working.
			for err == bufio.ErrBufferFull {
				_, err = rd.ReadSlice('\n')
			}
			if err != nil {
				return
			}
			resp = append(resp[:0], "ERR line exceeds "...)
			resp = strconv.AppendInt(resp, maxLineBytes, 10)
			resp = append(resp, " bytes"...)
			if !s.writeResp(conn, w, rd, resp) {
				return
			}
			continue
		}
		last := false
		if err != nil {
			if len(line) == 0 || err != io.EOF {
				return
			}
			// Final request without a trailing newline: process it like
			// bufio.Scanner would, then close.
			last = true
		}
		var quit bool
		resp, quit = sess.handle(trimEOL(line), resp[:0])
		if !s.writeResp(conn, w, rd, resp) || quit || last {
			return
		}
	}
}

// writeResp appends one response line to the connection's write buffer
// under the write deadline, flushing when no further request is buffered.
// It reports whether the connection is still usable.
func (s *Server) writeResp(conn net.Conn, w *bufio.Writer, rd *bufio.Reader, resp []byte) bool {
	// Arm the write deadline only when this response can actually touch
	// the socket — the final response of a pipelined burst (flushed
	// below) or one that overflows the write buffer. Mid-burst responses
	// just land in the buffer, so they skip the timer update.
	if rd.Buffered() == 0 || w.Available() < len(resp)+1 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	if _, err := w.Write(resp); err != nil {
		return false
	}
	if err := w.WriteByte('\n'); err != nil {
		return false
	}
	if rd.Buffered() == 0 {
		if err := w.Flush(); err != nil {
			return false
		}
	}
	return true
}

// trimEOL strips the trailing "\n" or "\r\n" from one raw request line.
func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// session is the per-connection protocol state: the tenant and source the
// connection is bound to, plus reusable parse scratch.
type session struct {
	srv    *Server
	tenant string
	source string
	batch  []Event
}

// handle executes one request line, appends the one-line response to resp,
// and reports whether the connection should close. The line aliases the
// read buffer and the returned slice aliases resp's backing array; both
// are consumed before the next read, so the steady-state ingest path
// allocates nothing (asserted by TestIngestSteadyStateZeroAllocs).
func (sess *session) handle(line, resp []byte) ([]byte, bool) {
	cmd, rest := nextField(line)
	switch string(cmd) { // compiled to comparisons; does not allocate
	case "E":
		return sess.handleEvents(rest, resp), false

	case "HELLO":
		return sess.handleHello(rest, resp), false

	case "Q":
		if sess.tenant == "" {
			return append(resp, "ERR HELLO first"...), false
		}
		res, err := sess.srv.Query(context.Background(), sess.tenant)
		if err != nil {
			return appendErr(resp, err), false
		}
		resp = append(resp, "OK "...)
		for i, c := range res.Placement {
			if i > 0 {
				resp = append(resp, ',')
			}
			resp = strconv.AppendInt(resp, int64(c), 10)
		}
		resp = append(resp, " conf="...)
		resp = strconv.AppendFloat(resp, res.Confidence, 'f', 3, 64)
		resp = append(resp, " remap="...)
		resp = strconv.AppendBool(resp, res.Remapped)
		resp = append(resp, " degraded="...)
		resp = strconv.AppendBool(resp, res.Degraded)
		resp = append(resp, " reason="...)
		for i := 0; i < len(res.Reason); i++ {
			if c := res.Reason[i]; c == ' ' {
				resp = append(resp, '_')
			} else {
				resp = append(resp, c)
			}
		}
		return resp, false

	case "SNAP":
		if sess.tenant == "" {
			return append(resp, "ERR HELLO first"...), false
		}
		snap, err := sess.srv.Snapshot(sess.tenant)
		if err != nil {
			return appendErr(resp, err), false
		}
		if snap.Quarantined {
			return fmt.Appendf(resp, "ERR tenant quarantined: %v", snap.PanicValue), false
		}
		return fmt.Appendf(resp, "OK events=%d applied=%d dropped=%d total=%d nnz=%d conf=%.3f",
			snap.Ingested, snap.Applied, snap.Dropped,
			snap.Matrix.Total(), snap.Matrix.NNZ(), snap.Confidence), false

	case "BYE":
		return append(resp, "OK bye"...), true

	case "":
		return append(resp, "ERR empty request"...), false

	default:
		return fmt.Appendf(resp, "ERR unknown command %q", cmd), false
	}
}

// handleHello binds the session to a tenant (and optionally a source) per
// the HELLO contract documented above.
func (sess *session) handleHello(args, resp []byte) []byte {
	tenantTok, rest := nextField(args)
	threadsTok, rest := nextField(rest)
	sourceTok, rest := nextField(rest)
	if extra, _ := nextField(rest); len(tenantTok) == 0 || len(threadsTok) == 0 || len(extra) != 0 {
		return append(resp, "ERR usage: HELLO <tenant> <threads> [source]"...)
	}
	threads, err := strconv.Atoi(string(threadsTok))
	if err != nil {
		return fmt.Appendf(resp, "ERR bad thread count %q", threadsTok)
	}
	tenant := string(tenantTok)
	if err := sess.srv.CreateTenant(tenant, threads); err != nil {
		return appendErr(resp, err)
	}
	sess.tenant = tenant
	sess.source = ""
	if len(sourceTok) > 0 {
		sess.source = string(sourceTok)
		seq, err := sess.srv.SourceSeq(sess.tenant, sess.source)
		if err != nil {
			return appendErr(resp, err)
		}
		resp = append(resp, "OK seq="...)
		return strconv.AppendUint(resp, seq, 10)
	}
	return append(resp, "OK"...)
}

// handleEvents parses and ingests one E line. This is the hot path: every
// token is sliced and parsed in place, the event batch reuses the
// session's scratch slice, and the success response is appended without
// formatting.
func (sess *session) handleEvents(args, resp []byte) []byte {
	if sess.tenant == "" {
		return append(resp, "ERR HELLO first"...)
	}
	var seq uint64
	if sess.source != "" {
		tok, rest := nextField(args)
		if len(tok) == 0 || bytes.IndexByte(tok, ':') >= 0 {
			return append(resp, "ERR sourced session: usage: E <seq> <thread:page> ..."...)
		}
		v, ok := parseUint(tok)
		if !ok {
			return fmt.Appendf(resp, "ERR bad batch seq %q", tok)
		}
		seq, args = v, rest
	}
	batch := sess.batch[:0]
	for {
		tok, rest := nextField(args)
		if len(tok) == 0 {
			break
		}
		args = rest
		if len(batch) == MaxBatch {
			n := len(batch) + 1
			for {
				if tok, args = nextField(args); len(tok) == 0 {
					break
				}
				n++
			}
			sess.batch = batch
			return fmt.Appendf(resp, "ERR batch of %d events exceeds cap %d", n, MaxBatch)
		}
		colon := bytes.IndexByte(tok, ':')
		if colon < 0 {
			sess.batch = batch
			return fmt.Appendf(resp, "ERR bad event %q (want thread:page)", tok)
		}
		thread, ok := parseInt32(tok[:colon])
		if !ok {
			sess.batch = batch
			return fmt.Appendf(resp, "ERR bad thread in %q", tok)
		}
		page, ok := parsePage(tok[colon+1:])
		if !ok {
			sess.batch = batch
			return fmt.Appendf(resp, "ERR bad page in %q", tok)
		}
		batch = append(batch, Event{Thread: thread, Page: vm.Page(page)})
	}
	sess.batch = batch
	err := sess.srv.IngestFrom(sess.tenant, sess.source, seq, batch)
	if err != nil {
		if errors.Is(err, ErrDuplicateBatch) {
			// Idempotent retransmit: already applied, acknowledge without
			// re-applying.
			return append(resp, "OK dup"...)
		}
		return appendErr(resp, err)
	}
	resp = append(resp, "OK "...)
	return strconv.AppendInt(resp, int64(len(batch)), 10)
}

func appendErr(resp []byte, err error) []byte {
	resp = append(resp, "ERR "...)
	return append(resp, err.Error()...)
}

// nextField returns the first space/tab-delimited token of line and the
// remainder. A zero-length token means the line is exhausted.
func nextField(line []byte) (tok, rest []byte) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	j := i
	for j < len(line) && line[j] != ' ' && line[j] != '\t' {
		j++
	}
	return line[i:j], line[j:]
}

// parseUint parses a decimal uint64, rejecting empty input, junk, and
// overflow — strconv.ParseUint(s, 10, 64) without the string conversion.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// parsePage parses a page number in the two spellings the protocol
// documents: decimal or 0x/0X-prefixed hex.
func parsePage(b []byte) (uint64, bool) {
	if len(b) > 2 && b[0] == '0' && (b[1] == 'x' || b[1] == 'X') {
		var v uint64
		for _, c := range b[2:] {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return 0, false
			}
			if v>>60 != 0 {
				return 0, false
			}
			v = v<<4 | d
		}
		return v, true
	}
	return parseUint(b)
}

// parseInt32 parses a signed decimal int32. Range errors reject rather
// than saturate, matching strconv.ParseInt(s, 10, 32).
func parseInt32(b []byte) (int32, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	v, ok := parseUint(b)
	if !ok {
		return 0, false
	}
	if neg {
		if v > 1<<31 {
			return 0, false
		}
		return int32(-int64(v)), true
	}
	if v > 1<<31-1 {
		return 0, false
	}
	return int32(v), true
}
