package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"tlbmap/internal/vm"
)

// Wire protocol: newline-delimited text, one request line -> one response
// line, pipelining allowed. Responses start with "OK" or "ERR".
//
//	HELLO <tenant> <threads> [source]
//	                           bind the connection to a tenant (created if
//	                           absent; idempotent for an equal thread count).
//	                           With a source name the session is sequenced:
//	                           the response is "OK seq=<n>", the source's
//	                           last accepted batch number, so a
//	                           reconnecting client resumes from n+1.
//	E <thread>:<page> ...      ingest a batch of TLB samples (page parsed
//	                           per strconv: decimal or 0x-hex)
//	E <seq> <thread>:<page> ...
//	                           sequenced form (required on a sourced
//	                           session): seq is the client's batch number,
//	                           starting at 1. A replayed batch answers
//	                           "OK dup" without re-applying; a skipped
//	                           number is an ERR and the client must
//	                           re-HELLO to resync.
//	Q                          placement query -> "OK <p0,p1,...> conf=<c>
//	                           remap=<bool> degraded=<bool> reason=<...>"
//	SNAP                       tenant snapshot -> "OK events=... applied=...
//	                           dropped=... total=... nnz=... conf=..."
//	BYE                        close the connection ("OK bye")
//
// Limits: lines up to 64 KiB, at most MaxBatch events per E line.
const (
	maxLineBytes = 1 << 16
	// MaxBatch bounds the events one E line may carry; larger batches are
	// rejected so one client cannot stuff an unbounded allocation into a
	// single request.
	MaxBatch = 1024
)

// Serve accepts connections until the listener closes (which the daemon
// does on SIGTERM before draining). Each connection is served on its own
// goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(c)
	}
}

// ServeConn speaks the wire protocol on one connection until EOF, BYE, or
// a slow-consumer hangup. Responses flow through a bounded outbox drained
// by a writer goroutine under Config.WriteTimeout per line: a client that
// pipelines requests but never reads responses fills the outbox (cap
// Config.OutboxCap) and is disconnected — per-connection memory stays
// bounded no matter how the peer behaves.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	out := make(chan string, s.cfg.OutboxCap)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriter(conn)
		for line := range out {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if _, err := w.WriteString(line); err != nil {
				break
			}
			if err := w.WriteByte('\n'); err != nil {
				break
			}
			// Flush only when the outbox is momentarily empty, so
			// pipelined responses coalesce into one write.
			if len(out) == 0 {
				if err := w.Flush(); err != nil {
					break
				}
			}
		}
		// Drop whatever is left and unblock the peer's read side.
		conn.Close()
		for range out {
		}
	}()

	sess := session{srv: s}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), maxLineBytes)
	for sc.Scan() {
		resp, quit := sess.handle(sc.Text())
		select {
		case out <- resp:
		default:
			// Outbox full: the peer is not reading. Hang up rather than
			// block the reader or buffer unboundedly.
			quit = true
		}
		if quit {
			break
		}
	}
	close(out)
	<-writerDone
}

// session is the per-connection protocol state: the tenant and source the
// connection is bound to, plus reusable parse scratch.
type session struct {
	srv    *Server
	tenant string
	source string
	batch  []Event
}

// handle executes one request line and returns the one-line response plus
// whether the connection should close.
func (sess *session) handle(line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request", false
	}
	switch fields[0] {
	case "HELLO":
		if len(fields) != 3 && len(fields) != 4 {
			return "ERR usage: HELLO <tenant> <threads> [source]", false
		}
		threads, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Sprintf("ERR bad thread count %q", fields[2]), false
		}
		if err := sess.srv.CreateTenant(fields[1], threads); err != nil {
			return "ERR " + err.Error(), false
		}
		sess.tenant = fields[1]
		sess.source = ""
		if len(fields) == 4 {
			sess.source = fields[3]
			seq, err := sess.srv.SourceSeq(sess.tenant, sess.source)
			if err != nil {
				return "ERR " + err.Error(), false
			}
			return "OK seq=" + strconv.FormatUint(seq, 10), false
		}
		return "OK", false

	case "E":
		if sess.tenant == "" {
			return "ERR HELLO first", false
		}
		evs := fields[1:]
		var seq uint64
		if sess.source != "" {
			if len(evs) == 0 || strings.Contains(evs[0], ":") {
				return "ERR sourced session: usage: E <seq> <thread:page> ...", false
			}
			var err error
			if seq, err = strconv.ParseUint(evs[0], 10, 64); err != nil {
				return fmt.Sprintf("ERR bad batch seq %q", evs[0]), false
			}
			evs = evs[1:]
		}
		if len(evs) > MaxBatch {
			return fmt.Sprintf("ERR batch of %d events exceeds cap %d", len(evs), MaxBatch), false
		}
		sess.batch = sess.batch[:0]
		for _, f := range evs {
			threadStr, pageStr, ok := strings.Cut(f, ":")
			if !ok {
				return fmt.Sprintf("ERR bad event %q (want thread:page)", f), false
			}
			thread, err := strconv.ParseInt(threadStr, 10, 32)
			if err != nil {
				return fmt.Sprintf("ERR bad thread in %q", f), false
			}
			page, err := strconv.ParseUint(pageStr, 0, 64)
			if err != nil {
				return fmt.Sprintf("ERR bad page in %q", f), false
			}
			sess.batch = append(sess.batch, Event{Thread: int32(thread), Page: vm.Page(page)})
		}
		err := sess.srv.IngestFrom(sess.tenant, sess.source, seq, sess.batch)
		if errors.Is(err, ErrDuplicateBatch) {
			// Idempotent retransmit: already applied, acknowledge without
			// re-applying.
			return "OK dup", false
		}
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK " + strconv.Itoa(len(sess.batch)), false

	case "Q":
		if sess.tenant == "" {
			return "ERR HELLO first", false
		}
		res, err := sess.srv.Query(context.Background(), sess.tenant)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		var b strings.Builder
		b.WriteString("OK ")
		for i, c := range res.Placement {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(c))
		}
		fmt.Fprintf(&b, " conf=%.3f remap=%t degraded=%t reason=%s",
			res.Confidence, res.Remapped, res.Degraded,
			strings.ReplaceAll(res.Reason, " ", "_"))
		return b.String(), false

	case "SNAP":
		if sess.tenant == "" {
			return "ERR HELLO first", false
		}
		snap, err := sess.srv.Snapshot(sess.tenant)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		if snap.Quarantined {
			return fmt.Sprintf("ERR tenant quarantined: %v", snap.PanicValue), false
		}
		return fmt.Sprintf("OK events=%d applied=%d dropped=%d total=%d nnz=%d conf=%.3f",
			snap.Ingested, snap.Applied, snap.Dropped,
			snap.Matrix.Total(), snap.Matrix.NNZ(), snap.Confidence), false

	case "BYE":
		return "OK bye", true

	default:
		return fmt.Sprintf("ERR unknown command %q", fields[0]), false
	}
}
