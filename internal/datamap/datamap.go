// Package datamap implements NUMA data-mapping policies: deciding which
// NUMA node each memory page should live on. It is the data-side companion
// of thread mapping — the direction the paper's future work points at
// ("Expected performance improvements in NUMA architectures are higher"),
// later developed by the same group into combined thread-and-data mapping.
//
// A policy consumes a page profile (who touches each page how often, from
// comm.PageProfile) plus the thread placement, and emits a page -> node
// assignment the simulator applies to physical frames.
package datamap

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
	"tlbmap/internal/vm"
)

// Policy assigns NUMA nodes to pages.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Assign returns the node for each profiled page. threadNode maps a
	// thread ID to the NUMA node of the core it is placed on.
	Assign(profile *comm.PageProfile, threadNode func(int) int, nodes int) map[vm.Page]int
}

// FirstTouch places every page on the node of the thread that touched it
// first — the default policy of Linux and most operating systems, and the
// baseline the NUMA literature compares against.
type FirstTouch struct{}

// Name implements Policy.
func (FirstTouch) Name() string { return "first-touch" }

// Assign implements Policy.
func (FirstTouch) Assign(profile *comm.PageProfile, threadNode func(int) int, nodes int) map[vm.Page]int {
	out := make(map[vm.Page]int)
	for _, page := range profile.Pages() {
		if t := profile.FirstToucher(page); t >= 0 {
			out[page] = threadNode(t)
		}
	}
	return out
}

// MostAccessed places every page on the node whose threads access it most —
// the profile-guided policy that minimizes remote accesses for stable
// access patterns.
type MostAccessed struct{}

// Name implements Policy.
func (MostAccessed) Name() string { return "most-accessed" }

// Assign implements Policy.
func (MostAccessed) Assign(profile *comm.PageProfile, threadNode func(int) int, nodes int) map[vm.Page]int {
	out := make(map[vm.Page]int)
	for _, page := range profile.Pages() {
		if n := profile.DominantNode(page, threadNode); n >= 0 {
			out[page] = n
		}
	}
	return out
}

// Interleave stripes pages round-robin across nodes — the
// bandwidth-balancing policy (numactl --interleave), which bounds worst-case
// behaviour at the price of guaranteed remote accesses.
type Interleave struct{}

// Name implements Policy.
func (Interleave) Name() string { return "interleave" }

// Assign implements Policy.
func (Interleave) Assign(profile *comm.PageProfile, threadNode func(int) int, nodes int) map[vm.Page]int {
	if nodes < 1 {
		nodes = 1
	}
	out := make(map[vm.Page]int)
	for _, page := range profile.Pages() {
		out[page] = int(uint64(page) % uint64(nodes))
	}
	return out
}

// ThreadNodeFunc builds the thread -> node function for a placement on a
// machine: the node of the core each thread is pinned to. UMA machines
// report node 0 for every thread.
func ThreadNodeFunc(machine *topology.Machine, placement []int) func(int) int {
	return func(thread int) int {
		node := machine.NUMANode(placement[thread])
		if node < 0 {
			return 0
		}
		return node
	}
}

// Assignment is a finished page -> node mapping ready for the simulator.
type Assignment struct {
	policy string
	pages  map[vm.Page]int
	// defaultNode receives pages that were never profiled.
	defaultNode int
}

// Build profiles -> assignment: runs the policy and wraps the result.
func Build(p Policy, profile *comm.PageProfile, machine *topology.Machine, placement []int) (*Assignment, error) {
	if profile == nil {
		return nil, fmt.Errorf("datamap: nil profile")
	}
	nodes := numNodes(machine)
	return &Assignment{
		policy: p.Name(),
		pages:  p.Assign(profile, ThreadNodeFunc(machine, placement), nodes),
	}, nil
}

func numNodes(machine *topology.Machine) int {
	max := -1
	for c := 0; c < machine.NumCores(); c++ {
		if n := machine.NUMANode(c); n > max {
			max = n
		}
	}
	if max < 0 {
		return 1
	}
	return max + 1
}

// Policy returns the name of the policy that produced the assignment.
func (a *Assignment) Policy() string { return a.policy }

// Node returns the node assigned to a page; unprofiled pages land on the
// default node.
func (a *Assignment) Node(page vm.Page) int {
	if n, ok := a.pages[page]; ok {
		return n
	}
	return a.defaultNode
}

// Len returns the number of explicitly assigned pages.
func (a *Assignment) Len() int { return len(a.pages) }

// RemoteFraction predicts the fraction of profiled accesses that would be
// remote under this assignment — a quick analytic quality score before any
// simulation.
func (a *Assignment) RemoteFraction(profile *comm.PageProfile, threadNode func(int) int) float64 {
	var local, remote uint64
	for _, page := range profile.Pages() {
		node := a.Node(page)
		for t, n := range profile.Counts(page) {
			if threadNode(t) == node {
				local += n
			} else {
				remote += n
			}
		}
	}
	if local+remote == 0 {
		return 0
	}
	return float64(remote) / float64(local+remote)
}
