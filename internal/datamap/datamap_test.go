package datamap

import (
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
	"tlbmap/internal/vm"
)

// buildProfile: page 1 touched mostly by thread 0 (first toucher thread 1),
// page 2 exclusively by thread 5, page 3 shared evenly.
func buildProfile() *comm.PageProfile {
	p := comm.NewPageProfile(8)
	p.Record(1, 1) // first toucher of page 1 is thread 1
	for i := 0; i < 10; i++ {
		p.Record(0, 1)
	}
	for i := 0; i < 5; i++ {
		p.Record(5, 2)
	}
	p.Record(0, 3)
	p.Record(7, 3)
	return p
}

func identity8() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7} }

func TestThreadNodeFunc(t *testing.T) {
	m := topology.NUMA(2) // cores 0-3 node 0, cores 4-7 node 1
	tn := ThreadNodeFunc(m, identity8())
	if tn(0) != 0 || tn(3) != 0 || tn(4) != 1 || tn(7) != 1 {
		t.Error("thread->node mapping wrong")
	}
	// A reversed placement flips the nodes.
	tnRev := ThreadNodeFunc(m, []int{7, 6, 5, 4, 3, 2, 1, 0})
	if tnRev(0) != 1 || tnRev(7) != 0 {
		t.Error("placement not honoured")
	}
	// UMA machines collapse to node 0.
	tnUMA := ThreadNodeFunc(topology.Harpertown(), identity8())
	for th := 0; th < 8; th++ {
		if tnUMA(th) != 0 {
			t.Fatal("UMA thread node != 0")
		}
	}
}

func TestFirstTouchPolicy(t *testing.T) {
	m := topology.NUMA(2)
	a, err := Build(FirstTouch{}, buildProfile(), m, identity8())
	if err != nil {
		t.Fatal(err)
	}
	// Page 1 first touched by thread 1 (node 0); page 2 by thread 5
	// (node 1).
	if a.Node(1) != 0 {
		t.Errorf("page 1 -> node %d, want 0", a.Node(1))
	}
	if a.Node(2) != 1 {
		t.Errorf("page 2 -> node %d, want 1", a.Node(2))
	}
	if a.Policy() != "first-touch" {
		t.Error("policy name")
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
	// Unprofiled pages land on the default node.
	if a.Node(999) != 0 {
		t.Error("default node")
	}
}

func TestMostAccessedPolicy(t *testing.T) {
	m := topology.NUMA(2)
	a, err := Build(MostAccessed{}, buildProfile(), m, identity8())
	if err != nil {
		t.Fatal(err)
	}
	// Page 1: thread 0 dominates (node 0) despite thread 1 touching first.
	if a.Node(1) != 0 {
		t.Errorf("page 1 -> node %d, want 0", a.Node(1))
	}
	// Page 2: thread 5 (node 1).
	if a.Node(2) != 1 {
		t.Errorf("page 2 -> node %d, want 1", a.Node(2))
	}
}

func TestMostAccessedFollowsPlacement(t *testing.T) {
	// With the reversed placement, thread 0 sits on node 1, so page 1
	// must move with it.
	m := topology.NUMA(2)
	a, err := Build(MostAccessed{}, buildProfile(), m, []int{7, 6, 5, 4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Node(1) != 1 {
		t.Errorf("page 1 -> node %d, want 1 under reversed placement", a.Node(1))
	}
}

func TestInterleavePolicy(t *testing.T) {
	m := topology.NUMA(2)
	a, err := Build(Interleave{}, buildProfile(), m, identity8())
	if err != nil {
		t.Fatal(err)
	}
	if a.Node(1) != 1 || a.Node(2) != 0 || a.Node(3) != 1 {
		t.Errorf("interleave nodes: %d %d %d", a.Node(1), a.Node(2), a.Node(3))
	}
}

func TestBuildNilProfile(t *testing.T) {
	if _, err := Build(FirstTouch{}, nil, topology.NUMA(2), identity8()); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestRemoteFraction(t *testing.T) {
	m := topology.NUMA(2)
	profile := comm.NewPageProfile(8)
	for i := 0; i < 10; i++ {
		profile.Record(0, 1) // node 0
	}
	for i := 0; i < 10; i++ {
		profile.Record(4, 2) // node 1
	}
	tn := ThreadNodeFunc(m, identity8())

	ma, _ := Build(MostAccessed{}, profile, m, identity8())
	if f := ma.RemoteFraction(profile, tn); f != 0 {
		t.Errorf("most-accessed remote fraction = %v, want 0", f)
	}
	// Force everything onto node 0: half the accesses become remote.
	everything := &Assignment{policy: "node0", pages: map[vm.Page]int{1: 0, 2: 0}}
	if f := everything.RemoteFraction(profile, tn); f != 0.5 {
		t.Errorf("remote fraction = %v, want 0.5", f)
	}
	empty := &Assignment{policy: "x", pages: map[vm.Page]int{}}
	if f := empty.RemoteFraction(comm.NewPageProfile(8), tn); f != 0 {
		t.Error("empty profile fraction")
	}
}

func TestPolicyNames(t *testing.T) {
	if (FirstTouch{}).Name() != "first-touch" ||
		(MostAccessed{}).Name() != "most-accessed" ||
		(Interleave{}).Name() != "interleave" {
		t.Error("policy names")
	}
}
