// Package paperdata encodes the published numbers of the paper's evaluation
// (Tables III, IV and V, and the derived normalized values of Figures 6-9)
// as Go data, so the harness can print measured results side by side with
// the paper's and check the qualitative claims automatically.
//
// Values are transcribed from the paper; the per-second rates of Table IV
// are the OS/SM/HM rows, and the normalized figures are derived as
// (rate_mapped / time_mapped⁻¹) … i.e. total events = rate × time, mapped
// total / OS total.
package paperdata

import (
	"sort"
)

// Apps lists the paper's benchmarks in table order.
var Apps = []string{"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA"}

// Table3Row is the paper's Table III.
type Table3Row struct {
	MissRate        float64 // TLB miss rate (fraction)
	SampledFraction float64 // misses for which SM ran (fraction)
	Overhead        float64 // total overhead (fraction)
}

// Table3 holds the paper's SM statistics.
var Table3 = map[string]Table3Row{
	"BT": {0.0001, 0.00655, 0.00195},
	"CG": {0.00015, 0.00942, 0.00249},
	"EP": {0.00002, 0.00998, 0.00027},
	"FT": {0.00007, 0.00961, 0.0012},
	"IS": {0.00333, 0.00993, 0.04077},
	"LU": {0.00026, 0.00875, 0.00519},
	"MG": {0.00008, 0.0082, 0.00117},
	"SP": {0.00032, 0.00909, 0.00751},
	"UA": {0.00005, 0.00829, 0.0008},
}

// Table4Row is one benchmark's column of the paper's Table IV: execution
// time in seconds and event rates per second, for the OS, SM and HM
// mappings.
type Table4Row struct {
	TimeOS, TimeSM, TimeHM float64
	InvOS, InvSM, InvHM    float64
	SnpOS, SnpSM, SnpHM    float64
	L2OS, L2SM, L2HM       float64
}

// Table4 holds the paper's absolute rates.
var Table4 = map[string]Table4Row{
	"BT": {0.74, 0.68, 0.69, 9845216, 7019908, 7499308, 7196937, 3612138, 4263300, 248962, 212403, 207314},
	"CG": {0.13, 0.13, 0.13, 3831746, 3624698, 3747079, 10374266, 10395271, 10492865, 1144400, 1169066, 1176111},
	"EP": {0.48, 0.47, 0.47, 121230, 103558, 105117, 27870, 21560, 22666, 3365, 3159, 3240},
	"FT": {0.10, 0.10, 0.10, 16154353, 16571898, 16544292, 5172957, 5288628, 5298599, 460250, 473133, 472221},
	"IS": {0.06, 0.06, 0.06, 9754232, 9681120, 9637287, 11461581, 11889910, 11830896, 1007312, 914644, 908205},
	"LU": {2.39, 2.27, 2.27, 14457991, 12395757, 13745080, 12706165, 8739948, 9881274, 656734, 575242, 669864},
	"MG": {0.23, 0.22, 0.22, 35970058, 35792412, 35439765, 4093348, 1519446, 2482490, 939658, 924153, 953271},
	"SP": {2.53, 2.14, 2.25, 17749230, 13535357, 13956912, 10668132, 5874685, 6757793, 339850, 276327, 263512},
	"UA": {2.19, 2.06, 2.06, 7361187, 4609197, 4600673, 5008487, 3055559, 3064284, 741887, 610845, 610188},
}

// Table5Row is one benchmark's column of the paper's Table V (relative
// standard deviations, percent) for the OS and SM mappings.
type Table5Row struct {
	TimeOS, TimeSM float64
	InvOS, InvSM   float64
	SnpOS, SnpSM   float64
	L2OS, L2SM     float64
}

// Table5 holds the paper's standard deviations.
var Table5 = map[string]Table5Row{
	"BT": {3.44, 4.15, 4.68, 3.41, 5.08, 5.72, 25.74, 23.89},
	"CG": {11.35, 2.68, 1.45, 0.92, 1.0, 0.47, 1.92, 2.37},
	"EP": {5.13, 1.98, 30.68, 22.79, 32.53, 52.32, 41.1, 38.4},
	"FT": {20.55, 6.83, 0.88, 0.58, 1.02, 0.73, 5.28, 5.18},
	"IS": {21.26, 4.62, 1.52, 0.68, 0.78, 0.81, 2.75, 3.3},
	"LU": {6.98, 0.2, 4.55, 0.16, 8.45, 1.21, 11.32, 26.41},
	"MG": {9.22, 2.82, 1.64, 2.22, 7.75, 12.03, 4.6, 4.96},
	"SP": {1.35, 0.11, 4.75, 0.42, 8.35, 1.29, 30.04, 36.94},
	"UA": {1.76, 0.25, 1.92, 0.97, 5.79, 3.56, 8.0, 15.03},
}

// NormalizedSM returns the paper's Figures 6-9 values for the SM mapping,
// derived from Table IV: (rate_SM x time_SM) / (rate_OS x time_OS) for the
// event metrics and time_SM / time_OS for execution time.
func NormalizedSM(app string) (time, inv, snoop, l2 float64, ok bool) {
	r, found := Table4[app]
	if !found {
		return 0, 0, 0, 0, false
	}
	time = r.TimeSM / r.TimeOS
	inv = (r.InvSM * r.TimeSM) / (r.InvOS * r.TimeOS)
	snoop = (r.SnpSM * r.TimeSM) / (r.SnpOS * r.TimeOS)
	l2 = (r.L2SM * r.TimeSM) / (r.L2OS * r.TimeOS)
	return time, inv, snoop, l2, true
}

// Heterogeneous reports whether the paper classifies the benchmark as
// having an exploitable (non-homogeneous) communication pattern.
func Heterogeneous(app string) bool {
	switch app {
	case "CG", "EP", "FT":
		return false
	default:
		_, ok := Table4[app]
		return ok
	}
}

// Champions returns the paper's headline claims as (metric -> app, value):
// the benchmark with the largest reduction per metric.
func Champions() map[string]struct {
	App       string
	Reduction float64
} {
	type champ struct {
		App       string
		Reduction float64
	}
	out := map[string]champ{}
	apps := append([]string(nil), Apps...)
	sort.Strings(apps)
	for _, app := range apps {
		t, i, s, l, ok := NormalizedSM(app)
		if !ok {
			continue
		}
		for metric, v := range map[string]float64{"time": t, "inv": i, "snoop": s, "l2miss": l} {
			red := 1 - v
			if red > out[metric].Reduction {
				out[metric] = champ{App: app, Reduction: red}
			}
		}
	}
	res := map[string]struct {
		App       string
		Reduction float64
	}{}
	for k, v := range out {
		res[k] = struct {
			App       string
			Reduction float64
		}{v.App, v.Reduction}
	}
	return res
}
