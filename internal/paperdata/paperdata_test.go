package paperdata

import (
	"math"
	"testing"
)

func TestTablesCoverAllApps(t *testing.T) {
	if len(Apps) != 9 {
		t.Fatalf("apps = %v", Apps)
	}
	for _, app := range Apps {
		if _, ok := Table3[app]; !ok {
			t.Errorf("Table3 missing %s", app)
		}
		if _, ok := Table4[app]; !ok {
			t.Errorf("Table4 missing %s", app)
		}
		if _, ok := Table5[app]; !ok {
			t.Errorf("Table5 missing %s", app)
		}
	}
}

func TestHeadlineClaimsMatchAbstract(t *testing.T) {
	// The abstract: "performance improvements of up to 15.3%, reducing the
	// number of cache misses by up to 31.1%". Section VI adds:
	// invalidations up to 41% (UA), snoops up to 65.4% (MG).
	champs := Champions()
	if c := champs["time"]; c.App != "SP" || math.Abs(c.Reduction-0.153) > 0.01 {
		t.Errorf("time champion = %+v, want SP at 15.3%%", c)
	}
	if c := champs["l2miss"]; c.App != "SP" || math.Abs(c.Reduction-0.311) > 0.015 {
		t.Errorf("L2 champion = %+v, want SP at 31.1%%", c)
	}
	if c := champs["inv"]; c.App != "UA" || math.Abs(c.Reduction-0.41) > 0.02 {
		t.Errorf("invalidation champion = %+v, want UA at 41%%", c)
	}
	if c := champs["snoop"]; c.App != "MG" || math.Abs(c.Reduction-0.654) > 0.02 {
		t.Errorf("snoop champion = %+v, want MG at 65.4%%", c)
	}
}

func TestNormalizedSMSanity(t *testing.T) {
	for _, app := range Apps {
		time, inv, snoop, l2, ok := NormalizedSM(app)
		if !ok {
			t.Fatalf("%s missing", app)
		}
		for name, v := range map[string]float64{"time": time, "inv": inv, "snoop": snoop, "l2": l2} {
			if v <= 0 || v > 1.3 {
				t.Errorf("%s %s normalized = %v", app, name, v)
			}
		}
		// Mapped time never exceeds OS time in the paper.
		if time > 1.0001 {
			t.Errorf("%s mapped slower than OS in paper data: %v", app, time)
		}
	}
	if _, _, _, _, ok := NormalizedSM("XX"); ok {
		t.Error("unknown app accepted")
	}
}

func TestHeterogeneousClassification(t *testing.T) {
	for _, app := range []string{"BT", "IS", "LU", "MG", "SP", "UA"} {
		if !Heterogeneous(app) {
			t.Errorf("%s should be heterogeneous", app)
		}
	}
	for _, app := range []string{"CG", "EP", "FT"} {
		if Heterogeneous(app) {
			t.Errorf("%s should be homogeneous", app)
		}
	}
	if Heterogeneous("XX") {
		t.Error("unknown app classified")
	}
}

func TestISHasHighestMissRate(t *testing.T) {
	for app, row := range Table3 {
		if app == "IS" {
			continue
		}
		if row.MissRate >= Table3["IS"].MissRate {
			t.Errorf("%s miss rate %v >= IS", app, row.MissRate)
		}
	}
}

func TestOSVarianceExceedsSMForTime(t *testing.T) {
	// Table V's qualitative claim: mapping stabilizes execution time.
	worse := 0
	for _, app := range Apps {
		if Table5[app].TimeSM < Table5[app].TimeOS {
			worse++
		}
	}
	if worse < 7 {
		t.Errorf("only %d of 9 apps have lower SM time variance in the paper data", worse)
	}
}
