package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWritePerformanceCSV(t *testing.T) {
	perf, err := RunPerformance(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePerformanceCSV(&buf, perf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 benchmarks x 3 mappings.
	if len(records) != 1+2*3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "benchmark" || len(records[0]) != 14 {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "OS" || records[2][1] != "SM" || records[3][1] != "HM" {
		t.Errorf("mapping order wrong: %v %v %v", records[1][1], records[2][1], records[3][1])
	}
}

func TestWritePatternsCSV(t *testing.T) {
	patterns, err := DetectPatterns(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePatternsCSV(&buf, patterns); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 benchmarks x 3 mechanisms x 28 pairs.
	if want := 1 + 2*3*28; len(records) != want {
		t.Fatalf("rows = %d, want %d", len(records), want)
	}
	if !strings.Contains(out, "oracle") {
		t.Error("mechanisms missing")
	}
}

func TestWriteTable3CSV(t *testing.T) {
	rows, err := RunTable3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1+2 {
		t.Fatalf("rows = %d", len(records))
	}
}

func TestRunStorageCostTiny(t *testing.T) {
	rows, err := RunStorageCost(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TraceBytes == 0 || r.Accesses == 0 {
			t.Errorf("%s: empty trace", r.Name)
		}
		if r.MatrixBytes != 8*8*8 {
			t.Errorf("%s: matrix bytes = %d", r.Name, r.MatrixBytes)
		}
		if r.Ratio() <= 1 {
			t.Errorf("%s: trace (%d B) should dwarf the matrix (%d B)",
				r.Name, r.TraceBytes, r.MatrixBytes)
		}
	}
	out := RenderStorageCost(rows)
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "SP") {
		t.Errorf("render incomplete:\n%s", out)
	}
}
