package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"tlbmap/internal/paperdata"
)

// CompareRow pairs one benchmark's measured normalized results (SM mapping
// vs OS baseline) with the paper's published values.
type CompareRow struct {
	Name                        string
	Heterogeneous               bool
	TimeOurs, TimePaper         float64
	InvOurs, InvPaper           float64
	SnoopOurs, SnoopPaper       float64
	L2Ours, L2Paper             float64
	MissRateOurs, MissRatePaper float64
	OverheadOurs, OverheadPaper float64
	// ShapeOK is true when the qualitative claim holds: heterogeneous
	// benchmarks improve (ratios < 1), homogeneous ones stay neutral.
	ShapeOK bool
}

// Compare runs the performance experiments plus Table III and pairs every
// measured value with the paper's published number. It only supports the
// npb suite (the paper has no SPLASH results to compare against).
func Compare(cfg Config) ([]CompareRow, error) {
	cfg = cfg.withDefaults()
	if cfg.Suite != "npb" {
		return nil, fmt.Errorf("harness: compare requires the npb suite, got %q", cfg.Suite)
	}
	perf, err := RunPerformance(cfg)
	if err != nil {
		return nil, err
	}
	t3, err := RunTable3(cfg)
	if err != nil {
		return nil, err
	}
	t3ByName := map[string]Table3Row{}
	for _, r := range t3 {
		t3ByName[r.Name] = r
	}

	out := make([]CompareRow, 0, len(perf))
	for _, p := range perf {
		row := CompareRow{
			Name:          p.Name,
			Heterogeneous: paperdata.Heterogeneous(p.Name),
			TimeOurs:      p.Normalized(SMLabel, "time"),
			InvOurs:       p.Normalized(SMLabel, "inv"),
			SnoopOurs:     p.Normalized(SMLabel, "snoop"),
			L2Ours:        p.Normalized(SMLabel, "l2miss"),
		}
		if t, i, s, l, ok := paperdata.NormalizedSM(p.Name); ok {
			row.TimePaper, row.InvPaper, row.SnoopPaper, row.L2Paper = t, i, s, l
		}
		if r, ok := t3ByName[p.Name]; ok {
			row.MissRateOurs, row.OverheadOurs = r.MissRate, r.Overhead
		}
		if r, ok := paperdata.Table3[p.Name]; ok {
			row.MissRatePaper, row.OverheadPaper = r.MissRate, r.Overhead
		}
		if row.Heterogeneous {
			// Claim: mapping helps — time not worse, coherence clearly
			// reduced.
			row.ShapeOK = row.TimeOurs <= 1.01 && row.InvOurs < 0.95 && row.SnoopOurs < 0.95
		} else {
			// Claim: nothing to exploit — time unchanged.
			row.ShapeOK = row.TimeOurs > 0.97 && row.TimeOurs < 1.05
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderCompare prints the side-by-side comparison.
func RenderCompare(rows []CompareRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Paper vs. measured (SM mapping, normalized to the OS scheduler)")
	fmt.Fprintln(&b, "Each cell: measured / paper. Shape verdict per the paper's qualitative claim.")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tpattern\ttime\tinvalidations\tsnoops\tL2 misses\tSM overhead\tshape")
	for _, r := range rows {
		kind := "homogeneous"
		if r.Heterogeneous {
			kind = "heterogeneous"
		}
		verdict := "MISMATCH"
		if r.ShapeOK {
			verdict = "ok"
		}
		fmt.Fprintf(w, "%s\t%s\t%.3f / %.3f\t%.3f / %.3f\t%.3f / %.3f\t%.3f / %.3f\t%.3f%% / %.3f%%\t%s\n",
			r.Name, kind,
			r.TimeOurs, r.TimePaper,
			r.InvOurs, r.InvPaper,
			r.SnoopOurs, r.SnoopPaper,
			r.L2Ours, r.L2Paper,
			r.OverheadOurs*100, r.OverheadPaper*100,
			verdict)
	}
	w.Flush()

	champs := paperdata.Champions()
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "Paper's headline champions (largest reductions):")
	for _, metric := range []string{"time", "l2miss", "inv", "snoop"} {
		c := champs[metric]
		ours := ""
		for _, r := range rows {
			if r.Name != c.App {
				continue
			}
			switch metric {
			case "time":
				ours = fmt.Sprintf("%.1f%%", 100*(1-r.TimeOurs))
			case "l2miss":
				ours = fmt.Sprintf("%.1f%%", 100*(1-r.L2Ours))
			case "inv":
				ours = fmt.Sprintf("%.1f%%", 100*(1-r.InvOurs))
			case "snoop":
				ours = fmt.Sprintf("%.1f%%", 100*(1-r.SnoopOurs))
			}
		}
		if ours == "" {
			ours = "n/a (benchmark not in this run)"
		}
		fmt.Fprintf(&b, "  %-7s %s: paper %.1f%%, measured %s\n", metric, c.App, 100*c.Reduction, ours)
	}
	return b.String()
}
