package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"tlbmap/internal/core"
	"tlbmap/internal/fault"
	"tlbmap/internal/runner"
	"tlbmap/internal/topology"
)

// FaultNoiseThreshold is the documented noise band of the degradation
// study: the confidence-gated online mapper is considered "no worse than
// the OS baseline" while its slowdown stays below 1 + this threshold.
// Timing faults reshuffle the event interleaving, so even a controller
// that never moves a thread does not reproduce the baseline bit-for-bit;
// 5% covers the interleaving jitter observed across the study grid.
const FaultNoiseThreshold = 0.05

// FaultStudyConfig parameterizes the graceful-degradation study.
type FaultStudyConfig struct {
	Config
	// Plan is the base fault plan each rate scales; the zero plan selects
	// every scenario at intensity 1 (so Rates sweep the full range).
	Plan fault.Plan
	// Rates is the fault-rate sweep; nil selects {0, 0.25, 0.5, 1}.
	Rates []float64
	// JobTimeout bounds each study cell (0 = no limit); cells that blow
	// it are reported as failures, not fatal errors.
	JobTimeout time.Duration
}

func (c FaultStudyConfig) withStudyDefaults() FaultStudyConfig {
	// The study measures pattern quality under fault, not mechanism
	// overhead: unless overridden, monitor every SM miss and scan often
	// enough that short runs contain several windows (the same reasoning
	// RunTable3 and RunHMOverhead apply for their defaults).
	if c.Options.SampleEvery == 0 {
		c.Options.SampleEvery = 1
	}
	if c.Options.ScanInterval == 0 {
		c.Options.ScanInterval = 20_000
	}
	c.Config = c.Config.withDefaults()
	if c.Plan.Empty() {
		for i := range c.Plan.Intensity {
			c.Plan.Intensity[i] = 1
		}
	}
	if c.Plan.Seed == 0 {
		c.Plan.Seed = c.Seed
	}
	if c.Rates == nil {
		c.Rates = []float64{0, 0.25, 0.5, 1}
	}
	return c
}

// FaultStudyRow is one cell of the degradation curve: one (benchmark,
// machine, mechanism, fault rate) combination.
type FaultStudyRow struct {
	Benchmark string
	// Topology is the machine label ("UMA" or "NUMA").
	Topology string
	// Mechanism is the detection mechanism under fault.
	Mechanism core.Mechanism
	// Rate scales the base plan's intensities.
	Rate float64
	// Similarity scores the faulted detected matrix against the clean
	// full-trace oracle pattern (Pearson; 1 = perfect detection).
	Similarity float64
	// StaticSlowdown is cycles under the mapping built from the faulted
	// matrix divided by cycles under the identity baseline, both run
	// fault-free — how much mapping quality the faults cost.
	StaticSlowdown float64
	// OnlineSlowdown is cycles of the confidence-gated dynamic-migration
	// run divided by cycles of a static identity-placement run carrying
	// the same live detector and the same fault plan — the graceful-
	// degradation acceptance metric (must stay below
	// 1 + FaultNoiseThreshold). Holding detection overhead equal on both
	// sides isolates what the controller's decisions cost.
	OnlineSlowdown float64
	// Fallbacks and Confidence report the online controller's gate
	// activity: baseline adoptions and final pattern-stability score.
	Fallbacks  int
	Confidence float64
	// Injections is the total number of faults the plan fired across the
	// cell's faulted runs.
	Injections uint64
}

// faultCell is one study job.
type faultCell struct {
	bench    string
	topoName string
	machine  *topology.Machine
	mech     core.Mechanism
	rate     float64
}

// RunFaultStudy sweeps fault rates across SM/HM detection on a UMA and a
// NUMA machine and measures how detection quality and mapping gain
// degrade — the fault-rate → mapping-quality/slowdown curve of the
// robustness evaluation. Cells are independent jobs on the hardened
// runner: a cell that panics or exceeds JobTimeout becomes a JobError and
// the surviving rows are still returned, in deterministic grid order.
func RunFaultStudy(ctx context.Context, cfg FaultStudyConfig) ([]FaultStudyRow, []*runner.JobError, error) {
	cfg = cfg.withStudyDefaults()
	machines := []struct {
		name string
		m    *topology.Machine
	}{
		{"UMA", cfg.Machine()},
		{"NUMA", topology.NUMA(2)},
	}
	var cells []faultCell
	for _, bench := range cfg.Benchmarks {
		for _, mc := range machines {
			for _, mech := range []core.Mechanism{core.SM, core.HM} {
				for _, rate := range cfg.Rates {
					cells = append(cells, faultCell{bench, mc.name, mc.m, mech, rate})
				}
			}
		}
	}

	pool := cfg.pool("fault-study")
	if cfg.JobTimeout > 0 {
		pool.Timeout = cfg.JobTimeout
	}
	rows, failed := runner.MapPartial(ctx, pool, len(cells), func(ctx context.Context, i int) (FaultStudyRow, error) {
		row, err := cfg.runCell(cells[i])
		if err == nil {
			cfg.logf("fault-study %s/%s/%s rate %.2f: sim %.3f, static %.3f, online %.3f",
				row.Benchmark, row.Topology, row.Mechanism, row.Rate,
				row.Similarity, row.StaticSlowdown, row.OnlineSlowdown)
		}
		return row, err
	})
	if err := ctx.Err(); err != nil {
		return nil, failed, err
	}
	if len(failed) == len(cells) && len(cells) > 0 {
		return nil, failed, fmt.Errorf("harness: every fault-study cell failed; first: %w", failed[0])
	}
	// Drop the zero-value slots of failed cells, keeping grid order.
	out := make([]FaultStudyRow, 0, len(rows))
	bad := map[int]bool{}
	for _, f := range failed {
		bad[f.Index] = true
	}
	for i, r := range rows {
		if !bad[i] {
			out = append(out, r)
		}
	}
	return out, failed, nil
}

// runCell computes one row: clean oracle reference, faulted detection,
// static mapping quality, and the confidence-gated online run against the
// equally-faulted baseline.
func (c FaultStudyConfig) runCell(cell faultCell) (FaultStudyRow, error) {
	opt := c.Options
	opt.Machine = cell.machine
	w, err := c.workload(cell.bench, c.Seed)
	if err != nil {
		return FaultStudyRow{}, err
	}
	identity := make([]int, cell.machine.NumCores())
	for i := range identity {
		identity[i] = i
	}

	// Clean full-trace reference pattern.
	oracle, err := core.Detect(w, core.Oracle, opt)
	if err != nil {
		return FaultStudyRow{}, fmt.Errorf("%s/%s oracle: %w", cell.bench, cell.topoName, err)
	}

	// Detection under fault.
	fopt := opt
	fopt.Faults = c.Plan.Scaled(cell.rate)
	det, err := core.Detect(w, cell.mech, fopt)
	if err != nil {
		return FaultStudyRow{}, fmt.Errorf("%s/%s %s detect: %w", cell.bench, cell.topoName, cell.mech, err)
	}
	injections := det.FaultStats.Total()

	// Static mapping quality: build from the faulted matrix, evaluate
	// fault-free against the fault-free identity baseline.
	place, err := core.BuildMapping(det.Matrix, cell.machine)
	if err != nil {
		return FaultStudyRow{}, fmt.Errorf("%s/%s %s map: %w", cell.bench, cell.topoName, cell.mech, err)
	}
	mapped, err := core.Evaluate(w, place, opt)
	if err != nil {
		return FaultStudyRow{}, err
	}
	base, err := core.Evaluate(w, identity, opt)
	if err != nil {
		return FaultStudyRow{}, err
	}

	// Graceful degradation: the confidence-gated dynamic run and the
	// static identity baseline, both under the same fault plan.
	dynOpt := fopt
	if dynOpt.MigrationInterval == 0 {
		dynOpt.MigrationInterval = 200_000
	}
	dyn, err := core.EvaluateWithDynamicMigration(w, cell.mech, dynOpt)
	if err != nil {
		return FaultStudyRow{}, fmt.Errorf("%s/%s %s dynamic: %w", cell.bench, cell.topoName, cell.mech, err)
	}
	injections += dyn.FaultStats.Total()
	// The baseline holds the identity placement but carries the same live
	// detector and the same faults, so the ratio isolates what the
	// controller's *decisions* cost — not the mechanism's fixed detection
	// overhead, which both runs pay identically.
	faultedBase, err := core.EvaluateWithDetection(w, identity, cell.mech, fopt)
	if err != nil {
		return FaultStudyRow{}, err
	}

	return FaultStudyRow{
		Benchmark:      cell.bench,
		Topology:       cell.topoName,
		Mechanism:      cell.mech,
		Rate:           cell.rate,
		Similarity:     det.Matrix.Similarity(oracle.Matrix),
		StaticSlowdown: ratio(mapped.Cycles, base.Cycles),
		OnlineSlowdown: ratio(dyn.Result.Cycles, faultedBase.Result.Cycles),
		Fallbacks:      dyn.Fallbacks,
		Confidence:     dyn.FinalConfidence,
		Injections:     injections,
	}, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// RenderFaultStudy prints the degradation curve as text.
func RenderFaultStudy(rows []FaultStudyRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fault-injection degradation study")
	fmt.Fprintln(&b, "similarity: faulted matrix vs clean oracle (1 = perfect detection)")
	fmt.Fprintln(&b, "static: cycles under the faulted-matrix mapping / identity baseline (fault-free runs)")
	fmt.Fprintf(&b, "online: confidence-gated dynamic run / identity baseline (same faults; pass while < %.2f)\n", 1+FaultNoiseThreshold)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tmachine\tmech\trate\tsimilarity\tstatic\tonline\tfallbacks\tconfidence\tinjections\tverdict")
	for _, r := range rows {
		verdict := "ok"
		if r.OnlineSlowdown >= 1+FaultNoiseThreshold {
			verdict = "DEGRADED"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2f\t%.3f\t%.3f\t%.3f\t%d\t%.3f\t%d\t%s\n",
			r.Benchmark, r.Topology, r.Mechanism, r.Rate,
			r.Similarity, r.StaticSlowdown, r.OnlineSlowdown,
			r.Fallbacks, r.Confidence, r.Injections, verdict)
	}
	w.Flush()
	return b.String()
}

// WriteFaultStudyCSV exports the degradation curve as CSV.
func WriteFaultStudyCSV(w io.Writer, rows []FaultStudyRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "machine", "mechanism", "rate",
		"similarity", "static_slowdown", "online_slowdown",
		"fallbacks", "final_confidence", "injections",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range rows {
		rec := []string{
			r.Benchmark, r.Topology, string(r.Mechanism), f(r.Rate),
			f(r.Similarity), f(r.StaticSlowdown), f(r.OnlineSlowdown),
			strconv.Itoa(r.Fallbacks), f(r.Confidence),
			strconv.FormatUint(r.Injections, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
