package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"tlbmap/internal/comm"
	"tlbmap/internal/mem"
	"tlbmap/internal/tlb"
)

// Table1 renders the mechanism comparison of Table I, combining the paper's
// design parameters with the cycle costs measured for the two detection
// routines (Section VI-C).
func Table1(cfg Config) string {
	cfg = cfg.withDefaults()
	opt := cfg.Options
	sample := opt.SampleEvery
	if sample == 0 {
		sample = 10
	}
	interval := opt.ScanInterval
	if interval == 0 {
		interval = 100_000
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\tSoftware-managed TLB\tHardware-managed TLB")
	fmt.Fprintln(w, "Example architecture\tSPARC, MIPS\tIntel x86/x86-64")
	fmt.Fprintf(w, "Trigger\tevery n TLB misses\tevery n cycles\n")
	fmt.Fprintf(w, "Value for n in this run\t%d\t%d\n", sample, interval)
	fmt.Fprintln(w, "Search scope\tpairs with missing TLB\tall pairs of TLBs")
	fmt.Fprintln(w, "Complexity (set-assoc.)\tTheta(P)\tTheta(P^2*S)")
	fmt.Fprintf(w, "Routine cost (cycles)\t%d\t%d\n", comm.SMSearchCycles, comm.HMScanCycles)
	fmt.Fprintln(w, "Hardware modification\tnone\tTLB-read instruction")
	w.Flush()
	return b.String()
}

// Table2 renders the active cache configuration (Table II).
func Table2(cfg Config) string {
	cfg = cfg.withDefaults()
	l1 := cfg.Options.L1
	if l1 == (mem.CacheConfig{}) {
		l1 = mem.DefaultL1Config
	}
	l2 := cfg.Options.L2
	if l2 == (mem.CacheConfig{}) {
		l2 = mem.DefaultL2Config
	}
	tcfg := cfg.Options.TLB
	if tcfg == (tlb.Config{}) {
		tcfg = tlb.DefaultConfig
	}
	machine := cfg.Machine()
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Parameter\tL1 Cache\tL2 Cache")
	fmt.Fprintf(w, "Size\t%d KiB\t%d MiB\n", l1.SizeBytes>>10, l2.SizeBytes>>20)
	fmt.Fprintf(w, "Number\t%d (private, data)\t%d (shared by 2 cores)\n",
		machine.NumCores(), machine.NumCores()/2)
	fmt.Fprintf(w, "Line size\t%d bytes\t%d bytes\n", mem.LineSize, mem.LineSize)
	fmt.Fprintf(w, "Associativity\t%d ways\t%d ways\n", l1.Ways, l2.Ways)
	fmt.Fprintf(w, "Latency\t%d cycles\t%d cycles\n", l1.Latency, l2.Latency)
	fmt.Fprintln(w, "Policy\twrite-through\twrite-back, MESI")
	fmt.Fprintf(w, "TLB\t%d entries, %d-way\t\n", tcfg.Entries, tcfg.Ways)
	fmt.Fprintf(w, "Memory latency\t%d cycles\t\n", mem.MemLatency)
	w.Flush()
	return b.String()
}

// RenderPatterns renders the detected communication matrices of one
// mechanism as ASCII heat maps — the textual Figures 4 (mech = "SM") and 5
// (mech = "HM"); "oracle" renders the ground-truth reference.
func RenderPatterns(results []PatternResult, mech string) string {
	var b strings.Builder
	for _, r := range results {
		var m *comm.Matrix
		switch mech {
		case "SM":
			m = r.SM.Matrix
		case "HM":
			m = r.HM.Matrix
		default:
			m = r.Oracle.Matrix
		}
		n := 8
		if m != nil {
			n = m.N()
		}
		m = matrixOrEmpty(m, n)
		fmt.Fprintf(&b, "%s (%s, expected: %s, similarity to oracle: SM %.3f / HM %.3f)\n",
			r.Name, mech, r.Expected, r.SMSimilarity(), r.HMSimilarity())
		b.WriteString(m.Heatmap())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure renders one of Figures 6-9 as a normalized table. metric is
// "time" (Fig. 6), "inv" (Fig. 7), "snoop" (Fig. 8) or "l2miss" (Fig. 9).
func RenderFigure(results []PerfResult, metric string) string {
	titles := map[string]string{
		"time":   "Figure 6: execution time (normalized to OS)",
		"inv":    "Figure 7: cache line invalidations (normalized to OS)",
		"snoop":  "Figure 8: snoop transactions (normalized to OS)",
		"l2miss": "Figure 9: L2 cache misses (normalized to OS)",
	}
	var b strings.Builder
	fmt.Fprintln(&b, titles[metric])
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tOS\tSM\tHM")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t1.000\t%.3f\t%.3f\n",
			r.Name, r.Normalized(SMLabel, metric), r.Normalized(HMLabel, metric))
	}
	w.Flush()
	return b.String()
}

// RenderTable3 renders the SM statistics table (Table III).
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table III: statistics for the software-managed TLB")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tTLB miss rate\tmisses sampled\tsearches\ttotal overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f%%\t%.3f%%\t%d\t%.4f%%\n",
			r.Name, r.MissRate*100, r.SampledFraction*100, r.Searches, r.Overhead*100)
	}
	w.Flush()
	return b.String()
}

// RenderHMOverhead renders the HM overhead numbers of Section VI-C.
func RenderHMOverhead(rows []HMOverheadRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "HM mechanism overhead (Section VI-C)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tscans\tmeasured overhead\tat paper's 10M-cycle interval")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.4f%% (every %d cycles)\t%.4f%%\n",
			r.Name, r.Scans, r.Overhead*100, r.Interval, r.PaperIntervalOverhead*100)
	}
	w.Flush()
	return b.String()
}

// RenderTable4 renders the absolute rates of Table IV: execution time and
// invalidations, snoop transactions and L2 misses per second, for each of
// the three placements.
func RenderTable4(results []PerfResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table IV: execution time and event rates per second")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Parameter\tMapping")
	for _, r := range results {
		fmt.Fprintf(w, "\t%s", r.Name)
	}
	fmt.Fprintln(w)
	rows := []struct {
		title string
		get   func(*MappingStats) float64
		fmtV  string
	}{
		{"Time (s)", func(m *MappingStats) float64 { return m.Time.Mean() }, "%.4f"},
		{"Invalidations/s", func(m *MappingStats) float64 { return m.InvPerSec.Mean() }, "%.0f"},
		{"Snoops/s", func(m *MappingStats) float64 { return m.SnoopPerSec.Mean() }, "%.0f"},
		{"L2 misses/s", func(m *MappingStats) float64 { return m.L2MissPerSec.Mean() }, "%.0f"},
	}
	for _, row := range rows {
		for _, label := range []MappingLabel{OSLabel, SMLabel, HMLabel} {
			fmt.Fprintf(w, "%s\t%s", row.title, label)
			for _, r := range results {
				fmt.Fprintf(w, "\t"+row.fmtV, row.get(r.Stats[label]))
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// RenderTable5 renders the relative standard deviations of Table V.
func RenderTable5(results []PerfResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table V: standard deviations (percent of mean)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Parameter\tMapping")
	for _, r := range results {
		fmt.Fprintf(w, "\t%s", r.Name)
	}
	fmt.Fprintln(w)
	rows := []struct {
		title string
		get   func(*MappingStats) float64
	}{
		{"Time", func(m *MappingStats) float64 { return m.Time.RelStdDev() }},
		{"Invalidations", func(m *MappingStats) float64 { return m.Inv.RelStdDev() }},
		{"Snoops", func(m *MappingStats) float64 { return m.Snoop.RelStdDev() }},
		{"L2 misses", func(m *MappingStats) float64 { return m.L2Miss.RelStdDev() }},
	}
	for _, row := range rows {
		for _, label := range []MappingLabel{OSLabel, SMLabel, HMLabel} {
			fmt.Fprintf(w, "%s\t%s", row.title, label)
			for _, r := range results {
				fmt.Fprintf(w, "\t%.2f%%", row.get(r.Stats[label]))
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// RenderStorageCost renders the trace-vs-matrix storage comparison
// (Section II's argument against trace-based detection, measured).
func RenderStorageCost(rows []StorageRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Storage cost: full memory trace vs. communication matrix")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\taccesses\ttrace bytes\tmatrix bytes\tratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0fx\n",
			r.Name, r.Accesses, r.TraceBytes, r.MatrixBytes, r.Ratio())
	}
	w.Flush()
	return b.String()
}
