package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/core"
)

var update = flag.Bool("update", false, "rewrite the render/export golden files")

// The fixtures below are fixed, hand-built results. They must never
// change: the committed goldens pin the exact text and CSV layouts the
// tables, figures and export files are rendered in, so any diff is a
// deliberate format change (re-bless with -update) or a regression.

// fixtureMatrix builds a deterministic n x n communication pattern with a
// strong nearest-neighbour band, one distant pair, and zero cells.
func fixtureMatrix(n int, scale uint64) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 0; i+1 < n; i++ {
		m.Add(i, i+1, scale*uint64(i+1))
	}
	m.Add(0, n-1, scale/2+1)
	return m
}

func fixturePatterns() []PatternResult {
	det := func(m *comm.Matrix) *core.Detection { return &core.Detection{Matrix: m} }
	return []PatternResult{
		{
			Name:     "SP",
			Expected: "nearest-neighbour",
			SM:       det(fixtureMatrix(8, 1000)),
			HM:       det(fixtureMatrix(8, 900)),
			Oracle:   det(fixtureMatrix(8, 1100)),
		},
		{
			Name:     "EP",
			Expected: "none",
			SM:       det(comm.NewMatrix(8)),
			HM:       det(comm.NewMatrix(8)),
			Oracle:   det(comm.NewMatrix(8)),
		},
	}
}

// fixtureStats folds a fixed run sequence into a MappingStats through the
// same record path production uses.
func fixtureStats(base uint64) *MappingStats {
	st := &MappingStats{}
	for rep := uint64(0); rep < 3; rep++ {
		st.record(core.RunMetrics{
			Cycles:        base * (10 + rep),
			Invalidations: base/2 + 13*rep,
			Snoops:        base + 29*rep,
			L2Misses:      base/4 + 7*rep,
			InterChip:     base / 8,
		})
	}
	return st
}

func fixturePerf() []PerfResult {
	return []PerfResult{
		{
			Name: "CG",
			Stats: map[MappingLabel]*MappingStats{
				OSLabel: fixtureStats(2_000_000),
				SMLabel: fixtureStats(1_400_000),
				HMLabel: fixtureStats(1_500_000),
			},
			PlacementSM: []int{0, 1, 2, 3, 4, 5, 6, 7},
			PlacementHM: []int{1, 0, 3, 2, 5, 4, 7, 6},
		},
		{
			Name: "EP",
			Stats: map[MappingLabel]*MappingStats{
				OSLabel: fixtureStats(1_000_000),
				SMLabel: fixtureStats(1_000_000),
				HMLabel: fixtureStats(1_001_000),
			},
		},
	}
}

func fixtureTable3() []Table3Row {
	return []Table3Row{
		{Name: "CG", MissRate: 0.0123, SampledFraction: 0.101, Overhead: 0.00042, Searches: 1234},
		{Name: "EP", MissRate: 0.0004, SampledFraction: 0.098, Overhead: 0.00001, Searches: 17},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test ./internal/harness -update` to create it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

func TestRenderGolden(t *testing.T) {
	patterns := fixturePatterns()
	perf := fixturePerf()
	for name, got := range map[string]string{
		"table1.golden":          Table1(Config{}),
		"table2.golden":          Table2(Config{}),
		"patterns_sm.golden":     RenderPatterns(patterns, "SM"),
		"patterns_oracle.golden": RenderPatterns(patterns, "oracle"),
		"figure_time.golden":     RenderFigure(perf, "time"),
		"figure_inv.golden":      RenderFigure(perf, "inv"),
		"figure_snoop.golden":    RenderFigure(perf, "snoop"),
		"figure_l2miss.golden":   RenderFigure(perf, "l2miss"),
		"table3.golden":          RenderTable3(fixtureTable3()),
		"table4.golden":          RenderTable4(perf),
		"table5.golden":          RenderTable5(perf),
		"hm_overhead.golden": RenderHMOverhead([]HMOverheadRow{
			{Name: "CG", Interval: 100_000, Scans: 321, Overhead: 0.0031, PaperIntervalOverhead: 0.000031},
		}),
		"storage.golden": RenderStorageCost([]StorageRow{
			{Name: "CG", Accesses: 4_000_000, TraceBytes: 48_000_000, MatrixBytes: 512},
			{Name: "EP", Accesses: 1_000_000, TraceBytes: 12_000_000, MatrixBytes: 512},
		}),
	} {
		t.Run(name, func(t *testing.T) {
			checkGolden(t, name, []byte(got))
		})
	}
}

func TestExportGolden(t *testing.T) {
	t.Run("performance.csv.golden", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WritePerformanceCSV(&buf, fixturePerf()); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "performance.csv.golden", buf.Bytes())
	})
	t.Run("patterns.csv.golden", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WritePatternsCSV(&buf, fixturePatterns()); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "patterns.csv.golden", buf.Bytes())
	})
	t.Run("table3.csv.golden", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteTable3CSV(&buf, fixtureTable3()); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "table3.csv.golden", buf.Bytes())
	})
}
