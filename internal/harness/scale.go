package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/npb"
	"tlbmap/internal/runner"
	"tlbmap/internal/topology"
)

// ScaleStudyConfig parameterizes the manycore scale-up study: detection
// throughput and mapping quality as the core count grows past the sizes
// the paper's 8-core evaluation used.
type ScaleStudyConfig struct {
	Config
	// Cores is the machine-size sweep; every entry must be a valid
	// topology.Manycore count (power-of-two multiple of 32). Nil selects
	// {64, 256}.
	Cores []int
	// Mappers names the mapping algorithms to time and score per cell:
	// "greedy", "multilevel", "auto" or "edmonds". Nil selects
	// {"greedy", "multilevel", "auto"}. Edmonds is skipped (with a
	// progress note) above mapping.DefaultAutoThreshold cores — O(T³)
	// per hierarchy level is exactly what the study exists to avoid.
	Mappers []string
	// RowBudget, when positive, caps each sparse matrix row to its
	// RowBudget heaviest partners before mapping (top-k sketching),
	// modelling bounded detector memory at scale. 0 maps the exact
	// matrix.
	RowBudget int
	// JobTimeout bounds each study cell (0 = no limit).
	JobTimeout time.Duration
}

func (c ScaleStudyConfig) withScaleDefaults() ScaleStudyConfig {
	if c.Options.SampleEvery == 0 {
		c.Options.SampleEvery = 1
	}
	if len(c.Benchmarks) == 0 {
		// Two contrasting shapes are enough for the sweep: CG's homogeneous
		// pattern and LU's decomposition-with-distant-partner pattern.
		c.Benchmarks = []string{"CG", "LU"}
	}
	c.Config = c.Config.withDefaults()
	if len(c.Cores) == 0 {
		c.Cores = []int{64, 256}
	}
	if len(c.Mappers) == 0 {
		c.Mappers = []string{"greedy", "multilevel", "auto"}
	}
	return c
}

// ScaleRow is one (benchmark, core count, mapper) cell of the scale study.
type ScaleRow struct {
	Benchmark string
	Cores     int
	// EventsPerSec is the detection run's simulation throughput:
	// simulated accesses per wall-clock second.
	EventsPerSec float64
	// NNZ and Sparse describe the detected matrix: communicating pairs
	// and whether the hybrid chose the sparse representation.
	NNZ    int
	Sparse bool
	// Mapper names the algorithm of this row.
	Mapper string
	// MapMillis is the wall-clock mapping time.
	MapMillis float64
	// CostRatio is Cost(mapped) / Cost(identity) on the machine's
	// latency hierarchy — below 1 the mapper beat the identity
	// placement, and lower is better.
	CostRatio float64
}

// scaleCell is one detection job; all of its mappers share the run.
type scaleCell struct {
	bench string
	cores int
}

// scaleMapper resolves a CLI mapper name.
func scaleMapper(name string) (mapping.Algorithm, error) {
	switch name {
	case "edmonds":
		return mapping.NewEdmonds(), nil
	case "greedy":
		return mapping.NewGreedyMatch(), nil
	case "multilevel":
		return mapping.NewMultilevel(), nil
	case "auto":
		return mapping.NewAuto(), nil
	default:
		return nil, fmt.Errorf("harness: unknown mapper %q (have edmonds, greedy, multilevel, auto)", name)
	}
}

// RunScaleStudy sweeps core counts across benchmarks on the canonical
// manycore topology: per cell it runs SM detection with one thread per
// core, reports detection throughput and matrix shape, then times and
// scores every requested mapper on the detected matrix. Cells fan out on
// the hardened runner like every other study.
func RunScaleStudy(ctx context.Context, cfg ScaleStudyConfig) ([]ScaleRow, []*runner.JobError, error) {
	cfg = cfg.withScaleDefaults()
	for _, name := range cfg.Mappers {
		if _, err := scaleMapper(name); err != nil {
			return nil, nil, err
		}
	}
	var cells []scaleCell
	for _, bench := range cfg.Benchmarks {
		for _, cores := range cfg.Cores {
			cells = append(cells, scaleCell{bench, cores})
		}
	}

	pool := cfg.pool("scale-study")
	if cfg.JobTimeout > 0 {
		pool.Timeout = cfg.JobTimeout
	}
	rows, failed := runner.MapPartial(ctx, pool, len(cells), func(ctx context.Context, i int) ([]ScaleRow, error) {
		out, err := cfg.runCell(cells[i])
		if err == nil {
			for _, r := range out {
				cfg.logf("scale-study %s/%d %s: %.0f events/sec, map %.1f ms, ratio %.3f",
					r.Benchmark, r.Cores, r.Mapper, r.EventsPerSec, r.MapMillis, r.CostRatio)
			}
		}
		return out, err
	})
	if err := ctx.Err(); err != nil {
		return nil, failed, err
	}
	if len(failed) == len(cells) && len(cells) > 0 {
		return nil, failed, fmt.Errorf("harness: every scale-study cell failed; first: %w", failed[0])
	}
	bad := map[int]bool{}
	for _, f := range failed {
		bad[f.Index] = true
	}
	var out []ScaleRow
	for i, cellRows := range rows {
		if !bad[i] {
			out = append(out, cellRows...)
		}
	}
	return out, failed, nil
}

// runCell runs one (benchmark, cores) detection and scores every mapper.
func (c ScaleStudyConfig) runCell(cell scaleCell) ([]ScaleRow, error) {
	machine := topology.Manycore(cell.cores)
	b, err := npb.Get(cell.bench)
	if err != nil {
		return nil, err
	}
	w := core.FromNPB(b, npb.Params{
		Threads: cell.cores,
		Class:   c.Class,
		Seed:    c.jobSeed(cell.bench, "scale", cell.cores),
	})
	opt := c.Options
	opt.Machine = machine

	start := time.Now()
	det, err := core.Detect(w, core.SM, opt)
	if err != nil {
		return nil, fmt.Errorf("%s/%d detect: %w", cell.bench, cell.cores, err)
	}
	wall := time.Since(start).Seconds()
	eventsPerSec := 0.0
	if wall > 0 {
		eventsPerSec = float64(det.Result.Accesses) / wall
	}

	m := det.Matrix
	if c.RowBudget > 0 && m.IsSparse() {
		m = m.Clone()
		m.SetRowBudget(c.RowBudget)
	}
	identity := make([]int, cell.cores)
	for i := range identity {
		identity[i] = i
	}
	idCost := mapping.Cost(m, machine, identity)

	var rows []ScaleRow
	for _, name := range c.Mappers {
		if name == "edmonds" && cell.cores > mapping.DefaultAutoThreshold {
			c.logf("scale-study %s/%d: skipping edmonds above %d cores (cubic matching)",
				cell.bench, cell.cores, mapping.DefaultAutoThreshold)
			continue
		}
		algo, err := scaleMapper(name)
		if err != nil {
			return nil, err
		}
		mapStart := time.Now()
		place, err := algo.Map(m, machine)
		mapWall := time.Since(mapStart)
		if err != nil {
			return nil, fmt.Errorf("%s/%d %s: %w", cell.bench, cell.cores, name, err)
		}
		ratio := 1.0
		if idCost > 0 {
			ratio = float64(mapping.Cost(m, machine, place)) / float64(idCost)
		}
		rows = append(rows, ScaleRow{
			Benchmark:    cell.bench,
			Cores:        cell.cores,
			EventsPerSec: eventsPerSec,
			NNZ:          m.NNZ(),
			Sparse:       m.IsSparse(),
			Mapper:       name,
			MapMillis:    float64(mapWall.Microseconds()) / 1000,
			CostRatio:    ratio,
		})
	}
	return rows, nil
}

// RenderScaleStudy prints the scale sweep as text.
func RenderScaleStudy(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Manycore scale-up study (SM detection, one thread per core)")
	fmt.Fprintln(&b, "events/sec: simulated accesses per wall-clock second of the detection run")
	fmt.Fprintln(&b, "ratio: mapped communication cost / identity placement cost (lower is better)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tcores\tevents/sec\tnnz\tmatrix\tmapper\tmap-ms\tratio")
	for _, r := range rows {
		repr := "dense"
		if r.Sparse {
			repr = "sparse"
		}
		fmt.Fprintf(w, "%s\t%d\t%.3g\t%d\t%s\t%s\t%.1f\t%.3f\n",
			r.Benchmark, r.Cores, r.EventsPerSec, r.NNZ, repr, r.Mapper, r.MapMillis, r.CostRatio)
	}
	w.Flush()
	return b.String()
}

// WriteScaleStudyCSV exports the scale sweep as CSV.
func WriteScaleStudyCSV(w io.Writer, rows []ScaleRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "cores", "events_per_sec", "nnz", "sparse",
		"mapper", "map_ms", "cost_ratio",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range rows {
		rec := []string{
			r.Benchmark, strconv.Itoa(r.Cores), f(r.EventsPerSec),
			strconv.Itoa(r.NNZ), strconv.FormatBool(r.Sparse),
			r.Mapper, f(r.MapMillis), f(r.CostRatio),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
