package harness

import (
	"strings"
	"testing"

	"tlbmap/internal/npb"
)

// tinyConfig keeps harness tests fast: class S, two benchmarks, two reps.
func tinyConfig() Config {
	return Config{
		Class:       npb.ClassS,
		Benchmarks:  []string{"SP", "EP"},
		Repetitions: 2,
		Seed:        3,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Class != npb.ClassW {
		t.Error("default class")
	}
	if len(c.Benchmarks) != 9 {
		t.Errorf("default benchmarks = %v", c.Benchmarks)
	}
	if c.Repetitions != 10 || c.Seed != 1 {
		t.Error("default reps/seed")
	}
	if c.Machine() == nil || c.Machine().NumCores() != 8 {
		t.Error("default machine")
	}
}

func TestConfigSortsBenchmarks(t *testing.T) {
	c := Config{Benchmarks: []string{"SP", "BT", "MG"}}.withDefaults()
	if c.Benchmarks[0] != "BT" || c.Benchmarks[2] != "SP" {
		t.Errorf("benchmarks not sorted: %v", c.Benchmarks)
	}
}

func TestDetectPatternsTiny(t *testing.T) {
	var progress []string
	cfg := tinyConfig()
	cfg.Progress = func(f string, a ...any) { progress = append(progress, f) }
	results, err := DetectPatterns(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.SM.Matrix == nil || r.HM.Matrix == nil || r.Oracle.Matrix == nil {
			t.Errorf("%s: missing matrices", r.Name)
		}
		if r.Expected == "" {
			t.Errorf("%s: missing expected pattern", r.Name)
		}
	}
	// EP comes first (sorted).
	if results[0].Name != "EP" || results[1].Name != "SP" {
		t.Errorf("order: %v, %v", results[0].Name, results[1].Name)
	}
	if len(progress) == 0 {
		t.Error("progress callback never invoked")
	}
}

func TestDetectPatternsUnknownBenchmark(t *testing.T) {
	cfg := tinyConfig()
	cfg.Benchmarks = []string{"NOPE"}
	if _, err := DetectPatterns(cfg); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunPerformanceTiny(t *testing.T) {
	results, err := RunPerformance(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		for _, label := range []MappingLabel{OSLabel, SMLabel, HMLabel} {
			st := r.Stats[label]
			if st == nil || st.Time.N() != 2 {
				t.Fatalf("%s/%s: missing stats", r.Name, label)
			}
			if st.Time.Mean() <= 0 {
				t.Errorf("%s/%s: non-positive time", r.Name, label)
			}
		}
		if len(r.PlacementSM) != 8 || len(r.PlacementHM) != 8 {
			t.Errorf("%s: placements missing", r.Name)
		}
		// Normalization: OS to itself is 1.
		if n := r.Normalized(OSLabel, "time"); n != 1 {
			t.Errorf("%s: OS normalized to %v", r.Name, n)
		}
		for _, metric := range []string{"time", "inv", "snoop", "l2miss"} {
			v := r.Normalized(SMLabel, metric)
			if v < 0 {
				t.Errorf("%s: %s normalized = %v", r.Name, metric, v)
			}
		}
		// An unknown metric picks 0 for both sides; Normalize(0,0) is 1
		// ("no change") by design.
		if r.Normalized(SMLabel, "bogus") != 1 {
			t.Error("unknown metric should normalize to 1 (0/0)")
		}
	}
}

func TestRunTable3Tiny(t *testing.T) {
	rows, err := RunTable3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MissRate < 0 || r.MissRate > 1 || r.Overhead < 0 {
			t.Errorf("%s: implausible row %+v", r.Name, r)
		}
	}
}

func TestRunHMOverheadTiny(t *testing.T) {
	cfg := tinyConfig()
	cfg.Options.ScanInterval = 20_000
	rows, err := RunHMOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("rows missing")
	}
	for _, r := range rows {
		if r.Overhead < 0 || r.Overhead > 1 {
			t.Errorf("%s overhead = %v", r.Name, r.Overhead)
		}
	}
}

func TestRenderers(t *testing.T) {
	cfg := tinyConfig()
	t1 := Table1(cfg)
	for _, want := range []string{"Theta(P)", "231", "84297", "TLB-read"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t2 := Table2(cfg)
	for _, want := range []string{"32 KiB", "6 MiB", "MESI", "write-through", "64 entries"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}

	patterns, err := DetectPatterns(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []string{"SM", "HM", "oracle"} {
		out := RenderPatterns(patterns, mech)
		if !strings.Contains(out, "SP") || !strings.Contains(out, "EP") {
			t.Errorf("RenderPatterns(%s) missing benchmarks", mech)
		}
	}

	perf, err := RunPerformance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"time", "inv", "snoop", "l2miss"} {
		out := RenderFigure(perf, metric)
		if !strings.Contains(out, "SP") || !strings.Contains(out, "OS") {
			t.Errorf("RenderFigure(%s) incomplete:\n%s", metric, out)
		}
	}
	if out := RenderTable4(perf); !strings.Contains(out, "Invalidations/s") {
		t.Errorf("Table4 incomplete:\n%s", out)
	}
	if out := RenderTable5(perf); !strings.Contains(out, "%") {
		t.Errorf("Table5 incomplete:\n%s", out)
	}

	rows3, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable3(rows3); !strings.Contains(out, "TLB miss rate") {
		t.Errorf("Table3 incomplete:\n%s", out)
	}
	rowsHM, err := RunHMOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderHMOverhead(rowsHM); !strings.Contains(out, "scans") {
		t.Errorf("HM overhead render incomplete:\n%s", out)
	}
}

func TestPatternSimilarityAccessors(t *testing.T) {
	cfg := tinyConfig()
	cfg.Benchmarks = []string{"SP"}
	results, err := DetectPatterns(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if s := r.SMSimilarity(); s < -1 || s > 1 {
		t.Errorf("SM similarity = %v", s)
	}
	if s := r.HMSimilarity(); s < -1 || s > 1 {
		t.Errorf("HM similarity = %v", s)
	}
}

func TestCompareTiny(t *testing.T) {
	cfg := tinyConfig() // SP + EP at class S
	rows, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TimePaper == 0 || r.InvPaper == 0 {
			t.Errorf("%s: paper values missing", r.Name)
		}
		if r.TimeOurs <= 0 {
			t.Errorf("%s: measured values missing", r.Name)
		}
	}
	out := RenderCompare(rows)
	for _, want := range []string{"SP", "EP", "champions", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCompareRejectsSplash(t *testing.T) {
	cfg := tinyConfig()
	cfg.Suite = "splash"
	cfg.Benchmarks = nil
	if _, err := Compare(cfg); err == nil {
		t.Error("compare accepted the splash suite")
	}
}
