package harness

import (
	"math"
	"strings"
	"testing"

	"tlbmap/internal/core"
	"tlbmap/internal/npb"
)

// TestRunPerformanceEdgeCases drives the harness through the degenerate
// configurations a CLI user can reach: they must yield a clear error or
// sane output, never a panic or NaN.
func TestRunPerformanceEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the expected error; "" = must succeed
		check   func(t *testing.T, results []PerfResult)
	}{
		{
			name: "single repetition leaves std-dev zero, not NaN",
			cfg:  Config{Class: npb.ClassS, Benchmarks: []string{"EP"}, Repetitions: 1},
			check: func(t *testing.T, results []PerfResult) {
				st := results[0].Stats[OSLabel]
				if st.Time.N() != 1 {
					t.Fatalf("reps=1 recorded %d observations", st.Time.N())
				}
				if sd := st.Time.RelStdDev(); sd != 0 || math.IsNaN(sd) {
					t.Errorf("reps=1 rel std dev = %v, want 0", sd)
				}
				if out := RenderTable5(results); strings.Contains(out, "NaN") {
					t.Errorf("Table V contains NaN:\n%s", out)
				}
			},
		},
		{
			name:    "unknown benchmark name is a clear error",
			cfg:     Config{Class: npb.ClassS, Benchmarks: []string{"NOPE"}, Repetitions: 1},
			wantErr: "NOPE",
		},
		{
			name:    "unknown benchmark in a parallel run is the same error",
			cfg:     Config{Class: npb.ClassS, Benchmarks: []string{"BOGUS", "EP"}, Repetitions: 1, Parallel: 4},
			wantErr: "BOGUS",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, err := RunPerformance(tc.cfg)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, results)
		})
	}
}

// TestEmptyBenchSubsetDefaultsToFullSuite: an empty -bench subset selects
// the whole suite rather than running nothing or erroring.
func TestEmptyBenchSubsetDefaultsToFullSuite(t *testing.T) {
	cfg := Config{Class: npb.ClassS, Benchmarks: []string{}, Repetitions: 1}.withDefaults()
	if len(cfg.Benchmarks) != len(npb.Names()) {
		t.Fatalf("empty subset selected %v", cfg.Benchmarks)
	}
	// And the cheapest per-benchmark driver really produces one row each.
	rows, err := RunTable3(Config{Class: npb.ClassS, Repetitions: 1, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(npb.Names()) {
		t.Fatalf("%d rows for the full suite", len(rows))
	}
}

// TestRecordZeroCycleRun guards the secs > 0 path of MappingStats.record:
// a zero-cycle run must contribute to totals but skip the undefined
// per-second rates, and nothing downstream may divide it into NaN.
func TestRecordZeroCycleRun(t *testing.T) {
	var m MappingStats
	m.record(core.RunMetrics{Cycles: 0, Invalidations: 5, Snoops: 3, L2Misses: 2})
	if m.Time.N() != 1 || m.Inv.N() != 1 {
		t.Fatalf("totals not recorded: time n=%d inv n=%d", m.Time.N(), m.Inv.N())
	}
	if m.InvPerSec.N() != 0 || m.SnoopPerSec.N() != 0 || m.L2MissPerSec.N() != 0 {
		t.Error("per-second rates recorded for a zero-cycle run")
	}
	pr := PerfResult{
		Name:  "Z",
		Stats: map[MappingLabel]*MappingStats{OSLabel: &m, SMLabel: &m, HMLabel: &m},
	}
	// Normalized against a zero-time baseline: 0/0 is defined as 1.
	if v := pr.Normalized(SMLabel, "time"); v != 1 {
		t.Errorf("zero-over-zero normalized to %v", v)
	}
	for _, out := range []string{RenderTable4([]PerfResult{pr}), RenderTable5([]PerfResult{pr})} {
		if strings.Contains(out, "NaN") {
			t.Errorf("render contains NaN:\n%s", out)
		}
	}
}
