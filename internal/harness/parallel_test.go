package harness

import (
	"reflect"
	"sync"
	"testing"

	"tlbmap/internal/npb"
)

// TestRunPerformanceParallelDeterminism is the contract the parallel
// runner is built on: the same config must produce deeply equal PerfResult
// tables — and byte-identical renderings — at every worker count.
func TestRunPerformanceParallelDeterminism(t *testing.T) {
	base := Config{
		Class:       npb.ClassS,
		Benchmarks:  []string{"EP", "SP"},
		Repetitions: 4,
		Seed:        7,
	}
	want, err := RunPerformance(base)
	if err != nil {
		t.Fatal(err)
	}
	wantT4, wantT5 := RenderTable4(want), RenderTable5(want)
	for _, workers := range []int{2, 4, 8} {
		cfg := base
		cfg.Parallel = workers
		got, err := RunPerformance(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: PerfResults differ from sequential run", workers)
		}
		if g := RenderTable4(got); g != wantT4 {
			t.Errorf("workers=%d: Table IV differs:\n%s\nvs sequential:\n%s", workers, g, wantT4)
		}
		if g := RenderTable5(got); g != wantT5 {
			t.Errorf("workers=%d: Table V differs:\n%s\nvs sequential:\n%s", workers, g, wantT5)
		}
	}
}

// TestDetectPatternsParallelDeterminism covers the detection-only path
// (Figures 4/5) the same way: matrices must be identical at any width.
func TestDetectPatternsParallelDeterminism(t *testing.T) {
	base := Config{Class: npb.ClassS, Benchmarks: []string{"CG", "EP", "SP"}, Seed: 5}
	want, err := DetectPatterns(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Parallel = 4
	got, err := DetectPatterns(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("result %d: %s, want %s (order not preserved)", i, got[i].Name, want[i].Name)
		}
		// Cell-exact comparison (Similarity is a correlation and degenerates
		// to 0 on constant matrices like EP's uniform pattern).
		if got[i].SM.Matrix.String() != want[i].SM.Matrix.String() ||
			got[i].HM.Matrix.String() != want[i].HM.Matrix.String() {
			t.Errorf("%s: parallel matrices differ from sequential", want[i].Name)
		}
	}
}

// TestParallelProgressReportsJobs verifies the runner's progress feed
// reaches the harness Progress callback from a parallel run.
func TestParallelProgressReportsJobs(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	cfg := Config{
		Class:       npb.ClassS,
		Benchmarks:  []string{"EP", "SP"},
		Repetitions: 2,
		Parallel:    4,
		Progress: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, format)
			mu.Unlock()
		},
	}
	if _, err := RunPerformance(cfg); err != nil {
		t.Fatal(err)
	}
	var sawJobs, sawCycles bool
	for _, l := range lines {
		if l == "%s: %d/%d jobs done" {
			sawJobs = true
		}
		if l == "perf %s rep %d: OS %d, SM %d, HM %d cycles" {
			sawCycles = true
		}
	}
	if !sawJobs {
		t.Error("no jobs-done progress lines")
	}
	if !sawCycles {
		t.Error("no per-job cycle progress lines")
	}
}

// TestJobSeedIndependence pins the seeding scheme: streams must differ
// across benchmark, kind and repetition, and must not depend on anything
// but the config seed and the job identity.
func TestJobSeedIndependence(t *testing.T) {
	cfg := Config{Seed: 3}.withDefaults()
	seen := map[int64]string{}
	for _, bench := range []string{"SP", "LU"} {
		for _, kind := range []string{"workload", "jitter", "os"} {
			for rep := 0; rep < 3; rep++ {
				s := cfg.jobSeed(bench, kind, rep)
				if s <= 0 {
					t.Fatalf("jobSeed(%s,%s,%d) = %d", bench, kind, rep, s)
				}
				id := bench + "/" + kind
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision: %s and %s", prev, id)
				}
				seen[s] = id
			}
		}
	}
	if cfg.jobSeed("SP", "os", 1) != cfg.jobSeed("SP", "os", 1) {
		t.Error("jobSeed not deterministic")
	}
}
