package harness

import (
	"bytes"
	"context"
	"testing"

	"tlbmap/internal/npb"
)

// fixtureScaleRows are fixed, hand-built study rows: wall-clock fields
// carry made-up values so the goldens pin layout, not timing.
func fixtureScaleRows() []ScaleRow {
	return []ScaleRow{
		{Benchmark: "CG", Cores: 64, EventsPerSec: 4.2e6, NNZ: 2016, Sparse: false,
			Mapper: "greedy", MapMillis: 0.5, CostRatio: 1.001},
		{Benchmark: "CG", Cores: 64, EventsPerSec: 4.2e6, NNZ: 2016, Sparse: false,
			Mapper: "multilevel", MapMillis: 150.2, CostRatio: 0.997},
		{Benchmark: "LU", Cores: 256, EventsPerSec: 3.1e6, NNZ: 31873, Sparse: true,
			Mapper: "multilevel", MapMillis: 480.9, CostRatio: 0.412},
		{Benchmark: "LU", Cores: 256, EventsPerSec: 3.1e6, NNZ: 31873, Sparse: true,
			Mapper: "auto", MapMillis: 481.3, CostRatio: 0.412},
	}
}

// TestScaleRenderGolden pins the text and CSV layouts of the scale study.
func TestScaleRenderGolden(t *testing.T) {
	rows := fixtureScaleRows()
	checkGolden(t, "scale_study.golden", []byte(RenderScaleStudy(rows)))
	var buf bytes.Buffer
	if err := WriteScaleStudyCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scale_study.csv.golden", buf.Bytes())
}

// TestRunScaleStudySmall runs one real 64-core cell end to end: the sweep
// must produce one row per requested mapper with a valid ratio, and the
// edmonds gate must drop the cubic mapper above the auto threshold.
func TestRunScaleStudySmall(t *testing.T) {
	cfg := ScaleStudyConfig{
		Config: Config{
			Benchmarks: []string{"CG"},
			Class:      npb.ClassS,
			Seed:       3,
		},
		Cores:   []int{64},
		Mappers: []string{"greedy", "multilevel", "auto"},
	}
	rows, failed, err := RunScaleStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("%d cells failed; first: %v", len(failed), failed[0])
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Cores != 64 || r.Benchmark != "CG" {
			t.Fatalf("stray row %+v", r)
		}
		if r.EventsPerSec <= 0 {
			t.Fatalf("%s: no throughput measured", r.Mapper)
		}
		if r.CostRatio <= 0 || r.CostRatio > 2 {
			t.Fatalf("%s: implausible cost ratio %f", r.Mapper, r.CostRatio)
		}
		if r.NNZ == 0 {
			t.Fatalf("%s: empty matrix", r.Mapper)
		}
	}

	// Edmonds is gated above the auto threshold: requesting it at 256
	// cores must yield rows only for the scalable mappers.
	cfg.Cores = []int{256}
	cfg.Mappers = []string{"edmonds", "multilevel"}
	rows, failed, err = RunScaleStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("%d cells failed; first: %v", len(failed), failed[0])
	}
	if len(rows) != 1 || rows[0].Mapper != "multilevel" {
		t.Fatalf("edmonds gate failed: rows %+v", rows)
	}
	if !rows[0].Sparse {
		t.Fatalf("256-core matrix should be sparse")
	}
}

// TestRunScaleStudyRejectsUnknownMapper: a bad mapper name fails fast,
// before any simulation runs.
func TestRunScaleStudyRejectsUnknownMapper(t *testing.T) {
	cfg := ScaleStudyConfig{
		Config:  Config{Benchmarks: []string{"CG"}, Class: npb.ClassS},
		Cores:   []int{64},
		Mappers: []string{"simulated-annealing"},
	}
	if _, _, err := RunScaleStudy(context.Background(), cfg); err == nil {
		t.Fatal("unknown mapper accepted")
	}
}
