package harness

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/metrics"
	"tlbmap/internal/runner"
	"tlbmap/internal/stats"
)

// MappingLabel identifies one of the three placements the evaluation
// compares (the columns of Figures 6-9 and Tables IV/V).
type MappingLabel string

// The three placements of the evaluation.
const (
	OSLabel MappingLabel = "OS"
	SMLabel MappingLabel = "SM"
	HMLabel MappingLabel = "HM"
)

// MappingStats aggregates the repeated performance runs of one (benchmark,
// placement) pair.
type MappingStats struct {
	// Time is the execution time in simulated seconds.
	Time stats.Sample
	// InvPerSec, SnoopPerSec and L2MissPerSec are the event rates of
	// Table IV.
	InvPerSec    stats.Sample
	SnoopPerSec  stats.Sample
	L2MissPerSec stats.Sample
	// Raw event totals per run, for normalized figures.
	Inv    stats.Sample
	Snoop  stats.Sample
	L2Miss stats.Sample
}

// record folds one run's metrics into the aggregate. A zero-cycle run
// contributes to the totals but not to the per-second rates (the rate of a
// zero-length run is undefined, not infinite).
func (m *MappingStats) record(res core.RunMetrics) {
	secs := float64(res.Cycles) / ClockHz
	m.Time.Add(secs)
	m.Inv.AddUint(res.Invalidations)
	m.Snoop.AddUint(res.Snoops)
	m.L2Miss.AddUint(res.L2Misses)
	if secs > 0 {
		m.InvPerSec.Add(float64(res.Invalidations) / secs)
		m.SnoopPerSec.Add(float64(res.Snoops) / secs)
		m.L2MissPerSec.Add(float64(res.L2Misses) / secs)
	}
}

// PerfResult holds the full performance comparison for one benchmark.
type PerfResult struct {
	Name string
	// Stats per placement label.
	Stats map[MappingLabel]*MappingStats
	// PlacementSM/PlacementHM are the thread -> core mappings derived
	// from the SM and HM matrices.
	PlacementSM, PlacementHM []int
}

// Normalized returns metric(label)/metric(OS) using means — one cell of
// Figures 6-9. metric selects the sample: "time", "inv", "snoop", "l2miss".
func (p PerfResult) Normalized(label MappingLabel, metric string) float64 {
	base := p.Stats[OSLabel]
	s := p.Stats[label]
	pick := func(m *MappingStats) float64 {
		switch metric {
		case "time":
			return m.Time.Mean()
		case "inv":
			return m.Inv.Mean()
		case "snoop":
			return m.Snoop.Mean()
		case "l2miss":
			return m.L2Miss.Mean()
		default:
			return 0
		}
	}
	return stats.Normalize(pick(s), pick(base))
}

// perfPrep is the per-benchmark output of the detection phase: the
// PerfResult skeleton plus the SM matrix the OS-scheduler model draws its
// random placements against.
type perfPrep struct {
	name     string
	smMatrix *comm.Matrix
	result   PerfResult
}

// repMetrics is the payload of one (benchmark, repetition) job: the
// metrics of the three placements evaluated on the same workload instance.
type repMetrics struct {
	os, sm, hm core.RunMetrics
}

// RunPerformance reproduces the performance experiments of Section VI-B:
// for every benchmark it detects the communication pattern with SM and HM,
// builds the two mappings, and then runs the benchmark Repetitions times
// under the OS scheduler model (a fresh random placement per run) and under
// each mapping (fixed placement, varying system noise and workload seed).
//
// The work is expressed as two job lists consumed by internal/runner: one
// detection job per benchmark, then one evaluation job per (benchmark,
// repetition) covering all three placements. Every job derives its
// randomness from (Config.Seed, benchmark, repetition) — never from
// execution order — and results are aggregated in job-index order, so the
// output is bit-identical at every Config.Parallel worker count.
func RunPerformance(cfg Config) ([]PerfResult, error) {
	cfg = cfg.withDefaults()
	machine := cfg.Machine()

	// Phase 1: one job per benchmark — detect the pattern once, build the
	// SM and HM mappings the evaluation runs are pinned to.
	preps, err := runner.Map(cfg.pool("detect"), len(cfg.Benchmarks), func(i int) (perfPrep, error) {
		name := cfg.Benchmarks[i]
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return perfPrep{}, err
		}
		sm, hm, _, err := core.DetectAll(w, cfg.Options)
		if err != nil {
			return perfPrep{}, fmt.Errorf("harness: detecting %s: %w", name, err)
		}
		edmonds := mapping.NewEdmonds()
		placeSM, err := edmonds.Map(sm.Matrix, machine)
		if err != nil {
			return perfPrep{}, fmt.Errorf("harness: mapping %s from SM: %w", name, err)
		}
		placeHM, err := edmonds.Map(hm.Matrix, machine)
		if err != nil {
			return perfPrep{}, fmt.Errorf("harness: mapping %s from HM: %w", name, err)
		}
		return perfPrep{
			name:     name,
			smMatrix: sm.Matrix,
			result: PerfResult{
				Name: name,
				Stats: map[MappingLabel]*MappingStats{
					OSLabel: {}, SMLabel: {}, HMLabel: {},
				},
				PlacementSM: placeSM,
				PlacementHM: placeHM,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: one job per (benchmark, repetition). Job j covers
	// benchmark j/reps, repetition j%reps, and evaluates the OS, SM and
	// HM placements on the same per-job workload instance.
	reps := cfg.Repetitions
	runs, err := runner.Map(cfg.pool("perf"), len(preps)*reps, func(j int) (repMetrics, error) {
		p := preps[j/reps]
		rep := j % reps
		seed := cfg.jobSeed(p.name, "workload", rep)
		wr, err := cfg.workload(p.name, seed)
		if err != nil {
			return repMetrics{}, err
		}
		// Compile the per-job workload once and replay it under all three
		// placements: same trace, no per-placement team respawn.
		cw := core.CompileWorkload(wr, cfg.Options)
		opt := cfg.Options
		opt.JitterSeed = cfg.jobSeed(p.name, "jitter", rep)
		osPlace, err := mapping.NewOSScheduler(cfg.jobSeed(p.name, "os", rep)).Map(p.smMatrix, machine)
		if err != nil {
			return repMetrics{}, err
		}
		var out repMetrics
		for _, run := range []struct {
			label MappingLabel
			place []int
			dst   *core.RunMetrics
		}{
			{OSLabel, osPlace, &out.os},
			{SMLabel, p.result.PlacementSM, &out.sm},
			{HMLabel, p.result.PlacementHM, &out.hm},
		} {
			m, err := cw.EvaluateMetrics(run.place, opt)
			if err != nil {
				return repMetrics{}, fmt.Errorf("harness: %s/%s rep %d: %w", p.name, run.label, rep, err)
			}
			*run.dst = m
		}
		cfg.logf("perf %s rep %d: OS %d, SM %d, HM %d cycles",
			p.name, rep, out.os.Cycles, out.sm.Cycles, out.hm.Cycles)
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate in job-index order: benchmark-major, repetition-minor —
	// the same order a sequential loop would produce.
	out := make([]PerfResult, 0, len(preps))
	for bi, p := range preps {
		pr := p.result
		for rep := 0; rep < reps; rep++ {
			r := runs[bi*reps+rep]
			pr.Stats[OSLabel].record(r.os)
			pr.Stats[SMLabel].record(r.sm)
			pr.Stats[HMLabel].record(r.hm)
		}
		cfg.logf("performance %s: time SM %.3f, HM %.3f (normalized to OS)",
			pr.Name, pr.Normalized(SMLabel, "time"), pr.Normalized(HMLabel, "time"))
		out = append(out, pr)
	}
	return out, nil
}

// Table3Row is one row of Table III: the SM mechanism statistics of one
// benchmark.
type Table3Row struct {
	Name string
	// MissRate is the TLB miss rate over all data accesses.
	MissRate float64
	// SampledFraction is the fraction of TLB misses that triggered a
	// search.
	SampledFraction float64
	// Overhead is the fraction of total cycles spent in the detection
	// routine.
	Overhead float64
	// Searches is the number of searches executed.
	Searches uint64
}

// RunTable3 measures the SM statistics of Table III: each benchmark runs
// once with the SM detector live on software-managed TLBs. Unless the
// config overrides it, the sampling period is the paper's n = 100 (search
// on 1% of misses), since this experiment is about overhead rather than
// pattern quality.
func RunTable3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	if cfg.Options.SampleEvery == 0 {
		cfg.Options.SampleEvery = 100
	}
	return runner.Map(cfg.pool("table3"), len(cfg.Benchmarks), func(i int) (Table3Row, error) {
		name := cfg.Benchmarks[i]
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return Table3Row{}, err
		}
		det, err := core.Detect(w, core.SM, cfg.Options)
		if err != nil {
			return Table3Row{}, fmt.Errorf("harness: table3 %s: %w", name, err)
		}
		cfg.logf("table3 %s: miss rate %.4f%%, overhead %.4f%%",
			name, det.Result.TLBMissRate*100, det.Result.DetectionOverhead*100)
		return Table3Row{
			Name:            name,
			MissRate:        det.Result.TLBMissRate,
			SampledFraction: det.SampledFraction,
			Overhead:        det.Result.DetectionOverhead,
			Searches:        det.Result.Counters.Get(metrics.DetectionSearches),
		}, nil
	})
}

// HMOverheadRow reports the HM mechanism's overhead (Section VI-C's second
// half: the paper reports <0.85% at a 10M-cycle interval).
type HMOverheadRow struct {
	Name string
	// Interval is the scan interval the measurement ran at.
	Interval uint64
	Scans    uint64
	// Overhead is the measured fraction of cycles spent scanning.
	Overhead float64
	// PaperIntervalOverhead is the steady-state overhead at the paper's
	// 10M-cycle interval. Because the scan stops the world for a fixed
	// HMScanCycles, the steady-state overhead is scan cost / interval —
	// identical for every application, exactly as the paper observes
	// ("the hardware-managed TLB causes the same overhead for all
	// applications").
	PaperIntervalOverhead float64
}

// RunHMOverhead measures HM scan overhead per benchmark. Unless the config
// overrides it, the measurement interval is 1M cycles so that the short
// simulated runs contain several scans; the row also carries the
// steady-state overhead at the paper's 10M-cycle interval, which is what
// Section VI-C reports (<0.85%).
func RunHMOverhead(cfg Config) ([]HMOverheadRow, error) {
	cfg = cfg.withDefaults()
	if cfg.Options.ScanInterval == 0 {
		cfg.Options.ScanInterval = 1_000_000
	}
	const paperInterval = 10_000_000
	return runner.Map(cfg.pool("hm-overhead"), len(cfg.Benchmarks), func(i int) (HMOverheadRow, error) {
		name := cfg.Benchmarks[i]
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return HMOverheadRow{}, err
		}
		det, err := core.Detect(w, core.HM, cfg.Options)
		if err != nil {
			return HMOverheadRow{}, fmt.Errorf("harness: hm overhead %s: %w", name, err)
		}
		return HMOverheadRow{
			Name:                  name,
			Interval:              cfg.Options.ScanInterval,
			Scans:                 det.Result.Counters.Get(metrics.DetectionSearches),
			Overhead:              det.Result.DetectionOverhead,
			PaperIntervalOverhead: float64(comm.HMScanCycles) / paperInterval,
		}, nil
	})
}

// StorageRow compares the storage cost of trace-based detection (the
// related-work approach) against the TLB mechanism's communication matrix
// for one benchmark — the paper's Section II argument, measured.
type StorageRow struct {
	Name        string
	Accesses    uint64
	TraceBytes  uint64
	MatrixBytes uint64
}

// Ratio returns trace bytes per matrix byte.
func (r StorageRow) Ratio() float64 {
	if r.MatrixBytes == 0 {
		return 0
	}
	return float64(r.TraceBytes) / float64(r.MatrixBytes)
}

// RunStorageCost measures the trace-vs-matrix storage comparison.
func RunStorageCost(cfg Config) ([]StorageRow, error) {
	cfg = cfg.withDefaults()
	threads := cfg.Machine().NumCores()
	return runner.Map(cfg.pool("storage"), len(cfg.Benchmarks), func(i int) (StorageRow, error) {
		name := cfg.Benchmarks[i]
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return StorageRow{}, err
		}
		records, bytes, err := core.MeasureTraceSize(w, cfg.Options)
		if err != nil {
			return StorageRow{}, fmt.Errorf("harness: storage %s: %w", name, err)
		}
		cfg.logf("storage %s: %d trace bytes for %d accesses", name, bytes, records)
		return StorageRow{
			Name:        name,
			Accesses:    records,
			TraceBytes:  bytes,
			MatrixBytes: uint64(threads * threads * 8), // one uint64 per cell
		}, nil
	})
}
