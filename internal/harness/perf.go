package harness

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/metrics"
	"tlbmap/internal/stats"
)

// MappingLabel identifies one of the three placements the evaluation
// compares (the columns of Figures 6-9 and Tables IV/V).
type MappingLabel string

// The three placements of the evaluation.
const (
	OSLabel MappingLabel = "OS"
	SMLabel MappingLabel = "SM"
	HMLabel MappingLabel = "HM"
)

// MappingStats aggregates the repeated performance runs of one (benchmark,
// placement) pair.
type MappingStats struct {
	// Time is the execution time in simulated seconds.
	Time stats.Sample
	// InvPerSec, SnoopPerSec and L2MissPerSec are the event rates of
	// Table IV.
	InvPerSec    stats.Sample
	SnoopPerSec  stats.Sample
	L2MissPerSec stats.Sample
	// Raw event totals per run, for normalized figures.
	Inv    stats.Sample
	Snoop  stats.Sample
	L2Miss stats.Sample
}

func (m *MappingStats) record(res coreResult) {
	secs := float64(res.cycles) / ClockHz
	m.Time.Add(secs)
	m.Inv.AddUint(res.inv)
	m.Snoop.AddUint(res.snoop)
	m.L2Miss.AddUint(res.l2miss)
	if secs > 0 {
		m.InvPerSec.Add(float64(res.inv) / secs)
		m.SnoopPerSec.Add(float64(res.snoop) / secs)
		m.L2MissPerSec.Add(float64(res.l2miss) / secs)
	}
}

type coreResult struct {
	cycles             uint64
	inv, snoop, l2miss uint64
}

// PerfResult holds the full performance comparison for one benchmark.
type PerfResult struct {
	Name string
	// Stats per placement label.
	Stats map[MappingLabel]*MappingStats
	// PlacementSM/PlacementHM are the thread -> core mappings derived
	// from the SM and HM matrices.
	PlacementSM, PlacementHM []int
}

// Normalized returns metric(label)/metric(OS) using means — one cell of
// Figures 6-9. metric selects the sample: "time", "inv", "snoop", "l2miss".
func (p PerfResult) Normalized(label MappingLabel, metric string) float64 {
	base := p.Stats[OSLabel]
	s := p.Stats[label]
	pick := func(m *MappingStats) float64 {
		switch metric {
		case "time":
			return m.Time.Mean()
		case "inv":
			return m.Inv.Mean()
		case "snoop":
			return m.Snoop.Mean()
		case "l2miss":
			return m.L2Miss.Mean()
		default:
			return 0
		}
	}
	return stats.Normalize(pick(s), pick(base))
}

// RunPerformance reproduces the performance experiments of Section VI-B:
// for every benchmark it detects the communication pattern with SM and HM,
// builds the two mappings, and then runs the benchmark Repetitions times
// under the OS scheduler model (a fresh random placement per run) and under
// each mapping (fixed placement, varying system noise and workload seed).
func RunPerformance(cfg Config) ([]PerfResult, error) {
	cfg = cfg.withDefaults()
	machine := cfg.Machine()
	edmonds := mapping.NewEdmonds()
	osSched := mapping.NewOSScheduler(cfg.Seed * 7)

	out := make([]PerfResult, 0, len(cfg.Benchmarks))
	for _, name := range cfg.Benchmarks {
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sm, hm, _, err := core.DetectAll(w, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("harness: detecting %s: %w", name, err)
		}
		placeSM, err := edmonds.Map(sm.Matrix, machine)
		if err != nil {
			return nil, fmt.Errorf("harness: mapping %s from SM: %w", name, err)
		}
		placeHM, err := edmonds.Map(hm.Matrix, machine)
		if err != nil {
			return nil, fmt.Errorf("harness: mapping %s from HM: %w", name, err)
		}

		pr := PerfResult{
			Name: name,
			Stats: map[MappingLabel]*MappingStats{
				OSLabel: {}, SMLabel: {}, HMLabel: {},
			},
			PlacementSM: placeSM,
			PlacementHM: placeHM,
		}
		for rep := 0; rep < cfg.Repetitions; rep++ {
			seed := cfg.Seed + int64(rep)
			wr, err := cfg.workload(name, seed)
			if err != nil {
				return nil, err
			}
			opt := cfg.Options
			opt.JitterSeed = seed*31 + 11
			osPlace, err := osSched.Map(sm.Matrix, machine)
			if err != nil {
				return nil, err
			}
			for _, run := range []struct {
				label MappingLabel
				place []int
			}{
				{OSLabel, osPlace},
				{SMLabel, placeSM},
				{HMLabel, placeHM},
			} {
				res, err := core.Evaluate(wr, run.place, opt)
				if err != nil {
					return nil, fmt.Errorf("harness: %s/%s rep %d: %w", name, run.label, rep, err)
				}
				pr.Stats[run.label].record(coreResult{
					cycles: res.Cycles,
					inv:    res.Counters.Get(metrics.Invalidations),
					snoop:  res.Counters.Get(metrics.SnoopTransactions),
					l2miss: res.Counters.Get(metrics.L2Misses),
				})
			}
		}
		cfg.logf("performance %s: time SM %.3f, HM %.3f (normalized to OS)",
			name, pr.Normalized(SMLabel, "time"), pr.Normalized(HMLabel, "time"))
		out = append(out, pr)
	}
	return out, nil
}

// Table3Row is one row of Table III: the SM mechanism statistics of one
// benchmark.
type Table3Row struct {
	Name string
	// MissRate is the TLB miss rate over all data accesses.
	MissRate float64
	// SampledFraction is the fraction of TLB misses that triggered a
	// search.
	SampledFraction float64
	// Overhead is the fraction of total cycles spent in the detection
	// routine.
	Overhead float64
	// Searches is the number of searches executed.
	Searches uint64
}

// RunTable3 measures the SM statistics of Table III: each benchmark runs
// once with the SM detector live on software-managed TLBs. Unless the
// config overrides it, the sampling period is the paper's n = 100 (search
// on 1% of misses), since this experiment is about overhead rather than
// pattern quality.
func RunTable3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	if cfg.Options.SampleEvery == 0 {
		cfg.Options.SampleEvery = 100
	}
	out := make([]Table3Row, 0, len(cfg.Benchmarks))
	for _, name := range cfg.Benchmarks {
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		det, err := core.Detect(w, core.SM, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("harness: table3 %s: %w", name, err)
		}
		out = append(out, Table3Row{
			Name:            name,
			MissRate:        det.Result.TLBMissRate,
			SampledFraction: det.SampledFraction,
			Overhead:        det.Result.DetectionOverhead,
			Searches:        det.Result.Counters.Get(metrics.DetectionSearches),
		})
		cfg.logf("table3 %s: miss rate %.4f%%, overhead %.4f%%",
			name, det.Result.TLBMissRate*100, det.Result.DetectionOverhead*100)
	}
	return out, nil
}

// HMOverheadRow reports the HM mechanism's overhead (Section VI-C's second
// half: the paper reports <0.85% at a 10M-cycle interval).
type HMOverheadRow struct {
	Name string
	// Interval is the scan interval the measurement ran at.
	Interval uint64
	Scans    uint64
	// Overhead is the measured fraction of cycles spent scanning.
	Overhead float64
	// PaperIntervalOverhead is the steady-state overhead at the paper's
	// 10M-cycle interval. Because the scan stops the world for a fixed
	// HMScanCycles, the steady-state overhead is scan cost / interval —
	// identical for every application, exactly as the paper observes
	// ("the hardware-managed TLB causes the same overhead for all
	// applications").
	PaperIntervalOverhead float64
}

// RunHMOverhead measures HM scan overhead per benchmark. Unless the config
// overrides it, the measurement interval is 1M cycles so that the short
// simulated runs contain several scans; the row also carries the
// steady-state overhead at the paper's 10M-cycle interval, which is what
// Section VI-C reports (<0.85%).
func RunHMOverhead(cfg Config) ([]HMOverheadRow, error) {
	cfg = cfg.withDefaults()
	if cfg.Options.ScanInterval == 0 {
		cfg.Options.ScanInterval = 1_000_000
	}
	const paperInterval = 10_000_000
	out := make([]HMOverheadRow, 0, len(cfg.Benchmarks))
	for _, name := range cfg.Benchmarks {
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		det, err := core.Detect(w, core.HM, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("harness: hm overhead %s: %w", name, err)
		}
		out = append(out, HMOverheadRow{
			Name:                  name,
			Interval:              cfg.Options.ScanInterval,
			Scans:                 det.Result.Counters.Get(metrics.DetectionSearches),
			Overhead:              det.Result.DetectionOverhead,
			PaperIntervalOverhead: float64(comm.HMScanCycles) / paperInterval,
		})
	}
	return out, nil
}

// StorageRow compares the storage cost of trace-based detection (the
// related-work approach) against the TLB mechanism's communication matrix
// for one benchmark — the paper's Section II argument, measured.
type StorageRow struct {
	Name        string
	Accesses    uint64
	TraceBytes  uint64
	MatrixBytes uint64
}

// Ratio returns trace bytes per matrix byte.
func (r StorageRow) Ratio() float64 {
	if r.MatrixBytes == 0 {
		return 0
	}
	return float64(r.TraceBytes) / float64(r.MatrixBytes)
}

// RunStorageCost measures the trace-vs-matrix storage comparison.
func RunStorageCost(cfg Config) ([]StorageRow, error) {
	cfg = cfg.withDefaults()
	threads := cfg.Machine().NumCores()
	out := make([]StorageRow, 0, len(cfg.Benchmarks))
	for _, name := range cfg.Benchmarks {
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		records, bytes, err := core.MeasureTraceSize(w, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("harness: storage %s: %w", name, err)
		}
		out = append(out, StorageRow{
			Name:        name,
			Accesses:    records,
			TraceBytes:  bytes,
			MatrixBytes: uint64(threads * threads * 8), // one uint64 per cell
		})
		cfg.logf("storage %s: %d trace bytes for %d accesses", name, bytes, records)
	}
	return out, nil
}
