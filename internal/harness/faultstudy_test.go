package harness

import (
	"bytes"
	"context"
	"testing"
	"time"

	"tlbmap/internal/core"
	"tlbmap/internal/npb"
)

// fixtureFaultStudy is a fixed curve pinning the render/CSV layout: one
// benchmark on both machines, SM only, three rates, with the last row
// deliberately past the noise threshold so the DEGRADED verdict is pinned
// too.
func fixtureFaultStudy() []FaultStudyRow {
	return []FaultStudyRow{
		{Benchmark: "CG", Topology: "UMA", Mechanism: core.SM, Rate: 0, Similarity: 0.981, StaticSlowdown: 0.912, OnlineSlowdown: 0.998, Fallbacks: 0, Confidence: 0.97, Injections: 0},
		{Benchmark: "CG", Topology: "UMA", Mechanism: core.SM, Rate: 0.5, Similarity: 0.704, StaticSlowdown: 0.957, OnlineSlowdown: 1.012, Fallbacks: 1, Confidence: 0.41, Injections: 1234},
		{Benchmark: "CG", Topology: "NUMA", Mechanism: core.SM, Rate: 1, Similarity: 0.213, StaticSlowdown: 1.043, OnlineSlowdown: 1.087, Fallbacks: 2, Confidence: 0.18, Injections: 5678},
	}
}

func TestFaultStudyGolden(t *testing.T) {
	checkGolden(t, "fault_study.golden", []byte(RenderFaultStudy(fixtureFaultStudy())))
}

func TestFaultStudyCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFaultStudyCSV(&buf, fixtureFaultStudy()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fault_study.csv.golden", buf.Bytes())
}

func studyConfig() FaultStudyConfig {
	return FaultStudyConfig{
		Config: Config{
			Class:      npb.ClassS,
			Benchmarks: []string{"CG"},
			Seed:       1,
			Parallel:   4,
			// The differential cross-check: every simulated run of the
			// study carries the full invariant suite, so a fault leaking
			// into architectural state fails the study itself.
			Options: core.Options{Check: true, SampleEvery: 1, ScanInterval: 20_000},
		},
		Rates: []float64{0, 1},
	}
}

// The live acceptance property of the robustness PR: across the whole
// SM/HM × UMA/NUMA grid, at every fault rate, the confidence-gated online
// mapper never ends up worse than the OS-style identity baseline beyond
// the documented noise threshold — and detection quality visibly degrades
// with the fault rate, so the study is measuring something real.
func TestFaultStudyDegradesGracefully(t *testing.T) {
	rows, failed, err := RunFaultStudy(context.Background(), studyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("study cells failed: %v", failed)
	}
	if want := 1 * 2 * 2 * 2; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.OnlineSlowdown >= 1+FaultNoiseThreshold {
			t.Errorf("%s/%s/%s rate %.2f: online slowdown %.3f past the noise threshold",
				r.Benchmark, r.Topology, r.Mechanism, r.Rate, r.OnlineSlowdown)
		}
		if r.Rate == 0 && r.Injections != 0 {
			t.Errorf("%s/%s/%s: rate 0 injected %d faults", r.Benchmark, r.Topology, r.Mechanism, r.Injections)
		}
		if r.Rate == 1 && r.Injections == 0 {
			t.Errorf("%s/%s/%s: rate 1 injected nothing", r.Benchmark, r.Topology, r.Mechanism)
		}
	}
	// Full-rate faults must cost detection quality relative to the clean
	// run of the same cell (SampleLoss at intensity 1 blinds SM outright).
	byCell := map[string]map[float64]FaultStudyRow{}
	for _, r := range rows {
		key := r.Topology + "/" + string(r.Mechanism)
		if byCell[key] == nil {
			byCell[key] = map[float64]FaultStudyRow{}
		}
		byCell[key][r.Rate] = r
	}
	for key, cell := range byCell {
		clean, faulted := cell[0], cell[1]
		if faulted.Similarity >= clean.Similarity {
			t.Errorf("%s: similarity did not degrade (%.3f clean -> %.3f faulted)",
				key, clean.Similarity, faulted.Similarity)
		}
	}
}

// Determinism: the same study config yields the same rows at any worker
// count (the same property the rest of the harness guarantees).
func TestFaultStudyDeterministic(t *testing.T) {
	cfg := studyConfig()
	cfg.Options.Check = false // half the cost; determinism is the point here
	cfg.Rates = []float64{1}
	a, _, err := RunFaultStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 1
	b, _, err := RunFaultStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// A cancelled context aborts the study promptly with the context's error.
func TestFaultStudyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := RunFaultStudy(ctx, studyConfig())
	if err == nil {
		t.Fatal("cancelled study returned no error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled study took %v to return", d)
	}
}
