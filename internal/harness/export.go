package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WritePerformanceCSV exports the performance results as CSV with one row
// per (benchmark, placement): means and relative standard deviations of
// every metric. Suitable for external plotting of Figures 6-9 and
// Tables IV/V.
func WritePerformanceCSV(w io.Writer, results []PerfResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "mapping",
		"time_s", "time_sd_pct",
		"invalidations", "inv_sd_pct",
		"snoops", "snoop_sd_pct",
		"l2_misses", "l2_sd_pct",
		"time_normalized", "inv_normalized", "snoop_normalized", "l2_normalized",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range results {
		for _, label := range []MappingLabel{OSLabel, SMLabel, HMLabel} {
			st := r.Stats[label]
			row := []string{
				r.Name, string(label),
				f(st.Time.Mean()), f(st.Time.RelStdDev()),
				f(st.Inv.Mean()), f(st.Inv.RelStdDev()),
				f(st.Snoop.Mean()), f(st.Snoop.RelStdDev()),
				f(st.L2Miss.Mean()), f(st.L2Miss.RelStdDev()),
				f(r.Normalized(label, "time")), f(r.Normalized(label, "inv")),
				f(r.Normalized(label, "snoop")), f(r.Normalized(label, "l2miss")),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePatternsCSV exports the detected communication matrices: one row per
// (benchmark, mechanism, i, j) cell of the upper triangle.
func WritePatternsCSV(w io.Writer, results []PatternResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "mechanism", "i", "j", "communication"}); err != nil {
		return err
	}
	for _, r := range results {
		for _, m := range []struct {
			name   string
			matrix interface {
				N() int
				At(int, int) uint64
			}
		}{
			{"SM", r.SM.Matrix},
			{"HM", r.HM.Matrix},
			{"oracle", r.Oracle.Matrix},
		} {
			n := m.matrix.N()
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					row := []string{
						r.Name, m.name,
						strconv.Itoa(i), strconv.Itoa(j),
						strconv.FormatUint(m.matrix.At(i, j), 10),
					}
					if err := cw.Write(row); err != nil {
						return err
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV exports the SM statistics of Table III.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "tlb_miss_rate", "sampled_fraction", "searches", "overhead"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name,
			fmt.Sprintf("%g", r.MissRate),
			fmt.Sprintf("%g", r.SampledFraction),
			strconv.FormatUint(r.Searches, 10),
			fmt.Sprintf("%g", r.Overhead),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
