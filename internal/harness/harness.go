// Package harness drives the paper's experiments end-to-end and renders
// their tables and figures as text. Every table and figure of the
// evaluation section has a driver here:
//
//	Table I    — mechanism comparison (configuration + measured costs)
//	Table II   — cache configuration in effect
//	Figures 4/5 — communication matrices detected by SM and HM
//	Figures 6-9 — execution time, invalidations, snoop transactions and L2
//	              misses normalized to the OS scheduler
//	Table III  — SM statistics (miss rate, sampled fraction, overhead)
//	Tables IV/V — absolute rates and relative standard deviations
//
// cmd/experiments and the repository-level benchmarks are thin wrappers
// around these drivers.
package harness

import (
	"fmt"
	"sort"

	"tlbmap/internal/comm"
	"tlbmap/internal/core"
	"tlbmap/internal/npb"
	"tlbmap/internal/runner"
	"tlbmap/internal/splash"
	"tlbmap/internal/topology"
)

// ClockHz converts simulated cycles to seconds for the per-second rates of
// Table IV. The real machine of the evaluation (Xeon E5405) runs at 2 GHz.
const ClockHz = 2e9

// Config parameterizes a harness run.
type Config struct {
	// Suite selects the workload suite: "npb" (default, the paper's
	// benchmarks) or "splash" (the SPLASH-2-style extension suite).
	Suite string
	// Class is the problem size (default npb.ClassW).
	Class npb.Class
	// Benchmarks to run; nil selects the whole suite.
	Benchmarks []string
	// Repetitions per mapping for the statistics of Tables IV/V. The
	// paper runs each benchmark 100 times; the default here is 10.
	Repetitions int
	// Options for detection and evaluation runs.
	Options core.Options
	// Seed perturbs workload-internal randomness and OS placements.
	// Every simulation job derives its own seed from (Seed, benchmark,
	// repetition) — never from execution order — so results are
	// bit-identical at every Parallel setting.
	Seed int64
	// Parallel is the number of worker goroutines simulation jobs fan
	// out over. 0 selects sequential execution (the safe library
	// default); pass runner.DefaultWorkers() for one worker per CPU.
	Parallel int
	// Progress, when non-nil, receives one line per completed step.
	// With Parallel > 1 it is called from multiple goroutines and must
	// be safe for concurrent use (log.Printf is).
	Progress func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Suite == "" {
		c.Suite = "npb"
	}
	if c.Class == "" {
		c.Class = npb.ClassW
	}
	if len(c.Benchmarks) == 0 {
		if c.Suite == "splash" {
			c.Benchmarks = splash.Names()
		} else {
			c.Benchmarks = npb.Names()
		}
	} else {
		sorted := append([]string(nil), c.Benchmarks...)
		sort.Strings(sorted)
		c.Benchmarks = sorted
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// pool builds the worker pool for one experiment stage, reporting job
// completion through the Progress callback. Workers <= 0 pins the pool to
// one worker, keeping the zero Config sequential.
func (c Config) pool(stage string) runner.Pool {
	p := runner.Pool{Workers: c.Parallel}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	if c.Progress != nil && p.Workers > 1 {
		p.Progress = func(done, total int) {
			c.Progress("%s: %d/%d jobs done", stage, done, total)
		}
	}
	return p
}

// jobSeed derives the deterministic seed of one simulation job from the
// base seed and the job's identity. kind separates the independent random
// streams of one repetition (workload contents, compute jitter, the OS
// scheduler's placement draw).
func (c Config) jobSeed(bench, kind string, rep int) int64 {
	return runner.SeedN(c.Seed, rep, c.Suite, bench, kind)
}

// workload builds the core.Workload for one benchmark at the configured
// class, with a per-run seed.
func (c Config) workload(name string, seed int64) (core.Workload, error) {
	if c.Suite == "splash" {
		b, err := splash.Get(name)
		if err != nil {
			return nil, err
		}
		return core.FromSplash(b, splash.Params{Class: splash.Class(c.Class), Seed: seed}), nil
	}
	b, err := npb.Get(name)
	if err != nil {
		return nil, err
	}
	return core.FromNPB(b, npb.Params{Class: c.Class, Seed: seed}), nil
}

// PatternResult holds the detected communication matrices of one benchmark
// (the data behind Figures 4 and 5, plus the oracle reference).
type PatternResult struct {
	Name     string
	Expected npb.Pattern
	SM       *core.Detection
	HM       *core.Detection
	Oracle   *core.Detection
}

// SMSimilarity returns the Pearson similarity of the SM matrix to the
// oracle pattern.
func (p PatternResult) SMSimilarity() float64 { return p.SM.Matrix.Similarity(p.Oracle.Matrix) }

// HMSimilarity returns the Pearson similarity of the HM matrix to the
// oracle pattern.
func (p PatternResult) HMSimilarity() float64 { return p.HM.Matrix.Similarity(p.Oracle.Matrix) }

// DetectPatterns runs every configured benchmark once with SM, HM and the
// oracle observing, producing the data for Figures 4 and 5. Benchmarks are
// independent jobs fanned out over Config.Parallel workers.
func DetectPatterns(cfg Config) ([]PatternResult, error) {
	cfg = cfg.withDefaults()
	return runner.Map(cfg.pool("patterns"), len(cfg.Benchmarks), func(i int) (PatternResult, error) {
		name := cfg.Benchmarks[i]
		expected, err := cfg.expectedPattern(name)
		if err != nil {
			return PatternResult{}, err
		}
		w, err := cfg.workload(name, cfg.Seed)
		if err != nil {
			return PatternResult{}, err
		}
		sm, hm, oracle, err := core.DetectAll(w, cfg.Options)
		if err != nil {
			return PatternResult{}, fmt.Errorf("harness: detecting %s: %w", name, err)
		}
		r := PatternResult{Name: name, Expected: expected, SM: sm, HM: hm, Oracle: oracle}
		cfg.logf("detected %s: SM sim %.3f, HM sim %.3f", name, r.SMSimilarity(), r.HMSimilarity())
		return r, nil
	})
}

// expectedPattern returns the declared pattern of a benchmark in the
// configured suite, normalized to the npb.Pattern type for rendering.
func (c Config) expectedPattern(name string) (npb.Pattern, error) {
	if c.Suite == "splash" {
		b, err := splash.Get(name)
		if err != nil {
			return "", err
		}
		return npb.Pattern(b.Expected), nil
	}
	b, err := npb.Get(name)
	if err != nil {
		return "", err
	}
	return b.Expected, nil
}

// Machine returns the topology a config runs on.
func (c Config) Machine() *topology.Machine {
	if c.Options.Machine != nil {
		return c.Options.Machine
	}
	return topology.Harpertown()
}

// matrixOrEmpty guards renderers against nil matrices.
func matrixOrEmpty(m *comm.Matrix, n int) *comm.Matrix {
	if m != nil {
		return m
	}
	return comm.NewMatrix(n)
}
