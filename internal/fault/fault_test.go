package fault_test

import (
	"testing"

	"tlbmap/internal/check"
	"tlbmap/internal/comm"
	"tlbmap/internal/fault"
	"tlbmap/internal/sim"
)

func planFor(k fault.Kind, rate float64, seed int64) fault.Plan {
	p := fault.Plan{Seed: seed}
	p.Intensity[k] = rate
	return p
}

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec string
		want map[fault.Kind]float64
	}{
		{"", nil},
		{"none", nil},
		{"shootdown", map[fault.Kind]float64{fault.ShootdownStorm: 0.5}},
		{"scandrop:0.8,decay:0.2", map[fault.Kind]float64{fault.ScanDrop: 0.8, fault.MatrixDecay: 0.2}},
		{"all:0.3", map[fault.Kind]float64{
			fault.ShootdownStorm: 0.3, fault.MigrationFlush: 0.3, fault.ScanDrop: 0.3,
			fault.SampleLoss: 0.3, fault.PreemptionBurst: 0.3, fault.MatrixDecay: 0.3,
		}},
		{" migflush:1 , preempt:0 ", map[fault.Kind]float64{fault.MigrationFlush: 1}},
	}
	for _, c := range cases {
		p, err := fault.ParsePlan(c.spec, 7)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		for _, k := range fault.Kinds() {
			want := c.want[k]
			if got := p.Intensity[k]; got != want {
				t.Errorf("ParsePlan(%q).Intensity[%s] = %g, want %g", c.spec, k, got, want)
			}
		}
		if p.Empty() != (len(c.want) == 0) {
			t.Errorf("ParsePlan(%q).Empty() = %v", c.spec, p.Empty())
		}
	}
	for _, bad := range []string{"bogus", "shootdown:2", "decay:-1", "scandrop:x"} {
		if _, err := fault.ParsePlan(bad, 7); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	p, err := fault.ParsePlan("shootdown:0.25,sampleloss:1", 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fault.ParsePlan(p.String(), 3)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back.Intensity != p.Intensity {
		t.Errorf("round trip: %v != %v", back.Intensity, p.Intensity)
	}
	if got := (fault.Plan{}).String(); got != "none" {
		t.Errorf("empty plan renders %q", got)
	}
}

func TestPlanScaled(t *testing.T) {
	p, _ := fault.ParsePlan("all:0.8", 1)
	half := p.Scaled(0.5)
	for _, k := range fault.Kinds() {
		if got := half.Intensity[k]; got != 0.4 {
			t.Errorf("Scaled(0.5).Intensity[%s] = %g, want 0.4", k, got)
		}
	}
	if over := p.Scaled(10); over.Intensity[fault.ScanDrop] != 1 {
		t.Errorf("Scaled must clamp to 1, got %g", over.Intensity[fault.ScanDrop])
	}
	if !p.Scaled(0).Empty() {
		t.Error("Scaled(0) must disarm everything")
	}
}

// An empty plan must be completely inert: nil Perturber (a real nil, not
// a typed-nil interface) and an untouched detector.
func TestEmptyPlanIsInert(t *testing.T) {
	inj := fault.New(fault.Plan{}, 8)
	if p := inj.Perturber(); p != nil {
		t.Errorf("empty plan Perturber() = %#v, want nil", p)
	}
	det := comm.NewSMDetector(8, 4)
	if got := inj.WrapDetector(det); got != comm.Detector(det) {
		t.Errorf("empty plan WrapDetector changed the detector: %T", got)
	}
	if inj.Stats().Total() != 0 {
		t.Errorf("empty plan injected: %v", inj.Stats())
	}
}

// A detector-only plan must not arm an engine-side perturber, and vice
// versa.
func TestPartialArming(t *testing.T) {
	detOnly := fault.New(planFor(fault.ScanDrop, 1, 1), 8)
	if detOnly.Perturber() != nil {
		t.Error("scandrop armed an engine-side perturber")
	}
	hm := comm.NewHMDetector(8, 50_000)
	if got := detOnly.WrapDetector(hm); got == comm.Detector(hm) {
		t.Error("scandrop did not wrap the detector")
	}
	engOnly := fault.New(planFor(fault.PreemptionBurst, 1, 1), 8)
	if engOnly.Perturber() == nil {
		t.Error("preempt did not arm a perturber")
	}
	if got := engOnly.WrapDetector(hm); got != comm.Detector(hm) {
		t.Error("preempt wrapped the detector")
	}
}

// The null detector must pass through unwrapped (it has no matrix to
// corrupt).
func TestNullDetectorNotWrapped(t *testing.T) {
	inj := fault.New(planFor(fault.MatrixDecay, 1, 1), 8)
	d := comm.NullDetector{}
	if got := inj.WrapDetector(d); got != comm.Detector(d) {
		t.Errorf("null detector wrapped: %T", got)
	}
	if got := inj.WrapDetector(nil); got != nil {
		t.Errorf("nil detector wrapped: %T", got)
	}
}

// diffRun executes one adversarial differential run (all PR 2 checkers
// armed) with the given fault plan, failing the test on any violation.
// The Mixed pattern spans enough pages (private arrays + a 32-page shared
// region against a 32-entry TLB) for the SM and HM detectors to actually
// detect; ops scales the event count so low-probability scenarios fire.
func diffRun(t *testing.T, mech string, pattern check.Pattern, ops int, plan fault.Plan) *check.DiffReport {
	t.Helper()
	rep, err := check.Differential(check.DiffConfig{
		Seed:      42,
		Pattern:   pattern,
		Ops:       ops,
		Mechanism: mech,
		Faults:    plan,
	})
	if err != nil {
		t.Fatalf("differential run with faults %v: %v (violations %v)", plan, err, rep.Violations)
	}
	return rep
}

// Every scenario, armed alone at full intensity on a checker-armed
// adversarial run, must (a) actually fire and (b) leave every
// architectural invariant intact.
func TestScenariosFireAndPreserveInvariants(t *testing.T) {
	count := func(s fault.Stats, k fault.Kind) uint64 {
		switch k {
		case fault.ShootdownStorm:
			return s.Shootdowns
		case fault.MigrationFlush:
			return s.MigrationFlushes
		case fault.ScanDrop:
			return s.DroppedScans
		case fault.SampleLoss:
			return s.LostSamples
		case fault.PreemptionBurst:
			return s.Preemptions
		case fault.MatrixDecay:
			return s.CorruptedCells
		}
		return 0
	}
	// Per-scenario run shapes: the scenario needs its trigger present
	// (migrations for migflush, HM scans for scandrop, SM misses for
	// sampleloss) and enough events for its per-event rate to fire.
	shapes := map[fault.Kind]struct {
		mech    string
		pattern check.Pattern
		ops     int
	}{
		fault.ShootdownStorm:  {"SM", check.Mixed, 1500},
		fault.MigrationFlush:  {"HM", check.MigrationChurn, 400},
		fault.ScanDrop:        {"HM", check.Mixed, 400},
		fault.SampleLoss:      {"SM", check.Mixed, 400},
		fault.PreemptionBurst: {"SM", check.Mixed, 4000},
		fault.MatrixDecay:     {"SM", check.Mixed, 400},
	}
	for _, k := range fault.Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			shape := shapes[k]
			rep := diffRun(t, shape.mech, shape.pattern, shape.ops, planFor(k, 1, 99))
			if got := count(rep.FaultStats, k); got == 0 {
				t.Errorf("scenario %s never fired (stats %v)", k, rep.FaultStats)
			}
		})
	}
}

// All scenarios together, full intensity, still checker-clean.
func TestAllScenariosTogether(t *testing.T) {
	plan, err := fault.ParsePlan("all:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	rep := diffRun(t, "HM", check.MigrationChurn, 800, plan)
	if rep.FaultStats.Total() == 0 {
		t.Error("nothing fired under all:1")
	}
}

// Equal (config, plan) pairs must produce bit-identical runs: same
// cycles, same published matrix, same injection counts.
func TestInjectionIsDeterministic(t *testing.T) {
	plan, _ := fault.ParsePlan("all:1", 1234)
	run := func() *check.DiffReport { return diffRun(t, "SM", check.Mixed, 600, plan) }
	a, b := run(), run()
	if a.Result.Cycles != b.Result.Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Result.Cycles, b.Result.Cycles)
	}
	if a.FaultStats != b.FaultStats {
		t.Errorf("stats differ: %v vs %v", a.FaultStats, b.FaultStats)
	}
	if a.Result.Matrix.String() != b.Result.Matrix.String() {
		t.Error("published matrices differ between identical runs")
	}
	// A different seed must change the injection decisions.
	plan2 := plan
	plan2.Seed = 4321
	c := diffRun(t, "SM", check.Mixed, 600, plan2)
	if c.FaultStats == a.FaultStats && c.Result.Cycles == a.Result.Cycles {
		t.Error("changing the fault seed changed nothing")
	}
}

// SampleLoss at full intensity must blind the SM detector completely.
func TestSampleLossBlindsSM(t *testing.T) {
	clean := diffRun(t, "SM", check.Mixed, 400, fault.Plan{})
	if clean.Result.Matrix.Total() == 0 {
		t.Fatal("clean SM run detected nothing; workload too small")
	}
	blind := diffRun(t, "SM", check.Mixed, 400, planFor(fault.SampleLoss, 1, 5))
	if got := blind.Result.Matrix.Total(); got != 0 {
		t.Errorf("SM detected %d units with every trap lost", got)
	}
	if blind.FaultStats.LostSamples == 0 {
		t.Error("no samples lost")
	}
}

// ScanDrop at full intensity must erase every HM window from the
// published matrix while the clean run detects plenty.
func TestScanDropErasesHMWindows(t *testing.T) {
	clean := diffRun(t, "HM", check.Mixed, 400, fault.Plan{})
	if clean.Result.Matrix.Total() == 0 {
		t.Fatal("clean HM run detected nothing; workload too small")
	}
	dropped := diffRun(t, "HM", check.Mixed, 400, planFor(fault.ScanDrop, 1, 5))
	if got := dropped.Result.Matrix.Total(); got != 0 {
		t.Errorf("HM published %d units with every scan dropped", got)
	}
	// Dropped windows charge no detection cost.
	if dropped.Result.DetectionOverhead >= clean.Result.DetectionOverhead {
		t.Errorf("dropped scans still charged: overhead %.6f vs clean %.6f",
			dropped.Result.DetectionOverhead, clean.Result.DetectionOverhead)
	}
}

// MatrixDecay must change the published matrix relative to a clean run on
// the same workload, without touching cycle counts (it is a pure
// detection-side fault).
func TestMatrixDecayCorruptsPublishedView(t *testing.T) {
	clean := diffRun(t, "SM", check.Mixed, 400, fault.Plan{})
	decayed := diffRun(t, "SM", check.Mixed, 400, planFor(fault.MatrixDecay, 1, 5))
	if decayed.FaultStats.CorruptedCells == 0 {
		t.Fatal("no cells corrupted")
	}
	if clean.Result.Matrix.String() == decayed.Result.Matrix.String() {
		t.Error("decay left the published matrix identical")
	}
	if clean.Result.Cycles != decayed.Result.Cycles {
		t.Errorf("decay changed timing: %d vs %d cycles", clean.Result.Cycles, decayed.Result.Cycles)
	}
}

// Shootdown storms are a detection-AND-timing fault: the flushed TLBs
// must raise the miss rate relative to a clean run of the same workload.
func TestShootdownsRaiseMissRate(t *testing.T) {
	clean := diffRun(t, "SM", check.Mixed, 1500, fault.Plan{})
	faulty := diffRun(t, "SM", check.Mixed, 1500, planFor(fault.ShootdownStorm, 1, 99))
	if faulty.FaultStats.Shootdowns == 0 {
		t.Fatal("no storms fired")
	}
	if faulty.Result.TLBMissRate <= clean.Result.TLBMissRate {
		t.Errorf("storms did not raise the miss rate: %.4f vs clean %.4f",
			faulty.Result.TLBMissRate, clean.Result.TLBMissRate)
	}
}

// The faulty detector must satisfy comm.Detector and keep the inner
// detector's identity visible.
func TestWrappedDetectorForwards(t *testing.T) {
	inj := fault.New(planFor(fault.ScanDrop, 0.5, 1), 8)
	var d comm.Detector = comm.NewHMDetector(8, 50_000)
	w := inj.WrapDetector(d)
	if w.Name() != "HM" {
		t.Errorf("wrapped name = %q", w.Name())
	}
	if w.Searches() != 0 {
		t.Errorf("fresh wrapped detector has %d searches", w.Searches())
	}
	if w.Matrix() == nil || w.Matrix().Total() != 0 {
		t.Error("fresh wrapped detector's matrix not empty")
	}
}

// The injection plumbs into a plain sim run exactly like a checker does.
func TestInjectionOnPlainSimConfig(t *testing.T) {
	inj := fault.New(planFor(fault.ShootdownStorm, 1, 3), 8)
	var cfg sim.Config
	cfg.Perturber = inj.Perturber()
	if cfg.Perturber == nil {
		t.Fatal("perturber not armed")
	}
}
