// Package fault is the seeded, deterministic fault-injection layer: it
// systematically disturbs the TLB window the paper's detectors read, to
// measure how detection quality and mapping gain degrade when the clean
// simulation assumptions break — TLB shootdowns, context-switch flushes,
// missed HM scan windows, lost SM sampling traps, scheduler preemption,
// and communication-matrix corruption.
//
// The layer plugs into the hook surfaces the checker subsystem introduced:
// engine-side scenarios implement sim.Perturber (armed via
// sim.Config.Perturber), detector-side scenarios wrap a comm.Detector.
// The central contract mirrors the Perturber contract: faults perturb
// microarchitectural/timing state and detection fidelity only, never
// architectural state — a run with every injector armed still passes the
// full internal/check invariant suite.
//
// Determinism: every scenario draws from its own RNG stream derived from
// the plan seed and the scenario's name (runner.Seed), so arming or
// re-rating one scenario never changes another scenario's decisions, and
// equal (config, plan) pairs produce bit-identical runs.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the fault scenarios.
type Kind int

const (
	// ShootdownStorm flushes random cores' full TLB hierarchies
	// mid-epoch, modelling bursts of OS-initiated TLB shootdowns
	// (munmap/mprotect IPIs) that empty the window the detectors read.
	ShootdownStorm Kind = iota
	// MigrationFlush flushes the destination core's TLB when a thread
	// migrates, modelling context switches on architectures without
	// tagged TLBs (no ASIDs): the migrated thread restarts cold and the
	// detector loses the core's history.
	MigrationFlush
	// ScanDrop discards whole HM scan windows: the periodic scan runs
	// (TLBs were read) but its result is lost — a missed scheduler
	// window, an interrupted scan. The dropped window's matrix
	// contribution vanishes and no detection cost is charged.
	ScanDrop
	// SampleLoss drops SM sampling traps: a TLB miss that should have
	// entered the Figure 1a search path never reaches the detector
	// (trap coalescing, interrupt masking). The refill still happens.
	SampleLoss
	// PreemptionBurst stalls the issuing thread's core for a burst of
	// cycles, modelling a co-runner or kernel thread stealing the core:
	// the thread's clock jumps while every other thread progresses.
	PreemptionBurst
	// MatrixDecay corrupts the published communication matrix: random
	// cells lose high-order bits (decay) or saturate (stuck-at-max),
	// modelling storage corruption and counter overflow in the
	// OS-maintained matrix.
	MatrixDecay

	numKinds int = iota
)

// kindNames are the CLI-facing scenario names, in Kind order.
var kindNames = [numKinds]string{
	"shootdown", "migflush", "scandrop", "sampleloss", "preempt", "decay",
}

// String returns the scenario's CLI name.
func (k Kind) String() string {
	if k < 0 || int(k) >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns every scenario, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind resolves a CLI scenario name.
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown scenario %q (have %s)", name, strings.Join(kindNames[:], ", "))
}

// Plan is the fault configuration of one run: which scenarios are armed,
// at what intensity, under which seed. The zero value injects nothing.
type Plan struct {
	// Seed is the base of every scenario's RNG stream. Zero selects 1 so
	// an armed plan is always reproducible.
	Seed int64
	// Intensity holds each scenario's rate in [0, 1], indexed by Kind.
	// Zero disarms the scenario; 1 is the scenario's maximum rate
	// (documented per Kind in inject.go's rate constants).
	Intensity [numKinds]float64
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	for _, r := range p.Intensity {
		if r > 0 {
			return false
		}
	}
	return true
}

// Scaled returns a copy of the plan with every armed intensity multiplied
// by f (clamped to [0, 1]) — the knob the degradation study sweeps.
func (p Plan) Scaled(f float64) Plan {
	out := p
	for i, r := range out.Intensity {
		r *= f
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		out.Intensity[i] = r
	}
	return out
}

// String renders the plan in the spec syntax ParsePlan accepts.
func (p Plan) String() string {
	var parts []string
	for i, r := range p.Intensity {
		if r > 0 {
			parts = append(parts, fmt.Sprintf("%s:%g", Kind(i), r))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// DefaultIntensity is the rate a scenario named without an explicit
// ":rate" is armed at.
const DefaultIntensity = 0.5

// ParsePlan parses a CLI fault spec into a plan. The spec is a
// comma-separated list of scenario[:rate] entries; "all" arms every
// scenario. An empty spec yields the empty plan.
//
//	"shootdown"              one scenario at the default 0.5
//	"scandrop:0.8,decay:0.2" two scenarios at explicit rates
//	"all:0.3"                every scenario at 0.3
func ParsePlan(spec string, seed int64) (Plan, error) {
	p := Plan{Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rateStr, hasRate := strings.Cut(entry, ":")
		rate := DefaultIntensity
		if hasRate {
			var err error
			rate, err = strconv.ParseFloat(rateStr, 64)
			if err != nil || rate < 0 || rate > 1 {
				return Plan{}, fmt.Errorf("fault: bad rate %q in %q (want a number in [0,1])", rateStr, entry)
			}
		}
		if name == "all" {
			for i := range p.Intensity {
				p.Intensity[i] = rate
			}
			continue
		}
		k, err := ParseKind(name)
		if err != nil {
			return Plan{}, err
		}
		p.Intensity[k] = rate
	}
	return p, nil
}
