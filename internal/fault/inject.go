package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"tlbmap/internal/comm"
	"tlbmap/internal/runner"
	"tlbmap/internal/sim"
)

// Per-event probabilities and magnitudes at intensity 1.0. The rates are
// chosen so a fully-armed plan visibly degrades detection fidelity while
// keeping the timing perturbation bounded (full-intensity slowdown stays
// around 10%), which is what makes "confidence-gated mapping never worse
// than the OS baseline" a meaningful bound rather than a vacuous one.
const (
	// shootdownPerEvent: at intensity 1, roughly one storm per 10k
	// trace events; each storm flushes 1-3 random cores.
	shootdownPerEvent = 1e-4
	// preemptPerEvent: at intensity 1, roughly one burst per 50k trace
	// events.
	preemptPerEvent = 2e-5
	// preemptStallCycles is one burst: the core is lost for about 32
	// events' worth of work (~200 cycles each).
	preemptStallCycles = 6_400
	// decayPerCell: fraction of matrix cells corrupted per published
	// snapshot at intensity 1.
	decayPerCell = 0.25
)

// Stats counts the injections a run actually performed, per scenario.
type Stats struct {
	// Shootdowns is the number of shootdown storms (each flushes 1-3
	// cores).
	Shootdowns uint64
	// MigrationFlushes is the number of per-thread context-switch
	// flushes on migration.
	MigrationFlushes uint64
	// DroppedScans is the number of HM scan windows discarded.
	DroppedScans uint64
	// LostSamples is the number of SM sampling traps dropped.
	LostSamples uint64
	// Preemptions is the number of preemption bursts.
	Preemptions uint64
	// CorruptedCells is the number of matrix cells decayed or saturated.
	CorruptedCells uint64
}

// Total sums every injection counter.
func (s Stats) Total() uint64 {
	return s.Shootdowns + s.MigrationFlushes + s.DroppedScans +
		s.LostSamples + s.Preemptions + s.CorruptedCells
}

// String renders the non-zero counters compactly.
func (s Stats) String() string {
	var parts []string
	for _, c := range []struct {
		name string
		n    uint64
	}{
		{"shootdowns", s.Shootdowns},
		{"migflushes", s.MigrationFlushes},
		{"dropped-scans", s.DroppedScans},
		{"lost-samples", s.LostSamples},
		{"preemptions", s.Preemptions},
		{"corrupted-cells", s.CorruptedCells},
	} {
		if c.n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c.name, c.n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Injection is a plan armed on one run: it implements sim.Perturber for
// the engine-side scenarios and wraps the run's detector for the
// detector-side ones. Build one Injection per run (it is single-run,
// single-goroutine state, like a Checker).
type Injection struct {
	plan Plan
	n    int // cores/threads
	env  sim.CheckEnv

	// Independent per-scenario RNG streams: arming or re-rating one
	// scenario must not perturb another's decision sequence.
	rng [numKinds]*rand.Rand

	stats Stats
}

// New arms a plan for a run on n cores. An empty plan yields an Injection
// whose Perturber() is nil and whose WrapDetector() is the identity, so
// the rate-0 cost is exactly the engine's disarmed-hook cost.
func New(plan Plan, n int) *Injection {
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	inj := &Injection{plan: plan, n: n}
	for k := range inj.rng {
		if plan.Intensity[k] > 0 {
			inj.rng[k] = rand.New(rand.NewSource(runner.Seed(plan.Seed, "fault", Kind(k).String())))
		}
	}
	return inj
}

// Plan returns the armed plan.
func (inj *Injection) Plan() Plan { return inj.plan }

// Stats returns the injection counts so far.
func (inj *Injection) Stats() Stats { return inj.stats }

// engineArmed reports whether any sim.Perturber-side scenario is active.
func (inj *Injection) engineArmed() bool {
	return inj.rng[ShootdownStorm] != nil || inj.rng[MigrationFlush] != nil ||
		inj.rng[PreemptionBurst] != nil
}

// detectorArmed reports whether any detector-side scenario is active.
func (inj *Injection) detectorArmed() bool {
	return inj.rng[ScanDrop] != nil || inj.rng[SampleLoss] != nil ||
		inj.rng[MatrixDecay] != nil
}

// Perturber returns the sim.Perturber to arm on the run, or nil when no
// engine-side scenario is active. The explicit nil matters: handing the
// engine a typed-nil interface would defeat its disarmed fast path.
func (inj *Injection) Perturber() sim.Perturber {
	if inj == nil || !inj.engineArmed() {
		return nil
	}
	return inj
}

// Begin implements sim.Perturber.
func (inj *Injection) Begin(env sim.CheckEnv) { inj.env = env }

// OnQuantum implements sim.Perturber: shootdown storms and preemption
// bursts fire here, each from its own RNG stream. The per-event rates are
// expanded over the quantum's event count (one independent draw per
// event), so a scenario's expected firing frequency is the same as if it
// were sampled on every event — the hook is merely delivered at the
// scheduling-tick granularity real storms and preemptions arrive at.
func (inj *Injection) OnQuantum(now uint64, thread int, events int) uint64 {
	if rng := inj.rng[ShootdownStorm]; rng != nil {
		p := inj.plan.Intensity[ShootdownStorm] * shootdownPerEvent
		for e := 0; e < events; e++ {
			if rng.Float64() < p {
				inj.stats.Shootdowns++
				for i, k := 0, 1+rng.Intn(3); i < k; i++ {
					inj.env.FlushTLB(rng.Intn(inj.n))
				}
			}
		}
	}
	var stall uint64
	if rng := inj.rng[PreemptionBurst]; rng != nil {
		p := inj.plan.Intensity[PreemptionBurst] * preemptPerEvent
		for e := 0; e < events; e++ {
			if rng.Float64() < p {
				inj.stats.Preemptions++
				stall += preemptStallCycles
			}
		}
	}
	return stall
}

// OnMigration implements sim.Perturber: with probability equal to the
// MigrationFlush intensity, each migrated thread's destination core loses
// its TLB contents (the view was already rebuilt, so Placement[th] is the
// core the thread continues on).
func (inj *Injection) OnMigration(now uint64, moved []int) {
	rng := inj.rng[MigrationFlush]
	if rng == nil {
		return
	}
	for _, th := range moved {
		if rng.Float64() < inj.plan.Intensity[MigrationFlush] {
			inj.stats.MigrationFlushes++
			inj.env.FlushTLB(inj.env.Placement[th])
		}
	}
}

var _ sim.Perturber = (*Injection)(nil)
var _ comm.Detector = (*faultyDetector)(nil)
