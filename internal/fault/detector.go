package fault

import (
	"tlbmap/internal/comm"
	"tlbmap/internal/tlb"
	"tlbmap/internal/vm"
)

// WrapDetector arms the detector-side scenarios on d: SampleLoss
// intercepts the SM trap path, ScanDrop discards HM scan windows, and
// MatrixDecay corrupts published matrices. When none of the three is
// armed (or d is nil / the null detector) the detector is returned
// unchanged, so a clean run pays nothing.
func (inj *Injection) WrapDetector(d comm.Detector) comm.Detector {
	if inj == nil || !inj.detectorArmed() || d == nil || d.Matrix() == nil {
		return d
	}
	return &faultyDetector{
		inner:   d,
		inj:     inj,
		dropped: comm.NewMatrix(d.Matrix().N()),
	}
}

// faultyDetector interposes on the detection path. It forwards everything
// to the wrapped detector but (a) drops sampling traps before they reach
// it, (b) subtracts the contribution of dropped scan windows from the
// published matrix, and (c) corrupts published matrix snapshots.
//
// The wrapped detector's own matrix stays untouched and monotone; the
// faults live entirely in the published view, which is what the online
// mapper and the accuracy scoring consume.
type faultyDetector struct {
	inner comm.Detector
	inj   *Injection
	// dropped accumulates the matrix deltas of dropped scan windows;
	// Matrix() subtracts it from the inner matrix.
	dropped *comm.Matrix
	// prev snapshots the inner matrix at the last observed scan, so a
	// scan's delta can be isolated after the fact (a scan cannot be
	// un-run: the decision to drop its result comes after the inner
	// detector already merged it).
	prev *comm.Matrix
}

// Name implements comm.Detector; the inner name is kept so result labels
// (SM/HM) stay stable — fault state is reported via Injection.Stats.
func (d *faultyDetector) Name() string { return d.inner.Name() }

// OnAccess implements comm.Detector.
func (d *faultyDetector) OnAccess(thread int, addr vm.Addr) { d.inner.OnAccess(thread, addr) }

// OnTLBMiss implements comm.Detector: with probability equal to the
// SampleLoss intensity the trap is lost — the inner detector never sees
// the miss, charges no search cost, and its per-core sampling counter
// does not advance.
func (d *faultyDetector) OnTLBMiss(thread int, page vm.Page, tlbs comm.TLBView) uint64 {
	if rng := d.inj.rng[SampleLoss]; rng != nil &&
		rng.Float64() < d.inj.plan.Intensity[SampleLoss] {
		d.inj.stats.LostSamples++
		return 0
	}
	return d.inner.OnTLBMiss(thread, page, tlbs)
}

// MaybeScan implements comm.Detector: the inner scan runs normally (the
// schedule must stay intact so later windows open at the right times),
// but with probability equal to the ScanDrop intensity its result is
// discarded — the window's matrix delta is remembered for subtraction and
// no detection cost is charged (the lost window did no useful work the
// run would account for).
func (d *faultyDetector) MaybeScan(now uint64, tlbs comm.TLBView) uint64 {
	cost := d.inner.MaybeScan(now, tlbs)
	rng := d.inj.rng[ScanDrop]
	if cost == 0 || rng == nil {
		return cost
	}
	cur := d.inner.Matrix()
	if rng.Float64() < d.inj.plan.Intensity[ScanDrop] {
		d.inj.stats.DroppedScans++
		delta := cur.Sub(d.prev)
		for i := 0; i < delta.N(); i++ {
			for j := i + 1; j < delta.N(); j++ {
				d.dropped.Add(i, j, delta.At(i, j))
			}
		}
		cost = 0
	}
	d.prev = cur.Clone()
	return cost
}

// Matrix implements comm.Detector: the published view is the inner matrix
// minus dropped windows, with MatrixDecay corruption applied on top. Each
// call returns a fresh snapshot; the inner matrix is never modified.
func (d *faultyDetector) Matrix() *comm.Matrix {
	base := d.inner.Matrix()
	if base == nil {
		return nil
	}
	out := base.Sub(d.dropped)
	d.corrupt(out)
	return out
}

// corrupt applies MatrixDecay to a published snapshot: a seeded selection
// of cells either loses high-order bits (decay) or saturates at the
// matrix maximum (stuck counter). Corruption is re-rolled per snapshot,
// so successive epochs see different damage — exactly the instability the
// confidence score in internal/mapping is built to catch.
func (d *faultyDetector) corrupt(m *comm.Matrix) {
	rng := d.inj.rng[MatrixDecay]
	if rng == nil {
		return
	}
	n := m.N()
	pairs := n * (n - 1) / 2
	hits := int(d.inj.plan.Intensity[MatrixDecay] * decayPerCell * float64(pairs))
	if hits == 0 && rng.Float64() < d.inj.plan.Intensity[MatrixDecay]*decayPerCell*float64(pairs) {
		hits = 1
	}
	max := m.Max()
	for h := 0; h < hits; h++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		d.inj.stats.CorruptedCells++
		if rng.Intn(2) == 0 {
			m.Set(i, j, m.At(i, j)>>(1+rng.Intn(4))) // decay: drop high bits
		} else {
			m.Set(i, j, max) // saturate: stuck at the hottest cell's value
		}
	}
}

// Searches implements comm.Detector.
func (d *faultyDetector) Searches() uint64 { return d.inner.Searches() }

// UsePresenceIndex implements comm.PresenceIndexUser, forwarding to the
// wrapped detector: the index stays consistent through injected flushes
// and shootdowns because the TLBs themselves maintain it, so a faulted
// detector may keep using the fast path.
func (d *faultyDetector) UsePresenceIndex(ix *tlb.PresenceIndex) {
	if u, ok := d.inner.(comm.PresenceIndexUser); ok {
		u.UsePresenceIndex(ix)
	}
}
