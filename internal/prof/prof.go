// Package prof wires Go's standard profilers into the command-line tools.
// Every CLI registers the same three flags — -cpuprofile, -memprofile and
// -trace — so a slow run can be profiled in place:
//
//	tlbmap -bench SP -mech HM -cpuprofile cpu.pprof
//	go tool pprof cpu.pprof
//
// The package has no dependencies beyond the standard library and costs
// nothing when the flags are unset.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the output paths of the three profilers.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register adds the profiling flags to a flag set (use flag.CommandLine for
// the process-wide set) and returns the struct they populate.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start begins whichever profilers were requested and returns a stop function
// that must run before the process exits (defer it right after flag.Parse).
// The heap profile is captured inside stop, after a final GC, so it reflects
// live memory at the end of the run.
func (f *Flags) Start() (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}

	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("prof: %w", err))
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return fail(fmt.Errorf("prof: start CPU profile: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			file.Close()
		})
	}

	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return fail(fmt.Errorf("prof: %w", err))
		}
		if err := trace.Start(file); err != nil {
			file.Close()
			return fail(fmt.Errorf("prof: start trace: %w", err))
		}
		stops = append(stops, func() {
			trace.Stop()
			file.Close()
		})
	}

	if f.MemProfile != "" {
		path := f.MemProfile
		stops = append(stops, func() {
			file, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer file.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(file); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
		})
	}

	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}
