package trace

import (
	"testing"

	"tlbmap/internal/vm"
)

// drainSource drives a Source with the engine's barrier semantics —
// round-robin, one batch per runnable thread per round, releasing the
// barrier once every alive thread has parked — and returns every batch
// each thread yielded (events deep-copied, since sources may reuse or
// alias storage between resumes).
func drainSource(t *testing.T, src Source) [][]Batch {
	t.Helper()
	n := src.NumThreads()
	out := make([][]Batch, n)
	started := make([]bool, n)
	atBarrier := make([]bool, n)
	done := make([]bool, n)
	alive := n
	for rounds := 0; alive > 0; rounds++ {
		if rounds > 1<<20 {
			t.Fatal("drainSource: no progress")
		}
		ran := false
		for i := 0; i < n; i++ {
			if done[i] || atBarrier[i] {
				continue
			}
			ran = true
			var b Batch
			if !started[i] {
				started[i] = true
				b = src.Start(i)
			} else {
				b = src.Resume(i)
			}
			out[i] = append(out[i], Batch{
				Events:  append([]Event(nil), b.Events...),
				Barrier: b.Barrier,
				Done:    b.Done,
			})
			switch {
			case b.Done:
				done[i] = true
				alive--
			case b.Barrier:
				atBarrier[i] = true
			}
		}
		if !ran {
			released := false
			for i := 0; i < n; i++ {
				if !done[i] && atBarrier[i] {
					atBarrier[i] = false
					released = true
				}
			}
			if !released {
				t.Fatal("drainSource: stuck with threads alive but none runnable")
			}
		}
	}
	return out
}

func batchesEqual(t *testing.T, name string, want, got [][]Batch) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d threads vs %d", name, len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: thread %d yielded %d batches, replay yielded %d",
				name, i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			w, g := want[i][j], got[i][j]
			if w.Barrier != g.Barrier || w.Done != g.Done || len(w.Events) != len(g.Events) {
				t.Fatalf("%s: thread %d batch %d: want %d events barrier=%v done=%v, got %d/%v/%v",
					name, i, j, len(w.Events), w.Barrier, w.Done, len(g.Events), g.Barrier, g.Done)
			}
			for k := range w.Events {
				if w.Events[k] != g.Events[k] {
					t.Fatalf("%s: thread %d batch %d event %d: want %v, got %v",
						name, i, j, k, w.Events[k], g.Events[k])
				}
			}
		}
	}
}

// batchShape describes one expected batch as (event count, terminator).
type batchShape struct {
	n       int
	barrier bool
	done    bool
}

// TestCompileEdgeCases is the determinism edge-case table the compiler
// must preserve exactly: zero-event threads, barrier as the first event,
// Compute-only streams, quantum sizes that do not divide batch lengths,
// and streams landing exactly on a quantum boundary. For each case it
// checks the recorded batch structure against the expected shape and that
// replay reproduces the goroutine path batch for batch.
func TestCompileEdgeCases(t *testing.T) {
	loads := func(t *Thread, n int) {
		for i := 0; i < n; i++ {
			t.Load(vm.Addr(i * 64))
		}
	}
	cases := []struct {
		name     string
		quantum  int
		programs []Program
		want     [][]batchShape // per thread
	}{
		{
			name:     "zero-event-thread",
			quantum:  4,
			programs: []Program{func(t *Thread) {}},
			want:     [][]batchShape{{{0, false, true}}},
		},
		{
			name:    "zero-event-thread-among-busy",
			quantum: 4,
			programs: []Program{
				func(t *Thread) { loads(t, 3); t.Barrier() },
				func(t *Thread) { t.Barrier() },
			},
			want: [][]batchShape{
				{{3, true, false}, {0, false, true}},
				{{0, true, false}, {0, false, true}},
			},
		},
		{
			name:    "barrier-as-first-event",
			quantum: 4,
			programs: []Program{
				func(t *Thread) { t.Barrier(); loads(t, 2) },
				func(t *Thread) { t.Barrier(); loads(t, 1) },
			},
			want: [][]batchShape{
				{{0, true, false}, {2, false, true}},
				{{0, true, false}, {1, false, true}},
			},
		},
		{
			name:    "compute-only-stream",
			quantum: 3,
			programs: []Program{func(t *Thread) {
				for i := 0; i < 7; i++ {
					t.Compute(10 + uint64(i))
				}
			}},
			want: [][]batchShape{{{3, false, false}, {3, false, false}, {1, false, true}}},
		},
		{
			name:    "quantum-does-not-divide-length",
			quantum: 256,
			programs: []Program{func(t *Thread) {
				loads(t, 300)
			}},
			want: [][]batchShape{{{256, false, false}, {44, false, true}}},
		},
		{
			name:    "exact-quantum-then-barrier",
			quantum: 8,
			programs: []Program{
				func(t *Thread) { loads(t, 8); t.Barrier(); loads(t, 1) },
				func(t *Thread) { t.Barrier() },
			},
			want: [][]batchShape{
				{{8, false, false}, {0, true, false}, {1, false, true}},
				{{0, true, false}, {0, false, true}},
			},
		},
		{
			name:    "exact-quantum-then-done",
			quantum: 8,
			programs: []Program{func(t *Thread) { loads(t, 16) }},
			want:    [][]batchShape{{{8, false, false}, {8, false, false}, {0, false, true}}},
		},
		{
			name:    "uneven-exit-across-phases",
			quantum: 4,
			programs: []Program{
				func(t *Thread) { loads(t, 2); t.Barrier(); loads(t, 1) },
				func(t *Thread) { loads(t, 1); t.Barrier(); loads(t, 2); t.Barrier(); loads(t, 3) },
			},
			want: [][]batchShape{
				{{2, true, false}, {1, false, true}},
				{{1, true, false}, {2, true, false}, {3, false, true}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Compile(NewTeam(tc.programs, tc.quantum))
			if c.NumThreads() != len(tc.programs) {
				t.Fatalf("NumThreads = %d, want %d", c.NumThreads(), len(tc.programs))
			}
			var wantTotal uint64
			for i, shapes := range tc.want {
				if got := c.Batches(i); got != len(shapes) {
					t.Fatalf("thread %d: %d batches recorded, want %d", i, got, len(shapes))
				}
				prev := 0
				for j, s := range shapes {
					m := c.marks[i][j]
					if m.end-prev != s.n || m.barrier != s.barrier || m.done != s.done {
						t.Fatalf("thread %d batch %d: recorded (%d events, barrier=%v, done=%v), want (%d, %v, %v)",
							i, j, m.end-prev, m.barrier, m.done, s.n, s.barrier, s.done)
					}
					prev = m.end
					wantTotal += uint64(s.n)
				}
				if len(c.ThreadEvents(i)) != prev {
					t.Fatalf("thread %d: flat stream has %d events, marks cover %d",
						i, len(c.ThreadEvents(i)), prev)
				}
			}
			if c.NumEvents() != wantTotal {
				t.Fatalf("NumEvents = %d, want %d", c.NumEvents(), wantTotal)
			}
			// Replay must reproduce the goroutine path batch for batch.
			ref := drainSource(t, NewTeam(tc.programs, tc.quantum))
			batchesEqual(t, tc.name, ref, drainSource(t, c.NewSource()))
			// A reset cursor serves the identical sequence again.
			r := c.NewSource()
			drainSource(t, r)
			r.Reset()
			batchesEqual(t, tc.name+"/reset", ref, drainSource(t, r))
		})
	}
}

// TestCompileMatchesGoroutineBatches runs a multi-phase SPMD kernel with
// stores, computes and barriers through both paths and compares every
// batch, including with a quantum that does not divide the phase lengths.
func TestCompileMatchesGoroutineBatches(t *testing.T) {
	body := func(t *Thread) {
		id := t.ID()
		for phase := 0; phase < 3; phase++ {
			for i := 0; i < 37+13*id; i++ {
				a := vm.Addr((id*1024 + i*64 + phase) % (1 << 16))
				if i%3 == 0 {
					t.Store(a)
				} else {
					t.Load(a)
				}
				if i%5 == 0 {
					t.Compute(uint64(7 + i%11))
				}
			}
			t.Barrier()
		}
	}
	for _, quantum := range []int{7, 64, 256} {
		c := Compile(SPMD(4, body, quantum))
		ref := drainSource(t, SPMD(4, body, quantum))
		batchesEqual(t, "spmd", ref, drainSource(t, c.NewSource()))
	}
}

// TestCompileCheckedDetectsScheduleDependence verifies that a kernel whose
// emissions depend on cross-thread timing within a barrier phase is
// rejected, while a race-free kernel compiles clean.
func TestCompileCheckedDetectsScheduleDependence(t *testing.T) {
	racy := func() *Team {
		shared := 0
		return NewTeam([]Program{
			func(t *Thread) { shared = 1; t.Barrier() },
			func(t *Thread) {
				// Emits a different stream depending on whether thread 0
				// ran first within this phase.
				for i := 0; i <= shared; i++ {
					t.Load(vm.Addr(i * 64))
				}
				t.Barrier()
			},
		}, 16)
	}
	if _, err := CompileChecked(racy); err == nil {
		t.Fatal("CompileChecked accepted a schedule-dependent kernel")
	}
	clean := func() *Team {
		return SPMD(3, func(t *Thread) {
			for i := 0; i < 10; i++ {
				t.Load(vm.Addr(t.ID()*4096 + i*64))
			}
			t.Barrier()
			t.Compute(100)
		}, 4)
	}
	c, err := CompileChecked(clean)
	if err != nil {
		t.Fatalf("CompileChecked rejected a race-free kernel: %v", err)
	}
	batchesEqual(t, "checked", drainSource(t, clean()), drainSource(t, c.NewSource()))
}

// TestReplayResumePastDonePanics pins the driver-bug guard.
func TestReplayResumePastDonePanics(t *testing.T) {
	c := Compile(NewTeam([]Program{func(t *Thread) {}}, 4))
	r := c.NewSource()
	if b := r.Start(0); !b.Done {
		t.Fatalf("first batch of an empty thread should be Done, got %+v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Resume past Done did not panic")
		}
	}()
	r.Resume(0)
}

// TestConcurrentReplayCursors interleaves two cursors over one Compiled
// and checks they serve identical, independent sequences — the
// compile-once/replay-many contract the harness relies on.
func TestConcurrentReplayCursors(t *testing.T) {
	body := func(t *Thread) {
		for i := 0; i < 50; i++ {
			t.Load(vm.Addr(i * 64))
		}
		t.Barrier()
		t.Store(vm.Addr(0))
	}
	c := Compile(SPMD(2, body, 16))
	a, b := c.NewSource(), c.NewSource()
	// Advance cursor a by one batch first, then drain both fully: the
	// partially advanced cursor must be unaffected by b's progress.
	first := a.Start(0)
	ref := drainSource(t, c.NewSource())
	if len(first.Events) != len(ref[0][0].Events) {
		t.Fatalf("cursor a first batch has %d events, want %d", len(first.Events), len(ref[0][0].Events))
	}
	batchesEqual(t, "cursor-b", ref, drainSource(t, b))
	a.Reset()
	batchesEqual(t, "cursor-a", ref, drainSource(t, a))
}
