package trace

import (
	"fmt"

	"tlbmap/internal/vm"
)

// F64 is a traced one-dimensional float64 array living in the simulated
// address space. Every Get/Set both performs the real Go operation (so
// kernels compute real values) and emits the corresponding simulated memory
// access on the calling thread.
type F64 struct {
	base vm.Addr
	data []float64
}

// NewF64 allocates a traced float64 array of length n on fresh pages, so
// distinct arrays never share a page (no cross-array false communication).
func NewF64(as *vm.AddressSpace, n int) *F64 {
	return &F64{base: as.AllocPageAligned(int64(n) * 8), data: make([]float64, n)}
}

// Len returns the array length.
func (a *F64) Len() int { return len(a.data) }

// Addr returns the simulated virtual address of element i.
func (a *F64) Addr(i int) vm.Addr { return a.base + vm.Addr(i*8) }

// Get loads element i on thread t.
func (a *F64) Get(t *Thread, i int) float64 {
	t.Load(a.Addr(i))
	return a.data[i]
}

// Set stores v into element i on thread t.
func (a *F64) Set(t *Thread, i int, v float64) {
	t.Store(a.Addr(i))
	a.data[i] = v
}

// Add accumulates v into element i on thread t (a load plus a store, the
// read-modify-write at the heart of reduction and stencil updates).
func (a *F64) Add(t *Thread, i int, v float64) {
	t.Load(a.Addr(i))
	t.Store(a.Addr(i))
	a.data[i] += v
}

// Peek reads element i without tracing (initialization/verification only).
func (a *F64) Peek(i int) float64 { return a.data[i] }

// Poke writes element i without tracing (initialization only).
func (a *F64) Poke(i int, v float64) { a.data[i] = v }

// Fill sets every element to v without tracing.
func (a *F64) Fill(v float64) {
	for i := range a.data {
		a.data[i] = v
	}
}

// I64 is a traced one-dimensional int64 array in the simulated address
// space (key arrays and bucket counters of the IS kernel).
type I64 struct {
	base vm.Addr
	data []int64
}

// NewI64 allocates a traced int64 array of length n on fresh pages.
func NewI64(as *vm.AddressSpace, n int) *I64 {
	return &I64{base: as.AllocPageAligned(int64(n) * 8), data: make([]int64, n)}
}

// Len returns the array length.
func (a *I64) Len() int { return len(a.data) }

// Addr returns the simulated virtual address of element i.
func (a *I64) Addr(i int) vm.Addr { return a.base + vm.Addr(i*8) }

// Get loads element i on thread t.
func (a *I64) Get(t *Thread, i int) int64 {
	t.Load(a.Addr(i))
	return a.data[i]
}

// Set stores v into element i on thread t.
func (a *I64) Set(t *Thread, i int, v int64) {
	t.Store(a.Addr(i))
	a.data[i] = v
}

// Add accumulates v into element i on thread t.
func (a *I64) Add(t *Thread, i int, v int64) {
	t.Load(a.Addr(i))
	t.Store(a.Addr(i))
	a.data[i] += v
}

// Peek reads element i without tracing.
func (a *I64) Peek(i int) int64 { return a.data[i] }

// Poke writes element i without tracing.
func (a *I64) Poke(i int, v int64) { a.data[i] = v }

// Grid3 is a traced three-dimensional float64 grid stored in z-major order
// (z slowest, x fastest), the layout of the NPB structured-grid kernels.
// Slicing the z axis across threads gives the 1-D domain decomposition
// whose neighbour communication dominates BT, LU, MG, SP and UA.
type Grid3 struct {
	arr        *F64
	Nz, Ny, Nx int
}

// NewGrid3 allocates a traced nz x ny x nx grid on fresh pages.
func NewGrid3(as *vm.AddressSpace, nz, ny, nx int) *Grid3 {
	if nz <= 0 || ny <= 0 || nx <= 0 {
		panic(fmt.Sprintf("trace: invalid grid %dx%dx%d", nz, ny, nx))
	}
	return &Grid3{arr: NewF64(as, nz*ny*nx), Nz: nz, Ny: ny, Nx: nx}
}

// Index returns the flat index of (z, y, x).
func (g *Grid3) Index(z, y, x int) int { return (z*g.Ny+y)*g.Nx + x }

// Get loads element (z, y, x) on thread t.
func (g *Grid3) Get(t *Thread, z, y, x int) float64 { return g.arr.Get(t, g.Index(z, y, x)) }

// Set stores v into element (z, y, x) on thread t.
func (g *Grid3) Set(t *Thread, z, y, x int, v float64) { g.arr.Set(t, g.Index(z, y, x), v) }

// Add accumulates v into element (z, y, x) on thread t.
func (g *Grid3) Add(t *Thread, z, y, x int, v float64) { g.arr.Add(t, g.Index(z, y, x), v) }

// Peek reads element (z, y, x) without tracing.
func (g *Grid3) Peek(z, y, x int) float64 { return g.arr.Peek(g.Index(z, y, x)) }

// Poke writes element (z, y, x) without tracing.
func (g *Grid3) Poke(z, y, x int, v float64) { g.arr.Poke(g.Index(z, y, x), v) }

// Fill sets every element without tracing.
func (g *Grid3) Fill(v float64) { g.arr.Fill(v) }

// Flat returns the underlying traced 1-D array.
func (g *Grid3) Flat() *F64 { return g.arr }

// Matrix2 is a traced two-dimensional float64 matrix in row-major order
// (the FT transpose buffers and CG working matrices).
type Matrix2 struct {
	arr        *F64
	Rows, Cols int
}

// NewMatrix2 allocates a traced rows x cols matrix on fresh pages.
func NewMatrix2(as *vm.AddressSpace, rows, cols int) *Matrix2 {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("trace: invalid matrix %dx%d", rows, cols))
	}
	return &Matrix2{arr: NewF64(as, rows*cols), Rows: rows, Cols: cols}
}

// Index returns the flat index of (r, c).
func (m *Matrix2) Index(r, c int) int { return r*m.Cols + c }

// Get loads element (r, c) on thread t.
func (m *Matrix2) Get(t *Thread, r, c int) float64 { return m.arr.Get(t, m.Index(r, c)) }

// Set stores v into element (r, c) on thread t.
func (m *Matrix2) Set(t *Thread, r, c int, v float64) { m.arr.Set(t, m.Index(r, c), v) }

// Peek reads element (r, c) without tracing.
func (m *Matrix2) Peek(r, c int) float64 { return m.arr.Peek(m.Index(r, c)) }

// Poke writes element (r, c) without tracing.
func (m *Matrix2) Poke(r, c int, v float64) { m.arr.Poke(m.Index(r, c), v) }

// Flat returns the underlying traced 1-D array.
func (m *Matrix2) Flat() *F64 { return m.arr }
