package trace

import "fmt"

// Source is the engine-facing supplier of event batches. Two
// implementations exist: *Team (the reference token-passing path — one
// goroutine per thread, batches handed over channels) and *Replay (flat
// precompiled arrays, no goroutines). The engine drives either through the
// same three calls, so every scheduling decision — batch boundaries,
// barrier parking, done detection — is taken identically on both paths.
type Source interface {
	// NumThreads returns the number of threads in the workload.
	NumThreads() int
	// Start releases thread i for the first time and returns its first
	// batch.
	Start(i int) Batch
	// Resume lets thread i run until its next yield and returns the batch
	// it produced. The caller owns the returned Events slice only until
	// the next Start/Resume of the same thread.
	Resume(i int) Batch
}

// NumThreads returns the team size, making *Team a Source.
func (tm *Team) NumThreads() int { return len(tm.Threads) }

// mark records one batch boundary inside a thread's flat event stream:
// the exclusive end offset plus the terminator the thread yielded with.
// Replay reconstructs the exact batch sequence the goroutine produced —
// same event counts, same empty barrier batches, same final Done batch —
// so everything keyed on batch boundaries (fault-injection quantum hooks,
// cancellation polls, barrier alignment) behaves identically on both paths.
type mark struct {
	end     int
	barrier bool
	done    bool
}

// Compiled is a workload compiled to flat form: one contiguous []Event per
// thread plus the recorded batch boundaries. It is immutable after Compile
// and safe to share between any number of concurrent Replay cursors, which
// is what makes compile-once/replay-many cheap: the harness compiles each
// benchmark kernel once and every (placement × repetition) job replays the
// same arrays.
type Compiled struct {
	events [][]Event
	marks  [][]mark
}

// NumThreads returns the number of threads in the compiled workload.
func (c *Compiled) NumThreads() int { return len(c.events) }

// NumEvents returns the total event count across all threads.
func (c *Compiled) NumEvents() uint64 {
	var n uint64
	for _, evs := range c.events {
		n += uint64(len(evs))
	}
	return n
}

// ThreadEvents returns thread i's full flat event stream. The slice
// aliases compiled storage and must not be mutated.
func (c *Compiled) ThreadEvents(i int) []Event { return c.events[i] }

// Batches returns how many batches thread i yields during replay.
func (c *Compiled) Batches(i int) int { return len(c.marks[i]) }

// NewSource returns a fresh replay cursor positioned at the beginning.
func (c *Compiled) NewSource() *Replay {
	return &Replay{c: c, next: make([]int32, len(c.events))}
}

// Replay walks a Compiled workload, serving zero-copy subslices chunked
// exactly at the recorded batch boundaries. A Replay is single-run state
// (a few bytes of cursor per thread); allocate one per run with NewSource
// or recycle it with Reset. Replaying performs no allocation, no goroutine
// switches and no channel operations.
type Replay struct {
	c    *Compiled
	next []int32 // per-thread index of the next mark to serve
}

// NumThreads returns the number of threads in the workload.
func (r *Replay) NumThreads() int { return len(r.c.events) }

// Start serves thread i's first batch. Identical to Resume; the separate
// name satisfies Source and documents engine start-up.
func (r *Replay) Start(i int) Batch { return r.Resume(i) }

// Resume serves thread i's next recorded batch. It panics when called
// after the thread's Done batch — the engine never resumes a finished
// thread, so this indicates a driver bug.
func (r *Replay) Resume(i int) Batch {
	k := r.next[i]
	ms := r.c.marks[i]
	if int(k) >= len(ms) {
		panic(fmt.Sprintf("trace: replay resumed thread %d past its Done batch", i))
	}
	r.next[i] = k + 1
	m := ms[k]
	start := 0
	if k > 0 {
		start = ms[k-1].end
	}
	return Batch{
		Events:  r.c.events[i][start:m.end:m.end],
		Barrier: m.barrier,
		Done:    m.done,
	}
}

// Reset rewinds every thread to its first batch so the Replay can drive
// another run without reallocating.
func (r *Replay) Reset() {
	for i := range r.next {
		r.next[i] = 0
	}
}

// Compile runs every thread of the team to completion once, recording each
// thread's event stream into flat contiguous storage. The team is consumed:
// its goroutines run to completion here and it must not be reused.
//
// Threads are drained one barrier phase at a time in ascending thread
// order, which is one legal serialization of the team (the engine
// interleaves phases differently but — for kernels whose emitted stream
// does not depend on cross-thread data timing within a phase — produces
// the same per-thread streams; every kernel in internal/workload satisfies
// this, enforced by the compiled-vs-goroutine differential tests). Kernels
// that race on traced data within a phase may record a stream that differs
// from a live-scheduled run; CompileChecked detects those, and the
// goroutine path remains the fallback.
func Compile(team *Team) *Compiled {
	return compileOrder(team, false)
}

// CompileChecked compiles the workload twice — draining barrier phases in
// ascending and in descending thread order — and fails if the recorded
// streams differ, which proves the kernel's emissions depend on
// cross-thread scheduling within a phase (a data race on traced arrays).
// Such kernels must stay on the goroutine path. mk must build a fresh
// team on every call.
func CompileChecked(mk func() *Team) (*Compiled, error) {
	asc := compileOrder(mk(), false)
	desc := compileOrder(mk(), true)
	if err := equalStreams(asc, desc); err != nil {
		return nil, fmt.Errorf("trace: workload is schedule-dependent, keep the goroutine path: %w", err)
	}
	return asc, nil
}

func compileOrder(team *Team, reverse bool) *Compiled {
	n := len(team.Threads)
	c := &Compiled{
		events: make([][]Event, n),
		marks:  make([][]mark, n),
	}
	started := make([]bool, n)
	atBarrier := make([]bool, n)
	done := make([]bool, n)
	alive := n
	record := func(i int, b Batch) {
		c.events[i] = append(c.events[i], b.Events...)
		c.marks[i] = append(c.marks[i], mark{
			end:     len(c.events[i]),
			barrier: b.Barrier,
			done:    b.Done,
		})
	}
	// Drain one barrier phase per outer iteration: each alive thread runs
	// until it parks at the barrier or finishes, then the barrier releases
	// and the next phase begins.
	for alive > 0 {
		for k := 0; k < n; k++ {
			i := k
			if reverse {
				i = n - 1 - k
			}
			if done[i] {
				continue
			}
			atBarrier[i] = false
			for {
				var b Batch
				if !started[i] {
					started[i] = true
					b = team.Start(i)
				} else {
					b = team.Resume(i)
				}
				record(i, b)
				if b.Done {
					done[i] = true
					alive--
					break
				}
				if b.Barrier {
					atBarrier[i] = true
					break
				}
			}
		}
	}
	return c
}

// equalStreams reports the first difference between two compiled
// workloads, comparing both the flat event streams and the recorded batch
// structure.
func equalStreams(a, b *Compiled) error {
	if len(a.events) != len(b.events) {
		return fmt.Errorf("thread counts differ: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		ae, be := a.events[i], b.events[i]
		if len(ae) != len(be) {
			return fmt.Errorf("thread %d emitted %d events vs %d", i, len(ae), len(be))
		}
		for j := range ae {
			if ae[j] != be[j] {
				return fmt.Errorf("thread %d event %d differs: %v %#x vs %v %#x",
					i, j, ae[j].Kind, uint64(ae[j].Addr), be[j].Kind, uint64(be[j].Addr))
			}
		}
		am, bm := a.marks[i], b.marks[i]
		if len(am) != len(bm) {
			return fmt.Errorf("thread %d yielded %d batches vs %d", i, len(am), len(bm))
		}
		for j := range am {
			if am[j] != bm[j] {
				return fmt.Errorf("thread %d batch %d boundary differs: %+v vs %+v", i, j, am[j], bm[j])
			}
		}
	}
	return nil
}
