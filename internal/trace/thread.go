// Package trace provides the programming model for simulated workloads:
// kernels are ordinary Go functions that issue Load/Store/Compute/Barrier
// calls against a Thread context, and the simulation engine consumes the
// resulting event stream with cycle-accurate interleaving.
//
// Execution is strictly token-passing: at most one thread goroutine runs at
// any instant (the engine resumes one thread, which fills a batch of events
// and parks again). Kernels therefore need no locks even when they share
// slices, and runs are fully deterministic.
package trace

import (
	"fmt"

	"tlbmap/internal/vm"
)

// Kind discriminates event types in a thread's stream.
type Kind uint8

// Event kinds.
const (
	// Load is a data read of Addr.
	Load Kind = iota
	// Store is a data write of Addr.
	Store
	// Compute models non-memory work: Addr holds the cycle count.
	Compute
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Compute:
		return "compute"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry of a thread's access stream.
type Event struct {
	Addr vm.Addr // virtual address, or cycle count for Compute
	Kind Kind
}

// Batch is one quantum of events handed from a thread to the engine.
type Batch struct {
	Events []Event
	// Barrier is set when the thread reached a barrier after Events.
	Barrier bool
	// Done is set when the thread function returned after Events.
	Done bool
}

// DefaultQuantum is the number of events a thread generates before yielding
// to the engine. It bounds the interleaving granularity: smaller values
// interleave threads more finely at the cost of more hand-offs.
const DefaultQuantum = 256

// Program is the body of one simulated thread.
type Program func(t *Thread)

// Thread is the per-thread context a Program runs against. Its methods may
// only be called from the Program's own goroutine.
type Thread struct {
	id      int
	n       int // total threads
	buf     []Event
	quantum int

	out    chan Batch
	resume chan struct{}
	done   bool
}

// ID returns the thread's index in [0, NumThreads).
func (t *Thread) ID() int { return t.id }

// NumThreads returns the number of threads in the team.
func (t *Thread) NumThreads() int { return t.n }

// Load records a data read of addr.
func (t *Thread) Load(addr vm.Addr) { t.emit(Event{Addr: addr, Kind: Load}) }

// Store records a data write of addr.
func (t *Thread) Store(addr vm.Addr) { t.emit(Event{Addr: addr, Kind: Store}) }

// Compute records cycles of non-memory work (arithmetic between accesses).
func (t *Thread) Compute(cycles uint64) {
	if cycles == 0 {
		return
	}
	t.emit(Event{Addr: vm.Addr(cycles), Kind: Compute})
}

// Barrier synchronizes all threads of the team, like an OpenMP barrier: the
// engine does not run this thread past the barrier until every thread has
// arrived, and arrival aligns the simulated clocks.
func (t *Thread) Barrier() {
	t.yield(Batch{Events: t.buf, Barrier: true})
}

func (t *Thread) emit(e Event) {
	t.buf = append(t.buf, e)
	if len(t.buf) >= t.quantum {
		t.yield(Batch{Events: t.buf})
	}
}

// yield hands the current batch to the engine and parks until resumed.
// The engine owns the Events slice until it resumes the thread.
func (t *Thread) yield(b Batch) {
	t.out <- b
	if !b.Done {
		<-t.resume
		t.buf = t.buf[:0]
	}
}

// Team is a set of threads ready to be driven by the engine.
type Team struct {
	Threads []*Thread
}

// NewTeam spawns one goroutine per program. No goroutine starts executing
// until the engine resumes it, preserving the single-token invariant.
// quantum <= 0 selects DefaultQuantum.
func NewTeam(programs []Program, quantum int) *Team {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	n := len(programs)
	team := &Team{Threads: make([]*Thread, n)}
	for i := range programs {
		t := &Thread{
			id:      i,
			n:       n,
			quantum: quantum,
			buf:     make([]Event, 0, quantum),
			// Capacity 1 keeps the strict token alternation (the thread
			// still only runs between receiving the token and sending its
			// batch) but turns each hand-off into an asynchronous send plus
			// a wake-up instead of a two-phase rendezvous.
			out:     make(chan Batch, 1),
			resume:  make(chan struct{}, 1),
		}
		team.Threads[i] = t
		go func(p Program, t *Thread) {
			<-t.resume
			p(t)
			t.done = true
			t.yield(Batch{Events: t.buf, Done: true})
		}(programs[i], t)
	}
	return team
}

// Resume lets thread i run until its next yield and returns the batch it
// produced. The caller must fully consume the batch before resuming the
// same thread again.
func (tm *Team) Resume(i int) Batch {
	t := tm.Threads[i]
	t.resume <- struct{}{}
	return <-t.out
}

// Start releases thread i for the first time and returns its first batch.
// Identical to Resume; the separate name documents engine start-up.
func (tm *Team) Start(i int) Batch { return tm.Resume(i) }

// SPMD builds a team running the same body on every thread, the common
// OpenMP-style single-program-multiple-data case.
func SPMD(n int, body Program, quantum int) *Team {
	programs := make([]Program, n)
	for i := range programs {
		programs[i] = body
	}
	return NewTeam(programs, quantum)
}
