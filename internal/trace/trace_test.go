package trace

import (
	"testing"

	"tlbmap/internal/vm"
)

// drain runs a team to completion, returning every event per thread and
// enforcing the barrier protocol the engine implements.
func drain(t *testing.T, team *Team) [][]Event {
	t.Helper()
	n := len(team.Threads)
	events := make([][]Event, n)
	type state struct{ done, barrier bool }
	st := make([]state, n)
	consume := func(i int, b Batch) {
		events[i] = append(events[i], b.Events...)
		st[i].done = b.Done
		st[i].barrier = b.Barrier
	}
	for i := 0; i < n; i++ {
		consume(i, team.Start(i))
	}
	for {
		progress := false
		allBarrier := true
		for i := 0; i < n; i++ {
			if st[i].done {
				continue
			}
			if !st[i].barrier {
				consume(i, team.Resume(i))
				progress = true
			}
			if !st[i].done && !st[i].barrier {
				allBarrier = false
			}
		}
		alive := 0
		for i := 0; i < n; i++ {
			if !st[i].done {
				alive++
			}
		}
		if alive == 0 {
			return events
		}
		if !progress && allBarrier {
			// Release the barrier.
			for i := 0; i < n; i++ {
				if !st[i].done && st[i].barrier {
					st[i].barrier = false
				}
			}
		}
	}
}

func TestThreadEventStream(t *testing.T) {
	team := NewTeam([]Program{func(th *Thread) {
		th.Load(100)
		th.Store(200)
		th.Compute(5)
		th.Compute(0) // zero compute emits nothing
	}}, 8)
	evs := drain(t, team)[0]
	want := []Event{
		{Addr: 100, Kind: Load},
		{Addr: 200, Kind: Store},
		{Addr: 5, Kind: Compute},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(evs), len(want), evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, evs[i], want[i])
		}
	}
}

func TestQuantumFlush(t *testing.T) {
	const q = 4
	team := NewTeam([]Program{func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Load(vm.Addr(i))
		}
	}}, q)
	// First batch must contain exactly q events.
	b := team.Start(0)
	if len(b.Events) != q || b.Done || b.Barrier {
		t.Fatalf("first batch: %d events done=%v barrier=%v", len(b.Events), b.Done, b.Barrier)
	}
	b = team.Resume(0)
	if len(b.Events) != q {
		t.Fatalf("second batch: %d events", len(b.Events))
	}
	b = team.Resume(0)
	if len(b.Events) != 2 || !b.Done {
		t.Fatalf("final batch: %d events done=%v", len(b.Events), b.Done)
	}
}

func TestBarrierBatchFlag(t *testing.T) {
	team := NewTeam([]Program{func(th *Thread) {
		th.Load(1)
		th.Barrier()
		th.Load(2)
	}}, 16)
	b := team.Start(0)
	if !b.Barrier || len(b.Events) != 1 {
		t.Fatalf("barrier batch: %+v", b)
	}
	b = team.Resume(0)
	if !b.Done || len(b.Events) != 1 || b.Events[0].Addr != 2 {
		t.Fatalf("final batch: %+v", b)
	}
}

func TestSPMDIdentity(t *testing.T) {
	team := SPMD(4, func(th *Thread) {
		th.Load(vm.Addr(th.ID()))
		if th.NumThreads() != 4 {
			t.Error("NumThreads wrong")
		}
	}, 0)
	evs := drain(t, team)
	for i := 0; i < 4; i++ {
		if len(evs[i]) != 1 || evs[i][0].Addr != vm.Addr(i) {
			t.Errorf("thread %d events = %v", i, evs[i])
		}
	}
}

func TestSingleTokenExecution(t *testing.T) {
	// With token passing, only one goroutine runs at a time, so an
	// unsynchronized shared counter must still count exactly.
	counter := 0
	team := SPMD(8, func(th *Thread) {
		for i := 0; i < 100; i++ {
			counter++
			th.Compute(1)
		}
	}, 16)
	drain(t, team)
	if counter != 800 {
		t.Errorf("counter = %d, want 800 (data race in token passing?)", counter)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Compute.String() != "compute" {
		t.Error("kind names")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind")
	}
}

func TestF64Array(t *testing.T) {
	as := vm.NewAddressSpace()
	a := NewF64(as, 10)
	if a.Len() != 10 {
		t.Fatal("len")
	}
	if a.Addr(0).Offset() != 0 {
		t.Error("array not page aligned")
	}
	if a.Addr(3) != a.Addr(0)+24 {
		t.Error("element addressing wrong")
	}
	b := NewF64(as, 10)
	if a.Addr(9).Page() == b.Addr(0).Page() {
		t.Error("arrays share a page")
	}
	// Traced ops compute real values.
	var got []Event
	team := NewTeam([]Program{func(th *Thread) {
		a.Set(th, 2, 1.5)
		a.Add(th, 2, 2.0)
		if v := a.Get(th, 2); v != 3.5 {
			t.Errorf("value = %v, want 3.5", v)
		}
	}}, 64)
	got = drain(t, team)[0]
	// Set: 1 store; Add: load+store; Get: 1 load.
	kinds := []Kind{Store, Load, Store, Load}
	if len(got) != len(kinds) {
		t.Fatalf("events = %v", got)
	}
	for i, k := range kinds {
		if got[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, got[i].Kind, k)
		}
		if got[i].Addr != a.Addr(2) {
			t.Errorf("event %d addr = %v", i, got[i].Addr)
		}
	}
	// Untraced access.
	a.Poke(5, 9)
	if a.Peek(5) != 9 {
		t.Error("poke/peek")
	}
	a.Fill(1)
	if a.Peek(5) != 1 || a.Peek(0) != 1 {
		t.Error("fill")
	}
}

func TestI64Array(t *testing.T) {
	as := vm.NewAddressSpace()
	a := NewI64(as, 4)
	team := NewTeam([]Program{func(th *Thread) {
		a.Set(th, 0, 7)
		a.Add(th, 0, 3)
		if a.Get(th, 0) != 10 {
			t.Error("i64 arithmetic")
		}
	}}, 64)
	drain(t, team)
	if a.Peek(0) != 10 {
		t.Error("value lost")
	}
	a.Poke(1, -5)
	if a.Peek(1) != -5 {
		t.Error("poke")
	}
	if a.Len() != 4 {
		t.Error("len")
	}
}

func TestGrid3Indexing(t *testing.T) {
	as := vm.NewAddressSpace()
	g := NewGrid3(as, 4, 3, 2)
	if g.Index(0, 0, 0) != 0 || g.Index(1, 0, 0) != 6 || g.Index(0, 1, 0) != 2 || g.Index(0, 0, 1) != 1 {
		t.Error("z-major indexing wrong")
	}
	g.Poke(3, 2, 1, 42)
	if g.Peek(3, 2, 1) != 42 {
		t.Error("poke/peek")
	}
	if g.Flat().Len() != 24 {
		t.Error("flat length")
	}
	g.Fill(2)
	if g.Peek(0, 0, 0) != 2 {
		t.Error("fill")
	}
	team := NewTeam([]Program{func(th *Thread) {
		g.Set(th, 1, 1, 1, 5)
		g.Add(th, 1, 1, 1, 1)
		if g.Get(th, 1, 1, 1) != 6 {
			t.Error("grid arithmetic")
		}
	}}, 64)
	drain(t, team)
}

func TestGrid3PanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad grid accepted")
		}
	}()
	NewGrid3(vm.NewAddressSpace(), 0, 1, 1)
}

func TestMatrix2(t *testing.T) {
	as := vm.NewAddressSpace()
	m := NewMatrix2(as, 3, 4)
	if m.Index(2, 3) != 11 {
		t.Error("row-major indexing")
	}
	m.Poke(1, 2, 8)
	if m.Peek(1, 2) != 8 {
		t.Error("poke/peek")
	}
	if m.Flat().Len() != 12 {
		t.Error("flat length")
	}
	team := NewTeam([]Program{func(th *Thread) {
		m.Set(th, 0, 0, 3)
		if m.Get(th, 0, 0) != 3 {
			t.Error("matrix get/set")
		}
	}}, 64)
	drain(t, team)
}

func TestMatrix2PanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad matrix accepted")
		}
	}()
	NewMatrix2(vm.NewAddressSpace(), 1, 0)
}
