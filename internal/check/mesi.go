package check

import (
	"tlbmap/internal/mem"
)

// mesiChecker maintains a shadow table of every cached copy and enforces
// the global MESI legality invariants on each transition:
//
//  1. a Modified or Exclusive L2 copy is the only valid L2 copy of its line
//     (no M+M, M+S, E+S, E+E coexistence);
//  2. private L1 copies only exist in Shared state (L1s are write-through)
//     and respect inclusion: an L1 copy implies a valid copy in the core's
//     L2 domain;
//  3. reported transitions depart from the state the shadow recorded
//     (catching missed or duplicated events);
//  4. at the end of the run the shadow matches the real cache contents
//     exactly, in both directions.
type mesiChecker struct {
	s *Suite

	l2 []map[mem.Line]mem.MESIState // shadow L2 state, by domain
	l1 []map[mem.Line]bool          // shadow L1 residency, by core
}

func (m *mesiChecker) init(cores, domains int) {
	m.l2 = make([]map[mem.Line]mem.MESIState, domains)
	for d := range m.l2 {
		m.l2[d] = make(map[mem.Line]mem.MESIState)
	}
	m.l1 = make([]map[mem.Line]bool, cores)
	for c := range m.l1 {
		m.l1[c] = make(map[mem.Line]bool)
	}
}

// checkLine enforces the global single-owner invariant for one line.
func (m *mesiChecker) checkLine(l mem.Line) {
	owners, sharers := 0, 0
	for d := range m.l2 {
		switch m.l2[d][l] {
		case mem.Modified, mem.Exclusive:
			owners++
		case mem.Shared:
			sharers++
		}
	}
	if owners > 1 || (owners == 1 && sharers > 0) {
		m.s.reportf("mesi", "line %#x has %d M/E owner(s) and %d S copy(ies): %s",
			uint64(l), owners, sharers, m.lineState(l))
	}
}

// lineState renders the per-domain states of a line for diagnostics.
func (m *mesiChecker) lineState(l mem.Line) string {
	out := make([]byte, len(m.l2))
	for d := range m.l2 {
		st, ok := m.l2[d][l]
		if !ok {
			st = mem.Invalid
		}
		out[d] = st.String()[0]
	}
	return string(out)
}

func (m *mesiChecker) onWrite(core int, l mem.Line) {
	// After a completed store the writer's domain must own the line in
	// Modified state — the fundamental write-back MESI postcondition.
	d := m.s.env.Machine.L2Domain(core)
	if st := m.l2[d][l]; st != mem.Modified {
		m.s.reportf("mesi", "store by core %d left line %#x in state %v (want M) in domain %d",
			core, uint64(l), st, d)
	}
	// And no other core's L1 may still hold the (now stale) line.
	for c := range m.l1 {
		if c != core && m.l1[c][l] {
			m.s.reportf("mesi", "store by core %d left a live L1 copy of line %#x on core %d",
				core, uint64(l), c)
		}
	}
	m.checkLine(l)
}

func (m *mesiChecker) onL1Install(core int, l mem.Line) {
	m.l1[core][l] = true
	// Inclusion: the backing L2 domain must hold the line.
	d := m.s.env.Machine.L2Domain(core)
	if m.l2[d][l] == mem.Invalid {
		m.s.reportf("mesi", "L1 install of line %#x on core %d without a copy in L2 domain %d",
			uint64(l), core, d)
	}
}

func (m *mesiChecker) onL1Drop(core int, l mem.Line) {
	if !m.l1[core][l] {
		m.s.reportf("mesi", "L1 drop of line %#x on core %d, which held no copy", uint64(l), core)
	}
	delete(m.l1[core], l)
}

func (m *mesiChecker) onL2Install(domain int, l mem.Line, st mem.MESIState) {
	if st == mem.Invalid {
		m.s.reportf("mesi", "install of line %#x in domain %d in Invalid state", uint64(l), domain)
	}
	if prev, ok := m.l2[domain][l]; ok {
		m.s.reportf("mesi", "install of line %#x in domain %d which already holds it in %v",
			uint64(l), domain, prev)
	}
	m.l2[domain][l] = st
	m.checkLine(l)
}

func (m *mesiChecker) onL2State(domain int, l mem.Line, old, new mem.MESIState) {
	if prev := m.l2[domain][l]; prev != old {
		m.s.reportf("mesi", "transition %v->%v of line %#x in domain %d, but shadow holds %v",
			old, new, uint64(l), domain, prev)
	}
	if new == mem.Invalid {
		delete(m.l2[domain], l)
		// Inclusion: invalidating an L2 line drops the L1 copies above
		// it first, so none may still be live when the event fires.
		for _, c := range domainCores(m.s, domain) {
			if m.l1[c][l] {
				m.s.reportf("mesi", "L2 invalidation of line %#x in domain %d left a live L1 copy on core %d",
					uint64(l), domain, c)
			}
		}
	} else {
		m.l2[domain][l] = new
	}
	m.checkLine(l)
}

func (m *mesiChecker) onL2Evict(domain int, l mem.Line, st mem.MESIState) {
	if prev, ok := m.l2[domain][l]; !ok || prev != st {
		m.s.reportf("mesi", "eviction of line %#x from domain %d in state %v, but shadow holds %v",
			uint64(l), domain, st, prev)
	}
	delete(m.l2[domain], l)
}

// checkAll re-verifies the single-owner invariant for every shadow-tracked
// line (on-demand sweep).
func (m *mesiChecker) checkAll() {
	seen := make(map[mem.Line]bool)
	for d := range m.l2 {
		for l := range m.l2[d] {
			if !seen[l] {
				seen[l] = true
				m.checkLine(l)
			}
		}
	}
}

// finish compares the shadow against the real cache contents, both ways:
// every shadow entry must be resident in the matching state, and every
// resident line must be in the shadow. A mismatch means the System mutated
// a cache without reporting the event — the observer plumbing itself is
// part of what this checker validates.
func (m *mesiChecker) finish() {
	m.checkAll()
	sys := m.s.env.System
	for d := range m.l2 {
		actual := make(map[mem.Line]mem.MESIState)
		sys.L2(d).Each(func(l mem.Line, st mem.MESIState) { actual[l] = st })
		for l, st := range m.l2[d] {
			if actual[l] != st {
				m.s.reportf("mesi", "shadow says domain %d holds line %#x in %v, cache says %v",
					d, uint64(l), st, actual[l])
			}
		}
		for l, st := range actual {
			if _, ok := m.l2[d][l]; !ok {
				m.s.reportf("mesi", "domain %d holds line %#x in %v unknown to the shadow",
					d, uint64(l), st)
			}
		}
	}
	for c := range m.l1 {
		actual := make(map[mem.Line]mem.MESIState)
		sys.L1(c).Each(func(l mem.Line, st mem.MESIState) { actual[l] = st })
		for l := range m.l1[c] {
			if _, ok := actual[l]; !ok {
				m.s.reportf("mesi", "shadow says core %d's L1 holds line %#x, cache disagrees", c, uint64(l))
			}
		}
		for l, st := range actual {
			if st != mem.Shared {
				m.s.reportf("mesi", "write-through L1 of core %d holds line %#x in %v (want S)",
					c, uint64(l), st)
			}
			if !m.l1[c][l] {
				m.s.reportf("mesi", "core %d's L1 holds line %#x unknown to the shadow", c, uint64(l))
			}
		}
	}
}

// domainCores lists the cores whose L2 domain is d.
func domainCores(s *Suite, d int) []int {
	var cores []int
	for c := 0; c < s.env.Machine.NumCores(); c++ {
		if s.env.Machine.L2Domain(c) == d {
			cores = append(cores, c)
		}
	}
	return cores
}
