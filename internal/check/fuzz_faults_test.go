package check

import (
	"testing"

	"tlbmap/internal/fault"
	"tlbmap/internal/topology"
)

// FuzzEngineVsOracleFaults is FuzzEngineVsOracle with the fault-injection
// layer in the loop: two extra parameters pick which scenarios to arm
// (faultMask, one bit per fault.Kind) and the injection seed. The
// invariant suite must hold no matter which faults fire — any violation
// under injected faults means a fault leaked into architectural state.
//
// This is a separate fuzz target (rather than new parameters on
// FuzzEngineVsOracle) so the original committed corpus keeps its arity.
func FuzzEngineVsOracleFaults(f *testing.F) {
	// One seed per scenario, the all-armed case, and a mixed subset.
	f.Add(int64(1), int64(0), int64(300), int64(1), int64(0), int64(1), int64(11))  // shootdown, SM
	f.Add(int64(2), int64(2), int64(400), int64(2), int64(1), int64(2), int64(12))  // migflush, HM, NUMA
	f.Add(int64(3), int64(1), int64(300), int64(2), int64(0), int64(4), int64(13))  // scandrop, HM
	f.Add(int64(4), int64(3), int64(300), int64(1), int64(0), int64(8), int64(14))  // sampleloss, SM
	f.Add(int64(5), int64(2), int64(400), int64(0), int64(2), int64(16), int64(15)) // preempt
	f.Add(int64(6), int64(0), int64(300), int64(1), int64(0), int64(32), int64(16)) // decay, SM
	f.Add(int64(7), int64(4), int64(500), int64(2), int64(1), int64(63), int64(17)) // everything
	f.Fuzz(func(t *testing.T, seed, pattern, ops, mech, topo, faultMask, faultSeed int64) {
		patterns := Patterns()
		cfg := DiffConfig{
			Seed:    seed,
			Pattern: patterns[abs(pattern)%int64(len(patterns))],
			Ops:     50 + int(abs(ops)%350),
		}
		switch abs(mech) % 3 {
		case 1:
			cfg.Mechanism = "SM"
		case 2:
			cfg.Mechanism = "HM"
			cfg.STLB = seed%2 == 0
		}
		switch abs(topo) % 3 {
		case 1:
			cfg.Machine = topology.NUMA(2)
		case 2:
			cfg.Machine = topology.NUMA(4)
		}
		cfg.Faults.Seed = faultSeed
		mask := abs(faultMask)
		for _, k := range fault.Kinds() {
			if mask&(1<<uint(k)) != 0 {
				cfg.Faults.Intensity[k] = 1
			}
		}
		rep, err := Differential(cfg)
		if err != nil {
			t.Fatalf("config %+v: %v (violations: %v, faults: %v)",
				cfg, err, rep.Violations, rep.FaultStats)
		}
	})
}
