package check

import (
	"tlbmap/internal/mem"
)

// Suite implements mem.Observer by fanning every hierarchy event out to the
// memory oracle and the MESI legality checker. The engine arms the suite on
// the System automatically (sim.Run type-asserts its Checker).
var _ mem.Observer = (*Suite)(nil)

// OnRead implements mem.Observer.
func (s *Suite) OnRead(core int, l mem.Line, src mem.Source, supplier int) {
	s.oracle.onRead(core, l, src)
}

// OnWrite implements mem.Observer.
func (s *Suite) OnWrite(core int, l mem.Line, src mem.Source, supplier int) {
	s.oracle.onWrite(core, l)
	s.mesi.onWrite(core, l)
}

// OnL1Install implements mem.Observer.
func (s *Suite) OnL1Install(core int, l mem.Line) {
	s.oracle.onL1Install(core, l)
	s.mesi.onL1Install(core, l)
}

// OnL1Drop implements mem.Observer.
func (s *Suite) OnL1Drop(core int, l mem.Line) {
	s.oracle.onL1Drop(core, l)
	s.mesi.onL1Drop(core, l)
}

// OnL2Install implements mem.Observer.
func (s *Suite) OnL2Install(domain int, l mem.Line, st mem.MESIState, src mem.Source, supplier int) {
	s.oracle.onL2Install(domain, l, src, supplier)
	s.mesi.onL2Install(domain, l, st)
}

// OnL2State implements mem.Observer.
func (s *Suite) OnL2State(domain int, l mem.Line, old, new mem.MESIState) {
	s.oracle.onL2State(domain, l, new)
	s.mesi.onL2State(domain, l, old, new)
}

// OnL2Evict implements mem.Observer.
func (s *Suite) OnL2Evict(domain int, l mem.Line, st mem.MESIState) {
	s.oracle.onL2Evict(domain, l)
	s.mesi.onL2Evict(domain, l, st)
}

// OnWriteBack implements mem.Observer.
func (s *Suite) OnWriteBack(domain int, l mem.Line) {
	s.oracle.onWriteBack(domain, l)
}
