package check

import (
	"testing"

	"tlbmap/internal/topology"
)

// FuzzEngineVsOracle fuzzes the full engine against the invariant suite:
// the fuzzer picks a seed, pattern, operation count, detection mechanism
// and topology; the differential tester generates the corresponding
// adversarial workload and runs it with the sequential oracle, the MESI
// legality checker, the TLB consistency checker and the conservation
// checker all armed. Any reported violation is a crash.
//
// All parameters are int64 so the committed corpus under
// testdata/fuzz/FuzzEngineVsOracle stays hand-writable.
func FuzzEngineVsOracle(f *testing.F) {
	// One seed per pattern, plus mechanism and topology variants.
	f.Add(int64(1), int64(0), int64(300), int64(0), int64(0))
	f.Add(int64(2), int64(1), int64(400), int64(1), int64(0))
	f.Add(int64(3), int64(2), int64(500), int64(0), int64(1))
	f.Add(int64(4), int64(3), int64(300), int64(2), int64(2))
	f.Add(int64(5), int64(4), int64(600), int64(2), int64(0))
	f.Fuzz(func(t *testing.T, seed, pattern, ops, mech, topo int64) {
		patterns := Patterns()
		cfg := DiffConfig{
			Seed:    seed,
			Pattern: patterns[abs(pattern)%int64(len(patterns))],
			// Cap the workload so one input stays sub-second.
			Ops: 50 + int(abs(ops)%350),
		}
		switch abs(mech) % 3 {
		case 1:
			cfg.Mechanism = "SM"
		case 2:
			cfg.Mechanism = "HM"
			cfg.STLB = seed%2 == 0
		}
		switch abs(topo) % 3 {
		case 1:
			cfg.Machine = topology.NUMA(2)
		case 2:
			cfg.Machine = topology.NUMA(4)
		}
		rep, err := Differential(cfg)
		if err != nil {
			t.Fatalf("config %+v: %v (violations: %v)", cfg, err, rep.Violations)
		}
	})
}

func abs(v int64) int64 {
	if v < 0 {
		if v == -1<<63 {
			return 0
		}
		return -v
	}
	return v
}
