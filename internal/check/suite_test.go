package check_test

import (
	"fmt"
	"testing"

	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/npb"
	"tlbmap/internal/splash"
	"tlbmap/internal/topology"
)

// workloads returns every benchmark of both suites at the tiny class.
func workloads(t *testing.T) map[string]core.Workload {
	t.Helper()
	ws := map[string]core.Workload{}
	for _, name := range npb.Names() {
		w, err := core.NPBWorkload(name, npb.Params{Class: npb.ClassS, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ws["npb/"+name] = w
	}
	for _, name := range splash.Names() {
		w, err := core.SplashWorkload(name, splash.Params{Class: splash.ClassS, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ws["splash/"+name] = w
	}
	return ws
}

// TestSuiteArmedOverBenchmarks runs every NPB and SPLASH benchmark with
// all four checkers armed under every placement policy the experiments
// use: the identity, the Edmonds mapping built from a detected matrix,
// and a random OS-scheduler draw. Any invariant violation fails the run.
func TestSuiteArmedOverBenchmarks(t *testing.T) {
	machine := topology.Harpertown()
	opt := core.Options{Check: true}
	for name, w := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// Detection run (identity placement, SM mechanism) — armed.
			det, err := core.Detect(w, core.SM, opt)
			if err != nil {
				t.Fatalf("checked detection run: %v", err)
			}
			mapped, err := core.BuildMapping(det.Matrix, machine)
			if err != nil {
				t.Fatal(err)
			}
			osPlace, err := mapping.NewOSScheduler(99).Map(det.Matrix, machine)
			if err != nil {
				t.Fatal(err)
			}
			for policy, placement := range map[string][]int{
				"identity": nil,
				"mapped":   mapped,
				"os":       osPlace,
			} {
				if _, err := core.Evaluate(w, placement, opt); err != nil {
					t.Errorf("checked %s evaluation: %v", policy, err)
				}
			}
		})
	}
}

// TestSuiteArmedWithDetection covers the armed engine with each live
// mechanism (the SM trap path on software-managed TLBs, the HM scan on
// hardware-managed ones) on one communication-heavy benchmark per suite.
func TestSuiteArmedWithDetection(t *testing.T) {
	opt := core.Options{Check: true}
	for _, bench := range []string{"npb/SP", "splash/OCEAN"} {
		for _, mech := range []core.Mechanism{core.SM, core.HM, core.Oracle} {
			t.Run(fmt.Sprintf("%s/%s", bench, mech), func(t *testing.T) {
				t.Parallel()
				ws := workloads(t)
				if _, err := core.EvaluateWithDetection(ws[bench], nil, mech, opt); err != nil {
					t.Fatalf("checked %s run: %v", mech, err)
				}
			})
		}
	}
}

// TestSuiteArmedNUMA runs an armed evaluation on both NUMA presets,
// exercising the local/remote conservation split.
func TestSuiteArmedNUMA(t *testing.T) {
	for _, chips := range []int{2, 4} {
		t.Run(fmt.Sprintf("numa%d", chips), func(t *testing.T) {
			machine := topology.NUMA(chips)
			w, err := core.NPBWorkload("CG", npb.Params{
				Class: npb.ClassS, Seed: 1, Threads: machine.NumCores(),
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := core.Options{Check: true, Machine: machine}
			if _, err := core.Evaluate(w, nil, opt); err != nil {
				t.Fatalf("checked NUMA run: %v", err)
			}
		})
	}
}

// BenchmarkEngineCheckerOff measures the engine with no checker armed —
// the baseline the "disabled checkers cost nothing measurable" claim is
// judged against (compare with BenchmarkEngineCheckerOn).
func BenchmarkEngineCheckerOff(b *testing.B) {
	benchmarkEngine(b, false)
}

// BenchmarkEngineCheckerOn measures the same run with the full suite
// armed, quantifying the cost of -check.
func BenchmarkEngineCheckerOn(b *testing.B) {
	benchmarkEngine(b, true)
}

func benchmarkEngine(b *testing.B, checked bool) {
	w, err := core.NPBWorkload("SP", npb.Params{Class: npb.ClassS, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(w, nil, core.Options{Check: checked}); err != nil {
			b.Fatal(err)
		}
	}
}
