package check

import (
	"fmt"
	"math/rand"

	"tlbmap/internal/comm"
	"tlbmap/internal/fault"
	"tlbmap/internal/sim"
	"tlbmap/internal/tlb"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// Pattern names an adversarial access pattern of the differential tester.
// Each pattern stresses a different failure mode of the engine.
type Pattern string

// The built-in adversarial patterns.
const (
	// HotSharing: every thread hammers a handful of shared lines with a
	// high store ratio — maximum invalidation and ownership migration
	// pressure on the MESI protocol.
	HotSharing Pattern = "hot-sharing"
	// FalseSharing: threads write disjoint words that share cache lines
	// and pages — the page-level false-communication case of the paper,
	// and the densest source of silent-staleness bugs.
	FalseSharing Pattern = "false-sharing"
	// MigrationChurn: a random workload under a migrator that keeps
	// shuffling the thread placement — cold TLBs/caches, view rebuilds,
	// and cross-domain ownership on every epoch.
	MigrationChurn Pattern = "migration-churn"
	// PrivateStreams: mostly-private streaming over arrays larger than
	// the TLB reach, with rare shared flushes — eviction and write-back
	// pressure rather than coherence pressure.
	PrivateStreams Pattern = "private-streams"
	// Mixed: all of the above in one run, phase by phase.
	Mixed Pattern = "mixed"
)

// Patterns returns every built-in pattern, in a stable order.
func Patterns() []Pattern {
	return []Pattern{HotSharing, FalseSharing, MigrationChurn, PrivateStreams, Mixed}
}

// DiffConfig parameterizes one differential run. The seed is the only
// source of randomness: equal configs produce bit-identical runs.
type DiffConfig struct {
	// Seed drives workload generation and the migration churn.
	Seed int64
	// Pattern selects the adversarial access pattern (default HotSharing).
	Pattern Pattern
	// Machine is the topology under test; nil selects Harpertown.
	Machine *topology.Machine
	// Ops is the per-thread operation count per round (4 rounds are run,
	// separated by barriers); 0 selects 600.
	Ops int
	// Mechanism arms a live detector during the run: "SM" (on
	// software-managed TLBs), "HM", or "" for none. Detection changes
	// the timing and the TLB-view traffic but must never change what
	// values loads observe.
	Mechanism string
	// STLB adds the Nehalem second-level TLB (hardware-managed runs
	// only), covering the two-level refill path.
	STLB bool
	// Faults, when non-empty, arms the fault-injection layer on the run:
	// the adversarial workload executes under injected TLB shootdowns,
	// migration flushes, dropped scans, lost samples, preemption bursts
	// and matrix corruption — and the invariant suite must STILL hold,
	// proving faults perturb detection fidelity only, never
	// architectural state.
	Faults fault.Plan
	// Compiled replays the workload through trace.Compile instead of the
	// live goroutine team. Equal configs must produce bit-identical
	// Results either way; the equivalence tests cross the two paths.
	Compiled bool
	// ShardWorkers > 1 enables deterministic intra-run sharding
	// (sim.Config.ShardWorkers) with a small window so even short
	// differential runs cross several shard barriers. Results must be
	// bit-identical at every worker count.
	ShardWorkers int
}

// DiffReport carries the outcome of one differential run.
type DiffReport struct {
	Pattern    Pattern
	Seed       int64
	Result     *sim.Result
	Violations []Violation
	// FaultStats counts the injections performed when Faults was armed.
	FaultStats fault.Stats
}

// Differential generates the configured adversarial workload, runs the
// full engine with all four checkers armed, and cross-checks the final
// memory image against the sequential oracle. It returns an error — with
// the report still populated — if any invariant was violated.
func Differential(cfg DiffConfig) (*DiffReport, error) {
	if cfg.Machine == nil {
		cfg.Machine = topology.Harpertown()
	}
	if cfg.Pattern == "" {
		cfg.Pattern = HotSharing
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 600
	}
	n := cfg.Machine.NumCores()

	as := vm.NewAddressSpace()
	team := buildWorkload(cfg, as, n)

	suite := NewSuite()
	simCfg := sim.Config{
		Machine: cfg.Machine,
		Checker: suite,
		// Small structures migrate lines and TLB entries through every
		// state quickly; tiny caches maximize eviction coverage.
		TLB: tlb.Config{Entries: 32, Ways: 4},
	}
	var det comm.Detector
	switch cfg.Mechanism {
	case "SM":
		det = comm.NewSMDetector(n, 4)
		simCfg.TLBMode = tlb.SoftwareManaged
	case "HM":
		det = comm.NewHMDetector(n, 50_000)
		simCfg.TLBMode = tlb.HardwareManaged
	case "":
		// No detector.
	default:
		return nil, fmt.Errorf("check: unknown mechanism %q", cfg.Mechanism)
	}
	inj := fault.New(cfg.Faults, n)
	simCfg.Perturber = inj.Perturber()
	simCfg.Detector = inj.WrapDetector(det)
	if cfg.STLB && simCfg.TLBMode == tlb.HardwareManaged {
		simCfg.TLB2 = tlb.DefaultL2Config
	}
	if cfg.Pattern == MigrationChurn || cfg.Pattern == Mixed {
		mig := rand.New(rand.NewSource(cfg.Seed ^ 0x6d696772)) // "migr"
		simCfg.MigrationInterval = 20_000
		simCfg.Migrator = func(now uint64, placement []int) []int {
			if mig.Intn(3) == 0 {
				return nil // let some epochs pass unchanged
			}
			next := append([]int(nil), placement...)
			mig.Shuffle(len(next), func(i, j int) { next[i], next[j] = next[j], next[i] })
			return next
		}
	}

	simCfg.ShardWorkers = cfg.ShardWorkers
	if cfg.ShardWorkers > 1 {
		// Small quantum-epoch so even a few hundred thousand cycles of
		// simulated time cross many shard barriers.
		simCfg.ShardWindow = 8192
	}

	var res *sim.Result
	var err error
	if cfg.Compiled {
		res, err = sim.RunSource(simCfg, as, trace.Compile(team).NewSource())
	} else {
		res, err = sim.Run(simCfg, as, team)
	}
	rep := &DiffReport{
		Pattern:    cfg.Pattern,
		Seed:       cfg.Seed,
		Result:     res,
		Violations: suite.Violations(),
		FaultStats: inj.Stats(),
	}
	if err != nil {
		return rep, err
	}
	return rep, suite.Err()
}

// buildWorkload allocates the pattern's data structures and spawns the
// thread team. All randomness derives from (cfg.Seed, thread ID), so the
// trace is independent of scheduling.
func buildWorkload(cfg DiffConfig, as *vm.AddressSpace, n int) *trace.Team {
	// Shared structures, sized to stress both the 32-entry TLB and the
	// cache sets: a few hot lines, a false-sharing strip with one word
	// per thread per line, and a large shared region spanning many pages.
	hot := trace.NewF64(as, 16)
	strip := trace.NewF64(as, 64*n)
	big := trace.NewF64(as, 16*1024)
	private := make([]*trace.F64, n)
	for i := range private {
		private[i] = trace.NewF64(as, 8*1024)
	}

	phase := func(t *trace.Thread, rng *rand.Rand, p Pattern, ops int) {
		id := t.ID()
		for op := 0; op < ops; op++ {
			switch p {
			case HotSharing:
				i := rng.Intn(hot.Len())
				if rng.Intn(2) == 0 {
					hot.Add(t, i, 1) // load + store
				} else {
					hot.Get(t, i)
				}
			case FalseSharing:
				// Thread id owns word id of every 8-word (64-byte) line:
				// disjoint data, shared lines and pages.
				line := rng.Intn(strip.Len() / 8)
				idx := line*8 + id%8
				strip.Add(t, idx, 1)
			case MigrationChurn:
				// A spatially spread mix so migrated threads re-touch
				// lines owned by the cores they left.
				if rng.Intn(3) == 0 {
					big.Add(t, rng.Intn(big.Len()), 1)
				} else {
					private[id].Add(t, rng.Intn(private[id].Len()), 1)
				}
			case PrivateStreams:
				stride := 1 + rng.Intn(512)
				private[id].Add(t, (op*stride)%private[id].Len(), 1)
				if rng.Intn(64) == 0 {
					big.Add(t, rng.Intn(big.Len()), 1)
				}
			}
			if rng.Intn(16) == 0 {
				t.Compute(uint64(1 + rng.Intn(200)))
			}
		}
	}

	return trace.SPMD(n, func(t *trace.Thread) {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(t.ID())))
		patterns := []Pattern{cfg.Pattern, cfg.Pattern, cfg.Pattern, cfg.Pattern}
		if cfg.Pattern == Mixed {
			patterns = []Pattern{HotSharing, FalseSharing, MigrationChurn, PrivateStreams}
		}
		for _, p := range patterns {
			phase(t, rng, p, cfg.Ops)
			t.Barrier()
		}
	}, 64)
}
