package check

import (
	"reflect"
	"testing"

	"tlbmap/internal/fault"
	"tlbmap/internal/topology"
)

// shardVariants are the execution-path variants every matrix cell is
// crossed with: compiled replay, sharding at several worker counts, and
// both combined. Each must produce a bit-identical Result to the serial
// goroutine engine.
type shardVariant struct {
	name     string
	compiled bool
	workers  int
}

var shardVariants = []shardVariant{
	{"compiled", true, 0},
	{"sharded-2", false, 2},
	{"sharded-5", false, 5},
	{"compiled-sharded-3", true, 3},
}

// faultPlan parses a fault spec or fails the test.
func faultPlan(t *testing.T, spec string, seed int64) fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShardedCompiledMatchSerial is the differential equivalence matrix of
// the compile-and-replay engine: for every (pattern, mechanism, topology,
// faults) cell, the serial goroutine run is the reference and every
// variant's full Result — cycles, per-core counters, matrices, placements
// — must match it exactly. The invariant suite stays armed throughout, so
// a variant that corrupted architectural state would also fail its own
// run, not just the comparison.
func TestShardedCompiledMatchSerial(t *testing.T) {
	type cell struct {
		name string
		cfg  DiffConfig
	}
	cells := []cell{
		{"hot-SM-UMA", DiffConfig{Seed: 11, Pattern: HotSharing, Mechanism: "SM", Ops: 250}},
		{"false-HM-NUMA", DiffConfig{Seed: 12, Pattern: FalseSharing, Mechanism: "HM",
			Machine: topology.NUMA(2), Ops: 250}},
		{"churn-null-UMA", DiffConfig{Seed: 13, Pattern: MigrationChurn, Ops: 250}},
		{"mixed-HM-STLB-UMA", DiffConfig{Seed: 14, Pattern: Mixed, Mechanism: "HM", STLB: true, Ops: 200}},
		{"private-SM-NUMA", DiffConfig{Seed: 15, Pattern: PrivateStreams, Mechanism: "SM",
			Machine: topology.NUMA(4), Ops: 250}},
		{"hot-HM-faults", DiffConfig{Seed: 16, Pattern: HotSharing, Mechanism: "HM", Ops: 200,
			Faults: faultPlan(t, "shootdown:0.4,preempt:0.4", 16)}},
	}
	if testing.Short() {
		cells = cells[:3]
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			base, err := Differential(c.cfg)
			if err != nil {
				t.Fatalf("serial reference: %v (violations %v)", err, base.Violations)
			}
			for _, v := range shardVariants {
				cfg := c.cfg
				cfg.Compiled = v.compiled
				cfg.ShardWorkers = v.workers
				rep, err := Differential(cfg)
				if err != nil {
					t.Fatalf("%s: %v (violations %v)", v.name, err, rep.Violations)
				}
				if !reflect.DeepEqual(base.Result, rep.Result) {
					t.Errorf("%s: Result diverged from serial engine\nserial:  %+v\nvariant: %+v",
						v.name, base.Result, rep.Result)
				}
			}
		})
	}
}

// The 256-core manycore cell runs at the sim level without the armed
// suite (whose per-access oracle is quadratic in cores at this scale):
// see TestShardWorkerInvarianceManycore in internal/sim.
