package check

import (
	"fmt"
	"strings"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/mem"
	"tlbmap/internal/sim"
	"tlbmap/internal/tlb"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// testEnv builds a minimal but real CheckEnv for driving Suite hooks
// directly — the bug-injection tests below prove each checker actually
// fires on the violation class it exists to catch.
func testEnv() sim.CheckEnv {
	m := topology.Harpertown()
	n := m.NumCores()
	tlbs := make([]*tlb.TLB, n)
	view := make(comm.TLBView, n)
	placement := make([]int, n)
	for i := range tlbs {
		tlbs[i] = tlb.New(tlb.DefaultConfig)
		view[i] = tlbs[i]
		placement[i] = i
	}
	return sim.CheckEnv{
		Machine:   m,
		AS:        vm.NewAddressSpace(),
		System:    mem.NewSystem(m, mem.DefaultL1Config, mem.DefaultL2Config),
		TLB:       func(core int) *tlb.TLB { return tlbs[core] },
		View:      view,
		Placement: placement,
	}
}

func newTestSuite() *Suite {
	s := NewSuite()
	s.Begin(testEnv())
	return s
}

// hasViolation reports whether some recorded violation came from the named
// checker and mentions the substring.
func hasViolation(s *Suite, checker, substr string) bool {
	for _, v := range s.Violations() {
		if v.Checker == checker && strings.Contains(v.Msg, substr) {
			return true
		}
	}
	return false
}

func wantViolation(t *testing.T, s *Suite, checker, substr string) {
	t.Helper()
	if !hasViolation(s, checker, substr) {
		t.Errorf("expected a %q violation mentioning %q, got %v", checker, substr, s.Violations())
	}
}

func TestCleanSuiteReportsNoError(t *testing.T) {
	s := newTestSuite()
	if err := s.CheckNow(); err != nil {
		t.Fatalf("fresh suite reports violations: %v", err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err() on clean suite: %v", err)
	}
}

func TestMESICatchesDoubleOwner(t *testing.T) {
	s := newTestSuite()
	l := mem.Line(0x40)
	// Two L2 domains install the same line in Modified state: an
	// impossible MESI configuration the checker must reject.
	s.OnL2Install(0, l, mem.Modified, mem.SrcMemory, -1)
	s.OnL2Install(1, l, mem.Modified, mem.SrcMemory, -1)
	wantViolation(t, s, "mesi", "owner")
}

func TestMESICatchesModifiedPlusShared(t *testing.T) {
	s := newTestSuite()
	l := mem.Line(0x80)
	s.OnL2Install(0, l, mem.Modified, mem.SrcMemory, -1)
	s.OnL2Install(2, l, mem.Shared, mem.SrcMemory, -1)
	wantViolation(t, s, "mesi", "owner")
}

func TestMESICatchesUnreportedTransition(t *testing.T) {
	s := newTestSuite()
	l := mem.Line(0xc0)
	s.OnL2Install(0, l, mem.Shared, mem.SrcMemory, -1)
	// The transition claims the line was Exclusive; the shadow knows it
	// was Shared — some earlier transition must have gone unreported.
	s.OnL2State(0, l, mem.Exclusive, mem.Modified)
	wantViolation(t, s, "mesi", "shadow")
}

func TestMESICatchesL1InclusionBreach(t *testing.T) {
	s := newTestSuite()
	// An L1 fill with no backing copy in the core's L2 domain.
	s.OnL1Install(3, mem.Line(0x100))
	wantViolation(t, s, "mesi", "without a copy")
}

func TestMESICatchesWriteLeavingForeignL1Copy(t *testing.T) {
	s := newTestSuite()
	l := mem.Line(0x140)
	// Core 7's domain holds the line Shared with an L1 copy; core 0
	// upgrades and writes, but the invalidation never drops core 7's L1
	// copy — the checker must see the stale private copy.
	s.OnL2Install(s.env.Machine.L2Domain(7), l, mem.Shared, mem.SrcMemory, -1)
	s.OnL1Install(7, l)
	s.OnL2Install(s.env.Machine.L2Domain(0), l, mem.Modified, mem.SrcMemory, -1)
	s.OnWrite(0, l, mem.SrcMemory, -1)
	wantViolation(t, s, "mesi", "live L1 copy")
}

func TestOracleCatchesStaleLoad(t *testing.T) {
	s := newTestSuite()
	l := mem.Line(0x180)
	d0 := s.env.Machine.L2Domain(0)
	// Core 0 writes the line (version 1)...
	s.OnL2Install(d0, l, mem.Modified, mem.SrcMemory, -1)
	s.OnWrite(0, l, mem.SrcMemory, -1)
	// ...then core 6's domain fills the stale version from memory (the
	// dirty copy was never written back or forwarded) and serves a load.
	d3 := s.env.Machine.L2Domain(6)
	s.OnL2Install(d3, l, mem.Exclusive, mem.SrcMemory, -1)
	s.OnRead(6, l, mem.SrcL2, -1)
	wantViolation(t, s, "oracle", "stale load")
}

func TestOracleCatchesLostWriteBack(t *testing.T) {
	s := newTestSuite()
	l := mem.Line(0x1c0)
	d0 := s.env.Machine.L2Domain(0)
	s.OnL2Install(d0, l, mem.Modified, mem.SrcMemory, -1)
	s.OnWrite(0, l, mem.SrcMemory, -1)
	// The dirty line is evicted with no preceding write-back: the only
	// copy of version 1 evaporates. The final-image check must notice.
	s.OnL2Evict(d0, l, mem.Modified)
	s.oracle.finish()
	wantViolation(t, s, "oracle", "final image")
}

func TestOracleCatchesServeWithoutCopy(t *testing.T) {
	s := newTestSuite()
	// A load reported as an L1 hit on a core whose L1 never installed
	// the line.
	s.OnRead(2, mem.Line(0x200), mem.SrcL1, -1)
	wantViolation(t, s, "oracle", "no such copy")
}

func TestTLBCatchesBogusEntry(t *testing.T) {
	s := newTestSuite()
	// Hand-plant a TLB entry for a page the VM layer never allocated.
	s.env.TLB(4).Insert(vm.Translation{Page: vm.Page(0xdead), Frame: vm.Frame(7)})
	if err := s.CheckNow(); err == nil {
		t.Fatal("CheckNow accepted a TLB entry for an unallocated page")
	}
	wantViolation(t, s, "tlb", "never allocated")
}

func TestTLBCatchesWrongFrame(t *testing.T) {
	env := testEnv()
	addr := env.AS.Alloc(4096)
	tr, err := env.AS.Translate(addr)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuite()
	s.Begin(env)
	// Correct page, wrong frame: a stale entry surviving a remap.
	env.TLB(1).Insert(vm.Translation{Page: tr.Page, Frame: tr.Frame + 1})
	if err := s.CheckNow(); err == nil {
		t.Fatal("CheckNow accepted a TLB entry with the wrong frame")
	}
	wantViolation(t, s, "tlb", "page table says")
}

func TestTLBCatchesBrokenDetectorView(t *testing.T) {
	env := testEnv()
	// The detector view of thread 0 points at the wrong core's TLB.
	env.View[0] = env.TLB(5)
	s := NewSuite()
	s.Begin(env)
	wantViolation(t, s, "tlb", "mirror")
}

func TestTLBCatchesPlacementMismatch(t *testing.T) {
	s := newTestSuite()
	addr := s.env.AS.Alloc(64)
	tr, err := s.env.AS.Translate(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 2 executes on core 5, but the placement pins it to core 2.
	if err := s.OnAccess(2, 5, trace.Event{Addr: addr, Kind: trace.Load}, tr.Frame); err == nil {
		t.Fatal("OnAccess accepted a thread running on the wrong core")
	}
	wantViolation(t, s, "tlb", "placement pins it")
}

func TestTLBCatchesBadMigrationPermutation(t *testing.T) {
	s := newTestSuite()
	bad := make([]int, s.env.Machine.NumCores())
	for i := range bad {
		bad[i] = 0 // every thread on core 0
	}
	if err := s.OnMigration(0, bad); err == nil {
		t.Fatal("OnMigration accepted a non-permutation placement")
	}
	wantViolation(t, s, "tlb", "not a permutation")
}

func TestConservationCatchesCountMismatch(t *testing.T) {
	s := newTestSuite()
	// The engine claims 42 accesses; the checker observed none, and the
	// zero-valued counter banks corroborate neither story.
	res := &sim.Result{Accesses: 42}
	if err := s.Finish(res); err == nil {
		t.Fatal("Finish accepted a result with phantom accesses")
	}
	wantViolation(t, s, "conservation", "accesses")
}

func TestViolationCapKeepsRootCause(t *testing.T) {
	s := newTestSuite()
	for i := 0; i < 3*maxViolations; i++ {
		s.reportf("mesi", "violation %d", i)
	}
	if got := len(s.Violations()); got != maxViolations {
		t.Fatalf("recorded %d violations, cap is %d", got, maxViolations)
	}
	if s.Violations()[0].Msg != "violation 0" {
		t.Fatalf("first violation displaced: %v", s.Violations()[0])
	}
	if err := s.Err(); !strings.Contains(err.Error(), fmt.Sprint(3*maxViolations)) {
		t.Errorf("Err() does not report the true violation count: %v", err)
	}
}

// TestDifferentialPatterns is the headline differential test: every
// adversarial pattern, across seeds, runs the full engine with all four
// checkers armed and must come out clean.
func TestDifferentialPatterns(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, p := range Patterns() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", p, seed), func(t *testing.T) {
				t.Parallel()
				rep, err := Differential(DiffConfig{Seed: seed, Pattern: p})
				if err != nil {
					t.Fatalf("violations: %v", rep.Violations)
				}
				if rep.Result == nil || rep.Result.Accesses == 0 {
					t.Fatal("differential run simulated no accesses")
				}
			})
		}
	}
}

// TestDifferentialMechanisms proves detection mechanisms perturb timing
// but never correctness: the checkers stay clean with SM and HM armed.
func TestDifferentialMechanisms(t *testing.T) {
	for _, mech := range []string{"SM", "HM"} {
		for _, p := range []Pattern{FalseSharing, MigrationChurn, Mixed} {
			t.Run(mech+"/"+string(p), func(t *testing.T) {
				t.Parallel()
				rep, err := Differential(DiffConfig{
					Seed: 7, Pattern: p, Mechanism: mech, STLB: mech == "HM",
				})
				if err != nil {
					t.Fatalf("violations: %v", rep.Violations)
				}
			})
		}
	}
}

// TestDifferentialTopologies covers the UMA preset and both NUMA
// extensions (the NUMA split conservation check only arms on the latter).
func TestDifferentialTopologies(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *topology.Machine
	}{
		{"harpertown", topology.Harpertown()},
		{"numa2", topology.NUMA(2)},
		{"numa4", topology.NUMA(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := Differential(DiffConfig{Seed: 11, Pattern: Mixed, Machine: tc.m})
			if err != nil {
				t.Fatalf("violations: %v", rep.Violations)
			}
		})
	}
}

// TestDifferentialDeterminism: equal configs must produce bit-identical
// runs — the property the fuzz corpus and CI reproducibility rest on.
func TestDifferentialDeterminism(t *testing.T) {
	cfg := DiffConfig{Seed: 5, Pattern: MigrationChurn, Ops: 300}
	a, err := Differential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Differential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Cycles != b.Result.Cycles || a.Result.Accesses != b.Result.Accesses ||
		a.Result.Counters != b.Result.Counters {
		t.Fatalf("two runs of the same config diverged: %d/%d cycles, %d/%d accesses",
			a.Result.Cycles, b.Result.Cycles, a.Result.Accesses, b.Result.Accesses)
	}
}

func TestDifferentialRejectsUnknownMechanism(t *testing.T) {
	if _, err := Differential(DiffConfig{Seed: 1, Mechanism: "bogus"}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}
