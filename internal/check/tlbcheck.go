package check

import (
	"tlbmap/internal/sim"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// sweepEvery is the access-count period of the full TLB sweep. Each access
// already gets an O(1) frame cross-check; the periodic sweep additionally
// walks every resident TLB entry, so it is amortized.
const sweepEvery = 2048

// tlbChecker validates the address-translation layer against the page
// table of record:
//
//  1. every access's frame must match what the VM layer maps the page to
//     (a stale TLB entry silently redirects all traffic of a page);
//  2. every resident TLB entry on every core must map an allocated page to
//     its recorded frame (swept periodically and at the end of the run);
//  3. the detector-facing TLB view — the "mirror in main memory" the
//     paper's SM mechanism reads — must always equal the physical TLB of
//     the core each thread currently runs on, including right after a
//     migration rebuilds the view;
//  4. the placement consulted per access must agree with the engine's
//     thread -> core permutation;
//  5. when the run carries an inverted page-presence index, its
//     incrementally maintained state must equal a from-scratch
//     recomputation over the TLB contents — the structure the indexed
//     detection paths answer from must never drift from the TLBs it
//     mirrors, including across flushes, shootdowns and migrations.
type tlbChecker struct {
	s *Suite

	env      sim.CheckEnv
	accesses uint64
}

func (t *tlbChecker) init(env sim.CheckEnv) {
	t.env = env
	t.accesses = 0
	t.checkView()
	t.checkPresence()
}

func (t *tlbChecker) onAccess(thread, core int, ev trace.Event, frame vm.Frame) {
	if got := t.env.Placement[thread]; got != core {
		t.s.reportf("tlb", "thread %d ran on core %d but the placement pins it to core %d", thread, core, got)
	}
	page := ev.Addr.Page()
	want, ok := t.env.AS.Lookup(page)
	if !ok {
		t.s.reportf("tlb", "access to page %#x, which the VM layer never allocated", uint64(page))
	} else if want != frame {
		t.s.reportf("tlb", "access to page %#x translated to frame %#x, page table says %#x",
			uint64(page), uint64(frame), uint64(want))
	}
	t.accesses++
	if t.accesses%sweepEvery == 0 {
		t.sweep()
	}
}

func (t *tlbChecker) onMigration(placement []int) {
	// The engine validated the permutation; re-prove it independently.
	n := t.env.Machine.NumCores()
	seen := make([]bool, n)
	for _, c := range placement {
		if c < 0 || c >= n || seen[c] {
			t.s.reportf("tlb", "post-migration placement %v is not a permutation", placement)
			break
		}
		seen[c] = true
	}
	t.checkView()
}

// checkView proves the detector-facing view mirrors the physical TLBs.
func (t *tlbChecker) checkView() {
	for th := range t.env.View {
		if t.env.View[th] != t.env.TLB(t.env.Placement[th]) {
			t.s.reportf("tlb", "detector view of thread %d does not mirror the TLB of its core %d",
				th, t.env.Placement[th])
		}
	}
}

// sweep re-validates every resident TLB entry on every core against the
// page table, plus the detector view.
func (t *tlbChecker) sweep() {
	for c := 0; c < t.env.Machine.NumCores(); c++ {
		tl := t.env.TLB(c)
		for _, p := range tl.ResidentPages() {
			frame, ok := tl.Peek(p)
			if !ok {
				// ResidentPages and Peek disagree: TLB corruption.
				t.s.reportf("tlb", "core %d: page %#x resident but not peekable", c, uint64(p))
				continue
			}
			want, mapped := t.env.AS.Lookup(p)
			if !mapped {
				t.s.reportf("tlb", "core %d: TLB maps page %#x, which the VM layer never allocated",
					c, uint64(p))
			} else if want != frame {
				t.s.reportf("tlb", "core %d: TLB maps page %#x to frame %#x, page table says %#x",
					c, uint64(p), uint64(frame), uint64(want))
			}
		}
	}
	t.checkView()
	t.checkPresence()
}

// checkPresence proves the presence index agrees with the TLBs it
// mirrors (invariant 5). Validate recomputes the index from scratch, so
// this runs on the amortized sweep cadence, not per access.
func (t *tlbChecker) checkPresence() {
	if t.env.Presence == nil {
		return
	}
	if err := t.env.Presence.Validate(); err != nil {
		t.s.reportf("tlb", "presence index diverged from TLB contents: %v", err)
	}
}
