package check

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/fault"
	"tlbmap/internal/topology"
)

// runWithRepresentation executes one differential run with the matrix
// representation forced via the sparse threshold: a huge threshold keeps
// every matrix dense, a threshold of 2 makes every matrix sparse.
func runWithRepresentation(t *testing.T, cfg DiffConfig, threshold int) *DiffReport {
	t.Helper()
	prev := comm.SetSparseThreshold(threshold)
	defer comm.SetSparseThreshold(prev)
	rep, err := Differential(cfg)
	if err != nil {
		t.Fatalf("threshold %d: %v", threshold, err)
	}
	return rep
}

// requireIdenticalReports asserts two differential runs are bit-identical
// in everything observable: timing, counters, detector charges, fault
// statistics, and the communication matrix cell for cell and byte for
// byte through both serializers.
func requireIdenticalReports(t *testing.T, dense, sparse *DiffReport) {
	t.Helper()
	dm, sm := dense.Result.Matrix, sparse.Result.Matrix
	if dm == nil || sm == nil {
		t.Fatalf("missing matrix: dense %v, sparse %v", dm != nil, sm != nil)
	}
	if dm.IsSparse() {
		t.Fatalf("forced-dense run produced a sparse matrix")
	}
	if !sm.IsSparse() {
		t.Fatalf("forced-sparse run produced a dense matrix")
	}
	n := dm.N()
	if sm.N() != n {
		t.Fatalf("matrix sizes differ: %d vs %d", n, sm.N())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dv, sv := dm.At(i, j), sm.At(i, j); dv != sv {
				t.Fatalf("matrix cell (%d,%d): %d dense, %d sparse", i, j, dv, sv)
			}
		}
	}
	dj, err := json.Marshal(dm)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(sm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dj, sj) {
		t.Fatalf("serialized matrices differ")
	}
	var dc, sc bytes.Buffer
	if err := dm.WriteCSV(&dc); err != nil {
		t.Fatal(err)
	}
	if err := sm.WriteCSV(&sc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dc.Bytes(), sc.Bytes()) {
		t.Fatalf("CSV matrices differ")
	}

	// Everything else in the result — cycles, per-core clocks, counter
	// banks, detection overhead, placement, migrations — must match
	// exactly; the representation may never leak into engine behavior.
	dr, sr := *dense.Result, *sparse.Result
	dr.Matrix, sr.Matrix = nil, nil
	if !reflect.DeepEqual(dr, sr) {
		t.Fatalf("results diverged beyond the matrix:\n dense %+v\nsparse %+v", dr, sr)
	}
	if dense.FaultStats != sparse.FaultStats {
		t.Fatalf("fault stats diverged:\n dense %+v\nsparse %+v", dense.FaultStats, sparse.FaultStats)
	}
}

// TestSparseDenseEngineDifferential is the satellite's randomized
// differential: for T <= 128 across SM/HM, UMA/NUMA and every fault
// scenario, a run with all matrices forced sparse must be byte-identical
// — matrices, serialization, detector charges, timing — to the same run
// forced dense.
func TestSparseDenseEngineDifferential(t *testing.T) {
	machines := func() []*topology.Machine {
		return []*topology.Machine{topology.Harpertown(), topology.NUMA(2)}
	}

	// Mechanism x topology sweep, no faults.
	seed := int64(0)
	for _, mech := range []string{"SM", "HM"} {
		for _, machine := range machines() {
			seed++
			cfg := DiffConfig{
				Seed: seed, Pattern: Mixed, Machine: machine,
				Ops: 250, Mechanism: mech, STLB: mech == "HM",
			}
			t.Run(fmt.Sprintf("%s/%s", mech, machine.Name), func(t *testing.T) {
				dense := runWithRepresentation(t, cfg, 1<<30)
				sparse := runWithRepresentation(t, cfg, 2)
				requireIdenticalReports(t, dense, sparse)
			})
		}
	}

	// All six fault scenarios, alternating mechanism and topology so every
	// scenario runs under both detectors across the sweep.
	for i, kind := range fault.Kinds() {
		mech := []string{"SM", "HM"}[i%2]
		machine := machines()[(i/2)%2]
		var plan fault.Plan
		plan.Seed = 77 + int64(i)
		plan.Intensity[kind] = 0.6
		cfg := DiffConfig{
			Seed: 100 + int64(i), Pattern: Mixed, Machine: machine,
			Ops: 250, Mechanism: mech, Faults: plan,
		}
		t.Run(fmt.Sprintf("fault-%s/%s/%s", kind, mech, machine.Name), func(t *testing.T) {
			dense := runWithRepresentation(t, cfg, 1<<30)
			sparse := runWithRepresentation(t, cfg, 2)
			requireIdenticalReports(t, dense, sparse)
		})
	}

	// All scenarios at once on the T = 128 manycore machine — the largest
	// size the satellite pins, above the default sparse threshold's half.
	t.Run("manycore-128-all-faults", func(t *testing.T) {
		var plan fault.Plan
		plan.Seed = 5
		for _, k := range fault.Kinds() {
			plan.Intensity[k] = 0.4
		}
		cfg := DiffConfig{
			Seed: 128, Pattern: Mixed, Machine: topology.Manycore(128),
			Ops: 60, Mechanism: "SM", Faults: plan,
		}
		dense := runWithRepresentation(t, cfg, 1<<30)
		sparse := runWithRepresentation(t, cfg, 2)
		requireIdenticalReports(t, dense, sparse)
	})
}
