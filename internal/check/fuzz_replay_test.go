package check

import (
	"reflect"
	"testing"

	"tlbmap/internal/topology"
)

// FuzzReplayVsSerial fuzzes the execution-path equivalence of the
// compile-and-replay engine: every input runs the same differential
// configuration three ways — the serial goroutine engine (reference),
// compiled replay, and the sharded engine — and requires bit-identical
// Results. The invariant suite stays armed on every run, so a divergence
// is caught both by the cross-comparison and by the run's own oracles.
//
// The first five parameters mirror FuzzEngineVsOracle (the committed
// corpus there seeds this target's corpus); workers picks the shard
// worker count.
func FuzzReplayVsSerial(f *testing.F) {
	f.Add(int64(1), int64(0), int64(200), int64(0), int64(0), int64(2))
	f.Add(int64(2), int64(1), int64(250), int64(1), int64(0), int64(3))
	f.Add(int64(3), int64(2), int64(200), int64(0), int64(1), int64(5))
	f.Add(int64(4), int64(3), int64(150), int64(2), int64(2), int64(8))
	f.Add(int64(5), int64(4), int64(250), int64(2), int64(0), int64(2))
	f.Fuzz(func(t *testing.T, seed, pattern, ops, mech, topo, workers int64) {
		patterns := Patterns()
		cfg := DiffConfig{
			Seed:    seed,
			Pattern: patterns[abs(pattern)%int64(len(patterns))],
			// Smaller cap than FuzzEngineVsOracle: each input runs the
			// workload three times.
			Ops: 50 + int(abs(ops)%200),
		}
		switch abs(mech) % 3 {
		case 1:
			cfg.Mechanism = "SM"
		case 2:
			cfg.Mechanism = "HM"
			cfg.STLB = seed%2 == 0
		}
		switch abs(topo) % 3 {
		case 1:
			cfg.Machine = topology.NUMA(2)
		case 2:
			cfg.Machine = topology.NUMA(4)
		}
		base, err := Differential(cfg)
		if err != nil {
			t.Fatalf("serial: config %+v: %v (violations: %v)", cfg, err, base.Violations)
		}
		for _, v := range []shardVariant{
			{"compiled", true, 0},
			{"sharded", false, 2 + int(abs(workers)%7)},
		} {
			vcfg := cfg
			vcfg.Compiled = v.compiled
			vcfg.ShardWorkers = v.workers
			rep, err := Differential(vcfg)
			if err != nil {
				t.Fatalf("%s: config %+v: %v (violations: %v)", v.name, vcfg, err, rep.Violations)
			}
			if !reflect.DeepEqual(base.Result, rep.Result) {
				t.Errorf("%s (workers=%d): Result diverged from serial engine\nserial:  %+v\nvariant: %+v",
					v.name, v.workers, base.Result, rep.Result)
			}
		}
	})
}
