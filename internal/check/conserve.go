package check

import (
	"tlbmap/internal/metrics"
	"tlbmap/internal/sim"
)

// conserveChecker proves the counter arithmetic of a finished run. It
// counts accesses per core independently of the engine's bookkeeping and
// then checks, at Finish:
//
//   - total and per-core access counts match the engine's;
//   - every access performed exactly one TLB lookup and one L1 lookup
//     (hits + misses == accesses, globally and per core);
//   - L2 lookups never exceed accesses (write hits in M/E/S skip the
//     counter, so equality is not required);
//   - every snoop transaction was classified as intra- or inter-chip
//     traffic (upgrades add traffic without a transfer, so traffic may
//     exceed snoops but never the reverse);
//   - on NUMA machines every memory read is classified local or remote;
//     on UMA machines both counters stay zero;
//   - the machine-wide bank equals the sum of the per-core banks, and
//     Cycles is the maximum core clock.
type conserveChecker struct {
	s *Suite

	perCore []uint64
	total   uint64
}

func (c *conserveChecker) init(cores int) {
	c.perCore = make([]uint64, cores)
	c.total = 0
}

func (c *conserveChecker) onAccess(core int) {
	c.perCore[core]++
	c.total++
}

func (c *conserveChecker) finish(res *sim.Result) {
	if res.Accesses != c.total {
		c.s.reportf("conservation", "engine reports %d accesses, checker observed %d", res.Accesses, c.total)
	}

	var sum metrics.Counters
	var maxClock uint64
	for core := range res.PerCore {
		bank := &res.PerCore[core]
		sum.Merge(bank)
		if res.CoreCycles[core] > maxClock {
			maxClock = res.CoreCycles[core]
		}
		tlbL := bank.Get(metrics.TLBHits) + bank.Get(metrics.TLBMisses)
		if tlbL != c.perCore[core] {
			c.s.reportf("conservation", "core %d: %d TLB lookups for %d accesses", core, tlbL, c.perCore[core])
		}
		l1L := bank.Get(metrics.L1Hits) + bank.Get(metrics.L1Misses)
		if l1L != c.perCore[core] {
			c.s.reportf("conservation", "core %d: %d L1 lookups for %d accesses", core, l1L, c.perCore[core])
		}
	}
	if sum != res.Counters {
		c.s.reportf("conservation", "per-core banks sum to {%s}, machine-wide bank is {%s}",
			sum.String(), res.Counters.String())
	}
	if maxClock != res.Cycles {
		c.s.reportf("conservation", "Cycles %d is not the maximum core clock %d", res.Cycles, maxClock)
	}

	ctr := &res.Counters
	if got := ctr.Get(metrics.TLBHits) + ctr.Get(metrics.TLBMisses); got != res.Accesses {
		c.s.reportf("conservation", "%d TLB lookups for %d accesses", got, res.Accesses)
	}
	if got := ctr.Get(metrics.L1Hits) + ctr.Get(metrics.L1Misses); got != res.Accesses {
		c.s.reportf("conservation", "%d L1 lookups for %d accesses", got, res.Accesses)
	}
	if got := ctr.Get(metrics.L2Hits) + ctr.Get(metrics.L2Misses); got > res.Accesses {
		c.s.reportf("conservation", "%d L2 lookups exceed %d accesses", got, res.Accesses)
	}
	snoops := ctr.Get(metrics.SnoopTransactions)
	traffic := ctr.Get(metrics.IntraChipTraffic) + ctr.Get(metrics.InterChipTraffic)
	if snoops > traffic {
		c.s.reportf("conservation", "%d snoop transactions but only %d classified traffic events", snoops, traffic)
	}
	local, remote := ctr.Get(metrics.LocalMemAccesses), ctr.Get(metrics.RemoteMemAccesses)
	if c.s.env.System.NUMA() {
		if reads := ctr.Get(metrics.MemoryReads); local+remote != reads {
			c.s.reportf("conservation", "NUMA split %d local + %d remote != %d memory reads", local, remote, reads)
		}
	} else if local != 0 || remote != 0 {
		c.s.reportf("conservation", "UMA machine counted NUMA traffic (%d local, %d remote)", local, remote)
	}

	// Structural cross-check: the TLB hardware's own statistics must agree
	// with the access count (first-level lookups happen once per access).
	var tlbL uint64
	for core := 0; core < c.s.env.Machine.NumCores(); core++ {
		t := c.s.env.TLB(core)
		tlbL += t.Hits() + t.Misses()
	}
	if tlbL != res.Accesses {
		c.s.reportf("conservation", "TLB hardware performed %d lookups for %d accesses", tlbL, res.Accesses)
	}
}
