package check

import (
	"tlbmap/internal/mem"
)

// oracle is the flat sequential memory value model. It abstracts the value
// of a cache line as the sequence number of the last store to it (the
// engine is a timing simulator and carries no data, so a monotonically
// increasing store counter is a complete value model: two values are equal
// iff their sequence numbers are).
//
// The model tracks where each version lives — main memory, each L2 domain,
// each private L1 — by replaying the hierarchy's install/drop/write-back
// events. A load must always observe the globally newest version of its
// line; a hit on an older copy means an invalidation or write-back was
// lost, which is precisely the bug class a coherence protocol exists to
// prevent.
type oracle struct {
	s *Suite

	seq uint64 // global store sequence

	ver    map[mem.Line]uint64   // newest version of every written line
	memVer map[mem.Line]uint64   // version main memory holds
	l2Ver  []map[mem.Line]uint64 // version each L2 domain holds, by domain
	l1Ver  []map[mem.Line]uint64 // version each private L1 holds, by core

	// inFlight holds versions of copies invalidated earlier in the SAME
	// access: on a write miss (BusRdX) the supplier is invalidated before
	// the requester's install event fires, so the transferred data is
	// briefly held by no cache. The map is cleared when the access
	// completes, bounding the window to one transaction.
	inFlight map[mem.Line]uint64
}

func (o *oracle) init(cores, domains int) {
	o.seq = 0
	o.ver = make(map[mem.Line]uint64)
	o.memVer = make(map[mem.Line]uint64)
	o.l2Ver = make([]map[mem.Line]uint64, domains)
	for d := range o.l2Ver {
		o.l2Ver[d] = make(map[mem.Line]uint64)
	}
	o.l1Ver = make([]map[mem.Line]uint64, cores)
	for c := range o.l1Ver {
		o.l1Ver[c] = make(map[mem.Line]uint64)
	}
	o.inFlight = make(map[mem.Line]uint64)
}

// domainOf maps a core to its L2 domain via the suite's topology.
func (o *oracle) domainOf(core int) int { return o.s.env.Machine.L2Domain(core) }

// onRead checks that the copy a load was served from holds the newest
// version of the line.
func (o *oracle) onRead(core int, l mem.Line, src mem.Source) {
	want := o.ver[l] // 0 for never-written lines
	var got uint64
	var ok bool
	switch src {
	case mem.SrcL1:
		got, ok = o.l1Ver[core][l]
	default:
		// SrcL2, SrcCache and SrcMemory all serve the load through the
		// requester's L2, which the preceding install event populated.
		got, ok = o.l2Ver[o.domainOf(core)][l]
	}
	if !ok {
		o.s.reportf("oracle", "load of line %#x by core %d served from %v, but the model holds no such copy",
			uint64(l), core, src)
		return
	}
	if got != want {
		o.s.reportf("oracle", "stale load: core %d read line %#x version %d from %v, newest is %d",
			core, uint64(l), got, src, want)
	}
	clear(o.inFlight) // the access is complete; nothing is in flight
}

// onWrite advances the line's version. The store merges into the copy the
// write path just secured in the core's L2 domain, so that copy must be
// current first (a partial-line store on top of stale data corrupts the
// unwritten bytes on real hardware).
func (o *oracle) onWrite(core int, l mem.Line) {
	d := o.domainOf(core)
	if got, ok := o.l2Ver[d][l]; !ok {
		o.s.reportf("oracle", "store to line %#x by core %d but domain %d holds no copy to merge into",
			uint64(l), core, d)
	} else if got != o.ver[l] {
		o.s.reportf("oracle", "store merged into stale line: core %d wrote line %#x over version %d, newest is %d",
			core, uint64(l), got, o.ver[l])
	}
	o.seq++
	o.ver[l] = o.seq
	o.l2Ver[d][l] = o.seq
	// Write-through: the writer's own L1 copy, if any, is updated in
	// place; every other L1 copy must be invalidated (the MESI checker
	// verifies that via the drop events).
	if _, ok := o.l1Ver[core][l]; ok {
		o.l1Ver[core][l] = o.seq
	}
	clear(o.inFlight) // the access is complete; nothing is in flight
}

// onL1Install fires when a load fills the core's L1; the data comes from
// the domain's L2, whose version the copy inherits.
func (o *oracle) onL1Install(core int, l mem.Line) {
	v, ok := o.l2Ver[o.domainOf(core)][l]
	if !ok {
		o.s.reportf("oracle", "L1 fill of line %#x on core %d with no backing L2 copy (inclusion breach)",
			uint64(l), core)
		return
	}
	o.l1Ver[core][l] = v
}

func (o *oracle) onL1Drop(core int, l mem.Line) {
	delete(o.l1Ver[core], l)
}

// onL2Install records the version a fresh L2 copy carries: the supplying
// domain's on a cache-to-cache transfer, main memory's on a fill.
func (o *oracle) onL2Install(domain int, l mem.Line, src mem.Source, supplier int) {
	var v uint64
	switch src {
	case mem.SrcCache:
		sv, ok := o.l2Ver[supplier][l]
		if !ok {
			// On a write miss the supplier was invalidated moments ago
			// within this very transaction; its data is in flight.
			sv, ok = o.inFlight[l]
		}
		if !ok {
			o.s.reportf("oracle", "cache-to-cache transfer of line %#x from domain %d, which holds no copy",
				uint64(l), supplier)
		}
		v = sv
	case mem.SrcMemory:
		v = o.memVer[l]
	default:
		o.s.reportf("oracle", "L2 install of line %#x from unexpected source %v", uint64(l), src)
	}
	o.l2Ver[domain][l] = v
}

func (o *oracle) onL2State(domain int, l mem.Line, newState mem.MESIState) {
	if newState == mem.Invalid {
		if v, ok := o.l2Ver[domain][l]; ok {
			o.inFlight[l] = v
		}
		delete(o.l2Ver[domain], l)
	}
}

func (o *oracle) onL2Evict(domain int, l mem.Line) {
	// A Modified victim's write-back event has already updated memVer.
	delete(o.l2Ver[domain], l)
}

// onWriteBack fires when a dirty line's data reaches memory (snoop
// downgrade or eviction).
func (o *oracle) onWriteBack(domain int, l mem.Line) {
	v, ok := o.l2Ver[domain][l]
	if !ok {
		o.s.reportf("oracle", "write-back of line %#x from domain %d, which holds no copy", uint64(l), domain)
		return
	}
	o.memVer[l] = v
}

// finish cross-checks the final memory image: for every line ever written,
// the newest version must still be live somewhere — in main memory or in at
// least one cached copy. A version held nowhere means a dirty line was
// dropped without a write-back: a silently lost store.
func (o *oracle) finish() {
	for l, want := range o.ver {
		if o.memVer[l] == want {
			continue
		}
		live := false
		for d := range o.l2Ver {
			if v, ok := o.l2Ver[d][l]; ok && v == want {
				live = true
				break
			}
		}
		if !live {
			o.s.reportf("oracle", "final image: newest version %d of line %#x held neither by memory (version %d) nor by any cache",
				want, uint64(l), o.memVer[l])
		}
	}
}
