// Package check is the runtime invariant-checking and differential-testing
// layer of the simulator. It keeps the fast trace-driven engine honest by
// independently validating, during a run, everything the reproduction's
// numbers rest on:
//
//   - a flat sequential memory ORACLE (oracle.go) models the value of every
//     cache line as a store sequence number and flags any load served from a
//     copy that missed an invalidation — the classic model-based check for a
//     MESI hierarchy;
//   - a MESI LEGALITY checker (mesi.go) maintains a shadow copy table and
//     enforces the global per-line protocol invariants (a Modified or
//     Exclusive holder is alone; L1 copies respect L2 inclusion; the shadow
//     matches the real caches at the end of the run);
//   - a TLB/PAGE-TABLE consistency checker (tlbcheck.go) verifies that every
//     TLB entry maps a page the VM layer actually allocated to the frame the
//     page table records, and that the detector-facing TLB view always
//     mirrors the physical per-core TLBs (also across thread migrations);
//   - a METRICS CONSERVATION checker (conserve.go) proves the counter
//     arithmetic: per-level lookups equal accesses, per-core banks sum to
//     the machine-wide bank, snoop and NUMA traffic splits add up.
//
// A Suite bundles all four. It plugs into the engine via sim.Config.Checker
// and into the memory hierarchy via mem.Observer; with no suite armed both
// hook layers cost one nil comparison per event. Any violation aborts the
// run with a descriptive error.
//
// On top of the suite, Differential (differential.go) generates seeded
// adversarial multi-thread workloads — hot sharing, false sharing, migration
// churn — and runs the full engine with every checker armed, cross-checking
// the final memory image against the oracle. The same entry point backs the
// table-driven tests and the FuzzEngineVsOracle fuzz target.
package check

import (
	"fmt"
	"strings"

	"tlbmap/internal/sim"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// maxViolations bounds how many violations a suite records verbatim;
// further ones only bump the counter. The first violation is almost always
// the root cause, so an unbounded log would just bury it.
const maxViolations = 32

// Violation is one detected invariant breach.
type Violation struct {
	// Checker names the sub-checker that fired: "oracle", "mesi", "tlb"
	// or "conservation".
	Checker string
	// Msg describes the breach with enough context to debug it.
	Msg string
}

func (v Violation) String() string { return v.Checker + ": " + v.Msg }

// Suite bundles the four runtime checkers behind the engine's sim.Checker
// and the hierarchy's mem.Observer interfaces. A Suite observes exactly one
// run and is not safe for concurrent use; arm a fresh Suite per run.
type Suite struct {
	env   sim.CheckEnv
	begun bool

	oracle   *oracle
	mesi     *mesiChecker
	tlbc     *tlbChecker
	conserve *conserveChecker

	violations []Violation
	dropped    int // violations beyond maxViolations
}

// NewSuite returns a suite with all four checkers armed. Pass it as
// sim.Config.Checker (or set core.Options.Check, which does so for you).
func NewSuite() *Suite {
	s := &Suite{}
	s.oracle = &oracle{s: s}
	s.mesi = &mesiChecker{s: s}
	s.tlbc = &tlbChecker{s: s}
	s.conserve = &conserveChecker{s: s}
	return s
}

// reportf records a violation.
func (s *Suite) reportf(checker, format string, args ...any) {
	if len(s.violations) >= maxViolations {
		s.dropped++
		return
	}
	s.violations = append(s.violations, Violation{Checker: checker, Msg: fmt.Sprintf(format, args...)})
}

// Violations returns everything recorded so far (capped at an internal
// limit; Err reports how many more were dropped).
func (s *Suite) Violations() []Violation { return s.violations }

// Err summarizes the recorded violations as an error, or nil if the run is
// clean so far.
func (s *Suite) Err() error {
	if len(s.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s)", len(s.violations)+s.dropped)
	show := len(s.violations)
	if show > 3 {
		show = 3
	}
	for i := 0; i < show; i++ {
		b.WriteString("; ")
		b.WriteString(s.violations[i].String())
	}
	if len(s.violations)+s.dropped > show {
		fmt.Fprintf(&b, "; ... (%d more)", len(s.violations)+s.dropped-show)
	}
	return fmt.Errorf("check: %s", b.String())
}

// Begin implements sim.Checker.
func (s *Suite) Begin(env sim.CheckEnv) {
	s.env = env
	s.begun = true
	n := env.Machine.NumCores()
	s.oracle.init(n, env.System.NumDomains())
	s.mesi.init(n, env.System.NumDomains())
	s.tlbc.init(env)
	s.conserve.init(n)
}

// OnAccess implements sim.Checker: per-access bookkeeping plus fail-fast on
// any violation the hierarchy observer recorded during the access.
func (s *Suite) OnAccess(thread, core int, ev trace.Event, frame vm.Frame) error {
	s.conserve.onAccess(core)
	s.tlbc.onAccess(thread, core, ev, frame)
	return s.Err()
}

// OnMigration implements sim.Checker.
func (s *Suite) OnMigration(now uint64, placement []int) error {
	s.tlbc.onMigration(placement)
	return s.Err()
}

// Finish implements sim.Checker: whole-run sweeps (shadow-versus-actual
// cache contents, final memory image, counter conservation).
func (s *Suite) Finish(res *sim.Result) error {
	s.tlbc.sweep()
	s.mesi.finish()
	s.oracle.finish()
	s.conserve.finish(res)
	return s.Err()
}

// CheckNow runs every on-demand sweep immediately (tests and debugging; the
// engine itself sweeps on access sampling and at Finish).
func (s *Suite) CheckNow() error {
	s.tlbc.sweep()
	s.mesi.checkAll()
	return s.Err()
}
