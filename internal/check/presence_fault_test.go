package check

import (
	"fmt"
	"testing"

	"tlbmap/internal/fault"
)

// TestPresenceIndexSurvivesFaults is the fault-mode variant of the
// presence-index property test: under every injection scenario at full
// intensity — TLB shootdown storms, migration flushes, dropped scans,
// lost samples, preemption bursts, matrix decay — the index-vs-TLB
// agreement invariant (tlbChecker invariant 5, checked on every sweep and
// at Finish) must still hold for both detection mechanisms. Shootdowns
// and migration flushes are the interesting ones: they empty TLBs through
// the same Flush path that maintains the index, so any missed
// bookkeeping there surfaces as a violation here.
func TestPresenceIndexSurvivesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12 full differential executions")
	}
	for _, mech := range []string{"SM", "HM"} {
		for _, k := range fault.Kinds() {
			mech, k := mech, k
			t.Run(fmt.Sprintf("%s/%s", mech, k), func(t *testing.T) {
				t.Parallel()
				plan := fault.Plan{Seed: 7}
				plan.Intensity[k] = 1
				rep, err := Differential(DiffConfig{
					Seed: 0x1dc5 + int64(k),
					// Migration churn rebuilds the detector view and, with
					// MigrationFlush armed, flushes TLBs on every move — the
					// harshest schedule for incremental index maintenance.
					Pattern:   MigrationChurn,
					Ops:       250,
					Mechanism: mech,
					Faults:    plan,
				})
				if err != nil {
					t.Fatalf("invariants violated under %s faults: %v\nviolations: %v",
						k, err, rep.Violations)
				}
			})
		}
	}
}
