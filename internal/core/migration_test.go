package core

import (
	"testing"

	"tlbmap/internal/splash"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// twoPhaseWorkload changes its partner mid-run: the first half pairs thread
// t with t+1 (even t), the second half with t+4 — a static mapping can only
// serve one phase.
func twoPhaseWorkload(as *vm.AddressSpace) []trace.Program {
	buffers := make([]*trace.F64, 8)
	for i := range buffers {
		buffers[i] = trace.NewF64(as, 4096)
	}
	const rounds = 60
	programs := make([]trace.Program, 8)
	for i := range programs {
		programs[i] = func(t *trace.Thread) {
			id := t.ID()
			for r := 0; r < rounds; r++ {
				var partner int
				if r < rounds/2 {
					partner = id ^ 1 // phase A: pairs (0,1)(2,3)...
				} else {
					partner = (id + 4) % 8 // phase B: pairs (0,4)(1,5)...
				}
				mine := buffers[id]
				theirs := buffers[partner]
				for k := 0; k < 256; k++ {
					mine.Set(t, k, float64(r+k))
				}
				t.Barrier()
				var sum float64
				for k := 0; k < 256; k++ {
					sum += theirs.Get(t, k)
				}
				_ = sum
				t.Barrier()
			}
		}
	}
	return programs
}

func TestDynamicMigrationFollowsPhaseChange(t *testing.T) {
	opt := Options{MigrationInterval: 200_000}
	report, err := EvaluateWithDynamicMigration(twoPhaseWorkload, Oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if report.Remaps < 1 {
		t.Fatalf("controller never remapped; decisions: %+v", report.Decisions)
	}
	if report.Result.Migrations == 0 {
		t.Error("no threads actually migrated")
	}
	// The dynamically migrated run must beat the static phase-A-optimal
	// placement over the whole execution... at least it must beat the
	// WORST static placement and be close to the best.
	staticA, err := Evaluate(twoPhaseWorkload, []int{0, 1, 2, 3, 4, 5, 6, 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(report.Result.Cycles) > 1.05*float64(staticA.Cycles) {
		t.Errorf("dynamic run (%d cycles) much slower than static phase-A placement (%d)",
			report.Result.Cycles, staticA.Cycles)
	}
}

func TestDynamicMigrationStablePatternStaysPut(t *testing.T) {
	// tinyWorkload's pattern never changes: after the initial remap the
	// controller must not thrash.
	report, err := EvaluateWithDynamicMigration(tinyWorkload, Oracle, Options{MigrationInterval: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if report.Remaps > 2 {
		t.Errorf("controller thrashed: %d remaps for a stable pattern", report.Remaps)
	}
}

func TestDynamicMigrationOnLUC(t *testing.T) {
	if testing.Short() {
		t.Skip("class W run")
	}
	// LUC's rotating hub defeats static mapping; the dynamic controller
	// may or may not find epochs worth acting on, but the run must
	// complete and report coherent bookkeeping.
	w, err := SplashWorkload("LUC", splash.Params{Class: splash.ClassW})
	if err != nil {
		t.Fatal(err)
	}
	report, err := EvaluateWithDynamicMigration(w, Oracle, Options{MigrationInterval: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if report.Result.Accesses == 0 {
		t.Fatal("no work simulated")
	}
	if len(report.Decisions) == 0 {
		t.Error("controller never consulted")
	}
	moved := 0
	for _, d := range report.Decisions {
		if d.Remap {
			moved += d.Migrations
		}
	}
	if moved != report.Result.Migrations {
		t.Errorf("decision migrations %d != engine migrations %d", moved, report.Result.Migrations)
	}
}

func TestMatrixSub(t *testing.T) {
	// Covered here since the migration pipeline depends on it.
	w, _, _, err := DetectAll(tinyWorkload, Options{SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Matrix
	if d := m.Sub(nil); d.Total() != m.Total() {
		t.Error("Sub(nil) should clone")
	}
	if d := m.Sub(m); d.Total() != 0 {
		t.Error("Sub(self) should be zero")
	}
}
