package core

import (
	"testing"

	"tlbmap/internal/datamap"
	"tlbmap/internal/metrics"
	"tlbmap/internal/npb"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// nodeLocalWorkload: threads 0-3 pound one buffer, threads 4-7 another —
// the cleanest possible NUMA workload (each buffer belongs on one node).
func nodeLocalWorkload(as *vm.AddressSpace) []trace.Program {
	left := trace.NewF64(as, 4096)
	right := trace.NewF64(as, 4096)
	programs := make([]trace.Program, 8)
	for i := range programs {
		programs[i] = func(t *trace.Thread) {
			buf := left
			if t.ID() >= 4 {
				buf = right
			}
			for it := 0; it < 20; it++ {
				// Each thread's range overlaps the next thread's page,
				// so the buffers are genuinely shared within the group.
				for k := 0; k < 640; k++ {
					buf.Add(t, (t.ID()*512+k)%buf.Len(), 1)
				}
				t.Barrier()
			}
		}
	}
	return programs
}

func TestProfileData(t *testing.T) {
	prof, err := ProfileData(nodeLocalWorkload, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Result.Accesses == 0 {
		t.Fatal("no accesses profiled")
	}
	if len(prof.Profile.Pages()) == 0 {
		t.Fatal("no pages profiled")
	}
	if len(prof.Profile.SharedPages()) == 0 {
		t.Error("shared buffers produced no shared pages")
	}
}

func TestEvaluateNUMARequiresNUMAMachine(t *testing.T) {
	if _, err := EvaluateNUMA(nodeLocalWorkload, nil, nil, Options{}); err == nil {
		t.Error("UMA machine accepted")
	}
}

func TestEvaluateNUMADataPoliciesOrdering(t *testing.T) {
	machine := topology.NUMA(2)
	opt := Options{Machine: machine}
	prof, err := ProfileData(nodeLocalWorkload, opt)
	if err != nil {
		t.Fatal(err)
	}
	placement := []int{0, 1, 2, 3, 4, 5, 6, 7} // threads 0-3 on node 0

	remote := func(p datamap.Policy) uint64 {
		assign, err := datamap.Build(p, prof.Profile, machine, placement)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateNUMA(nodeLocalWorkload, placement, assign, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Get(metrics.RemoteMemAccesses)
	}

	ma := remote(datamap.MostAccessed{})
	il := remote(datamap.Interleave{})
	if ma >= il {
		t.Errorf("most-accessed remote fills (%d) should be below interleave (%d)", ma, il)
	}
	// With node-local buffers, most-accessed should be almost perfectly
	// local.
	if ma > il/4 {
		t.Errorf("most-accessed remote fills too high: %d vs interleave %d", ma, il)
	}
}

func TestEvaluateNUMANilAssignmentDefaultsNodeZero(t *testing.T) {
	machine := topology.NUMA(2)
	res, err := EvaluateNUMA(nodeLocalWorkload, nil, nil, Options{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	// Everything on node 0: node-1 cores fill remotely.
	if res.Counters.Get(metrics.RemoteMemAccesses) == 0 {
		t.Error("expected remote fills with all data on node 0")
	}
	if res.Counters.Get(metrics.LocalMemAccesses) == 0 {
		t.Error("expected local fills for node-0 cores")
	}
}

func TestNUMAPipelineOnNPB(t *testing.T) {
	machine := topology.NUMA(2)
	opt := Options{Machine: machine}
	w, err := NPBWorkload("MG", npb.Params{Class: npb.ClassS})
	if err != nil {
		t.Fatal(err)
	}
	det, err := Detect(w, SM, opt)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := BuildMapping(det.Matrix, machine)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileData(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := datamap.Build(datamap.MostAccessed{}, prof.Profile, machine, placement)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateNUMA(w, placement, assign, opt)
	if err != nil {
		t.Fatal(err)
	}
	local := res.Counters.Get(metrics.LocalMemAccesses)
	remoteFills := res.Counters.Get(metrics.RemoteMemAccesses)
	if local+remoteFills != res.Counters.Get(metrics.MemoryReads) {
		t.Errorf("local %d + remote %d != memory reads %d",
			local, remoteFills, res.Counters.Get(metrics.MemoryReads))
	}
	if local <= remoteFills {
		t.Errorf("most-accessed placement mostly remote: local %d, remote %d", local, remoteFills)
	}
}

func TestUMAEvaluateHasNoNUMACounters(t *testing.T) {
	res, err := Evaluate(tinyWorkload, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(metrics.LocalMemAccesses) != 0 || res.Counters.Get(metrics.RemoteMemAccesses) != 0 {
		t.Error("UMA run produced NUMA counters")
	}
}
