package core

import (
	"tlbmap/internal/npb"
	"tlbmap/internal/splash"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// FromNPB adapts a registered NPB benchmark to the Workload interface.
func FromNPB(b npb.Benchmark, p npb.Params) Workload {
	return func(as *vm.AddressSpace) []trace.Program {
		return b.Build(as, p)
	}
}

// NPBWorkload looks a benchmark up by name and adapts it; it returns an
// error only for unknown names.
func NPBWorkload(name string, p npb.Params) (Workload, error) {
	b, err := npb.Get(name)
	if err != nil {
		return nil, err
	}
	return FromNPB(b, p), nil
}

// FromSplash adapts a registered SPLASH-2-style kernel to the Workload
// interface.
func FromSplash(b splash.Benchmark, p splash.Params) Workload {
	return func(as *vm.AddressSpace) []trace.Program {
		return b.Build(as, p)
	}
}

// SplashWorkload looks a SPLASH-2-style kernel up by name and adapts it.
func SplashWorkload(name string, p splash.Params) (Workload, error) {
	b, err := splash.Get(name)
	if err != nil {
		return nil, err
	}
	return FromSplash(b, p), nil
}
