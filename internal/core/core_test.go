package core

import (
	"testing"

	"tlbmap/internal/npb"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// tinyWorkload builds a small fully-controlled workload: threads 2k and
// 2k+1 share one buffer each (a perfectly pairable pattern).
func tinyWorkload(as *vm.AddressSpace) []trace.Program {
	buffers := make([]*trace.F64, 4)
	for i := range buffers {
		buffers[i] = trace.NewF64(as, 2048)
	}
	programs := make([]trace.Program, 8)
	for i := range programs {
		programs[i] = func(t *trace.Thread) {
			buf := buffers[t.ID()/2]
			for it := 0; it < 30; it++ {
				for k := 0; k < 256; k++ {
					buf.Add(t, (t.ID()*128+k)%buf.Len(), 1)
				}
				t.Barrier()
			}
		}
	}
	return programs
}

func spS() Workload {
	b, _ := npb.Get("SP")
	return FromNPB(b, npb.Params{Class: npb.ClassS})
}

func TestDetectMechanisms(t *testing.T) {
	for _, mech := range []Mechanism{SM, HM, Oracle, OracleLine} {
		det, err := Detect(tinyWorkload, mech, Options{ScanInterval: 5000, SampleEvery: 1})
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if det.Mechanism != mech {
			t.Errorf("mechanism echo = %s", det.Mechanism)
		}
		if det.Matrix == nil || det.Matrix.N() != 8 {
			t.Fatalf("%s: bad matrix", mech)
		}
		if det.Result == nil || det.Result.Accesses == 0 {
			t.Errorf("%s: no run result", mech)
		}
		if mech == SM && det.SampledFraction == 0 {
			t.Error("SM sampled fraction missing")
		}
	}
}

func TestDetectUnknownMechanism(t *testing.T) {
	if _, err := Detect(tinyWorkload, Mechanism("bogus"), Options{}); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestDetectAllSharesOneRun(t *testing.T) {
	sm, hm, oracle, err := DetectAll(tinyWorkload, Options{ScanInterval: 5000, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Result != hm.Result || hm.Result != oracle.Result {
		t.Error("DetectAll should share one simulation result")
	}
	if sm.Matrix == hm.Matrix || sm.Matrix == oracle.Matrix {
		t.Error("detections share a matrix")
	}
	// The oracle must see the pair structure.
	if oracle.Matrix.At(0, 1) == 0 || oracle.Matrix.At(6, 7) == 0 {
		t.Errorf("oracle missed pair sharing:\n%s", oracle.Matrix.String())
	}
	// Pairs dominate non-pairs.
	if oracle.Matrix.At(0, 1) <= oracle.Matrix.At(0, 7)*2 {
		t.Errorf("pair (0,1)=%d not dominant over (0,7)=%d",
			oracle.Matrix.At(0, 1), oracle.Matrix.At(0, 7))
	}
}

func TestBuildMappingPairsSharers(t *testing.T) {
	machine := topology.Harpertown()
	_, _, oracle, err := DetectAll(tinyWorkload, Options{SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	place, err := BuildMapping(oracle.Matrix, machine)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if !machine.SameL2(place[2*k], place[2*k+1]) {
			t.Errorf("pair (%d,%d) not on a shared L2: cores %d,%d",
				2*k, 2*k+1, place[2*k], place[2*k+1])
		}
	}
	// Nil machine defaults to Harpertown.
	if _, err := BuildMapping(oracle.Matrix, nil); err != nil {
		t.Errorf("nil machine: %v", err)
	}
}

func TestEvaluatePlacementMatters(t *testing.T) {
	paired, err := Evaluate(tinyWorkload, []int{0, 1, 2, 3, 4, 5, 6, 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Evaluate(tinyWorkload, []int{0, 4, 1, 5, 2, 6, 3, 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if split.Cycles <= paired.Cycles {
		t.Errorf("splitting sharers should be slower: %d vs %d", split.Cycles, paired.Cycles)
	}
	if paired.Detector != "none" {
		t.Errorf("evaluation ran with detector %q", paired.Detector)
	}
}

func TestEvaluateNilPlacementIsIdentity(t *testing.T) {
	res, err := Evaluate(tinyWorkload, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Placement {
		if c != i {
			t.Errorf("placement[%d] = %d", i, c)
		}
	}
}

func TestEvaluateWithDetection(t *testing.T) {
	det, err := EvaluateWithDetection(tinyWorkload, nil, SM, Options{SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if det.Matrix == nil {
		t.Fatal("no matrix")
	}
	if det.Result.DetectionOverhead <= 0 {
		t.Error("overhead not measured")
	}
	if _, err := EvaluateWithDetection(tinyWorkload, nil, Mechanism("nope"), Options{}); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestNPBWorkloadLookup(t *testing.T) {
	if _, err := NPBWorkload("XX", npb.Params{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	w, err := NPBWorkload("EP", npb.Params{Class: npb.ClassS})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Detect(w, Oracle, Options{}); err != nil {
		t.Errorf("EP class S detection failed: %v", err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Machine == nil || o.SampleEvery == 0 || o.ScanInterval == 0 {
		t.Error("defaults incomplete")
	}
	// Explicit values survive.
	o2 := Options{SampleEvery: 100, ScanInterval: 77}.withDefaults()
	if o2.SampleEvery != 100 || o2.ScanInterval != 77 {
		t.Error("explicit options overwritten")
	}
}

func TestSPClassSFullPipeline(t *testing.T) {
	machine := topology.Harpertown()
	sm, _, oracle, err := DetectAll(spS(), Options{SampleEvery: 1, ScanInterval: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Matrix.NeighborFraction() < 0.5 {
		t.Errorf("SP oracle neighbour fraction = %.2f", oracle.Matrix.NeighborFraction())
	}
	place, err := BuildMapping(sm.Matrix, machine)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(spS(), place, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestLineOracleSeesFalseSharing(t *testing.T) {
	// Two threads write adjacent 8-byte slots of one line; the remaining
	// threads idle. Page oracle and line oracle must both see it, but a
	// workload with >=64-byte spacing must only appear at page level.
	build := func(stride int) Workload {
		return func(as *vm.AddressSpace) []trace.Program {
			buf := trace.NewF64(as, 1024)
			programs := make([]trace.Program, 8)
			for i := range programs {
				programs[i] = func(t *trace.Thread) {
					for it := 0; it < 50; it++ {
						if t.ID() <= 1 {
							buf.Add(t, t.ID()*stride, 1)
						}
						t.Barrier()
					}
				}
			}
			return programs
		}
	}

	sameLine, err := Detect(build(1), OracleLine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	farApart, err := Detect(build(64), OracleLine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pageLevel, err := Detect(build(64), Oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sameLine.Matrix.At(0, 1) == 0 {
		t.Error("line oracle missed true line sharing")
	}
	if farApart.Matrix.At(0, 1) != 0 {
		t.Error("line oracle counted distinct lines")
	}
	if pageLevel.Matrix.At(0, 1) == 0 {
		t.Error("page oracle should see the page-level sharing (Section III-B5)")
	}
}
