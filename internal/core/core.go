// Package core is the public façade of the library: it wires the workload
// layer, the simulator, the TLB-based detectors and the hierarchical mapper
// into the three-step pipeline the paper evaluates:
//
//  1. Detect — run the application under a detection mechanism (SM, HM or
//     the full-trace oracle) and obtain its communication matrix
//     (Figures 4/5, Table III).
//  2. BuildMapping — turn the matrix into a thread -> core placement with
//     the Edmonds-matching hierarchical mapper (Section V-A).
//  3. Evaluate — run the application under that placement and measure
//     execution time, invalidations, snoop transactions and L2 misses
//     (Figures 6-9, Tables IV/V).
//
// Every entry point is safe for concurrent use: each run builds its own
// address space, thread team, caches, TLBs and detectors, and the shared
// inputs (topology presets, benchmark registries, detected matrices) are
// read-only after construction. internal/runner exploits this to fan
// independent (benchmark, placement, repetition) jobs out over a worker
// pool.
package core

import (
	"fmt"

	"tlbmap/internal/check"
	"tlbmap/internal/comm"
	"tlbmap/internal/fault"
	"tlbmap/internal/mapping"
	"tlbmap/internal/mem"
	"tlbmap/internal/metrics"
	"tlbmap/internal/sim"
	"tlbmap/internal/tlb"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// Workload builds the per-thread programs of an application, allocating its
// data in the supplied address space. Calling a Workload twice must produce
// an equivalent fresh instance (workloads are re-instantiated for every
// simulated run).
type Workload func(as *vm.AddressSpace) []trace.Program

// Mechanism selects a communication-detection mechanism.
type Mechanism string

// The detection mechanisms of the paper plus the two oracle granularities.
const (
	// SM is the software-managed TLB mechanism (Figure 1a).
	SM Mechanism = "SM"
	// HM is the hardware-managed TLB mechanism (Figure 1b).
	HM Mechanism = "HM"
	// Oracle is the full-memory-trace reference at page granularity.
	Oracle Mechanism = "oracle"
	// OracleLine is the full-trace reference at cache-line granularity,
	// for quantifying page-level false sharing.
	OracleLine Mechanism = "oracle-line"
)

// Options configures a pipeline run. The zero value reproduces the paper's
// setup: a two-socket Harpertown machine, Table II caches, a 64-entry 4-way
// TLB, SM sampling every 100th miss, and a scaled HM scan interval.
type Options struct {
	// Machine is the hardware topology; nil selects topology.Harpertown.
	Machine *topology.Machine
	// L1/L2 cache geometries; zero values select the Table II defaults.
	L1, L2 mem.CacheConfig
	// TLB geometry; the zero value selects 64 entries, 4-way.
	TLB tlb.Config
	// TLB2 optionally adds a second-level TLB on hardware-managed
	// machines (use tlb.DefaultL2Config for the Nehalem STLB geometry).
	TLB2 tlb.Config
	// SampleEvery is the SM sampling period n. The paper uses n = 100
	// (search on 1% of misses) on full-length NPB runs with millions of
	// TLB misses; the simulated kernels here are about four orders of
	// magnitude shorter, so the default is n = 10 to keep the number of
	// searches per run statistically comparable. Set 100 to reproduce the
	// paper's exact configuration, or 1 to monitor every miss (which the
	// paper also evaluates).
	SampleEvery uint64
	// ScanInterval is the HM scan period in simulated cycles. The paper
	// uses 10M cycles on multi-billion-cycle runs; the default here is
	// 100k cycles, the same scan-per-run-length ratio for the shorter
	// simulated kernels.
	ScanInterval uint64
	// JitterSeed enables run-to-run noise (see sim.Config); 0 disables.
	JitterSeed int64
	// MigrationInterval is the dynamic-migration epoch length in cycles
	// for EvaluateWithDynamicMigration (0 selects the engine default of
	// 500k cycles).
	MigrationInterval uint64
	// Quantum overrides the trace batch size (0 = trace.DefaultQuantum).
	Quantum int
	// Check arms the internal/check invariant suite for the run: the
	// sequential memory oracle, the MESI legality checker, the TLB/page
	// table consistency checker and the counter-conservation checker. A
	// violation surfaces as an error from the run. Roughly doubles the
	// cost of a run; meant for validation, not for experiments.
	Check bool
	// Faults arms the fault-injection layer (internal/fault) on the run:
	// the named scenarios perturb the TLB/detection path at the plan's
	// intensities and seed. The empty plan (the default) arms nothing
	// and costs nothing.
	Faults fault.Plan
	// Interrupt, when non-nil, is polled by the engine; closing it
	// cancels an in-flight run with sim.ErrInterrupted. The CLIs wire
	// Ctrl-C here; the hardened runner wires per-job timeouts.
	Interrupt <-chan struct{}
	// MinConfidence overrides the online controller's graceful-
	// degradation gate in EvaluateWithDynamicMigration: 0 selects
	// mapping.DefaultMinConfidence, a negative value disables the gate
	// (the pre-degradation thrash-on-noise behaviour, kept for
	// comparison runs).
	MinConfidence float64
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = topology.Harpertown()
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 10
	}
	if o.ScanInterval == 0 {
		o.ScanInterval = 100_000
	}
	return o
}

// Detection is the outcome of a detection run.
type Detection struct {
	Mechanism Mechanism
	// Matrix is the detected communication matrix, indexed by thread.
	Matrix *comm.Matrix
	// Result is the full simulation result of the detection run,
	// including the mechanism's overhead accounting.
	Result *sim.Result
	// SampledFraction is the fraction of TLB misses that triggered an SM
	// search (0 for other mechanisms) — Table III column 2.
	SampledFraction float64
	// FaultStats counts the injections performed when Options.Faults was
	// armed (zero otherwise).
	FaultStats fault.Stats
}

// newDetector instantiates the detector for a mechanism.
func newDetector(m Mechanism, threads int, o Options) (comm.Detector, error) {
	switch m {
	case SM:
		return comm.NewSMDetector(threads, o.SampleEvery), nil
	case HM:
		return comm.NewHMDetector(threads, o.ScanInterval), nil
	case Oracle:
		return comm.NewOracleDetector(threads, comm.PageGranularity), nil
	case OracleLine:
		return comm.NewOracleDetector(threads, comm.LineGranularity), nil
	default:
		return nil, fmt.Errorf("core: unknown mechanism %q", m)
	}
}

// tlbModeFor returns the TLB management type a mechanism runs on: SM
// requires software-managed TLBs; everything else models the
// hardware-managed x86-style machine of the evaluation.
func tlbModeFor(m Mechanism) tlb.Management {
	if m == SM {
		return tlb.SoftwareManaged
	}
	return tlb.HardwareManaged
}

// Detect runs the workload once with the chosen detection mechanism on the
// identity placement (thread i on core i, as during the paper's simulated
// detection phase) and returns the detected communication matrix.
func Detect(w Workload, m Mechanism, opt Options) (*Detection, error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	det, err := newDetector(m, len(programs), opt)
	if err != nil {
		return nil, err
	}
	res, fstats, err := runPrograms(programs, as, opt, nil, det, tlbModeFor(m))
	if err != nil {
		return nil, err
	}
	d := &Detection{Mechanism: m, Matrix: res.Matrix, Result: res, FaultStats: fstats}
	if smd, ok := det.(*comm.SMDetector); ok {
		d.SampledFraction = smd.SampledFraction()
	}
	return d, nil
}

// DetectAll runs the workload once with SM, HM and the page-granularity
// oracle observing simultaneously, returning the three matrices from a
// single execution (cheapest way to compare pattern accuracy).
func DetectAll(w Workload, opt Options) (sm, hm, oracle *Detection, err error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	n := len(programs)
	smd := comm.NewSMDetector(n, opt.SampleEvery)
	hmd := comm.NewHMDetector(n, opt.ScanInterval)
	ord := comm.NewOracleDetector(n, comm.PageGranularity)
	multi := comm.NewMultiDetector(smd, hmd, ord)
	// Run on software-managed TLBs so the SM detector sees every miss.
	// Faults armed here perturb the shared trap/timing path (shootdowns,
	// lost samples, preemption); the matrix-publication faults only apply
	// to published views, and DetectAll reads the children directly.
	res, fstats, err := runPrograms(programs, as, opt, nil, multi, tlb.SoftwareManaged)
	if err != nil {
		return nil, nil, nil, err
	}
	sm = &Detection{Mechanism: SM, Matrix: smd.Matrix(), Result: res, SampledFraction: smd.SampledFraction(), FaultStats: fstats}
	hm = &Detection{Mechanism: HM, Matrix: hmd.Matrix(), Result: res, FaultStats: fstats}
	oracle = &Detection{Mechanism: Oracle, Matrix: ord.Matrix(), Result: res, FaultStats: fstats}
	return sm, hm, oracle, nil
}

// BuildMapping turns a communication matrix into a placement: the paper's
// hierarchical Edmonds mapper up to mapping.DefaultAutoThreshold threads,
// the near-linear multilevel mapper beyond it.
func BuildMapping(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	if machine == nil {
		machine = topology.Harpertown()
	}
	return mapping.NewAuto().Map(m, machine)
}

// Evaluate runs the workload under the given placement with detection
// switched off (the performance runs of Section VI-B) and returns the full
// simulation result. A nil placement selects the identity.
func Evaluate(w Workload, placement []int, opt Options) (*sim.Result, error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	res, _, err := runPrograms(programs, as, opt, placement, comm.NullDetector{}, tlb.HardwareManaged)
	return res, err
}

// RunMetrics is the compact per-run summary the experiment tables
// aggregate: total cycles plus the three coherence counters the paper
// measures with hardware performance counters (Figures 6-9, Tables IV/V).
// It is the payload of one (benchmark, placement, repetition) job in the
// parallel experiment runner.
type RunMetrics struct {
	Cycles        uint64
	Invalidations uint64
	Snoops        uint64
	L2Misses      uint64
	// InterChip counts coherence transactions that crossed the chip
	// boundary — the traffic the mapping shifts onto shared caches.
	InterChip uint64
}

// EvaluateMetrics runs Evaluate and condenses the result into RunMetrics.
func EvaluateMetrics(w Workload, placement []int, opt Options) (RunMetrics, error) {
	res, err := Evaluate(w, placement, opt)
	if err != nil {
		return RunMetrics{}, err
	}
	return RunMetrics{
		Cycles:        res.Cycles,
		Invalidations: res.Counters.Get(metrics.Invalidations),
		Snoops:        res.Counters.Get(metrics.SnoopTransactions),
		L2Misses:      res.Counters.Get(metrics.L2Misses),
		InterChip:     res.Counters.Get(metrics.InterChipTraffic),
	}, nil
}

// CompiledWorkload is a workload instantiated and lowered to flat event
// arrays once, for repeated evaluation under different placements without
// re-spawning the goroutine team or regenerating the trace. Replays share
// one address space; the engine's timing and counters depend only on the
// recorded event stream (never on loaded data), so every replay returns
// metrics bit-identical to a fresh Evaluate of the same workload — the
// harness goldens pin this.
type CompiledWorkload struct {
	as     *vm.AddressSpace
	replay *trace.Replay
}

// CompileWorkload instantiates the workload and compiles its trace for
// replay via EvaluateMetrics.
func CompileWorkload(w Workload, opt Options) *CompiledWorkload {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	return &CompiledWorkload{as: as, replay: trace.Compile(buildTeam(programs, opt)).NewSource()}
}

// EvaluateMetrics replays the compiled trace under the given placement
// with detection switched off — the compile-once/replay-many counterpart
// of EvaluateMetrics on a Workload.
func (cw *CompiledWorkload) EvaluateMetrics(placement []int, opt Options) (RunMetrics, error) {
	opt = opt.withDefaults()
	cw.replay.Reset()
	inj := fault.New(opt.Faults, opt.Machine.NumCores())
	res, err := sim.RunSource(sim.Config{
		Machine:    opt.Machine,
		L1:         opt.L1,
		L2:         opt.L2,
		TLB:        opt.TLB,
		TLB2:       opt.TLB2,
		TLBMode:    tlb.HardwareManaged,
		Placement:  placement,
		Detector:   inj.WrapDetector(comm.NullDetector{}),
		Perturber:  inj.Perturber(),
		Interrupt:  opt.Interrupt,
		JitterSeed: opt.JitterSeed,
	}, cw.as, cw.replay)
	if err != nil {
		return RunMetrics{}, err
	}
	return RunMetrics{
		Cycles:        res.Cycles,
		Invalidations: res.Counters.Get(metrics.Invalidations),
		Snoops:        res.Counters.Get(metrics.SnoopTransactions),
		L2Misses:      res.Counters.Get(metrics.L2Misses),
		InterChip:     res.Counters.Get(metrics.InterChipTraffic),
	}, nil
}

// EvaluateWithDetection runs the workload under a placement with a live
// detection mechanism — the configuration for measuring the mechanism's
// overhead (Table III) and for the dynamic-remapping extension.
func EvaluateWithDetection(w Workload, placement []int, m Mechanism, opt Options) (*Detection, error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	det, err := newDetector(m, len(programs), opt)
	if err != nil {
		return nil, err
	}
	res, fstats, err := runPrograms(programs, as, opt, placement, det, tlbModeFor(m))
	if err != nil {
		return nil, err
	}
	d := &Detection{Mechanism: m, Matrix: res.Matrix, Result: res, FaultStats: fstats}
	if smd, ok := det.(*comm.SMDetector); ok {
		d.SampledFraction = smd.SampledFraction()
	}
	return d, nil
}

// buildTeam spawns the thread team with the configured batch quantum.
func buildTeam(programs []trace.Program, opt Options) *trace.Team {
	return trace.NewTeam(programs, opt.Quantum)
}

func runPrograms(programs []trace.Program, as *vm.AddressSpace, opt Options,
	placement []int, det comm.Detector, mode tlb.Management) (*sim.Result, fault.Stats, error) {
	team := buildTeam(programs, opt)
	var checker sim.Checker
	if opt.Check {
		checker = check.NewSuite()
	}
	inj := fault.New(opt.Faults, opt.Machine.NumCores())
	res, err := sim.Run(sim.Config{
		Checker:    checker,
		Machine:    opt.Machine,
		L1:         opt.L1,
		L2:         opt.L2,
		TLB:        opt.TLB,
		TLB2:       opt.TLB2,
		TLBMode:    mode,
		Placement:  placement,
		Detector:   inj.WrapDetector(det),
		Perturber:  inj.Perturber(),
		Interrupt:  opt.Interrupt,
		JitterSeed: opt.JitterSeed,
	}, as, team)
	return res, inj.Stats(), err
}
