package core

import (
	"errors"
	"strings"
	"testing"

	"tlbmap/internal/fault"
	"tlbmap/internal/sim"
)

func planWith(seed int64, kinds ...fault.Kind) fault.Plan {
	p := fault.Plan{Seed: seed}
	for _, k := range kinds {
		p.Intensity[k] = 1
	}
	return p
}

// Total sample loss must blind SM detection end-to-end through the façade:
// the stats count the lost traps and the published matrix is empty.
func TestDetectWithFaultsCountsInjections(t *testing.T) {
	opt := Options{SampleEvery: 1, Faults: planWith(7, fault.SampleLoss)}
	det, err := Detect(tinyWorkload, SM, opt)
	if err != nil {
		t.Fatal(err)
	}
	if det.FaultStats.LostSamples == 0 {
		t.Fatal("no samples lost at intensity 1")
	}
	if det.Matrix.Total() != 0 {
		t.Errorf("matrix total = %d under total sample loss, want 0", det.Matrix.Total())
	}
	// A clean control run must report zero injections.
	clean, err := Detect(tinyWorkload, SM, Options{SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.FaultStats.Total() != 0 {
		t.Errorf("clean run reported injections: %v", clean.FaultStats)
	}
	if clean.Matrix.Total() == 0 {
		t.Error("clean run detected nothing; test premise broken")
	}
}

// Same workload, same plan, same seed: bit-identical run and stats.
func TestFaultedDetectIsDeterministic(t *testing.T) {
	opt := Options{ScanInterval: 5_000, Faults: planWith(11, fault.ShootdownStorm, fault.ScanDrop)}
	a, err := Detect(tinyWorkload, HM, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detect(tinyWorkload, HM, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Cycles != b.Result.Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Result.Cycles, b.Result.Cycles)
	}
	if a.FaultStats != b.FaultStats {
		t.Errorf("stats differ: %v vs %v", a.FaultStats, b.FaultStats)
	}
	if a.Matrix.String() != b.Matrix.String() {
		t.Error("matrices differ between identical faulted runs")
	}
}

// A closed Interrupt channel must cancel the run promptly with the typed
// error — the hook the CLIs wire Ctrl-C into.
func TestInterruptCancelsDetect(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	_, err := Detect(tinyWorkload, HM, Options{Interrupt: ch})
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("err = %v, want sim.ErrInterrupted", err)
	}
}

// The dynamic-migration pipeline must survive every scenario firing at
// once: bookkeeping stays coherent and the fault layer reports what it did.
func TestDynamicMigrationSurvivesAllFaults(t *testing.T) {
	plan, err := fault.ParsePlan("all:1", 3)
	if err != nil {
		t.Fatal(err)
	}
	report, err := EvaluateWithDynamicMigration(twoPhaseWorkload, HM,
		Options{MigrationInterval: 200_000, ScanInterval: 5_000, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if report.FaultStats.Total() == 0 {
		t.Error("no injections recorded with every scenario armed")
	}
	if report.FinalConfidence < 0 || report.FinalConfidence > 1 {
		t.Errorf("final confidence %.3f out of [0,1]", report.FinalConfidence)
	}
	moved := 0
	for _, d := range report.Decisions {
		if d.Remap {
			moved += d.Migrations
		}
	}
	if moved != report.Result.Migrations {
		t.Errorf("decision migrations %d != engine migrations %d", moved, report.Result.Migrations)
	}
}

// Heavy matrix corruption must engage the confidence gate: the controller
// reports low-confidence decisions instead of chasing the corrupted
// pattern, and the gate can be disabled for comparison runs.
func TestDynamicMigrationConfidenceGateUnderDecay(t *testing.T) {
	opt := Options{MigrationInterval: 150_000, Faults: planWith(5, fault.MatrixDecay)}
	report, err := EvaluateWithDynamicMigration(twoPhaseWorkload, Oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	var gated bool
	for _, d := range report.Decisions {
		if strings.Contains(d.Reason, "low confidence") {
			gated = true
			break
		}
	}
	if !gated {
		t.Errorf("gate never engaged under total matrix decay (final confidence %.3f, decisions %d)",
			report.FinalConfidence, len(report.Decisions))
	}

	opt.MinConfidence = -1 // disable the gate
	ungated, err := EvaluateWithDynamicMigration(twoPhaseWorkload, Oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ungated.Decisions {
		if strings.Contains(d.Reason, "low confidence") {
			t.Fatalf("gate fired while disabled: %+v", d)
		}
	}
	if ungated.Fallbacks != 0 {
		t.Errorf("fallbacks with the gate disabled: %d", ungated.Fallbacks)
	}
}
