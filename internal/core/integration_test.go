package core

import (
	"testing"

	"tlbmap/internal/mapping"
	"tlbmap/internal/metrics"
	"tlbmap/internal/npb"
	"tlbmap/internal/topology"
)

// TestPaperShapeClassW verifies the headline qualitative results of the
// paper at evaluation scale:
//
//   - the detected patterns have the published structure (Figures 4/5):
//     domain decomposition for BT/IS/LU/MG/SP/UA, homogeneous for CG/FT,
//     (almost) nothing for EP, distant pairs for LU;
//   - SM matrices track the oracle at least as well as HM on structured
//     kernels;
//   - mapping from the SM matrix beats the OS-scheduler baseline on the
//     heterogeneous benchmarks (Figures 6-9) and is neutral on the
//     homogeneous ones.
//
// This is the repository's main end-to-end test; it simulates tens of
// millions of memory accesses and is skipped under -short.
func TestPaperShapeClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W integration test skipped in short mode")
	}
	machine := topology.Harpertown()

	type shape struct {
		heterogeneous bool    // expect a mapping win
		minNeighbor   float64 // oracle neighbour fraction lower bound
		maxNeighbor   float64 // upper bound (homogeneous kernels)
		maxTimeRatio  float64 // mapped time / mean OS time upper bound
	}
	// Time thresholds reflect each kernel's coherence share of runtime:
	// SP and LU communicate heavily (big wins); MG and UA communicate on
	// small boundaries relative to their compute, so their time win is
	// small even though their invalidation/snoop wins are large — the
	// same ordering the paper reports.
	shapes := map[string]shape{
		"BT": {true, 0.6, 1, 0.995},
		"SP": {true, 0.6, 1, 0.98},
		"MG": {true, 0.5, 1, 1.005},
		"UA": {true, 0.6, 1, 1.005},
		"IS": {true, 0.35, 1, 0.99},
		"LU": {true, 0.0, 1, 0.96}, // LU mixes neighbour and distant pairs
		"CG": {false, 0, 0.45, 0},
		"FT": {false, 0, 0.45, 0},
		"EP": {false, 0, 1, 0}, // almost no communication at all
	}

	for _, name := range npb.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sh := shapes[name]
			w, err := NPBWorkload(name, npb.Params{Class: npb.ClassW})
			if err != nil {
				t.Fatal(err)
			}
			sm, hm, oracle, err := DetectAll(w, Options{})
			if err != nil {
				t.Fatal(err)
			}

			// Pattern structure.
			nf := oracle.Matrix.NeighborFraction()
			if nf < sh.minNeighbor || nf > sh.maxNeighbor {
				t.Errorf("oracle neighbour fraction = %.2f, want [%.2f, %.2f]",
					nf, sh.minNeighbor, sh.maxNeighbor)
			}
			if name == "LU" {
				var distant uint64
				for i := 0; i < 4; i++ {
					distant += oracle.Matrix.At(i, 7-i)
				}
				if distant == 0 {
					t.Error("LU distant-thread communication missing")
				}
			}
			if name == "EP" {
				if r := float64(oracle.Matrix.Total()) / float64(oracle.Result.Accesses); r > 0.01 {
					t.Errorf("EP communicates: %.4f per access", r)
				}
				return // nothing further to check for EP
			}

			// Detection accuracy on the structured kernels (Section VI-A:
			// "the communication pattern detected by SM is more accurate").
			if sh.heterogeneous {
				smSim := sm.Matrix.Similarity(oracle.Matrix)
				if smSim < 0.5 {
					t.Errorf("SM similarity to oracle = %.3f", smSim)
				}
				hmSim := hm.Matrix.Similarity(oracle.Matrix)
				if hmSim < 0.4 {
					t.Errorf("HM similarity to oracle = %.3f", hmSim)
				}
			}

			// Mapping effect (Figures 6-9).
			place, err := BuildMapping(sm.Matrix, machine)
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := Evaluate(w, place, Options{})
			if err != nil {
				t.Fatal(err)
			}
			osSched := mapping.NewOSScheduler(17)
			var osCycles, osInv float64
			const reps = 6
			for r := 0; r < reps; r++ {
				p, err := osSched.Map(sm.Matrix, machine)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Evaluate(w, p, Options{JitterSeed: int64(r + 1)})
				if err != nil {
					t.Fatal(err)
				}
				osCycles += float64(res.Cycles) / reps
				osInv += float64(res.Counters.Get(metrics.Invalidations)) / reps
			}
			timeRatio := float64(mapped.Cycles) / osCycles
			invRatio := float64(mapped.Counters.Get(metrics.Invalidations)) / osInv
			if sh.heterogeneous {
				if timeRatio > sh.maxTimeRatio {
					t.Errorf("execution-time ratio %.3f exceeds %.3f", timeRatio, sh.maxTimeRatio)
				}
				if invRatio > 0.85 {
					t.Errorf("no invalidation win: ratio %.3f", invRatio)
				}
			} else {
				// Homogeneous kernels: mapping must not hurt much.
				if timeRatio > 1.05 {
					t.Errorf("mapping hurt a homogeneous kernel: ratio %.3f", timeRatio)
				}
			}
		})
	}
}

// TestSMOverheadShapeClassW reproduces the qualitative content of
// Table III: IS has by far the highest TLB miss rate and the highest SM
// overhead; EP the lowest; all overheads stay small.
func TestSMOverheadShapeClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W integration test skipped in short mode")
	}
	missRates := map[string]float64{}
	overheads := map[string]float64{}
	for _, name := range []string{"BT", "EP", "IS", "SP"} {
		w, err := NPBWorkload(name, npb.Params{Class: npb.ClassW})
		if err != nil {
			t.Fatal(err)
		}
		det, err := Detect(w, SM, Options{})
		if err != nil {
			t.Fatal(err)
		}
		missRates[name] = det.Result.TLBMissRate
		overheads[name] = det.Result.DetectionOverhead
	}
	if !(missRates["IS"] > 5*missRates["BT"]) {
		t.Errorf("IS miss rate %.4f%% should dwarf BT's %.4f%%",
			missRates["IS"]*100, missRates["BT"]*100)
	}
	if !(missRates["EP"] < missRates["BT"]) {
		t.Errorf("EP miss rate %.4f%% should be the lowest", missRates["EP"]*100)
	}
	if overheads["IS"] < overheads["BT"] || overheads["IS"] < overheads["EP"] {
		t.Error("IS should have the highest SM overhead")
	}
	for name, ov := range overheads {
		if name != "IS" && ov > 0.02 {
			t.Errorf("%s overhead %.3f%% too high", name, ov*100)
		}
	}
	if overheads["IS"] > 0.10 {
		t.Errorf("IS overhead %.3f%% unreasonably high", overheads["IS"]*100)
	}
}
