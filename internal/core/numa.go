package core

import (
	"fmt"
	"io"

	"tlbmap/internal/comm"
	"tlbmap/internal/datamap"
	"tlbmap/internal/sim"
	"tlbmap/internal/tlb"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// MeasureTraceSize runs the workload once while recording the full memory
// trace (the related-work approach of Section II) to a discarded stream and
// returns the record count and encoded byte size. Comparing the trace size
// against the few hundred bytes of a communication matrix reproduces the
// paper's storage argument against trace-based detection.
func MeasureTraceSize(w Workload, opt Options) (records, bytes uint64, err error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	rec := comm.NewTraceRecorder(len(programs), io.Discard)
	if _, _, err = runPrograms(programs, as, opt, nil, rec, tlb.HardwareManaged); err != nil {
		return 0, 0, err
	}
	if err = rec.Flush(); err != nil {
		return 0, 0, err
	}
	return rec.Records(), rec.BytesWritten(), nil
}

// DataProfile is the outcome of a page-profiling run: the input of the
// NUMA data-mapping policies.
type DataProfile struct {
	Profile *comm.PageProfile
	Result  *sim.Result
}

// ProfileData runs the workload once on the identity placement and records
// which thread touches which page how often (the page profile that the
// NUMA data-mapping extension consumes). Like detection, this is the
// profiling phase of a profile-then-place pipeline.
func ProfileData(w Workload, opt Options) (*DataProfile, error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	det := comm.NewProfileDetector(len(programs))
	res, _, err := runPrograms(programs, as, opt, nil, det, tlb.HardwareManaged)
	if err != nil {
		return nil, err
	}
	return &DataProfile{Profile: det.Profile(), Result: res}, nil
}

// EvaluateNUMA runs the workload under a thread placement and a data
// placement (a page -> node assignment from the datamap package) on a NUMA
// machine, with detection switched off. Use it to compare data-mapping
// policies: first-touch vs most-accessed vs interleave.
func EvaluateNUMA(w Workload, placement []int, assignment *datamap.Assignment, opt Options) (*sim.Result, error) {
	opt = opt.withDefaults()
	if opt.Machine.NUMANode(0) < 0 {
		return nil, fmt.Errorf("core: EvaluateNUMA requires a NUMA machine (use topology.NUMA); got %s", opt.Machine.Name)
	}
	as := vm.NewAddressSpace()
	programs := w(as)
	var pageNode func(vm.Page) int
	if assignment != nil {
		pageNode = assignment.Node
	}
	return sim.Run(sim.Config{
		Machine:    opt.Machine,
		L1:         opt.L1,
		L2:         opt.L2,
		TLB:        opt.TLB,
		TLB2:       opt.TLB2,
		TLBMode:    tlb.HardwareManaged,
		Placement:  placement,
		Detector:   comm.NullDetector{},
		JitterSeed: opt.JitterSeed,
		PageNode:   pageNode,
	}, as, trace.NewTeam(programs, opt.Quantum))
}
