package core

import (
	"tlbmap/internal/comm"
	"tlbmap/internal/fault"
	"tlbmap/internal/mapping"
	"tlbmap/internal/sim"
	"tlbmap/internal/vm"
)

// MigrationReport is the outcome of a dynamically-migrated run.
type MigrationReport struct {
	// Result is the simulation result (Result.Migrations counts moves).
	Result *sim.Result
	// Decisions lists every controller decision, in epoch order.
	Decisions []mapping.OnlineDecision
	// Remaps is the number of placements the controller issued.
	Remaps int
	// Fallbacks is how many times low confidence made the controller
	// retreat to the baseline placement (see mapping.OnlineMapper).
	Fallbacks int
	// FinalConfidence is the controller's pattern-stability score at the
	// end of the run.
	FinalConfidence float64
	// FaultStats counts the injections performed when Options.Faults was
	// armed (zero otherwise).
	FaultStats fault.Stats
}

// EvaluateWithDynamicMigration runs the workload with the full online
// pipeline the paper leaves as future work: a live detection mechanism
// accumulates the communication matrix; every Options.ScanInterval-aligned
// migration epoch the controller inspects the epoch's delta, and when the
// pattern has changed — and the predicted saving beats the migration cost —
// the engine migrates the threads mid-run (cold caches and TLBs included).
//
// The run starts on the identity placement, exactly like an application
// whose initial placement nobody tuned. That placement doubles as the
// controller's low-confidence fallback: when Options.Faults pollutes the
// detected pattern past the confidence gate, the controller retreats to
// what the OS would have done rather than chasing noise.
func EvaluateWithDynamicMigration(w Workload, mech Mechanism, opt Options) (*MigrationReport, error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	det, err := newDetector(mech, len(programs), opt)
	if err != nil {
		return nil, err
	}
	// The online controller reads the wrapped detector's published view, so
	// matrix-publication faults (dropped scans, bit decay) reach the
	// controller exactly as they would reach a real migration daemon.
	inj := fault.New(opt.Faults, opt.Machine.NumCores())
	wrapped := inj.WrapDetector(det)

	report := &MigrationReport{}
	online := mapping.NewOnlineMapper(opt.Machine, 0.6)
	identity := make([]int, opt.Machine.NumCores())
	for i := range identity {
		identity[i] = i
	}
	online.Fallback = identity
	switch {
	case opt.MinConfidence < 0:
		online.MinConfidence = 0 // gate disabled
	case opt.MinConfidence > 0:
		online.MinConfidence = opt.MinConfidence
	}
	var prev *comm.Matrix
	migrator := func(now uint64, placement []int) []int {
		cur := wrapped.Matrix()
		if cur == nil {
			return nil
		}
		epoch := cur.Sub(prev)
		prev = cur.Clone()
		dec, err := online.Observe(epoch)
		if err != nil {
			return nil
		}
		report.Decisions = append(report.Decisions, dec)
		if !dec.Remap {
			return nil
		}
		report.Remaps++
		return dec.Placement
	}

	team := buildTeam(programs, opt)
	res, err := sim.Run(sim.Config{
		Machine:           opt.Machine,
		L1:                opt.L1,
		L2:                opt.L2,
		TLB:               opt.TLB,
		TLB2:              opt.TLB2,
		TLBMode:           tlbModeFor(mech),
		Detector:          wrapped,
		Perturber:         inj.Perturber(),
		Interrupt:         opt.Interrupt,
		JitterSeed:        opt.JitterSeed,
		Migrator:          migrator,
		MigrationInterval: opt.MigrationInterval,
	}, as, team)
	if err != nil {
		return nil, err
	}
	report.Result = res
	report.Fallbacks = online.Fallbacks()
	report.FinalConfidence = online.Confidence()
	report.FaultStats = inj.Stats()
	return report, nil
}
