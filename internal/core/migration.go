package core

import (
	"tlbmap/internal/comm"
	"tlbmap/internal/mapping"
	"tlbmap/internal/sim"
	"tlbmap/internal/vm"
)

// MigrationReport is the outcome of a dynamically-migrated run.
type MigrationReport struct {
	// Result is the simulation result (Result.Migrations counts moves).
	Result *sim.Result
	// Decisions lists every controller decision, in epoch order.
	Decisions []mapping.OnlineDecision
	// Remaps is the number of placements the controller issued.
	Remaps int
}

// EvaluateWithDynamicMigration runs the workload with the full online
// pipeline the paper leaves as future work: a live detection mechanism
// accumulates the communication matrix; every Options.ScanInterval-aligned
// migration epoch the controller inspects the epoch's delta, and when the
// pattern has changed — and the predicted saving beats the migration cost —
// the engine migrates the threads mid-run (cold caches and TLBs included).
//
// The run starts on the identity placement, exactly like an application
// whose initial placement nobody tuned.
func EvaluateWithDynamicMigration(w Workload, mech Mechanism, opt Options) (*MigrationReport, error) {
	opt = opt.withDefaults()
	as := vm.NewAddressSpace()
	programs := w(as)
	det, err := newDetector(mech, len(programs), opt)
	if err != nil {
		return nil, err
	}

	report := &MigrationReport{}
	online := mapping.NewOnlineMapper(opt.Machine, 0.6)
	var prev *comm.Matrix
	migrator := func(now uint64, placement []int) []int {
		cur := det.Matrix()
		if cur == nil {
			return nil
		}
		epoch := cur.Sub(prev)
		prev = cur.Clone()
		dec, err := online.Observe(epoch)
		if err != nil {
			return nil
		}
		report.Decisions = append(report.Decisions, dec)
		if !dec.Remap {
			return nil
		}
		report.Remaps++
		return dec.Placement
	}

	team := buildTeam(programs, opt)
	res, err := sim.Run(sim.Config{
		Machine:           opt.Machine,
		L1:                opt.L1,
		L2:                opt.L2,
		TLB:               opt.TLB,
		TLB2:              opt.TLB2,
		TLBMode:           tlbModeFor(mech),
		Detector:          det,
		JitterSeed:        opt.JitterSeed,
		Migrator:          migrator,
		MigrationInterval: opt.MigrationInterval,
	}, as, team)
	if err != nil {
		return nil, err
	}
	report.Result = res
	return report, nil
}
