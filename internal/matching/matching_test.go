package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, n int, maxW int64) [][]int64 {
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Int63n(maxW + 1)
			w[i][j], w[j][i] = v, v
		}
	}
	return w
}

func checkPerfect(t *testing.T, mate []int, n int) {
	t.Helper()
	if len(mate) != n {
		t.Fatalf("mate has %d entries, want %d", len(mate), n)
	}
	for i, j := range mate {
		if j < 0 || j >= n || j == i {
			t.Fatalf("vertex %d has invalid mate %d", i, j)
		}
		if mate[j] != i {
			t.Fatalf("mate not symmetric: mate[%d]=%d but mate[%d]=%d", i, j, j, mate[j])
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if err := Validate([][]int64{{0, 1, 2}, {1, 0, 3}, {2, 3, 0}}); err != ErrOddVertices {
		t.Errorf("odd matrix: got %v, want ErrOddVertices", err)
	}
	if err := Validate([][]int64{{0, 1}, {2, 0}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if err := Validate([][]int64{{0, -1}, {-1, 0}}); err == nil {
		t.Error("negative weights accepted")
	}
	if err := Validate([][]int64{{0, 1}, {1, 0}}); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	if err := Validate([][]int64{{0, 1}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestTwoVertices(t *testing.T) {
	w := [][]int64{{0, 7}, {7, 0}}
	mate, weight, err := MaxWeightPerfectMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	checkPerfect(t, mate, 2)
	if weight != 7 {
		t.Errorf("weight = %d, want 7", weight)
	}
}

func TestKnownFourVertexInstance(t *testing.T) {
	// Pairs (0,1) and (2,3) weigh 10+9=19; the alternatives weigh
	// 1+2=3 and 5+5=10.
	w := [][]int64{
		{0, 10, 1, 5},
		{10, 0, 5, 2},
		{1, 5, 0, 9},
		{5, 2, 9, 0},
	}
	mate, weight, err := MaxWeightPerfectMatching(w)
	if err != nil {
		t.Fatal(err)
	}
	checkPerfect(t, mate, 4)
	if weight != 19 {
		t.Errorf("weight = %d, want 19", weight)
	}
	if mate[0] != 1 || mate[2] != 3 {
		t.Errorf("mate = %v, want 0-1 and 2-3", mate)
	}
}

// TestBlossomAgainstDP cross-checks the blossom solver against the exact
// bitmask DP on many random instances, including small weight ranges that
// force ties and blossom formation.
func TestBlossomAgainstDP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := 0
	for _, n := range []int{2, 4, 6, 8, 10, 12} {
		for _, maxW := range []int64{1, 2, 3, 10, 1000, 1 << 30} {
			iters := 60
			if n >= 10 {
				iters = 25
			}
			for k := 0; k < iters; k++ {
				w := randMatrix(rng, n, maxW)
				mate, got, err := MaxWeightPerfectMatching(w)
				if err != nil {
					t.Fatalf("n=%d maxW=%d: %v", n, maxW, err)
				}
				checkPerfect(t, mate, n)
				if MatchingWeight(w, mate) != got {
					t.Fatalf("n=%d: reported weight %d != recomputed %d", n, got, MatchingWeight(w, mate))
				}
				_, want, err := ExactDP(w)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("n=%d maxW=%d case %d: blossom=%d dp=%d\nw=%v", n, maxW, k, got, want, w)
				}
				cases++
			}
		}
	}
	t.Logf("verified %d random instances", cases)
}

// TestDPAgainstBruteForce anchors the DP itself against exhaustive search.
func TestDPAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 6, 8} {
		for k := 0; k < 40; k++ {
			w := randMatrix(rng, n, 50)
			_, dp, err := ExactDP(w)
			if err != nil {
				t.Fatal(err)
			}
			_, bf, err := BruteForce(w)
			if err != nil {
				t.Fatal(err)
			}
			if dp != bf {
				t.Fatalf("n=%d: dp=%d brute=%d w=%v", n, dp, bf, w)
			}
		}
	}
}

// TestGreedyNeverBeatsOptimal is the sanity property of the ablation
// baseline: greedy weight <= optimal weight, and greedy matchings are
// perfect.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 100; k++ {
		n := 2 * (1 + rng.Intn(5))
		w := randMatrix(rng, n, 100)
		gm, gw, err := Greedy(w)
		if err != nil {
			t.Fatal(err)
		}
		checkPerfect(t, gm, n)
		_, opt, err := ExactDP(w)
		if err != nil {
			t.Fatal(err)
		}
		if gw > opt {
			t.Fatalf("greedy %d beats optimal %d: w=%v", gw, opt, w)
		}
	}
}

// TestBlossomLargerInstances exercises instance sizes beyond the DP range
// and checks basic invariants plus superiority over greedy.
func TestBlossomLargerInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{16, 32, 64} {
		w := randMatrix(rng, n, 10000)
		mate, weight, err := MaxWeightPerfectMatching(w)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkPerfect(t, mate, n)
		_, gw, err := Greedy(w)
		if err != nil {
			t.Fatal(err)
		}
		if weight < gw {
			t.Errorf("n=%d: blossom weight %d below greedy %d", n, weight, gw)
		}
	}
}

// TestBlossomZeroMatrix: a matrix of all zeros still yields a perfect
// matching (the homogeneous-communication case: any mapping is as good as
// any other, but the mapper must still produce one).
func TestBlossomZeroMatrix(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		w := make([][]int64, n)
		for i := range w {
			w[i] = make([]int64, n)
		}
		mate, weight, err := MaxWeightPerfectMatching(w)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkPerfect(t, mate, n)
		if weight != 0 {
			t.Errorf("n=%d: weight = %d, want 0", n, weight)
		}
	}
}

// TestBlossomPropertyQuick uses testing/quick to fuzz 8-vertex instances.
func TestBlossomPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randMatrix(rng, 8, 6) // tiny weights provoke ties and blossoms
		mate, got, err := MaxWeightPerfectMatching(w)
		if err != nil {
			return false
		}
		for i, j := range mate {
			if j < 0 || j >= 8 || mate[j] != i || j == i {
				return false
			}
		}
		_, want, err := ExactDP(w)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBlossom8(b *testing.B) { benchBlossom(b, 8) }

func BenchmarkBlossom32(b *testing.B) { benchBlossom(b, 32) }

func BenchmarkBlossom128(b *testing.B) { benchBlossom(b, 128) }

func benchBlossom(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(3))
	w := randMatrix(rng, n, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxWeightPerfectMatching(w); err != nil {
			b.Fatal(err)
		}
	}
}
