// Package matching solves the maximum weight perfect matching problem for
// complete weighted graphs (Figure 2 of the paper): given a communication
// matrix, find the pairing of threads that maximizes the total communication
// inside pairs. The paper solves it with the Edmonds graph matching
// algorithm [4]; this package provides a full O(N³) blossom implementation
// plus an exact bitmask dynamic program and a greedy heuristic used as
// cross-check and ablation baseline.
package matching

import (
	"errors"
	"fmt"
	"math"
)

// ErrOddVertices is returned when a perfect matching is requested for an
// odd number of vertices.
var ErrOddVertices = errors.New("matching: perfect matching requires an even number of vertices")

// Validate checks that w is a square, symmetric, non-negative matrix with an
// even dimension.
func Validate(w [][]int64) error {
	n := len(w)
	if n == 0 {
		return errors.New("matching: empty weight matrix")
	}
	if n%2 != 0 {
		return ErrOddVertices
	}
	for i := range w {
		if len(w[i]) != n {
			return fmt.Errorf("matching: row %d has %d entries, want %d", i, len(w[i]), n)
		}
		for j := range w[i] {
			if w[i][j] < 0 {
				return fmt.Errorf("matching: negative weight w[%d][%d] = %d", i, j, w[i][j])
			}
			if w[i][j] != w[j][i] {
				return fmt.Errorf("matching: asymmetric weights w[%d][%d]=%d w[%d][%d]=%d",
					i, j, w[i][j], j, i, w[j][i])
			}
		}
	}
	return nil
}

// MatchingWeight sums the weight of a matching given as a mate array.
func MatchingWeight(w [][]int64, mate []int) int64 {
	var total int64
	for i, j := range mate {
		if j > i {
			total += w[i][j]
		}
	}
	return total
}

// MaxWeightPerfectMatching returns a maximum weight perfect matching of the
// complete graph whose edge weights are given by the symmetric non-negative
// matrix w. The result maps each vertex to its mate. The implementation is
// the O(N³) Edmonds blossom algorithm with dual variables.
//
// Because all perfect matchings of a complete graph contain exactly N/2
// edges, the weights are internally shifted by +1; this keeps every edge
// "present" for the solver without changing which matching is optimal.
func MaxWeightPerfectMatching(w [][]int64) ([]int, int64, error) {
	if err := Validate(w); err != nil {
		return nil, 0, err
	}
	n := len(w)
	if n == 2 {
		return []int{1, 0}, w[0][1], nil
	}
	b := newBlossomSolver(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.setWeight(i+1, j+1, w[i][j]+1) // +1 shift: see doc comment
			}
		}
	}
	mate1 := b.solve()
	mate := make([]int, n)
	for i := 1; i <= n; i++ {
		if mate1[i] == 0 {
			return nil, 0, fmt.Errorf("matching: solver left vertex %d unmatched", i-1)
		}
		mate[i-1] = mate1[i] - 1
	}
	return mate, MatchingWeight(w, mate), nil
}

const inf = math.MaxInt64 / 4

// edge mirrors the (u, v, w) triple the solver tracks per vertex pair,
// including contracted blossom pseudo-vertices.
type edge struct {
	u, v int
	w    int64
}

// blossomSolver is a direct implementation of the classic O(N³) maximum
// weight general matching algorithm with lazy blossom bookkeeping. Vertices
// are 1-based; pseudo-vertices (contracted blossoms) occupy IDs n+1..2n.
type blossomSolver struct {
	n, nx    int
	g        [][]edge
	lab      []int64
	match    []int
	slack    []int
	st       []int
	pa       []int
	flowerFr [][]int // flowerFr[b][x]: the sub-blossom of b containing original vertex x
	s        []int   // -1 unvisited, 0 even/outer, 1 odd/inner
	vis      []int
	flower   [][]int
	q        []int
	visitTag int
}

func newBlossomSolver(n int) *blossomSolver {
	size := 2*n + 1
	b := &blossomSolver{
		n:        n,
		g:        make([][]edge, size),
		lab:      make([]int64, size),
		match:    make([]int, size),
		slack:    make([]int, size),
		st:       make([]int, size),
		pa:       make([]int, size),
		flowerFr: make([][]int, size),
		s:        make([]int, size),
		vis:      make([]int, size),
		flower:   make([][]int, size),
	}
	for i := range b.g {
		b.g[i] = make([]edge, size)
		b.flowerFr[i] = make([]int, n+1)
		for j := range b.g[i] {
			b.g[i][j] = edge{u: i, v: j}
		}
	}
	return b
}

func (b *blossomSolver) setWeight(u, v int, w int64) {
	b.g[u][v].w = w
}

func (b *blossomSolver) eDelta(e edge) int64 {
	return b.lab[e.u] + b.lab[e.v] - 2*b.g[e.u][e.v].w
}

func (b *blossomSolver) updateSlack(u, x int) {
	if b.slack[x] == 0 || b.eDelta(b.g[u][x]) < b.eDelta(b.g[b.slack[x]][x]) {
		b.slack[x] = u
	}
}

func (b *blossomSolver) setSlack(x int) {
	b.slack[x] = 0
	for u := 1; u <= b.n; u++ {
		if b.g[u][x].w > 0 && b.st[u] != x && b.s[b.st[u]] == 0 {
			b.updateSlack(u, x)
		}
	}
}

func (b *blossomSolver) qPush(x int) {
	if x <= b.n {
		b.q = append(b.q, x)
		return
	}
	for _, child := range b.flower[x] {
		b.qPush(child)
	}
}

func (b *blossomSolver) setSt(x, root int) {
	b.st[x] = root
	if x > b.n {
		for _, child := range b.flower[x] {
			b.setSt(child, root)
		}
	}
}

// getPr orients blossom bl so that the path flower[0..pr] from the base to
// xr has even length, reversing the cycle when necessary, and returns pr.
func (b *blossomSolver) getPr(bl, xr int) int {
	pr := 0
	for i, x := range b.flower[bl] {
		if x == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// Odd position: walk the cycle the other way round.
		rest := b.flower[bl][1:]
		for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
			rest[i], rest[j] = rest[j], rest[i]
		}
		return len(b.flower[bl]) - pr
	}
	return pr
}

func (b *blossomSolver) setMatch(u, v int) {
	b.match[u] = b.g[u][v].v
	if u <= b.n {
		return
	}
	e := b.g[u][v]
	xr := b.flowerFr[u][e.u]
	pr := b.getPr(u, xr)
	for i := 0; i < pr; i++ {
		b.setMatch(b.flower[u][i], b.flower[u][i^1])
	}
	b.setMatch(xr, v)
	// Rotate so xr becomes the new base.
	fl := b.flower[u]
	b.flower[u] = append(append([]int{}, fl[pr:]...), fl[:pr]...)
}

func (b *blossomSolver) augment(u, v int) {
	for {
		xnv := b.st[b.match[u]]
		b.setMatch(u, v)
		if xnv == 0 {
			return
		}
		b.setMatch(xnv, b.st[b.pa[xnv]])
		u, v = b.st[b.pa[xnv]], xnv
	}
}

func (b *blossomSolver) getLCA(u, v int) int {
	b.visitTag++
	t := b.visitTag
	for u != 0 || v != 0 {
		if u != 0 {
			if b.vis[u] == t {
				return u
			}
			b.vis[u] = t
			u = b.st[b.match[u]]
			if u != 0 {
				u = b.st[b.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (b *blossomSolver) addBlossom(u, lca, v int) {
	bl := b.n + 1
	for bl <= b.nx && b.st[bl] != 0 {
		bl++
	}
	if bl > b.nx {
		b.nx++
	}
	b.lab[bl] = 0
	b.s[bl] = 0
	b.match[bl] = b.match[lca]
	b.flower[bl] = b.flower[bl][:0]
	b.flower[bl] = append(b.flower[bl], lca)
	for x := u; x != lca; {
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], x, y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	rest := b.flower[bl][1:]
	for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
		rest[i], rest[j] = rest[j], rest[i]
	}
	for x := v; x != lca; {
		y := b.st[b.match[x]]
		b.flower[bl] = append(b.flower[bl], x, y)
		b.qPush(y)
		x = b.st[b.pa[y]]
	}
	b.setSt(bl, bl)
	for x := 1; x <= b.nx; x++ {
		b.g[bl][x].w = 0
		b.g[x][bl].w = 0
	}
	for x := 1; x <= b.n; x++ {
		b.flowerFr[bl][x] = 0
	}
	for _, xs := range b.flower[bl] {
		for x := 1; x <= b.nx; x++ {
			if b.g[bl][x].w == 0 || b.eDelta(b.g[xs][x]) < b.eDelta(b.g[bl][x]) {
				b.g[bl][x] = b.g[xs][x]
				b.g[x][bl] = b.g[x][xs]
			}
		}
		for x := 1; x <= b.n; x++ {
			if xs <= b.n {
				if xs == x {
					b.flowerFr[bl][x] = xs
				}
			} else if b.flowerFr[xs][x] != 0 {
				b.flowerFr[bl][x] = xs
			}
		}
	}
	b.setSlack(bl)
}

func (b *blossomSolver) expandBlossom(bl int) {
	for _, child := range b.flower[bl] {
		b.setSt(child, child)
	}
	xr := b.flowerFr[bl][b.g[bl][b.pa[bl]].u]
	pr := b.getPr(bl, xr)
	for i := 0; i < pr; i += 2 {
		xs := b.flower[bl][i]
		xns := b.flower[bl][i+1]
		b.pa[xs] = b.g[xns][xs].u
		b.s[xs] = 1
		b.s[xns] = 0
		b.slack[xs] = 0
		b.setSlack(xns)
		b.qPush(xns)
	}
	b.s[xr] = 1
	b.pa[xr] = b.pa[bl]
	for i := pr + 1; i < len(b.flower[bl]); i++ {
		xs := b.flower[bl][i]
		b.s[xs] = -1
		b.setSlack(xs)
	}
	b.st[bl] = 0
}

func (b *blossomSolver) onFoundEdge(e edge) bool {
	u := b.st[e.u]
	v := b.st[e.v]
	switch b.s[v] {
	case -1:
		b.pa[v] = e.u
		b.s[v] = 1
		nu := b.st[b.match[v]]
		b.slack[v] = 0
		b.slack[nu] = 0
		b.s[nu] = 0
		b.qPush(nu)
	case 0:
		lca := b.getLCA(u, v)
		if lca == 0 {
			b.augment(u, v)
			b.augment(v, u)
			return true
		}
		b.addBlossom(u, lca, v)
	}
	return false
}

// matchingPhase grows alternating trees from every free vertex, adjusting
// dual variables until an augmenting path is found (true) or the duals
// prove the matching maximum (false).
func (b *blossomSolver) matchingPhase() bool {
	for x := 1; x <= b.nx; x++ {
		b.s[x] = -1
		b.slack[x] = 0
	}
	b.q = b.q[:0]
	for x := 1; x <= b.nx; x++ {
		if b.st[x] == x && b.match[x] == 0 {
			b.pa[x] = 0
			b.s[x] = 0
			b.qPush(x)
		}
	}
	if len(b.q) == 0 {
		return false
	}
	for {
		for len(b.q) > 0 {
			u := b.q[0]
			b.q = b.q[1:]
			if b.s[b.st[u]] == 1 {
				continue
			}
			for v := 1; v <= b.n; v++ {
				if b.g[u][v].w > 0 && b.st[u] != b.st[v] {
					if b.eDelta(b.g[u][v]) == 0 {
						if b.onFoundEdge(b.g[u][v]) {
							return true
						}
					} else {
						b.updateSlack(u, b.st[v])
					}
				}
			}
		}
		d := int64(inf)
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl && b.s[bl] == 1 {
				if half := b.lab[bl] / 2; half < d {
					d = half
				}
			}
		}
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 {
				delta := b.eDelta(b.g[b.slack[x]][x])
				switch b.s[x] {
				case -1:
					if delta < d {
						d = delta
					}
				case 0:
					if delta/2 < d {
						d = delta / 2
					}
				}
			}
		}
		for u := 1; u <= b.n; u++ {
			switch b.s[b.st[u]] {
			case 0:
				if b.lab[u] <= d {
					return false
				}
				b.lab[u] -= d
			case 1:
				b.lab[u] += d
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl {
				switch b.s[bl] {
				case 0:
					b.lab[bl] += 2 * d
				case 1:
					b.lab[bl] -= 2 * d
				}
			}
		}
		b.q = b.q[:0]
		for x := 1; x <= b.nx; x++ {
			if b.st[x] == x && b.slack[x] != 0 && b.st[b.slack[x]] != x &&
				b.eDelta(b.g[b.slack[x]][x]) == 0 {
				if b.onFoundEdge(b.g[b.slack[x]][x]) {
					return true
				}
			}
		}
		for bl := b.n + 1; bl <= b.nx; bl++ {
			if b.st[bl] == bl && b.s[bl] == 1 && b.lab[bl] == 0 {
				b.expandBlossom(bl)
			}
		}
	}
}

// solve runs augmentation phases to completion and returns the 1-based mate
// array (0 = unmatched).
func (b *blossomSolver) solve() []int {
	b.nx = b.n
	for u := 0; u <= b.n; u++ {
		b.st[u] = u
		b.flower[u] = nil
	}
	var wMax int64
	for u := 1; u <= b.n; u++ {
		for v := 1; v <= b.n; v++ {
			if u == v {
				b.flowerFr[u][v] = u
			} else {
				b.flowerFr[u][v] = 0
			}
			if b.g[u][v].w > wMax {
				wMax = b.g[u][v].w
			}
		}
	}
	for u := 1; u <= b.n; u++ {
		b.lab[u] = wMax
	}
	for b.matchingPhase() {
	}
	return b.match[:b.n+1]
}
