package matching

import (
	"math/rand"
	"testing"
)

// denseToEdges extracts the non-zero upper-triangle edges of a dense
// weight matrix.
func denseToEdges(w [][]int64) []Edge {
	var edges []Edge
	for i := range w {
		for j := i + 1; j < len(w); j++ {
			if w[i][j] != 0 {
				edges = append(edges, Edge{U: i, V: j, W: w[i][j]})
			}
		}
	}
	return edges
}

// TestHeavyEdgePairingMatchesGreedy is the differential oracle against the
// existing dense path: on any dense graph the sparse heavy-edge pairing
// must reproduce Greedy mate for mate — same sort keys, same scan, and
// leftover vertices pair in index order exactly like Greedy's zero-weight
// edges.
func TestHeavyEdgePairingMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := (rng.Intn(16) + 1) * 2 // 2..32, even
		w := make([][]int64, n)
		for i := range w {
			w[i] = make([]int64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var v int64
				switch rng.Intn(3) {
				case 0: // zero: stays out of the sparse edge list
				case 1:
					v = int64(rng.Intn(5)) // heavy ties
				case 2:
					v = int64(rng.Intn(1_000_000))
				}
				w[i][j], w[j][i] = v, v
			}
		}
		gMate, gWeight, err := Greedy(w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		hMate, hWeight := HeavyEdgePairing(n, denseToEdges(w))
		if hWeight != gWeight {
			t.Fatalf("trial %d (n=%d): heavy-edge weight %d, greedy %d", trial, n, hWeight, gWeight)
		}
		for i := range gMate {
			if gMate[i] != hMate[i] {
				t.Fatalf("trial %d (n=%d): mate[%d] = %d (heavy-edge) vs %d (greedy)",
					trial, n, i, hMate[i], gMate[i])
			}
		}
	}
}

// TestHeavyEdgePairingIsPerfect: sparse random graphs — including graphs
// with isolated vertices — must still produce a perfect pairing for even
// n, and exactly one unpaired vertex for odd n.
func TestHeavyEdgePairingIsPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40) + 2
		var edges []Edge
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			edges = append(edges, Edge{U: u, V: v, W: int64(rng.Intn(1000))})
		}
		mate, _ := HeavyEdgePairing(n, edges)
		unpaired := 0
		for i, m := range mate {
			if m == -1 {
				unpaired++
				continue
			}
			if m < 0 || m >= n || m == i || mate[m] != i {
				t.Fatalf("trial %d: invalid pairing: mate[%d]=%d (%v)", trial, i, m, mate)
			}
		}
		if want := n % 2; unpaired != want {
			t.Fatalf("trial %d (n=%d): %d unpaired vertices, want %d", trial, n, unpaired, want)
		}
	}
}

// TestImprovePairingRepairsFragmentation: the canonical greedy failure —
// a path 0-1-2-3 with the middle edge heaviest — must be repaired to the
// optimal pairing by one 2-opt exchange.
func TestImprovePairingRepairsFragmentation(t *testing.T) {
	edges := []Edge{{0, 1, 5}, {1, 2, 6}, {2, 3, 5}}
	mate, w := HeavyEdgePairing(4, edges)
	if w != 6 {
		t.Fatalf("greedy weight %d, want the fragmented 6", w)
	}
	ImprovePairing(4, edges, mate)
	if mate[0] != 1 || mate[1] != 0 || mate[2] != 3 || mate[3] != 2 {
		t.Fatalf("2-opt did not recover the optimal pairing: %v", mate)
	}
}

// TestImprovePairingNeverWorsens: across random graphs, the improved
// pairing must stay a valid pairing and its weight must not drop.
func TestImprovePairingNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	weightOf := func(n int, edges []Edge, mate []int) int64 {
		w := map[[2]int]int64{}
		for _, e := range edges {
			w[[2]int{e.U, e.V}] = e.W
		}
		var total int64
		for i, m := range mate {
			if m > i {
				total += w[[2]int{i, m}]
			}
		}
		return total
	}
	for trial := 0; trial < 200; trial++ {
		n := (rng.Intn(20) + 1) * 2
		var edges []Edge
		for e := 0; e < rng.Intn(3*n)+1; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			edges = append(edges, Edge{U: u, V: v, W: int64(rng.Intn(100))})
		}
		// Deduplicate: ImprovePairing's weight lookup assumes one weight
		// per pair, like the contracted graphs it runs on.
		seen := map[[2]int]bool{}
		uniq := edges[:0]
		for _, e := range edges {
			k := [2]int{e.U, e.V}
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, e)
			}
		}
		edges = uniq
		mate, before := HeavyEdgePairing(n, edges)
		ImprovePairing(n, edges, mate)
		for i, m := range mate {
			if m < 0 || m >= n || m == i || mate[m] != i {
				t.Fatalf("trial %d: invalid pairing after 2-opt: mate[%d]=%d", trial, i, m)
			}
		}
		if after := weightOf(n, edges, mate); after < before {
			t.Fatalf("trial %d: 2-opt dropped weight from %d to %d", trial, before, after)
		}
	}
}
