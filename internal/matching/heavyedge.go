package matching

import "sort"

// Edge is one weighted undirected edge of a sparse graph. Callers keep
// U < V; weights are non-negative.
type Edge struct {
	U, V int
	W    int64
}

// SortEdges orders edges heaviest first with the same deterministic
// tie-break as Greedy: weight descending, then (U, V) ascending. Sorting
// is in place.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].W != edges[b].W {
			return edges[a].W > edges[b].W
		}
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
}

// HeavyEdgePairing pairs the n vertices of a sparse graph greedily along
// their heaviest edges: edges are visited heaviest first (ties broken like
// Greedy, so the two agree edge for edge on dense inputs) and an edge is
// taken whenever both endpoints are still free. Vertices with no usable
// edge are then paired with each other in ascending index order — any two
// of them cannot share an edge, or that edge would have been taken, so
// the leftover pairs contribute zero weight. With even n the result is a
// perfect pairing; with odd n the last leftover keeps mate -1.
//
// This is the coarsening step of multilevel mapping (Schulz & Woydt):
// O(E log E) against the blossom's O(V³), at the usual 1/2-approximation
// of greedy matching. It sorts edges in place.
func HeavyEdgePairing(n int, edges []Edge) ([]int, int64) {
	SortEdges(edges)
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	var weight int64
	for _, e := range edges {
		if e.U != e.V && mate[e.U] == -1 && mate[e.V] == -1 {
			mate[e.U], mate[e.V] = e.V, e.U
			weight += e.W
		}
	}
	prev := -1
	for v := 0; v < n; v++ {
		if mate[v] != -1 {
			continue
		}
		if prev < 0 {
			prev = v
			continue
		}
		mate[prev], mate[v] = v, prev
		prev = -1
	}
	return mate, weight
}

// ImprovePairing repairs a pairing with 2-opt exchanges: for every edge
// (u, v) whose endpoints are paired elsewhere, the exchange to
// {(u,v), (mate(u), mate(v))} is taken whenever it carries strictly more
// weight. Edges must be sorted heaviest first (HeavyEdgePairing leaves
// them that way) and mate must be a full pairing; unpaired vertices
// (mate -1, odd n) are skipped.
//
// This is the standard cure for greedy-matching fragmentation: on a ring
// of near-equal weights greedy strands every other vertex with a distant
// zero-weight partner, and no amount of downstream refinement can split a
// bad merge — the exchange fixes the pairing before it is contracted.
func ImprovePairing(n int, edges []Edge, mate []int) {
	w := make(map[uint64]int64, len(edges))
	key := func(a, b int) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(a)<<32 | uint64(b)
	}
	for _, e := range edges {
		w[key(e.U, e.V)] = e.W
	}
	weight := func(a, b int) int64 { return w[key(a, b)] }
	const passes = 4
	for pass := 0; pass < passes; pass++ {
		improved := false
		for _, e := range edges {
			u, v := e.U, e.V
			if u == v || mate[u] == v {
				continue
			}
			mu, mv := mate[u], mate[v]
			if mu < 0 || mv < 0 {
				continue
			}
			if e.W+weight(mu, mv) > weight(u, mu)+weight(v, mv) {
				mate[u], mate[v] = v, u
				mate[mu], mate[mv] = mv, mu
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}
