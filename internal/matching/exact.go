package matching

import (
	"math"
	"math/bits"
	"sort"
)

// MaxDPVertices is the largest instance ExactDP accepts; beyond it the
// 2^N table no longer fits in reasonable memory.
const MaxDPVertices = 24

// ExactDP computes a maximum weight perfect matching by dynamic programming
// over vertex subsets in O(2^N · N) time. It is exact and simple, and
// serves as the correctness reference for the blossom solver; it is limited
// to N <= MaxDPVertices.
func ExactDP(w [][]int64) ([]int, int64, error) {
	if err := Validate(w); err != nil {
		return nil, 0, err
	}
	n := len(w)
	if n > MaxDPVertices {
		return nil, 0, errTooLarge(n)
	}
	full := 1 << n
	const unset = math.MinInt64
	best := make([]int64, full)
	choice := make([]int, full) // packed (i<<8)|j of the pair removed last
	for m := 1; m < full; m++ {
		best[m] = unset
	}
	for m := 1; m < full; m++ {
		pop := bits.OnesCount(uint(m))
		if pop%2 != 0 {
			continue
		}
		// Always match the lowest set bit: every perfect matching pairs
		// it with something, so this canonical choice loses nothing.
		i := bits.TrailingZeros(uint(m))
		rest := m &^ (1 << i)
		for r := rest; r != 0; r &= r - 1 {
			j := bits.TrailingZeros(uint(r))
			prev := m &^ (1 << i) &^ (1 << j)
			if best[prev] == unset && prev != 0 {
				continue
			}
			var base int64
			if prev != 0 {
				base = best[prev]
			}
			if cand := base + w[i][j]; best[m] == unset || cand > best[m] {
				best[m] = cand
				choice[m] = i<<8 | j
			}
		}
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	for m := full - 1; m != 0; {
		c := choice[m]
		i, j := c>>8, c&0xff
		mate[i], mate[j] = j, i
		m = m &^ (1 << i) &^ (1 << j)
	}
	return mate, best[full-1], nil
}

type errTooLarge int

func (e errTooLarge) Error() string {
	return "matching: ExactDP limited to 24 vertices, got " + itoa(int(e))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BruteForce enumerates every perfect matching recursively. It is the
// slowest but most obviously correct solver; use only for N <= 12
// ((N-1)!! matchings).
func BruteForce(w [][]int64) ([]int, int64, error) {
	if err := Validate(w); err != nil {
		return nil, 0, err
	}
	n := len(w)
	mate := make([]int, n)
	best := make([]int, n)
	for i := range mate {
		mate[i] = -1
		best[i] = -1
	}
	bestW := int64(math.MinInt64)
	var rec func(acc int64)
	rec = func(acc int64) {
		i := -1
		for k := 0; k < n; k++ {
			if mate[k] == -1 {
				i = k
				break
			}
		}
		if i == -1 {
			if acc > bestW {
				bestW = acc
				copy(best, mate)
			}
			return
		}
		for j := i + 1; j < n; j++ {
			if mate[j] != -1 {
				continue
			}
			mate[i], mate[j] = j, i
			rec(acc + w[i][j])
			mate[i], mate[j] = -1, -1
		}
	}
	rec(0)
	return best, bestW, nil
}

// Greedy pairs the heaviest remaining edge first. It is the ablation
// baseline for the mapping experiments: fast, but not optimal (its
// approximation ratio is 1/2 in the worst case).
func Greedy(w [][]int64) ([]int, int64, error) {
	if err := Validate(w); err != nil {
		return nil, 0, err
	}
	n := len(w)
	type e struct {
		i, j int
		w    int64
	}
	edges := make([]e, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, e{i, j, w[i][j]})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	for _, ed := range edges {
		if mate[ed.i] == -1 && mate[ed.j] == -1 {
			mate[ed.i], mate[ed.j] = ed.j, ed.i
		}
	}
	return mate, MatchingWeight(w, mate), nil
}
