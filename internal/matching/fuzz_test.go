package matching

import (
	"testing"
)

// FuzzMatchingOptimality cross-checks the blossom solver against the exact
// bitmask DP on arbitrary symmetric weight matrices with up to 12 vertices.
// The fuzzer decodes the raw bytes as (n, weights): the first byte picks the
// instance size, the rest fill the upper triangle row by row (two bytes per
// weight, missing bytes read as zero). Both solvers must agree on the
// optimal total weight and both matchings must be perfect.
func FuzzMatchingOptimality(f *testing.F) {
	f.Add([]byte{4, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6})
	f.Add([]byte{2, 0xff, 0xff})
	f.Add([]byte{6, 9, 9, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add([]byte{12})                   // all-zero weights at the size cap
	f.Add([]byte{8, 1, 1, 1, 1, 1, 1}) // partial triangle
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// 2..12 vertices, even (perfect matchings need an even order).
		n := int(data[0])%6*2 + 2
		data = data[1:]
		w := make([][]int64, n)
		for i := range w {
			w[i] = make([]int64, n)
		}
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var v int64
				if k < len(data) {
					v = int64(data[k])
				}
				if k+1 < len(data) {
					v = v<<8 | int64(data[k+1])
				}
				k += 2
				w[i][j], w[j][i] = v, v
			}
		}

		bMate, bWeight, err := MaxWeightPerfectMatching(w)
		if err != nil {
			t.Fatalf("blossom: %v", err)
		}
		dMate, dWeight, err := ExactDP(w)
		if err != nil {
			t.Fatalf("dp: %v", err)
		}
		if bWeight != dWeight {
			t.Fatalf("n=%d: blossom weight %d != exact %d\nw=%v", n, bWeight, dWeight, w)
		}
		for name, mate := range map[string][]int{"blossom": bMate, "dp": dMate} {
			if len(mate) != n {
				t.Fatalf("%s: %d mates for %d vertices", name, len(mate), n)
			}
			for i, m := range mate {
				if m < 0 || m >= n || m == i || mate[m] != i {
					t.Fatalf("%s: not a perfect matching: mate[%d]=%d (mates %v)", name, i, m, mate)
				}
			}
		}
		// The reported weight must match the matching it came with.
		if got := MatchingWeight(w, bMate); got != bWeight {
			t.Fatalf("blossom weight %d but its matching weighs %d", bWeight, got)
		}
	})
}
