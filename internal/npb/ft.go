package npb

import (
	"math"

	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "FT",
		Description: "3-D FFT with a global transpose; the transpose makes the pattern homogeneous all-to-all",
		Expected:    Homogeneous,
		Build:       buildFT,
	})
}

// buildFT constructs the FT kernel: a 3-D complex FFT with the classic
// 1-D-decomposed structure — two local FFT dimensions inside each thread's
// z-slab, then a global transpose that redistributes the slab across every
// other thread's target region, then the third FFT dimension. The transpose
// writes are spread uniformly over all threads' future working sets, which
// is exactly why FT's communication matrix is homogeneous (Figure 4).
func buildFT(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var nz, ny, nx, iters int
	switch p.Class {
	case ClassS:
		nz, ny, nx, iters = 8, 8, 8, 1
	default:
		// nz = 64 makes each thread's z-range in the transposed layout
		// exactly one 64-byte cache line, mirroring the padding NPB FT
		// applies to avoid false sharing in its transpose buffers.
		nz, ny, nx, iters = 64, 16, 32, 1
	}
	n := p.Threads
	// Complex field as separate real/imaginary grids, plus the transpose
	// target (z and x swapped).
	re := trace.NewGrid3(as, nz, ny, nx)
	im := trace.NewGrid3(as, nz, ny, nx)
	reT := trace.NewGrid3(as, nx, ny, nz)
	imT := trace.NewGrid3(as, nx, ny, nz)

	rng := newLCG(p.Seed)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				re.Poke(z, y, x, rng.float64())
				im.Poke(z, y, x, 0)
			}
		}
	}

	// fftLineX runs an in-place iterative radix-2 FFT along the x axis of
	// (z, y) in the given grids. Every butterfly is four traced loads and
	// four traced stores.
	fftLineX := func(t *trace.Thread, gr, gi *trace.Grid3, z, y int) {
		m := gr.Nx
		// Bit-reversal permutation.
		for i, j := 1, 0; i < m; i++ {
			bit := m >> 1
			for ; j&bit != 0; bit >>= 1 {
				j ^= bit
			}
			j ^= bit
			if i < j {
				a, b := gr.Get(t, z, y, i), gr.Get(t, z, y, j)
				gr.Set(t, z, y, i, b)
				gr.Set(t, z, y, j, a)
				a, b = gi.Get(t, z, y, i), gi.Get(t, z, y, j)
				gi.Set(t, z, y, i, b)
				gi.Set(t, z, y, j, a)
			}
		}
		for length := 2; length <= m; length <<= 1 {
			ang := -2 * math.Pi / float64(length)
			for i := 0; i < m; i += length {
				for k := 0; k < length/2; k++ {
					wr, wi := math.Cos(ang*float64(k)), math.Sin(ang*float64(k))
					ur, ui := gr.Get(t, z, y, i+k), gi.Get(t, z, y, i+k)
					vr := gr.Get(t, z, y, i+k+length/2)
					vi := gi.Get(t, z, y, i+k+length/2)
					tr := vr*wr - vi*wi
					ti := vr*wi + vi*wr
					gr.Set(t, z, y, i+k, ur+tr)
					gi.Set(t, z, y, i+k, ui+ti)
					gr.Set(t, z, y, i+k+length/2, ur-tr)
					gi.Set(t, z, y, i+k+length/2, ui-ti)
					t.Compute(12)
				}
			}
		}
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(nz, n, id)
		for it := 0; it < iters; it++ {
			// Dimension 1: FFT along x for every line of the slab.
			for z := lo; z < hi; z++ {
				for y := 0; y < ny; y++ {
					fftLineX(t, re, im, z, y)
				}
			}
			t.Barrier()
			// Dimension 2: FFT along y, via a local in-slab transpose of
			// each xy-plane (swap-based, thread-local).
			for z := lo; z < hi; z++ {
				for y := 0; y < ny; y++ {
					for x := y + 1; x < nx && x < ny; x++ {
						a, b := re.Get(t, z, y, x), re.Get(t, z, x, y)
						re.Set(t, z, y, x, b)
						re.Set(t, z, x, y, a)
						a, b = im.Get(t, z, y, x), im.Get(t, z, x, y)
						im.Set(t, z, y, x, b)
						im.Set(t, z, x, y, a)
					}
				}
				for y := 0; y < ny; y++ {
					fftLineX(t, re, im, z, y)
				}
			}
			t.Barrier()
			// Global transpose: scatter the slab into the z<->x swapped
			// layout. Destination planes belong to every other thread's
			// next-phase slab — the all-to-all exchange of NPB FT. The
			// loops walk the *destination* in layout order (as NPB's
			// buffered transpose does), so the writes stream through the
			// target pages instead of thrashing the TLB.
			for x := 0; x < nx; x++ {
				for y := 0; y < ny; y++ {
					for z := lo; z < hi; z++ {
						reT.Set(t, x, y, z, re.Get(t, z, y, x))
						imT.Set(t, x, y, z, im.Get(t, z, y, x))
					}
				}
			}
			t.Barrier()
			// Dimension 3: FFT along the former z axis, now contiguous in
			// the transposed grids; each thread owns an x-slab of them.
			tLo, tHi := slab(nx, n, id)
			for z := tLo; z < tHi; z++ {
				for y := 0; y < ny; y++ {
					fftLineX(t, reT, imT, z, y)
				}
			}
			t.Barrier()
		}
		// Checksum over a strided sample of the spectrum (shared reads).
		var sum float64
		for k := 0; k < 64; k++ {
			z := (k * 7) % nx
			y := (k * 5) % ny
			x := (k * 3) % nz
			sum += reT.Get(t, z, y, x) + imT.Get(t, z, y, x)
			t.Compute(4)
		}
		_ = sum
		t.Barrier()
	}
	return spmd(n, body)
}
