package npb

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "CG",
		Description: "Conjugate gradient with a random sparse matrix; the shared source vector makes the pattern homogeneous",
		Expected:    Homogeneous,
		Build:       buildCG,
	})
}

// buildCG constructs the CG kernel: conjugate-gradient iterations on a
// random sparse matrix in CSR form, rows partitioned across threads. The
// sparse matrix-vector product reads the shared vector p at random column
// positions, so every thread touches pages filled by every other thread —
// the homogeneous communication pattern of Figure 4. A mild diagonal-band
// bias in the sparsity leaves the faint domain-decomposition trace the
// paper observes with SM.
func buildCG(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var rows, nnzPerRow, iters int
	switch p.Class {
	case ClassS:
		rows, nnzPerRow, iters = 512, 6, 2
	default:
		rows, nnzPerRow, iters = 16384, 8, 4
	}
	n := p.Threads

	// CSR structure: colidx/values traced (they are data the kernel
	// streams through), vectors shared.
	nnz := rows * nnzPerRow
	colidx := trace.NewI64(as, nnz)
	values := trace.NewF64(as, nnz)
	x := trace.NewF64(as, rows)
	r := trace.NewF64(as, rows)
	pv := trace.NewF64(as, rows) // search direction, the heavily shared vector
	q := trace.NewF64(as, rows)
	// Shared reduction cells, one per thread, on a single page: the dot
	// products of CG. Sharing one page is exactly the (page-level)
	// communication a reduction produces.
	red := trace.NewF64(as, n)

	rng := newLCG(p.Seed)
	for i := 0; i < rows; i++ {
		for k := 0; k < nnzPerRow; k++ {
			var col int
			if k < nnzPerRow/2 {
				// Banded half: near the diagonal (faint DD trace).
				col = clamp(i-nnzPerRow+rng.intn(2*nnzPerRow), rows)
			} else {
				// Uniform half: anywhere in the vector (homogeneous).
				col = rng.intn(rows)
			}
			colidx.Poke(i*nnzPerRow+k, int64(col))
			values.Poke(i*nnzPerRow+k, rng.float64())
		}
		x.Poke(i, 0)
		r.Poke(i, 1)
		pv.Poke(i, 1)
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(rows, n, id)
		for it := 0; it < iters; it++ {
			// q = A * p over the thread's rows; the column reads of pv
			// are the all-threads sharing.
			for i := lo; i < hi; i++ {
				var sum float64
				base := i * nnzPerRow
				for k := 0; k < nnzPerRow; k++ {
					col := int(colidx.Get(t, base+k))
					sum += values.Get(t, base+k) * pv.Get(t, col)
					t.Compute(4)
				}
				q.Set(t, i, sum)
			}
			t.Barrier()

			// alpha = (r.r)/(p.q): partial dot products into the shared
			// reduction page, then every thread reads all partials.
			var drr, dpq float64
			for i := lo; i < hi; i++ {
				ri := r.Get(t, i)
				drr += ri * ri
				dpq += pv.Get(t, i) * q.Get(t, i)
				t.Compute(6)
			}
			red.Set(t, id, dpq)
			t.Barrier()
			var pq float64
			for w := 0; w < n; w++ {
				pq += red.Get(t, w)
			}
			alpha := 0.5
			if pq != 0 {
				alpha = drr * float64(n) / (pq * float64(n))
			}
			t.Barrier()

			// x += alpha*p ; r -= alpha*q ; p = r + beta*p.
			for i := lo; i < hi; i++ {
				x.Add(t, i, alpha*pv.Get(t, i))
				r.Add(t, i, -alpha*q.Get(t, i))
				t.Compute(6)
			}
			t.Barrier()
			for i := lo; i < hi; i++ {
				pv.Set(t, i, r.Get(t, i)+0.3*pv.Get(t, i))
				t.Compute(4)
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}
