package npb

import (
	"math"

	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "EP",
		Description: "Embarrassingly parallel Gaussian-pair generation; essentially no sharing",
		Expected:    Private,
		Build:       buildEP,
	})
}

// buildEP constructs the EP kernel: every thread generates uniform pairs,
// applies the Marsaglia polar method to obtain Gaussian deviates, and
// accumulates annulus counts in private arrays; only a ten-element result
// table is shared at the very end. EP is compute-bound, its private working
// set fits comfortably in the TLB, and it shares nearly nothing — the paper
// uses it as the no-benefit control (lowest overhead in Table III, no
// mapping win in Figures 6-9).
func buildEP(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var samples int
	switch p.Class {
	case ClassS:
		samples = 1 << 11
	default:
		samples = 1 << 14
	}
	n := p.Threads

	// Private per-thread state: a buffer of generated deviates and the
	// annulus counters.
	bufs := make([]*trace.F64, n)
	counts := make([]*trace.I64, n)
	for i := range bufs {
		bufs[i] = trace.NewF64(as, 512)
		counts[i] = trace.NewI64(as, 10)
	}
	// The only shared data: the global annulus table.
	global := trace.NewI64(as, 10)

	body := func(t *trace.Thread) {
		id := t.ID()
		rng := newLCG(p.Seed*7919 + int64(id))
		buf := bufs[id]
		cnt := counts[id]
		for s := 0; s < samples; s++ {
			// Marsaglia polar method (the Gaussian-pair core of NPB EP).
			x1 := 2*rng.float64() - 1
			x2 := 2*rng.float64() - 1
			tt := x1*x1 + x2*x2
			t.Compute(40) // random number generation + rejection test
			if tt >= 1 || tt == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(tt) / tt)
			g1, g2 := x1*f, x2*f
			t.Compute(60) // sqrt/log
			buf.Set(t, s%buf.Len(), g1)
			buf.Set(t, (s+1)%buf.Len(), g2)
			m := int(math.Max(math.Abs(g1), math.Abs(g2)))
			if m > 9 {
				m = 9
			}
			cnt.Add(t, m, 1)
		}
		t.Barrier()
		// Final reduction: the only cross-thread communication.
		for b := 0; b < 10; b++ {
			global.Add(t, (b+id)%10, cnt.Get(t, b))
		}
		t.Barrier()
	}
	return spmd(n, body)
}
