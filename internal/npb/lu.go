package npb

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "LU",
		Description: "SSOR solver: neighbour boundary exchange plus a wavefront-tail exchange with the mirror thread",
		Expected:    DomainDecompositionDistant,
		Build:       buildLU,
	})
}

// buildLU constructs the LU kernel: a symmetric successive over-relaxation
// solver with 1-D domain decomposition in z. The forward (lower-triangular)
// sweep reads the plane below each slab and the backward (upper-triangular)
// sweep the plane above it — the usual neighbour communication. On top of
// that, the pipelined wavefront schedule makes each thread consume the tail
// planes produced by the thread at the opposite end of the pipeline (thread
// n-1-id), which reproduces the communication between the most distant
// threads the paper singles out for LU (Section VI-A).
func buildLU(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var nz, ny, nx, iters int
	switch p.Class {
	case ClassS:
		nz, ny, nx, iters = 16, 16, 16, 2
	default:
		nz, ny, nx, iters = 64, 40, 40, 3
	}
	u := trace.NewGrid3(as, nz, ny, nx)
	rsd := trace.NewGrid3(as, nz, ny, nx)
	rng := newLCG(p.Seed)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u.Poke(z, y, x, 1+rng.float64())
				rsd.Poke(z, y, x, rng.float64())
			}
		}
	}

	n := p.Threads
	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(nz, n, id)
		mirror := n - 1 - id
		mLo, mHi := slab(nz, n, mirror)
		for it := 0; it < iters; it++ {
			// Forward SSOR sweep (lower triangular): each plane uses the
			// freshly updated plane below it; the first plane of a slab
			// reads the neighbour thread's last plane.
			for z := lo; z < hi; z++ {
				zm := clamp(z-1, nz)
				for y := 0; y < ny; y++ {
					ym := clamp(y-1, ny)
					for x := 0; x < nx; x++ {
						xm := clamp(x-1, nx)
						v := rsd.Get(t, z, y, x) +
							0.2*(rsd.Get(t, zm, y, x)+rsd.Get(t, z, ym, x)+rsd.Get(t, z, y, xm))
						rsd.Set(t, z, y, x, v*0.9)
						t.Compute(8)
					}
				}
			}
			t.Barrier()

			// Backward SSOR sweep (upper triangular): each plane uses the
			// plane above it; the last plane of a slab reads the
			// neighbour thread's first plane.
			for z := hi - 1; z >= lo; z-- {
				zp := clamp(z+1, nz)
				for y := ny - 1; y >= 0; y-- {
					yp := clamp(y+1, ny)
					for x := nx - 1; x >= 0; x-- {
						xp := clamp(x+1, nx)
						v := rsd.Get(t, z, y, x) +
							0.2*(rsd.Get(t, zp, y, x)+rsd.Get(t, z, yp, x)+rsd.Get(t, z, y, xp))
						rsd.Set(t, z, y, x, v*0.9)
						t.Compute(8)
					}
				}
			}
			t.Barrier()

			// Wavefront-tail exchange: consume the last two planes the
			// mirror thread produced, folding them into this thread's
			// boundary plane (the distant-thread communication of the
			// pipelined schedule). With more threads than planes a slab
			// can be empty (lo == hi == nz); such a thread owns no
			// boundary plane to fold into, so it sits the exchange out.
			for k := 0; k < 2 && lo < hi && mHi-1-k >= mLo; k++ {
				src := mHi - 1 - k
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						v := rsd.Get(t, src, y, x)
						rsd.Add(t, lo, y, x, 0.01*v)
						t.Compute(3)
					}
				}
			}
			t.Barrier()

			// Solution update.
			for z := lo; z < hi; z++ {
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						u.Add(t, z, y, x, rsd.Get(t, z, y, x))
						t.Compute(2)
					}
				}
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}
