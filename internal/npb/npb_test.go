package npb_test

import (
	"fmt"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/npb"
	"tlbmap/internal/sim"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func TestRegistryComplete(t *testing.T) {
	names := npb.Names()
	want := []string{"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
	if len(npb.All()) != 9 {
		t.Error("All() incomplete")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := npb.Get("DC"); err == nil {
		t.Error("DC should be unknown (excluded in the paper, too)")
	}
	b, err := npb.Get("MG")
	if err != nil || b.Name != "MG" {
		t.Errorf("Get(MG) = %v, %v", b.Name, err)
	}
}

func TestExpectedPatternsDeclared(t *testing.T) {
	want := map[string]npb.Pattern{
		"BT": npb.DomainDecomposition,
		"SP": npb.DomainDecomposition,
		"IS": npb.DomainDecomposition,
		"MG": npb.DomainDecomposition,
		"UA": npb.DomainDecomposition,
		"LU": npb.DomainDecompositionDistant,
		"CG": npb.Homogeneous,
		"FT": npb.Homogeneous,
		"EP": npb.Private,
	}
	for _, b := range npb.All() {
		if b.Expected != want[b.Name] {
			t.Errorf("%s expected pattern = %s, want %s", b.Name, b.Expected, want[b.Name])
		}
		if b.Description == "" {
			t.Errorf("%s has no description", b.Name)
		}
	}
}

// runClassS executes a benchmark at the tiny class through the simulator
// and returns the result plus the oracle matrix.
func runClassS(t *testing.T, name string, seed int64) (*sim.Result, *comm.Matrix) {
	t.Helper()
	b, err := npb.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	as := vm.NewAddressSpace()
	programs := b.Build(as, npb.Params{Threads: 8, Class: npb.ClassS, Seed: seed})
	if len(programs) != 8 {
		t.Fatalf("%s built %d programs, want 8", name, len(programs))
	}
	det := comm.NewOracleDetector(8, comm.PageGranularity)
	res, err := sim.Run(sim.Config{
		Machine:  topology.Harpertown(),
		Detector: det,
	}, as, trace.NewTeam(programs, 0))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res, det.Matrix()
}

func TestAllKernelsRunAtClassS(t *testing.T) {
	for _, name := range npb.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, _ := runClassS(t, name, 1)
			if res.Accesses == 0 {
				t.Error("no memory accesses simulated")
			}
			if res.Cycles == 0 {
				t.Error("no cycles simulated")
			}
		})
	}
}

func TestKernelsDeterministicPerSeed(t *testing.T) {
	for _, name := range []string{"BT", "IS", "CG"} {
		r1, m1 := runClassS(t, name, 7)
		r2, m2 := runClassS(t, name, 7)
		if r1.Accesses != r2.Accesses || r1.Cycles != r2.Cycles {
			t.Errorf("%s not deterministic: %d/%d vs %d/%d",
				name, r1.Accesses, r1.Cycles, r2.Accesses, r2.Cycles)
		}
		if m1.Similarity(m2) < 0.9999 {
			t.Errorf("%s oracle matrices differ for identical seeds", name)
		}
	}
}

func TestSeedChangesISKeys(t *testing.T) {
	// Different seeds produce different key streams: the runs must not
	// be byte-identical (IS generates its keys from the seed).
	r1, _ := runClassS(t, "IS", 1)
	r2, _ := runClassS(t, "IS", 2)
	if r1.Cycles == r2.Cycles && r1.Counters == r2.Counters {
		t.Error("IS ignores its seed")
	}
}

func TestDomainDecompositionShapeAtClassS(t *testing.T) {
	// Even at the tiny class, the structured-grid kernels must put most
	// oracle-detected communication on neighbouring threads. MG gets a
	// lower bar: at class S its entire coarse grid fits on one page,
	// which genuinely mixes all threads there (multigrid coarse levels
	// are all-to-all at small scale).
	for _, tc := range []struct {
		name string
		min  float64
	}{{"BT", 0.5}, {"SP", 0.5}, {"MG", 0.38}} {
		_, m := runClassS(t, tc.name, 1)
		if m.Total() == 0 {
			t.Errorf("%s detected no communication", tc.name)
			continue
		}
		if nf := m.NeighborFraction(); nf < tc.min {
			t.Errorf("%s neighbour fraction = %.2f, want >= %.2f", tc.name, nf, tc.min)
		}
	}
}

func TestLUHasDistantCommunication(t *testing.T) {
	_, m := runClassS(t, "LU", 1)
	var distant uint64
	for i := 0; i < 4; i++ {
		distant += m.At(i, 7-i)
	}
	if distant == 0 {
		t.Error("LU mirror pairs show no communication")
	}
}

func TestEPSharesAlmostNothing(t *testing.T) {
	resEP, mEP := runClassS(t, "EP", 1)
	_, mBT := runClassS(t, "BT", 1)
	// EP communication per access must be far below BT's.
	epRate := float64(mEP.Total()) / float64(resEP.Accesses)
	if epRate > 0.01 {
		t.Errorf("EP communicates too much: %.5f per access", epRate)
	}
	if mEP.Total() >= mBT.Total() {
		t.Error("EP communicates as much as BT")
	}
}

func TestHomogeneousKernelsAreFlat(t *testing.T) {
	for _, name := range []string{"CG", "FT"} {
		_, m := runClassS(t, name, 1)
		if m.Total() == 0 {
			t.Errorf("%s detected no communication", name)
			continue
		}
		// For 8 threads a perfectly uniform matrix has neighbour
		// fraction 7/28 = 0.25.
		if nf := m.NeighborFraction(); nf > 0.5 {
			t.Errorf("%s neighbour fraction = %.2f; should be homogeneous", name, nf)
		}
	}
}

func TestThreadCountVariants(t *testing.T) {
	// Kernels must build and run with other power-of-two team sizes.
	for _, threads := range []int{2, 4} {
		b, _ := npb.Get("MG")
		as := vm.NewAddressSpace()
		programs := b.Build(as, npb.Params{Threads: threads, Class: npb.ClassS})
		if len(programs) != threads {
			t.Fatalf("threads=%d built %d programs", threads, len(programs))
		}
		machine := topology.Build("tiny", topology.Spec{
			Chips: 1, L2PerChip: threads / 2, CoresPerL2: 2,
			L2Latency: 8, ChipLatency: 40, BusLatency: 120,
		})
		if threads == 2 {
			machine = topology.Build("tiny2", topology.Spec{
				Chips: 1, L2PerChip: 1, CoresPerL2: 2,
				L2Latency: 8, ChipLatency: 40, BusLatency: 120,
			})
		}
		if _, err := sim.Run(sim.Config{Machine: machine}, as, trace.NewTeam(programs, 0)); err != nil {
			t.Errorf("threads=%d: %v", threads, err)
		}
	}
}

// TestAllKernelsRunWithMoreThreadsThanPlanes: at Class S the 3-D grids
// have only 16 z-planes, so large teams leave many threads with empty
// slabs (lo == hi). Every kernel must still build and run — LU's
// wavefront-tail exchange once indexed plane nz for such threads and
// crashed the whole scale study. Odd counts also cross the 64-bit
// presence-bitset word boundary.
func TestAllKernelsRunWithMoreThreadsThanPlanes(t *testing.T) {
	for _, threads := range []int{65, 130} {
		machine := topology.Build("flat", topology.Spec{
			Chips: threads, L2PerChip: 1, CoresPerL2: 1,
			L2Latency: 8, ChipLatency: 40, BusLatency: 120,
		})
		for _, name := range npb.Names() {
			name, threads, machine := name, threads, machine
			t.Run(fmt.Sprintf("%s/threads%d", name, threads), func(t *testing.T) {
				t.Parallel()
				b, err := npb.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				as := vm.NewAddressSpace()
				programs := b.Build(as, npb.Params{Threads: threads, Class: npb.ClassS, Seed: 5})
				if len(programs) != threads {
					t.Fatalf("built %d programs, want %d", len(programs), threads)
				}
				res, err := sim.Run(sim.Config{Machine: machine}, as, trace.NewTeam(programs, 0))
				if err != nil {
					t.Fatal(err)
				}
				if res.Accesses == 0 {
					t.Error("no memory accesses simulated")
				}
			})
		}
	}
}

func TestDefaultParams(t *testing.T) {
	// Zero params must default to 8 threads at class W.
	b, _ := npb.Get("EP")
	as := vm.NewAddressSpace()
	programs := b.Build(as, npb.Params{})
	if len(programs) != 8 {
		t.Errorf("default built %d programs", len(programs))
	}
}
