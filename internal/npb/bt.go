package npb

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "BT",
		Description: "Block tridiagonal ADI solver on a 3-D grid, 1-D domain decomposition in z",
		Expected:    DomainDecomposition,
		Build:       buildBT,
	})
}

// buildBT constructs the BT kernel: an alternating-direction-implicit
// solver. Each iteration computes a 7-point-stencil right-hand side (whose
// z-neighbours cross slab boundaries — the source of the neighbour
// communication in Figure 4), then performs Thomas-algorithm line solves
// along x, y and z, and finally applies the update.
func buildBT(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var nz, ny, nx, iters int
	switch p.Class {
	case ClassS:
		nz, ny, nx, iters = 16, 16, 16, 2
	default:
		nz, ny, nx, iters = 64, 40, 40, 2
	}
	u := trace.NewGrid3(as, nz, ny, nx)
	rhs := trace.NewGrid3(as, nz, ny, nx)
	forcing := trace.NewGrid3(as, nz, ny, nx)
	rng := newLCG(p.Seed)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u.Poke(z, y, x, 1+rng.float64())
				forcing.Poke(z, y, x, 0.01*rng.float64())
			}
		}
	}

	n := p.Threads
	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(nz, n, id)
		for it := 0; it < iters; it++ {
			// RHS: central-difference stencil. Reading z-1/z+1 at the
			// slab edges touches the neighbouring thread's planes.
			for z := lo; z < hi; z++ {
				zm, zp := clamp(z-1, nz), clamp(z+1, nz)
				for y := 0; y < ny; y++ {
					ym, yp := clamp(y-1, ny), clamp(y+1, ny)
					for x := 0; x < nx; x++ {
						xm, xp := clamp(x-1, nx), clamp(x+1, nx)
						c := u.Get(t, z, y, x)
						s := u.Get(t, zm, y, x) + u.Get(t, zp, y, x) +
							u.Get(t, z, ym, x) + u.Get(t, z, yp, x) +
							u.Get(t, z, y, xm) + u.Get(t, z, y, xp)
						rhs.Set(t, z, y, x, 0.1*(s-6*c)+forcing.Get(t, z, y, x))
						t.Compute(10)
					}
				}
			}
			t.Barrier()

			// x-solve: forward elimination and back substitution along
			// each x line of the slab (thread-local).
			for z := lo; z < hi; z++ {
				for y := 0; y < ny; y++ {
					for x := 1; x < nx; x++ {
						prev := rhs.Get(t, z, y, x-1)
						rhs.Add(t, z, y, x, 0.25*prev)
						t.Compute(4)
					}
					for x := nx - 2; x >= 0; x-- {
						next := rhs.Get(t, z, y, x+1)
						rhs.Add(t, z, y, x, -0.2*next)
						t.Compute(4)
					}
				}
			}
			t.Barrier()

			// y-solve: the same line solve along y (thread-local).
			for z := lo; z < hi; z++ {
				for x := 0; x < nx; x++ {
					for y := 1; y < ny; y++ {
						prev := rhs.Get(t, z, y-1, x)
						rhs.Add(t, z, y, x, 0.25*prev)
						t.Compute(4)
					}
					for y := ny - 2; y >= 0; y-- {
						next := rhs.Get(t, z, y+1, x)
						rhs.Add(t, z, y, x, -0.2*next)
						t.Compute(4)
					}
				}
			}
			t.Barrier()

			// z-solve within the slab, coupling to the plane below the
			// slab (the neighbouring thread's data), then the update.
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					for z := lo; z < hi; z++ {
						zm := clamp(z-1, nz)
						prev := rhs.Get(t, zm, y, x)
						rhs.Add(t, z, y, x, 0.25*prev)
						t.Compute(4)
					}
				}
			}
			for z := lo; z < hi; z++ {
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						d := rhs.Get(t, z, y, x)
						u.Add(t, z, y, x, d)
						t.Compute(2)
					}
				}
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}

// clamp reflects an index into [0, n) at the global domain boundary.
func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func spmd(n int, body trace.Program) []trace.Program {
	progs := make([]trace.Program, n)
	for i := range progs {
		progs[i] = body
	}
	return progs
}
