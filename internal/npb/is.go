package npb

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "IS",
		Description: "Integer bucket sort with range-partitioned ranking and neighbour spill",
		Expected:    DomainDecomposition,
		Build:       buildIS,
	})
}

// buildIS constructs the IS kernel: a parallel counting/bucket sort. Each
// thread generates keys concentrated around its own key range (with spill
// into the adjacent ranges), histograms them, merges the histograms into a
// shared global histogram, and finally scatters each key's rank into the
// shared output array. The scatter writes land mostly in the thread's own
// range with spill into the neighbours' ranges, giving the
// domain-decomposition pattern the paper detects for IS — while the
// scattered accesses over a working set much larger than the TLB reach give
// IS by far the highest TLB miss rate of the suite (Table III).
func buildIS(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var keysPerThread, buckets, iters int
	switch p.Class {
	case ClassS:
		keysPerThread, buckets, iters = 1<<10, 1<<6, 1
	default:
		keysPerThread, buckets, iters = 1<<14, 1<<10, 1
	}
	n := p.Threads
	totalKeys := keysPerThread * n
	maxKey := totalKeys // key space as large as the key count

	keys := trace.NewI64(as, totalKeys)  // shared, segment per thread
	ranks := trace.NewI64(as, totalKeys) // shared output, range-partitioned
	hist := trace.NewI64(as, buckets)    // shared global histogram
	local := make([]*trace.I64, n)       // private per-thread histograms
	for i := range local {
		local[i] = trace.NewI64(as, buckets)
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		rng := newLCG(p.Seed*1000 + int64(id))
		keyLo := id * keysPerThread
		rangeSize := maxKey / n
		for it := 0; it < iters; it++ {
			// Key generation: ~70% inside the thread's own key range,
			// the rest spilling into adjacent ranges (and occasionally
			// further), mirroring the locality of NPB IS key streams.
			for k := 0; k < keysPerThread; k++ {
				var key int
				switch r := rng.intn(20); {
				case r < 16: // own range
					key = id*rangeSize + rng.intn(rangeSize)
				case r < 19: // adjacent range
					nb := id + 1 - 2*rng.intn(2)
					nb = clamp(nb, n)
					key = nb*rangeSize + rng.intn(rangeSize)
				default: // anywhere
					key = rng.intn(maxKey)
				}
				keys.Set(t, keyLo+k, int64(key))
				t.Compute(14)
			}
			t.Barrier()

			// Local histogram over the thread's own keys (private data).
			mine := local[id]
			for b := 0; b < buckets; b++ {
				mine.Set(t, b, 0)
			}
			for k := 0; k < keysPerThread; k++ {
				key := keys.Get(t, keyLo+k)
				mine.Add(t, int(key)*buckets/maxKey, 1)
				t.Compute(6)
			}
			t.Barrier()

			// Merge: each thread accumulates its private histogram into
			// its share of the global histogram, then every thread reads
			// the whole global histogram to build the prefix offsets.
			bLo, bHi := slab(buckets, n, id)
			for b := bLo; b < bHi; b++ {
				var sum int64
				for w := 0; w < n; w++ {
					sum += local[w].Get(t, b)
				}
				hist.Set(t, b, sum)
				t.Compute(2)
			}
			t.Barrier()

			// Rank scatter: compute the destination of a sample of keys
			// from the global histogram and write their ranks into the
			// shared output array (NPB IS likewise only ranks keys in the
			// timed loop; the full key movement happens once at the end).
			// Destinations follow the key value, so writes stay mostly
			// inside the thread's own output range, spilling into the
			// neighbours' ranges.
			for k := 0; k < keysPerThread; k += 4 {
				key := keys.Get(t, keyLo+k)
				b := int(key) * buckets / maxKey
				base := hist.Get(t, b)
				dest := (int(key) + int(base)) % totalKeys
				ranks.Set(t, dest, key)
				t.Compute(10)
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}
