package npb

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "MG",
		Description: "Multigrid V-cycle on a 3-D grid hierarchy, z decomposition at every level",
		Expected:    DomainDecomposition,
		Build:       buildMG,
	})
}

// buildMG constructs the MG kernel: V-cycles over a hierarchy of grids,
// each level half the size of the one above. Every level is z-decomposed
// across the threads, so smoothing, restriction and prolongation all read
// the neighbouring thread's boundary planes; at the coarsest levels each
// thread owns only one or two planes and nearly everything it reads belongs
// to a neighbour, amplifying the neighbour pattern.
func buildMG(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var nz, ny, nx, levels, cycles int
	switch p.Class {
	case ClassS:
		nz, ny, nx, levels, cycles = 16, 16, 16, 2, 1
	default:
		nz, ny, nx, levels, cycles = 128, 40, 40, 3, 1
	}
	// Grid hierarchy: level 0 is finest.
	grids := make([]*trace.Grid3, levels)
	resid := make([]*trace.Grid3, levels)
	cz, cy, cx := nz, ny, nx
	for l := 0; l < levels; l++ {
		grids[l] = trace.NewGrid3(as, cz, cy, cx)
		resid[l] = trace.NewGrid3(as, cz, cy, cx)
		cz, cy, cx = cz/2, max2(cy/2, 2), max2(cx/2, 2)
	}
	rng := newLCG(p.Seed)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				grids[0].Poke(z, y, x, rng.float64())
			}
		}
	}

	n := p.Threads
	// smooth runs one Jacobi-style relaxation of level l over the calling
	// thread's slab, reading the z-neighbour planes.
	smooth := func(t *trace.Thread, g, r *trace.Grid3) {
		lo, hi := slab(g.Nz, n, t.ID())
		for z := lo; z < hi; z++ {
			zm, zp := clamp(z-1, g.Nz), clamp(z+1, g.Nz)
			for y := 0; y < g.Ny; y++ {
				ym, yp := clamp(y-1, g.Ny), clamp(y+1, g.Ny)
				for x := 0; x < g.Nx; x++ {
					xm, xp := clamp(x-1, g.Nx), clamp(x+1, g.Nx)
					s := g.Get(t, zm, y, x) + g.Get(t, zp, y, x) +
						g.Get(t, z, ym, x) + g.Get(t, z, yp, x) +
						g.Get(t, z, y, xm) + g.Get(t, z, y, xp)
					r.Set(t, z, y, x, (s+2*g.Get(t, z, y, x))/8)
					t.Compute(9)
				}
			}
		}
		t.Barrier()
		for z := lo; z < hi; z++ {
			for y := 0; y < g.Ny; y++ {
				for x := 0; x < g.Nx; x++ {
					g.Set(t, z, y, x, r.Get(t, z, y, x))
					t.Compute(2)
				}
			}
		}
		t.Barrier()
	}

	body := func(t *trace.Thread) {
		for c := 0; c < cycles; c++ {
			// Downward leg: smooth, then restrict to the next level.
			for l := 0; l < levels-1; l++ {
				fine, coarse := grids[l], grids[l+1]
				smooth(t, fine, resid[l])
				lo, hi := slab(coarse.Nz, n, t.ID())
				for z := lo; z < hi; z++ {
					fz := clamp(2*z, fine.Nz)
					fz1 := clamp(2*z+1, fine.Nz)
					for y := 0; y < coarse.Ny; y++ {
						fy := min(2*y, fine.Ny-1)
						for x := 0; x < coarse.Nx; x++ {
							fx := min(2*x, fine.Nx-1)
							v := 0.5 * (fine.Get(t, fz, fy, fx) + fine.Get(t, fz1, fy, fx))
							coarse.Set(t, z, y, x, v)
							t.Compute(4)
						}
					}
				}
				t.Barrier()
			}
			// Bottom solve: extra smoothing at the coarsest level, where
			// each thread owns very few planes and neighbour sharing
			// dominates.
			smooth(t, grids[levels-1], resid[levels-1])
			smooth(t, grids[levels-1], resid[levels-1])
			// Upward leg: prolongate and correct, then smooth.
			for l := levels - 2; l >= 0; l-- {
				fine, coarse := grids[l], grids[l+1]
				lo, hi := slab(fine.Nz, n, t.ID())
				for z := lo; z < hi; z++ {
					cz := min(z/2, coarse.Nz-1)
					for y := 0; y < fine.Ny; y++ {
						cy := min(y/2, coarse.Ny-1)
						for x := 0; x < fine.Nx; x++ {
							cx := min(x/2, coarse.Nx-1)
							fine.Add(t, z, y, x, 0.5*coarse.Get(t, cz, cy, cx))
							t.Compute(4)
						}
					}
				}
				t.Barrier()
				smooth(t, fine, resid[l])
			}
		}
	}
	return spmd(p.Threads, body)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
