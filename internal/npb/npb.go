// Package npb implements Go analogues of the nine NAS Parallel Benchmarks
// used in the paper's evaluation (Section V-C): BT, CG, EP, FT, IS, LU, MG,
// SP and UA (DC is excluded, as in the paper). Each kernel performs the
// real computational pattern of its NPB namesake over traced arrays, so the
// simulator observes the genuine per-thread memory access stream, and in
// particular the genuine *sharing* structure:
//
//   - BT, IS, LU, MG, SP, UA: 1-D domain decomposition — threads share the
//     boundary planes/ranges with their neighbours, so communication
//     concentrates on adjacent thread IDs (the dark diagonals of Figure 4).
//     LU additionally exchanges data across the periodic boundary, giving
//     the distant-thread communication the paper reports.
//   - CG, EP, FT: homogeneous patterns — CG shares the full source vector,
//     FT transposes all-to-all, EP shares almost nothing.
//
// The kernels run at "class S" (tiny, for unit tests) or "class W"
// (evaluation scale, matching the paper's choice of the W input size).
package npb

import (
	"fmt"
	"sort"

	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// Class selects the problem size.
type Class string

const (
	// ClassS is a tiny size for unit tests.
	ClassS Class = "S"
	// ClassW is the evaluation size, mirroring the paper's use of the
	// NPB W input size ("the most appropriate size for simulation").
	ClassW Class = "W"
)

// Pattern classifies the communication structure a benchmark is expected to
// exhibit (Section VI-A).
type Pattern string

const (
	// DomainDecomposition patterns concentrate communication between
	// neighbouring thread IDs.
	DomainDecomposition Pattern = "domain-decomposition"
	// DomainDecompositionDistant adds communication between the most
	// distant threads (LU).
	DomainDecompositionDistant Pattern = "domain-decomposition+distant"
	// Homogeneous patterns show approximately uniform communication.
	Homogeneous Pattern = "homogeneous"
	// Private patterns share (almost) no data (EP).
	Private Pattern = "private"
)

// Params configures one benchmark instance.
type Params struct {
	// Threads is the team size; the paper uses 8 (one per core).
	Threads int
	// Class is the problem size; empty selects ClassW.
	Class Class
	// Seed perturbs workload-internal randomness (keys, sparsity
	// patterns), modelling distinct executions.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Threads == 0 {
		p.Threads = 8
	}
	if p.Class == "" {
		p.Class = ClassW
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Builder constructs the per-thread programs of a benchmark, allocating its
// data in the given address space.
type Builder func(as *vm.AddressSpace, p Params) []trace.Program

// Benchmark describes one registered kernel.
type Benchmark struct {
	Name        string
	Description string
	// Expected is the communication structure the paper reports for the
	// kernel; the harness verifies detected patterns against it.
	Expected Pattern
	Build    Builder
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("npb: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Get returns a registered benchmark by its upper-case NPB name.
func Get(name string) (Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("npb: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered benchmark names in alphabetical order (the
// order the paper's tables use).
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered benchmark in name order.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// slab partitions n items across parts workers and returns worker who's
// half-open range [lo, hi).
func slab(n, parts, who int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = who*base + min(who, rem)
	hi = lo + base
	if who < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// lcg is a small deterministic pseudo-random generator used inside kernels
// (NPB kernels likewise embed their own generator to stay reproducible).
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &lcg{state: s}
}

func (r *lcg) next() uint64 {
	// xorshift64*
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// float64 returns a value in [0, 1).
func (r *lcg) float64() float64 { return float64(r.next()>>11) / (1 << 53) }
