package npb

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "SP",
		Description: "Scalar pentadiagonal ADI solver, deep z decomposition with heavy boundary exchange",
		Expected:    DomainDecomposition,
		Build:       buildSP,
	})
}

// buildSP constructs the SP kernel. Like BT it is an ADI solver with 1-D
// domain decomposition in z, but the grid is deep and narrow, so the shared
// boundary planes are a large fraction of each slab — SP is the benchmark
// where the paper measures the biggest mapping win (15.3% execution time,
// 31.1% cache misses).
func buildSP(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var nz, ny, nx, iters int
	switch p.Class {
	case ClassS:
		nz, ny, nx, iters = 16, 16, 16, 2
	default:
		nz, ny, nx, iters = 128, 28, 28, 4
	}
	u := trace.NewGrid3(as, nz, ny, nx)
	rhs := trace.NewGrid3(as, nz, ny, nx)
	speed := trace.NewGrid3(as, nz, ny, nx)
	rng := newLCG(p.Seed)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u.Poke(z, y, x, 1+rng.float64())
				speed.Poke(z, y, x, 0.5+rng.float64())
			}
		}
	}

	n := p.Threads
	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(nz, n, id)
		for it := 0; it < iters; it++ {
			// RHS with a pentadiagonal (radius-2) coupling in z: the two
			// outermost planes of each slab read up to two planes into
			// the neighbouring slabs.
			for z := lo; z < hi; z++ {
				zm2, zm1 := clamp(z-2, nz), clamp(z-1, nz)
				zp1, zp2 := clamp(z+1, nz), clamp(z+2, nz)
				for y := 0; y < ny; y++ {
					ym, yp := clamp(y-1, ny), clamp(y+1, ny)
					for x := 0; x < nx; x++ {
						xm, xp := clamp(x-1, nx), clamp(x+1, nx)
						c := u.Get(t, z, y, x)
						sz := u.Get(t, zm2, y, x) + 4*u.Get(t, zm1, y, x) +
							4*u.Get(t, zp1, y, x) + u.Get(t, zp2, y, x)
						sxy := u.Get(t, z, ym, x) + u.Get(t, z, yp, x) +
							u.Get(t, z, y, xm) + u.Get(t, z, y, xp)
						w := speed.Get(t, z, y, x)
						rhs.Set(t, z, y, x, 0.05*w*(sz+sxy-14*c))
						t.Compute(12)
					}
				}
			}
			t.Barrier()

			// Halo refresh before the line solves: like NPB SP, every
			// directional sweep needs fresh boundary planes, so each
			// thread re-reads the two planes on each side of its slab
			// (the neighbours' freshly written data) and folds them into
			// its own edge planes. This boundary ping-pong repeats every
			// sweep and is the dominant coherence traffic of SP.
			for pass := 0; pass < 2; pass++ {
				for _, zh := range []int{lo - 2, lo - 1, hi, hi + 1} {
					// An empty slab (more threads than planes) has no
					// edge plane to fold halos into; keep the barriers,
					// skip the exchange.
					if lo >= hi || zh < 0 || zh >= nz {
						continue
					}
					own := lo
					if zh >= hi {
						own = hi - 1
					}
					for y := 0; y < ny; y++ {
						for x := 0; x < nx; x++ {
							h := rhs.Get(t, zh, y, x)
							rhs.Add(t, own, y, x, 0.01*h)
							t.Compute(2)
						}
					}
				}
				t.Barrier()
			}

			// x- and y-line solves (thread-local).
			for z := lo; z < hi; z++ {
				for y := 0; y < ny; y++ {
					for x := 1; x < nx; x++ {
						rhs.Add(t, z, y, x, 0.3*rhs.Get(t, z, y, x-1))
						t.Compute(3)
					}
				}
				for x := 0; x < nx; x++ {
					for y := 1; y < ny; y++ {
						rhs.Add(t, z, y, x, 0.3*rhs.Get(t, z, y-1, x))
						t.Compute(3)
					}
				}
			}
			t.Barrier()

			// z-line solve within the slab, coupled to the neighbour's
			// boundary plane, followed by the solution update.
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					for z := lo; z < hi; z++ {
						zm := clamp(z-1, nz)
						rhs.Add(t, z, y, x, 0.3*rhs.Get(t, zm, y, x))
						t.Compute(3)
					}
				}
			}
			for z := lo; z < hi; z++ {
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						u.Add(t, z, y, x, rhs.Get(t, z, y, x))
						t.Compute(2)
					}
				}
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}
