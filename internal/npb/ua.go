package npb

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "UA",
		Description: "Unstructured adaptive mesh smoothing: contiguous partitions with irregular neighbour spill and periodic refinement",
		Expected:    DomainDecomposition,
		Build:       buildUA,
	})
}

// buildUA constructs the UA kernel: iterative smoothing over an
// unstructured mesh whose elements are connected mostly to nearby element
// IDs (with a sprinkling of long-range links), partitioned contiguously
// across threads. Boundary elements read neighbour partitions — the
// domain-decomposition pattern — while the long links add the irregular
// background the paper's UA matrices show. Every iteration a deterministic
// subset of elements is "refined": extra degrees of freedom are appended to
// a growth region and smoothed too, modelling the adaptivity of NPB UA.
func buildUA(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var elems, degree, iters, refinePer int
	switch p.Class {
	case ClassS:
		elems, degree, iters, refinePer = 1024, 4, 2, 32
	default:
		elems, degree, iters, refinePer = 131072, 4, 2, 1024
	}
	n := p.Threads

	adj := trace.NewI64(as, elems*degree) // adjacency lists (traced reads)
	val := trace.NewF64(as, elems)        // element values
	res := trace.NewF64(as, elems)        // smoothing result
	// Refinement growth region: one segment per thread, written as
	// elements are refined.
	refCap := elems / 4
	refined := trace.NewF64(as, refCap)

	rng := newLCG(p.Seed)
	for e := 0; e < elems; e++ {
		for d := 0; d < degree; d++ {
			// Links are spatially local, as in a real partitioned mesh:
			// each element couples to a random patch of nearby element
			// IDs, crossing a partition boundary for elements near the
			// partition edges. The random patch widths produce the
			// irregular (non-uniform) neighbour bands of the UA matrices.
			width := 64 << rng.intn(5) // 64..1024
			nb := clamp(e-width+rng.intn(2*width+1), elems)
			adj.Poke(e*degree+d, int64(nb))
		}
		val.Poke(e, rng.float64())
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(elems, n, id)
		rLo, rHi := slab(refCap, n, id)
		rng := newLCG(p.Seed*31 + int64(id))
		for it := 0; it < iters; it++ {
			// Gather-smooth over the thread's elements: neighbour reads
			// cross partition boundaries for edge elements.
			for e := lo; e < hi; e++ {
				var sum float64
				for d := 0; d < degree; d++ {
					nb := int(adj.Get(t, e*degree+d))
					sum += val.Get(t, nb)
					t.Compute(3)
				}
				res.Set(t, e, (sum+val.Get(t, e))/float64(degree+1))
			}
			t.Barrier()
			for e := lo; e < hi; e++ {
				val.Set(t, e, res.Get(t, e))
				t.Compute(2)
			}
			t.Barrier()

			// Adaptive refinement: pick elements of the slab and emit
			// refined degrees of freedom into the growth region, each
			// initialized from its parent and the parent's neighbours.
			for k := 0; k < refinePer; k++ {
				e := lo + rng.intn(hi-lo)
				slot := rLo + (it*refinePer+k)%(rHi-rLo)
				parent := val.Get(t, e)
				nb := int(adj.Get(t, e*degree))
				refined.Set(t, slot, 0.5*(parent+val.Get(t, nb)))
				t.Compute(6)
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}
