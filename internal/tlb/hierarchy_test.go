package tlb

import (
	"testing"

	"tlbmap/internal/vm"
)

func TestHierarchySingleLevel(t *testing.T) {
	h := NewHierarchy(DefaultConfig, Config{})
	if h.HasL2() {
		t.Fatal("zero L2 config created a second level")
	}
	if _, where := h.Lookup(5); where != MissAll {
		t.Error("empty hierarchy hit")
	}
	h.Insert(vm.Translation{Page: 5, Frame: 50})
	f, where := h.Lookup(5)
	if where != HitL1 || f != 50 {
		t.Errorf("lookup = %v, %v", f, where)
	}
}

func TestHierarchyL2Refill(t *testing.T) {
	// L1 with 2 entries, L2 with 8: evicted L1 entries survive in L2.
	h := NewHierarchy(Config{Entries: 2, Ways: 2}, Config{Entries: 8, Ways: 4})
	if !h.HasL2() {
		t.Fatal("no second level")
	}
	for p := vm.Page(0); p < 4; p++ {
		h.Insert(vm.Translation{Page: p, Frame: vm.Frame(p + 100)})
	}
	// Pages 0 and 1 were evicted from L1 but remain in L2.
	f, where := h.Lookup(0)
	if where != HitL2 || f != 100 {
		t.Errorf("lookup(0) = %v, %v; want HitL2, 100", f, where)
	}
	if h.L2Hits() != 1 {
		t.Errorf("L2Hits = %d", h.L2Hits())
	}
	// The refill promoted page 0 back into L1.
	if _, where := h.Lookup(0); where != HitL1 {
		t.Error("L2 hit did not refill L1")
	}
	// A page in no level misses everything.
	if _, where := h.Lookup(99); where != MissAll {
		t.Error("absent page did not MissAll")
	}
	if h.L2Misses() != 1 {
		t.Errorf("L2Misses = %d", h.L2Misses())
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := NewHierarchy(Config{Entries: 4, Ways: 2}, Config{Entries: 8, Ways: 4})
	h.Insert(vm.Translation{Page: 3, Frame: 30})
	h.Invalidate(3)
	if _, where := h.Lookup(3); where != MissAll {
		t.Error("invalidation incomplete")
	}
}

func TestDefaultL2ConfigIsNehalem(t *testing.T) {
	if DefaultL2Config.Entries != 512 || DefaultL2Config.Ways != 4 {
		t.Error("STLB default changed")
	}
	if err := DefaultL2Config.Validate(); err != nil {
		t.Error(err)
	}
}
