package tlb

import (
	"bytes"
	"math/rand"
	"testing"

	"tlbmap/internal/vm"
)

// touch drives one access against a TLB the way the serving engine does:
// lookup, then insert on miss.
func touch(t *TLB, p vm.Page) {
	if _, ok := t.Lookup(p); !ok {
		t.Insert(vm.Translation{Page: p, Frame: vm.Frame(uint64(p) + 1000)})
	}
}

func TestTLBStateRoundTrip(t *testing.T) {
	orig := New(Config{Entries: 64, Ways: 4})
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 500; k++ {
		touch(orig, vm.Page(rng.Intn(200)))
	}
	enc := orig.AppendState(nil)
	got, rest, err := DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(rest))
	}
	if got.Config() != orig.Config() {
		t.Fatalf("geometry changed: %+v -> %+v", orig.Config(), got.Config())
	}
	if got.Hits() != orig.Hits() || got.Misses() != orig.Misses() || got.Evictions() != orig.Evictions() {
		t.Fatalf("counters changed: %d/%d/%d -> %d/%d/%d",
			orig.Hits(), orig.Misses(), orig.Evictions(),
			got.Hits(), got.Misses(), got.Evictions())
	}
	if got.Len() != orig.Len() {
		t.Fatalf("resident count changed: %d -> %d", orig.Len(), got.Len())
	}
	for _, p := range orig.ResidentPages() {
		of, _ := orig.Peek(p)
		gf, ok := got.Peek(p)
		if !ok || gf != of {
			t.Fatalf("page %#x: frame %d/%t, want %d", uint64(p), uint64(gf), ok, uint64(of))
		}
	}
	// Re-encoding is byte-identical: the restored TLB is the original.
	if !bytes.Equal(got.AppendState(nil), enc) {
		t.Fatal("re-encoding differs")
	}
}

// TestTLBStateContinuation is the property the durability layer actually
// needs: after restore, the TLB makes the SAME hit/miss/eviction choices
// as a TLB that never stopped — including LRU victim selection, which
// depends on per-slot timestamps and the logical clock.
func TestTLBStateContinuation(t *testing.T) {
	cont := New(Config{Entries: 32, Ways: 4})
	rng := rand.New(rand.NewSource(23))
	trace := make([]vm.Page, 3000)
	for i := range trace {
		trace[i] = vm.Page(rng.Intn(100))
	}
	cut := 1500
	for _, p := range trace[:cut] {
		touch(cont, p)
	}
	restored, rest, err := DecodeState(cont.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	for _, p := range trace[cut:] {
		touch(cont, p)
		touch(restored, p)
		// Every access must agree on hit/miss and, via the counters, on
		// which victim was evicted.
		if cont.Hits() != restored.Hits() || cont.Misses() != restored.Misses() ||
			cont.Evictions() != restored.Evictions() {
			t.Fatalf("diverged on page %#x: %d/%d/%d vs %d/%d/%d",
				uint64(p), cont.Hits(), cont.Misses(), cont.Evictions(),
				restored.Hits(), restored.Misses(), restored.Evictions())
		}
	}
	if !bytes.Equal(cont.AppendState(nil), restored.AppendState(nil)) {
		t.Fatal("final states differ despite identical counters")
	}
}

// TestTLBStateAttach: a restored TLB attached to a fresh PresenceIndex
// must be indexed exactly as the original was.
func TestTLBStateAttach(t *testing.T) {
	pidx := NewPresenceIndex(2)
	orig := New(Config{Entries: 16, Ways: 2})
	pidx.Attach(orig)
	for p := vm.Page(0); p < 40; p++ {
		touch(orig, p)
	}
	restored, _, err := DecodeState(orig.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	pidx2 := NewPresenceIndex(2)
	pidx2.Attach(restored)
	for _, p := range orig.ResidentPages() {
		var holders []int
		pidx2.HoldersEach(p, func(slot int) { holders = append(holders, slot) })
		if len(holders) != 1 || holders[0] != 0 {
			t.Fatalf("page %#x: holders %v after attach, want [0]", uint64(p), holders)
		}
	}
}

func TestTLBStateRejectsDamage(t *testing.T) {
	orig := New(Config{Entries: 16, Ways: 4})
	for p := vm.Page(0); p < 30; p++ {
		touch(orig, p)
	}
	enc := orig.AppendState(nil)

	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), enc...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       enc[:len(enc)-3],
		"bad-valid":   corrupt(func(b []byte) { b[4 + 4 + 8*4] = 7 }),
		"zero-ways":   corrupt(func(b []byte) { b[4], b[5], b[6], b[7] = 0, 0, 0, 0 }),
		"wrong-set":   corrupt(func(b []byte) { b[4+4+8*4+1] ^= 0xFF }), // page low byte -> wrong set
	}
	for name, data := range cases {
		if _, _, err := DecodeState(data); err == nil {
			t.Errorf("%s: decode accepted damaged state", name)
		}
	}
}
