package tlb

import (
	"encoding/binary"
	"fmt"

	"tlbmap/internal/vm"
)

// TLB state serialization for the durability layer: a recovered tenant
// must continue *byte-identically* from where the snapshot was taken, and
// future detector behaviour depends on more than the resident page set —
// victim selection reads per-entry LRU timestamps and exact slot
// positions, and the hit/miss/eviction counters feed stats. State
// therefore captures the TLB verbatim: geometry, logical clock, counters
// and every slot in flat order.
//
// Layout (little-endian):
//
//	u32 entries, u32 ways
//	u64 clock, u64 hits, u64 misses, u64 evictions
//	entries × (u8 valid, u64 page, u64 frame, u64 lru)

// AppendState appends the TLB's serialized state to buf.
func (t *TLB) AppendState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.Entries))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.Ways))
	buf = binary.LittleEndian.AppendUint64(buf, t.clock)
	buf = binary.LittleEndian.AppendUint64(buf, t.hits)
	buf = binary.LittleEndian.AppendUint64(buf, t.misses)
	buf = binary.LittleEndian.AppendUint64(buf, t.evictions)
	for i := range t.flat {
		e := &t.flat[i]
		var valid byte
		if e.valid {
			valid = 1
		}
		buf = append(buf, valid)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.page))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.frame))
		buf = binary.LittleEndian.AppendUint64(buf, e.lru)
	}
	return buf
}

// DecodeState rebuilds a TLB from AppendState's encoding and returns the
// remaining bytes. The rebuilt TLB is standalone — attach it to a
// PresenceIndex afterwards and the index absorbs the restored residents
// (Attach reads the live slots). Structural violations are errors, not
// panics.
func DecodeState(data []byte) (*TLB, []byte, error) {
	const header = 4 + 4 + 8*4
	if len(data) < header {
		return nil, nil, fmt.Errorf("tlb: state decode: short header (%d bytes)", len(data))
	}
	cfg := Config{
		Entries: int(binary.LittleEndian.Uint32(data[0:4])),
		Ways:    int(binary.LittleEndian.Uint32(data[4:8])),
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, fmt.Errorf("tlb: state decode: %w", err)
	}
	if cfg.Entries > 1<<20 {
		return nil, nil, fmt.Errorf("tlb: state decode: implausible geometry (%d entries)", cfg.Entries)
	}
	t := New(cfg)
	t.clock = binary.LittleEndian.Uint64(data[8:16])
	t.hits = binary.LittleEndian.Uint64(data[16:24])
	t.misses = binary.LittleEndian.Uint64(data[24:32])
	t.evictions = binary.LittleEndian.Uint64(data[32:40])
	data = data[header:]

	const slotBytes = 1 + 8*3
	if len(data) < cfg.Entries*slotBytes {
		return nil, nil, fmt.Errorf("tlb: state decode: truncated slots (%d bytes for %d entries)",
			len(data), cfg.Entries)
	}
	for i := 0; i < cfg.Entries; i++ {
		valid := data[0]
		if valid > 1 {
			return nil, nil, fmt.Errorf("tlb: state decode: bad valid byte %d in slot %d", valid, i)
		}
		e := &t.flat[i]
		e.valid = valid == 1
		e.page = vm.Page(binary.LittleEndian.Uint64(data[1:9]))
		e.frame = vm.Frame(binary.LittleEndian.Uint64(data[9:17]))
		e.lru = binary.LittleEndian.Uint64(data[17:25])
		data = data[slotBytes:]
	}
	// Rebuild the incremental occupancy counts and sanity-check the
	// invariant decode cannot express directly: one slot per page per set.
	for s := 0; s < cfg.Sets(); s++ {
		set := t.sets[s]
		n := int16(0)
		for i := range set {
			if !set[i].valid {
				continue
			}
			n++
			if t.SetOf(set[i].page) != s {
				return nil, nil, fmt.Errorf("tlb: state decode: page %#x stored in set %d, maps to %d",
					uint64(set[i].page), s, t.SetOf(set[i].page))
			}
			for j := i + 1; j < len(set); j++ {
				if set[j].valid && set[j].page == set[i].page {
					return nil, nil, fmt.Errorf("tlb: state decode: page %#x duplicated in set %d",
						uint64(set[i].page), s)
				}
			}
		}
		t.setLen[s] = n
	}
	// Rebuild the page-residency index the hot paths resolve through.
	for i := range t.flat {
		if t.flat[i].valid {
			t.indexPage(t.flat[i].page, i)
		}
	}
	return t, data, nil
}
