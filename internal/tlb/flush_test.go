package tlb

import (
	"testing"

	"tlbmap/internal/vm"
)

// Flush is the surface the fault-injection layer drives (shootdown storms,
// context-switch invalidations on migration); these tests pin down its
// contract: every level empties, the statistics survive, and the structure
// keeps working afterwards.

func TestFlushEmptiesEveryLevel(t *testing.T) {
	h := NewHierarchy(Config{Entries: 4, Ways: 2}, Config{Entries: 16, Ways: 4})
	for p := vm.Page(0); p < 4; p++ {
		h.Insert(vm.Translation{Page: p, Frame: vm.Frame(p + 10)})
	}
	if h.L1().Len() == 0 {
		t.Fatal("test premise broken: L1 empty before flush")
	}
	h.Flush()
	if n := h.L1().Len(); n != 0 {
		t.Errorf("L1 holds %d entries after flush", n)
	}
	for p := vm.Page(0); p < 4; p++ {
		if _, where := h.Lookup(p); where != MissAll {
			t.Errorf("page %d survived the flush in some level (%v)", p, where)
		}
	}
}

func TestFlushKeepsStatistics(t *testing.T) {
	h := NewHierarchy(Config{Entries: 2, Ways: 2}, Config{Entries: 8, Ways: 4})
	for p := vm.Page(0); p < 4; p++ {
		h.Insert(vm.Translation{Page: p, Frame: vm.Frame(p)})
	}
	h.Lookup(3) // L1 hit
	h.Lookup(0) // L2 refill
	h.Lookup(9) // full miss
	hits, misses := h.L1().Hits(), h.L1().Misses()
	l2h, l2m := h.L2Hits(), h.L2Misses()
	if hits == 0 || misses == 0 || l2h != 1 || l2m != 1 {
		t.Fatalf("test premise broken: stats %d/%d L1, %d/%d L2", hits, misses, l2h, l2m)
	}
	h.Flush()
	if h.L1().Hits() != hits || h.L1().Misses() != misses {
		t.Error("flush disturbed L1 hit/miss counters")
	}
	if h.L2Hits() != l2h || h.L2Misses() != l2m {
		t.Error("flush disturbed L2 counters")
	}
}

func TestFlushedTLBKeepsWorking(t *testing.T) {
	tl := New(Config{Entries: 4, Ways: 2})
	for p := vm.Page(0); p < 4; p++ {
		tl.Insert(vm.Translation{Page: p, Frame: vm.Frame(p)})
	}
	evBefore := tl.Evictions()
	tl.Flush()
	// Re-inserting into the flushed structure must reuse the invalidated
	// slots, not evict phantom entries.
	for p := vm.Page(0); p < 4; p++ {
		if _, evicted := tl.Insert(vm.Translation{Page: p, Frame: vm.Frame(p + 100)}); evicted {
			t.Errorf("insert of page %d after flush evicted a dead entry", p)
		}
	}
	if tl.Evictions() != evBefore {
		t.Error("eviction counter moved for invalid victims")
	}
	for p := vm.Page(0); p < 4; p++ {
		f, hit := tl.Lookup(p)
		if !hit || f != vm.Frame(p+100) {
			t.Errorf("page %d not resident after re-insert (hit=%v frame=%v)", p, hit, f)
		}
	}
}

func TestFlushClearsScanAndSearchSurfaces(t *testing.T) {
	// The detectors inspect TLBs through Contains/PagesInSet/MatchesInSet;
	// a flushed TLB must look empty through every one of those windows.
	a := New(Config{Entries: 8, Ways: 2})
	b := New(Config{Entries: 8, Ways: 2})
	for p := vm.Page(0); p < 8; p++ {
		a.Insert(vm.Translation{Page: p, Frame: vm.Frame(p)})
		b.Insert(vm.Translation{Page: p, Frame: vm.Frame(p)})
	}
	a.Flush()
	for p := vm.Page(0); p < 8; p++ {
		if a.Contains(p) {
			t.Fatalf("Contains(%d) true after flush", p)
		}
	}
	if got := a.ResidentPages(); len(got) != 0 {
		t.Errorf("ResidentPages returned %v after flush", got)
	}
	for s := 0; s < a.Config().Sets(); s++ {
		if n := MatchesInSet(a, b, s); n != 0 {
			t.Errorf("set %d still matches %d pages after flush", s, n)
		}
	}
}
