package tlb

import (
	"testing"
	"testing/quick"

	"tlbmap/internal/vm"
)

func tr(p vm.Page) vm.Translation { return vm.Translation{Page: p, Frame: vm.Frame(p) + 1000} }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if DefaultConfig.Entries != 64 || DefaultConfig.Ways != 4 {
		t.Error("default config is not the paper's 64-entry 4-way TLB")
	}
	if DefaultConfig.Sets() != 16 {
		t.Errorf("Sets = %d, want 16", DefaultConfig.Sets())
	}
	bad := []Config{
		{Entries: 0, Ways: 4},
		{Entries: 64, Ways: 0},
		{Entries: 63, Ways: 4},
		{Entries: -4, Ways: -2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{Entries: 3, Ways: 2})
}

func TestHitMissCycle(t *testing.T) {
	tl := New(DefaultConfig)
	if _, hit := tl.Lookup(5); hit {
		t.Fatal("empty TLB hit")
	}
	tl.Insert(tr(5))
	f, hit := tl.Lookup(5)
	if !hit {
		t.Fatal("inserted page missed")
	}
	if f != 1005 {
		t.Errorf("frame = %d, want 1005", f)
	}
	if tl.Hits() != 1 || tl.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", tl.Hits(), tl.Misses())
	}
	if tl.MissRate() != 0.5 {
		t.Errorf("MissRate = %v", tl.MissRate())
	}
}

func TestSetMapping(t *testing.T) {
	tl := New(DefaultConfig)
	sets := DefaultConfig.Sets()
	if tl.SetOf(0) != 0 || tl.SetOf(vm.Page(sets)) != 0 || tl.SetOf(vm.Page(sets+3)) != 3 {
		t.Error("set indexing wrong")
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	tl := New(Config{Entries: 8, Ways: 2}) // 4 sets, 2 ways
	// Pages 0, 4, 8 all map to set 0.
	tl.Insert(tr(0))
	tl.Insert(tr(4))
	tl.Lookup(0) // touch 0: now 4 is LRU
	evicted, was := tl.Insert(tr(8))
	if !was || evicted != 4 {
		t.Errorf("evicted %v (%v), want page 4", evicted, was)
	}
	if !tl.Contains(0) || tl.Contains(4) || !tl.Contains(8) {
		t.Error("post-eviction residency wrong")
	}
	if tl.Evictions() != 1 {
		t.Errorf("Evictions = %d", tl.Evictions())
	}
}

func TestInsertExistingUpdatesWithoutEviction(t *testing.T) {
	tl := New(Config{Entries: 4, Ways: 2})
	tl.Insert(tr(0))
	_, was := tl.Insert(vm.Translation{Page: 0, Frame: 77})
	if was {
		t.Error("re-insert evicted")
	}
	f, _ := tl.Lookup(0)
	if f != 77 {
		t.Errorf("frame not updated: %d", f)
	}
	if tl.Len() != 1 {
		t.Errorf("Len = %d", tl.Len())
	}
}

func TestContainsDoesNotPerturbLRU(t *testing.T) {
	tl := New(Config{Entries: 4, Ways: 2}) // 2 sets
	// Pages 0 and 2 map to set 0.
	tl.Insert(tr(0))
	tl.Insert(tr(2))
	// Probe page 0 many times; it must stay the LRU victim.
	for i := 0; i < 10; i++ {
		if !tl.Contains(0) {
			t.Fatal("Contains lost page 0")
		}
	}
	evicted, _ := tl.Insert(tr(4))
	if evicted != 0 {
		t.Errorf("evicted %d; Contains perturbed LRU", evicted)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tl := New(DefaultConfig)
	tl.Insert(tr(1))
	tl.Insert(tr(2))
	if !tl.Invalidate(1) {
		t.Error("Invalidate missed resident page")
	}
	if tl.Invalidate(1) {
		t.Error("Invalidate hit non-resident page")
	}
	if tl.Contains(1) || !tl.Contains(2) {
		t.Error("invalidate state wrong")
	}
	tl.Flush()
	if tl.Len() != 0 {
		t.Errorf("Len after flush = %d", tl.Len())
	}
}

func TestResidentPagesAndPagesInSet(t *testing.T) {
	tl := New(Config{Entries: 8, Ways: 2})
	for _, p := range []vm.Page{0, 1, 4, 5} {
		tl.Insert(tr(p))
	}
	if got := len(tl.ResidentPages()); got != 4 {
		t.Errorf("ResidentPages len = %d", got)
	}
	set0 := tl.PagesInSet(0, nil)
	if len(set0) != 2 {
		t.Errorf("set 0 pages = %v", set0)
	}
	for _, p := range set0 {
		if p != 0 && p != 4 {
			t.Errorf("unexpected page %d in set 0", p)
		}
	}
}

func TestMatchesInSet(t *testing.T) {
	cfg := Config{Entries: 8, Ways: 2}
	a, b := New(cfg), New(cfg)
	a.Insert(tr(0))
	a.Insert(tr(4)) // set 0
	a.Insert(tr(1)) // set 1
	b.Insert(tr(4)) // set 0
	b.Insert(tr(1)) // set 1
	b.Insert(tr(5)) // set 1
	if got := MatchesInSet(a, b, 0); got != 1 {
		t.Errorf("set 0 matches = %d, want 1", got)
	}
	if got := MatchesInSet(a, b, 1); got != 1 {
		t.Errorf("set 1 matches = %d, want 1", got)
	}
	if got := MatchesInSet(a, b, 2); got != 0 {
		t.Errorf("set 2 matches = %d, want 0", got)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	tl := New(DefaultConfig)
	tl.Insert(tr(9))
	tl.Lookup(9)
	tl.ResetStats()
	if tl.Hits() != 0 || tl.Misses() != 0 {
		t.Error("stats not reset")
	}
	if !tl.Contains(9) {
		t.Error("contents lost on stats reset")
	}
	if tl.MissRate() != 0 {
		t.Error("miss rate after reset")
	}
}

func TestManagementString(t *testing.T) {
	if SoftwareManaged.String() != "software-managed" || HardwareManaged.String() != "hardware-managed" {
		t.Error("management names wrong")
	}
	if Management(9).String() == "" {
		t.Error("unknown management empty")
	}
}

// TestCapacityInvariant: the TLB never holds more than Entries pages and
// never more than Ways pages per set, under arbitrary insert sequences.
func TestCapacityInvariant(t *testing.T) {
	f := func(pages []uint16) bool {
		cfg := Config{Entries: 16, Ways: 4}
		tl := New(cfg)
		for _, p := range pages {
			tl.Insert(tr(vm.Page(p)))
			if tl.Len() > cfg.Entries {
				return false
			}
			for s := 0; s < cfg.Sets(); s++ {
				if len(tl.PagesInSet(s, nil)) > cfg.Ways {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestInsertThenContains: an inserted page is always resident immediately
// afterwards, whatever came before.
func TestInsertThenContains(t *testing.T) {
	f := func(pages []uint16, probe uint16) bool {
		tl := New(Config{Entries: 8, Ways: 2})
		for _, p := range pages {
			tl.Insert(tr(vm.Page(p)))
		}
		tl.Insert(tr(vm.Page(probe)))
		return tl.Contains(vm.Page(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEvictionOnlyWhenSetFull: inserting into a set with free ways never
// evicts.
func TestEvictionOnlyWhenSetFull(t *testing.T) {
	tl := New(Config{Entries: 8, Ways: 4})    // 2 sets
	for i, p := range []vm.Page{0, 2, 4, 6} { // all set 0
		_, was := tl.Insert(tr(p))
		if was {
			t.Errorf("insert %d evicted with free ways", i)
		}
	}
	_, was := tl.Insert(tr(8))
	if !was {
		t.Error("full set did not evict")
	}
}
