package tlb

import (
	"tlbmap/internal/vm"
)

// STLBCost is the simulated cycle cost of an L1-TLB miss that hits in the
// second-level TLB (the Nehalem STLB takes on the order of seven cycles).
const STLBCost = 7

// DefaultL2Config is the geometry of the Nehalem second-level TLB: 512
// entries, 4-way set associative.
var DefaultL2Config = Config{Entries: 512, Ways: 4}

// Hierarchy is a two-level TLB: a small, fast first-level TLB backed by an
// optional larger second-level TLB (the x86 STLB). The paper sizes its
// experiments after "the L1 TLB in the Intel Nehalem architecture"; the
// detection mechanisms always operate on the first level — that is the
// structure whose content tracks the core's recent working set — while the
// second level only absorbs part of the miss cost on hardware-managed
// machines.
type Hierarchy struct {
	l1 *TLB
	l2 *TLB // nil for a single-level TLB

	l2Hits   uint64
	l2Misses uint64
}

// NewHierarchy builds a TLB hierarchy. A zero l2 config selects a
// single-level TLB (the configuration of all software-managed
// architectures and of the paper's main experiments).
func NewHierarchy(l1 Config, l2 Config) *Hierarchy {
	h := &Hierarchy{l1: New(l1)}
	if l2 != (Config{}) {
		h.l2 = New(l2)
	}
	return h
}

// L1 exposes the first-level TLB — the structure the detection mechanisms
// search.
func (h *Hierarchy) L1() *TLB { return h.l1 }

// HasL2 reports whether a second level is present.
func (h *Hierarchy) HasL2() bool { return h.l2 != nil }

// LookupResult describes where a translation was found.
type LookupResult int

// Lookup outcomes.
const (
	// MissAll: the translation is in no TLB level; a walk or trap is
	// required.
	MissAll LookupResult = iota
	// HitL1: first-level hit.
	HitL1
	// HitL2: first-level miss, second-level hit (refilled into L1).
	HitL2
)

// Lookup translates a page through the hierarchy. On an L2 hit the entry is
// promoted into L1. Only a MissAll requires the caller to walk the page
// table and Insert the translation.
func (h *Hierarchy) Lookup(p vm.Page) (vm.Frame, LookupResult) {
	if f, hit := h.l1.Lookup(p); hit {
		return f, HitL1
	}
	if h.l2 == nil {
		return 0, MissAll
	}
	if f, hit := h.l2.Lookup(p); hit {
		h.l2Hits++
		h.l1.Insert(vm.Translation{Page: p, Frame: f})
		return f, HitL2
	}
	h.l2Misses++
	return 0, MissAll
}

// Insert installs a translation in every level.
func (h *Hierarchy) Insert(tr vm.Translation) {
	h.l1.Insert(tr)
	if h.l2 != nil {
		h.l2.Insert(tr)
	}
}

// Invalidate drops the page from every level.
func (h *Hierarchy) Invalidate(p vm.Page) {
	h.l1.Invalidate(p)
	if h.l2 != nil {
		h.l2.Invalidate(p)
	}
}

// Flush empties every level, keeping the hit/miss statistics. This models
// the full-TLB invalidations real systems suffer — context switches on
// architectures without ASIDs, and broad shootdowns — and is what the
// fault-injection layer calls to disturb a run: the next access to every
// previously-resident page misses and re-walks.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	if h.l2 != nil {
		h.l2.Flush()
	}
}

// L2Hits returns the number of L1 misses that hit in the second level.
func (h *Hierarchy) L2Hits() uint64 { return h.l2Hits }

// L2Misses returns the number of lookups that missed every level.
func (h *Hierarchy) L2Misses() uint64 { return h.l2Misses }
