package tlb

import (
	"math/rand"
	"testing"

	"tlbmap/internal/vm"
)

// countSet recomputes a set's occupancy from the entries, the slow way.
func countSet(t *TLB, set int) int {
	n := 0
	for _, e := range t.sets[set] {
		if e.valid {
			n++
		}
	}
	return n
}

// TestSetLenTracksOccupancy drives a randomized Insert/Invalidate/Flush
// sequence and checks the incremental per-set counters against a recount
// after every operation, for both power-of-two and non-power-of-two set
// counts (the two SetOf code paths).
func TestSetLenTracksOccupancy(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig,          // 16 sets: power-of-two mask path
		{Entries: 24, Ways: 2}, // 12 sets: modulo path
	} {
		tl := New(cfg)
		rng := rand.New(rand.NewSource(42))
		for op := 0; op < 5000; op++ {
			switch rng.Intn(10) {
			case 0:
				tl.Flush()
			case 1, 2:
				tl.Invalidate(vm.Page(rng.Intn(200)))
			default:
				tl.Insert(tr(vm.Page(rng.Intn(200))))
			}
			total := 0
			for s := 0; s < cfg.Sets(); s++ {
				want := countSet(tl, s)
				if got := tl.SetLen(s); got != want {
					t.Fatalf("cfg %+v op %d: SetLen(%d) = %d, recount = %d", cfg, op, s, got, want)
				}
				total += want
			}
			if tl.Len() != total {
				t.Fatalf("cfg %+v op %d: Len = %d, recount = %d", cfg, op, tl.Len(), total)
			}
		}
	}
}

// TestSetOfMaskMatchesModulo checks the masked fast path against the plain
// modulo definition for a power-of-two geometry.
func TestSetOfMaskMatchesModulo(t *testing.T) {
	tl := New(DefaultConfig)
	sets := uint64(DefaultConfig.Sets())
	for p := uint64(0); p < 1000; p += 7 {
		if got, want := tl.SetOf(vm.Page(p)), int(p%sets); got != want {
			t.Fatalf("SetOf(%d) = %d, want %d", p, got, want)
		}
	}
}
