package tlb

import (
	"fmt"
	"math/rand"
	"testing"

	"tlbmap/internal/vm"
)

// TestPresenceIndexProperty is the quickcheck-style property test of the
// inverted index: after an arbitrary seeded sequence of inserts,
// invalidations, flushes and cross-core shootdowns, the incrementally
// maintained index must equal a from-scratch recomputation over the TLB
// contents (Validate), and every page's holder mask must agree bit by bit
// with Contains on every TLB. Core counts above 64 exercise the
// multi-word mask paths.
func TestPresenceIndexProperty(t *testing.T) {
	for _, cores := range []int{1, 4, 8, 70} {
		cores := cores
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xbeef + int64(cores)))
			ix := NewPresenceIndex(cores)
			if ix.Words() != (cores+63)/64 {
				t.Fatalf("cores=%d: %d mask words, want %d", cores, ix.Words(), (cores+63)/64)
			}
			tlbs := make([]*TLB, cores)
			for i := range tlbs {
				tlbs[i] = New(Config{Entries: 32, Ways: 4})
				if slot := ix.Attach(tlbs[i]); slot != i {
					t.Fatalf("attach %d assigned slot %d", i, slot)
				}
			}
			// More distinct pages than TLB capacity, so inserts evict.
			const pages = 96
			for op := 0; op < 5000; op++ {
				c := rng.Intn(cores)
				p := vm.Page(rng.Intn(pages))
				switch rng.Intn(12) {
				case 0:
					tlbs[c].Flush()
				case 1:
					// Shootdown: the page is invalidated on every core.
					for _, tl := range tlbs {
						tl.Invalidate(p)
					}
				case 2, 3:
					tlbs[c].Invalidate(p)
				default:
					tlbs[c].Insert(vm.Translation{Page: p, Frame: vm.Frame(p + 1)})
				}
				if op%97 == 0 {
					if err := ix.Validate(); err != nil {
						t.Fatalf("after op %d: %v", op, err)
					}
				}
			}
			if err := ix.Validate(); err != nil {
				t.Fatal(err)
			}
			for p := vm.Page(0); p < pages; p++ {
				mask := ix.Holders(p)
				for slot, tl := range tlbs {
					want := tl.Contains(p)
					got := mask != nil && mask[slot>>6]&(1<<(uint(slot)&63)) != 0
					if got != want {
						t.Fatalf("page %#x slot %d: index says held=%v, TLB says %v",
							uint64(p), slot, got, want)
					}
				}
			}
		})
	}
}

// TestPresenceIndexAttachAbsorbsResidents proves attach order and insert
// order are interchangeable: attaching a TLB that already holds
// translations absorbs them into the index.
func TestPresenceIndexAttachAbsorbsResidents(t *testing.T) {
	tl := New(DefaultConfig)
	for p := 0; p < 10; p++ {
		tl.Insert(vm.Translation{Page: vm.Page(p), Frame: vm.Frame(p)})
	}
	ix := NewPresenceIndex(2)
	ix.Attach(tl)
	if ix.PageCount() != 10 {
		t.Fatalf("index absorbed %d pages, want 10", ix.PageCount())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-attaching the same TLB is idempotent.
	if slot := ix.Attach(tl); slot != 0 {
		t.Fatalf("re-attach assigned slot %d, want 0", slot)
	}
	if ix.Attached() != 1 {
		t.Fatalf("%d TLBs attached after re-attach, want 1", ix.Attached())
	}
}

// TestPresenceIndexWalkCoversEveryPage checks that Walk's run-length
// batching neither drops nor double-counts pages: the counts must sum to
// PageCount and every visited mask must be non-empty.
func TestPresenceIndexWalkCoversEveryPage(t *testing.T) {
	ix := NewPresenceIndex(70) // multi-word masks
	tlbs := make([]*TLB, 70)
	rng := rand.New(rand.NewSource(42))
	for i := range tlbs {
		tlbs[i] = New(Config{Entries: 32, Ways: 4})
		ix.Attach(tlbs[i])
		for k := 0; k < 16; k++ {
			p := vm.Page(rng.Intn(64))
			tlbs[i].Insert(vm.Translation{Page: p, Frame: vm.Frame(p)})
		}
	}
	total := 0
	ix.Walk(func(mask []uint64, count int) {
		if count <= 0 {
			t.Fatalf("walk visited a run of length %d", count)
		}
		empty := true
		for _, w := range mask {
			if w != 0 {
				empty = false
			}
		}
		if empty {
			t.Fatal("walk visited an all-zero holder mask")
		}
		total += count
	})
	if total != ix.PageCount() {
		t.Fatalf("walk visited %d pages, index tracks %d", total, ix.PageCount())
	}
}

// TestPresenceIndexAttachPanics pins the wiring-error diagnostics: a TLB
// cannot serve two indexes, and an index cannot take more TLBs than its
// capacity.
func TestPresenceIndexAttachPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	tl := New(DefaultConfig)
	NewPresenceIndex(1).Attach(tl)
	mustPanic("cross-index attach", func() { NewPresenceIndex(1).Attach(tl) })
	mustPanic("capacity overflow", func() {
		ix := NewPresenceIndex(1)
		ix.Attach(New(DefaultConfig))
		ix.Attach(New(DefaultConfig))
	})
	mustPanic("non-positive capacity", func() { NewPresenceIndex(0) })
}

// TestPresenceIndexHolders pins the lookup contract: nil for absent
// pages, correct bit for resident ones, absence again after invalidation.
func TestPresenceIndexHolders(t *testing.T) {
	ix := NewPresenceIndex(2)
	a, b := New(DefaultConfig), New(DefaultConfig)
	ix.Attach(a)
	ix.Attach(b)
	if m := ix.Holders(7); m != nil {
		t.Fatalf("holders of an absent page = %x, want nil", m)
	}
	a.Insert(vm.Translation{Page: 7, Frame: 1})
	b.Insert(vm.Translation{Page: 7, Frame: 1})
	if m := ix.Holders(7); len(m) != 1 || m[0] != 0b11 {
		t.Fatalf("holders = %x, want [3]", m)
	}
	a.Invalidate(7)
	if m := ix.Holders(7); len(m) != 1 || m[0] != 0b10 {
		t.Fatalf("holders after invalidate = %x, want [2]", m)
	}
	b.Invalidate(7)
	if m := ix.Holders(7); m != nil {
		t.Fatalf("holders after full invalidate = %x, want nil", m)
	}
	if ix.PageCount() != 0 {
		t.Fatalf("index still tracks %d pages", ix.PageCount())
	}
}
