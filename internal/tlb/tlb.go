// Package tlb models per-core Translation Lookaside Buffers: set-associative
// caches of page-table entries with LRU replacement, as described in
// Section IV of the paper.
//
// Both detection mechanisms operate on these structures:
//
//   - The software-managed (SM) detector searches the *other* cores' TLBs
//     for the page that just missed (Figure 1a). For a set-associative TLB
//     only the matching set has to be inspected, giving the Θ(P) search of
//     Table I.
//   - The hardware-managed (HM) detector periodically compares all pairs of
//     TLBs set-by-set (Figure 1b), giving the Θ(P²·S) scan of Table I.
//
// The paper's experimental configuration — 64 entries, 4-way set
// associative, the default geometry of the UltraSPARC TLB and of the Intel
// Nehalem L1 TLB — is exposed as DefaultConfig.
package tlb

import (
	"fmt"

	"tlbmap/internal/vm"
)

// Management selects who refills the TLB on a miss.
type Management int

const (
	// SoftwareManaged TLBs trap to the operating system on every miss
	// (SPARC, MIPS). The OS refill path is where the SM detector hooks in.
	SoftwareManaged Management = iota
	// HardwareManaged TLBs are refilled by a hardware page walker (x86).
	// The OS cannot see misses, so the HM detector scans periodically.
	HardwareManaged
)

func (m Management) String() string {
	switch m {
	case SoftwareManaged:
		return "software-managed"
	case HardwareManaged:
		return "hardware-managed"
	default:
		return fmt.Sprintf("management(%d)", int(m))
	}
}

// Config describes the geometry of a TLB.
type Config struct {
	// Entries is the total number of translation entries.
	Entries int
	// Ways is the set associativity. Entries must be divisible by Ways.
	Ways int
}

// DefaultConfig is the geometry used throughout the paper's evaluation
// (Section VI-A): 64 entries, 4-way set associative.
var DefaultConfig = Config{Entries: 64, Ways: 4}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Entries / c.Ways }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 {
		return fmt.Errorf("tlb: entries (%d) and ways (%d) must be positive", c.Entries, c.Ways)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: entries (%d) not divisible by ways (%d)", c.Entries, c.Ways)
	}
	return nil
}

// entry is one TLB slot.
type entry struct {
	valid bool
	page  vm.Page
	frame vm.Frame
	lru   uint64 // logical timestamp of last touch
}

// TLB is one core's translation lookaside buffer. It is also the "mirror in
// main memory" the paper proposes for SM detection: the detector inspects
// these structures directly, which on real hardware corresponds to reading
// the OS-maintained mirror rather than the physical TLB.
//
// TLB is not safe for concurrent use; the engine serializes accesses.
type TLB struct {
	cfg Config
	// flat holds all entries contiguously, ways per set; sets are windows
	// into it. The hot paths (Lookup, Insert, Contains) index flat
	// directly — one offset multiply instead of loading a slice header
	// per access.
	flat  []entry
	ways  int
	sets  [][]entry // [set][way], views over flat (iteration paths)
	clock uint64

	// nsets caches cfg.Sets(); mask is nsets-1 when nsets is a power of
	// two (the common geometries), letting SetOf use an AND instead of a
	// divide on the per-lookup path.
	nsets uint64
	mask  uint64
	pow2  bool

	// setLen[s] is the number of valid entries in set s, maintained by
	// Insert/Invalidate/Flush. The HM scanner reads it to skip pairwise
	// comparisons against empty sets without touching the entries.
	setLen []int16

	// idx[p] is 1 + the flat index of page p's entry while resident, 0
	// otherwise. Virtual pages are handed out densely from page 1 by the
	// vm bump allocator, so a flat slice (grown lazily with the largest
	// page inserted) serves as the residency map, and every lookup-shaped
	// path — Lookup, Peek, Contains, Invalidate, the same-page refresh of
	// Insert — resolves in O(1) instead of scanning the set. Only victim
	// selection on Insert still reads the set.
	idx []int32

	// pidx/pslot bind this TLB to a PresenceIndex (nil when standalone).
	// Insert, Invalidate and Flush keep the index's bit for this TLB
	// current; with no index attached each pays one nil comparison.
	pidx  *PresenceIndex
	pslot int32

	hits      uint64
	misses    uint64
	evictions uint64
}

// New builds an empty TLB with the given geometry. It panics on an invalid
// configuration, which indicates a programming error in a preset.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]entry, cfg.Sets())
	flat := make([]entry, cfg.Entries)
	for i, backing := 0, flat; i < len(sets); i++ {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	nsets := uint64(cfg.Sets())
	return &TLB{
		cfg:    cfg,
		flat:   flat,
		ways:   cfg.Ways,
		sets:   sets,
		nsets:  nsets,
		mask:   nsets - 1,
		pow2:   nsets&(nsets-1) == 0,
		setLen: make([]int16, nsets),
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// SetOf returns the set index a page maps to.
func (t *TLB) SetOf(p vm.Page) int {
	if t.pow2 {
		return int(uint64(p) & t.mask)
	}
	return int(uint64(p) % t.nsets)
}

// SetLen returns the number of valid entries in one set. It is maintained
// incrementally, so reading it costs one load — the HM scanner uses it to
// elide pairwise set comparisons when either side is empty.
func (t *TLB) SetLen(set int) int { return int(t.setLen[set]) }

// resident returns the flat index of page p's entry, or -1.
func (t *TLB) resident(p vm.Page) int {
	if uint64(p) < uint64(len(t.idx)) {
		return int(t.idx[p]) - 1
	}
	return -1
}

// indexPage records page p as resident at flat index ix.
func (t *TLB) indexPage(p vm.Page, ix int) {
	for uint64(len(t.idx)) <= uint64(p) {
		t.idx = append(t.idx, 0)
	}
	t.idx[p] = int32(ix) + 1
}

// Lookup translates a page. On a hit it refreshes the entry's LRU state and
// returns the frame. On a miss the caller must refill via Insert.
func (t *TLB) Lookup(p vm.Page) (vm.Frame, bool) {
	t.clock++
	if ix := t.resident(p); ix >= 0 {
		e := &t.flat[ix]
		e.lru = t.clock
		t.hits++
		return e.frame, true
	}
	t.misses++
	return 0, false
}

// Insert installs a translation, evicting the LRU entry of the set if it is
// full. It returns the evicted page and whether an eviction happened.
func (t *TLB) Insert(tr vm.Translation) (evicted vm.Page, wasEvicted bool) {
	t.clock++
	// Reuse the existing slot for the same page.
	if ix := t.resident(tr.Page); ix >= 0 {
		e := &t.flat[ix]
		e.frame = tr.Frame
		e.lru = t.clock
		return 0, false
	}
	s := t.SetOf(tr.Page)
	off := s * t.ways
	set := t.flat[off : off+t.ways]
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		// Evict the least recently used way. Occupancy is unchanged: one
		// valid entry replaces another.
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		evicted, wasEvicted = set[victim].page, true
		t.evictions++
		t.idx[evicted] = 0
		if t.pidx != nil {
			t.pidx.remove(t.pslot, evicted)
		}
	} else {
		t.setLen[s]++
	}
	set[victim] = entry{valid: true, page: tr.Page, frame: tr.Frame, lru: t.clock}
	t.indexPage(tr.Page, off+victim)
	if t.pidx != nil {
		t.pidx.add(t.pslot, tr.Page)
	}
	return evicted, wasEvicted
}

// Peek returns the frame a resident page maps to without perturbing LRU
// state or the hit/miss statistics — the inspection path of the
// TLB-consistency checker, which must not disturb what it validates.
func (t *TLB) Peek(p vm.Page) (vm.Frame, bool) {
	if ix := t.resident(p); ix >= 0 {
		return t.flat[ix].frame, true
	}
	return 0, false
}

// Contains reports whether a page is resident without perturbing LRU state.
// This is the probe the SM detector uses against remote TLB mirrors; it
// inspects only the page's set, costing Ways comparisons (the Θ(P) search
// of Table I once the associativity is fixed).
func (t *TLB) Contains(p vm.Page) bool {
	return t.resident(p) >= 0
}

// Invalidate drops the entry for a page if present (the OS invalidation on
// page-table modification mentioned in Section IV-B). It reports whether an
// entry was dropped.
func (t *TLB) Invalidate(p vm.Page) bool {
	ix := t.resident(p)
	if ix < 0 {
		return false
	}
	t.flat[ix].valid = false
	t.idx[p] = 0
	t.setLen[ix/t.ways]--
	if t.pidx != nil {
		t.pidx.remove(t.pslot, p)
	}
	return true
}

// Flush invalidates every entry (e.g. on a context switch without ASIDs).
func (t *TLB) Flush() {
	for s, set := range t.sets {
		if t.setLen[s] == 0 {
			continue
		}
		for i := range set {
			if set[i].valid {
				t.idx[set[i].page] = 0
				if t.pidx != nil {
					t.pidx.remove(t.pslot, set[i].page)
				}
			}
			set[i].valid = false
		}
		t.setLen[s] = 0
	}
}

// PresenceIndex returns the index this TLB is attached to, or nil.
func (t *TLB) PresenceIndex() *PresenceIndex { return t.pidx }

// PresenceSlot returns this TLB's slot in its PresenceIndex; only
// meaningful when PresenceIndex() is non-nil.
func (t *TLB) PresenceSlot() int { return int(t.pslot) }

// PagesInSet appends the valid pages of one set to dst and returns it.
// The HM scanner walks sets pairwise with this accessor.
func (t *TLB) PagesInSet(set int, dst []vm.Page) []vm.Page {
	if t.setLen[set] == 0 {
		return dst
	}
	for _, e := range t.sets[set] {
		if e.valid {
			dst = append(dst, e.page)
		}
	}
	return dst
}

// ResidentPages returns all valid pages, ordered by set. Used by tests and
// by the fully-associative scan path.
func (t *TLB) ResidentPages() []vm.Page {
	out := make([]vm.Page, 0, t.cfg.Entries)
	for s := range t.sets {
		out = t.PagesInSet(s, out)
	}
	return out
}

// Len returns the number of valid entries.
func (t *TLB) Len() int {
	n := 0
	for _, l := range t.setLen {
		n += int(l)
	}
	return n
}

// Hits returns the number of lookups that hit.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of lookups that missed.
func (t *TLB) Misses() uint64 { return t.misses }

// Evictions returns the number of LRU evictions performed.
func (t *TLB) Evictions() uint64 { return t.evictions }

// MissRate returns misses/(hits+misses), the first column of Table III.
func (t *TLB) MissRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.misses) / float64(total)
}

// ResetStats zeroes the hit/miss/eviction counters without touching the
// cached translations.
func (t *TLB) ResetStats() { t.hits, t.misses, t.evictions = 0, 0, 0 }

// MatchesInSet counts pages resident in the same set of both TLBs. The two
// TLBs must share a geometry; the caller (the HM scanner) guarantees this.
func MatchesInSet(a, b *TLB, set int) int {
	n := 0
	for _, ea := range a.sets[set] {
		if !ea.valid {
			continue
		}
		for _, eb := range b.sets[set] {
			if eb.valid && eb.page == ea.page {
				n++
				break
			}
		}
	}
	return n
}
