package tlb

import (
	"fmt"
	"math/bits"

	"tlbmap/internal/vm"
)

// PresenceIndex is an inverted page-presence index over a group of TLBs:
// for every page resident in at least one attached TLB it records the set
// of attached TLBs ("slots", the cores of a run) currently holding a
// translation for it, as a multi-word bitmask so more than 64 cores work.
//
// The index is maintained incrementally — Insert, Invalidate and Flush on
// an attached TLB update it in O(1) per entry touched — which inverts the
// cost structure of the paper's HM mechanism on the host: instead of
// comparing all pairs of TLBs set by set (Θ(P²·S), Table I), a scan walks
// the index once, Θ(resident pages), and reads each page's holder set
// directly. The SM mechanism's "which other cores hold this page" probe
// becomes one lookup returning a bitmask instead of a set probe in every
// remote TLB. The *simulated* detection costs are unchanged: the modelled
// OS still pays the Table I complexities; the index only removes the
// host's reason to mirror them.
//
// A PresenceIndex is not safe for concurrent use; like the TLBs it
// indexes, the engine serializes accesses.
type PresenceIndex struct {
	cores int // capacity: the maximum number of attachable TLBs
	words int // mask words per page: ceil(cores/64)

	// owners[slot] is the TLB attached at that slot, in attach order.
	// Validate recomputes the index from these and is the independent
	// ground truth the runtime checker compares against.
	owners []*TLB

	// Dense storage: pages[i] has holder mask masks[i*words:(i+1)*words].
	// pos[p] is 1 + page p's dense position, 0 while untracked. Like
	// TLB.idx it is a flat slice grown lazily to the largest page seen —
	// the vm bump allocator hands pages out densely from 1, so the slice
	// stays proportional to the working set and the per-event lookups on
	// the ingest path (HoldersEach, add, remove) skip the map hashing
	// that used to dominate them. Removal swap-deletes, so iteration
	// order is an implementation detail — every consumer of Walk/Holders
	// accumulates commutatively (matrix sums), which keeps results
	// byte-identical to the pairwise scan regardless of order.
	pos   []int32
	pages []vm.Page
	masks []uint64
}

// NewPresenceIndex builds an empty index with capacity for the given
// number of TLBs (one per simulated core).
func NewPresenceIndex(cores int) *PresenceIndex {
	if cores <= 0 {
		panic(fmt.Sprintf("tlb: presence index needs a positive core count, got %d", cores))
	}
	return &PresenceIndex{
		cores: cores,
		words: (cores + 63) / 64,
	}
}

// Cores returns the index capacity (the slot-id upper bound).
func (ix *PresenceIndex) Cores() int { return ix.cores }

// Words returns the number of 64-bit words in each holder mask.
func (ix *PresenceIndex) Words() int { return ix.words }

// PageCount returns how many distinct pages are resident in at least one
// attached TLB.
func (ix *PresenceIndex) PageCount() int { return len(ix.pages) }

// Attached returns how many TLBs are attached.
func (ix *PresenceIndex) Attached() int { return len(ix.owners) }

// Attach registers a TLB with the index, assigns it the next slot and
// absorbs any translations already resident, so attach order and insert
// order are interchangeable. From then on the TLB maintains its bit in
// the index on every Insert, Invalidate and Flush. It panics when the TLB
// already belongs to a different index or the capacity is exhausted —
// both indicate a wiring error in engine construction.
func (ix *PresenceIndex) Attach(t *TLB) int {
	if t.pidx == ix {
		return int(t.pslot)
	}
	if t.pidx != nil {
		panic("tlb: TLB is already attached to a different PresenceIndex")
	}
	slot := len(ix.owners)
	if slot >= ix.cores {
		panic(fmt.Sprintf("tlb: presence index capacity %d exhausted", ix.cores))
	}
	ix.owners = append(ix.owners, t)
	t.pidx = ix
	t.pslot = int32(slot)
	for s := range t.sets {
		for _, e := range t.sets[s] {
			if e.valid {
				ix.add(t.pslot, e.page)
			}
		}
	}
	return slot
}

// Holders returns the holder mask of a page — bit s set means the TLB at
// slot s holds a translation for it — or nil when no attached TLB does.
// The returned slice aliases index storage: it is only valid until the
// next mutation and must not be written.
func (ix *PresenceIndex) Holders(p vm.Page) []uint64 {
	i, ok := ix.at(p)
	if !ok {
		return nil
	}
	base := int(i) * ix.words
	return ix.masks[base : base+ix.words]
}

// at resolves a page to its dense position.
func (ix *PresenceIndex) at(p vm.Page) (int32, bool) {
	if uint64(p) >= uint64(len(ix.pos)) {
		return 0, false
	}
	i := ix.pos[p]
	return i - 1, i != 0
}

// HoldersEach calls fn with the slot of every attached TLB currently
// holding a translation for the page, in ascending slot order. It is the
// serving-path form of Holders: no aliased mask escapes to the caller, so
// fn may mutate the index (insert, invalidate) once it returns — the bits
// are decoded into a local copy first.
func (ix *PresenceIndex) HoldersEach(p vm.Page, fn func(slot int)) {
	i, ok := ix.at(p)
	if !ok {
		return
	}
	var buf [4]uint64
	mask := buf[:0]
	if ix.words > len(buf) {
		mask = make([]uint64, 0, ix.words)
	}
	base := int(i) * ix.words
	mask = append(mask, ix.masks[base:base+ix.words]...)
	for w, m := range mask {
		for m != 0 {
			fn(w<<6 + bits.TrailingZeros64(m))
			m &= m - 1
		}
	}
}

// Walk visits every resident page's holder mask, batching consecutive
// pages that share one mask into a single call (count is the run length).
// Batching is what makes the dense case cheap: when every core holds the
// same working set — the common case mid-run — an entire scan collapses
// to a handful of callbacks. fn must not retain mask or mutate the index.
func (ix *PresenceIndex) Walk(fn func(mask []uint64, count int)) {
	n := len(ix.pages)
	if n == 0 {
		return
	}
	if ix.words == 1 {
		// Single-word fast path (up to 64 cores): run detection is one
		// integer compare per page.
		masks := ix.masks
		start, cur := 0, masks[0]
		for i := 1; i < n; i++ {
			if masks[i] == cur {
				continue
			}
			fn(masks[start:start+1], i-start)
			start, cur = i, masks[i]
		}
		fn(masks[start:start+1], n-start)
		return
	}
	w := ix.words
	start := 0
	for i := 1; i < n; i++ {
		if maskEq(ix.masks[i*w:(i+1)*w], ix.masks[start*w:start*w+w]) {
			continue
		}
		fn(ix.masks[start*w:start*w+w], i-start)
		start = i
	}
	fn(ix.masks[start*w:start*w+w], n-start)
}

func maskEq(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate recomputes the index from scratch over the attached TLBs'
// contents and reports the first disagreement. It is the independent
// oracle behind the property tests and the runtime TLB-consistency
// checker: after any sequence of inserts, invalidations, flushes and
// shootdowns, the incrementally maintained state must equal this
// recomputation exactly.
func (ix *PresenceIndex) Validate() error {
	want := make(map[vm.Page][]uint64, len(ix.pages))
	for slot, t := range ix.owners {
		for _, p := range t.ResidentPages() {
			m := want[p]
			if m == nil {
				m = make([]uint64, ix.words)
				want[p] = m
			}
			m[slot>>6] |= 1 << (uint(slot) & 63)
		}
	}
	if len(want) != len(ix.pages) {
		return fmt.Errorf("tlb: presence index tracks %d pages, TLBs hold %d", len(ix.pages), len(want))
	}
	tracked := 0
	for _, i := range ix.pos {
		if i != 0 {
			tracked++
		}
	}
	if len(ix.pages) != tracked {
		return fmt.Errorf("tlb: presence index dense storage has %d pages but position index has %d",
			len(ix.pages), tracked)
	}
	for i, p := range ix.pages {
		if at, ok := ix.at(p); !ok || int(at) != i {
			return fmt.Errorf("tlb: presence index position index disagrees with dense storage for page %#x", uint64(p))
		}
		m := want[p]
		if m == nil {
			return fmt.Errorf("tlb: presence index tracks page %#x, which no TLB holds", uint64(p))
		}
		base := i * ix.words
		if !maskEq(ix.masks[base:base+ix.words], m) {
			return fmt.Errorf("tlb: presence index mask for page %#x is %x, TLB contents say %x",
				uint64(p), ix.masks[base:base+ix.words], m)
		}
	}
	return nil
}

// add sets the slot's bit for a page, creating the page's mask on first
// residency. O(1): one position lookup plus one bit set.
func (ix *PresenceIndex) add(slot int32, p vm.Page) {
	for uint64(len(ix.pos)) <= uint64(p) {
		ix.pos = append(ix.pos, 0)
	}
	i := ix.pos[p] - 1
	if i < 0 {
		i = int32(len(ix.pages))
		ix.pos[p] = i + 1
		ix.pages = append(ix.pages, p)
		for w := 0; w < ix.words; w++ {
			ix.masks = append(ix.masks, 0)
		}
	}
	ix.masks[int(i)*ix.words+int(slot>>6)] |= 1 << (uint(slot) & 63)
}

// remove clears the slot's bit for a page and swap-deletes the page once
// no attached TLB holds it. O(1) apart from the words-long zero test.
func (ix *PresenceIndex) remove(slot int32, p vm.Page) {
	i, ok := ix.at(p)
	if !ok {
		return
	}
	base := int(i) * ix.words
	ix.masks[base+int(slot>>6)] &^= 1 << (uint(slot) & 63)
	for w := 0; w < ix.words; w++ {
		if ix.masks[base+w] != 0 {
			return
		}
	}
	last := len(ix.pages) - 1
	lp := ix.pages[last]
	ix.pages[i] = lp
	copy(ix.masks[base:base+ix.words], ix.masks[last*ix.words:(last+1)*ix.words])
	ix.pos[lp] = i + 1
	ix.pages = ix.pages[:last]
	ix.masks = ix.masks[:last*ix.words]
	ix.pos[p] = 0
}
