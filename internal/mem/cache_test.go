package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheConfigValidate(t *testing.T) {
	if err := DefaultL1Config.Validate(); err != nil {
		t.Errorf("L1 default invalid: %v", err)
	}
	if err := DefaultL2Config.Validate(); err != nil {
		t.Errorf("L2 default invalid: %v", err)
	}
	// Table II values.
	if DefaultL1Config.SizeBytes != 32<<10 || DefaultL1Config.Ways != 4 || DefaultL1Config.Latency != 2 {
		t.Error("L1 config deviates from Table II")
	}
	if DefaultL2Config.SizeBytes != 6<<20 || DefaultL2Config.Ways != 8 || DefaultL2Config.Latency != 8 {
		t.Error("L2 config deviates from Table II")
	}
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 100, Ways: 4},     // not line multiple
		{SizeBytes: 64 * 10, Ways: 3}, // lines not divisible by ways
		{SizeBytes: -64, Ways: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestCacheGeometry(t *testing.T) {
	c := CacheConfig{SizeBytes: 32 << 10, Ways: 4, Latency: 2}
	if c.Lines() != 512 || c.Sets() != 128 {
		t.Errorf("lines/sets = %d/%d", c.Lines(), c.Sets())
	}
}

func TestNewCachePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCache accepted invalid config")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 65, Ways: 1})
}

func TestMESIStateString(t *testing.T) {
	for s, want := range map[MESIState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func smallCache() *Cache {
	// 8 lines, 2 ways -> 4 sets.
	return NewCache(CacheConfig{SizeBytes: 8 * LineSize, Ways: 2, Latency: 1})
}

func TestInsertLookupProbe(t *testing.T) {
	c := smallCache()
	if c.Lookup(7) != Invalid {
		t.Fatal("empty cache hit")
	}
	c.Insert(7, Exclusive)
	if c.Lookup(7) != Exclusive {
		t.Error("lookup state wrong")
	}
	if c.Probe(7) != Exclusive {
		t.Error("probe state wrong")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestSetState(t *testing.T) {
	c := smallCache()
	c.Insert(3, Shared)
	if !c.SetState(3, Modified) {
		t.Error("SetState missed resident line")
	}
	if c.Probe(3) != Modified {
		t.Error("state not updated")
	}
	if !c.SetState(3, Invalid) {
		t.Error("invalidation missed")
	}
	if c.Probe(3) != Invalid || c.Len() != 0 {
		t.Error("line not invalidated")
	}
	if c.SetState(99, Shared) {
		t.Error("SetState hit a non-resident line")
	}
}

func TestEvictionReportsDirtyState(t *testing.T) {
	c := smallCache() // 4 sets, 2 ways; lines 0,4,8 share set 0
	c.Insert(0, Modified)
	c.Insert(4, Shared)
	c.Lookup(4) // 0 becomes LRU
	ev := c.Insert(8, Exclusive)
	if !ev.Happened || ev.Line != 0 || ev.State != Modified {
		t.Errorf("eviction = %+v, want dirty line 0", ev)
	}
}

func TestProbeDoesNotPerturbLRU(t *testing.T) {
	c := smallCache()
	c.Insert(0, Shared)
	c.Insert(4, Shared) // set 0 full; 0 is LRU
	for i := 0; i < 5; i++ {
		c.Probe(0)
	}
	ev := c.Insert(8, Shared)
	if ev.Line != 0 {
		t.Errorf("probe perturbed LRU: evicted %d", ev.Line)
	}
}

func TestReinsertUpdatesState(t *testing.T) {
	c := smallCache()
	c.Insert(1, Shared)
	ev := c.Insert(1, Modified)
	if ev.Happened {
		t.Error("re-insert evicted")
	}
	if c.Probe(1) != Modified {
		t.Error("state not updated on re-insert")
	}
}

func TestFlush(t *testing.T) {
	c := smallCache()
	c.Insert(1, Modified)
	c.Insert(2, Shared)
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush incomplete")
	}
}

// TestCacheCapacityInvariant: never more lines than capacity, never more
// than Ways per set.
func TestCacheCapacityInvariant(t *testing.T) {
	f := func(lines []uint16) bool {
		cfg := CacheConfig{SizeBytes: 16 * LineSize, Ways: 4, Latency: 1}
		c := NewCache(cfg)
		for _, l := range lines {
			c.Insert(Line(l), Shared)
			if c.Len() > cfg.Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestInsertedLineIsResident: quick property that Insert makes a line
// immediately visible.
func TestInsertedLineIsResident(t *testing.T) {
	f := func(lines []uint16, probe uint16) bool {
		c := smallCache()
		for _, l := range lines {
			c.Insert(Line(l), Exclusive)
		}
		c.Insert(Line(probe), Modified)
		return c.Probe(Line(probe)) == Modified
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
