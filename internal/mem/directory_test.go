package mem

import (
	"math/rand"
	"testing"

	"tlbmap/internal/topology"
)

// TestDirectoryMatchesBroadcast replays a random Read/Write mix through two
// identically-configured Systems — one with the sharing directories active,
// one forced onto the original probe-every-domain broadcast loops — and
// requires identical latencies per operation, identical counters, identical
// cache contents and an identical front-side-bus schedule. The directories
// are an index over the snoop paths, never a semantic change.
func TestDirectoryMatchesBroadcast(t *testing.T) {
	l1 := CacheConfig{SizeBytes: 8 * LineSize, Ways: 2, Latency: 2}
	l2 := CacheConfig{SizeBytes: 32 * LineSize, Ways: 4, Latency: 8}
	for _, mk := range []struct {
		name string
		m    func() *topology.Machine
	}{
		{"harpertown", topology.Harpertown},
		{"numa", func() *topology.Machine { return topology.NUMA(2) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			dir := NewSystem(mk.m(), l1, l2)
			ref := NewSystem(mk.m(), l1, l2)
			ref.l2dirOK, ref.l1dirOK = false, false
			if !dir.l2dirOK || !dir.l1dirOK {
				t.Fatal("directories not active on a small machine")
			}
			ncores := mk.m().NumCores()
			rng := rand.New(rand.NewSource(11))
			for op := 0; op < 30000; op++ {
				core := rng.Intn(ncores)
				l := Line(rng.Intn(96))
				now := uint64(op) * 3
				if rng.Intn(3) == 0 {
					got, want := dir.Write(core, l, now), ref.Write(core, l, now)
					if got != want {
						t.Fatalf("op %d: Write(%d, %d) latency %d, want %d", op, core, l, got, want)
					}
				} else {
					got, want := dir.Read(core, l, now), ref.Read(core, l, now)
					if got != want {
						t.Fatalf("op %d: Read(%d, %d) latency %d, want %d", op, core, l, got, want)
					}
				}
				if dir.fsbFreeAt != ref.fsbFreeAt {
					t.Fatalf("op %d: fsbFreeAt %d, want %d", op, dir.fsbFreeAt, ref.fsbFreeAt)
				}
				if op%1000 == 0 {
					if err := dir.validateDirectories(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := dir.validateDirectories(); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < ncores; c++ {
				if *dir.Counters(c) != *ref.Counters(c) {
					t.Fatalf("core %d counters diverge:\n  dir: %s\n  ref: %s",
						c, dir.Counters(c).String(), ref.Counters(c).String())
				}
			}
			for c := 0; c < ncores; c++ {
				compareCaches(t, "L1", c, dir.L1(c), ref.L1(c))
			}
			for d := 0; d < dir.NumDomains(); d++ {
				compareCaches(t, "L2", d, dir.L2(d), ref.L2(d))
			}
		})
	}
}

func compareCaches(t *testing.T, level string, idx int, a, b *Cache) {
	t.Helper()
	got := map[Line]MESIState{}
	a.Each(func(l Line, s MESIState) { got[l] = s })
	want := map[Line]MESIState{}
	b.Each(func(l Line, s MESIState) { want[l] = s })
	if len(got) != len(want) {
		t.Fatalf("%s %d holds %d lines, want %d", level, idx, len(got), len(want))
	}
	for l, s := range want {
		if got[l] != s {
			t.Fatalf("%s %d line %d state %v, want %v", level, idx, l, got[l], s)
		}
	}
}
