package mem

// Source identifies where a memory access or cache fill was served from.
type Source uint8

// The data sources of the hierarchy, from fastest to slowest.
const (
	// SrcL1: the access hit in the core's private L1.
	SrcL1 Source = iota
	// SrcL2: the access hit in the core's L2 domain.
	SrcL2
	// SrcCache: the line was supplied by a remote L2 over the snooping
	// interconnect (a cache-to-cache transfer).
	SrcCache
	// SrcMemory: the line was filled from main memory.
	SrcMemory
)

func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcCache:
		return "remote-cache"
	case SrcMemory:
		return "memory"
	default:
		return "source(?)"
	}
}

// Observer receives fine-grained memory-hierarchy events: every completed
// access and every coherence transition the System performs. It exists for
// the runtime invariant checkers of internal/check; the hooks fire
// synchronously on the simulated access path, so implementations must not
// block and must not call back into the System's mutating methods.
//
// When no observer is armed (the default) the System performs a single nil
// check per potential event, keeping the disabled cost near zero.
type Observer interface {
	// OnRead fires after a load completes. src tells where the data was
	// served from; supplier is the supplying L2 domain when src is
	// SrcCache, and -1 otherwise.
	OnRead(core int, l Line, src Source, supplier int)
	// OnWrite fires after a store completes. src tells where the line was
	// obtained on a write miss (SrcCache or SrcMemory); write hits report
	// SrcL2 (the write-back L2 owns the data). supplier is as in OnRead.
	OnWrite(core int, l Line, src Source, supplier int)
	// OnL1Install fires when a line is installed in a core's private L1
	// (always in Shared state: L1s are write-through).
	OnL1Install(core int, l Line)
	// OnL1Drop fires when an L1 copy is discarded — coherence
	// invalidation, inclusion enforcement, or silent replacement.
	OnL1Drop(core int, l Line)
	// OnL2Install fires when a line is installed in a domain's L2 after a
	// miss. src is SrcCache (with the supplying domain) or SrcMemory.
	OnL2Install(domain int, l Line, st MESIState, src Source, supplier int)
	// OnL2State fires on every state transition of a resident L2 line:
	// upgrades (S/E -> M), snoop downgrades (M/E -> S) and invalidations
	// (-> Invalid).
	OnL2State(domain int, l Line, old, new MESIState)
	// OnL2Evict fires when installing a line displaces another; a
	// Modified victim implies a write-back (also reported via
	// OnWriteBack).
	OnL2Evict(domain int, l Line, st MESIState)
	// OnWriteBack fires when a Modified line's data reaches main memory:
	// a snoop downgrade by a read miss, or a dirty eviction.
	OnWriteBack(domain int, l Line)
}

// SetObserver arms (or, with nil, disarms) the hierarchy observer. The
// simulation engine calls this once before a run when invariant checking is
// enabled.
func (s *System) SetObserver(o Observer) { s.obs = o }

// Observer returns the armed observer (nil when disabled).
func (s *System) Observer() Observer { return s.obs }
