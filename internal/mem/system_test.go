package mem

import (
	"testing"

	"tlbmap/internal/metrics"
	"tlbmap/internal/topology"
)

func newSystem() *System {
	// Small caches keep the tests focused on protocol behavior.
	l1 := CacheConfig{SizeBytes: 4 * LineSize, Ways: 2, Latency: 2}
	l2 := CacheConfig{SizeBytes: 16 * LineSize, Ways: 4, Latency: 8}
	return NewSystem(topology.Harpertown(), l1, l2)
}

func TestSystemShape(t *testing.T) {
	s := newSystem()
	if s.NumDomains() != 4 {
		t.Errorf("domains = %d, want 4", s.NumDomains())
	}
}

func TestColdReadGoesToMemoryExclusive(t *testing.T) {
	s := newSystem()
	lat := s.Read(0, 100, 0)
	if lat < MemLatency {
		t.Errorf("cold read latency %d below memory latency", lat)
	}
	c := s.Counters(0)
	if c.Get(metrics.L1Misses) != 1 || c.Get(metrics.L2Misses) != 1 || c.Get(metrics.MemoryReads) != 1 {
		t.Errorf("cold read counters: %s", c.String())
	}
	if s.L2(0).Probe(100) != Exclusive {
		t.Errorf("first reader state = %v, want E", s.L2(0).Probe(100))
	}
}

func TestSecondReadHitsL1(t *testing.T) {
	s := newSystem()
	s.Read(0, 100, 0)
	lat := s.Read(0, 100, 10)
	if lat != 2 {
		t.Errorf("L1 hit latency = %d, want 2", lat)
	}
	if s.Counters(0).Get(metrics.L1Hits) != 1 {
		t.Error("L1 hit not counted")
	}
}

func TestReadSharingDowngradesToShared(t *testing.T) {
	s := newSystem()
	s.Read(0, 100, 0) // domain 0: E
	lat := s.Read(2, 100, 10)
	if lat >= MemLatency {
		t.Errorf("remote-supplied read cost %d (should be cheaper than memory)", lat)
	}
	if s.Counters(2).Get(metrics.SnoopTransactions) != 1 {
		t.Error("snoop transaction not counted")
	}
	if s.L2(0).Probe(100) != Shared || s.L2(1).Probe(100) != Shared {
		t.Errorf("states after read sharing: %v/%v", s.L2(0).Probe(100), s.L2(1).Probe(100))
	}
	// Same-chip transfer counts as intra-chip traffic.
	if s.Counters(2).Get(metrics.IntraChipTraffic) != 1 {
		t.Error("intra-chip traffic not counted")
	}
}

func TestCrossChipTransferCountsInterChip(t *testing.T) {
	s := newSystem()
	s.Read(0, 100, 0)
	s.Read(4, 100, 10) // core 4 is on the other chip
	if s.Counters(4).Get(metrics.InterChipTraffic) != 1 {
		t.Error("inter-chip traffic not counted")
	}
}

func TestWriteUpgradeInvalidatesRemoteCopies(t *testing.T) {
	s := newSystem()
	s.Read(0, 100, 0)
	s.Read(2, 100, 1)
	s.Read(4, 100, 2) // three domains hold the line Shared
	base := s.Counters(0).Get(metrics.Invalidations)
	s.Write(0, 100, 3)
	inv := s.Counters(0).Get(metrics.Invalidations) - base
	// Two remote L2 copies die; L1 copies of cores 2 and 4 die too.
	if inv < 2 {
		t.Errorf("invalidations = %d, want >= 2", inv)
	}
	if s.L2(0).Probe(100) != Modified {
		t.Errorf("writer state = %v, want M", s.L2(0).Probe(100))
	}
	if s.L2(1).Probe(100) != Invalid || s.L2(2).Probe(100) != Invalid {
		t.Error("remote copies not invalidated")
	}
	if s.L1(2).Probe(100) != Invalid || s.L1(4).Probe(100) != Invalid {
		t.Error("remote L1 copies not invalidated")
	}
}

func TestWriteMissInvalidatesAndTakesOwnership(t *testing.T) {
	s := newSystem()
	s.Read(2, 100, 0) // domain 1 holds E
	s.Write(0, 100, 1)
	if s.L2(0).Probe(100) != Modified {
		t.Error("writer did not take ownership")
	}
	if s.L2(1).Probe(100) != Invalid {
		t.Error("previous owner not invalidated")
	}
	if s.Counters(0).Get(metrics.SnoopTransactions) != 1 {
		t.Error("write miss with remote supplier should count a snoop")
	}
}

func TestExclusiveWriteIsSilent(t *testing.T) {
	s := newSystem()
	s.Read(0, 100, 0) // E
	base := s.Counters(0).Snapshot()
	s.Write(0, 100, 1) // E -> M silently
	d := s.Counters(0).Diff(&base)
	if d.Get(metrics.Invalidations) != 0 || d.Get(metrics.SnoopTransactions) != 0 {
		t.Errorf("silent upgrade generated traffic: %s", d.String())
	}
	if s.L2(0).Probe(100) != Modified {
		t.Error("state not M")
	}
}

func TestL1PeerInvalidationWithinDomain(t *testing.T) {
	s := newSystem()
	s.Read(0, 100, 0)
	s.Read(1, 100, 1) // cores 0 and 1 share the L2; both L1s hold the line
	base := s.Counters(0).Get(metrics.Invalidations)
	s.Write(0, 100, 2)
	if s.L1(1).Probe(100) != Invalid {
		t.Error("sibling L1 copy survived a write")
	}
	if s.Counters(0).Get(metrics.Invalidations)-base != 1 {
		t.Error("sibling L1 invalidation not counted once")
	}
	// The L2 line stays valid for the domain.
	if s.L2(0).Probe(100) != Modified {
		t.Error("domain L2 state wrong")
	}
}

func TestDirtyReadSharingWritesBack(t *testing.T) {
	s := newSystem()
	s.Write(0, 100, 0) // M in domain 0
	base := s.Counters(2).Get(metrics.MemoryWrites)
	s.Read(2, 100, 1)
	if s.Counters(2).Get(metrics.MemoryWrites)-base != 1 {
		t.Error("dirty supplier should write back on downgrade")
	}
	if s.L2(0).Probe(100) != Shared {
		t.Error("dirty supplier not downgraded")
	}
}

func TestL2EvictionWritesBackDirtyAndBackInvalidatesL1(t *testing.T) {
	l1 := CacheConfig{SizeBytes: 4 * LineSize, Ways: 4, Latency: 2}
	l2 := CacheConfig{SizeBytes: 4 * LineSize, Ways: 1, Latency: 8} // direct-mapped, 4 sets
	s := NewSystem(topology.Harpertown(), l1, l2)
	s.Write(0, 0, 0) // set 0, dirty
	s.Read(0, 0, 1)  // pull into L1 as well
	if s.L1(0).Probe(0) == Invalid {
		t.Fatal("test setup: line not in L1")
	}
	base := s.Counters(0).Get(metrics.MemoryWrites)
	s.Read(0, 4, 2) // set 0 again: evicts dirty line 0
	if s.Counters(0).Get(metrics.MemoryWrites)-base != 1 {
		t.Error("dirty eviction did not write back")
	}
	if s.L1(0).Probe(0) != Invalid {
		t.Error("inclusion violated: evicted L2 line still in L1")
	}
}

func TestFSBQueueing(t *testing.T) {
	s := newSystem()
	// Create a line held Modified on chip 1; then chip-0 cores fetch it
	// back-to-back at the same instant: the second must queue on the bus.
	s.Write(4, 100, 0)
	s.Write(5, 101, 0)
	lat1 := s.Read(0, 100, 1000)
	lat2 := s.Read(2, 101, 1000)
	if lat2 <= lat1 {
		t.Errorf("concurrent inter-chip transfers should queue: lat1=%d lat2=%d", lat1, lat2)
	}
	if lat2-lat1 < FSBOccupancy/2 {
		t.Errorf("queueing delay too small: %d", lat2-lat1)
	}
}

func TestMemoryFillsOccupyFSB(t *testing.T) {
	s := newSystem()
	lat1 := s.Read(0, 200, 0)
	lat2 := s.Read(2, 300, 0) // distinct cold lines, same instant
	if lat2 <= lat1 {
		t.Errorf("concurrent memory fills should queue on the bus: %d vs %d", lat1, lat2)
	}
}

func TestTotalCountersAggregates(t *testing.T) {
	s := newSystem()
	s.Read(0, 1, 0)
	s.Read(7, 2, 0)
	total := s.TotalCounters()
	if total.Get(metrics.L2Misses) != 2 || total.Get(metrics.MemoryReads) != 2 {
		t.Errorf("totals wrong: %s", total.String())
	}
}

// TestPingPong reproduces the invalidation-miss scenario of Section
// III-A1: a writer and a reader alternating on one line. Placed on the
// same L2 the traffic vanishes; placed across chips every round costs an
// invalidation plus a snoop.
func TestPingPong(t *testing.T) {
	run := func(writer, reader int) (inv, snoop uint64) {
		s := newSystem()
		for i := 0; i < 10; i++ {
			s.Write(writer, 500, uint64(i*1000))
			s.Read(reader, 500, uint64(i*1000+500))
		}
		total := s.TotalCounters()
		return total.Get(metrics.Invalidations), total.Get(metrics.SnoopTransactions)
	}
	sameL2Inv, sameL2Snoop := run(0, 1)
	crossInv, crossSnoop := run(0, 4)
	if crossInv <= sameL2Inv {
		t.Errorf("cross-chip ping-pong should invalidate more: %d vs %d", crossInv, sameL2Inv)
	}
	if crossSnoop <= sameL2Snoop {
		t.Errorf("cross-chip ping-pong should snoop more: %d vs %d", crossSnoop, sameL2Snoop)
	}
}
