// Package mem implements the simulated memory hierarchy of Figure 3 and
// Table II: private write-through L1 data caches, L2 caches shared by core
// pairs with a MESI write-back protocol, and a snooping interconnect whose
// latency depends on whether a transfer stays inside a chip or crosses the
// front-side bus.
//
// The package exposes exactly the events the paper measures in Section VI-B:
// cache-line invalidations, snoop transactions (cache-to-cache transfers),
// and L2 misses, plus the intra-/inter-chip traffic split motivating
// Section III-A2.
package mem

import (
	"fmt"
)

// LineShift is log2 of the cache line size (64-byte lines, Table II).
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// Line is a physical cache-line number (physical address >> LineShift).
type Line uint64

// MESIState is the coherence state of a cached line.
type MESIState uint8

// The four MESI states.
const (
	Invalid MESIState = iota
	Shared
	Exclusive
	Modified
)

func (s MESIState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// CacheConfig describes the geometry and latency of one cache level.
type CacheConfig struct {
	SizeBytes int    // total capacity
	Ways      int    // set associativity
	Latency   uint64 // access latency in cycles
}

// Lines returns the number of cache lines the configuration holds.
func (c CacheConfig) Lines() int { return c.SizeBytes / LineSize }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.Lines() / c.Ways }

// Validate reports whether the geometry is consistent.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: size (%d) and ways (%d) must be positive", c.SizeBytes, c.Ways)
	}
	if c.SizeBytes%LineSize != 0 {
		return fmt.Errorf("mem: size %d not a multiple of the %d-byte line", c.SizeBytes, LineSize)
	}
	if c.Lines()%c.Ways != 0 {
		return fmt.Errorf("mem: %d lines not divisible by %d ways", c.Lines(), c.Ways)
	}
	return nil
}

// Table II configurations.
var (
	// DefaultL1Config: 32 KiB, 4-way, 2-cycle, write-through.
	DefaultL1Config = CacheConfig{SizeBytes: 32 << 10, Ways: 4, Latency: 2}
	// DefaultL2Config: 6 MiB, 8-way, 8-cycle, write-back MESI, shared by
	// two cores.
	DefaultL2Config = CacheConfig{SizeBytes: 6 << 20, Ways: 8, Latency: 8}
)

// invalidTag marks an empty way in the way-metadata array. Physical line
// numbers are bounded far below 2^64 (58 usable bits of physical address),
// so the all-ones value can never collide with a resident line.
const invalidTag = ^uint64(0)

// Residency-entry layout: idx[l] packs the resident line's global way
// index (plus one, so the zero value means "absent") with its MESI state.
// wayBits caps a cache at 2^27-1 ways — three orders of magnitude above
// the largest modelled L2 — and leaves the two bits a MESI state needs.
const (
	wayBits = 27
	wayMask = 1<<wayBits - 1
)

// wayMeta is the per-way replacement metadata: the resident line's number
// (invalidTag while empty) and its LRU stamp. Victim selection — the only
// remaining scan in the cache — reads both fields of every way in a set,
// so they share one array: a 4-way set spans a single host cache line
// instead of the two that parallel tag/LRU slices would cost per fill.
type wayMeta struct {
	tag uint64
	lru uint64
}

// Cache is a set-associative cache with per-line MESI state and LRU
// replacement. It is used for both L1s (which only ever hold lines in
// Shared state because they are write-through) and L2s.
//
// The authoritative structure is a line-indexed residency map: idx[l]
// packs 1 + the global way index of line l with its MESI state, and holds
// 0 while the line is absent. Physical frames are allocated densely from
// zero (see internal/vm), so line numbers are dense and a flat slice works
// as the map. Every lookup-shaped operation — Lookup, Probe, SetState, the
// resident-update path of Insert — resolves through idx in O(1), and
// because the state rides in the same word, a Probe (the snoop path) costs
// exactly one load. The way arrays remain authoritative for geometry:
// victim selection on Insert still scans the line's set, which is the only
// remaining scan in the cache and runs once per fill rather than once per
// access.
//
// Set storage is allocated lazily, one set on its first Insert: building a
// paper-configuration 6 MiB L2 would otherwise zero megabytes per
// simulation run, and short runs touch a small fraction of the sets. The
// lazy path is invisible to callers — a never-touched set behaves exactly
// like a set full of Invalid entries.
type Cache struct {
	cfg   CacheConfig
	nsets uint64
	mask  uint64 // nsets-1 when nsets is a power of two
	pow2  bool
	ways  int
	// setBlock[s] is 1 + the block index of set s inside meta, or 0 while
	// the set is unallocated. Blocks are ways long.
	setBlock []int32
	meta     []wayMeta
	// idx[l] = (1 + global way index) | state<<wayBits for resident line
	// l, 0 when absent. Grows lazily with the largest line inserted.
	idx   []int32
	clock uint64
}

// NewCache builds an empty cache; it panics on an invalid configuration,
// which indicates a broken preset.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Lines() > wayMask {
		panic(fmt.Sprintf("mem: %d lines overflow the packed residency entry", cfg.Lines()))
	}
	nsets := uint64(cfg.Sets())
	return &Cache{
		cfg:      cfg,
		nsets:    nsets,
		mask:     nsets - 1,
		pow2:     nsets&(nsets-1) == 0,
		ways:     cfg.Ways,
		setBlock: make([]int32, nsets),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setOf(l Line) int {
	if c.pow2 {
		return int(uint64(l) & c.mask)
	}
	return int(uint64(l) % c.nsets)
}

// allocSet materializes a set's backing storage on its first Insert and
// returns the block offset.
func (c *Cache) allocSet(s int) int {
	off := len(c.meta)
	for i := 0; i < c.ways; i++ {
		c.meta = append(c.meta, wayMeta{tag: invalidTag})
	}
	c.setBlock[s] = int32(off/c.ways) + 1
	return off
}

// entry returns line l's packed residency entry, or 0 when absent.
func (c *Cache) entry(l Line) int32 {
	if uint64(l) < uint64(len(c.idx)) {
		return c.idx[l]
	}
	return 0
}

// Lookup returns the MESI state of a line, refreshing its LRU position on a
// hit. Invalid means a miss.
func (c *Cache) Lookup(l Line) MESIState {
	c.clock++
	if e := c.entry(l); e != 0 {
		c.meta[e&wayMask-1].lru = c.clock
		return MESIState(e >> wayBits)
	}
	return Invalid
}

// lookupWay is Lookup returning the matched way's index alongside the
// state (-1 on a miss). The write path reads and then transitions the
// state of the same way; returning the index lets it use setStateAt
// instead of a second residency resolution. Clock advance and LRU refresh
// are identical to Lookup. The index is valid until the next Insert into
// this cache.
func (c *Cache) lookupWay(l Line) (int, MESIState) {
	c.clock++
	if e := c.entry(l); e != 0 {
		ix := int(e&wayMask) - 1
		c.meta[ix].lru = c.clock
		return ix, MESIState(e >> wayBits)
	}
	return -1, Invalid
}

// Probe returns the state of a line without touching LRU state — the
// snooping path, which must not disturb the replacement order of the
// snooped cache. One load: absent lines decode to Invalid.
func (c *Cache) Probe(l Line) MESIState {
	return MESIState(c.entry(l) >> wayBits)
}

// SetState transitions the state of a resident line (e.g. on a snoop
// downgrade M→S or an invalidation →I). It reports whether the line was
// resident.
func (c *Cache) SetState(l Line, s MESIState) bool {
	e := c.entry(l)
	if e == 0 {
		return false
	}
	if s == Invalid {
		c.meta[e&wayMask-1].tag = invalidTag
		c.idx[l] = 0
		return true
	}
	c.idx[l] = e&wayMask | int32(s)<<wayBits
	return true
}

// setStateAt transitions the state of the resident line l known to sit at
// global way index ix (from lookupWay). It skips the residency resolution
// SetState would run; transitioning to Invalid retires the way.
func (c *Cache) setStateAt(ix int, l Line, s MESIState) {
	if s == Invalid {
		c.meta[ix].tag = invalidTag
		c.idx[l] = 0
		return
	}
	c.idx[l] = int32(ix+1) | int32(s)<<wayBits
}

// indexLine records line l as resident at global way index ix with state s.
func (c *Cache) indexLine(l Line, ix int, s MESIState) {
	for uint64(len(c.idx)) <= uint64(l) {
		c.idx = append(c.idx, 0)
	}
	c.idx[l] = int32(ix+1) | int32(s)<<wayBits
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line     Line
	State    MESIState // Modified means a write-back is required
	Happened bool
}

// Insert installs a line in the given state, evicting the LRU way of its
// set if necessary, and returns the eviction (if any). Inserting a line
// that is already resident just updates its state and LRU position.
func (c *Cache) Insert(l Line, s MESIState) Eviction {
	c.clock++
	if e := c.entry(l); e != 0 {
		ix := e & wayMask
		c.meta[ix-1].lru = c.clock
		c.idx[l] = ix | int32(s)<<wayBits
		return Eviction{}
	}
	return c.fill(l, s)
}

// insertNew is Insert for a line the caller has just established is not
// resident (a miss fill); it skips the residency probe. Calling it with a
// resident line would duplicate the line in its set.
func (c *Cache) insertNew(l Line, s MESIState) Eviction {
	c.clock++
	return c.fill(l, s)
}

// fill installs a non-resident line, choosing a victim way.
func (c *Cache) fill(l Line, s MESIState) Eviction {
	si := c.setOf(l)
	var off int
	if b := c.setBlock[si]; b == 0 {
		off = c.allocSet(si)
	} else {
		off = int(b-1) * c.ways
	}
	// One pass picks the victim: the first empty way wins outright,
	// otherwise the first way with the minimal LRU stamp.
	end := off + c.ways
	victim, free := off, false
	minLru := ^uint64(0)
	for w := off; w < end; w++ {
		m := &c.meta[w]
		if m.tag == invalidTag {
			victim, free = w, true
			break
		}
		if m.lru < minLru {
			minLru, victim = m.lru, w
		}
	}
	var ev Eviction
	if !free {
		old := Line(c.meta[victim].tag)
		ev = Eviction{Line: old, State: MESIState(c.idx[old] >> wayBits), Happened: true}
		c.idx[old] = 0
	}
	c.meta[victim] = wayMeta{tag: uint64(l), lru: c.clock}
	c.indexLine(l, victim, s)
	return ev
}

// Each calls f for every resident line and its state, in set order. It does
// not perturb LRU state; the invariant checkers use it to compare a cache's
// actual contents against their shadow model.
func (c *Cache) Each(f func(Line, MESIState)) {
	for s := range c.setBlock {
		b := c.setBlock[s]
		if b == 0 {
			continue
		}
		off := int(b-1) * c.ways
		for i := 0; i < c.ways; i++ {
			if t := c.meta[off+i].tag; t != invalidTag {
				f(Line(t), MESIState(c.idx[t]>>wayBits))
			}
		}
	}
}

// Len returns the number of resident lines.
func (c *Cache) Len() int {
	n := 0
	for i := range c.meta {
		if c.meta[i].tag != invalidTag {
			n++
		}
	}
	return n
}

// Flush invalidates every line without write-backs (test helper).
func (c *Cache) Flush() {
	for i := range c.meta {
		c.meta[i].tag = invalidTag
	}
	for i := range c.idx {
		c.idx[i] = 0
	}
}
