// Package mem implements the simulated memory hierarchy of Figure 3 and
// Table II: private write-through L1 data caches, L2 caches shared by core
// pairs with a MESI write-back protocol, and a snooping interconnect whose
// latency depends on whether a transfer stays inside a chip or crosses the
// front-side bus.
//
// The package exposes exactly the events the paper measures in Section VI-B:
// cache-line invalidations, snoop transactions (cache-to-cache transfers),
// and L2 misses, plus the intra-/inter-chip traffic split motivating
// Section III-A2.
package mem

import (
	"fmt"
)

// LineShift is log2 of the cache line size (64-byte lines, Table II).
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// Line is a physical cache-line number (physical address >> LineShift).
type Line uint64

// MESIState is the coherence state of a cached line.
type MESIState uint8

// The four MESI states.
const (
	Invalid MESIState = iota
	Shared
	Exclusive
	Modified
)

func (s MESIState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// CacheConfig describes the geometry and latency of one cache level.
type CacheConfig struct {
	SizeBytes int    // total capacity
	Ways      int    // set associativity
	Latency   uint64 // access latency in cycles
}

// Lines returns the number of cache lines the configuration holds.
func (c CacheConfig) Lines() int { return c.SizeBytes / LineSize }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.Lines() / c.Ways }

// Validate reports whether the geometry is consistent.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: size (%d) and ways (%d) must be positive", c.SizeBytes, c.Ways)
	}
	if c.SizeBytes%LineSize != 0 {
		return fmt.Errorf("mem: size %d not a multiple of the %d-byte line", c.SizeBytes, LineSize)
	}
	if c.Lines()%c.Ways != 0 {
		return fmt.Errorf("mem: %d lines not divisible by %d ways", c.Lines(), c.Ways)
	}
	return nil
}

// Table II configurations.
var (
	// DefaultL1Config: 32 KiB, 4-way, 2-cycle, write-through.
	DefaultL1Config = CacheConfig{SizeBytes: 32 << 10, Ways: 4, Latency: 2}
	// DefaultL2Config: 6 MiB, 8-way, 8-cycle, write-back MESI, shared by
	// two cores.
	DefaultL2Config = CacheConfig{SizeBytes: 6 << 20, Ways: 8, Latency: 8}
)

// cacheEntry is one way of one set.
type cacheEntry struct {
	line  Line
	state MESIState
	lru   uint64
}

// Cache is a set-associative cache with per-line MESI state and LRU
// replacement. It is used for both L1s (which only ever hold lines in
// Shared state because they are write-through) and L2s.
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheEntry
	clock uint64
}

// NewCache builds an empty cache; it panics on an invalid configuration,
// which indicates a broken preset.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]cacheEntry, cfg.Sets())
	backing := make([]cacheEntry, cfg.Lines())
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setOf(l Line) int { return int(uint64(l) % uint64(c.cfg.Sets())) }

// Lookup returns the MESI state of a line, refreshing its LRU position on a
// hit. Invalid means a miss.
func (c *Cache) Lookup(l Line) MESIState {
	c.clock++
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].lru = c.clock
			return set[i].state
		}
	}
	return Invalid
}

// Probe returns the state of a line without touching LRU state — the
// snooping path, which must not disturb the replacement order of the
// snooped cache.
func (c *Cache) Probe(l Line) MESIState {
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			return set[i].state
		}
	}
	return Invalid
}

// SetState transitions the state of a resident line (e.g. on a snoop
// downgrade M→S or an invalidation →I). It reports whether the line was
// resident.
func (c *Cache) SetState(l Line, s MESIState) bool {
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			if s == Invalid {
				set[i].state = Invalid
			} else {
				set[i].state = s
			}
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line     Line
	State    MESIState // Modified means a write-back is required
	Happened bool
}

// Insert installs a line in the given state, evicting the LRU way of its
// set if necessary, and returns the eviction (if any). Inserting a line
// that is already resident just updates its state and LRU position.
func (c *Cache) Insert(l Line, s MESIState) Eviction {
	c.clock++
	set := c.sets[c.setOf(l)]
	victim := -1
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].state = s
			set[i].lru = c.clock
			return Eviction{}
		}
		if set[i].state == Invalid && victim == -1 {
			victim = i
		}
	}
	var ev Eviction
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		ev = Eviction{Line: set[victim].line, State: set[victim].state, Happened: true}
	}
	set[victim] = cacheEntry{line: l, state: s, lru: c.clock}
	return ev
}

// Each calls f for every resident line and its state, in set order. It does
// not perturb LRU state; the invariant checkers use it to compare a cache's
// actual contents against their shadow model.
func (c *Cache) Each(f func(Line, MESIState)) {
	for _, set := range c.sets {
		for _, e := range set {
			if e.state != Invalid {
				f(e.line, e.state)
			}
		}
	}
}

// Len returns the number of resident lines.
func (c *Cache) Len() int {
	n := 0
	for _, set := range c.sets {
		for _, e := range set {
			if e.state != Invalid {
				n++
			}
		}
	}
	return n
}

// Flush invalidates every line without write-backs (test helper).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i].state = Invalid
		}
	}
}
