// Package mem implements the simulated memory hierarchy of Figure 3 and
// Table II: private write-through L1 data caches, L2 caches shared by core
// pairs with a MESI write-back protocol, and a snooping interconnect whose
// latency depends on whether a transfer stays inside a chip or crosses the
// front-side bus.
//
// The package exposes exactly the events the paper measures in Section VI-B:
// cache-line invalidations, snoop transactions (cache-to-cache transfers),
// and L2 misses, plus the intra-/inter-chip traffic split motivating
// Section III-A2.
package mem

import (
	"fmt"
)

// LineShift is log2 of the cache line size (64-byte lines, Table II).
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// Line is a physical cache-line number (physical address >> LineShift).
type Line uint64

// MESIState is the coherence state of a cached line.
type MESIState uint8

// The four MESI states.
const (
	Invalid MESIState = iota
	Shared
	Exclusive
	Modified
)

func (s MESIState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// CacheConfig describes the geometry and latency of one cache level.
type CacheConfig struct {
	SizeBytes int    // total capacity
	Ways      int    // set associativity
	Latency   uint64 // access latency in cycles
}

// Lines returns the number of cache lines the configuration holds.
func (c CacheConfig) Lines() int { return c.SizeBytes / LineSize }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.Lines() / c.Ways }

// Validate reports whether the geometry is consistent.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: size (%d) and ways (%d) must be positive", c.SizeBytes, c.Ways)
	}
	if c.SizeBytes%LineSize != 0 {
		return fmt.Errorf("mem: size %d not a multiple of the %d-byte line", c.SizeBytes, LineSize)
	}
	if c.Lines()%c.Ways != 0 {
		return fmt.Errorf("mem: %d lines not divisible by %d ways", c.Lines(), c.Ways)
	}
	return nil
}

// Table II configurations.
var (
	// DefaultL1Config: 32 KiB, 4-way, 2-cycle, write-through.
	DefaultL1Config = CacheConfig{SizeBytes: 32 << 10, Ways: 4, Latency: 2}
	// DefaultL2Config: 6 MiB, 8-way, 8-cycle, write-back MESI, shared by
	// two cores.
	DefaultL2Config = CacheConfig{SizeBytes: 6 << 20, Ways: 8, Latency: 8}
)

// cacheEntry is one way of one set.
type cacheEntry struct {
	line  Line
	state MESIState
	lru   uint64
}

// Cache is a set-associative cache with per-line MESI state and LRU
// replacement. It is used for both L1s (which only ever hold lines in
// Shared state because they are write-through) and L2s.
//
// Set storage is allocated lazily, one set on its first Insert: building a
// paper-configuration 6 MiB L2 would otherwise zero ~2.4 MB of entries per
// simulation run, and short runs touch a small fraction of the sets. The
// lazy path is invisible to callers — a never-touched set behaves exactly
// like a set full of Invalid entries.
type Cache struct {
	cfg   CacheConfig
	nsets uint64
	mask  uint64 // nsets-1 when nsets is a power of two
	pow2  bool
	ways  int
	// setBlock[s] is 1 + the block index of set s inside backing, or 0
	// while the set is unallocated. Blocks are ways entries long.
	setBlock []int32
	backing  []cacheEntry
	clock    uint64
}

// NewCache builds an empty cache; it panics on an invalid configuration,
// which indicates a broken preset.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := uint64(cfg.Sets())
	return &Cache{
		cfg:      cfg,
		nsets:    nsets,
		mask:     nsets - 1,
		pow2:     nsets&(nsets-1) == 0,
		ways:     cfg.Ways,
		setBlock: make([]int32, nsets),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setOf(l Line) int {
	if c.pow2 {
		return int(uint64(l) & c.mask)
	}
	return int(uint64(l) % c.nsets)
}

// setFor returns the entries of a set, or nil while the set is unallocated
// (equivalent to a set holding only Invalid entries).
func (c *Cache) setFor(s int) []cacheEntry {
	b := c.setBlock[s]
	if b == 0 {
		return nil
	}
	off := int(b-1) * c.ways
	return c.backing[off : off+c.ways : off+c.ways]
}

// allocSet materializes a set's backing storage on its first Insert.
func (c *Cache) allocSet(s int) []cacheEntry {
	off := len(c.backing)
	for i := 0; i < c.ways; i++ {
		c.backing = append(c.backing, cacheEntry{})
	}
	c.setBlock[s] = int32(off/c.ways) + 1
	return c.backing[off : off+c.ways : off+c.ways]
}

// Lookup returns the MESI state of a line, refreshing its LRU position on a
// hit. Invalid means a miss. The set extraction is open-coded (rather than
// going through setFor) because this is the single hottest function of the
// memory model: every simulated access runs one L1 and often one L2 lookup.
func (c *Cache) Lookup(l Line) MESIState {
	c.clock++
	b := c.setBlock[c.setOf(l)]
	if b == 0 {
		return Invalid
	}
	off := int(b-1) * c.ways
	set := c.backing[off : off+c.ways]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].lru = c.clock
			return set[i].state
		}
	}
	return Invalid
}

// lookupEntry is Lookup returning the resident entry itself (nil on a
// miss). The write path reads and then transitions the state of the same
// entry; returning the entry saves the second set search SetState would
// run. Clock advance and LRU refresh are identical to Lookup. The pointer
// is valid until the next Insert into this cache.
func (c *Cache) lookupEntry(l Line) *cacheEntry {
	c.clock++
	b := c.setBlock[c.setOf(l)]
	if b == 0 {
		return nil
	}
	off := int(b-1) * c.ways
	set := c.backing[off : off+c.ways]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].lru = c.clock
			return &set[i]
		}
	}
	return nil
}

// Probe returns the state of a line without touching LRU state — the
// snooping path, which must not disturb the replacement order of the
// snooped cache.
func (c *Cache) Probe(l Line) MESIState {
	b := c.setBlock[c.setOf(l)]
	if b == 0 {
		return Invalid
	}
	off := int(b-1) * c.ways
	set := c.backing[off : off+c.ways]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			return set[i].state
		}
	}
	return Invalid
}

// SetState transitions the state of a resident line (e.g. on a snoop
// downgrade M→S or an invalidation →I). It reports whether the line was
// resident.
func (c *Cache) SetState(l Line, s MESIState) bool {
	b := c.setBlock[c.setOf(l)]
	if b == 0 {
		return false
	}
	off := int(b-1) * c.ways
	set := c.backing[off : off+c.ways]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].state = s
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line     Line
	State    MESIState // Modified means a write-back is required
	Happened bool
}

// Insert installs a line in the given state, evicting the LRU way of its
// set if necessary, and returns the eviction (if any). Inserting a line
// that is already resident just updates its state and LRU position.
func (c *Cache) Insert(l Line, s MESIState) Eviction {
	c.clock++
	si := c.setOf(l)
	set := c.setFor(si)
	if set == nil {
		set = c.allocSet(si)
	}
	victim := -1
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].state = s
			set[i].lru = c.clock
			return Eviction{}
		}
		if set[i].state == Invalid && victim == -1 {
			victim = i
		}
	}
	var ev Eviction
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		ev = Eviction{Line: set[victim].line, State: set[victim].state, Happened: true}
	}
	set[victim] = cacheEntry{line: l, state: s, lru: c.clock}
	return ev
}

// Each calls f for every resident line and its state, in set order. It does
// not perturb LRU state; the invariant checkers use it to compare a cache's
// actual contents against their shadow model.
func (c *Cache) Each(f func(Line, MESIState)) {
	for s := range c.setBlock {
		for _, e := range c.setFor(s) {
			if e.state != Invalid {
				f(e.line, e.state)
			}
		}
	}
}

// Len returns the number of resident lines.
func (c *Cache) Len() int {
	n := 0
	for s := range c.setBlock {
		for _, e := range c.setFor(s) {
			if e.state != Invalid {
				n++
			}
		}
	}
	return n
}

// Flush invalidates every line without write-backs (test helper).
func (c *Cache) Flush() {
	for s := range c.setBlock {
		set := c.setFor(s)
		for i := range set {
			set[i].state = Invalid
		}
	}
}
