package mem

import (
	"math/rand"
	"testing"
)

// cacheEntry is the reference model's array-of-structs representation of
// one cache way; the production Cache stores the same three fields in
// parallel arrays.
type cacheEntry struct {
	line  Line
	state MESIState
	lru   uint64
}

// refCache is a straightforward eagerly-allocated model of a set-associative
// LRU cache, used to check that the lazily-allocated struct-of-arrays Cache
// behaves exactly like an eagerly-zeroed array-of-structs one.
type refCache struct {
	cfg   CacheConfig
	sets  [][]cacheEntry
	clock uint64
}

func newRefCache(cfg CacheConfig) *refCache {
	sets := make([][]cacheEntry, cfg.Sets())
	for i := range sets {
		sets[i] = make([]cacheEntry, cfg.Ways)
	}
	return &refCache{cfg: cfg, sets: sets}
}

func (c *refCache) setOf(l Line) int { return int(uint64(l) % uint64(c.cfg.Sets())) }

func (c *refCache) lookup(l Line) MESIState {
	c.clock++
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].lru = c.clock
			return set[i].state
		}
	}
	return Invalid
}

func (c *refCache) insert(l Line, s MESIState) Eviction {
	c.clock++
	set := c.sets[c.setOf(l)]
	victim := -1
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].state = s
			set[i].lru = c.clock
			return Eviction{}
		}
		if set[i].state == Invalid && victim == -1 {
			victim = i
		}
	}
	var ev Eviction
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		ev = Eviction{Line: set[victim].line, State: set[victim].state, Happened: true}
	}
	set[victim] = cacheEntry{line: l, state: s, lru: c.clock}
	return ev
}

func (c *refCache) setState(l Line, s MESIState) bool {
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			set[i].state = s
			return true
		}
	}
	return false
}

// TestLazyCacheMatchesEagerModel replays a random operation mix against the
// production cache and the eager reference model and requires identical
// results operation by operation — hits, states, LRU victims, evictions.
func TestLazyCacheMatchesEagerModel(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{SizeBytes: 4 << 10, Ways: 4, Latency: 2},  // 16 sets, power of two
		{SizeBytes: 12 << 10, Ways: 4, Latency: 8}, // 48 sets, not a power of two
	} {
		c := NewCache(cfg)
		ref := newRefCache(cfg)
		rng := rand.New(rand.NewSource(7))
		states := []MESIState{Shared, Exclusive, Modified}
		for op := 0; op < 20000; op++ {
			l := Line(rng.Intn(4 * cfg.Lines()))
			switch rng.Intn(4) {
			case 0:
				if got, want := c.Lookup(l), ref.lookup(l); got != want {
					t.Fatalf("cfg %+v op %d: Lookup(%d) = %v, want %v", cfg, op, l, got, want)
				}
			case 1:
				st := states[rng.Intn(len(states))]
				if got, want := c.Insert(l, st), ref.insert(l, st); got != want {
					t.Fatalf("cfg %+v op %d: Insert(%d) eviction = %+v, want %+v", cfg, op, l, got, want)
				}
			case 2:
				// Include Invalid: the production cache retires the way's
				// tag to the sentinel, the model only flips the state —
				// the two must stay indistinguishable.
				st := MESIState(rng.Intn(len(states) + 1))
				if got, want := c.SetState(l, st), ref.setState(l, st); got != want {
					t.Fatalf("cfg %+v op %d: SetState(%d) = %v, want %v", cfg, op, l, got, want)
				}
			case 3:
				if got, want := c.Probe(l), probeRef(ref, l); got != want {
					t.Fatalf("cfg %+v op %d: Probe(%d) = %v, want %v", cfg, op, l, got, want)
				}
			}
		}
		// Final content comparison through Each.
		got := map[Line]MESIState{}
		c.Each(func(l Line, s MESIState) { got[l] = s })
		want := map[Line]MESIState{}
		for _, set := range ref.sets {
			for _, e := range set {
				if e.state != Invalid {
					want[e.line] = e.state
				}
			}
		}
		if len(got) != len(want) || c.Len() != len(want) {
			t.Fatalf("cfg %+v: %d resident lines (Len %d), want %d", cfg, len(got), c.Len(), len(want))
		}
		for l, s := range want {
			if got[l] != s {
				t.Fatalf("cfg %+v: line %d state %v, want %v", cfg, l, got[l], s)
			}
		}
	}
}

func probeRef(c *refCache, l Line) MESIState {
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].state != Invalid && set[i].line == l {
			return set[i].state
		}
	}
	return Invalid
}

// TestLazyCacheAllocatesOnDemand checks that untouched sets consume no
// entry storage and that Flush keeps working on a partially-allocated cache.
func TestLazyCacheAllocatesOnDemand(t *testing.T) {
	c := NewCache(DefaultL2Config)
	if len(c.meta) != 0 {
		t.Fatalf("fresh cache allocated %d ways", len(c.meta))
	}
	c.Insert(0, Shared)
	c.Insert(1, Modified)
	if want := 2 * DefaultL2Config.Ways; len(c.meta) != want {
		t.Fatalf("backing holds %d ways after two inserts, want %d", len(c.meta), want)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after Flush = %d, want 0", c.Len())
	}
	if c.Lookup(0) != Invalid {
		t.Fatal("flushed line still resident")
	}
}
