package mem

import (
	"fmt"
	"math/bits"

	"tlbmap/internal/metrics"
	"tlbmap/internal/topology"
)

// MemLatency is the simulated main-memory access latency in cycles.
const MemLatency = 200

// FSBOccupancy is the number of cycles one inter-chip coherence transaction
// occupies the shared front-side bus. All off-chip traffic — memory fills
// and cross-chip coherence — serializes on this bus, so a placement that
// generates heavy inter-chip traffic steals bus bandwidth from everyone and
// every bus user pays queueing delay — the "improving the use of
// interconnections" objective of Section III-A2.
const FSBOccupancy = 90

// MemOccupancy is the number of cycles one 64-byte memory fill occupies the
// front-side bus.
const MemOccupancy = 40

// RemoteMemPenalty is the extra latency, in cycles, of a memory fill served
// by a remote NUMA node (NUMA extension; never charged on UMA machines).
const RemoteMemPenalty = 120

// System is the coherent memory hierarchy of the simulated machine: one
// private write-through L1 data cache per core, one write-back MESI L2 per
// L2 sharing domain (a core pair on Harpertown), and a snooping interconnect
// among the L2s.
//
// Instruction caches are not modelled: as Section III-A1 notes, only data
// accesses matter for thread mapping, since code pages are effectively
// read-only after load.
//
// System is not safe for concurrent use; the simulation engine serializes
// all accesses.
type System struct {
	machine *topology.Machine
	l1s     []*Cache // per core
	l2s     []*Cache // per L2 domain
	// domainCores[d] lists the cores sharing L2 domain d.
	domainCores [][]int
	// domainRep[d] is a representative core of domain d, for latency
	// queries between a requesting core and a supplying domain.
	domainRep []int
	ctr       []*metrics.Counters // per core

	// fsbFreeAt is the cycle at which the shared front-side bus becomes
	// free; inter-chip transactions queue behind it.
	fsbFreeAt uint64

	// Exact sharing directories. A real snooping bus broadcasts every miss
	// to every L2; modelling that as a probe loop over all domains makes
	// the simulator's miss cost scale with machine size even though most
	// probes find nothing. The directories record, per physical line, the
	// exact holder set as a bitmask, so the coherence paths visit only
	// actual holders — the simulated latencies and counters are unchanged
	// because probes that would have missed contribute neither.
	//
	// l2dir[line] is the mask of L2 domains holding the line (machines
	// with ≤64 domains; l2dirOK). l1dir[line] is the mask of cores whose
	// L1 holds the line (≤64 cores; l1dirOK). Beyond those sizes the
	// original probe-everyone loops are used. Both slices grow lazily with
	// the touched line range; lines past the end hold nothing.
	l2dirOK bool
	l1dirOK bool
	l2dir   []uint64
	l1dir   []uint64
	// sibMask[c] is the mask of core c's same-domain siblings (excluding
	// c itself); domainL1Mask[d] is the mask of all cores in domain d.
	// Only built when l1dirOK.
	sibMask      []uint64
	domainL1Mask []uint64

	// Interconnect geometry tables. Every coherence transaction charges
	// the latency between the requesting core and a supplying domain's
	// representative core, and asks whether the hop crosses a chip; both
	// answers are fixed by the topology, so they are computed once here
	// instead of walking the sharing tree per snoop. domLat[core*nDomains
	// + d] is Latency(core, domainRep[d]); domXChip is !SameChip of the
	// same pair. domTabOK gates the tables on machines small enough to
	// afford the n×domains footprint.
	domTabOK bool
	nDomains int
	domLat   []uint32
	domXChip []bool

	// obs, when non-nil, receives every access and coherence transition
	// (see Observer). All hook sites are nil-guarded so the disabled cost
	// is one pointer comparison.
	obs Observer

	// frameNode records which NUMA node each physical frame's memory
	// lives on (NUMA extension). Frames are allocated densely from zero
	// by the vm frame allocator, so a flat slice indexed by frame number
	// replaces the former map on the per-fill path; frames beyond the
	// slice default to node 0. Only consulted on machines with NUMA
	// nodes.
	frameNode []int32
	numa      bool

	l1cfg, l2cfg CacheConfig
}

// NewSystem builds the hierarchy for a machine using the given cache
// geometries (use DefaultL1Config/DefaultL2Config for Table II).
func NewSystem(m *topology.Machine, l1cfg, l2cfg CacheConfig) *System {
	n := m.NumCores()
	numDomains := 0
	for c := 0; c < n; c++ {
		if d := m.L2Domain(c); d+1 > numDomains {
			numDomains = d + 1
		}
	}
	s := &System{
		machine:     m,
		l1s:         make([]*Cache, n),
		l2s:         make([]*Cache, numDomains),
		domainCores: make([][]int, numDomains),
		domainRep:   make([]int, numDomains),
		ctr:         make([]*metrics.Counters, n),
		l1cfg:       l1cfg,
		l2cfg:       l2cfg,
	}
	for c := 0; c < n; c++ {
		s.l1s[c] = NewCache(l1cfg)
		s.ctr[c] = &metrics.Counters{}
		d := m.L2Domain(c)
		s.domainCores[d] = append(s.domainCores[d], c)
	}
	for d := 0; d < numDomains; d++ {
		s.l2s[d] = NewCache(l2cfg)
		s.domainRep[d] = s.domainCores[d][0]
	}
	s.l2dirOK = numDomains <= 64
	s.l1dirOK = n <= 64
	if s.l1dirOK {
		s.sibMask = make([]uint64, n)
		s.domainL1Mask = make([]uint64, numDomains)
		for d := 0; d < numDomains; d++ {
			var m uint64
			for _, c := range s.domainCores[d] {
				m |= 1 << uint(c)
			}
			s.domainL1Mask[d] = m
			for _, c := range s.domainCores[d] {
				s.sibMask[c] = m &^ (1 << uint(c))
			}
		}
	}
	s.nDomains = numDomains
	if s.domTabOK = n*numDomains <= 1<<20; s.domTabOK {
		s.domLat = make([]uint32, n*numDomains)
		s.domXChip = make([]bool, n*numDomains)
		for c := 0; c < n; c++ {
			for d := 0; d < numDomains; d++ {
				rep := s.domainRep[d]
				s.domLat[c*numDomains+d] = uint32(m.Latency(c, rep))
				s.domXChip[c*numDomains+d] = !m.SameChip(c, rep)
			}
		}
	}
	s.numa = m.NUMANode(0) >= 0
	return s
}

// repLatency returns the interconnect latency from core to domain d's
// representative and whether the hop crosses a chip boundary.
func (s *System) repLatency(core, d int) (uint64, bool) {
	if s.domTabOK {
		o := core*s.nDomains + d
		return uint64(s.domLat[o]), s.domXChip[o]
	}
	rep := s.domainRep[d]
	return s.machine.Latency(core, rep), !s.machine.SameChip(core, rep)
}

// l2Holders returns the directory mask of L2 domains holding line l.
func (s *System) l2Holders(l Line) uint64 {
	if uint64(l) < uint64(len(s.l2dir)) {
		return s.l2dir[l]
	}
	return 0
}

// l1Holders returns the directory mask of cores whose L1 holds line l.
func (s *System) l1Holders(l Line) uint64 {
	if uint64(l) < uint64(len(s.l1dir)) {
		return s.l1dir[l]
	}
	return 0
}

func (s *System) l2dirSet(l Line, d int) {
	for uint64(len(s.l2dir)) <= uint64(l) {
		s.l2dir = append(s.l2dir, 0)
	}
	s.l2dir[l] |= 1 << uint(d)
}

func (s *System) l2dirClear(l Line, d int) {
	if uint64(l) < uint64(len(s.l2dir)) {
		s.l2dir[l] &^= 1 << uint(d)
	}
}

func (s *System) l1dirSet(l Line, core int) {
	for uint64(len(s.l1dir)) <= uint64(l) {
		s.l1dir = append(s.l1dir, 0)
	}
	s.l1dir[l] |= 1 << uint(core)
}

func (s *System) l1dirClear(l Line, core int) {
	if uint64(l) < uint64(len(s.l1dir)) {
		s.l1dir[l] &^= 1 << uint(core)
	}
}

// PlaceFrame records the NUMA node a physical frame's memory lives on.
// The engine calls it when a page is first walked, using the configured
// data-placement policy. It is a no-op on UMA machines.
func (s *System) PlaceFrame(frame uint64, node int) {
	if !s.numa {
		return
	}
	for uint64(len(s.frameNode)) <= frame {
		s.frameNode = append(s.frameNode, 0)
	}
	s.frameNode[frame] = int32(node)
}

// nodeOf returns the NUMA node a frame's memory lives on (node 0 while
// unplaced, matching the former map's zero value).
func (s *System) nodeOf(frame uint64) int {
	if frame < uint64(len(s.frameNode)) {
		return int(s.frameNode[frame])
	}
	return 0
}

// NUMA reports whether the machine has NUMA nodes.
func (s *System) NUMA() bool { return s.numa }

// memFill charges one memory access by core for line l: bus occupancy,
// base DRAM latency, and — on NUMA machines — the remote-node penalty,
// with the local/remote split counted.
func (s *System) memFill(ctr *metrics.Counters, core int, l Line, now uint64) uint64 {
	lat := s.fsbAcquireFor(now, MemOccupancy)
	lat += MemLatency
	if s.numa {
		frame := uint64(l) >> 6 // LineShift == 6, PageShift == 12
		if s.nodeOf(frame) == s.machine.NUMANode(core) {
			ctr.Inc(metrics.LocalMemAccesses)
		} else {
			ctr.Inc(metrics.RemoteMemAccesses)
			lat += RemoteMemPenalty
		}
	}
	return lat
}

// Counters returns the per-core counter bank (live; not a copy).
func (s *System) Counters(core int) *metrics.Counters { return s.ctr[core] }

// TotalCounters returns the sum of all per-core banks.
func (s *System) TotalCounters() metrics.Counters {
	var total metrics.Counters
	for _, c := range s.ctr {
		total.Merge(c)
	}
	return total
}

// L1 exposes a core's L1 cache (tests and inspection).
func (s *System) L1(core int) *Cache { return s.l1s[core] }

// L2 exposes a domain's L2 cache (tests and inspection).
func (s *System) L2(domain int) *Cache { return s.l2s[domain] }

// NumDomains returns the number of L2 sharing domains.
func (s *System) NumDomains() int { return len(s.l2s) }

// Read simulates a data load of the given physical line by a core at the
// given cycle and returns the latency in cycles. now is the requesting
// core's clock; it orders transactions on the shared front-side bus.
func (s *System) Read(core int, l Line, now uint64) uint64 {
	ctr := s.ctr[core]
	if s.l1s[core].Lookup(l) != Invalid {
		ctr.Inc(metrics.L1Hits)
		if s.obs != nil {
			s.obs.OnRead(core, l, SrcL1, -1)
		}
		return s.l1cfg.Latency
	}
	ctr.Inc(metrics.L1Misses)
	lat := s.l1cfg.Latency + s.l2cfg.Latency

	src, supplier := SrcL2, -1
	d := s.machine.L2Domain(core)
	l2 := s.l2s[d]
	if l2.Lookup(l) != Invalid {
		ctr.Inc(metrics.L2Hits)
	} else {
		ctr.Inc(metrics.L2Misses)
		var extra uint64
		extra, src, supplier = s.fetchLine(core, d, l, now, false)
		lat += extra
	}
	// Fill the L1; write-through L1s never hold dirty data, so the
	// eviction is silent. The line is known non-resident: this L1 just
	// missed it, and the fetch path only invalidates remote domains.
	ev := s.l1s[core].insertNew(l, Shared)
	if s.l1dirOK {
		if ev.Happened {
			s.l1dirClear(ev.Line, core)
		}
		s.l1dirSet(l, core)
	}
	if s.obs != nil {
		if ev.Happened {
			s.obs.OnL1Drop(core, ev.Line)
		}
		s.obs.OnL1Install(core, l)
		s.obs.OnRead(core, l, src, supplier)
	}
	return lat
}

// Write simulates a data store of the given physical line by a core at the
// given cycle and returns the latency in cycles. L1s are write-through with
// no-write-allocate; L2s are write-back MESI.
func (s *System) Write(core int, l Line, now uint64) uint64 {
	ctr := s.ctr[core]
	l1Hit := s.l1s[core].Lookup(l) != Invalid
	if l1Hit {
		ctr.Inc(metrics.L1Hits)
	} else {
		ctr.Inc(metrics.L1Misses)
	}
	lat := s.l1cfg.Latency + s.l2cfg.Latency

	src, supplier := SrcL2, -1
	d := s.machine.L2Domain(core)
	l2 := s.l2s[d]
	// One set search covers both the state read and the M-upgrade write
	// (the way index stays valid: nothing below inserts into this L2
	// before the transition).
	w, st := l2.lookupWay(l)
	switch st {
	case Modified:
		// Already owned; nothing to do.
	case Exclusive:
		l2.setStateAt(w, l, Modified)
		if s.obs != nil {
			s.obs.OnL2State(d, l, Exclusive, Modified)
		}
	case Shared:
		// Upgrade: invalidate every remote copy (the MESI invalidation
		// storm of Section III-A1 that a good mapping minimizes).
		lat += s.invalidateRemote(core, d, l, now)
		l2.setStateAt(w, l, Modified)
		if s.obs != nil {
			s.obs.OnL2State(d, l, Shared, Modified)
		}
	case Invalid:
		ctr.Inc(metrics.L2Misses)
		var extra uint64
		extra, src, supplier = s.fetchLine(core, d, l, now, true)
		lat += extra
	}

	// Keep sibling L1s inside the same L2 domain coherent: a store by one
	// core invalidates the line in the other core's private L1.
	if s.l1dirOK {
		for m := s.l1Holders(l) & s.sibMask[core]; m != 0; m &= m - 1 {
			peer := bits.TrailingZeros64(m)
			if s.l1s[peer].SetState(l, Invalid) {
				s.l1dirClear(l, peer)
				ctr.Inc(metrics.Invalidations)
				if s.obs != nil {
					s.obs.OnL1Drop(peer, l)
				}
			}
		}
	} else {
		for _, peer := range s.domainCores[d] {
			if peer != core && s.l1s[peer].SetState(l, Invalid) {
				ctr.Inc(metrics.Invalidations)
				if s.obs != nil {
					s.obs.OnL1Drop(peer, l)
				}
			}
		}
	}
	if s.obs != nil {
		s.obs.OnWrite(core, l, src, supplier)
	}
	return lat
}

// fetchLine resolves an L2 miss over the snooping interconnect. exclusive
// selects a BusRdX (write miss: remote copies are invalidated) versus a
// BusRd (read miss: remote copies are downgraded to Shared). It returns the
// extra latency beyond the L2 access and installs the line in the
// requester's L2, reporting where the data came from (SrcCache with the
// supplying domain, or SrcMemory).
func (s *System) fetchLine(core, d int, l Line, now uint64, exclusive bool) (uint64, Source, int) {
	ctr := s.ctr[core]
	var lat uint64
	supplier := -1
	var supplierState MESIState
	if s.l2dirOK {
		for m := s.l2Holders(l) &^ (1 << uint(d)); m != 0; m &= m - 1 {
			supplier, supplierState = s.snoopDomain(ctr, bits.TrailingZeros64(m), l,
				exclusive, supplier, supplierState)
		}
	} else {
		for d2 := range s.l2s {
			if d2 != d {
				supplier, supplierState = s.snoopDomain(ctr, d2, l,
					exclusive, supplier, supplierState)
			}
		}
	}

	newState := Exclusive
	if exclusive {
		newState = Modified
	} else if supplier >= 0 {
		newState = Shared
	}

	src := SrcMemory
	if supplier >= 0 {
		// Cache-to-cache transfer: the snoop transaction of Figure 8.
		src = SrcCache
		ctr.Inc(metrics.SnoopTransactions)
		hop, xchip := s.repLatency(core, supplier)
		lat += hop
		if !xchip {
			ctr.Inc(metrics.IntraChipTraffic)
		} else {
			ctr.Inc(metrics.InterChipTraffic)
			lat += s.fsbAcquire(now + lat)
		}
		_ = supplierState
	} else {
		ctr.Inc(metrics.MemoryReads)
		lat += s.memFill(ctr, core, l, now+lat)
	}

	// Known non-resident: this L2 just missed the line.
	ev := s.l2s[d].insertNew(l, newState)
	if s.l2dirOK {
		if ev.Happened {
			s.l2dirClear(ev.Line, d)
		}
		s.l2dirSet(l, d)
	}
	if ev.Happened {
		if ev.State == Modified {
			ctr.Inc(metrics.MemoryWrites)
			if s.obs != nil {
				s.obs.OnWriteBack(d, ev.Line)
			}
		}
		if s.obs != nil {
			s.obs.OnL2Evict(d, ev.Line, ev.State)
		}
		// Enforce inclusion: drop the evicted line from the domain's L1s.
		if s.l1dirOK {
			for m := s.l1Holders(ev.Line) & s.domainL1Mask[d]; m != 0; m &= m - 1 {
				peer := bits.TrailingZeros64(m)
				if s.l1s[peer].SetState(ev.Line, Invalid) {
					s.l1dirClear(ev.Line, peer)
					if s.obs != nil {
						s.obs.OnL1Drop(peer, ev.Line)
					}
				}
			}
		} else {
			for _, peer := range s.domainCores[d] {
				if s.l1s[peer].SetState(ev.Line, Invalid) && s.obs != nil {
					s.obs.OnL1Drop(peer, ev.Line)
				}
			}
		}
	}
	if s.obs != nil {
		s.obs.OnL2Install(d, l, newState, src, supplier)
	}
	return lat, src, supplier
}

// snoopDomain resolves one remote domain's part in a snoop: it probes the
// domain's L2 and, if the line is held, invalidates (BusRdX) or downgrades
// (BusRd) the copy, threading the (supplier, state) accumulator through so
// the last Modified holder — or the first holder of any kind — supplies
// the line. It is a plain method rather than a closure in fetchLine so the
// per-holder call passes its state in registers.
func (s *System) snoopDomain(ctr *metrics.Counters, d2 int, l Line, exclusive bool, supplier int, supplierState MESIState) (int, MESIState) {
	st := s.l2s[d2].Probe(l)
	if st == Invalid {
		return supplier, supplierState
	}
	if supplier == -1 || st == Modified {
		supplier, supplierState = d2, st
	}
	if exclusive {
		// Invalidate every holder on a write miss.
		s.invalidateDomain(ctr, d2, l)
	} else if st != Shared {
		// Downgrade E/M to S on a read miss; a Modified supplier
		// writes the dirty line back as part of the transfer.
		if st == Modified {
			ctr.Inc(metrics.MemoryWrites)
			if s.obs != nil {
				s.obs.OnWriteBack(d2, l)
			}
		}
		s.l2s[d2].SetState(l, Shared)
		if s.obs != nil {
			s.obs.OnL2State(d2, l, st, Shared)
		}
	}
	return supplier, supplierState
}

// invalidateRemote invalidates the line in every other L2 domain (and the
// L1s above them), counting one invalidation per dropped cache line, and
// returns the interconnect latency of the farthest invalidation plus any
// front-side-bus queueing delay.
func (s *System) invalidateRemote(core, d int, l Line, now uint64) uint64 {
	ctr := s.ctr[core]
	var lat uint64
	crossChip := false
	if s.l2dirOK {
		for m := s.l2Holders(l) &^ (1 << uint(d)); m != 0; m &= m - 1 {
			d2 := bits.TrailingZeros64(m)
			s.invalidateDomain(ctr, d2, l)
			hop, xchip := s.repLatency(core, d2)
			if hop > lat {
				lat = hop
			}
			if !xchip {
				ctr.Inc(metrics.IntraChipTraffic)
			} else {
				ctr.Inc(metrics.InterChipTraffic)
				crossChip = true
			}
		}
	} else {
		for d2 := range s.l2s {
			if d2 == d || s.l2s[d2].Probe(l) == Invalid {
				continue
			}
			s.invalidateDomain(ctr, d2, l)
			hop, xchip := s.repLatency(core, d2)
			if hop > lat {
				lat = hop
			}
			if !xchip {
				ctr.Inc(metrics.IntraChipTraffic)
			} else {
				ctr.Inc(metrics.InterChipTraffic)
				crossChip = true
			}
		}
	}
	if crossChip {
		lat += s.fsbAcquire(now + lat)
	}
	return lat
}

// fsbAcquire reserves the shared front-side bus for one inter-chip
// coherence transaction starting no earlier than now, returning the
// queueing delay the requester suffers if the bus is still busy.
func (s *System) fsbAcquire(now uint64) uint64 {
	return s.fsbAcquireFor(now, FSBOccupancy)
}

// fsbAcquireFor reserves the bus for a transaction of the given occupancy.
func (s *System) fsbAcquireFor(now, occupancy uint64) uint64 {
	var wait uint64
	if s.fsbFreeAt > now {
		wait = s.fsbFreeAt - now
		now = s.fsbFreeAt
	}
	s.fsbFreeAt = now + occupancy
	return wait
}

// invalidateDomain drops a line from one L2 domain and its L1s, counting
// each dropped copy as a coherence invalidation.
func (s *System) invalidateDomain(ctr *metrics.Counters, d2 int, l Line) {
	// Drop the L1 copies first so that, when the L2 invalidation event
	// fires, the observers see the domain's invalidation as one atomic
	// action with inclusion already restored.
	if s.l1dirOK {
		for m := s.l1Holders(l) & s.domainL1Mask[d2]; m != 0; m &= m - 1 {
			c2 := bits.TrailingZeros64(m)
			if s.l1s[c2].SetState(l, Invalid) {
				s.l1dirClear(l, c2)
				ctr.Inc(metrics.Invalidations)
				if s.obs != nil {
					s.obs.OnL1Drop(c2, l)
				}
			}
		}
	} else {
		for _, c2 := range s.domainCores[d2] {
			if s.l1s[c2].SetState(l, Invalid) {
				ctr.Inc(metrics.Invalidations)
				if s.obs != nil {
					s.obs.OnL1Drop(c2, l)
				}
			}
		}
	}
	var old MESIState
	if s.obs != nil {
		old = s.l2s[d2].Probe(l)
	}
	if s.l2s[d2].SetState(l, Invalid) {
		ctr.Inc(metrics.Invalidations)
		if s.obs != nil {
			s.obs.OnL2State(d2, l, old, Invalid)
		}
	}
	s.l2dirClear(l, d2)
}

func fmtDirErr(which string, l Line, got, want uint64) error {
	return fmt.Errorf("mem: %s[%d] = %#x, want %#x", which, l, got, want)
}

// validateDirectories cross-checks the sharing directories against the
// actual cache contents (test helper; O(cache size)).
func (s *System) validateDirectories() error {
	if s.l2dirOK {
		want := map[Line]uint64{}
		for d, l2 := range s.l2s {
			l2.Each(func(l Line, st MESIState) {
				if st != Invalid {
					want[l] |= 1 << uint(d)
				}
			})
		}
		for l, m := range want {
			if s.l2Holders(l) != m {
				return fmtDirErr("l2dir", l, s.l2Holders(l), m)
			}
		}
		for li, m := range s.l2dir {
			if m != 0 && want[Line(li)] != m {
				return fmtDirErr("l2dir", Line(li), m, want[Line(li)])
			}
		}
	}
	if s.l1dirOK {
		want := map[Line]uint64{}
		for c, l1 := range s.l1s {
			l1.Each(func(l Line, st MESIState) {
				if st != Invalid {
					want[l] |= 1 << uint(c)
				}
			})
		}
		for l, m := range want {
			if s.l1Holders(l) != m {
				return fmtDirErr("l1dir", l, s.l1Holders(l), m)
			}
		}
		for li, m := range s.l1dir {
			if m != 0 && want[Line(li)] != m {
				return fmtDirErr("l1dir", Line(li), m, want[Line(li)])
			}
		}
	}
	return nil
}
