package mem

import (
	"tlbmap/internal/metrics"
	"tlbmap/internal/topology"
)

// MemLatency is the simulated main-memory access latency in cycles.
const MemLatency = 200

// FSBOccupancy is the number of cycles one inter-chip coherence transaction
// occupies the shared front-side bus. All off-chip traffic — memory fills
// and cross-chip coherence — serializes on this bus, so a placement that
// generates heavy inter-chip traffic steals bus bandwidth from everyone and
// every bus user pays queueing delay — the "improving the use of
// interconnections" objective of Section III-A2.
const FSBOccupancy = 90

// MemOccupancy is the number of cycles one 64-byte memory fill occupies the
// front-side bus.
const MemOccupancy = 40

// RemoteMemPenalty is the extra latency, in cycles, of a memory fill served
// by a remote NUMA node (NUMA extension; never charged on UMA machines).
const RemoteMemPenalty = 120

// System is the coherent memory hierarchy of the simulated machine: one
// private write-through L1 data cache per core, one write-back MESI L2 per
// L2 sharing domain (a core pair on Harpertown), and a snooping interconnect
// among the L2s.
//
// Instruction caches are not modelled: as Section III-A1 notes, only data
// accesses matter for thread mapping, since code pages are effectively
// read-only after load.
//
// System is not safe for concurrent use; the simulation engine serializes
// all accesses.
type System struct {
	machine *topology.Machine
	l1s     []*Cache // per core
	l2s     []*Cache // per L2 domain
	// domainCores[d] lists the cores sharing L2 domain d.
	domainCores [][]int
	// domainRep[d] is a representative core of domain d, for latency
	// queries between a requesting core and a supplying domain.
	domainRep []int
	ctr       []*metrics.Counters // per core

	// fsbFreeAt is the cycle at which the shared front-side bus becomes
	// free; inter-chip transactions queue behind it.
	fsbFreeAt uint64

	// obs, when non-nil, receives every access and coherence transition
	// (see Observer). All hook sites are nil-guarded so the disabled cost
	// is one pointer comparison.
	obs Observer

	// frameNode records which NUMA node each physical frame's memory
	// lives on (NUMA extension). Frames are allocated densely from zero
	// by the vm frame allocator, so a flat slice indexed by frame number
	// replaces the former map on the per-fill path; frames beyond the
	// slice default to node 0. Only consulted on machines with NUMA
	// nodes.
	frameNode []int32
	numa      bool

	l1cfg, l2cfg CacheConfig
}

// NewSystem builds the hierarchy for a machine using the given cache
// geometries (use DefaultL1Config/DefaultL2Config for Table II).
func NewSystem(m *topology.Machine, l1cfg, l2cfg CacheConfig) *System {
	n := m.NumCores()
	numDomains := 0
	for c := 0; c < n; c++ {
		if d := m.L2Domain(c); d+1 > numDomains {
			numDomains = d + 1
		}
	}
	s := &System{
		machine:     m,
		l1s:         make([]*Cache, n),
		l2s:         make([]*Cache, numDomains),
		domainCores: make([][]int, numDomains),
		domainRep:   make([]int, numDomains),
		ctr:         make([]*metrics.Counters, n),
		l1cfg:       l1cfg,
		l2cfg:       l2cfg,
	}
	for c := 0; c < n; c++ {
		s.l1s[c] = NewCache(l1cfg)
		s.ctr[c] = &metrics.Counters{}
		d := m.L2Domain(c)
		s.domainCores[d] = append(s.domainCores[d], c)
	}
	for d := 0; d < numDomains; d++ {
		s.l2s[d] = NewCache(l2cfg)
		s.domainRep[d] = s.domainCores[d][0]
	}
	s.numa = m.NUMANode(0) >= 0
	return s
}

// PlaceFrame records the NUMA node a physical frame's memory lives on.
// The engine calls it when a page is first walked, using the configured
// data-placement policy. It is a no-op on UMA machines.
func (s *System) PlaceFrame(frame uint64, node int) {
	if !s.numa {
		return
	}
	for uint64(len(s.frameNode)) <= frame {
		s.frameNode = append(s.frameNode, 0)
	}
	s.frameNode[frame] = int32(node)
}

// nodeOf returns the NUMA node a frame's memory lives on (node 0 while
// unplaced, matching the former map's zero value).
func (s *System) nodeOf(frame uint64) int {
	if frame < uint64(len(s.frameNode)) {
		return int(s.frameNode[frame])
	}
	return 0
}

// NUMA reports whether the machine has NUMA nodes.
func (s *System) NUMA() bool { return s.numa }

// memFill charges one memory access by core for line l: bus occupancy,
// base DRAM latency, and — on NUMA machines — the remote-node penalty,
// with the local/remote split counted.
func (s *System) memFill(ctr *metrics.Counters, core int, l Line, now uint64) uint64 {
	lat := s.fsbAcquireFor(now, MemOccupancy)
	lat += MemLatency
	if s.numa {
		frame := uint64(l) >> 6 // LineShift == 6, PageShift == 12
		if s.nodeOf(frame) == s.machine.NUMANode(core) {
			ctr.Inc(metrics.LocalMemAccesses)
		} else {
			ctr.Inc(metrics.RemoteMemAccesses)
			lat += RemoteMemPenalty
		}
	}
	return lat
}

// Counters returns the per-core counter bank (live; not a copy).
func (s *System) Counters(core int) *metrics.Counters { return s.ctr[core] }

// TotalCounters returns the sum of all per-core banks.
func (s *System) TotalCounters() metrics.Counters {
	var total metrics.Counters
	for _, c := range s.ctr {
		total.Merge(c)
	}
	return total
}

// L1 exposes a core's L1 cache (tests and inspection).
func (s *System) L1(core int) *Cache { return s.l1s[core] }

// L2 exposes a domain's L2 cache (tests and inspection).
func (s *System) L2(domain int) *Cache { return s.l2s[domain] }

// NumDomains returns the number of L2 sharing domains.
func (s *System) NumDomains() int { return len(s.l2s) }

// Read simulates a data load of the given physical line by a core at the
// given cycle and returns the latency in cycles. now is the requesting
// core's clock; it orders transactions on the shared front-side bus.
func (s *System) Read(core int, l Line, now uint64) uint64 {
	ctr := s.ctr[core]
	if s.l1s[core].Lookup(l) != Invalid {
		ctr.Inc(metrics.L1Hits)
		if s.obs != nil {
			s.obs.OnRead(core, l, SrcL1, -1)
		}
		return s.l1cfg.Latency
	}
	ctr.Inc(metrics.L1Misses)
	lat := s.l1cfg.Latency + s.l2cfg.Latency

	src, supplier := SrcL2, -1
	d := s.machine.L2Domain(core)
	l2 := s.l2s[d]
	if l2.Lookup(l) != Invalid {
		ctr.Inc(metrics.L2Hits)
	} else {
		ctr.Inc(metrics.L2Misses)
		var extra uint64
		extra, src, supplier = s.fetchLine(core, d, l, now, false)
		lat += extra
	}
	// Fill the L1; write-through L1s never hold dirty data, so the
	// eviction is silent.
	ev := s.l1s[core].Insert(l, Shared)
	if s.obs != nil {
		if ev.Happened {
			s.obs.OnL1Drop(core, ev.Line)
		}
		s.obs.OnL1Install(core, l)
		s.obs.OnRead(core, l, src, supplier)
	}
	return lat
}

// Write simulates a data store of the given physical line by a core at the
// given cycle and returns the latency in cycles. L1s are write-through with
// no-write-allocate; L2s are write-back MESI.
func (s *System) Write(core int, l Line, now uint64) uint64 {
	ctr := s.ctr[core]
	l1Hit := s.l1s[core].Lookup(l) != Invalid
	if l1Hit {
		ctr.Inc(metrics.L1Hits)
	} else {
		ctr.Inc(metrics.L1Misses)
	}
	lat := s.l1cfg.Latency + s.l2cfg.Latency

	src, supplier := SrcL2, -1
	d := s.machine.L2Domain(core)
	l2 := s.l2s[d]
	// One set search covers both the state read and the M-upgrade write
	// (the entry pointer stays valid: nothing below inserts into this L2
	// before the transition).
	e := l2.lookupEntry(l)
	st := Invalid
	if e != nil {
		st = e.state
	}
	switch st {
	case Modified:
		// Already owned; nothing to do.
	case Exclusive:
		e.state = Modified
		if s.obs != nil {
			s.obs.OnL2State(d, l, Exclusive, Modified)
		}
	case Shared:
		// Upgrade: invalidate every remote copy (the MESI invalidation
		// storm of Section III-A1 that a good mapping minimizes).
		lat += s.invalidateRemote(core, d, l, now)
		e.state = Modified
		if s.obs != nil {
			s.obs.OnL2State(d, l, Shared, Modified)
		}
	case Invalid:
		ctr.Inc(metrics.L2Misses)
		var extra uint64
		extra, src, supplier = s.fetchLine(core, d, l, now, true)
		lat += extra
	}

	// Keep sibling L1s inside the same L2 domain coherent: a store by one
	// core invalidates the line in the other core's private L1.
	for _, peer := range s.domainCores[d] {
		if peer != core && s.l1s[peer].SetState(l, Invalid) {
			ctr.Inc(metrics.Invalidations)
			if s.obs != nil {
				s.obs.OnL1Drop(peer, l)
			}
		}
	}
	if s.obs != nil {
		s.obs.OnWrite(core, l, src, supplier)
	}
	return lat
}

// fetchLine resolves an L2 miss over the snooping interconnect. exclusive
// selects a BusRdX (write miss: remote copies are invalidated) versus a
// BusRd (read miss: remote copies are downgraded to Shared). It returns the
// extra latency beyond the L2 access and installs the line in the
// requester's L2, reporting where the data came from (SrcCache with the
// supplying domain, or SrcMemory).
func (s *System) fetchLine(core, d int, l Line, now uint64, exclusive bool) (uint64, Source, int) {
	ctr := s.ctr[core]
	var lat uint64
	supplier := -1
	var supplierState MESIState
	for d2 := range s.l2s {
		if d2 == d {
			continue
		}
		st := s.l2s[d2].Probe(l)
		if st == Invalid {
			continue
		}
		if supplier == -1 || st == Modified {
			supplier, supplierState = d2, st
		}
		if exclusive {
			// Invalidate every holder on a write miss.
			s.invalidateDomain(ctr, d2, l)
		} else if st != Shared {
			// Downgrade E/M to S on a read miss; a Modified supplier
			// writes the dirty line back as part of the transfer.
			if st == Modified {
				ctr.Inc(metrics.MemoryWrites)
				if s.obs != nil {
					s.obs.OnWriteBack(d2, l)
				}
			}
			s.l2s[d2].SetState(l, Shared)
			if s.obs != nil {
				s.obs.OnL2State(d2, l, st, Shared)
			}
		}
	}

	newState := Exclusive
	if exclusive {
		newState = Modified
	} else if supplier >= 0 {
		newState = Shared
	}

	src := SrcMemory
	if supplier >= 0 {
		// Cache-to-cache transfer: the snoop transaction of Figure 8.
		src = SrcCache
		ctr.Inc(metrics.SnoopTransactions)
		rep := s.domainRep[supplier]
		lat += s.machine.Latency(core, rep)
		if s.machine.SameChip(core, rep) {
			ctr.Inc(metrics.IntraChipTraffic)
		} else {
			ctr.Inc(metrics.InterChipTraffic)
			lat += s.fsbAcquire(now + lat)
		}
		_ = supplierState
	} else {
		ctr.Inc(metrics.MemoryReads)
		lat += s.memFill(ctr, core, l, now+lat)
	}

	ev := s.l2s[d].Insert(l, newState)
	if ev.Happened {
		if ev.State == Modified {
			ctr.Inc(metrics.MemoryWrites)
			if s.obs != nil {
				s.obs.OnWriteBack(d, ev.Line)
			}
		}
		if s.obs != nil {
			s.obs.OnL2Evict(d, ev.Line, ev.State)
		}
		// Enforce inclusion: drop the evicted line from the domain's L1s.
		for _, peer := range s.domainCores[d] {
			if s.l1s[peer].SetState(ev.Line, Invalid) && s.obs != nil {
				s.obs.OnL1Drop(peer, ev.Line)
			}
		}
	}
	if s.obs != nil {
		s.obs.OnL2Install(d, l, newState, src, supplier)
	}
	return lat, src, supplier
}

// invalidateRemote invalidates the line in every other L2 domain (and the
// L1s above them), counting one invalidation per dropped cache line, and
// returns the interconnect latency of the farthest invalidation plus any
// front-side-bus queueing delay.
func (s *System) invalidateRemote(core, d int, l Line, now uint64) uint64 {
	ctr := s.ctr[core]
	var lat uint64
	crossChip := false
	for d2 := range s.l2s {
		if d2 == d {
			continue
		}
		if s.l2s[d2].Probe(l) == Invalid {
			continue
		}
		s.invalidateDomain(ctr, d2, l)
		rep := s.domainRep[d2]
		if cost := s.machine.Latency(core, rep); cost > lat {
			lat = cost
		}
		if s.machine.SameChip(core, rep) {
			ctr.Inc(metrics.IntraChipTraffic)
		} else {
			ctr.Inc(metrics.InterChipTraffic)
			crossChip = true
		}
	}
	if crossChip {
		lat += s.fsbAcquire(now + lat)
	}
	return lat
}

// fsbAcquire reserves the shared front-side bus for one inter-chip
// coherence transaction starting no earlier than now, returning the
// queueing delay the requester suffers if the bus is still busy.
func (s *System) fsbAcquire(now uint64) uint64 {
	return s.fsbAcquireFor(now, FSBOccupancy)
}

// fsbAcquireFor reserves the bus for a transaction of the given occupancy.
func (s *System) fsbAcquireFor(now, occupancy uint64) uint64 {
	var wait uint64
	if s.fsbFreeAt > now {
		wait = s.fsbFreeAt - now
		now = s.fsbFreeAt
	}
	s.fsbFreeAt = now + occupancy
	return wait
}

// invalidateDomain drops a line from one L2 domain and its L1s, counting
// each dropped copy as a coherence invalidation.
func (s *System) invalidateDomain(ctr *metrics.Counters, d2 int, l Line) {
	// Drop the L1 copies first so that, when the L2 invalidation event
	// fires, the observers see the domain's invalidation as one atomic
	// action with inclusion already restored.
	for _, c2 := range s.domainCores[d2] {
		if s.l1s[c2].SetState(l, Invalid) {
			ctr.Inc(metrics.Invalidations)
			if s.obs != nil {
				s.obs.OnL1Drop(c2, l)
			}
		}
	}
	var old MESIState
	if s.obs != nil {
		old = s.l2s[d2].Probe(l)
	}
	if s.l2s[d2].SetState(l, Invalid) {
		ctr.Inc(metrics.Invalidations)
		if s.obs != nil {
			s.obs.OnL2State(d2, l, old, Invalid)
		}
	}
}
