package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays the log into (seq, payload) pairs.
func collect(t *testing.T, l *Log) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma"), bytes.Repeat([]byte{0xAB}, 5000)}
	for i, p := range want {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
	seqs, payloads := collect(t, l)
	if len(seqs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(seqs), len(want))
	}
	for i := range want {
		if seqs[i] != uint64(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Errorf("record %d: seq=%d payload=%q, want seq=%d payload=%q",
				i, seqs[i], payloads[i], i+1, want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives, appends continue after the tail.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Truncated != nil {
		t.Fatalf("clean log reported truncation: %v", l2.Truncated)
	}
	seqs, _ = collect(t, l2)
	if len(seqs) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(seqs), len(want))
	}
	seq, err := l2.Append([]byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)+1) {
		t.Errorf("post-reopen Append seq = %d, want %d", seq, len(want)+1)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every ~2 records rotate.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 5 {
		t.Fatalf("expected many small segments, got %d", segs)
	}
	seqs, _ := collect(t, l)
	if len(seqs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(seqs), n)
	}

	// Compact through seq 10: only records 11..20 remain.
	removed, err := l.Compact(10)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("Compact removed nothing")
	}
	seqs, _ = collect(t, l)
	for _, s := range seqs {
		if s <= 10-2 { // whole-segment granularity: at most one extra segment survives
			t.Errorf("record %d survived compaction through 10", s)
		}
	}
	if seqs[len(seqs)-1] != n {
		t.Errorf("newest record after compaction = %d, want %d", seqs[len(seqs)-1], n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen post-compaction: the gap before the first surviving segment
	// is legal.
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Truncated != nil {
		t.Fatalf("compacted log reported truncation: %v", l2.Truncated)
	}
	if last := l2.LastSeq(); last != n {
		t.Errorf("LastSeq after reopen = %d, want %d", last, n)
	}
}

func TestReserveSkipsSequenceNumbers(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	l.Reserve(100)
	seq, err := l.Append([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 100 {
		t.Fatalf("Append after Reserve(100) = seq %d, want 100", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Truncated != nil {
		t.Fatalf("gapped log reported truncation: %v", l2.Truncated)
	}
	seqs, _ := collect(t, l2)
	if len(seqs) != 2 || seqs[1] != 100 {
		t.Fatalf("replayed seqs %v, want [1 100]", seqs)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: policy, Interval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := l.Append([]byte("payload")); err != nil {
					t.Fatal(err)
				}
			}
			if policy == SyncAlways && l.Synced() != 10 {
				t.Errorf("SyncAlways: Synced() = %d, want 10", l.Synced())
			}
			if policy == SyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for l.Synced() != 10 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if l.Synced() != 10 {
					t.Errorf("SyncInterval: Synced() = %d after interval, want 10", l.Synced())
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if l.Synced() != 10 {
				t.Errorf("after explicit Sync: Synced() = %d, want 10", l.Synced())
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAbortLosesOnlyUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil { // records 1..5 reach the OS
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("lost-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort() // crash: 6..10 were only in the userspace buffer

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := collect(t, l2)
	if len(seqs) != 5 || seqs[len(seqs)-1] != 5 {
		t.Fatalf("after abort: recovered seqs %v, want exactly 1..5", seqs)
	}
	if _, err := l2.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 6 {
		t.Errorf("append after aborted tail: LastSeq = %d, want 6", l2.LastSeq())
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("Append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync on closed log: %v, want ErrClosed", err)
	}
	if err := l.Replay(func(uint64, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Replay on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{MaxRecordBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, 129)); err == nil {
		t.Fatal("Append accepted a record over MaxRecordBytes")
	}
	if _, err := l.Append(make([]byte, 128)); err != nil {
		t.Fatalf("Append rejected a record at the cap: %v", err)
	}
}

func TestBlobRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if _, err := ReadBlob(path); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("ReadBlob on missing file: %v, want ErrNoBlob", err)
	}
	payload := bytes.Repeat([]byte("snapshot-bytes"), 100)
	if err := WriteBlobAtomic(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlob(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("blob payload mismatch")
	}
	// Overwrite atomically: the new content fully replaces the old.
	if err := WriteBlobAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadBlob(path); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("blob after overwrite = %q, want v2", got)
	}

	// Flip one byte anywhere: ReadBlob must reject, never misread.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadBlob(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: ReadBlob err = %v, want ErrCorrupt", i, err)
		}
	}
}
