package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot blobs are single-file checkpoints written atomically: the
// payload goes to a temp file in the same directory, is fsynced, and is
// renamed over the destination, so a crash mid-write leaves either the old
// snapshot or the new one — never a half-written file. The header carries
// a magic, a version and a CRC32 over the payload; ReadBlob verifies all
// three, so a corrupted snapshot is a clean ErrCorrupt the recovery path
// can react to (fall back to WAL-only replay) instead of garbage state.

// blobMagic identifies a blob file; the byte after it is the format
// version.
var blobMagic = []byte("tlbwblob")

const blobVersion = 1

const blobHeader = 8 + 1 + 4 + 4 // magic, version, crc, payload length

// ErrNoBlob is returned by ReadBlob when the file does not exist.
var ErrNoBlob = errors.New("wal: no blob")

// WriteBlobAtomic writes payload to path with the checksummed blob header
// via a temp file and rename. The containing directory is fsynced so the
// rename itself is durable.
func WriteBlobAtomic(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: blob temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after the rename succeeds

	hdr := make([]byte, blobHeader)
	copy(hdr, blobMagic)
	hdr[8] = blobVersion
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[13:17], uint32(len(payload)))
	if _, err := tmp.Write(hdr); err == nil {
		_, err = tmp.Write(payload)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		err = fmt.Errorf("wal: blob write: %w", err)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("wal: blob rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadBlob reads and verifies a blob written by WriteBlobAtomic. A missing
// file is ErrNoBlob; a damaged one is ErrCorrupt (wrapped with detail).
func ReadBlob(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNoBlob, path)
		}
		return nil, fmt.Errorf("wal: blob read: %w", err)
	}
	if len(data) < blobHeader || string(data[:8]) != string(blobMagic) {
		return nil, fmt.Errorf("%w: %s: bad blob header", ErrCorrupt, path)
	}
	if data[8] != blobVersion {
		return nil, fmt.Errorf("%w: %s: blob version %d (want %d)", ErrCorrupt, path, data[8], blobVersion)
	}
	want := binary.LittleEndian.Uint32(data[9:13])
	plen := int(binary.LittleEndian.Uint32(data[13:17]))
	payload := data[blobHeader:]
	if len(payload) != plen {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d", ErrCorrupt, path, len(payload), plen)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: %s: payload checksum mismatch", ErrCorrupt, path)
	}
	return payload, nil
}
