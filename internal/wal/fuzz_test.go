package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// validLogBytes frames the given payloads exactly as Append does and
// returns the raw segment bytes — the honest starting point the fuzzer
// mutates.
func validLogBytes(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	for i, p := range payloads {
		var hdr [recordHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(i+1))
		crc := crc32.Update(crc32.Checksum(hdr[8:16], crcTable), crcTable, p)
		binary.LittleEndian.PutUint32(hdr[4:8], crc)
		buf.Write(hdr[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzWALRecovery feeds arbitrary bytes to the recovery scanner as a
// segment file. Whatever the damage — truncation, bit flips, splices,
// pure garbage — recovery must:
//
//   - never panic and never return a dirty error from Open;
//   - replay only records that parse and checksum, with strictly
//     increasing sequence numbers;
//   - be idempotent: re-opening the repaired directory reports no further
//     truncation and replays byte-identical records.
func FuzzWALRecovery(f *testing.F) {
	base := validLogBytes(
		[]byte("alpha"),
		[]byte(""),
		[]byte("the quick brown fox"),
		bytes.Repeat([]byte{0xEE}, 100),
		[]byte("tail"),
	)
	f.Add(base)                                // clean log
	f.Add(base[:len(base)-3])                  // torn tail
	f.Add(base[:recordHeader/2])               // torn header
	f.Add([]byte{})                            // empty file
	f.Add(bytes.Repeat([]byte{0xFF}, 64))      // garbage
	flipped := append([]byte(nil), base...)    // checksum-breaking flip
	flipped[recordHeader+2] ^= 0x80
	f.Add(flipped)
	spliced := append(append([]byte(nil), base[:30]...), base...) // misaligned splice
	f.Add(spliced)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, fmt.Sprintf("%016x%s", 1, segmentSuffix))
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// SyncNever: fsync adds nothing to the recovery logic under test
		// and would dominate the fuzzing loop.
		l, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatalf("Open on damaged log must repair, not fail: %v", err)
		}
		var seqs []uint64
		var payloads [][]byte
		prev := uint64(0)
		err = l.Replay(func(seq uint64, payload []byte) error {
			if seq <= prev {
				t.Fatalf("replay yielded non-increasing seq %d after %d", seq, prev)
			}
			prev = seq
			seqs = append(seqs, seq)
			payloads = append(payloads, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			t.Fatalf("Replay after repair: %v", err)
		}
		// The repaired log accepts appends past the surviving tail.
		appended, err := l.Append([]byte("post-repair"))
		if err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		if appended <= prev {
			t.Fatalf("post-repair append seq %d not past surviving tail %d", appended, prev)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Idempotence: the repaired directory is now a clean log.
		l2, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer l2.Close()
		if l2.Truncated != nil {
			t.Fatalf("repair was not idempotent: second Open still truncates: %v", l2.Truncated)
		}
		i := 0
		err = l2.Replay(func(seq uint64, payload []byte) error {
			if i < len(seqs) {
				if seq != seqs[i] || !bytes.Equal(payload, payloads[i]) {
					t.Fatalf("record %d changed across reopen", i)
				}
			} else if seq != appended || !bytes.Equal(payload, []byte("post-repair")) {
				t.Fatalf("unexpected extra record seq=%d", seq)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != len(seqs)+1 {
			t.Fatalf("second replay saw %d records, want %d", i, len(seqs)+1)
		}
	})
}
