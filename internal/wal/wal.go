// Package wal implements the durability layer of the mapping service: a
// segmented, length-prefixed, checksummed append-only log plus atomic
// checksummed snapshot blobs.
//
// The service's contract is that an acknowledged ingest batch survives a
// crash, so the log's failure model is asymmetric: appends must be cheap
// and recovery must be paranoid. Every record carries a CRC32 (IEEE) over
// its sequence number and payload, segments rotate at a size threshold so
// snapshots can compact the log by deleting whole files, and Open scans
// the existing segments record by record — the first torn or corrupted
// record truncates the log at that exact byte offset (and drops every
// later segment) instead of panicking or serving a silently wrong tail.
// The chaos battery in internal/serve and FuzzWALRecovery here hammer
// exactly this path: arbitrary truncation and byte flips must always
// yield a valid prefix or a clean error.
//
// Sync policy is configurable because durability and throughput trade
// off: SyncAlways fsyncs every append (an acknowledged record survives
// machine failure), SyncInterval fsyncs on a timer (bounded loss window),
// SyncNever leaves flushing to segment rotation and Close (a process
// crash — SIGKILL — still loses nothing that reached the OS, but machine
// failure may cost the tail). Recovery handles all three identically: it
// trusts nothing past the first bad byte.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways flushes and fsyncs on every Append: an acknowledged
	// record survives machine failure. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes and fsyncs on a background timer
	// (Options.Interval): loss after machine failure is bounded by the
	// interval. Process crashes (SIGKILL) lose only userspace-buffered
	// bytes since the last flush.
	SyncInterval
	// SyncNever flushes on rotation and Close only. Fastest; a machine
	// failure may cost the whole active segment's tail.
	SyncNever
)

// ParseSyncPolicy parses the CLI spellings always|interval|never.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never", "none":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// Options tunes a Log. The zero value selects every default.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment that reaches it
	// is flushed, fsynced and closed, and the next record starts a new
	// one (default 1 MiB).
	SegmentBytes int
	// Policy selects the sync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval flush period (default 100ms).
	Interval time.Duration
	// MaxRecordBytes bounds one record's payload; larger length prefixes
	// are treated as corruption during recovery and rejected at Append
	// (default 16 MiB).
	MaxRecordBytes int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 16 << 20
	}
	return o
}

// Record framing: every record is
//
//	u32le payload length
//	u32le CRC32-IEEE over (seq || payload)
//	u64le sequence number
//	payload bytes
//
// Sequence numbers are assigned by Append, strictly increasing. Gaps are
// legal (they arise when a truncated tail is superseded by records already
// folded into a snapshot), so recovery only requires monotonicity.
const recordHeader = 4 + 4 + 8

const segmentSuffix = ".wal"

var crcTable = crc32.IEEETable

// ErrCorrupt reports a record that failed its checksum or structural
// validation during recovery. Open never returns it — corruption truncates
// the log — but ReadBlob and the low-level scanners surface it.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by operations on a closed (or aborted) log.
var ErrClosed = errors.New("wal: log closed")

// segment is one on-disk log file, named %016x.wal by its first sequence
// number.
type segment struct {
	path     string
	first    uint64 // seq of its first record (== file-name value)
	last     uint64 // seq of its last record (0 when empty)
	size     int64  // valid bytes (post-truncation)
	nrecords int
}

// Log is a segmented append-only record log rooted at one directory. It is
// safe for one appender at a time; Append, Sync, Compact and Close
// serialize internally.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segments []segment // completed segments, oldest first
	active   *os.File  // current segment file (nil until first append)
	actInfo  segment
	buf      []byte // userspace append buffer (flushed per policy)
	nextSeq  uint64 // seq the next Append will get
	synced   uint64 // last seq known flushed+fsynced
	closed   bool

	// Truncated reports recovery's verdict on the pre-existing files:
	// non-nil when Open found a torn or corrupted record and cut the log
	// there. The error is informational — the log is usable.
	Truncated error

	stopSync chan struct{} // interval syncer shutdown
	syncDone chan struct{}
}

// Open opens (or creates) the log rooted at dir, scanning every existing
// segment in order and truncating the log at the first torn or corrupted
// record: the file holding it is truncated at that byte offset and every
// later segment is deleted, so the surviving log is always a valid prefix.
// The verdict is recorded in Log.Truncated. New appends continue after the
// highest surviving sequence number.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scan walks the existing segments oldest-first, validating every record
// and truncating at the first bad one.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64); err != nil {
			continue // foreign file; leave it alone
		}
		paths = append(paths, filepath.Join(l.dir, name))
	}
	sort.Strings(paths) // %016x names sort numerically
	prevSeq := uint64(0)
	for i, path := range paths {
		seg, bad, err := scanSegment(path, prevSeq, l.opts.MaxRecordBytes)
		if err != nil {
			return err
		}
		if bad != nil {
			// Cut the log here: truncate this file at the bad offset and
			// drop every later segment.
			if err := os.Truncate(path, seg.size); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			for _, later := range paths[i+1:] {
				if err := os.Remove(later); err != nil {
					return fmt.Errorf("wal: drop post-corruption segment %s: %w", later, err)
				}
			}
			l.Truncated = bad
			if seg.nrecords > 0 {
				l.segments = append(l.segments, seg)
				prevSeq = seg.last
			} else if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: drop empty segment %s: %w", path, err)
			}
			break
		}
		if seg.nrecords == 0 {
			// A crash between segment creation and the first record.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: drop empty segment %s: %w", path, err)
			}
			continue
		}
		l.segments = append(l.segments, seg)
		prevSeq = seg.last
	}
	if prevSeq >= l.nextSeq {
		l.nextSeq = prevSeq + 1
	}
	l.synced = prevSeq
	return nil
}

// scanSegment validates one segment file record by record. It returns the
// segment info covering the valid prefix plus, when a torn or corrupted
// record was found, a non-nil bad error describing it (seg.size is then
// the truncation offset).
func scanSegment(path string, prevSeq uint64, maxRecord int) (seg segment, bad error, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	first, perr := strconv.ParseUint(strings.TrimSuffix(filepath.Base(path), segmentSuffix), 16, 64)
	if perr != nil {
		return segment{}, nil, fmt.Errorf("wal: segment name %s: %w", path, perr)
	}
	seg = segment{path: path, first: first}
	off := 0
	for off < len(data) {
		n, seq, payload, rerr := parseRecord(data[off:], maxRecord)
		if rerr != nil {
			return seg, fmt.Errorf("%s at offset %d: %w", filepath.Base(path), off, rerr), nil
		}
		if seq <= prevSeq {
			return seg, fmt.Errorf("%s at offset %d: %w: sequence %d not after %d",
				filepath.Base(path), off, ErrCorrupt, seq, prevSeq), nil
		}
		_ = payload
		prevSeq = seq
		seg.last = seq
		seg.nrecords++
		off += n
		seg.size = int64(off)
	}
	return seg, nil, nil
}

// parseRecord decodes one record from the front of data, returning its
// total length. A short buffer, oversized length or checksum mismatch is
// an ErrCorrupt-wrapped error.
func parseRecord(data []byte, maxRecord int) (n int, seq uint64, payload []byte, err error) {
	if len(data) < recordHeader {
		return 0, 0, nil, fmt.Errorf("%w: torn header (%d bytes)", ErrCorrupt, len(data))
	}
	plen := int(binary.LittleEndian.Uint32(data[0:4]))
	if plen > maxRecord {
		return 0, 0, nil, fmt.Errorf("%w: length %d exceeds record cap %d", ErrCorrupt, plen, maxRecord)
	}
	if len(data) < recordHeader+plen {
		return 0, 0, nil, fmt.Errorf("%w: torn payload (%d of %d bytes)", ErrCorrupt, len(data)-recordHeader, plen)
	}
	want := binary.LittleEndian.Uint32(data[4:8])
	seq = binary.LittleEndian.Uint64(data[8:16])
	payload = data[recordHeader : recordHeader+plen]
	crc := crc32.Update(crc32.Checksum(data[8:16], crcTable), crcTable, payload)
	if crc != want {
		return 0, 0, nil, fmt.Errorf("%w: checksum mismatch on record %d", ErrCorrupt, seq)
	}
	return recordHeader + plen, seq, payload, nil
}

// Replay calls fn for every record currently in the log, oldest first,
// including records buffered but not yet flushed (the in-memory buffer is
// flushed first). Replay stops early if fn returns an error.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.flushLocked(false); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := append([]segment(nil), l.segments...)
	if l.active != nil && l.actInfo.nrecords > 0 {
		segs = append(segs, l.actInfo)
	}
	l.mu.Unlock()

	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", seg.path, err)
		}
		if int64(len(data)) > seg.size {
			data = data[:seg.size]
		}
		off := 0
		for off < len(data) {
			n, seq, payload, err := parseRecord(data[off:], l.opts.MaxRecordBytes)
			if err != nil {
				// scan() validated these bytes at Open and appends are
				// framed by us, so this indicates concurrent external
				// damage; surface it rather than guessing.
				return fmt.Errorf("wal: replay %s at offset %d: %w", seg.path, off, err)
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// Append adds one record and returns its sequence number. Durability at
// return time depends on the sync policy: SyncAlways has flushed and
// fsynced, the others may still hold the record in the userspace buffer.
func (l *Log) Append(payload []byte) (uint64, error) {
	return l.append(payload, l.opts.Policy == SyncAlways)
}

// AppendBuffered adds one record like Append but never applies the sync
// policy: the bytes reach the userspace buffer (and the OS only on
// rotation), and making them durable is the caller's job via Sync. Group
// committers use it to batch many appends under a single fsync while
// still releasing acks only after that fsync covers them.
func (l *Log) AppendBuffered(payload []byte) (uint64, error) {
	return l.append(payload, false)
}

func (l *Log) append(payload []byte, syncNow bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > l.opts.MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds cap %d", len(payload), l.opts.MaxRecordBytes)
	}
	if l.active == nil {
		if err := l.openSegmentLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	l.nextSeq++

	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(crc32.Checksum(hdr[8:16], crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	if l.actInfo.nrecords == 0 {
		l.actInfo.first = seq
	}
	l.actInfo.last = seq
	l.actInfo.nrecords++
	l.actInfo.size += int64(recordHeader + len(payload))

	if syncNow {
		if err := l.flushLocked(true); err != nil {
			return 0, err
		}
	}
	if l.actInfo.size >= int64(l.opts.SegmentBytes) {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// NextSeq returns the sequence number the next Append will be assigned.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// LastSeq returns the sequence number of the newest record (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeqLocked()
}

func (l *Log) lastSeqLocked() uint64 {
	if l.actInfo.nrecords > 0 {
		return l.actInfo.last
	}
	if n := len(l.segments); n > 0 {
		return l.segments[n-1].last
	}
	return 0
}

// Reserve raises the next append sequence number to at least next. The
// durability layer uses it after replaying a snapshot newer than the
// surviving log tail, so re-appended records never reuse a sequence number
// a snapshot already covers.
func (l *Log) Reserve(next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if next > l.nextSeq {
		l.nextSeq = next
	}
}

// Synced returns the newest sequence number known flushed and fsynced.
func (l *Log) Synced() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// openSegmentLocked starts the segment whose first record will be nextSeq.
func (l *Log) openSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf("%016x%s", l.nextSeq, segmentSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.active = f
	l.actInfo = segment{path: path, first: l.nextSeq}
	return nil
}

// flushLocked writes the userspace buffer to the active segment and, when
// sync is true, fsyncs it.
func (l *Log) flushLocked(sync bool) error {
	if len(l.buf) > 0 {
		if _, err := l.active.Write(l.buf); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		l.buf = l.buf[:0]
	}
	if sync && l.active != nil {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		if l.actInfo.last > l.synced {
			l.synced = l.actInfo.last
		}
	}
	return nil
}

// rotateLocked flushes, fsyncs and closes the active segment and retires
// it to the completed list.
func (l *Log) rotateLocked() error {
	if l.active == nil {
		return nil
	}
	if err := l.flushLocked(true); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	if l.actInfo.nrecords > 0 {
		l.segments = append(l.segments, l.actInfo)
	} else if err := os.Remove(l.actInfo.path); err != nil {
		return fmt.Errorf("wal: drop empty segment: %w", err)
	}
	l.active = nil
	l.actInfo = segment{}
	return nil
}

// Sync flushes the userspace buffer and fsyncs the active segment — the
// drain path's explicit barrier, independent of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active == nil {
		return nil
	}
	return l.flushLocked(true)
}

// Compact deletes every completed segment whose records are all covered by
// a snapshot through sequence number through. The active segment is never
// deleted. Returns how many segments were removed.
func (l *Log) Compact(through uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segments) > 0 && l.segments[0].last <= through {
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	return removed, nil
}

// Segments returns how many on-disk segments the log currently spans
// (completed plus the active one, if it holds records).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.segments)
	if l.actInfo.nrecords > 0 {
		n++
	}
	return n
}

// Close flushes, fsyncs and closes the log. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.flushLocked(true)
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	l.mu.Unlock()
	l.stopSyncLoop()
	return err
}

// Abort closes the log WITHOUT flushing the userspace buffer — the crash
// simulation used by the chaos battery: whatever had not reached the OS is
// lost, exactly as if the process had been SIGKILLed mid-append.
func (l *Log) Abort() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.buf = nil
		if l.active != nil {
			l.active.Close()
			l.active = nil
		}
	}
	l.mu.Unlock()
	l.stopSyncLoop()
}

func (l *Log) stopSyncLoop() {
	if l.stopSync != nil {
		select {
		case <-l.stopSync:
		default:
			close(l.stopSync)
		}
		<-l.syncDone
		l.stopSync = nil
	}
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.active != nil {
				l.flushLocked(true)
			}
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}
