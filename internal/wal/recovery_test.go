package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// buildLog writes n records into dir and returns the segment paths in
// order plus each record's payload.
func buildLog(t *testing.T, dir string, n, segmentBytes int) (paths []string, payloads [][]byte) {
	t.Helper()
	l, err := Open(dir, Options{SegmentBytes: segmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("payload-%03d-%s", i, strings.Repeat("x", i%7)))
		payloads = append(payloads, p)
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segmentSuffix) {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, payloads
}

// recoverCount opens dir and returns how many records replay plus whether
// truncation was reported. Recovery must never panic and never produce a
// record that was not appended verbatim.
func recoverCount(t *testing.T, dir string, payloads [][]byte) (n int, truncated bool) {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after damage: %v", err)
	}
	defer l.Close()
	err = l.Replay(func(seq uint64, payload []byte) error {
		idx := int(seq) - 1
		if idx < 0 || idx >= len(payloads) {
			t.Fatalf("recovered unknown seq %d", seq)
		}
		if string(payload) != string(payloads[idx]) {
			t.Fatalf("recovered record %d differs from what was appended", seq)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("Replay after damage: %v", err)
	}
	return n, l.Truncated != nil
}

// TestTruncateAtEveryOffset is the table-driven recovery battery of the
// issue: the log is truncated at every byte offset of its final segment —
// every record boundary and every mid-record position — and recovery must
// (a) never panic, (b) recover exactly the records wholly before the cut,
// and (c) leave the log appendable.
func TestTruncateAtEveryOffset(t *testing.T) {
	const records = 12
	master := t.TempDir()
	paths, payloads := buildLog(t, master, records, 1<<20) // single segment
	if len(paths) != 1 {
		t.Fatalf("expected a single segment, got %d", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries in the segment, computed from the framing.
	boundaries := []int{0}
	off := 0
	for off < len(data) {
		n, _, _, err := parseRecord(data[off:], 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		off += n
		boundaries = append(boundaries, off)
	}
	recordsBefore := func(cut int) int {
		n := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(paths[0])), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, truncated := recoverCount(t, dir, payloads)
		want := recordsBefore(cut)
		if got != want {
			t.Fatalf("cut at byte %d: recovered %d records, want %d", cut, got, want)
		}
		wantTrunc := cut != boundaries[len(boundaries)-1] && cut != 0 && !isBoundary(boundaries, cut)
		_ = wantTrunc // a cut exactly on a boundary is a clean (shorter) log
		if got < records && isBoundary(boundaries, cut) && truncated {
			t.Fatalf("cut at boundary %d: clean prefix misreported as truncated", cut)
		}
		if !isBoundary(boundaries, cut) && !truncated {
			t.Fatalf("cut at byte %d (mid-record): truncation not reported", cut)
		}

		// The damaged-then-recovered log must accept new appends.
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("continue")); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		l.Close()
	}
}

func isBoundary(boundaries []int, cut int) bool {
	for _, b := range boundaries {
		if b == cut {
			return true
		}
	}
	return false
}

// TestByteFlipTruncatesAtFirstBadRecord flips a byte at every offset of a
// multi-segment log (one damaged copy per offset): recovery must keep
// exactly the records before the damaged one and drop everything at and
// after it — including whole later segments.
func TestByteFlipTruncatesAtFirstBadRecord(t *testing.T) {
	const records = 30
	master := t.TempDir()
	paths, payloads := buildLog(t, master, records, 128) // several segments
	if len(paths) < 3 {
		t.Fatalf("expected several segments, got %d", len(paths))
	}

	// Per segment: record count and the boundary offsets within it.
	type segInfo struct {
		path       string
		data       []byte
		recsBefore int // records in earlier segments
		bounds     []int
	}
	var segs []segInfo
	total := 0
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		si := segInfo{path: p, data: data, recsBefore: total, bounds: []int{0}}
		off := 0
		for off < len(data) {
			n, _, _, err := parseRecord(data[off:], 16<<20)
			if err != nil {
				t.Fatal(err)
			}
			off += n
			si.bounds = append(si.bounds, off)
			total++
		}
		segs = append(segs, si)
	}
	if total != records {
		t.Fatalf("accounted for %d records, want %d", total, records)
	}

	copyLog := func(dst string) {
		for _, si := range segs {
			if err := os.WriteFile(filepath.Join(dst, filepath.Base(si.path)), si.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	for si, seg := range segs {
		for off := 0; off < len(seg.data); off += 3 { // every 3rd byte keeps runtime sane
			dir := t.TempDir()
			copyLog(dir)
			bad := append([]byte(nil), seg.data...)
			bad[off] ^= 0x01
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg.path)), bad, 0o644); err != nil {
				t.Fatal(err)
			}
			got, truncated := recoverCount(t, dir, payloads)
			// The flipped byte damages the record containing that offset;
			// everything before it must survive, nothing after may.
			rec := 0
			for rec+1 < len(seg.bounds) && seg.bounds[rec+1] <= off {
				rec++
			}
			want := seg.recsBefore + rec
			if got != want {
				t.Fatalf("flip in segment %d at offset %d: recovered %d records, want %d",
					si, off, got, want)
			}
			if !truncated {
				t.Fatalf("flip in segment %d at offset %d: truncation not reported", si, off)
			}
		}
	}
}
