package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestEventString(t *testing.T) {
	cases := map[Event]string{
		Invalidations:     "invalidations",
		SnoopTransactions: "snoop_transactions",
		L2Misses:          "l2_misses",
		TLBMisses:         "tlb_misses",
		DetectionCycles:   "detection_cycles",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("Event(%d).String() = %q, want %q", int(e), got, want)
		}
	}
	if got := Event(-1).String(); !strings.Contains(got, "event") {
		t.Errorf("invalid event string = %q", got)
	}
	if got := Event(NumEvents).String(); !strings.Contains(got, "event") {
		t.Errorf("out-of-range event string = %q", got)
	}
}

func TestCountersAddIncGet(t *testing.T) {
	var c Counters
	if c.Get(L2Misses) != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc(L2Misses)
	c.Add(L2Misses, 4)
	if got := c.Get(L2Misses); got != 5 {
		t.Errorf("Get = %d, want 5", got)
	}
	if c.Get(L2Hits) != 0 {
		t.Error("unrelated counter affected")
	}
}

func TestCountersReset(t *testing.T) {
	var c Counters
	for i := 0; i < NumEvents; i++ {
		c.Add(Event(i), uint64(i+1))
	}
	c.Reset()
	for i := 0; i < NumEvents; i++ {
		if c.Get(Event(i)) != 0 {
			t.Errorf("event %v not reset", Event(i))
		}
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add(Invalidations, 3)
	b.Add(Invalidations, 4)
	b.Add(SnoopTransactions, 7)
	a.Merge(&b)
	if got := a.Get(Invalidations); got != 7 {
		t.Errorf("merged invalidations = %d, want 7", got)
	}
	if got := a.Get(SnoopTransactions); got != 7 {
		t.Errorf("merged snoops = %d, want 7", got)
	}
	// b untouched.
	if b.Get(Invalidations) != 4 {
		t.Error("merge modified source")
	}
}

func TestCountersDiff(t *testing.T) {
	var base, cur Counters
	base.Add(L1Hits, 10)
	cur.Add(L1Hits, 25)
	cur.Add(L1Misses, 5)
	d := cur.Diff(&base)
	if d.Get(L1Hits) != 15 || d.Get(L1Misses) != 5 {
		t.Errorf("diff = %v", d.Map())
	}
	// Saturates instead of wrapping.
	d2 := base.Diff(&cur)
	if d2.Get(L1Hits) != 0 {
		t.Errorf("negative diff should saturate, got %d", d2.Get(L1Hits))
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	var c Counters
	c.Add(TLBMisses, 2)
	snap := c.Snapshot()
	c.Add(TLBMisses, 3)
	if snap.Get(TLBMisses) != 2 {
		t.Error("snapshot aliases the original")
	}
}

func TestCountersMapAndString(t *testing.T) {
	var c Counters
	c.Add(L2Misses, 9)
	m := c.Map()
	if len(m) != NumEvents {
		t.Errorf("Map has %d entries, want %d", len(m), NumEvents)
	}
	if m["l2_misses"] != 9 {
		t.Errorf("Map[l2_misses] = %d", m["l2_misses"])
	}
	s := c.String()
	if !strings.Contains(s, "l2_misses=9") {
		t.Errorf("String() = %q", s)
	}
	var empty Counters
	if empty.String() != "" {
		t.Errorf("empty String() = %q", empty.String())
	}
}

func TestSharedCountersConcurrent(t *testing.T) {
	var s SharedCounters
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Inc(SnoopTransactions)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(SnoopTransactions); got != workers*each {
		t.Errorf("concurrent count = %d, want %d", got, workers*each)
	}
	snap := s.Snapshot()
	if snap.Get(SnoopTransactions) != workers*each {
		t.Error("snapshot mismatch")
	}
	s.Reset()
	if s.Get(SnoopTransactions) != 0 {
		t.Error("reset failed")
	}
}
