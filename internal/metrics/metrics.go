// Package metrics defines the hardware event counters shared by the memory
// hierarchy and the simulation engine.
//
// The counter definitions mirror the events the paper measures with hardware
// performance counters on the real machine (Section VI-B): cache-line
// invalidations caused by the coherence protocol, snoop transactions
// (cache-to-cache transfers), and L2 cache misses. The simulator additionally
// tracks TLB events and cycle counts so that the overhead analysis of
// Table III can be reproduced.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event identifies one hardware event tracked by the simulator.
type Event int

// The set of tracked hardware events.
const (
	// Invalidations counts MESI cache lines invalidated in remote caches
	// because another core wrote to a shared line.
	Invalidations Event = iota
	// SnoopTransactions counts cache-to-cache transfers: a core missed in
	// its own cache and the data was supplied by a remote cache.
	SnoopTransactions
	// L2Misses counts misses in the core's own L2 cache (requests that had
	// to be resolved by a remote cache or by main memory).
	L2Misses
	// L2Hits counts hits in the core's own L2 cache.
	L2Hits
	// L1Misses counts data L1 misses.
	L1Misses
	// L1Hits counts data L1 hits.
	L1Hits
	// TLBMisses counts TLB misses (data accesses only; the paper ignores
	// instruction fetches for mapping purposes).
	TLBMisses
	// TLBHits counts TLB hits.
	TLBHits
	// MemoryReads counts accesses that reached main memory for a read/fill.
	MemoryReads
	// MemoryWrites counts write-backs and write-throughs that reached main
	// memory.
	MemoryWrites
	// DetectionSearches counts executions of the communication-detection
	// routine (SM searches or HM scans).
	DetectionSearches
	// DetectionCycles accumulates the simulated cycles spent inside the
	// communication-detection routine. Dividing by total cycles yields the
	// "Total Overhead" column of Table III.
	DetectionCycles
	// InterChipTraffic counts coherence transactions that crossed the chip
	// boundary (Section III-A2: the mapping goal is to shift traffic from
	// inter-chip to intra-chip interconnects).
	InterChipTraffic
	// IntraChipTraffic counts coherence transactions resolved inside one
	// chip.
	IntraChipTraffic
	// LocalMemAccesses counts memory fills served by the NUMA node of the
	// requesting core (NUMA extension; zero on UMA machines).
	LocalMemAccesses
	// RemoteMemAccesses counts memory fills that crossed NUMA nodes.
	RemoteMemAccesses
	numEvents // sentinel; keep last
)

// NumEvents is the number of distinct events.
const NumEvents = int(numEvents)

var eventNames = [...]string{
	Invalidations:     "invalidations",
	SnoopTransactions: "snoop_transactions",
	L2Misses:          "l2_misses",
	L2Hits:            "l2_hits",
	L1Misses:          "l1_misses",
	L1Hits:            "l1_hits",
	TLBMisses:         "tlb_misses",
	TLBHits:           "tlb_hits",
	MemoryReads:       "memory_reads",
	MemoryWrites:      "memory_writes",
	DetectionSearches: "detection_searches",
	DetectionCycles:   "detection_cycles",
	InterChipTraffic:  "inter_chip_traffic",
	IntraChipTraffic:  "intra_chip_traffic",
	LocalMemAccesses:  "local_mem_accesses",
	RemoteMemAccesses: "remote_mem_accesses",
}

// String returns the canonical snake_case name of the event.
func (e Event) String() string {
	if e < 0 || int(e) >= NumEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// Counters is a fixed-size bank of event counters. The zero value is ready
// to use.
//
// Locking contract: Counters is NOT safe for concurrent use. Each simulated
// core owns one bank, the engine serializes all accesses within a run, and
// banks are merged (Merge/Snapshot) only after the run quiesces — this is
// also the point where the conservation checker (internal/check) reads
// them, so checker reads never race with engine writes. Host-level
// parallelism (internal/runner) is across runs, never within one, so
// distinct runs never share a bank. Anything that genuinely needs
// cross-goroutine reporting into a single bank must use SharedCounters.
type Counters struct {
	counts [numEvents]uint64
}

// Add increments the counter for event e by n.
func (c *Counters) Add(e Event, n uint64) { c.counts[e] += n }

// Inc increments the counter for event e by one.
func (c *Counters) Inc(e Event) { c.counts[e]++ }

// Get returns the current value of the counter for event e.
func (c *Counters) Get(e Event) uint64 { return c.counts[e] }

// Reset zeroes every counter.
func (c *Counters) Reset() { c.counts = [numEvents]uint64{} }

// Merge adds every counter of other into c.
func (c *Counters) Merge(other *Counters) {
	for i := range c.counts {
		c.counts[i] += other.counts[i]
	}
}

// Snapshot returns a copy of the counter bank.
func (c *Counters) Snapshot() Counters { return *c }

// Diff returns a new bank holding c - base for every event. Counters are
// monotone within a run, so a negative difference indicates misuse; Diff
// saturates at zero rather than wrapping.
func (c *Counters) Diff(base *Counters) Counters {
	var out Counters
	for i := range c.counts {
		if c.counts[i] >= base.counts[i] {
			out.counts[i] = c.counts[i] - base.counts[i]
		}
	}
	return out
}

// Map returns the counters as an event-name-keyed map, for serialization
// and test assertions.
func (c *Counters) Map() map[string]uint64 {
	m := make(map[string]uint64, NumEvents)
	for i := 0; i < NumEvents; i++ {
		m[Event(i).String()] = c.counts[i]
	}
	return m
}

// String renders the non-zero counters in a stable order.
func (c *Counters) String() string {
	keys := make([]string, 0, NumEvents)
	vals := make(map[string]uint64, NumEvents)
	for i := 0; i < NumEvents; i++ {
		if c.counts[i] != 0 {
			name := Event(i).String()
			keys = append(keys, name)
			vals[name] = c.counts[i]
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, vals[k])
	}
	return b.String()
}

// SharedCounters wraps Counters with a mutex for the few places where
// multiple simulated components report into one bank (e.g. the coherence
// bus shared by all cores when the engine is run with host parallelism).
// All methods are safe for concurrent use; increments are never lost and
// Snapshot returns an atomically consistent copy of the whole bank.
type SharedCounters struct {
	mu sync.Mutex
	c  Counters
}

// Add increments the counter for event e by n.
func (s *SharedCounters) Add(e Event, n uint64) {
	s.mu.Lock()
	s.c.counts[e] += n
	s.mu.Unlock()
}

// Inc increments the counter for event e by one.
func (s *SharedCounters) Inc(e Event) { s.Add(e, 1) }

// Get returns the current value of the counter for event e.
func (s *SharedCounters) Get(e Event) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.counts[e]
}

// Snapshot returns a copy of the underlying bank.
func (s *SharedCounters) Snapshot() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Reset zeroes every counter.
func (s *SharedCounters) Reset() {
	s.mu.Lock()
	s.c.Reset()
	s.mu.Unlock()
}
