package metrics

import (
	"runtime"
	"sync"
	"testing"
)

// TestSharedCountersConcurrentIncrements hammers one SharedCounters bank
// from many goroutines and verifies no increment is lost — the property
// the locking contract promises. Run under -race this also proves the
// mutex covers every access path (Add, Inc, Get, Snapshot).
func TestSharedCountersConcurrentIncrements(t *testing.T) {
	const (
		goroutines = 16
		perG       = 10_000
	)
	var s SharedCounters
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := Event(g % NumEvents)
			for i := 0; i < perG; i++ {
				s.Inc(e)
				s.Add(SnoopTransactions, 2)
				// Interleave reads to stress the read paths too.
				if i%1024 == 0 {
					_ = s.Get(e)
					_ = s.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := s.Snapshot()
	var total uint64
	for i := 0; i < NumEvents; i++ {
		total += snap.Get(Event(i))
	}
	want := uint64(goroutines * perG * 3) // one Inc + Add(2) per iteration
	if total != want {
		t.Fatalf("lost increments: bank totals %d, want %d", total, want)
	}
	wantSnoops := uint64(goroutines * perG * 2)
	if snap.Get(SnoopTransactions) < wantSnoops {
		t.Fatalf("snoop counter %d, want at least %d", snap.Get(SnoopTransactions), wantSnoops)
	}
}

// TestSharedCountersSnapshotConsistency checks that concurrent snapshots
// of a bank under a single writer are monotone — no torn or stale reads.
func TestSharedCountersSnapshotConsistency(t *testing.T) {
	var s SharedCounters
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50_000; i++ {
			s.Inc(L1Hits)
		}
	}()
	var last uint64
	for {
		select {
		case <-done:
			if got := s.Get(L1Hits); got != 50_000 {
				t.Errorf("final count %d, want 50000", got)
			}
			return
		default:
			snap := s.Snapshot()
			now := snap.Get(L1Hits)
			if now < last {
				t.Fatalf("snapshot went backwards: %d after %d", now, last)
			}
			last = now
		}
	}
}

// TestCountersResetAndReuse guards the single-owner bank's lifecycle ops.
func TestCountersResetAndReuse(t *testing.T) {
	var c Counters
	c.Add(L2Misses, 7)
	c.Inc(L2Misses)
	if got := c.Get(L2Misses); got != 8 {
		t.Fatalf("Get after Add+Inc = %d, want 8", got)
	}
	snap := c.Snapshot()
	c.Reset()
	if got := c.Get(L2Misses); got != 0 {
		t.Fatalf("Get after Reset = %d, want 0", got)
	}
	if got := snap.Get(L2Misses); got != 8 {
		t.Fatalf("snapshot aliased the live bank: %d, want 8", got)
	}
}

func BenchmarkCountersInc(b *testing.B) {
	var c Counters
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(L1Hits)
	}
	runtime.KeepAlive(&c)
}

func BenchmarkSharedCountersInc(b *testing.B) {
	var s SharedCounters
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(L1Hits)
	}
}

func BenchmarkSharedCountersIncParallel(b *testing.B) {
	var s SharedCounters
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Inc(L1Hits)
		}
	})
}
