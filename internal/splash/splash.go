// Package splash implements SPLASH-2-style kernels as a second workload
// suite. The paper's related work (Section II, [7] Barrow-Williams et al.,
// [8] Bienia et al.) characterizes the communication of SPLASH-2 and
// PARSEC; running the TLB mechanisms over these kernels shows that the
// detector and mapper are not NPB-specific and exposes pattern shapes NPB
// does not have:
//
//   - OCEAN: 2-D block decomposition — neighbours both one and four thread
//     IDs apart (a pattern a naive "adjacent IDs" heuristic misses but the
//     matching mapper handles).
//   - LUC (contiguous blocked dense LU): a rotating hub pattern — the
//     owner of the current diagonal block communicates with everyone, and
//     the hub moves every step.
//   - RADIX: scatter-heavy permutation with homogeneous communication.
//   - WATER: all-pairs n-body — every thread reads every other thread's
//     molecules (homogeneous, read-dominated).
//   - BARNES: spatially-sorted bodies with local interactions plus a
//     shared tree summary (domain decomposition over an all-threads
//     background).
package splash

import (
	"fmt"
	"sort"

	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

// Class selects the problem size.
type Class string

const (
	// ClassS is a tiny size for unit tests.
	ClassS Class = "S"
	// ClassW is the evaluation size.
	ClassW Class = "W"
)

// Pattern classifies the expected communication structure.
type Pattern string

// Expected patterns of the suite.
const (
	BlockDecomposition Pattern = "2d-block-decomposition"
	RotatingHub        Pattern = "rotating-hub"
	Homogeneous        Pattern = "homogeneous"
	LocalPlusShared    Pattern = "local+shared-summary"
)

// Params configures one kernel instance.
type Params struct {
	Threads int
	Class   Class
	Seed    int64
}

func (p Params) withDefaults() Params {
	if p.Threads == 0 {
		p.Threads = 8
	}
	if p.Class == "" {
		p.Class = ClassW
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Builder constructs the per-thread programs of a kernel.
type Builder func(as *vm.AddressSpace, p Params) []trace.Program

// Benchmark describes one registered kernel.
type Benchmark struct {
	Name        string
	Description string
	Expected    Pattern
	Build       Builder
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("splash: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Get returns a registered kernel by name.
func Get(name string) (Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("splash: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered kernel names in alphabetical order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered kernel in name order.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// slab partitions n items across parts workers.
func slab(n, parts, who int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = who*base + min(who, rem)
	hi = lo + base
	if who < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func spmd(n int, body trace.Program) []trace.Program {
	progs := make([]trace.Program, n)
	for i := range progs {
		progs[i] = body
	}
	return progs
}

// lcg is the suite's deterministic pseudo-random generator.
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &lcg{state: s}
}

func (r *lcg) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *lcg) float64() float64 { return float64(r.next()>>11) / (1 << 53) }
