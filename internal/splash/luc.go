package splash

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "LUC",
		Description: "Blocked dense LU factorization: the diagonal-block owner is a rotating communication hub",
		Expected:    RotatingHub,
		Build:       buildLUC,
	})
}

// buildLUC constructs the contiguous blocked LU kernel: the matrix is
// partitioned into BxB blocks owned round-robin by the threads. At step k
// every thread that owns a block in row or column k reads the freshly
// factored diagonal block (k, k) — so the owner of that block communicates
// with everybody, and the hub rotates as k advances. Averaged over the run
// the matrix looks near-homogeneous, but per-epoch matrices show the moving
// hub — which is why this kernel is the stress test for the dynamic
// remapping extension.
func buildLUC(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var blocks, bsize int
	switch p.Class {
	case ClassS:
		blocks, bsize = 4, 16
	default:
		blocks, bsize = 8, 32
	}
	n := blocks * bsize

	a := trace.NewMatrix2(as, n, n)
	rng := newLCG(p.Seed)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.float64()
			if i == j {
				v += float64(n) // diagonally dominant: no pivoting needed
			}
			a.Poke(i, j, v)
		}
	}
	threads := p.Threads
	// owner maps a block (bi, bj) to a thread, round-robin over block
	// columns within block rows (the "contiguous" allocation of SPLASH-2
	// LU assigns whole blocks to processors).
	owner := func(bi, bj int) int { return (bi*blocks + bj) % threads }

	body := func(t *trace.Thread) {
		id := t.ID()
		for k := 0; k < blocks; k++ {
			// Step 1: the owner factors the diagonal block (k, k).
			if owner(k, k) == id {
				base := k * bsize
				for i := 0; i < bsize; i++ {
					pivot := a.Get(t, base+i, base+i)
					if pivot == 0 {
						pivot = 1
					}
					for j := i + 1; j < bsize; j++ {
						f := a.Get(t, base+j, base+i) / pivot
						a.Set(t, base+j, base+i, f)
						for c := i + 1; c < bsize; c++ {
							a.Set(t, base+j, base+c,
								a.Get(t, base+j, base+c)-f*a.Get(t, base+i, base+c))
							t.Compute(4)
						}
					}
				}
			}
			t.Barrier()

			// Step 2: owners of row-k and column-k blocks solve their
			// panels against the diagonal block — everyone who owns such
			// a block reads the hub's freshly written data.
			for b := k + 1; b < blocks; b++ {
				if owner(k, b) == id { // row panel
					panelSolve(t, a, k, b, bsize, true)
				}
				if owner(b, k) == id { // column panel
					panelSolve(t, a, b, k, bsize, false)
				}
			}
			t.Barrier()

			// Step 3: trailing update — block (i, j) reads panels (i, k)
			// and (k, j), i.e. data written by two other owners.
			for bi := k + 1; bi < blocks; bi++ {
				for bj := k + 1; bj < blocks; bj++ {
					if owner(bi, bj) != id {
						continue
					}
					for i := 0; i < bsize; i++ {
						for j := 0; j < bsize; j++ {
							var sum float64
							// Sample the inner products (full GEMM would
							// dominate the run; a strided sample keeps
							// the sharing structure with bounded work).
							for c := 0; c < bsize; c += 4 {
								sum += a.Get(t, bi*bsize+i, k*bsize+c) *
									a.Get(t, k*bsize+c, bj*bsize+j)
								t.Compute(3)
							}
							a.Set(t, bi*bsize+i, bj*bsize+j,
								a.Get(t, bi*bsize+i, bj*bsize+j)-sum)
						}
					}
				}
			}
			t.Barrier()
		}
	}
	return spmd(threads, body)
}

// panelSolve triangular-solves one off-diagonal panel against the diagonal
// block of step k, reading the hub's block and updating the own panel.
func panelSolve(t *trace.Thread, a *trace.Matrix2, bi, bj, bsize int, rowPanel bool) {
	var k int
	if rowPanel {
		k = bi
	} else {
		k = bj
	}
	for i := 0; i < bsize; i++ {
		for j := 0; j < bsize; j += 2 { // strided: bounded work, same sharing
			diag := a.Get(t, k*bsize+i, k*bsize+clamp(j, bsize))
			own := a.Get(t, bi*bsize+i, bj*bsize+j)
			a.Set(t, bi*bsize+i, bj*bsize+j, own-0.01*diag*own)
			t.Compute(4)
		}
	}
}
