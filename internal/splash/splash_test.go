package splash_test

import (
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/sim"
	"tlbmap/internal/splash"
	"tlbmap/internal/topology"
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func TestRegistry(t *testing.T) {
	names := splash.Names()
	want := []string{"BARNES", "LUC", "OCEAN", "RADIX", "WATER"}
	if len(names) != len(want) {
		t.Fatalf("registry = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
	if len(splash.All()) != 5 {
		t.Error("All incomplete")
	}
	if _, err := splash.Get("VOLREND"); err == nil {
		t.Error("unknown kernel accepted")
	}
	for _, b := range splash.All() {
		if b.Description == "" || b.Expected == "" {
			t.Errorf("%s metadata incomplete", b.Name)
		}
	}
}

func runClassS(t *testing.T, name string, seed int64) (*sim.Result, *comm.Matrix) {
	t.Helper()
	b, err := splash.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	as := vm.NewAddressSpace()
	programs := b.Build(as, splash.Params{Threads: 8, Class: splash.ClassS, Seed: seed})
	if len(programs) != 8 {
		t.Fatalf("%s built %d programs", name, len(programs))
	}
	det := comm.NewOracleDetector(8, comm.PageGranularity)
	res, err := sim.Run(sim.Config{Machine: topology.Harpertown(), Detector: det},
		as, trace.NewTeam(programs, 0))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res, det.Matrix()
}

func TestAllKernelsRunAtClassS(t *testing.T) {
	for _, name := range splash.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, m := runClassS(t, name, 1)
			if res.Accesses == 0 || res.Cycles == 0 {
				t.Error("no work simulated")
			}
			if m.Total() == 0 {
				t.Error("no communication detected at all")
			}
		})
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, name := range []string{"OCEAN", "RADIX"} {
		r1, _ := runClassS(t, name, 5)
		r2, _ := runClassS(t, name, 5)
		if r1.Accesses != r2.Accesses || r1.Cycles != r2.Cycles {
			t.Errorf("%s not deterministic", name)
		}
	}
}

func TestOceanHasBlockStructure(t *testing.T) {
	_, m := runClassS(t, "OCEAN", 1)
	// At page granularity a grid row spans all four column blocks, so the
	// threads of one thread-row form a page-sharing clique; the two
	// cliques {0..3} and {4..7} touch only at the y-boundary rows. The
	// matrix must show: dense intra-clique communication, a thin but
	// non-zero inter-clique link.
	var intra, inter uint64
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if i/4 == j/4 {
				intra += m.At(i, j)
			} else {
				inter += m.At(i, j)
			}
		}
	}
	if inter == 0 {
		t.Fatalf("no cross-row communication in OCEAN:\n%s", m)
	}
	if intra < 10*inter {
		t.Errorf("intra-clique %d should dominate inter-clique %d", intra, inter)
	}
	// The y-boundary couples the clique edges: at least one distance-4
	// pair communicates.
	var rowPairs uint64
	for c := 0; c < 4; c++ {
		rowPairs += m.At(c, c+4)
	}
	if rowPairs == 0 {
		t.Error("distance-4 boundary pairs silent")
	}
}

func TestWaterIsHomogeneous(t *testing.T) {
	_, m := runClassS(t, "WATER", 1)
	if nf := m.NeighborFraction(); nf > 0.5 {
		t.Errorf("WATER neighbour fraction = %.2f; expected homogeneous", nf)
	}
}

func TestRadixIsHomogeneous(t *testing.T) {
	_, m := runClassS(t, "RADIX", 1)
	if nf := m.NeighborFraction(); nf > 0.55 {
		t.Errorf("RADIX neighbour fraction = %.2f; expected scatter", nf)
	}
}

func TestLUCHubRotates(t *testing.T) {
	// Run LUC with an epoch detector: early epochs should not have the
	// same dominant communicator as late epochs (the hub moves).
	b, err := splash.Get("LUC")
	if err != nil {
		t.Fatal(err)
	}
	as := vm.NewAddressSpace()
	programs := b.Build(as, splash.Params{Threads: 8, Class: splash.ClassS, Seed: 1})
	inner := comm.NewOracleDetector(8, comm.PageGranularity)
	epochs := comm.NewEpochDetector(inner, 50_000)
	_, err = sim.Run(sim.Config{Machine: topology.Harpertown(), Detector: epochs},
		as, trace.NewTeam(programs, 0))
	if err != nil {
		t.Fatal(err)
	}
	epochs.Flush()
	if len(epochs.Epochs()) < 2 {
		t.Skipf("only %d epochs at class S", len(epochs.Epochs()))
	}
	first := epochs.Epochs()[0]
	last := epochs.Epochs()[len(epochs.Epochs())-1]
	if first.Total() == 0 || last.Total() == 0 {
		t.Skip("empty epochs")
	}
	if sim := first.Similarity(last); sim > 0.95 {
		t.Errorf("first and last epochs nearly identical (%.3f); hub should rotate", sim)
	}
}

func TestThreadCountVariants(t *testing.T) {
	b, _ := splash.Get("WATER")
	as := vm.NewAddressSpace()
	programs := b.Build(as, splash.Params{Threads: 4, Class: splash.ClassS})
	if len(programs) != 4 {
		t.Fatalf("built %d programs", len(programs))
	}
	machine := topology.Build("t4", topology.Spec{
		Chips: 1, L2PerChip: 2, CoresPerL2: 2,
		L2Latency: 8, ChipLatency: 40, BusLatency: 120,
	})
	if _, err := sim.Run(sim.Config{Machine: machine}, as, trace.NewTeam(programs, 0)); err != nil {
		t.Fatal(err)
	}
}
