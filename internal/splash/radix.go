package splash

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "RADIX",
		Description: "LSD radix sort: per-digit histogram, prefix and permutation over shared key arrays",
		Expected:    Homogeneous,
		Build:       buildRadix,
	})
}

// buildRadix constructs the RADIX kernel: a least-significant-digit radix
// sort. Each pass histograms one digit of the thread's key range, merges
// the histograms, and permutes the keys into a shared destination array.
// With uniformly random keys the permutation scatters each thread's keys
// across the whole destination — the homogeneous communication SPLASH-2's
// radix is known for [7].
func buildRadix(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var keysPerThread, digitBits, passes int
	switch p.Class {
	case ClassS:
		keysPerThread, digitBits, passes = 1<<10, 4, 2
	default:
		keysPerThread, digitBits, passes = 1<<13, 6, 2
	}
	n := p.Threads
	total := keysPerThread * n
	radix := 1 << digitBits

	src := trace.NewI64(as, total)
	dst := trace.NewI64(as, total)
	// Global histogram: per-thread rows to avoid write contention, merged
	// by column like SPLASH-2 radix does.
	hist := trace.NewI64(as, n*radix)
	rank := trace.NewI64(as, n*radix)

	rng := newLCG(p.Seed)
	for i := 0; i < total; i++ {
		src.Poke(i, int64(rng.next()>>16))
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(total, n, id)
		from, to := src, dst
		for pass := 0; pass < passes; pass++ {
			shift := uint(pass * digitBits)
			// Local histogram of the own key range.
			for d := 0; d < radix; d++ {
				hist.Set(t, id*radix+d, 0)
			}
			for i := lo; i < hi; i++ {
				d := int(uint64(from.Get(t, i))>>shift) & (radix - 1)
				hist.Add(t, id*radix+d, 1)
				t.Compute(3)
			}
			t.Barrier()

			// Global ranking: each thread ranks a slice of the digit
			// space, reading every thread's histogram column — the
			// all-threads exchange.
			dLo, dHi := slab(radix, n, id)
			for d := dLo; d < dHi; d++ {
				var sum int64
				for w := 0; w < n; w++ {
					sum += hist.Get(t, w*radix+d)
				}
				rank.Set(t, id*radix+(d-dLo), sum)
				t.Compute(2)
			}
			t.Barrier()

			// Permutation: scatter the own keys to their digit-ordered
			// positions in the destination array (touching everyone's
			// future ranges).
			for i := lo; i < hi; i++ {
				key := from.Get(t, i)
				d := int(uint64(key)>>shift) & (radix - 1)
				pos := (d*total/radix + (i-lo)%(total/radix)) % total
				dst := to // local alias for clarity
				dst.Set(t, pos, key)
				t.Compute(4)
			}
			t.Barrier()
			from, to = to, from
		}
	}
	return spmd(n, body)
}
