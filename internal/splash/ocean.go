package splash

import (
	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "OCEAN",
		Description: "Red-black SOR over a 2-D grid with 2-D block decomposition (4x2 thread grid)",
		Expected:    BlockDecomposition,
		Build:       buildOcean,
	})
}

// buildOcean constructs the OCEAN kernel: successive over-relaxation over a
// 2-D ocean basin grid with a two-dimensional block decomposition (eight
// threads as a 4-wide, 2-tall grid). At page granularity a grid row spans
// all four column blocks, so the four threads of one thread-row share
// every page of their rows — the detected matrix shows two dense
// four-thread cliques joined by a thin y-boundary link. This is a pattern
// no 1-D NPB kernel produces: the mapper must place each clique on one
// chip, which the hierarchical matcher does from the matrix alone.
func buildOcean(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var ny, nx, iters int
	switch p.Class {
	case ClassS:
		ny, nx, iters = 64, 64, 2
	default:
		ny, nx, iters = 256, 320, 4
	}
	// Thread grid: tc columns x tr rows; for 8 threads, 4x2.
	tc := 4
	tr := p.Threads / tc
	if tr == 0 {
		tr, tc = 1, p.Threads
	}

	grid := trace.NewMatrix2(as, ny, nx)
	work := trace.NewMatrix2(as, ny, nx)
	rng := newLCG(p.Seed)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			grid.Poke(y, x, rng.float64())
		}
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		row, col := id/tc, id%tc
		yLo, yHi := slab(ny, tr, row)
		xLo, xHi := slab(nx, tc, col)
		for it := 0; it < iters; it++ {
			// Red-black SOR: two half-sweeps, each reading the 4-point
			// stencil. Boundary reads touch the four 2-D neighbours'
			// blocks.
			for color := 0; color < 2; color++ {
				for y := yLo; y < yHi; y++ {
					start := xLo + (y+color+xLo)%2
					for x := start; x < xHi; x += 2 {
						s := grid.Get(t, clamp(y-1, ny), x) +
							grid.Get(t, clamp(y+1, ny), x) +
							grid.Get(t, y, clamp(x-1, nx)) +
							grid.Get(t, y, clamp(x+1, nx))
						old := grid.Get(t, y, x)
						grid.Set(t, y, x, old+0.4*(s/4-old))
						t.Compute(8)
					}
				}
				t.Barrier()
			}
			// Laplacian into the work array (local writes, stencil reads).
			for y := yLo; y < yHi; y++ {
				for x := xLo; x < xHi; x++ {
					v := grid.Get(t, clamp(y-1, ny), x) + grid.Get(t, clamp(y+1, ny), x) +
						grid.Get(t, y, clamp(x-1, nx)) + grid.Get(t, y, clamp(x+1, nx)) -
						4*grid.Get(t, y, x)
					work.Set(t, y, x, v)
					t.Compute(6)
				}
			}
			t.Barrier()
		}
	}
	return spmd(p.Threads, body)
}
