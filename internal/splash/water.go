package splash

import (
	"math"

	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "WATER",
		Description: "All-pairs molecular dynamics: every thread reads every other thread's molecules",
		Expected:    Homogeneous,
		Build:       buildWater,
	})
}

// buildWater constructs the WATER-NSQUARED-style kernel: molecular dynamics
// with an O(N²) all-pairs force computation. Positions are partitioned
// across threads; computing the forces on the own molecules requires
// reading *every* molecule's position, so every thread streams through
// every other thread's pages each timestep — a maximally homogeneous,
// read-dominated pattern.
func buildWater(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var molecules, steps int
	switch p.Class {
	case ClassS:
		molecules, steps = 256, 2
	default:
		molecules, steps = 1024, 3
	}
	n := p.Threads

	posX := trace.NewF64(as, molecules)
	posY := trace.NewF64(as, molecules)
	velX := trace.NewF64(as, molecules)
	velY := trace.NewF64(as, molecules)
	frcX := trace.NewF64(as, molecules)
	frcY := trace.NewF64(as, molecules)

	rng := newLCG(p.Seed)
	for i := 0; i < molecules; i++ {
		posX.Poke(i, rng.float64()*100)
		posY.Poke(i, rng.float64()*100)
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(molecules, n, id)
		for s := 0; s < steps; s++ {
			// Force computation: own molecules against all molecules.
			for i := lo; i < hi; i++ {
				xi, yi := posX.Get(t, i), posY.Get(t, i)
				var fx, fy float64
				for j := 0; j < molecules; j++ {
					if j == i {
						continue
					}
					dx := xi - posX.Get(t, j)
					dy := yi - posY.Get(t, j)
					r2 := dx*dx + dy*dy + 1e-6
					inv := 1 / (r2 * math.Sqrt(r2))
					fx += dx * inv
					fy += dy * inv
					t.Compute(10)
				}
				frcX.Set(t, i, fx)
				frcY.Set(t, i, fy)
			}
			t.Barrier()
			// Integration: own molecules only.
			for i := lo; i < hi; i++ {
				velX.Add(t, i, 0.01*frcX.Get(t, i))
				velY.Add(t, i, 0.01*frcY.Get(t, i))
				posX.Add(t, i, 0.01*velX.Get(t, i))
				posY.Add(t, i, 0.01*velY.Get(t, i))
				t.Compute(8)
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}
