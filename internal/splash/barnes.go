package splash

import (
	"sort"

	"tlbmap/internal/trace"
	"tlbmap/internal/vm"
)

func init() {
	register(Benchmark{
		Name:        "BARNES",
		Description: "Barnes-Hut-style n-body: spatially sorted bodies, local interactions plus a shared tree summary",
		Expected:    LocalPlusShared,
		Build:       buildBarnes,
	})
}

// buildBarnes constructs a Barnes-Hut-style kernel: bodies are sorted along
// a 1-D space-filling order and partitioned contiguously, so most direct
// interactions involve spatially (and therefore index-) adjacent bodies —
// domain decomposition. Distant regions are approximated through a small
// shared cell-summary array that every thread reads, adding the uniform
// background SPLASH-2's barnes exhibits.
func buildBarnes(as *vm.AddressSpace, p Params) []trace.Program {
	p = p.withDefaults()
	var bodies, cells, steps, near int
	switch p.Class {
	case ClassS:
		bodies, cells, steps, near = 2048, 32, 2, 16
	default:
		bodies, cells, steps, near = 8192, 64, 2, 48
	}
	n := p.Threads

	pos := trace.NewF64(as, bodies) // 1-D positions along the sort order
	mass := trace.NewF64(as, bodies)
	acc := trace.NewF64(as, bodies)
	// The tree summary: centre of mass and total mass per cell, rebuilt
	// each step and read by everyone.
	cellCOM := trace.NewF64(as, cells)
	cellMass := trace.NewF64(as, cells)

	rng := newLCG(p.Seed)
	positions := make([]float64, bodies)
	for i := range positions {
		positions[i] = rng.float64() * 1000
	}
	sort.Float64s(positions) // spatial sort: neighbours in index = neighbours in space
	for i := 0; i < bodies; i++ {
		pos.Poke(i, positions[i])
		mass.Poke(i, 0.5+rng.float64())
	}

	body := func(t *trace.Thread) {
		id := t.ID()
		lo, hi := slab(bodies, n, id)
		cLo, cHi := slab(cells, n, id)
		perCell := bodies / cells
		for s := 0; s < steps; s++ {
			// Tree build: each thread summarizes its share of the cells
			// (reading the bodies inside them — mostly its own range).
			for c := cLo; c < cHi; c++ {
				var com, m float64
				for b := c * perCell; b < (c+1)*perCell && b < bodies; b++ {
					com += pos.Get(t, b) * mass.Get(t, b)
					m += mass.Get(t, b)
					t.Compute(3)
				}
				if m > 0 {
					com /= m
				}
				cellCOM.Set(t, c, com)
				cellMass.Set(t, c, m)
			}
			t.Barrier()

			// Force computation: direct interactions with the `near`
			// index-adjacent bodies (crossing partition boundaries at the
			// edges) plus the shared cell summaries for everything else.
			for i := lo; i < hi; i++ {
				xi := pos.Get(t, i)
				var a float64
				for j := clamp(i-near, bodies); j <= clamp(i+near, bodies); j++ {
					if j == i {
						continue
					}
					d := xi - pos.Get(t, j)
					if d == 0 {
						d = 1e-9
					}
					a += mass.Get(t, j) / (d*d + 1e-6)
					t.Compute(6)
				}
				// Distant cells are approximated coarsely: the further the
				// region, the fewer summaries are consulted (the opening
				// criterion of Barnes-Hut collapses far regions).
				myCell := i / perCell
				for c := 0; c < cells; c += 8 {
					if c/8 == myCell/8 {
						continue
					}
					d := xi - cellCOM.Get(t, c)
					a += cellMass.Get(t, c) / (d*d + 1e-6)
					t.Compute(4)
				}
				acc.Set(t, i, a)
			}
			t.Barrier()

			// Position update: own bodies only (kept tiny so the sort
			// order stays valid).
			for i := lo; i < hi; i++ {
				pos.Add(t, i, 1e-7*acc.Get(t, i))
				t.Compute(3)
			}
			t.Barrier()
		}
	}
	return spmd(n, body)
}
