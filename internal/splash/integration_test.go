package splash_test

import (
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/core"
	"tlbmap/internal/mapping"
	"tlbmap/internal/splash"
	"tlbmap/internal/topology"
)

// TestSplashShapesClassW verifies the suite's headline behaviours at
// evaluation scale: OCEAN's row cliques are detected and exploitable by
// mapping; WATER and RADIX are homogeneous and mapping-neutral; LUC's
// rotating hub defeats static mapping. Skipped under -short.
func TestSplashShapesClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W integration test")
	}
	machine := topology.Harpertown()

	t.Run("OCEAN", func(t *testing.T) {
		w, err := core.SplashWorkload("OCEAN", splash.Params{Class: splash.ClassW})
		if err != nil {
			t.Fatal(err)
		}
		sm, _, oracle, err := core.DetectAll(w, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sim := sm.Matrix.Similarity(oracle.Matrix); sim < 0.8 {
			t.Errorf("SM similarity = %.3f", sim)
		}
		place, err := core.BuildMapping(sm.Matrix, machine)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := core.Evaluate(w, place, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The worst case splits both row cliques across the chips.
		split, err := core.Evaluate(w, []int{0, 4, 1, 5, 2, 6, 3, 7}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if mapped.Cycles >= split.Cycles {
			t.Errorf("mapping (%d cycles) no better than clique-splitting placement (%d)",
				mapped.Cycles, split.Cycles)
		}
	})

	t.Run("WATER-neutral", func(t *testing.T) {
		w, err := core.SplashWorkload("WATER", splash.Params{Class: splash.ClassW})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Evaluate(w, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := mapping.NewOSScheduler(5).Map(comm.NewMatrix(8), machine)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Evaluate(w, p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(a.Cycles) / float64(b.Cycles)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("WATER placement-sensitive: ratio %.3f", ratio)
		}
	})
}
