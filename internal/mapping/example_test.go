package mapping_test

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/mapping"
	"tlbmap/internal/topology"
)

// ExampleHierarchical_Map maps a detected communication pattern onto the
// paper's two-socket Harpertown machine: threads communicating with their
// distance-four partner end up sharing L2 caches.
func ExampleHierarchical_Map() {
	machine := topology.Harpertown()
	m := comm.NewMatrix(8)
	for i := 0; i < 4; i++ {
		m.Add(i, i+4, 100) // heavy pairs (0,4) (1,5) (2,6) (3,7)
	}

	placement, err := mapping.NewEdmonds().Map(m, machine)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i := 0; i < 4; i++ {
		fmt.Printf("pair (%d,%d) shares an L2: %v\n",
			i, i+4, machine.SameL2(placement[i], placement[i+4]))
	}
	fmt.Println("cost:", mapping.Cost(m, machine, placement))
	// Output:
	// pair (0,4) shares an L2: true
	// pair (1,5) shares an L2: true
	// pair (2,6) shares an L2: true
	// pair (3,7) shares an L2: true
	// cost: 3200
}

// ExampleOnlineMapper shows the dynamic-migration controller reacting to a
// phase change between two epochs.
func ExampleOnlineMapper() {
	o := mapping.NewOnlineMapper(topology.Harpertown(), 0.8)

	phaseA := comm.NewMatrix(8)
	for i := 0; i < 8; i += 2 {
		phaseA.Add(i, i+1, 1000)
	}
	phaseB := comm.NewMatrix(8)
	for i := 0; i < 4; i++ {
		phaseB.Add(i, i+4, 1000)
	}

	d1, _ := o.Observe(phaseA)
	d2, _ := o.Observe(phaseA)
	d3, _ := o.Observe(phaseB)
	fmt.Println("epoch 1 remap:", d1.Remap, "-", d1.Reason)
	fmt.Println("epoch 2 remap:", d2.Remap, "-", d2.Reason)
	fmt.Println("epoch 3 remap:", d3.Remap, "-", d3.Reason)
	// Output:
	// epoch 1 remap: false - current placement already optimal for new phase
	// epoch 2 remap: false - pattern stable
	// epoch 3 remap: true - phase change
}
