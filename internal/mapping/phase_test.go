package mapping

import (
	"testing"

	"tlbmap/internal/comm"
)

func chain8() *comm.Matrix {
	m := comm.NewMatrix(8)
	for i := 0; i+1 < 8; i++ {
		m.Add(i, i+1, 50)
	}
	return m
}

func distant8() *comm.Matrix {
	m := comm.NewMatrix(8)
	for i := 0; i < 4; i++ {
		m.Add(i, i+4, 50)
	}
	return m
}

func TestPhaseTrackerFirstObservationIsAPhase(t *testing.T) {
	p := NewPhaseTracker(0.8)
	if !p.Observe(chain8()) {
		t.Error("first observation must trigger a mapping")
	}
	if p.Phases() != 1 {
		t.Errorf("phases = %d", p.Phases())
	}
	if p.Reference() == nil {
		t.Error("reference not recorded")
	}
}

func TestPhaseTrackerStablePattern(t *testing.T) {
	p := NewPhaseTracker(0.8)
	p.Observe(chain8())
	// A scaled version of the same pattern is the same phase.
	scaled := comm.NewMatrix(8)
	for i := 0; i+1 < 8; i++ {
		scaled.Add(i, i+1, 500)
	}
	if p.Observe(scaled) {
		t.Error("scaled identical pattern reported as a phase change")
	}
	if p.Phases() != 1 {
		t.Errorf("phases = %d", p.Phases())
	}
}

func TestPhaseTrackerDetectsChange(t *testing.T) {
	p := NewPhaseTracker(0.8)
	p.Observe(chain8())
	if !p.Observe(distant8()) {
		t.Error("pattern change not detected")
	}
	if p.Phases() != 2 {
		t.Errorf("phases = %d", p.Phases())
	}
	// The reference moved to the new pattern.
	if p.Observe(distant8()) {
		t.Error("new reference not adopted")
	}
}

func TestPhaseTrackerIgnoresIdleAndNil(t *testing.T) {
	p := NewPhaseTracker(0.8)
	p.Observe(chain8())
	if p.Observe(comm.NewMatrix(8)) {
		t.Error("idle epoch triggered a remap")
	}
	if p.Observe(nil) {
		t.Error("nil epoch triggered a remap")
	}
}

func TestPhaseTrackerClampsBadThreshold(t *testing.T) {
	for _, th := range []float64{-1, 0, 1, 2} {
		p := NewPhaseTracker(th)
		p.Observe(chain8())
		if p.Observe(chain8()) {
			t.Errorf("threshold %v misbehaves on identical patterns", th)
		}
	}
}

func TestPhaseTrackerReferenceIsCopy(t *testing.T) {
	p := NewPhaseTracker(0.8)
	p.Observe(chain8())
	ref := p.Reference()
	ref.Add(0, 7, 1_000_000)
	if p.Observe(chain8()) {
		t.Error("mutating the returned reference changed the tracker")
	}
	if NewPhaseTracker(0.8).Reference() != nil {
		t.Error("reference before first observation should be nil")
	}
}
