package mapping

import (
	"fmt"
	"math/rand"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// propertyMachines are the topologies the permutation property must hold
// on: every built-in preset plus irregular custom shapes (odd L2-domain
// counts, single-chip, deep NUMA) that the presets never produce.
func propertyMachines() []*topology.Machine {
	return []*topology.Machine{
		topology.Harpertown(),
		topology.NUMA(1),
		topology.NUMA(2),
		topology.NUMA(4),
		topology.Build("tiny-1c", topology.Spec{
			Chips: 1, L2PerChip: 1, CoresPerL2: 2,
			L2Latency: 8, ChipLatency: 40, BusLatency: 120,
		}),
		topology.Build("quad-4c", topology.Spec{
			Chips: 1, L2PerChip: 2, CoresPerL2: 2,
			L2Latency: 8, ChipLatency: 40, BusLatency: 120,
		}),
		topology.Build("big-16c", topology.Spec{
			Chips: 2, L2PerChip: 4, CoresPerL2: 2,
			L2Latency: 8, ChipLatency: 40, BusLatency: 120,
		}),
		topology.Build("numa-deep", topology.Spec{
			NUMANodes: 2, Chips: 2, L2PerChip: 2, CoresPerL2: 2,
			L2Latency: 8, ChipLatency: 40, BusLatency: 90, NUMALatency: 240,
		}),
		// The manycore generators: a five-deep 64-core NUMA hierarchy and
		// a wide UMA multi-socket part.
		topology.Manycore(64),
		topology.MultiSocket(4, 2, 2),
	}
}

// randomMatrix draws a communication matrix of one of several shapes:
// empty, uniform noise, clustered pairs, and a single dominant pair —
// the degenerate inputs mappers historically mishandle.
func randomMatrix(rng *rand.Rand, n int) *comm.Matrix {
	m := comm.NewMatrix(n)
	switch rng.Intn(4) {
	case 0:
		// Empty: no communication at all.
	case 1:
		// Uniform noise.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				m.Add(i, j, uint64(rng.Intn(100)))
			}
		}
	case 2:
		// Clustered pairs (the paper's NPB-style pattern) plus noise.
		for i := 0; i+1 < n; i += 2 {
			m.Add(i, i+1, 1000+uint64(rng.Intn(500)))
		}
		for k := 0; k < n; k++ {
			m.Add(rng.Intn(n), rng.Intn(n), uint64(rng.Intn(10)))
		}
	case 3:
		// One dominant pair drowning everything else out.
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			b = (b + 1) % n
		}
		m.Add(a, b, 1_000_000)
	}
	return m
}

// TestMappersProducePermutations is the satellite property test: every
// mapping algorithm, fed randomized matrices of every shape on every
// topology, must return a valid thread -> core permutation.
func TestMappersProducePermutations(t *testing.T) {
	const draws = 25
	for _, machine := range propertyMachines() {
		n := machine.NumCores()
		algos := []Algorithm{
			NewEdmonds(),
			NewGreedyMatch(),
			NewMultilevel(),
			NewAuto(),
			Identity{},
			NewOSScheduler(42),
			RecursiveBipartition{},
		}
		// Exhaustive search is factorial; keep it to the small machines.
		if n <= 8 {
			algos = append(algos, Exhaustive{})
		}
		for _, algo := range algos {
			t.Run(fmt.Sprintf("%s/%s", machine.Name, algo.Name()), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(n) * 7919))
				for d := 0; d < draws; d++ {
					m := randomMatrix(rng, n)
					placement, err := algo.Map(m, machine)
					if err != nil {
						t.Fatalf("draw %d: %v", d, err)
					}
					checkPermutation(t, placement, n)
				}
			})
		}
	}
}

// TestMappersRejectSizeMismatch: a matrix with the wrong thread count
// must be refused, not silently truncated into a partial placement.
func TestMappersRejectSizeMismatch(t *testing.T) {
	machine := topology.Harpertown()
	for _, algo := range []Algorithm{
		NewEdmonds(), NewGreedyMatch(), NewMultilevel(), NewAuto(),
		Identity{}, NewOSScheduler(1), RecursiveBipartition{}, Exhaustive{},
	} {
		if _, err := algo.Map(comm.NewMatrix(machine.NumCores()-1), machine); err == nil {
			t.Errorf("%s accepted a %d-thread matrix on an %d-core machine",
				algo.Name(), machine.NumCores()-1, machine.NumCores())
		}
	}
}

// TestHierarchicalMappersRejectNonPowerOfTwo: the pairing-based mappers
// document a power-of-two thread requirement; a 6-core machine must be
// refused with a clear error, while the unconstrained algorithms still
// return valid permutations on it.
func TestHierarchicalMappersRejectNonPowerOfTwo(t *testing.T) {
	machine := topology.Build("wide-6c", topology.Spec{
		Chips: 3, L2PerChip: 1, CoresPerL2: 2,
		L2Latency: 8, ChipLatency: 40, BusLatency: 120,
	})
	n := machine.NumCores()
	m := randomMatrix(rand.New(rand.NewSource(6)), n)
	for _, algo := range []Algorithm{NewEdmonds(), NewGreedyMatch(), NewMultilevel(), RecursiveBipartition{}} {
		if _, err := algo.Map(m, machine); err == nil {
			t.Errorf("%s accepted a %d-thread matrix", algo.Name(), n)
		}
	}
	for _, algo := range []Algorithm{Identity{}, NewOSScheduler(3), Exhaustive{}} {
		placement, err := algo.Map(m, machine)
		if err != nil {
			t.Errorf("%s on %d cores: %v", algo.Name(), n, err)
			continue
		}
		checkPermutation(t, placement, n)
	}
}

// fuzzMachines returns the two machine shapes (UMA, NUMA) used by
// FuzzMultilevelVsBlossom for a given power-of-two thread count.
func fuzzMachines(n int) [2]*topology.Machine {
	switch n {
	case 4:
		return [2]*topology.Machine{
			topology.Build("f-4u", topology.Spec{
				Chips: 1, L2PerChip: 2, CoresPerL2: 2,
				L2Latency: 8, ChipLatency: 40, BusLatency: 120,
			}),
			topology.Build("f-4n", topology.Spec{
				NUMANodes: 2, Chips: 1, L2PerChip: 1, CoresPerL2: 2,
				L2Latency: 8, ChipLatency: 40, BusLatency: 90, NUMALatency: 240,
			}),
		}
	case 8:
		return [2]*topology.Machine{topology.Harpertown(), topology.NUMA(2)}
	case 16:
		return [2]*topology.Machine{
			topology.Build("f-16u", topology.Spec{
				Chips: 2, L2PerChip: 4, CoresPerL2: 2,
				L2Latency: 8, ChipLatency: 40, BusLatency: 120,
			}),
			topology.Build("f-16n", topology.Spec{
				NUMANodes: 2, Chips: 2, L2PerChip: 2, CoresPerL2: 2,
				L2Latency: 8, ChipLatency: 40, BusLatency: 90, NUMALatency: 240,
			}),
		}
	default: // 32
		return [2]*topology.Machine{
			topology.Build("f-32u", topology.Spec{
				Chips: 4, L2PerChip: 4, CoresPerL2: 2,
				L2Latency: 8, ChipLatency: 40, BusLatency: 120,
			}),
			topology.Build("f-32n", topology.Spec{
				NUMANodes: 2, Chips: 2, L2PerChip: 2, CoresPerL2: 4,
				L2Latency: 8, ChipLatency: 40, BusLatency: 90, NUMALatency: 240,
			}),
		}
	}
}

// FuzzMultilevelVsBlossom is the mapper-quality fuzz oracle: arbitrary
// bytes decode to (thread count ≤ 32, machine shape, weight matrix); the
// multilevel mapper must always return a valid permutation and its cost
// must stay within the calibrated bound of the paper's blossom hierarchy
// (multilevelQualityOK). The first byte picks the size among {4,8,16,32},
// the second picks UMA or NUMA, the rest fill the upper triangle two
// bytes per weight (missing bytes read as zero).
func FuzzMultilevelVsBlossom(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6})
	f.Add([]byte{1, 1, 0xff, 0xff})
	f.Add([]byte{2, 0})                      // 16 threads, all-zero weights
	f.Add([]byte{3, 1, 9, 9, 9, 9, 9, 9})    // 32 threads NUMA, partial triangle
	f.Add([]byte{2, 1, 0, 1, 0, 1, 0, 1})    // light uniform
	f.Add([]byte{3, 0, 0xff, 0, 0, 0, 0xff}) // heavy scattered pairs
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 4 << (int(data[0]) % 4)
		machine := fuzzMachines(n)[int(data[1])%2]
		data = data[2:]
		m := comm.NewDenseMatrix(n)
		k := 0
		for i := 0; i < n && k < len(data); i++ {
			for j := i + 1; j < n && k < len(data); j++ {
				var v uint64
				if k < len(data) {
					v = uint64(data[k])
				}
				if k+1 < len(data) {
					v = v<<8 | uint64(data[k+1])
				}
				k += 2
				m.Set(i, j, v)
			}
		}

		pm, err := NewMultilevel().Map(m, machine)
		if err != nil {
			t.Fatalf("multilevel: %v", err)
		}
		checkPermutation(t, pm, n)
		pb, err := NewEdmonds().Map(m, machine)
		if err != nil {
			t.Fatalf("edmonds: %v", err)
		}
		checkPermutation(t, pb, n)
		mlCost := Cost(m, machine, pm)
		blCost := Cost(m, machine, pb)
		if !multilevelQualityOK(m, machine, mlCost, blCost) {
			t.Fatalf("n=%d %s: multilevel cost %d vs blossom %d exceeds the quality bound (total %d)",
				n, machine.Name, mlCost, blCost, m.Total())
		}
	})
}

// TestOnlineMapperMaintainsPermutation drives the dynamic controller
// through randomized epochs — including phase changes and idle epochs —
// and checks the placement in force is a permutation after every
// decision.
func TestOnlineMapperMaintainsPermutation(t *testing.T) {
	for _, machine := range propertyMachines() {
		n := machine.NumCores()
		t.Run(machine.Name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(n) * 104729))
			om := NewOnlineMapper(machine, 0)
			om.MinGain = 1 // remap eagerly: stress the migration path
			checkPermutation(t, om.Placement(), n)
			for epoch := 0; epoch < 40; epoch++ {
				dec, err := om.Observe(randomMatrix(rng, n))
				if err != nil {
					t.Fatalf("epoch %d: %v", epoch, err)
				}
				checkPermutation(t, dec.Placement, n)
				checkPermutation(t, om.Placement(), n)
			}
		})
	}
}
