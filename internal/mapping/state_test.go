package mapping

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// epochFor synthesizes a non-idle epoch matrix with a neighbor-pair
// pattern plus seeded noise, shifted by phase so consecutive epochs look
// alike within a phase and different across phases.
func epochFor(n, phase int, rng *rand.Rand) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 0; i+1 < n; i += 2 {
		a := (i + phase) % n
		b := (i + 1 + phase) % n
		m.Add(a, b, uint64(500+rng.Intn(50)))
	}
	for k := 0; k < n; k++ {
		m.Add(rng.Intn(n), rng.Intn(n), uint64(1+rng.Intn(5)))
	}
	return m
}

func TestOnlineStateRoundTrip(t *testing.T) {
	machine := topology.Manycore(32)
	o := NewOnlineMapper(machine, 0)
	rng := rand.New(rand.NewSource(5))
	for e := 0; e < 8; e++ {
		if _, err := o.Observe(epochFor(32, e/4, rng)); err != nil {
			t.Fatal(err)
		}
	}
	st := o.State()
	enc := st.AppendBinary(nil)
	got, rest, err := DecodeOnlineState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(got.Placement, st.Placement) {
		t.Fatalf("placement changed: %v -> %v", st.Placement, got.Placement)
	}
	if got.Remaps != st.Remaps || got.Fallbacks != st.Fallbacks ||
		got.Decisions != st.Decisions || got.Phases != st.Phases {
		t.Fatalf("counters changed: %+v vs %+v", got, st)
	}
	if got.Confidence != st.Confidence {
		t.Fatalf("confidence changed: %v -> %v", st.Confidence, got.Confidence)
	}
	if (got.PrevEpoch == nil) != (st.PrevEpoch == nil) ||
		(got.PrevEpoch != nil && !got.PrevEpoch.Equal(st.PrevEpoch)) {
		t.Fatal("prev-epoch matrix changed")
	}
	if (got.Reference == nil) != (st.Reference == nil) ||
		(got.Reference != nil && !got.Reference.Equal(st.Reference)) {
		t.Fatal("tracker reference changed")
	}
	// Deterministic: re-encoding the decoded state is byte-identical.
	if !bytes.Equal(got.AppendBinary(nil), enc) {
		t.Fatal("re-encoding differs")
	}
}

// TestOnlineStateContinuation: restore a snapshotted controller into a
// fresh OnlineMapper and feed both the same remaining epochs — every
// subsequent decision must be identical, including remap/hold choices,
// placements, reasons, and confidence.
func TestOnlineStateContinuation(t *testing.T) {
	machine := topology.Manycore(32)
	cont := NewOnlineMapper(machine, 0)
	rng := rand.New(rand.NewSource(77))
	epochs := make([]*comm.Matrix, 24)
	for e := range epochs {
		epochs[e] = epochFor(32, e/6, rng) // phase change every 6 epochs
	}
	cut := 10
	for _, m := range epochs[:cut] {
		if _, err := cont.Observe(m); err != nil {
			t.Fatal(err)
		}
	}

	st := cont.State()
	enc := st.AppendBinary(nil)
	decoded, _, err := DecodeOnlineState(enc)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewOnlineMapper(machine, 0)
	if err := restored.Restore(decoded); err != nil {
		t.Fatal(err)
	}

	for e, m := range epochs[cut:] {
		dc, err1 := cont.Observe(m)
		dr, err2 := restored.Observe(m)
		if err1 != nil || err2 != nil {
			t.Fatalf("epoch %d: errs %v / %v", cut+e, err1, err2)
		}
		if !reflect.DeepEqual(dc, dr) {
			t.Fatalf("epoch %d: decisions diverged:\n continuous: %+v\n restored:   %+v", cut+e, dc, dr)
		}
	}
	if cont.Remaps() != restored.Remaps() || cont.Decisions() != restored.Decisions() ||
		cont.Confidence() != restored.Confidence() {
		t.Fatalf("final counters diverged: %d/%d/%v vs %d/%d/%v",
			cont.Remaps(), cont.Decisions(), cont.Confidence(),
			restored.Remaps(), restored.Decisions(), restored.Confidence())
	}
}

func TestOnlineStateRestoreRejectsWrongMachine(t *testing.T) {
	small := NewOnlineMapper(topology.Manycore(32), 0)
	st := small.State()
	big := NewOnlineMapper(topology.Manycore(64), 0)
	if err := big.Restore(st); err == nil {
		t.Fatal("restore accepted a 32-core placement on a 64-core machine")
	}
	// The failed restore must leave the controller untouched.
	if len(big.Placement()) != 64 {
		t.Fatal("failed restore mutated the controller")
	}
}

func TestOnlineStateDecodeRejectsDamage(t *testing.T) {
	o := NewOnlineMapper(topology.Manycore(32), 0)
	rng := rand.New(rand.NewSource(3))
	for e := 0; e < 4; e++ {
		if _, err := o.Observe(epochFor(32, 0, rng)); err != nil {
			t.Fatal(err)
		}
	}
	enc := o.State().AppendBinary(nil)
	for _, cut := range []int{0, 3, 20, len(enc) - 1} {
		if _, _, err := DecodeOnlineState(enc[:cut]); err == nil {
			t.Errorf("decode accepted truncation at %d bytes", cut)
		}
	}
}
