// Package mapping turns a communication matrix into a thread -> core
// placement, implementing the hierarchical matching algorithm of
// Section V-A: Edmonds maximum weight perfect matching pairs the threads
// that communicate most onto cores sharing an L2 cache, then the paper's H
// heuristic aggregates communication between pairs ("pairs of pairs") and
// matching runs again for the next level of the memory hierarchy.
//
// The package also provides the baselines used in the evaluation and the
// ablation benches: the OS-scheduler model (random placements), greedy
// matching, and Scotch-style recursive bipartitioning.
package mapping

import (
	"fmt"
	"math/rand"

	"tlbmap/internal/comm"
	"tlbmap/internal/matching"
	"tlbmap/internal/topology"
)

// Algorithm computes a placement (thread -> core permutation) from a
// communication matrix and a machine topology.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Map returns the placement. The matrix must have exactly one thread
	// per machine core.
	Map(m *comm.Matrix, machine *topology.Machine) ([]int, error)
}

// Cost scores a placement: the sum over all thread pairs of their
// communication weighted by the interconnect latency between their cores.
// Lower is better; it is the objective the hierarchical mapper minimizes by
// keeping heavy pairs on nearby cores.
func Cost(m *comm.Matrix, machine *topology.Machine, placement []int) uint64 {
	var total uint64
	m.ForEach(func(i, j int, w uint64) {
		total += w * machine.Latency(placement[i], placement[j])
	})
	return total
}

// HWeight implements the paper's pairs-of-pairs heuristic function
//
//	H[(x,y),(z,k)] = M[x,z] + M[x,k] + M[y,z] + M[y,k]
//
// generalized to groups of any size: the total communication between two
// groups of threads.
func HWeight(m *comm.Matrix, a, b []int) uint64 {
	var w uint64
	for _, x := range a {
		for _, y := range b {
			w += m.At(x, y)
		}
	}
	return w
}

// solver is the pair-matching primitive a hierarchical mapper plugs in:
// it receives the group-to-group weight matrix and returns a mate array.
type solver func(w [][]int64) ([]int, int64, error)

// Hierarchical is the paper's mapper: Edmonds matching applied level by
// level up the sharing tree.
type Hierarchical struct {
	name  string
	solve solver
}

// NewEdmonds returns the mapper used throughout the paper's evaluation:
// exact maximum weight perfect matching at every level.
func NewEdmonds() *Hierarchical {
	return &Hierarchical{name: "edmonds", solve: matching.MaxWeightPerfectMatching}
}

// NewGreedyMatch returns the ablation variant that replaces Edmonds
// matching with greedy heaviest-edge-first matching.
func NewGreedyMatch() *Hierarchical {
	return &Hierarchical{name: "greedy-match", solve: matching.Greedy}
}

// Name implements Algorithm.
func (h *Hierarchical) Name() string { return h.name }

// Map implements Algorithm. Groups of threads are repeatedly paired by the
// matching solver until one group per top-level domain remains; the nested
// merge order then directly yields the core assignment, because cores are
// numbered so that consecutive cores share the lower levels of the
// hierarchy (Figure 3).
func (h *Hierarchical) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	n := m.N()
	if n != machine.NumCores() {
		return nil, fmt.Errorf("mapping: %d threads for %d cores; the paper maps one thread per core", n, machine.NumCores())
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("mapping: hierarchical matching requires a power-of-two thread count, got %d", n)
	}
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	for len(groups) > 1 {
		w := groupMatrix(m, groups)
		mate, _, err := h.solve(w)
		if err != nil {
			return nil, fmt.Errorf("mapping: level with %d groups: %w", len(groups), err)
		}
		merged := make([][]int, 0, len(groups)/2)
		for i, j := range mate {
			if j > i {
				g := make([]int, 0, len(groups[i])+len(groups[j]))
				g = append(g, groups[i]...)
				g = append(g, groups[j]...)
				merged = append(merged, g)
			}
		}
		groups = merged
	}
	placement := make([]int, n)
	for core, thread := range groups[0] {
		placement[thread] = core
	}
	return placement, nil
}

// groupMatrix aggregates the thread communication matrix into a
// group-to-group weight matrix with the H heuristic.
func groupMatrix(m *comm.Matrix, groups [][]int) [][]int64 {
	k := len(groups)
	w := make([][]int64, k)
	for i := range w {
		w[i] = make([]int64, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v := int64(HWeight(m, groups[i], groups[j]))
			w[i][j], w[j][i] = v, v
		}
	}
	return w
}

// Identity places thread i on core i — what a pinned run without any
// communication awareness does.
type Identity struct{}

// Name implements Algorithm.
func (Identity) Name() string { return "identity" }

// Map implements Algorithm.
func (Identity) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	if m.N() != machine.NumCores() {
		return nil, fmt.Errorf("mapping: %d threads for %d cores", m.N(), machine.NumCores())
	}
	p := make([]int, m.N())
	for i := range p {
		p[i] = i
	}
	return p, nil
}

// OSScheduler models the operating system scheduler baseline of the
// evaluation (the "OS" bars of Figures 6-9): a placement chosen without any
// knowledge of communication. Each call produces a fresh random permutation,
// reproducing the high run-to-run variance the paper observes for the OS
// scheduler (Table V).
type OSScheduler struct {
	rng *rand.Rand
}

// NewOSScheduler returns an OS-scheduler model seeded for reproducibility.
func NewOSScheduler(seed int64) *OSScheduler {
	return &OSScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Algorithm.
func (o *OSScheduler) Name() string { return "os" }

// Map implements Algorithm.
func (o *OSScheduler) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	if m.N() != machine.NumCores() {
		return nil, fmt.Errorf("mapping: %d threads for %d cores", m.N(), machine.NumCores())
	}
	return o.rng.Perm(m.N()), nil
}

// RecursiveBipartition is the Scotch-style dual recursive bipartitioning
// alternative mentioned in Section V-A: split the threads into two halves
// minimizing the communication cut, assign the halves to the two subtrees
// of the topology, and recurse.
type RecursiveBipartition struct{}

// Name implements Algorithm.
func (RecursiveBipartition) Name() string { return "recursive-bipartition" }

// Map implements Algorithm.
func (RecursiveBipartition) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	n := m.N()
	if n != machine.NumCores() {
		return nil, fmt.Errorf("mapping: %d threads for %d cores", n, machine.NumCores())
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("mapping: recursive bipartitioning requires a power-of-two thread count, got %d", n)
	}
	threads := make([]int, n)
	for i := range threads {
		threads[i] = i
	}
	order := bipartition(m, threads)
	placement := make([]int, n)
	for core, thread := range order {
		placement[thread] = core
	}
	return placement, nil
}

// bipartition recursively splits threads into halves that minimize the
// communication crossing the split, returning the threads in final core
// order. Splits of up to 16 threads are solved exactly by enumeration;
// larger ones use a Kernighan-Lin style swap refinement.
func bipartition(m *comm.Matrix, threads []int) []int {
	if len(threads) <= 2 {
		return threads
	}
	half := len(threads) / 2
	var bestA, bestB []int
	if len(threads) <= 16 {
		bestA, bestB = exactSplit(m, threads, half)
	} else {
		bestA, bestB = klSplit(m, threads, half)
	}
	out := bipartition(m, bestA)
	return append(out, bipartition(m, bestB)...)
}

// exactSplit enumerates all balanced splits (fixing the first thread on
// side A to halve the search space) and returns the one with minimum cut.
func exactSplit(m *comm.Matrix, threads []int, half int) (a, b []int) {
	n := len(threads)
	bestCut := ^uint64(0)
	var best uint64
	// Enumerate subsets of {1..n-1} of size half-1 to join threads[0].
	for mask := uint64(0); mask < 1<<(n-1); mask++ {
		if popcount(mask) != half-1 {
			continue
		}
		full := mask<<1 | 1 // threads[0] always on side A
		var cut uint64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (full >> i & 1) != (full >> j & 1) {
					cut += m.At(threads[i], threads[j])
				}
			}
		}
		if cut < bestCut {
			bestCut, best = cut, full
		}
	}
	for i := 0; i < n; i++ {
		if best>>i&1 == 1 {
			a = append(a, threads[i])
		} else {
			b = append(b, threads[i])
		}
	}
	return a, b
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// klSplit starts from the natural split and greedily swaps the pair of
// threads that reduces the cut the most until no improving swap remains.
func klSplit(m *comm.Matrix, threads []int, half int) (a, b []int) {
	a = append([]int(nil), threads[:half]...)
	b = append([]int(nil), threads[half:]...)
	cut := func() uint64 {
		var c uint64
		for _, x := range a {
			for _, y := range b {
				c += m.At(x, y)
			}
		}
		return c
	}
	cur := cut()
	for {
		bi, bj := -1, -1
		best := cur
		for i := range a {
			for j := range b {
				a[i], b[j] = b[j], a[i]
				if c := cut(); c < best {
					best, bi, bj = c, i, j
				}
				a[i], b[j] = b[j], a[i]
			}
		}
		if bi == -1 {
			return a, b
		}
		a[bi], b[bj] = b[bj], a[bi]
		cur = best
	}
}
