package mapping

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/matching"
	"tlbmap/internal/topology"
)

// Tuning knobs of the multilevel mapper. They trade mapping quality
// against time; the defaults keep a 1024-thread mapping well under a
// second while FuzzMultilevelVsBlossom bounds the quality loss.
const (
	// mlCoarseCutoff: at or below this many groups a level is paired with
	// the exact blossom instead of greedy heavy-edge matching — the top of
	// the hierarchy is where a bad pair is most expensive, and a dense
	// 16x16 blossom is microseconds.
	mlCoarseCutoff = 16
	// mlRefinePasses bounds the improving-swap sweeps per level.
	mlRefinePasses = 4
	// mlRefineEdgeCap bounds how many of the heaviest edges drive swap
	// attempts per pass.
	mlRefineEdgeCap = 2048
	// mlRefineCandidates bounds the candidate slots tried per edge
	// endpoint.
	mlRefineCandidates = 16
	// mlRefineWorkCap bounds the adjacency terms evaluated per level, so
	// dense communication graphs (all-to-all workloads) degrade to partial
	// refinement instead of quadratic blowup. Sparse graphs — the realistic
	// manycore case — never hit it.
	mlRefineWorkCap = 8_000_000
)

// Multilevel is the scalable mapper: coarsen the communication graph by
// greedy heavy-edge matching level by level (solving the coarsest levels
// exactly with the blossom), derive the placement from the nested merge
// order exactly like the paper's hierarchical mapper, then refine each
// level top-down with latency-driven block swaps. Time is O(E log E) per
// level on a sparse communication graph — near-linear in practice —
// versus the O(T³) blossom at every level, which is what makes 1024
// threads feasible.
type Multilevel struct{}

// NewMultilevel returns the multilevel coarsen–match–refine mapper.
func NewMultilevel() *Multilevel { return &Multilevel{} }

// Name implements Algorithm.
func (*Multilevel) Name() string { return "multilevel" }

// mlLevel is one coarsening level: the contracted graph over its groups
// and, after pairing, the two child groups composing each next-level
// group.
type mlLevel struct {
	groups int
	edges  []matching.Edge
	pairs  [][2]int
}

// Map implements Algorithm.
func (*Multilevel) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	n := m.N()
	if n != machine.NumCores() {
		return nil, fmt.Errorf("mapping: %d threads for %d cores; the paper maps one thread per core", n, machine.NumCores())
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("mapping: multilevel mapping requires a power-of-two thread count, got %d", n)
	}
	placement := make([]int, n)
	if n == 1 {
		return placement, nil
	}

	// Coarsening: pair, contract, repeat until one group remains.
	edges := make([]matching.Edge, 0, m.NNZ())
	m.ForEach(func(i, j int, w uint64) {
		edges = append(edges, matching.Edge{U: i, V: j, W: int64(w)})
	})
	var levels []*mlLevel
	g := n
	for g > 1 {
		lv := &mlLevel{groups: g, edges: edges}
		mate, err := pairLevel(g, edges)
		if err != nil {
			return nil, fmt.Errorf("mapping: multilevel level with %d groups: %w", g, err)
		}
		newID := make([]int, g)
		next := 0
		for i := 0; i < g; i++ {
			if mate[i] > i {
				newID[i], newID[mate[i]] = next, next
				lv.pairs = append(lv.pairs, [2]int{i, mate[i]})
				next++
			}
		}
		levels = append(levels, lv)
		edges = contract(edges, newID)
		g = next
	}

	// Uncoarsening: expand the merge order level by level — cores are
	// numbered so consecutive cores share the lower hierarchy levels, so
	// the order is the placement — refining each level with block swaps
	// before descending.
	order := []int{0}
	for l := len(levels) - 1; l >= 0; l-- {
		next := make([]int, 0, 2*len(order))
		for _, gr := range order {
			p := levels[l].pairs[gr]
			next = append(next, p[0], p[1])
		}
		order = next
		refineLevel(order, levels[l], machine, n)
	}
	for core, thread := range order {
		placement[thread] = core
	}
	return placement, nil
}

// pairLevel pairs one level's groups: greedy heavy-edge matching above the
// coarse cutoff, exact blossom matching at or below it.
func pairLevel(g int, edges []matching.Edge) ([]int, error) {
	if g > mlCoarseCutoff {
		mate, _ := matching.HeavyEdgePairing(g, edges)
		matching.ImprovePairing(g, edges, mate)
		return mate, nil
	}
	w := make([][]int64, g)
	for i := range w {
		w[i] = make([]int64, g)
	}
	for _, e := range edges {
		w[e.U][e.V], w[e.V][e.U] = e.W, e.W
	}
	mate, _, err := matching.MaxWeightPerfectMatching(w)
	return mate, err
}

// contract aggregates a level's edges onto the next level's group IDs,
// dropping intra-group edges. Output edges are sorted by (U, V) so the
// whole pipeline is deterministic regardless of map iteration order.
func contract(edges []matching.Edge, newID []int) []matching.Edge {
	agg := make(map[uint64]int64, len(edges))
	for _, e := range edges {
		a, b := newID[e.U], newID[e.V]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		agg[uint64(a)<<32|uint64(b)] += e.W
	}
	out := make([]matching.Edge, 0, len(agg))
	for k, w := range agg {
		out = append(out, matching.Edge{U: int(k >> 32), V: int(k & 0xffffffff), W: w})
	}
	matching.SortEdges(out)
	return out
}

// refineLevel improves one level's slot order in place with local swaps.
//
// At a level with G groups each slot is an aligned block of n/G
// consecutive cores; because every machine fanout divides the power-of-two
// core count, two distinct aligned blocks are uniformly distant — every
// core of one is the same latency from every core of the other (their
// common ancestor is the ancestor of the two block roots). Evaluating a
// swap on the blocks' first cores is therefore exact, not an estimate.
//
// The heaviest contracted edges nominate moves: for each edge, slots near
// either endpoint are tried as new homes for the other, and the best
// strictly-improving swap (full delta over both groups' adjacency) is
// applied immediately.
func refineLevel(order []int, lv *mlLevel, machine *topology.Machine, n int) {
	g := len(order)
	if g < 4 {
		return
	}
	blockSize := n / g
	slotOf := make([]int, lv.groups)
	for i := range slotOf {
		slotOf[i] = -1
	}
	for s, gr := range order {
		slotOf[gr] = s
	}
	type half struct {
		to int
		w  int64
	}
	adj := make([][]half, lv.groups)
	for _, e := range lv.edges {
		adj[e.U] = append(adj[e.U], half{e.V, e.W})
		adj[e.V] = append(adj[e.V], half{e.U, e.W})
	}
	lat := func(p, q int) int64 {
		if p == q {
			return 0
		}
		return int64(machine.Latency(p*blockSize, q*blockSize))
	}
	work := 0
	// swapDelta is the exact cost change of exchanging the slots of groups
	// x and y (negative is an improvement). The x–y edge itself is
	// unaffected: latency is symmetric in the two slots.
	swapDelta := func(x, y int) int64 {
		work += len(adj[x]) + len(adj[y])
		sx, sy := slotOf[x], slotOf[y]
		var d int64
		for _, h := range adj[x] {
			if h.to == y {
				continue
			}
			sz := slotOf[h.to]
			d += h.w * (lat(sy, sz) - lat(sx, sz))
		}
		for _, h := range adj[y] {
			if h.to == x {
				continue
			}
			sz := slotOf[h.to]
			d += h.w * (lat(sx, sz) - lat(sy, sz))
		}
		return d
	}
	// tryMove looks for a better home for group mv among the slots nearest
	// (by index, hence by hierarchy) to anchor's slot, and applies the best
	// improving swap. Returns whether it improved.
	tryMove := func(anchor, mv int) bool {
		sa, sm := slotOf[anchor], slotOf[mv]
		cur := lat(sa, sm)
		if cur == 0 {
			return false
		}
		// Candidate slots: a window of mlRefineCandidates slots centered
		// on the anchor. Nearby slot indices share the low hierarchy
		// levels, so the window holds exactly the slots that could bring
		// mv closer to anchor.
		lo := sa - mlRefineCandidates/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + mlRefineCandidates + 1
		if hi > g {
			hi = g
		}
		bestDelta := int64(0)
		bestSlot := -1
		for cand := lo; cand < hi; cand++ {
			if cand == sm || cand == sa {
				continue
			}
			d := swapDelta(mv, order[cand])
			if d < bestDelta {
				bestDelta, bestSlot = d, cand
			}
		}
		if bestSlot < 0 {
			return false
		}
		occ := order[bestSlot]
		order[bestSlot], order[sm] = mv, occ
		slotOf[mv], slotOf[occ] = bestSlot, sm
		return true
	}
	edges := lv.edges
	if len(edges) > mlRefineEdgeCap {
		edges = edges[:mlRefineEdgeCap]
	}
	for pass := 0; pass < mlRefinePasses && work < mlRefineWorkCap; pass++ {
		improved := false
		for _, e := range edges {
			if work >= mlRefineWorkCap {
				break
			}
			if tryMove(e.U, e.V) {
				improved = true
			}
			if tryMove(e.V, e.U) {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// DefaultAutoThreshold is where Auto hands a matrix to the multilevel
// mapper instead of the exact blossom hierarchy: 128 threads is the last
// size where O(T³) matching per level is still interactive.
const DefaultAutoThreshold = 128

// Auto picks the mapper by problem size: the paper-exact Edmonds blossom
// hierarchy up to the threshold, the near-linear multilevel mapper above
// it. Existing small-machine results are bit-for-bit unchanged; manycore
// matrices stop being cubic.
type Auto struct {
	Threshold int
	exact     Algorithm
	fast      Algorithm
}

// NewAuto returns the size-dispatching mapper with the default threshold.
func NewAuto() *Auto {
	return &Auto{Threshold: DefaultAutoThreshold, exact: NewEdmonds(), fast: NewMultilevel()}
}

// Name implements Algorithm.
func (*Auto) Name() string { return "auto" }

// Map implements Algorithm.
func (a *Auto) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	if m.N() <= a.Threshold {
		return a.exact.Map(m, machine)
	}
	return a.fast.Map(m, machine)
}
