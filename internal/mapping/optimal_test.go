package mapping

import (
	"math/rand"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

func TestExhaustiveFindsKnownOptimum(t *testing.T) {
	machine := topology.Harpertown()
	m := pairMatrix(8) // pairs (i, i+4)
	p, err := Exhaustive{}.Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, 8)
	// Every pair on a shared L2 is the provable optimum.
	want := 4 * 100 * machine.LevelLatency(topology.LevelL2)
	if got := Cost(m, machine, p); got != want {
		t.Errorf("optimal cost = %d, want %d", got, want)
	}
	if (Exhaustive{}).Name() != "exhaustive-optimal" {
		t.Error("name")
	}
}

func TestExhaustiveLimits(t *testing.T) {
	machine := topology.Build("m16", topology.Spec{
		Chips: 2, L2PerChip: 2, CoresPerL2: 4,
		L2Latency: 8, ChipLatency: 40, BusLatency: 120,
	})
	if _, err := (Exhaustive{}).Map(comm.NewMatrix(16), machine); err == nil {
		t.Error("16 threads accepted by exhaustive search")
	}
	if _, err := (Exhaustive{}).Map(comm.NewMatrix(4), topology.Harpertown()); err == nil {
		t.Error("thread/core mismatch accepted")
	}
}

// TestEdmondsNearOptimal measures the hierarchical mapper's optimality gap
// on random structured matrices. The paper's algorithm is a heuristic above
// the pair level ("does not guarantee ... the most amount of
// communication"), but it should stay close to optimal on 8 cores.
func TestEdmondsNearOptimal(t *testing.T) {
	machine := topology.Harpertown()
	rng := rand.New(rand.NewSource(21))
	worst := 1.0
	for trial := 0; trial < 30; trial++ {
		m := comm.NewMatrix(8)
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				m.Add(i, j, uint64(rng.Intn(100)))
			}
		}
		p, err := NewEdmonds().Map(m, machine)
		if err != nil {
			t.Fatal(err)
		}
		gap, err := OptimalityGap(m, machine, p)
		if err != nil {
			t.Fatal(err)
		}
		if gap < 1 {
			t.Fatalf("gap below 1: %v (exhaustive search broken?)", gap)
		}
		if gap > worst {
			worst = gap
		}
	}
	if worst > 1.35 {
		t.Errorf("hierarchical mapper strayed %.0f%% above optimal", (worst-1)*100)
	}
	t.Logf("worst optimality gap over 30 random matrices: %.3f", worst)
}

func TestOptimalityGapZeroMatrix(t *testing.T) {
	machine := topology.Harpertown()
	m := comm.NewMatrix(8)
	id := []int{0, 1, 2, 3, 4, 5, 6, 7}
	gap, err := OptimalityGap(m, machine, id)
	if err != nil || gap != 1 {
		t.Errorf("gap = %v, %v; want 1, nil", gap, err)
	}
}
