package mapping

import (
	"math/rand"
	"strings"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// noiseEpochs builds a deterministic sequence of mutually-uncorrelated
// heavy matrices — what fault-polluted detection looks like: every epoch
// reports a different "pattern", each one strong enough to clear the gain
// hysteresis if the controller were naive enough to chase it.
func noiseEpochs(seed int64, count int) []*comm.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*comm.Matrix, count)
	for e := range out {
		m := comm.NewMatrix(8)
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				m.Set(i, j, uint64(rng.Intn(1_000_000)))
			}
		}
		out[e] = m
	}
	return out
}

func feedNoise(t *testing.T, o *OnlineMapper, seed int64, count int) []OnlineDecision {
	t.Helper()
	decs := make([]OnlineDecision, 0, count)
	for _, m := range noiseEpochs(seed, count) {
		dec, err := o.Observe(m)
		if err != nil {
			t.Fatal(err)
		}
		decs = append(decs, dec)
	}
	return decs
}

// Uncorrelated epochs must drain confidence below the gate within a few
// epochs and then freeze the controller: once the gate engages, no more
// remaps, placement held, reason saying why. (The EWMA needs a couple of
// epochs of evidence, so the very first noise epochs may still remap —
// the property under test is that the chasing *stops*.)
func TestLowConfidenceHoldsPlacement(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	if _, err := o.Observe(heavyDistant()); err != nil {
		t.Fatal(err)
	}
	decs := feedNoise(t, o, 7, 10)
	gated := -1
	for i, dec := range decs {
		if strings.Contains(dec.Reason, "low confidence") {
			gated = i
			break
		}
	}
	if gated == -1 {
		t.Fatalf("gate never engaged over 10 noise epochs (final confidence %.3f)", o.Confidence())
	}
	if gated > 4 {
		t.Errorf("gate took %d epochs to engage, want a few", gated+1)
	}
	frozen := decs[gated].Placement
	for i, dec := range decs[gated:] {
		if dec.Remap {
			t.Errorf("remap on noise epoch %d after the gate engaged: %+v", gated+i, dec)
		}
		if !strings.Contains(dec.Reason, "low confidence") {
			t.Errorf("epoch %d reason = %q, want a low-confidence hold", gated+i, dec.Reason)
		}
		if dec.Confidence >= o.MinConfidence {
			t.Errorf("epoch %d confidence %.3f not below gate", gated+i, dec.Confidence)
		}
	}
	if countMigrations(frozen, o.Placement()) != 0 {
		t.Error("placement drifted after the gate engaged")
	}
}

// With a Fallback configured, draining confidence must adopt it exactly
// once, then hold.
func TestLowConfidenceFallsBackToBaseline(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	identity := make([]int, 8)
	for i := range identity {
		identity[i] = i
	}
	o.Fallback = identity
	if _, err := o.Observe(heavyDistant()); err != nil {
		t.Fatal(err)
	}
	if countMigrations(o.Placement(), identity) == 0 {
		t.Fatal("initial remap did not move anything; test premise broken")
	}
	decs := feedNoise(t, o, 11, 12)
	var adoptions int
	for _, dec := range decs {
		if dec.Remap && strings.Contains(dec.Reason, "fallback") {
			adoptions++
		}
	}
	if adoptions != 1 {
		t.Errorf("fallback adopted %d times, want exactly 1 (then hold)", adoptions)
	}
	if o.Fallbacks() != 1 {
		t.Errorf("Fallbacks() = %d", o.Fallbacks())
	}
	if countMigrations(o.Placement(), identity) != 0 {
		t.Errorf("final placement %v is not the fallback", o.Placement())
	}
}

// Once the pattern stabilizes again, the EWMA must recover and the
// controller must resume remapping.
func TestConfidenceRecoversAfterNoise(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	feedNoise(t, o, 13, 10)
	if o.Confidence() >= o.MinConfidence {
		t.Fatalf("noise did not drain confidence: %.3f", o.Confidence())
	}
	// A stable strong pattern: each epoch is identical, similarity 1.
	var remapped bool
	for i := 0; i < 6; i++ {
		dec, err := o.Observe(heavyDistant())
		if err != nil {
			t.Fatal(err)
		}
		remapped = remapped || dec.Remap
	}
	if o.Confidence() < o.MinConfidence {
		t.Errorf("confidence stuck at %.3f after 6 stable epochs", o.Confidence())
	}
	if !remapped {
		t.Error("controller never resumed remapping after recovery")
	}
}

// MinConfidence = 0 disables the gate entirely.
func TestConfidenceGateDisabled(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	o.MinConfidence = 0
	for _, dec := range feedNoise(t, o, 17, 10) {
		if strings.Contains(dec.Reason, "low confidence") {
			t.Fatalf("gate fired while disabled: %+v", dec)
		}
	}
}

// Confidence must stay within [0, 1], start at 1, and ride along on every
// decision.
func TestConfidenceBounds(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	if o.Confidence() != 1 {
		t.Errorf("initial confidence = %.3f, want 1", o.Confidence())
	}
	dec, err := o.Observe(heavyDistant())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Confidence != 1 {
		t.Errorf("single-epoch confidence = %.3f, want 1 (no pair to compare yet)", dec.Confidence)
	}
	for _, d := range feedNoise(t, o, 19, 20) {
		if d.Confidence < 0 || d.Confidence > 1 {
			t.Fatalf("confidence %.3f out of [0,1]", d.Confidence)
		}
	}
}

// Idle epochs must not touch the confidence score (no information either
// way).
func TestIdleEpochsDoNotMoveConfidence(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	feedNoise(t, o, 23, 6)
	before := o.Confidence()
	for i := 0; i < 5; i++ {
		if _, err := o.Observe(comm.NewMatrix(8)); err != nil {
			t.Fatal(err)
		}
	}
	if o.Confidence() != before {
		t.Errorf("idle epochs moved confidence %.3f -> %.3f", before, o.Confidence())
	}
}
