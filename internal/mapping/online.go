package mapping

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// DefaultMinGain is the default remap hysteresis: the reduction of the
// mapping cost function (communication units × interconnect cycles) one
// epoch must promise before the controller issues a remap. Detected
// communication units are samples, not raw coherence events, so this
// threshold is expressed in the matrix's own unit-cycles; tune it to the
// detector and epoch length in use.
const DefaultMinGain = 2_000

// OnlineDecision describes what the controller chose to do after an epoch.
type OnlineDecision struct {
	// Remap is true when the controller issued a new placement.
	Remap bool
	// Placement is the placement in force after the decision.
	Placement []int
	// Migrations is the number of threads that had to move.
	Migrations int
	// Reason explains the decision ("phase change", "insufficient gain",
	// "pattern stable", "warmup").
	Reason string
	// PredictedGain is the reduction of the mapping cost function the new
	// placement achieves on the epoch matrix (0 when not remapping).
	PredictedGain uint64
}

// OnlineMapper is the dynamic-migration controller of the paper's future
// work (Section VII): it consumes per-epoch communication matrices (from a
// comm.EpochDetector-instrumented run), detects phase changes, and issues
// remaps only when the predicted communication-cost saving exceeds the
// migration cost — the hysteresis that keeps a naive remapper from
// thrashing.
type OnlineMapper struct {
	// MinGain is the remap hysteresis in mapping-cost units (see
	// DefaultMinGain). Raise it to make the controller more conservative.
	MinGain uint64

	machine   *topology.Machine
	mapper    Algorithm
	tracker   *PhaseTracker
	placement []int
	remaps    int
	decisions int
}

// NewOnlineMapper builds a controller for the machine using the paper's
// Edmonds mapper and a phase-change threshold (0 selects the default).
func NewOnlineMapper(machine *topology.Machine, threshold float64) *OnlineMapper {
	n := machine.NumCores()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	return &OnlineMapper{
		MinGain:   DefaultMinGain,
		machine:   machine,
		mapper:    NewEdmonds(),
		tracker:   NewPhaseTracker(threshold),
		placement: identity,
	}
}

// Placement returns the placement currently in force.
func (o *OnlineMapper) Placement() []int {
	return append([]int(nil), o.placement...)
}

// Remaps returns how many remaps the controller has issued.
func (o *OnlineMapper) Remaps() int { return o.remaps }

// Observe feeds one epoch's communication matrix and returns the decision.
// Every non-idle epoch is evaluated against the current placement — even
// when the pattern is stable — so a remap declined earlier (e.g. the epoch
// was too short to justify it) is reconsidered while the opportunity
// persists.
func (o *OnlineMapper) Observe(epoch *comm.Matrix) (OnlineDecision, error) {
	o.decisions++
	keep := OnlineDecision{Placement: o.Placement()}
	if epoch == nil || epoch.Total() == 0 {
		keep.Reason = "idle epoch"
		return keep, nil
	}
	changed := o.tracker.Observe(epoch)
	candidate, err := o.mapper.Map(epoch, o.machine)
	if err != nil {
		return keep, fmt.Errorf("mapping: online remap: %w", err)
	}
	oldCost := Cost(epoch, o.machine, o.placement)
	newCost := Cost(epoch, o.machine, candidate)
	if newCost >= oldCost {
		if changed {
			keep.Reason = "current placement already optimal for new phase"
		} else {
			keep.Reason = "pattern stable"
		}
		return keep, nil
	}
	gain := oldCost - newCost
	if gain < o.MinGain {
		keep.Reason = "insufficient gain"
		return keep, nil
	}
	migrations := countMigrations(o.placement, candidate)
	o.placement = candidate
	o.remaps++
	reason := "accumulated gain"
	if changed {
		reason = "phase change"
	}
	return OnlineDecision{
		Remap:         true,
		Placement:     o.Placement(),
		Migrations:    migrations,
		Reason:        reason,
		PredictedGain: gain,
	}, nil
}

func countMigrations(old, new []int) int {
	n := 0
	for i := range old {
		if old[i] != new[i] {
			n++
		}
	}
	return n
}
