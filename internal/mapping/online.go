package mapping

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// DefaultMinGain is the default remap hysteresis: the reduction of the
// mapping cost function (communication units × interconnect cycles) one
// epoch must promise before the controller issues a remap. Detected
// communication units are samples, not raw coherence events, so this
// threshold is expressed in the matrix's own unit-cycles; tune it to the
// detector and epoch length in use.
const DefaultMinGain = 2_000

// DefaultMinConfidence is the default graceful-degradation gate: when the
// controller's confidence in the detected pattern falls below it, remaps
// are suspended (see OnlineMapper.MinConfidence). 0.5 is chosen so a
// single legitimate phase change (one epoch of zero similarity folded
// into a confident history: 0.5·0 + 0.5·1 = 0.5) still passes the strict
// < gate, while sustained noise — whose epoch-to-epoch similarity
// fluctuates around zero — drains confidence well below it.
const DefaultMinConfidence = 0.5

// confidenceAlpha is the EWMA weight of the newest epoch-to-epoch
// similarity sample in the confidence score: with 0.5, one clean epoch
// after a noisy stretch recovers half the lost confidence, so the
// controller neither flaps on a single bad window nor stays timid after
// the noise has passed.
const confidenceAlpha = 0.5

// OnlineDecision describes what the controller chose to do after an epoch.
type OnlineDecision struct {
	// Remap is true when the controller issued a new placement.
	Remap bool
	// Placement is the placement in force after the decision.
	Placement []int
	// Migrations is the number of threads that had to move.
	Migrations int
	// Reason explains the decision ("phase change", "insufficient gain",
	// "pattern stable", "warmup", "low confidence: ...").
	Reason string
	// PredictedGain is the reduction of the mapping cost function the new
	// placement achieves on the epoch matrix (0 when not remapping).
	PredictedGain uint64
	// Confidence is the controller's pattern-stability score in [0, 1]
	// after folding in this epoch (1 until two non-idle epochs exist).
	Confidence float64
}

// OnlineMapper is the dynamic-migration controller of the paper's future
// work (Section VII): it consumes per-epoch communication matrices (from a
// comm.EpochDetector-instrumented run), detects phase changes, and issues
// remaps only when the predicted communication-cost saving exceeds the
// migration cost — the hysteresis that keeps a naive remapper from
// thrashing.
type OnlineMapper struct {
	// MinGain is the remap hysteresis in mapping-cost units (see
	// DefaultMinGain). Raise it to make the controller more conservative.
	MinGain uint64
	// MinConfidence is the graceful-degradation gate: the controller
	// keeps an EWMA of the Pearson similarity between consecutive
	// non-idle epoch matrices (its "confidence" that the detected
	// pattern is signal, not noise). Below this gate it stops trusting
	// the matrix — it holds the current placement, or adopts Fallback —
	// instead of thrashing on a pattern that changes every epoch, which
	// is exactly what fault-polluted detection looks like. 0 disables
	// the gate; NewOnlineMapper sets DefaultMinConfidence.
	MinConfidence float64
	// Fallback, when non-nil, is the placement adopted while confidence
	// is below the gate — typically the OS-scheduler baseline placement,
	// making "detector too noisy to use" degrade to "what the system
	// would do without detection" rather than to an arbitrary stale map.
	Fallback []int

	machine    *topology.Machine
	mapper     Algorithm
	tracker    *PhaseTracker
	placement  []int
	remaps     int
	decisions  int
	fallbacks  int
	confidence float64
	prevEpoch  *comm.Matrix
}

// NewOnlineMapper builds a controller for the machine using the
// size-dispatching Auto mapper (the paper's Edmonds hierarchy on small
// machines, multilevel on manycore ones) and a phase-change threshold
// (0 selects the default).
func NewOnlineMapper(machine *topology.Machine, threshold float64) *OnlineMapper {
	n := machine.NumCores()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	return &OnlineMapper{
		MinGain:       DefaultMinGain,
		MinConfidence: DefaultMinConfidence,
		machine:       machine,
		mapper:        NewAuto(),
		tracker:       NewPhaseTracker(threshold),
		placement:     identity,
		confidence:    1,
	}
}

// SetAlgorithm replaces the mapper consulted on each remap decision. The
// serving layer uses it to keep the size-dispatching Auto default while
// letting deadline tests install a deliberately slow algorithm; a nil
// argument keeps the current mapper.
func (o *OnlineMapper) SetAlgorithm(a Algorithm) {
	if a != nil {
		o.mapper = a
	}
}

// Decisions returns how many epochs the controller has evaluated
// (including idle and held ones).
func (o *OnlineMapper) Decisions() int { return o.decisions }

// Placement returns the placement currently in force.
func (o *OnlineMapper) Placement() []int {
	return append([]int(nil), o.placement...)
}

// Remaps returns how many gain-driven remaps the controller has issued
// (fallback adoptions are counted separately by Fallbacks).
func (o *OnlineMapper) Remaps() int { return o.remaps }

// Fallbacks returns how many times low confidence made the controller
// adopt the Fallback placement.
func (o *OnlineMapper) Fallbacks() int { return o.fallbacks }

// Confidence returns the current pattern-stability score in [0, 1].
func (o *OnlineMapper) Confidence() float64 { return o.confidence }

// observeConfidence folds one non-idle epoch into the confidence EWMA:
// the sample is the Pearson similarity between this epoch's matrix and
// the previous one, clamped at 0 (anti-correlation is as untrustworthy as
// no correlation). Before two epochs exist, confidence stays at 1.
func (o *OnlineMapper) observeConfidence(epoch *comm.Matrix) {
	if o.prevEpoch != nil {
		s := o.prevEpoch.Similarity(epoch)
		if s < 0 {
			s = 0
		}
		o.confidence = confidenceAlpha*s + (1-confidenceAlpha)*o.confidence
	}
	o.prevEpoch = epoch.Clone()
}

// Observe feeds one epoch's communication matrix and returns the decision.
// Every non-idle epoch is evaluated against the current placement — even
// when the pattern is stable — so a remap declined earlier (e.g. the epoch
// was too short to justify it) is reconsidered while the opportunity
// persists.
func (o *OnlineMapper) Observe(epoch *comm.Matrix) (OnlineDecision, error) {
	o.decisions++
	keep := OnlineDecision{Placement: o.Placement(), Confidence: o.confidence}
	if epoch == nil || epoch.Total() == 0 {
		keep.Reason = "idle epoch"
		return keep, nil
	}
	o.observeConfidence(epoch)
	keep.Confidence = o.confidence

	// Graceful degradation: below the confidence gate the epoch matrix
	// is treated as noise. Adopt the fallback placement if one is
	// configured and not already in force; otherwise hold still.
	if o.MinConfidence > 0 && o.confidence < o.MinConfidence {
		if o.Fallback != nil && countMigrations(o.placement, o.Fallback) > 0 {
			migrations := countMigrations(o.placement, o.Fallback)
			o.placement = append([]int(nil), o.Fallback...)
			o.fallbacks++
			return OnlineDecision{
				Remap:      true,
				Placement:  o.Placement(),
				Migrations: migrations,
				Reason:     "low confidence: fallback to baseline placement",
				Confidence: o.confidence,
			}, nil
		}
		keep.Reason = "low confidence: holding placement"
		return keep, nil
	}

	changed := o.tracker.Observe(epoch)
	candidate, err := o.mapper.Map(epoch, o.machine)
	if err != nil {
		return keep, fmt.Errorf("mapping: online remap: %w", err)
	}
	oldCost := Cost(epoch, o.machine, o.placement)
	newCost := Cost(epoch, o.machine, candidate)
	if newCost >= oldCost {
		if changed {
			keep.Reason = "current placement already optimal for new phase"
		} else {
			keep.Reason = "pattern stable"
		}
		return keep, nil
	}
	gain := oldCost - newCost
	if gain < o.MinGain {
		keep.Reason = "insufficient gain"
		return keep, nil
	}
	migrations := countMigrations(o.placement, candidate)
	o.placement = candidate
	o.remaps++
	reason := "accumulated gain"
	if changed {
		reason = "phase change"
	}
	return OnlineDecision{
		Remap:         true,
		Placement:     o.Placement(),
		Migrations:    migrations,
		Reason:        reason,
		PredictedGain: gain,
		Confidence:    o.confidence,
	}, nil
}

func countMigrations(old, new []int) int {
	n := 0
	for i := range old {
		if old[i] != new[i] {
			n++
		}
	}
	return n
}
