package mapping

import (
	"encoding/binary"
	"fmt"
	"math"

	"tlbmap/internal/comm"
)

// floatBits/floatFromBits spell out that confidence round-trips through
// its exact IEEE 754 representation — no formatting, no precision loss.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// OnlineState is the serializable controller state of an OnlineMapper: everything
// the controller accumulates across epochs, so a recovered instance makes
// byte-identical decisions from the next epoch on. Tuning knobs (MinGain,
// MinConfidence, Fallback, machine, algorithm) are configuration, not
// state — the restoring side reconstructs those.
type OnlineState struct {
	Placement  []int
	Remaps     int
	Fallbacks  int
	Decisions  int
	Confidence float64
	// PrevEpoch is the last non-idle epoch matrix folded into the
	// confidence EWMA (nil before the first).
	PrevEpoch *comm.Matrix
	// Reference and Phases mirror the PhaseTracker: the pattern the
	// current mapping is based on and how many phases were observed.
	Reference *comm.Matrix
	Phases    int
}

// State captures the controller's accumulated state.
func (o *OnlineMapper) State() OnlineState {
	st := OnlineState{
		Placement:  o.Placement(),
		Remaps:     o.remaps,
		Fallbacks:  o.fallbacks,
		Decisions:  o.decisions,
		Confidence: o.confidence,
		Phases:     o.tracker.phases,
	}
	if o.prevEpoch != nil {
		st.PrevEpoch = o.prevEpoch.Clone()
	}
	if o.tracker.reference != nil {
		st.Reference = o.tracker.reference.Clone()
	}
	return st
}

// Restore overwrites the controller's accumulated state with a snapshot
// taken by State. The placement must match the machine's core count; a
// mismatch is an error and leaves the controller untouched.
func (o *OnlineMapper) Restore(st OnlineState) error {
	if len(st.Placement) != o.machine.NumCores() {
		return fmt.Errorf("mapping: restore: placement for %d cores on a %d-core machine",
			len(st.Placement), o.machine.NumCores())
	}
	o.placement = append([]int(nil), st.Placement...)
	o.remaps = st.Remaps
	o.fallbacks = st.Fallbacks
	o.decisions = st.Decisions
	o.confidence = st.Confidence
	o.prevEpoch = nil
	if st.PrevEpoch != nil {
		o.prevEpoch = st.PrevEpoch.Clone()
	}
	o.tracker.phases = st.Phases
	o.tracker.reference = nil
	if st.Reference != nil {
		o.tracker.reference = st.Reference.Clone()
	}
	return nil
}

// AppendBinary appends the state's deterministic binary encoding:
//
//	u32 placement length, then u32 per core
//	u64 remaps, u64 fallbacks, u64 decisions, u64 phases
//	f64 confidence (IEEE 754 bits)
//	optional matrix ×2 (prev epoch, tracker reference)
func (st OnlineState) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Placement)))
	for _, c := range st.Placement {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Remaps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Fallbacks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Decisions))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Phases))
	buf = binary.LittleEndian.AppendUint64(buf, floatBits(st.Confidence))
	buf = comm.AppendOptionalMatrix(buf, st.PrevEpoch)
	buf = comm.AppendOptionalMatrix(buf, st.Reference)
	return buf
}

// DecodeOnlineState decodes what AppendBinary wrote, returning the state
// and the remaining bytes.
func DecodeOnlineState(data []byte) (OnlineState, []byte, error) {
	var st OnlineState
	if len(data) < 4 {
		return st, nil, fmt.Errorf("mapping: state decode: short buffer")
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	data = data[4:]
	if n < 0 || n > 1<<24 {
		return st, nil, fmt.Errorf("mapping: state decode: implausible placement length %d", n)
	}
	if len(data) < n*4+8*5 {
		return st, nil, fmt.Errorf("mapping: state decode: truncated (%d bytes for %d cores)", len(data), n)
	}
	st.Placement = make([]int, n)
	for i := range st.Placement {
		st.Placement[i] = int(binary.LittleEndian.Uint32(data[:4]))
		data = data[4:]
	}
	st.Remaps = int(binary.LittleEndian.Uint64(data[0:8]))
	st.Fallbacks = int(binary.LittleEndian.Uint64(data[8:16]))
	st.Decisions = int(binary.LittleEndian.Uint64(data[16:24]))
	st.Phases = int(binary.LittleEndian.Uint64(data[24:32]))
	st.Confidence = floatFromBits(binary.LittleEndian.Uint64(data[32:40]))
	data = data[40:]
	var err error
	if st.PrevEpoch, data, err = comm.DecodeOptionalMatrix(data); err != nil {
		return st, nil, fmt.Errorf("mapping: state decode: prev epoch: %w", err)
	}
	if st.Reference, data, err = comm.DecodeOptionalMatrix(data); err != nil {
		return st, nil, fmt.Errorf("mapping: state decode: tracker reference: %w", err)
	}
	return st, data, nil
}
