package mapping

import (
	"fmt"
	"math/rand"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// benchScaleMatrix builds the scrambled-locality manycore pattern of the
// scale tests: partner pairs and a ring hidden behind a random
// permutation, plus long-range noise — about 16 partners per thread.
func benchScaleMatrix(n int) *comm.Matrix {
	rng := rand.New(rand.NewSource(int64(n)))
	m := comm.NewMatrix(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		m.Add(perm[i], perm[(i+1)%n], 5_000+uint64(rng.Intn(1000)))
		m.Add(perm[i], perm[i^1], 8_000+uint64(rng.Intn(1000)))
		for k := 0; k < 12; k++ {
			m.Add(perm[i], perm[rng.Intn(n)], uint64(rng.Intn(200)))
		}
	}
	return m
}

// BenchmarkMultilevel measures end-to-end multilevel mapping throughput on
// the canonical manycore machines and reports an events/sec custom metric
// (one event is one non-zero matrix cell consumed by the mapper).
// scripts/bench.sh records these numbers in BENCH_engine.json.
func BenchmarkMultilevel(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("threads%d", n), func(b *testing.B) {
			machine := topology.Manycore(n)
			m := benchScaleMatrix(n)
			nnz := m.NNZ()
			ml := NewMultilevel()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ml.Map(m, machine); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nnz)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
