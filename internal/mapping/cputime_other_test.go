//go:build !unix

package mapping

import (
	"testing"
	"time"
)

// processCPU falls back to wall clock where rusage is unavailable; timing
// assertions then carry the usual loaded-host caveat.
func processCPU(t *testing.T) time.Duration {
	t.Helper()
	return time.Since(time.Time{})
}
