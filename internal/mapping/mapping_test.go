package mapping

import (
	"math/rand"
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

func checkPermutation(t *testing.T, p []int, n int) {
	t.Helper()
	if len(p) != n {
		t.Fatalf("placement has %d entries, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for th, c := range p {
		if c < 0 || c >= n || seen[c] {
			t.Fatalf("invalid placement %v (thread %d -> core %d)", p, th, c)
		}
		seen[c] = true
	}
}

// chainMatrix builds the canonical domain-decomposition pattern: heavy
// communication between adjacent thread IDs.
func chainMatrix(n int) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 0; i+1 < n; i++ {
		m.Add(i, i+1, 100)
	}
	return m
}

// pairMatrix links thread t with thread t+n/2 heavily (the LU-like
// distant pattern).
func pairMatrix(n int) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 0; i < n/2; i++ {
		m.Add(i, i+n/2, 100)
	}
	return m
}

func TestEdmondsOnChainIsOptimal(t *testing.T) {
	machine := topology.Harpertown()
	m := chainMatrix(8)
	p, err := NewEdmonds().Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, 8)
	// The identity is an optimal embedding of a chain; the mapper must
	// reach the same cost.
	id := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if got, want := Cost(m, machine, p), Cost(m, machine, id); got != want {
		t.Errorf("chain cost = %d, optimal = %d (placement %v)", got, want, p)
	}
}

func TestEdmondsOnDistantPairs(t *testing.T) {
	machine := topology.Harpertown()
	m := pairMatrix(8)
	p, err := NewEdmonds().Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, 8)
	// Every heavy pair must land on a shared L2: cost = 4 pairs * 100 * 8.
	for i := 0; i < 4; i++ {
		if !machine.SameL2(p[i], p[i+4]) {
			t.Errorf("pair (%d,%d) split: cores %d and %d", i, i+4, p[i], p[i+4])
		}
	}
	if got := Cost(m, machine, p); got != 4*100*machine.LevelLatency(topology.LevelL2) {
		t.Errorf("cost = %d", got)
	}
}

func TestEdmondsBeatsRandomOnStructuredPattern(t *testing.T) {
	machine := topology.Harpertown()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		// A random structured matrix: random heavy pairs.
		m := comm.NewMatrix(8)
		perm := rng.Perm(8)
		for i := 0; i < 4; i++ {
			m.Add(perm[2*i], perm[2*i+1], uint64(50+rng.Intn(100)))
		}
		p, err := NewEdmonds().Map(m, machine)
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, p, 8)
		random := rng.Perm(8)
		if Cost(m, machine, p) > Cost(m, machine, random) {
			t.Errorf("edmonds cost %d worse than random %d for %v",
				Cost(m, machine, p), Cost(m, machine, random), m)
		}
	}
}

func TestEdmondsErrors(t *testing.T) {
	machine := topology.Harpertown()
	if _, err := NewEdmonds().Map(comm.NewMatrix(4), machine); err == nil {
		t.Error("thread/core mismatch accepted")
	}
	m6 := topology.Build("m6", topology.Spec{Chips: 3, L2PerChip: 1, CoresPerL2: 2,
		L2Latency: 8, ChipLatency: 40, BusLatency: 120})
	if _, err := NewEdmonds().Map(comm.NewMatrix(6), m6); err == nil {
		t.Error("non-power-of-two thread count accepted")
	}
}

func TestGreedyMatchMapperValid(t *testing.T) {
	machine := topology.Harpertown()
	p, err := NewGreedyMatch().Map(chainMatrix(8), machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, 8)
	if NewGreedyMatch().Name() != "greedy-match" {
		t.Error("name")
	}
}

func TestHWeightMatchesPaperFormula(t *testing.T) {
	m := comm.NewMatrix(4)
	m.Add(0, 2, 1)
	m.Add(0, 3, 2)
	m.Add(1, 2, 4)
	m.Add(1, 3, 8)
	// H[(0,1),(2,3)] = M[0,2]+M[0,3]+M[1,2]+M[1,3] = 15.
	if got := HWeight(m, []int{0, 1}, []int{2, 3}); got != 15 {
		t.Errorf("HWeight = %d, want 15", got)
	}
}

func TestCostZeroWhenColocated(t *testing.T) {
	machine := topology.Harpertown()
	m := comm.NewMatrix(8)
	m.Add(0, 0, 5) // ignored
	if Cost(m, machine, []int{0, 1, 2, 3, 4, 5, 6, 7}) != 0 {
		t.Error("empty matrix should cost 0")
	}
}

func TestIdentityMapper(t *testing.T) {
	machine := topology.Harpertown()
	p, err := Identity{}.Map(comm.NewMatrix(8), machine)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range p {
		if c != i {
			t.Errorf("identity[%d] = %d", i, c)
		}
	}
	if _, err := (Identity{}).Map(comm.NewMatrix(4), machine); err == nil {
		t.Error("size mismatch accepted")
	}
	if (Identity{}).Name() != "identity" {
		t.Error("name")
	}
}

func TestOSSchedulerRandomButValid(t *testing.T) {
	machine := topology.Harpertown()
	os := NewOSScheduler(3)
	m := comm.NewMatrix(8)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		p, err := os.Map(m, machine)
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, p, 8)
		key := ""
		for _, c := range p {
			key += string(rune('0' + c))
		}
		seen[key] = true
	}
	if len(seen) < 3 {
		t.Errorf("OS scheduler produced only %d distinct placements in 10 draws", len(seen))
	}
	if os.Name() != "os" {
		t.Error("name")
	}
	if _, err := os.Map(comm.NewMatrix(4), machine); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestOSSchedulerReproducible(t *testing.T) {
	machine := topology.Harpertown()
	m := comm.NewMatrix(8)
	a, _ := NewOSScheduler(7).Map(m, machine)
	b, _ := NewOSScheduler(7).Map(m, machine)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestRecursiveBipartition(t *testing.T) {
	machine := topology.Harpertown()
	rb := RecursiveBipartition{}
	if rb.Name() != "recursive-bipartition" {
		t.Error("name")
	}
	m := pairMatrix(8)
	p, err := rb.Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, 8)
	// The heavy pairs must not cross the chip boundary (the first cut).
	for i := 0; i < 4; i++ {
		if !machine.SameChip(p[i], p[i+4]) {
			t.Errorf("bipartition split pair (%d,%d) across chips", i, i+4)
		}
	}
	if _, err := rb.Map(comm.NewMatrix(4), machine); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestRecursiveBipartitionMatchesEdmondsOnChain(t *testing.T) {
	machine := topology.Harpertown()
	m := chainMatrix(8)
	pRB, err := RecursiveBipartition{}.Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	pEd, err := NewEdmonds().Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	if Cost(m, machine, pRB) != Cost(m, machine, pEd) {
		t.Errorf("chain: bipartition cost %d vs edmonds %d",
			Cost(m, machine, pRB), Cost(m, machine, pEd))
	}
}

func TestKLSplitUsedForLargeInputs(t *testing.T) {
	// 32 threads force the KL path (exact split caps at 16).
	machine := topology.Build("m32", topology.Spec{
		Chips: 2, L2PerChip: 4, CoresPerL2: 4,
		L2Latency: 8, ChipLatency: 40, BusLatency: 120,
	})
	m := chainMatrix(32)
	p, err := RecursiveBipartition{}.Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, 32)
	rng := rand.New(rand.NewSource(1))
	if Cost(m, machine, p) > Cost(m, machine, rng.Perm(32)) {
		t.Error("KL bipartition worse than random on a chain")
	}
}

func TestEdmondsScalesTo32Cores(t *testing.T) {
	machine := topology.Build("m32", topology.Spec{
		Chips: 2, L2PerChip: 4, CoresPerL2: 4,
		L2Latency: 8, ChipLatency: 40, BusLatency: 120,
	})
	m := chainMatrix(32)
	p, err := NewEdmonds().Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, 32)
	// All chain neighbours that can share an L2 should: a chain of 32 on
	// 8 L2 domains of 4 cores keeps at least 24 of the 31 links inside a
	// domain in the optimum; require the mapper to do clearly better
	// than random.
	rng := rand.New(rand.NewSource(2))
	worst := uint64(0)
	for i := 0; i < 5; i++ {
		if c := Cost(m, machine, rng.Perm(32)); c > worst {
			worst = c
		}
	}
	if Cost(m, machine, p) >= worst/2 {
		t.Errorf("edmonds cost %d not clearly better than random %d", Cost(m, machine, p), worst)
	}
}
