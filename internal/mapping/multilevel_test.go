package mapping

import (
	"math/rand"
	"testing"
	"time"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// quality machines for the multilevel-vs-blossom comparison: every
// power-of-two size from 4 to 32, UMA and NUMA.
func qualityMachines() []*topology.Machine {
	return []*topology.Machine{
		topology.Build("q-4c", topology.Spec{
			Chips: 1, L2PerChip: 2, CoresPerL2: 2,
			L2Latency: 8, ChipLatency: 40, BusLatency: 120,
		}),
		topology.Harpertown(),
		topology.Build("q-16c", topology.Spec{
			Chips: 2, L2PerChip: 4, CoresPerL2: 2,
			L2Latency: 8, ChipLatency: 40, BusLatency: 120,
		}),
		topology.NUMA(2),
		topology.NUMA(4),
		topology.Build("q-32c", topology.Spec{
			NUMANodes: 2, Chips: 2, L2PerChip: 2, CoresPerL2: 4,
			L2Latency: 8, ChipLatency: 40, BusLatency: 90, NUMALatency: 240,
		}),
	}
}

// multilevelQualityOK is the shared quality oracle of the randomized test
// below and FuzzMultilevelVsBlossom: the multilevel cost must stay within
// a bounded factor of the blossom hierarchy's, with an additive slack of
// Total * L2-latency absorbing noise-scale differences on near-zero-cost
// instances. The factor is calibrated by TestMultilevelQualityVsBlossom,
// which logs the worst observed ratio across thousands of draws.
const multilevelQualityFactor = 2

func multilevelQualityOK(m *comm.Matrix, machine *topology.Machine, mlCost, blCost uint64) bool {
	slack := m.Total() * machine.LevelLatency(topology.LevelL2)
	return mlCost <= multilevelQualityFactor*blCost+slack
}

// TestMultilevelQualityVsBlossom draws randomized matrices of every shape
// on machines up to 32 cores and checks the multilevel mapper's cost
// against the paper's blossom hierarchy, logging the worst ratio seen.
func TestMultilevelQualityVsBlossom(t *testing.T) {
	const draws = 200
	ml, bl := NewMultilevel(), NewEdmonds()
	worst := 0.0
	for _, machine := range qualityMachines() {
		n := machine.NumCores()
		rng := rand.New(rand.NewSource(int64(n) * 2654435761))
		for d := 0; d < draws; d++ {
			m := randomMatrix(rng, n)
			pm, err := ml.Map(m, machine)
			if err != nil {
				t.Fatalf("%s draw %d: multilevel: %v", machine.Name, d, err)
			}
			checkPermutation(t, pm, n)
			pb, err := bl.Map(m, machine)
			if err != nil {
				t.Fatalf("%s draw %d: edmonds: %v", machine.Name, d, err)
			}
			mlCost := Cost(m, machine, pm)
			blCost := Cost(m, machine, pb)
			if !multilevelQualityOK(m, machine, mlCost, blCost) {
				t.Fatalf("%s draw %d: multilevel cost %d vs blossom %d exceeds the quality bound",
					machine.Name, d, mlCost, blCost)
			}
			if blCost > 0 {
				if r := float64(mlCost) / float64(blCost); r > worst {
					worst = r
				}
			}
		}
	}
	t.Logf("worst multilevel/blossom cost ratio: %.3f", worst)
}

// TestMultilevelDeterministic: equal matrices must yield identical
// placements — golden files and corpora depend on it.
func TestMultilevelDeterministic(t *testing.T) {
	machine := topology.Manycore(64)
	n := machine.NumCores()
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, n)
	ml := NewMultilevel()
	first, err := ml.Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := ml.Map(m.Clone(), machine)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("rep %d: placement diverged at thread %d: %d vs %d", rep, i, first[i], again[i])
			}
		}
	}
}

// TestMultilevelImprovesOnIdentity: on a clustered matrix whose heavy
// pairs are placed far apart by the identity, the multilevel mapper must
// find a strictly cheaper placement.
func TestMultilevelImprovesOnIdentity(t *testing.T) {
	machine := topology.Manycore(64)
	n := machine.NumCores()
	m := comm.NewMatrix(n)
	// Heavy pairs straddling the machine: thread i talks to thread n-1-i.
	for i := 0; i < n/2; i++ {
		m.Add(i, n-1-i, 10_000)
	}
	p, err := NewMultilevel().Map(m, machine)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, n)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	mlCost, idCost := Cost(m, machine, p), Cost(m, machine, identity)
	if mlCost >= idCost {
		t.Fatalf("multilevel cost %d did not improve on identity %d", mlCost, idCost)
	}
	// Every heavy pair can share an L2: the optimal cost is reachable and
	// the mapper should land close to it.
	optimal := m.Total() * machine.LevelLatency(topology.LevelL2)
	if mlCost > 4*optimal {
		t.Fatalf("multilevel cost %d is far from the achievable %d", mlCost, optimal)
	}
}

// TestMultilevel1024CoresUnder5s is the scale acceptance criterion: a
// 1024-thread, 1024-core mapping on the multilevel path completes in
// under five seconds.
func TestMultilevel1024CoresUnder5s(t *testing.T) {
	machine := topology.Manycore(1024)
	n := machine.NumCores()
	rng := rand.New(rand.NewSource(1024))
	m := comm.NewMatrix(n)
	if !m.IsSparse() {
		t.Fatalf("a %d-thread matrix should auto-select the sparse representation", n)
	}
	// A realistic sparse pattern — partner pairs, a ring and long-range
	// noise, ~16 partners per thread — scrambled by a random permutation
	// so the identity placement scatters every cluster across sockets.
	// The mapper's job is to recover the hidden locality.
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		m.Add(perm[i], perm[(i+1)%n], 5_000+uint64(rng.Intn(1000)))
		m.Add(perm[i], perm[i^1], 8_000+uint64(rng.Intn(1000)))
		for k := 0; k < 12; k++ {
			m.Add(perm[i], perm[rng.Intn(n)], uint64(rng.Intn(200)))
		}
	}
	// Assert on process CPU time, not wall clock: under `go test ./...`
	// the go tool compiles the remaining packages concurrently with this
	// binary, and on a single-core host that time-slicing inflates the
	// wall clock of a ~0.7s mapping past any reasonable bound. CPU time
	// charges only the work this process actually did. The mapper is
	// single-goroutine and this test is sequential, so the delta is ours.
	cpuStart := processCPU(t)
	start := time.Now()
	p, err := NewMultilevel().Map(m, machine)
	elapsed := time.Since(start)
	cpu := processCPU(t) - cpuStart
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, p, n)
	// The bound holds only for an uninstrumented build: the race detector
	// multiplies the map-heavy coarsening cost ~20x. Quality assertions
	// below still run either way.
	if !raceEnabled && cpu > 5*time.Second {
		t.Fatalf("1024-core multilevel mapping took %v CPU (%v wall), want < 5s", cpu, elapsed)
	}
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	mlCost, idCost := Cost(m, machine, p), Cost(m, machine, identity)
	t.Logf("1024 cores: mapped in %v CPU (%v wall), cost %d vs identity %d (%.2fx)",
		cpu, elapsed, mlCost, idCost, float64(mlCost)/float64(idCost))
	// The scramble leaves ~7x on the table; recovering half of it is the
	// floor for calling this a mapper.
	if mlCost*2 >= idCost {
		t.Fatalf("multilevel recovered too little: cost %d vs identity %d", mlCost, idCost)
	}
}

// TestAutoDispatch: Auto must reproduce Edmonds bit-for-bit at or below
// the threshold and the multilevel mapper above it.
func TestAutoDispatch(t *testing.T) {
	auto := NewAuto()

	small := topology.Harpertown()
	rng := rand.New(rand.NewSource(11))
	m := randomMatrix(rng, small.NumCores())
	pa, err := auto.Map(m, small)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewEdmonds().Map(m, small)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pe[i] {
			t.Fatalf("auto diverged from edmonds at thread %d on %d cores", i, small.NumCores())
		}
	}

	big := topology.Manycore(256)
	mb := randomMatrix(rng, big.NumCores())
	pa, err = auto.Map(mb, big)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewMultilevel().Map(mb, big)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pm[i] {
			t.Fatalf("auto diverged from multilevel at thread %d on %d cores", i, big.NumCores())
		}
	}
}
