//go:build race

package mapping

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation slows the map-heavy multilevel path
// ~20x and makes wall/CPU performance bounds meaningless.
const raceEnabled = true
