package mapping

import (
	"tlbmap/internal/comm"
)

// PhaseTracker implements the dynamic-migration extension sketched in the
// paper's future work (Section VII): it watches successive communication
// matrices sampled during execution and decides when the pattern has
// changed enough that the threads should be remapped.
//
// A change is declared when the Pearson similarity between the new epoch's
// matrix and the matrix that produced the current mapping drops below the
// threshold. Because the TLB forgets stale entries quickly (Section IV-C),
// epoch matrices naturally reflect only recent behaviour, making this
// comparison meaningful.
type PhaseTracker struct {
	threshold float64
	reference *comm.Matrix
	phases    int
}

// NewPhaseTracker returns a tracker that reports a phase change when
// similarity to the reference pattern falls below threshold (a value in
// (0, 1); 0.8 works well for the NPB-style workloads).
func NewPhaseTracker(threshold float64) *PhaseTracker {
	if threshold <= 0 || threshold >= 1 {
		threshold = 0.8
	}
	return &PhaseTracker{threshold: threshold}
}

// Observe feeds the matrix detected during the latest epoch. It returns
// true when the pattern no longer resembles the reference pattern — the
// signal to re-run the mapper. The first observation always returns true
// (there is no mapping yet) and becomes the reference.
func (p *PhaseTracker) Observe(epoch *comm.Matrix) bool {
	if epoch == nil {
		return false
	}
	if p.reference == nil {
		p.reference = epoch.Clone()
		p.phases++
		return true
	}
	if epoch.Total() == 0 {
		// An idle epoch carries no pattern information.
		return false
	}
	sim := p.reference.Similarity(epoch)
	if sim < p.threshold {
		p.reference = epoch.Clone()
		p.phases++
		return true
	}
	return false
}

// Phases returns how many distinct phases have been observed (including the
// initial one).
func (p *PhaseTracker) Phases() int { return p.phases }

// Reference returns a copy of the pattern the current mapping is based on,
// or nil before the first observation.
func (p *PhaseTracker) Reference() *comm.Matrix {
	if p.reference == nil {
		return nil
	}
	return p.reference.Clone()
}
