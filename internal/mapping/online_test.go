package mapping

import (
	"testing"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// heavyDistant builds a matrix whose optimal mapping differs strongly from
// the identity: pairs (i, i+4) with weights large enough to dwarf the
// migration cost.
func heavyDistant() *comm.Matrix {
	m := comm.NewMatrix(8)
	for i := 0; i < 4; i++ {
		m.Add(i, i+4, 1_000_000)
	}
	return m
}

// heavyChain is the identity-friendly pattern at the same weight scale.
func heavyChain() *comm.Matrix {
	m := comm.NewMatrix(8)
	for i := 0; i+1 < 8; i++ {
		m.Add(i, i+1, 1_000_000)
	}
	return m
}

func TestOnlineMapperFirstPhaseRemaps(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	dec, err := o.Observe(heavyDistant())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Remap {
		t.Fatalf("first heavy phase not remapped: %s", dec.Reason)
	}
	if dec.Migrations == 0 || dec.PredictedGain == 0 {
		t.Errorf("decision incomplete: %+v", dec)
	}
	if o.Remaps() != 1 {
		t.Errorf("remaps = %d", o.Remaps())
	}
	// The new placement must pair the distant threads on L2 domains.
	machine := topology.Harpertown()
	for i := 0; i < 4; i++ {
		if !machine.SameL2(dec.Placement[i], dec.Placement[i+4]) {
			t.Errorf("pair (%d,%d) not colocated", i, i+4)
		}
	}
}

func TestOnlineMapperStablePhaseDoesNotThrash(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	if _, err := o.Observe(heavyDistant()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		dec, err := o.Observe(heavyDistant())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Remap {
			t.Fatalf("stable pattern remapped on epoch %d", i)
		}
	}
	if o.Remaps() != 1 {
		t.Errorf("remaps = %d, want 1", o.Remaps())
	}
}

func TestOnlineMapperFollowsPhaseChange(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	if _, err := o.Observe(heavyDistant()); err != nil {
		t.Fatal(err)
	}
	dec, err := o.Observe(heavyChain())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Remap {
		t.Fatalf("phase change ignored: %s", dec.Reason)
	}
	if o.Remaps() != 2 {
		t.Errorf("remaps = %d", o.Remaps())
	}
}

func TestOnlineMapperIgnoresIdleEpochs(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	dec, err := o.Observe(comm.NewMatrix(8))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Remap || dec.Reason != "idle epoch" {
		t.Errorf("idle epoch decision: %+v", dec)
	}
	if _, err := o.Observe(nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMapperInsufficientGain(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	// A pattern whose total communication is tiny compared to the
	// migration cost: remapping cannot pay off.
	weak := comm.NewMatrix(8)
	for i := 0; i < 4; i++ {
		weak.Add(i, i+4, 3)
	}
	dec, err := o.Observe(weak)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Remap {
		t.Error("remapped despite negligible gain")
	}
	if dec.Reason != "insufficient gain" {
		t.Errorf("reason = %q", dec.Reason)
	}
}

func TestOnlineMapperPlacementIsCopy(t *testing.T) {
	o := NewOnlineMapper(topology.Harpertown(), 0.8)
	p := o.Placement()
	p[0] = 99
	if o.Placement()[0] == 99 {
		t.Error("Placement aliases internal state")
	}
}
