//go:build unix

package mapping

import (
	"syscall"
	"testing"
	"time"
)

// processCPU returns the CPU time (user + system) consumed by this test
// process so far. Timing assertions measure deltas of this instead of
// wall clock, which a loaded or single-core host can inflate arbitrarily.
func processCPU(t *testing.T) time.Duration {
	t.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())
}
