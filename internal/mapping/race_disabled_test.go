//go:build !race

package mapping

const raceEnabled = false
