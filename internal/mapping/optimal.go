package mapping

import (
	"fmt"

	"tlbmap/internal/comm"
	"tlbmap/internal/topology"
)

// MaxExhaustiveThreads bounds the exhaustive optimal mapper (N! candidate
// placements).
const MaxExhaustiveThreads = 10

// Exhaustive finds a provably cost-optimal placement by enumerating every
// permutation. The mapping problem is NP-hard in general (Section V-A), so
// this is only feasible for small machines; it exists to measure how close
// the polynomial hierarchical mapper gets (the paper's Edmonds approach is
// a heuristic above the pair level).
type Exhaustive struct{}

// Name implements Algorithm.
func (Exhaustive) Name() string { return "exhaustive-optimal" }

// Map implements Algorithm.
func (Exhaustive) Map(m *comm.Matrix, machine *topology.Machine) ([]int, error) {
	n := m.N()
	if n != machine.NumCores() {
		return nil, fmt.Errorf("mapping: %d threads for %d cores", n, machine.NumCores())
	}
	if n > MaxExhaustiveThreads {
		return nil, fmt.Errorf("mapping: exhaustive search limited to %d threads, got %d",
			MaxExhaustiveThreads, n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := append([]int(nil), perm...)
	bestCost := Cost(m, machine, perm)

	// Heap's algorithm over all permutations.
	c := make([]int, n)
	for i := 0; i < n; {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if cost := Cost(m, machine, perm); cost < bestCost {
				bestCost = cost
				copy(best, perm)
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return best, nil
}

// OptimalityGap returns the ratio cost(placement)/cost(optimal) for a
// placement, using the exhaustive mapper as the reference. A gap of 1 means
// the placement is provably optimal. Returns an error for machines beyond
// the exhaustive limit or when the optimal cost is zero with a non-zero
// candidate cost.
func OptimalityGap(m *comm.Matrix, machine *topology.Machine, placement []int) (float64, error) {
	opt, err := (Exhaustive{}).Map(m, machine)
	if err != nil {
		return 0, err
	}
	optCost := Cost(m, machine, opt)
	cost := Cost(m, machine, placement)
	if optCost == 0 {
		if cost == 0 {
			return 1, nil
		}
		return 0, fmt.Errorf("mapping: optimal cost 0 but placement cost %d", cost)
	}
	return float64(cost) / float64(optCost), nil
}
