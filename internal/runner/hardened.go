package runner

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is a job panic converted into an ordinary error. The worker
// that recovered it keeps running; the panic value and the goroutine stack
// at the panic site travel with the job result instead of killing the pool.
type PanicError struct {
	Value any    // the value passed to panic()
	Stack []byte // debug.Stack() captured inside the recovering frame
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// JobError is the failure record of one job in a partial-result run: which
// job, how many attempts it was given, and the error of the last attempt.
type JobError struct {
	Index    int
	Attempts int
	Err      error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("job %d failed after %d attempt(s): %v", e.Index, e.Attempts, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// DefaultBackoff is the retry pause used when Pool.Retries > 0 and
// Pool.Backoff is nil: quadratic in the failure count (10ms, 40ms, 90ms,
// ...), deterministic so retried batches stay reproducible.
func DefaultBackoff(failures int) time.Duration {
	return time.Duration(failures*failures) * 10 * time.Millisecond
}

// MapCtx is Map with a context: cancelling ctx stops workers from claiming
// new jobs and is delivered to in-flight jobs through their context, so
// cooperative jobs (e.g. simulations wired through sim.Config.Interrupt)
// return promptly. Like Map it fails fast and returns the lowest-indexed
// error; on cancellation that is the context's error unless a job failed
// first.
func MapCtx[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results, errs := mapEngine(ctx, p, n, fn, true)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RunCtx is MapCtx without per-job results.
func RunCtx(ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapCtx(ctx, p, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// MapPartial runs every job to completion regardless of other jobs'
// failures and returns whatever succeeded: results[i] is fn's value for
// job i (the zero value if it failed), and the second return lists the
// failures in ascending job order as *JobError records. Cancellation still
// stops the batch: unclaimed jobs fail with the context's error. The
// result ordering is bit-identical at any worker count.
func MapPartial[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []*JobError) {
	results, errs := mapEngine(ctx, p, n, fn, false)
	attempts := 1 + max(p.Retries, 0)
	var failed []*JobError
	for i, err := range errs {
		if err == nil {
			continue
		}
		je, ok := err.(*JobError)
		if !ok {
			je = &JobError{Index: i, Attempts: attempts, Err: err}
		}
		failed = append(failed, je)
	}
	return results, failed
}

// Attempt runs one function under the pool's single-attempt hardening
// without a pool: the per-attempt timeout (0 = none) and panic isolation
// of runAttempt. It is the execution layer of the serving path — every
// placement query runs inside an Attempt so a deadline turns into
// context.DeadlineExceeded and a panicking tenant turns into a
// *PanicError instead of killing the daemon. Like a pool job with a
// timeout, a non-cooperative fn keeps running detached past the deadline;
// its late result is discarded.
func Attempt[T any](ctx context.Context, timeout time.Duration, fn func(ctx context.Context) (T, error)) (T, error) {
	return runAttempt(ctx, timeout, 0, func(ctx context.Context, _ int) (T, error) {
		return fn(ctx)
	})
}

// mapEngine is the shared claim-loop core of Map/MapCtx/MapPartial.
// errs[i] holds job i's error: the raw last-attempt error in fail-fast
// mode, a *JobError in partial mode, or ctx.Err() for jobs never claimed
// after cancellation.
func mapEngine[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error), failFast bool) (results []T, errs []error) {
	if n <= 0 {
		return nil, nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	results = make([]T, n)
	errs = make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		done   int
		mu     sync.Mutex
		wg     sync.WaitGroup
	)
	finish := func() {
		if p.Progress == nil {
			return
		}
		mu.Lock()
		done++
		p.Progress(done, n)
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failFast && failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					if !failFast {
						err = &JobError{Index: i, Attempts: 0, Err: err}
					}
					errs[i] = err
					failed.Store(true)
					finish()
					continue
				}
				v, err := runJob(ctx, p, i, fn)
				if err != nil {
					if !failFast {
						err = &JobError{Index: i, Attempts: 1 + max(p.Retries, 0), Err: err}
					}
					errs[i] = err
					failed.Store(true)
				} else {
					results[i] = v
				}
				finish()
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// runJob gives job i its attempts: the first run plus up to p.Retries
// retries, pausing p.Backoff (or DefaultBackoff) between them. Retrying
// stops early when the batch context is cancelled — the cancellation error
// wins over the attempt's own error so callers see why the batch died.
func runJob[T any](ctx context.Context, p Pool, i int, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	backoff := p.Backoff
	if backoff == nil {
		backoff = DefaultBackoff
	}
	var (
		v   T
		err error
	)
	for attempt := 0; ; attempt++ {
		v, err = runAttempt(ctx, p.Timeout, i, fn)
		if err == nil || attempt >= p.Retries {
			return v, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return v, cerr
		}
		if d := backoff(attempt + 1); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return v, ctx.Err()
			case <-t.C:
			}
		}
	}
}

// runAttempt executes one attempt of job i under the per-attempt timeout.
// With a timeout the job runs on its own goroutine so the pool can abandon
// it at the deadline: the job's context is cancelled (cooperative jobs
// return promptly and their late result is discarded) and the attempt
// fails with context.DeadlineExceeded.
func runAttempt[T any](ctx context.Context, timeout time.Duration, i int, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	if timeout <= 0 {
		return protect(ctx, i, fn)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1) // buffered: a late job must not leak its goroutine
	go func() {
		v, err := protect(actx, i, fn)
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-actx.Done():
		var zero T
		return zero, actx.Err()
	}
}

// protect runs fn(ctx, i) and converts a panic into a *PanicError with the
// stack of the panicking goroutine attached.
func protect[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v, err = zero, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}
