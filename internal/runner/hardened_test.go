package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A panicking job must come back as a *PanicError carrying the panic value
// and a stack trace, not crash the pool, and every other job's result must
// stay bit-identical to a panic-free run.
func TestMapRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			results, failed := MapPartial(context.Background(), Pool{Workers: workers}, 8,
				func(_ context.Context, i int) (int, error) {
					if i == 3 {
						panic("boom at job 3")
					}
					return i * i, nil
				})
			if len(failed) != 1 || failed[0].Index != 3 {
				t.Fatalf("failed = %+v, want exactly job 3", failed)
			}
			var pe *PanicError
			if !errors.As(failed[0], &pe) {
				t.Fatalf("job 3 error = %v, want *PanicError", failed[0])
			}
			if pe.Value != "boom at job 3" {
				t.Errorf("panic value = %v", pe.Value)
			}
			if !strings.Contains(string(pe.Stack), "hardened_test.go") {
				t.Errorf("stack does not point at the panic site:\n%s", pe.Stack)
			}
			for i, v := range results {
				want := i * i
				if i == 3 {
					want = 0
				}
				if v != want {
					t.Errorf("results[%d] = %d, want %d", i, v, want)
				}
			}
		})
	}
}

// Map (the fail-fast path) must also survive a panic and surface it as the
// lowest-indexed error with its text intact.
func TestMapFailFastPanic(t *testing.T) {
	_, err := Map(Pool{Workers: 2}, 4, func(i int) (int, error) {
		if i == 1 {
			panic(errors.New("kaboom"))
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if got := err.Error(); got != "job panicked: kaboom" {
		t.Errorf("err.Error() = %q", got)
	}
}

// Cancelling the context must stop a deliberately slow job promptly
// (satellite: Ctrl-C path): the job blocks on ctx.Done() the way a
// simulation wired through sim.Config.Interrupt does, and MapCtx has to
// return well before the job's natural 30s duration.
func TestMapCtxCancelsSlowJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	begin := time.Now()
	_, err := MapCtx(ctx, Pool{Workers: 2}, 4, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			close(started)
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(30 * time.Second):
			return i, nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(begin); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", d)
	}
}

// A per-job timeout must fail a cooperative slow job with
// DeadlineExceeded while letting fast jobs finish normally.
func TestPerJobTimeout(t *testing.T) {
	results, failed := MapPartial(context.Background(), Pool{Workers: 2, Timeout: 50 * time.Millisecond}, 4,
		func(ctx context.Context, i int) (int, error) {
			if i == 2 {
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return i + 10, nil
		})
	if len(failed) != 1 || failed[0].Index != 2 {
		t.Fatalf("failed = %+v, want exactly job 2", failed)
	}
	if !errors.Is(failed[0], context.DeadlineExceeded) {
		t.Errorf("job 2 error = %v, want DeadlineExceeded", failed[0])
	}
	for _, i := range []int{0, 1, 3} {
		if results[i] != i+10 {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i+10)
		}
	}
}

// A non-cooperative job that ignores its context must still be abandoned
// at the deadline rather than wedging the pool.
func TestTimeoutAbandonsNonCooperativeJob(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, failed := MapPartial(context.Background(), Pool{Workers: 1, Timeout: 20 * time.Millisecond}, 1,
		func(_ context.Context, _ int) (int, error) {
			<-block
			return 1, nil
		})
	if len(failed) != 1 || !errors.Is(failed[0], context.DeadlineExceeded) {
		t.Fatalf("failed = %+v, want DeadlineExceeded", failed)
	}
}

// Retries: a job that fails its first attempts must be retried exactly
// Retries times with the configured deterministic backoff, succeed on a
// later attempt, and leave no error behind.
func TestRetryWithBackoff(t *testing.T) {
	var calls atomic.Int64
	var pauses []time.Duration
	p := Pool{
		Workers: 1,
		Retries: 3,
		Backoff: func(failures int) time.Duration {
			pauses = append(pauses, time.Duration(failures)*time.Millisecond)
			return time.Duration(failures) * time.Millisecond
		},
	}
	results, err := MapCtx(context.Background(), p, 1, func(_ context.Context, i int) (int, error) {
		if calls.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return 42, nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if results[0] != 42 {
		t.Errorf("results[0] = %d", results[0])
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
	wantPauses := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond}
	if len(pauses) != len(wantPauses) {
		t.Fatalf("pauses = %v, want %v", pauses, wantPauses)
	}
	for i := range pauses {
		if pauses[i] != wantPauses[i] {
			t.Errorf("pause[%d] = %v, want %v", i, pauses[i], wantPauses[i])
		}
	}
}

// A job that keeps failing must exhaust its attempts and report the count.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	_, failed := MapPartial(context.Background(), Pool{Workers: 1, Retries: 2, Backoff: func(int) time.Duration { return 0 }}, 1,
		func(_ context.Context, _ int) (int, error) {
			calls.Add(1)
			return 0, errors.New("permanent")
		})
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", calls.Load())
	}
	if len(failed) != 1 {
		t.Fatalf("failed = %+v", failed)
	}
	if failed[0].Attempts != 3 || failed[0].Err.Error() != "permanent" {
		t.Errorf("JobError = %+v", failed[0])
	}
	want := "job 0 failed after 3 attempt(s): permanent"
	if failed[0].Error() != want {
		t.Errorf("Error() = %q, want %q", failed[0].Error(), want)
	}
}

// MapPartial must keep running past failures and return every surviving
// result in job-index order, bit-identical at any worker count.
func TestMapPartialOrderingAcrossWorkerCounts(t *testing.T) {
	job := func(_ context.Context, i int) (int, error) {
		if i%5 == 2 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i * 3, nil
	}
	ref, refFailed := MapPartial(context.Background(), Pool{Workers: 1}, 23, job)
	for _, workers := range []int{2, 4, 8} {
		got, gotFailed := MapPartial(context.Background(), Pool{Workers: workers}, 23, job)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d: results[%d] = %d, want %d", workers, i, got[i], ref[i])
			}
		}
		if len(gotFailed) != len(refFailed) {
			t.Fatalf("workers=%d: %d failures, want %d", workers, len(gotFailed), len(refFailed))
		}
		for i := range refFailed {
			if gotFailed[i].Index != refFailed[i].Index {
				t.Errorf("workers=%d: failure[%d].Index = %d, want %d",
					workers, i, gotFailed[i].Index, refFailed[i].Index)
			}
		}
	}
}

// DefaultBackoff must be pure and quadratic.
func TestDefaultBackoff(t *testing.T) {
	for k, want := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 40 * time.Millisecond, 3: 90 * time.Millisecond} {
		if got := DefaultBackoff(k); got != want {
			t.Errorf("DefaultBackoff(%d) = %v, want %v", k, got, want)
		}
	}
}

// A pre-cancelled context must fail every job without calling fn.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := atomic.Int64{}
	_, err := MapCtx(ctx, Pool{Workers: 4}, 16, func(_ context.Context, _ int) (int, error) {
		called.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called.Load() != 0 {
		t.Errorf("fn called %d times on a dead context", called.Load())
	}
}
