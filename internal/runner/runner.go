// Package runner executes independent simulation jobs on a bounded worker
// pool. It is the parallel backbone of the experiment harness: the paper's
// evaluation is 9 benchmarks x 3 placements x N repetitions of full-system
// simulation, and every one of those (benchmark, placement, repetition)
// cells is an independent job.
//
// The package makes two determinism guarantees that the harness builds on:
//
//  1. Results come back in job-index order, regardless of which worker
//     finished which job when. Aggregating them in that order makes the
//     output of a parallel run bit-identical to a sequential run.
//  2. Seed derives per-job randomness from the job's identity (base seed
//     plus a list of identifying parts), never from execution order, so a
//     job computes the same result at any worker count.
package runner

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"runtime"
	"strconv"
	"time"
)

// DefaultWorkers is the worker count used when a Pool's Workers field is
// zero or negative: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool bounds the concurrency of a batch of jobs and configures the
// hardening applied to each job (all hardening fields zero = plain
// fail-fast execution; panics are isolated regardless).
type Pool struct {
	// Workers is the number of worker goroutines; <= 0 selects
	// DefaultWorkers(). 1 degenerates to sequential execution (jobs run
	// in index order on the calling goroutine's schedule).
	Workers int
	// Progress, when non-nil, is called after every completed job with
	// the number of jobs finished so far and the total. Calls are
	// serialized by the pool, but arrive from worker goroutines.
	Progress func(done, total int)
	// Timeout is the wall-clock budget of one job attempt; 0 means no
	// limit. An attempt that exceeds it fails with
	// context.DeadlineExceeded. The job function receives a context
	// carrying the deadline; cooperative jobs (simulations wired through
	// sim.Config.Interrupt) stop promptly, non-cooperative ones keep
	// running detached until they return — their late result is
	// discarded.
	Timeout time.Duration
	// Retries is how many extra attempts a failed job gets (0 = fail on
	// the first error). Retries are not attempted after a cancellation.
	Retries int
	// Backoff returns the pause before retry attempt k (k counts failed
	// attempts so far, starting at 1). It must be deterministic — a pure
	// function of k — so a retried batch stays reproducible. Nil selects
	// DefaultBackoff when Retries > 0.
	Backoff func(failures int) time.Duration
}

// Map runs fn(0..n-1) on the pool and returns the n results in job-index
// order. Jobs are dispatched in index order; when one fails, workers stop
// claiming new jobs, already-claimed jobs run to completion, and Map
// returns the error of the lowest-indexed failed job — which is the same
// error a sequential run would hit first, at any worker count. A panicking
// job is recovered and reported as a *PanicError carrying its stack; it
// never takes down the pool.
func Map[T any](p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), p, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// Run is Map without per-job results.
func Run(p Pool, n int, fn func(i int) error) error {
	_, err := Map(p, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Seed derives a deterministic positive seed from a base seed and the
// identifying parts of a job (benchmark name, placement label, repetition
// number, ...). Equal inputs always produce the same seed; any change to
// the base or to a part produces an unrelated seed. The result never
// depends on execution order, which is what keeps parallel experiment
// output bit-identical to sequential output.
func Seed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // separator: Seed(b,"ab") != Seed(b,"a","b")
	}
	s := int64(h.Sum64() &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// SeedN is Seed with a trailing integer part, the common case of a
// repetition index.
func SeedN(base int64, n int, parts ...string) int64 {
	return Seed(base, append(append([]string(nil), parts...), strconv.Itoa(n))...)
}
