package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 100} {
		got, err := Map(Pool{Workers: workers}, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Pool{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("empty map: %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	// Jobs 3 and 7 fail; every worker count must report job 3's error,
	// the one a sequential run would hit first.
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := Map(Pool{Workers: workers}, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(Pool{Workers: 1}, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// With one worker the failure is observed before any further claim.
	if n := ran.Load(); n != 1 {
		t.Errorf("ran %d jobs after immediate failure", n)
	}
}

func TestProgressReachesTotal(t *testing.T) {
	var calls []int
	p := Pool{Workers: 4, Progress: func(done, total int) {
		if total != 20 {
			t.Errorf("total = %d", total)
		}
		calls = append(calls, done) // serialized by the pool
	}}
	if err := Run(p, 20, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 20 {
		t.Fatalf("%d progress calls", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}
}

func TestSeedDeterministic(t *testing.T) {
	a := Seed(1, "SP", "rep", "3")
	b := Seed(1, "SP", "rep", "3")
	if a != b {
		t.Error("same inputs, different seeds")
	}
	if a <= 0 {
		t.Errorf("seed %d not positive", a)
	}
	seen := map[int64]string{a: "base"}
	for name, s := range map[string]int64{
		"other base":    Seed(2, "SP", "rep", "3"),
		"other bench":   Seed(1, "LU", "rep", "3"),
		"other kind":    Seed(1, "SP", "os", "3"),
		"other rep":    Seed(1, "SP", "rep", "4"),
		"merged parts": Seed(1, "SPrep", "3"),
	} {
		if prev, dup := seen[s]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[s] = name
	}
	if SeedN(1, 3, "SP", "rep") != a {
		t.Error("SeedN does not match Seed with the formatted index")
	}
}

func TestSeedNeverZero(t *testing.T) {
	// Zero is reserved (it disables jitter in sim.Config); Seed must map
	// everything to a positive value.
	for i := int64(0); i < 1000; i++ {
		if s := SeedN(i, int(i), "probe"); s <= 0 {
			t.Fatalf("Seed(%d) = %d", i, s)
		}
	}
}
